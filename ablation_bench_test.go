// Ablation benchmarks for the implementation's load-bearing design choices:
//
//   - sorted-set relations + hash joins (the production Evaluator) vs the
//     paper's literal n×n×n bit-cube representation (MatrixEvaluator);
//   - BFS-based reachability (our Procedure 3/4 realization) vs Warshall
//     transitive closure (the paper's, used by the matrix evaluator);
//   - the algebraic optimizer's selection fusion vs filter-after-join.
package repro_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/genstore"
	"repro/internal/trial"
)

// BenchmarkMatrixVsSet compares the two evaluators on dense small stores
// (where the cube representation is viable) across a join and a star.
func BenchmarkMatrixVsSet(b *testing.B) {
	for _, n := range []int{16, 32} {
		rng := rand.New(rand.NewSource(5))
		s := genstore.Random(rng, n, n*n/2, 0) // dense-ish
		join := trial.Example2(genstore.RelE)
		star := trial.ReachRight(genstore.RelE)
		b.Run(fmt.Sprintf("set/join/n=%d", n), func(b *testing.B) {
			ev := trial.NewEvaluator(s)
			for i := 0; i < b.N; i++ {
				if _, err := ev.Eval(join); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("matrix/join/n=%d", n), func(b *testing.B) {
			mv := trial.NewMatrixEvaluator(s)
			for i := 0; i < b.N; i++ {
				if _, err := mv.Eval(join); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("set/star/n=%d", n), func(b *testing.B) {
			ev := trial.NewEvaluator(s)
			for i := 0; i < b.N; i++ {
				if _, err := ev.Eval(star); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("matrix/star/n=%d", n), func(b *testing.B) {
			mv := trial.NewMatrixEvaluator(s)
			for i := 0; i < b.N; i++ {
				if _, err := mv.Eval(star); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOptimizer compares filter-after-join against the fused form
// produced by trial.Optimize: the fused equality becomes a hash key.
func BenchmarkOptimizer(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	s := genstore.Random(rng, 2000, 2000, 0)
	// σ_{1=3}(E ✶[1,2,3'] E): unoptimized, the join is an unkeyed cross
	// join followed by a filter; optimized, the condition constrains it.
	raw := trial.MustSelect(
		trial.MustJoin(trial.R(genstore.RelE), [3]trial.Pos{trial.L1, trial.L2, trial.R3},
			trial.Cond{Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L3), trial.P(trial.R1))}},
			trial.R(genstore.RelE)),
		trial.Cond{Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L1), trial.P(trial.L3))}})
	opt := trial.Optimize(raw)
	b.Run("raw", func(b *testing.B) {
		ev := trial.NewEvaluator(s)
		for i := 0; i < b.N; i++ {
			if _, err := ev.Eval(raw); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("optimized", func(b *testing.B) {
		ev := trial.NewEvaluator(s)
		for i := 0; i < b.N; i++ {
			if _, err := ev.Eval(opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSemijoin compares the semijoin (join keeping 1,2,3) against
// the equivalent full join + projection workload it replaces.
func BenchmarkSemijoin(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	s := genstore.Random(rng, 1000, 1000, 0)
	semi := trial.Semijoin(trial.R(genstore.RelE),
		trial.Cond{Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L3), trial.P(trial.R1))}},
		trial.R(genstore.RelE))
	full := trial.MustJoin(trial.R(genstore.RelE), [3]trial.Pos{trial.L1, trial.L2, trial.R3},
		trial.Cond{Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L3), trial.P(trial.R1))}},
		trial.R(genstore.RelE))
	b.Run("semijoin", func(b *testing.B) {
		ev := trial.NewEvaluator(s)
		for i := 0; i < b.N; i++ {
			if _, err := ev.Eval(semi); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fulljoin", func(b *testing.B) {
		ev := trial.NewEvaluator(s)
		for i := 0; i < b.N; i++ {
			if _, err := ev.Eval(full); err != nil {
				b.Fatal(err)
			}
		}
	})
}
