package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// LintExposition validates a Prometheus text exposition stream and
// returns every problem found: malformed metric or label names, sample
// lines that do not parse, TYPE/HELP lines for families that never
// produce a sample, samples without a preceding TYPE, histograms whose
// +Inf bucket disagrees with _count, and families whose series count
// exceeds the label budget (MaxCardinality+1, the cap plus the overflow
// child). CI scrapes a test server through this, so a malformed or
// unbounded metric fails the build rather than a dashboard.
func LintExposition(r io.Reader) []error {
	var errs []error
	addErr := func(line int, format string, args ...any) {
		errs = append(errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}

	type famState struct {
		typ     string
		series  int
		infSeen map[string]uint64 // labels-sans-le -> +Inf bucket count (histograms)
		count   map[string]uint64 // labels -> _count value
	}
	fams := make(map[string]*famState)
	stateFor := func(name string) *famState {
		f, ok := fams[name]
		if !ok {
			f = &famState{infSeen: make(map[string]uint64), count: make(map[string]uint64)}
			fams[name] = f
		}
		return f
	}
	// base strips the histogram sample suffixes so _bucket/_sum/_count
	// attribute to their family.
	base := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suf)
			if trimmed != name {
				if f, ok := fams[trimmed]; ok && f.typ == "histogram" {
					return trimmed
				}
			}
		}
		return name
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				addErr(lineNo, "malformed comment %q (want # HELP or # TYPE)", line)
				continue
			}
			name := fields[2]
			if !metricNameRE.MatchString(name) {
				addErr(lineNo, "invalid metric name %q", name)
				continue
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					addErr(lineNo, "TYPE line without a type: %q", line)
					continue
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					addErr(lineNo, "unknown metric type %q", fields[3])
					continue
				}
				stateFor(name).typ = fields[3]
			}
			continue
		}

		name, labels, value, ok := parseSample(line)
		if !ok {
			addErr(lineNo, "malformed sample %q", line)
			continue
		}
		if !metricNameRE.MatchString(name) {
			addErr(lineNo, "invalid metric name %q", name)
			continue
		}
		for _, l := range labels {
			if !labelNameRE.MatchString(l.Key) {
				addErr(lineNo, "invalid label name %q on %s", l.Key, name)
			}
		}
		famName := base(name)
		f, ok := fams[famName]
		if !ok || f.typ == "" {
			addErr(lineNo, "sample %s without a preceding # TYPE", name)
			f = stateFor(famName)
		}
		f.series++
		if f.typ == "histogram" {
			key := labelsKeySans(labels, "le")
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if le := labelValue(labels, "le"); le == "+Inf" {
					f.infSeen[key] = uint64(value)
				}
			case strings.HasSuffix(name, "_count"):
				f.count[key] = uint64(value)
			}
		}
	}
	if err := sc.Err(); err != nil {
		errs = append(errs, fmt.Errorf("read: %w", err))
	}

	for name, f := range fams {
		if f.typ != "" && f.series == 0 {
			errs = append(errs, fmt.Errorf("family %s: TYPE declared but no samples", name))
		}
		// Budget: series per family. Histogram children render
		// len(buckets)+3 lines each, so compare child counts, not lines.
		children := f.series
		if f.typ == "histogram" {
			children = len(f.count)
		}
		if children > MaxCardinality+1 {
			errs = append(errs, fmt.Errorf("family %s: %d series exceeds the label budget of %d",
				name, children, MaxCardinality+1))
		}
		for key, count := range f.count {
			if inf, ok := f.infSeen[key]; !ok {
				errs = append(errs, fmt.Errorf("family %s{%s}: histogram without a +Inf bucket", name, key))
			} else if inf != count {
				errs = append(errs, fmt.Errorf("family %s{%s}: +Inf bucket %d != _count %d", name, key, inf, count))
			}
		}
	}
	return errs
}

// parseSample splits one exposition sample line into name, labels and
// value. Timestamps (an optional trailing integer) are accepted.
func parseSample(line string) (name string, labels []Attr, value float64, ok bool) {
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return "", nil, 0, false
	} else if rest[i] == '{' {
		name = rest[:i]
		rest = rest[i+1:]
		end := -1
		inQuote := false
		for j := 0; j < len(rest); j++ {
			switch rest[j] {
			case '\\':
				if inQuote {
					j++
				}
			case '"':
				inQuote = !inQuote
			case '}':
				if !inQuote {
					end = j
				}
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return "", nil, 0, false
		}
		labelStr := rest[:end]
		rest = strings.TrimSpace(rest[end+1:])
		var perr bool
		labels, perr = parseLabels(labelStr)
		if !perr {
			return "", nil, 0, false
		}
	} else {
		name = rest[:i]
		rest = strings.TrimSpace(rest[i+1:])
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, false
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, false
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", nil, 0, false
		}
	}
	return name, labels, v, true
}

// parseLabels parses `k1="v1",k2="v2"` (quoted values, Go escaping).
func parseLabels(s string) ([]Attr, bool) {
	var out []Attr
	s = strings.TrimSuffix(strings.TrimSpace(s), ",")
	if s == "" {
		return nil, true
	}
	for len(s) > 0 {
		eq := strings.Index(s, "=")
		if eq < 0 {
			return nil, false
		}
		key := strings.TrimSpace(s[:eq])
		s = strings.TrimSpace(s[eq+1:])
		if len(s) == 0 || s[0] != '"' {
			return nil, false
		}
		end := -1
		for j := 1; j < len(s); j++ {
			if s[j] == '\\' {
				j++
				continue
			}
			if s[j] == '"' {
				end = j
				break
			}
		}
		if end < 0 {
			return nil, false
		}
		val, err := strconv.Unquote(s[:end+1])
		if err != nil {
			return nil, false
		}
		out = append(out, Attr{Key: key, Val: val})
		s = strings.TrimSpace(s[end+1:])
		s = strings.TrimPrefix(s, ",")
		s = strings.TrimSpace(s)
	}
	return out, true
}

// labelsKeySans renders labels minus one key, the identity of a
// histogram child across its _bucket/_sum/_count series.
func labelsKeySans(labels []Attr, drop string) string {
	parts := make([]string, 0, len(labels))
	for _, l := range labels {
		if l.Key == drop {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s=%v", l.Key, l.Val))
	}
	return strings.Join(parts, ",")
}

// labelValue returns the value of the named label, or "".
func labelValue(labels []Attr, key string) string {
	for _, l := range labels {
		if l.Key == key {
			if s, ok := l.Val.(string); ok {
				return s
			}
		}
	}
	return ""
}
