package obs

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	v := r.CounterVec("test_labeled_total", "a labeled counter", "lang")
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lang := strconv.Itoa(w % 3)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				v.With(lang).Inc()
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("Counter.Value = %d, want %d", got, workers*perWorker)
	}
	if got := v.Sum(); got != workers*perWorker {
		t.Errorf("CounterVec.Sum() = %d, want %d", got, workers*perWorker)
	}
	if got := v.Sum("lang", "0"); got == 0 || got%perWorker != 0 {
		t.Errorf("CounterVec.Sum(lang=0) = %d, want a positive multiple of %d", got, perWorker)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_gauge", "a gauge")
	g.Set(2.5)
	g.Add(1.5)
	g.Dec()
	if got := g.Value(); got != 3 {
		t.Errorf("Gauge.Value = %g, want 3", got)
	}
}

// TestHistogramBucketBoundaries pins the boundary convention: a value
// equal to an upper bound lands in that bucket (le is inclusive), one
// above it lands in the next, and values beyond every bound land in
// +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_hist", "a histogram", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 1.0001, 10, 99, 100, 101, 1e9} {
		h.Observe(v)
	}
	bounds, cum := h.Buckets()
	wantBounds := []float64{1, 10, 100, math.Inf(1)}
	if len(bounds) != len(wantBounds) {
		t.Fatalf("bounds = %v", bounds)
	}
	for i := range wantBounds {
		if bounds[i] != wantBounds[i] {
			t.Errorf("bounds[%d] = %g, want %g", i, bounds[i], wantBounds[i])
		}
	}
	// cumulative: le=1 -> {0.5, 1} = 2; le=10 -> +{1.0001, 10} = 4;
	// le=100 -> +{99, 100} = 6; +Inf -> all 8.
	wantCum := []uint64{2, 4, 6, 8}
	for i := range wantCum {
		if cum[i] != wantCum[i] {
			t.Errorf("cum[%d] = %d, want %d", i, cum[i], wantCum[i])
		}
	}
	if h.Count() != 8 {
		t.Errorf("Count = %d, want 8", h.Count())
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 4, 4)
	want := []float64{1, 4, 16, 64}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
	if n := len(DurationBuckets()); n != 10 {
		t.Errorf("DurationBuckets: %d buckets", n)
	}
}

// TestCardinalityCap drives a vec past MaxCardinality distinct label
// values and checks the excess folds into the single overflow child
// instead of growing the family.
func TestCardinalityCap(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_capped_total", "cap test", "id")
	for i := 0; i < MaxCardinality+50; i++ {
		v.With(strconv.Itoa(i)).Inc()
	}
	if got := v.f.sortedChildren(); len(got) != MaxCardinality+1 {
		t.Fatalf("children = %d, want %d (cap + overflow)", len(got), MaxCardinality+1)
	}
	if got := v.Sum("id", OverflowLabel); got != 50 {
		t.Errorf("overflow child = %d, want 50", got)
	}
	if got := v.Sum(); got != MaxCardinality+50 {
		t.Errorf("total = %d, want %d", got, MaxCardinality+50)
	}
	// The overflow child must be stable: more new labels keep landing on it.
	v.With("one-more").Inc()
	if got := v.Sum("id", OverflowLabel); got != 51 {
		t.Errorf("overflow child after one more = %d, want 51", got)
	}
}

// TestWritePrometheusGolden pins the exposition rendering byte-for-byte
// on a registry with one of everything.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("app_requests_total", "requests served")
	c.Add(3)
	v := r.CounterVec("app_by_lang_total", "per-language requests", "lang")
	v.With("trial").Add(2)
	v.With("rpq").Inc()
	g := r.Gauge("app_temperature", "a gauge")
	g.Set(36.5)
	r.GaugeFunc(`app_shard_triples`, "per-shard triples", func() float64 { return 7 }, "shard", "0")
	h := r.Histogram("app_latency_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_by_lang_total per-language requests
# TYPE app_by_lang_total counter
app_by_lang_total{lang="rpq"} 1
app_by_lang_total{lang="trial"} 2
# HELP app_latency_seconds latency
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="0.1"} 1
app_latency_seconds_bucket{le="1"} 2
app_latency_seconds_bucket{le="+Inf"} 3
app_latency_seconds_sum 5.55
app_latency_seconds_count 3
# HELP app_requests_total requests served
# TYPE app_requests_total counter
app_requests_total 3
# HELP app_shard_triples per-shard triples
# TYPE app_shard_triples gauge
app_shard_triples{shard="0"} 7
# HELP app_temperature a gauge
# TYPE app_temperature gauge
app_temperature 36.5
`
	if got := b.String(); got != want {
		t.Errorf("WritePrometheus mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if errs := LintExposition(strings.NewReader(b.String())); len(errs) != 0 {
		t.Errorf("golden output fails its own lint: %v", errs)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "x")
	b := r.Counter("same_total", "x")
	if a != b {
		t.Error("re-registering the same counter returned a different instance")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering with a different type did not panic")
		}
	}()
	r.Gauge("same_total", "x")
}

func TestLintCatchesMalformed(t *testing.T) {
	cases := map[string]string{
		"bad name":         "# TYPE 9bad counter\n9bad 1\n",
		"no TYPE":          "orphan_total 4\n",
		"bad value":        "# TYPE a_total counter\na_total xyz\n",
		"bad label":        "# TYPE a_total counter\na_total{9l=\"x\"} 1\n",
		"inf vs count":     "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
		"unclosed label":   "# TYPE a_total counter\na_total{l=\"x\" 1\n",
		"declared, unused": "# TYPE ghost_total counter\n",
	}
	for name, input := range cases {
		if errs := LintExposition(strings.NewReader(input)); len(errs) == 0 {
			t.Errorf("%s: lint found no errors in %q", name, input)
		}
	}
	ok := "# HELP good_total fine\n# TYPE good_total counter\ngood_total{l=\"x\"} 1 1700000000\n"
	if errs := LintExposition(strings.NewReader(ok)); len(errs) != 0 {
		t.Errorf("lint rejected valid input: %v", errs)
	}
}

func TestLintLabelBudget(t *testing.T) {
	var b strings.Builder
	b.WriteString("# TYPE wide_total counter\n")
	for i := 0; i <= MaxCardinality+1; i++ {
		b.WriteString("wide_total{id=\"" + strconv.Itoa(i) + "\"} 1\n")
	}
	errs := LintExposition(strings.NewReader(b.String()))
	found := false
	for _, e := range errs {
		if strings.Contains(e.Error(), "label budget") {
			found = true
		}
	}
	if !found {
		t.Errorf("lint did not flag a family with %d series: %v", MaxCardinality+2, errs)
	}
}
