package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSpanIsNoOp(t *testing.T) {
	var s *Span
	c := s.StartChild("x")
	if c != nil {
		t.Fatal("StartChild on nil span returned a span")
	}
	s.End()
	s.SetAttr("k", 1)
	if s.Name() != "" || s.Duration() != 0 || s.Attr("k") != nil || s.Children() != nil {
		t.Error("nil span accessors are not zero")
	}
	if b, err := json.Marshal(s); err != nil || string(b) != "null" {
		t.Errorf("nil span marshals to %q, %v", b, err)
	}
}

func TestSpanTree(t *testing.T) {
	root := StartSpan("query")
	root.SetAttr("lang", "trial")
	child := root.StartChild("execute")
	op := child.StartChild("join:hash")
	op.SetAttr("out", 42)
	time.Sleep(time.Millisecond)
	op.End()
	child.End()
	root.End()

	if root.Duration() <= 0 || child.Duration() <= 0 || op.Duration() <= 0 {
		t.Fatal("durations not recorded")
	}
	if root.Duration() < child.Duration() {
		t.Error("parent shorter than child")
	}
	if f := root.Find("join:hash"); f != op {
		t.Error("Find did not locate the operator span")
	}
	if got := op.Attr("out"); got != 42 {
		t.Errorf("Attr(out) = %v", got)
	}
	op.SetAttr("out", 43)
	if got := op.Attr("out"); got != 43 {
		t.Errorf("SetAttr did not replace: %v", got)
	}

	tree := root.Tree()
	for _, want := range []string{"query ", "lang=trial", "  execute ", "    join:hash "} {
		if !strings.Contains(tree, want) {
			t.Errorf("Tree() missing %q:\n%s", want, tree)
		}
	}

	b, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Name     string         `json:"name"`
		DurUs    int64          `json:"dur_us"`
		Attrs    map[string]any `json:"attrs"`
		Children []json.RawMessage
	}
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Name != "query" || decoded.DurUs <= 0 || decoded.Attrs["lang"] != "trial" || len(decoded.Children) != 1 {
		t.Errorf("span JSON = %s", b)
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	root := StartSpan("sharded")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := root.StartChild("task")
			root.SetAttr("k", 1)
			c.End()
		}()
	}
	wg.Wait()
	root.End()
	if got := len(root.Children()); got != 16 {
		t.Errorf("children = %d, want 16", got)
	}
}

func TestSelfTimes(t *testing.T) {
	root := StartSpan("a")
	c1 := root.StartChild("b")
	c2 := c1.StartChild("b")
	c2.mu.Lock()
	c2.dur = 10 * time.Millisecond
	c2.mu.Unlock()
	c1.mu.Lock()
	c1.dur = 30 * time.Millisecond
	c1.mu.Unlock()
	root.mu.Lock()
	root.dur = 100 * time.Millisecond
	root.mu.Unlock()

	st := root.SelfTimes()
	if got := st["a"]; got != 70*time.Millisecond {
		t.Errorf("self(a) = %v, want 70ms", got)
	}
	// b occurs twice: (30-10) + 10 = 30ms aggregate.
	if got := st["b"]; got != 30*time.Millisecond {
		t.Errorf("self(b) = %v, want 30ms", got)
	}
}

func TestSlowLog(t *testing.T) {
	l := NewSlowLog(3, 10*time.Millisecond)
	if l.Record(QueryRecord{Source: "fast", Duration: time.Millisecond}) {
		t.Error("record below threshold accepted")
	}
	for i, src := range []string{"a", "b", "c", "d"} {
		if !l.Record(QueryRecord{Source: src, Duration: time.Duration(11+i) * time.Millisecond}) {
			t.Fatalf("record %s rejected", src)
		}
	}
	got := l.Snapshot()
	if len(got) != 3 {
		t.Fatalf("Snapshot len = %d, want 3 (ring capacity)", len(got))
	}
	// Newest first; "a" fell off the ring.
	for i, want := range []string{"d", "c", "b"} {
		if got[i].Source != want {
			t.Errorf("Snapshot[%d].Source = %q, want %q", i, got[i].Source, want)
		}
	}
	if got[0].DurationMs < 13 {
		t.Errorf("DurationMs = %g", got[0].DurationMs)
	}
	if l.Total() != 4 {
		t.Errorf("Total = %d, want 4", l.Total())
	}
}

func TestSlowLogConcurrent(t *testing.T) {
	l := NewSlowLog(8, 0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Record(QueryRecord{Source: "q", Duration: time.Millisecond})
				l.Snapshot()
			}
		}()
	}
	wg.Wait()
	if l.Total() != 800 {
		t.Errorf("Total = %d, want 800", l.Total())
	}
}
