package obs

import (
	"sync"
	"time"
)

// QueryRecord is one logged query: what ran, how long it took, what it
// returned (or the error), and — when the query was traced — its span
// tree.
type QueryRecord struct {
	Time       time.Time     `json:"time"`
	Lang       string        `json:"lang"`
	Source     string        `json:"source"`
	Duration   time.Duration `json:"-"`
	DurationMs float64       `json:"duration_ms"`
	ResultSize int           `json:"result_size"`
	Err        string        `json:"error,omitempty"`
	Trace      *Span         `json:"trace,omitempty"`
}

// SlowLog is a fixed-capacity ring buffer of the most recent queries at
// or above a latency threshold. It is safe for concurrent use; Record
// holds the lock only to copy one record, so logging never serializes
// query execution for long.
type SlowLog struct {
	threshold time.Duration

	mu    sync.Mutex
	buf   []QueryRecord
	next  int
	n     int    // valid records in buf
	total uint64 // lifetime records accepted
}

// NewSlowLog returns a log keeping the last capacity records with
// Duration >= threshold. A threshold of 0 records every query.
func NewSlowLog(capacity int, threshold time.Duration) *SlowLog {
	if capacity < 1 {
		capacity = 1
	}
	return &SlowLog{threshold: threshold, buf: make([]QueryRecord, capacity)}
}

// Threshold returns the recording threshold.
func (l *SlowLog) Threshold() time.Duration { return l.threshold }

// Record logs r if it clears the threshold, reporting whether it did.
func (l *SlowLog) Record(r QueryRecord) bool {
	if r.Duration < l.threshold {
		return false
	}
	r.DurationMs = float64(r.Duration.Microseconds()) / 1000
	l.mu.Lock()
	l.buf[l.next] = r
	l.next = (l.next + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
	l.total++
	l.mu.Unlock()
	return true
}

// Total returns the lifetime count of accepted records (including those
// the ring has since overwritten).
func (l *SlowLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Snapshot returns the retained records, newest first.
func (l *SlowLog) Snapshot() []QueryRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]QueryRecord, 0, l.n)
	for i := 1; i <= l.n; i++ {
		out = append(out, l.buf[(l.next-i+len(l.buf))%len(l.buf)])
	}
	return out
}
