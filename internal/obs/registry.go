package obs

import (
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// gaugeFunc and counterFunc are callback children: their value is
// sampled at scrape time, so values owned elsewhere (store version,
// plan-cache counters) export without double bookkeeping.
type gaugeFunc func() float64
type counterFunc func() uint64

var metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
var labelNameRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// Registry holds metric families and renders them in the Prometheus
// text exposition format. Registration is get-or-create: asking twice
// for the same name returns the same family (and panics if the second
// ask disagrees on type or label keys), so package-level wiring and
// per-instance wiring compose.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Default is the package-level registry for callers that do not need
// injection. The server builds its own so tests scrape in isolation.
var Default = NewRegistry()

// familyFor returns (creating if needed) the family, enforcing one
// consistent (type, label keys) definition per name.
func (r *Registry) familyFor(name, help, typ string, labelKeys []string, newChild func() metric, buckets []float64) *family {
	if !metricNameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, k := range labelKeys {
		if !labelNameRE.MatchString(k) {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %s", k, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || !equalStrings(f.labelKeys, labelKeys) {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s%v, was %s%v",
				name, typ, labelKeys, f.typ, f.labelKeys))
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ,
		labelKeys: append([]string(nil), labelKeys...),
		buckets:   buckets,
		children:  make(map[string]*child),
		newChild:  newChild,
	}
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.familyFor(name, help, "counter", nil, func() metric { return new(Counter) }, nil)
	return f.childFor(nil).m.(*Counter)
}

// CounterVec registers (or finds) a counter family with label keys.
func (r *Registry) CounterVec(name, help string, labelKeys ...string) *CounterVec {
	f := r.familyFor(name, help, "counter", labelKeys, func() metric { return new(Counter) }, nil)
	return &CounterVec{f: f}
}

// CounterFunc registers a callback counter child, optionally labeled
// with alternating key, value arguments (the keys must be the same for
// every child of the family).
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labelPairs ...string) {
	keys, values := splitPairs(name, labelPairs)
	f := r.familyFor(name, help, "counter", keys, func() metric { return counterFunc(fn) }, nil)
	f.childFor(values)
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.familyFor(name, help, "gauge", nil, func() metric { return new(Gauge) }, nil)
	return f.childFor(nil).m.(*Gauge)
}

// GaugeVec registers (or finds) a gauge family with label keys.
func (r *Registry) GaugeVec(name, help string, labelKeys ...string) *GaugeVec {
	f := r.familyFor(name, help, "gauge", labelKeys, func() metric { return new(Gauge) }, nil)
	return &GaugeVec{f: f}
}

// GaugeFunc registers a callback gauge child, optionally labeled with
// alternating key, value arguments.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labelPairs ...string) {
	keys, values := splitPairs(name, labelPairs)
	f := r.familyFor(name, help, "gauge", keys, func() metric { return gaugeFunc(fn) }, nil)
	f.childFor(values)
}

// Histogram registers (or finds) an unlabeled histogram with the given
// bucket upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.familyFor(name, help, "histogram", nil, func() metric { return newHistogram(buckets) }, buckets)
	return f.childFor(nil).m.(*Histogram)
}

// HistogramVec registers (or finds) a histogram family with label keys;
// every child shares the bucket bounds.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelKeys ...string) *HistogramVec {
	f := r.familyFor(name, help, "histogram", labelKeys, func() metric { return newHistogram(buckets) }, buckets)
	return &HistogramVec{f: f}
}

// splitPairs turns alternating key, value arguments into parallel
// slices.
func splitPairs(name string, pairs []string) (keys, values []string) {
	if len(pairs)%2 != 0 {
		panic(fmt.Sprintf("obs: metric %s wants alternating label key, value arguments", name))
	}
	for i := 0; i+1 < len(pairs); i += 2 {
		keys = append(keys, pairs[i])
		values = append(values, pairs[i+1])
	}
	return keys, values
}

// WritePrometheus renders every family in the Prometheus text
// exposition format: families sorted by name, children sorted by label
// values, histograms as cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make(map[string]*family, len(r.families))
	for name, f := range r.families {
		fams[name] = f
	}
	r.mu.Unlock()
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		f := fams[name]
		children := f.sortedChildren()
		if len(children) == 0 {
			continue
		}
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, c := range children {
			writeChild(&b, f, c)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeChild(b *strings.Builder, f *family, c *child) {
	labels := renderLabels(f.labelKeys, c.labelValues)
	switch m := c.m.(type) {
	case *Counter:
		fmt.Fprintf(b, "%s%s %d\n", f.name, labels, m.Value())
	case counterFunc:
		fmt.Fprintf(b, "%s%s %d\n", f.name, labels, m())
	case *Gauge:
		fmt.Fprintf(b, "%s%s %s\n", f.name, labels, formatFloat(m.Value()))
	case gaugeFunc:
		fmt.Fprintf(b, "%s%s %s\n", f.name, labels, formatFloat(m()))
	case *Histogram:
		bounds, cum := m.Buckets()
		for i, bound := range bounds {
			le := "+Inf"
			if i < len(bounds)-1 {
				le = formatFloat(bound)
			}
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
				renderLabels(append(f.labelKeys, "le"), append(c.labelValues, le)), cum[i])
		}
		fmt.Fprintf(b, "%s_sum%s %s\n", f.name, labels, formatFloat(m.Sum()))
		fmt.Fprintf(b, "%s_count%s %d\n", f.name, labels, m.Count())
	}
}

func renderLabels(keys, values []string) string {
	if len(keys) == 0 {
		return ""
	}
	parts := make([]string, len(keys))
	for i := range keys {
		// %q escapes exactly the characters the exposition format wants
		// escaped in label values: backslash, quote, and newline.
		parts[i] = fmt.Sprintf("%s=%q", keys[i], values[i])
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, "\\", `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
