// Package obs is the zero-dependency observability layer shared by the
// engine and the serving tier: metrics, per-query execution traces, and
// a slow-query log.
//
// # Metrics
//
// A Registry holds metric families — atomic Counters, Gauges,
// log-bucketed Histograms, and their labeled Vec variants — and renders
// them in the Prometheus text exposition format (WritePrometheus).
// Label cardinality is bounded by construction: every Vec folds label
// combinations beyond MaxCardinality into a single {...="other"} child,
// so a mistake in labeling (or an adversarial client) can grow a family
// to at most MaxCardinality+1 series. Callback variants (GaugeFunc,
// CounterFunc) sample a value at scrape time, which is how store
// version/size gauges and plan-cache counters are exported without
// double bookkeeping. A package-level Default registry exists for
// convenience; the server builds its own injectable Registry so tests
// scrape in isolation.
//
// # Traces
//
// A Span is one timed node of a per-query execution trace: name,
// start/duration, ordered attributes, children. Spans are recorded
// through the whole query lifecycle — compile, optimize (rewrite trace
// attached), plan-cache hit or miss, execute — with per-operator spans
// inside the engine (join probes with input/output cardinalities,
// semi-naive star rounds with delta sizes, per-shard task timings). A
// nil *Span is a valid no-op receiver, so instrumented code pays one
// nil check when tracing is off. Spans marshal to JSON (the ?trace=1
// wire shape) and render as an indented text tree (Tree).
//
// # Slow-query log
//
// SlowLog is a fixed-capacity ring buffer of QueryRecords above a
// latency threshold, newest first, served by trialserver at
// /debug/queries.
//
// LintExposition validates Prometheus text output (metric/label syntax,
// histogram consistency, per-family series budget); CI scrapes a test
// server through it so a malformed or unbounded metric fails the build.
package obs
