package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"
)

// Attr is one key/value attribute on a span, kept in set order so trace
// renderings are stable.
type Attr struct {
	Key string
	Val any
}

// Span is one timed node of an execution trace: a name, a start time
// and duration, ordered attributes, and child spans. All methods are
// safe on a nil receiver (no-ops returning nil), which is how
// instrumented code stays one branch away from free when tracing is
// off, and safe for concurrent use, which is how parallel per-shard
// tasks attach timings to the operator span that spawned them.
type Span struct {
	mu       sync.Mutex
	name     string
	start    time.Time
	dur      time.Duration
	attrs    []Attr
	children []*Span
}

// StartSpan starts a root span.
func StartSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// StartChild starts and attaches a child span.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := StartSpan(name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End fixes the span's duration. Ending twice keeps the first duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.dur == 0 {
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// SetAttr sets an attribute, replacing an earlier value for the key.
func (s *Span) SetAttr(key string, val any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Val = val
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Val: val})
}

// Name returns the span's name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the span's recorded duration (0 before End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

// Attr returns the value of the named attribute, or nil.
func (s *Span) Attr(key string) any {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.attrs {
		if a.Key == key {
			return a.Val
		}
	}
	return nil
}

// Children returns the span's children (the live slice's snapshot).
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Find returns the first span named name in a depth-first walk (the
// receiver included), or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.Name() == name {
		return s
	}
	for _, c := range s.Children() {
		if f := c.Find(name); f != nil {
			return f
		}
	}
	return nil
}

// SelfTimes aggregates exclusive time per span name over the whole
// tree: each span contributes its duration minus its children's
// (clamped at zero), keyed by name. This is the per-operator breakdown
// trialbench folds into BENCH_engine.json — regressions name the
// operator, not just the workload.
func (s *Span) SelfTimes() map[string]time.Duration {
	out := make(map[string]time.Duration)
	s.selfTimesInto(out)
	return out
}

func (s *Span) selfTimesInto(out map[string]time.Duration) {
	if s == nil {
		return
	}
	self := s.Duration()
	for _, c := range s.Children() {
		self -= c.Duration()
		c.selfTimesInto(out)
	}
	if self < 0 {
		self = 0
	}
	out[s.Name()] += self
}

// spanJSON is the wire shape of a span (the ?trace=1 response body).
type spanJSON struct {
	Name     string         `json:"name"`
	DurUs    int64          `json:"dur_us"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []*Span        `json:"children,omitempty"`
}

// MarshalJSON renders the span tree with durations in microseconds.
func (s *Span) MarshalJSON() ([]byte, error) {
	if s == nil {
		return []byte("null"), nil
	}
	s.mu.Lock()
	j := spanJSON{
		Name:     s.name,
		DurUs:    s.dur.Microseconds(),
		Children: append([]*Span(nil), s.children...),
	}
	if len(s.attrs) > 0 {
		j.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			j.Attrs[a.Key] = a.Val
		}
	}
	s.mu.Unlock()
	return json.Marshal(j)
}

// Tree renders the span tree as indented text, one span per line:
//
//	query 12.3ms lang=trial
//	  execute 11.9ms
//	    join:hash 11.2ms in_left=4000 in_right=4000 out=39297
func (s *Span) Tree() string {
	var b strings.Builder
	s.tree(&b, 0)
	return b.String()
}

func (s *Span) tree(b *strings.Builder, depth int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	name, dur := s.name, s.dur
	attrs := append([]Attr(nil), s.attrs...)
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	fmt.Fprintf(b, "%s %s", name, formatDur(dur))
	for _, a := range attrs {
		fmt.Fprintf(b, " %s=%v", a.Key, a.Val)
	}
	b.WriteByte('\n')
	for _, c := range children {
		c.tree(b, depth+1)
	}
}

// formatDur renders a duration with millisecond precision scaled to
// stay readable from microseconds to seconds.
func formatDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
