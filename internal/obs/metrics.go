package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// MaxCardinality bounds the number of distinct label combinations one
// metric family keeps. The combination created once the cap is reached
// is the overflow child: every label value reads "other", so runaway
// labeling degrades into one aggregate series instead of an unbounded
// scrape (the kube-ovn "reduce metrics labels" failure mode).
const MaxCardinality = 64

// OverflowLabel is the label value of the overflow child.
const OverflowLabel = "other"

// Counter is a monotonically increasing integer counter, safe for
// concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 value that may go up and down, safe for concurrent
// use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (which may be negative) with a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram with atomic per-bucket counts.
// Buckets are cumulative at render time only; Observe touches exactly
// one bucket counter plus the sum and count, so concurrent observations
// never contend on a lock.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf is implicit
	counts []atomic.Uint64
	sum    Gauge
	count  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Buckets returns the upper bounds and the cumulative count at each
// (the +Inf bucket is the final entry with bound +Inf).
func (h *Histogram) Buckets() ([]float64, []uint64) {
	bounds := make([]float64, len(h.bounds)+1)
	copy(bounds, h.bounds)
	bounds[len(h.bounds)] = math.Inf(1)
	cum := make([]uint64, len(h.counts))
	var run uint64
	for i := range h.counts {
		run += h.counts[i].Load()
		cum[i] = run
	}
	return bounds, cum
}

// ExpBuckets returns n log-spaced bucket upper bounds: start, start*factor,
// start*factor², … — the log-bucketed shape every duration and size
// histogram in the repo uses.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("obs: bad ExpBuckets(%g, %g, %d)", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBuckets are the default latency buckets in seconds: 100µs to
// ~26s in factor-4 steps.
func DurationBuckets() []float64 { return ExpBuckets(100e-6, 4, 10) }

// SizeBuckets are the default size buckets (triples per batch, result
// cardinalities): 1 to ~262k in factor-4 steps.
func SizeBuckets() []float64 { return ExpBuckets(1, 4, 10) }

// metric is anything a family can hold as one labeled child.
type metric interface{}

// child is one label combination of a family.
type child struct {
	labelValues []string
	m           metric
}

// family is one named metric with a fixed label-key set. Children are
// keyed by their joined label values and capped at MaxCardinality.
type family struct {
	name      string
	help      string
	typ       string // "counter", "gauge", "histogram"
	labelKeys []string
	buckets   []float64 // histogram families only

	mu       sync.Mutex
	children map[string]*child
	newChild func() metric
}

// childFor returns (creating if needed) the child for the given label
// values, folding combinations beyond the cardinality cap into the
// overflow child.
func (f *family) childFor(labelValues []string) *child {
	if len(labelValues) != len(f.labelKeys) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d",
			f.name, len(f.labelKeys), len(labelValues)))
	}
	key := labelKey(labelValues)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	if len(f.children) >= MaxCardinality {
		over := make([]string, len(f.labelKeys))
		for i := range over {
			over[i] = OverflowLabel
		}
		okey := labelKey(over)
		if c, ok := f.children[okey]; ok {
			return c
		}
		c := &child{labelValues: over, m: f.newChild()}
		f.children[okey] = c
		return c
	}
	c := &child{labelValues: append([]string(nil), labelValues...), m: f.newChild()}
	f.children[key] = c
	return c
}

// sortedChildren returns the children ordered by label values, the
// deterministic order WritePrometheus renders.
func (f *family) sortedChildren() []*child {
	f.mu.Lock()
	out := make([]*child, 0, len(f.children))
	for _, c := range f.children {
		out = append(out, c)
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		return labelKey(out[i].labelValues) < labelKey(out[j].labelValues)
	})
	return out
}

// labelKey joins label values with an unprintable separator so distinct
// tuples cannot collide.
func labelKey(values []string) string {
	s := ""
	for i, v := range values {
		if i > 0 {
			s += "\x00"
		}
		s += v
	}
	return s
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (one per label
// key, in declaration order).
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.childFor(labelValues).m.(*Counter)
}

// Sum returns the total over children whose labels match every given
// key=value constraint (alternating key, value arguments; none sums the
// whole family). Unknown keys match nothing. This is what lets /stats
// read the same counters /metrics exports instead of keeping parallel
// bookkeeping.
func (v *CounterVec) Sum(constraints ...string) uint64 {
	if len(constraints)%2 != 0 {
		panic("obs: CounterVec.Sum wants alternating key, value arguments")
	}
	var total uint64
	for _, c := range v.f.sortedChildren() {
		if matchLabels(v.f.labelKeys, c.labelValues, constraints) {
			total += c.m.(*Counter).Value()
		}
	}
	return total
}

func matchLabels(keys, values, constraints []string) bool {
	for i := 0; i+1 < len(constraints); i += 2 {
		ok := false
		for j, k := range keys {
			if k == constraints[i] {
				ok = values[j] == constraints[i+1]
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.childFor(labelValues).m.(*Gauge)
}

// HistogramVec is a histogram family with labels; every child shares
// the family's bucket bounds.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.childFor(labelValues).m.(*Histogram)
}
