package regmem

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
)

// Expr is a regular expression with memory.
type Expr interface {
	String() string
	isExpr()
}

// Eps matches the empty path.
type Eps struct{}

// Bind is ↓x.e: store the current node's data value in register x, then
// continue with e.
type Bind struct {
	X string
	E Expr
}

// Sym traverses one a-labeled edge and then checks the conditions at the
// target node.
type Sym struct {
	A     string
	Conds []Cond
}

// Cond compares the current node's data value to register X.
type Cond struct {
	X   string
	Neq bool
}

// Cat is concatenation.
type Cat struct{ L, R Expr }

// Alt is alternation.
type Alt struct{ L, R Expr }

// Star is zero-or-more repetition.
type Star struct{ E Expr }

func (Eps) isExpr()  {}
func (Bind) isExpr() {}
func (Sym) isExpr()  {}
func (Cat) isExpr()  {}
func (Alt) isExpr()  {}
func (Star) isExpr() {}

func (Eps) String() string { return "ε" }
func (b Bind) String() string {
	return "↓" + b.X + "." + b.E.String()
}
func (s Sym) String() string {
	if len(s.Conds) == 0 {
		return s.A
	}
	parts := make([]string, len(s.Conds))
	for i, c := range s.Conds {
		op := "="
		if c.Neq {
			op = "≠"
		}
		parts[i] = c.X + op
	}
	return s.A + "[" + strings.Join(parts, "∧") + "]"
}
func (c Cat) String() string  { return "(" + c.L.String() + "·" + c.R.String() + ")" }
func (a Alt) String() string  { return "(" + a.L.String() + "+" + a.R.String() + ")" }
func (s Star) String() string { return s.E.String() + "*" }

// config is a point in the search: a node plus register contents
// (registers hold node names; values are compared via ρ).
type config struct {
	node string
	regs string // canonical encoding of the register map
}

type regmap map[string]string // register -> node whose value it holds

func encodeRegs(r regmap) string {
	keys := make([]string, 0, len(r))
	for k := range r {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(r[k])
		b.WriteByte(';')
	}
	return b.String()
}

func decodeRegs(s string) regmap {
	r := regmap{}
	for _, part := range strings.Split(s, ";") {
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		r[kv[0]] = kv[1]
	}
	return r
}

// Eval returns the pairs (u, v) such that some data path from u to v
// matches e (with all registers initially empty). Evaluation is a
// breadth-first search over configurations; register contents are node
// references compared through ρ.
func Eval(e Expr, g *graph.Graph) map[[2]string]bool {
	out := map[[2]string]bool{}
	for _, src := range g.Nodes() {
		final := evalFrom(e, g, map[config]bool{{node: src}: true})
		for c := range final {
			out[[2]string{src, c.node}] = true
		}
	}
	return out
}

// evalFrom advances a set of configurations through e.
func evalFrom(e Expr, g *graph.Graph, in map[config]bool) map[config]bool {
	switch x := e.(type) {
	case Eps:
		return in
	case Bind:
		next := map[config]bool{}
		for c := range in {
			regs := decodeRegs(c.regs)
			regs[x.X] = c.node
			next[config{node: c.node, regs: encodeRegs(regs)}] = true
		}
		return evalFrom(x.E, g, next)
	case Sym:
		next := map[config]bool{}
		for c := range in {
			regs := decodeRegs(c.regs)
			for _, edge := range g.Edges() {
				if edge.Label != x.A || edge.Src != c.node {
					continue
				}
				ok := true
				for _, cond := range x.Conds {
					held, bound := regs[cond.X]
					if !bound {
						ok = false
						break
					}
					eq := g.Value(edge.Dst).Equal(g.Value(held))
					if eq == cond.Neq {
						ok = false
						break
					}
				}
				if ok {
					next[config{node: edge.Dst, regs: c.regs}] = true
				}
			}
		}
		return next
	case Cat:
		return evalFrom(x.R, g, evalFrom(x.L, g, in))
	case Alt:
		l := evalFrom(x.L, g, in)
		for c := range evalFrom(x.R, g, in) {
			l[c] = true
		}
		return l
	case Star:
		acc := map[config]bool{}
		for c := range in {
			acc[c] = true
		}
		frontier := acc
		for len(frontier) > 0 {
			step := evalFrom(x.E, g, frontier)
			next := map[config]bool{}
			for c := range step {
				if !acc[c] {
					acc[c] = true
					next[c] = true
				}
			}
			frontier = next
		}
		return acc
	}
	return nil
}

// ExprN builds the Proposition 6 witness eₙ over edge label a:
//
//	e₂   = ↓x1 . a[x1≠] ↓x2
//	eₙ₊₁ = eₙ · a[x1≠ ∧ ... ∧ xₙ≠] ↓xₙ₊₁
//
// Its answer is nonempty iff the graph has an a-path through n nodes with
// pairwise distinct data values.
func ExprN(n int, label string) (Expr, error) {
	if n < 2 {
		return nil, fmt.Errorf("regmem: ExprN needs n ≥ 2, got %d", n)
	}
	reg := func(i int) string { return fmt.Sprintf("x%d", i) }
	var e Expr = Bind{X: reg(1), E: stepExpr(label, 1, 2, reg)}
	for k := 3; k <= n; k++ {
		e = Cat{L: e, R: stepExpr(label, k-1, k, reg)}
	}
	return e, nil
}

// stepExpr is a[x1≠ ∧ ... ∧ xm≠] ↓x_next — implemented as the a-step
// followed by a bind, which we express by nesting the bind inside a Cat
// via an ε continuation.
func stepExpr(label string, m, next int, reg func(int) string) Expr {
	conds := make([]Cond, m)
	for i := 1; i <= m; i++ {
		conds[i-1] = Cond{X: reg(i), Neq: true}
	}
	return Cat{L: Sym{A: label, Conds: conds}, R: Bind{X: reg(next), E: Eps{}}}
}
