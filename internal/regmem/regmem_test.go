package regmem

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/triplestore"
)

// distinctPath builds a path of n nodes with pairwise distinct values.
func distinctPath(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.SetValue(name(i), triplestore.V(fmt.Sprintf("v%d", i)))
		if i > 0 {
			g.AddEdge(name(i-1), "a", name(i))
		}
	}
	return g
}

func name(i int) string { return fmt.Sprintf("n%d", i) }

func TestEpsAndSym(t *testing.T) {
	g := distinctPath(3)
	eps := Eval(Eps{}, g)
	if len(eps) != 3 || !eps[[2]string{"n1", "n1"}] {
		t.Errorf("ε = %v", eps)
	}
	a := Eval(Sym{A: "a"}, g)
	if len(a) != 2 || !a[[2]string{"n0", "n1"}] {
		t.Errorf("a = %v", a)
	}
}

func TestBindAndTest(t *testing.T) {
	// Two edges: one to a node with the same value, one to a different value.
	g := graph.New()
	g.SetValue("u", triplestore.V("k"))
	g.SetValue("same", triplestore.V("k"))
	g.SetValue("diff", triplestore.V("m"))
	g.AddEdge("u", "a", "same")
	g.AddEdge("u", "a", "diff")
	eq := Eval(Bind{X: "x", E: Sym{A: "a", Conds: []Cond{{X: "x"}}}}, g)
	if !eq[[2]string{"u", "same"}] || eq[[2]string{"u", "diff"}] {
		t.Errorf("↓x.a[x=] = %v", eq)
	}
	neq := Eval(Bind{X: "x", E: Sym{A: "a", Conds: []Cond{{X: "x", Neq: true}}}}, g)
	if neq[[2]string{"u", "same"}] || !neq[[2]string{"u", "diff"}] {
		t.Errorf("↓x.a[x≠] = %v", neq)
	}
}

func TestUnboundRegisterFails(t *testing.T) {
	g := distinctPath(2)
	r := Eval(Sym{A: "a", Conds: []Cond{{X: "never"}}}, g)
	if len(r) != 0 {
		t.Errorf("condition on unbound register matched: %v", r)
	}
}

func TestStar(t *testing.T) {
	g := distinctPath(4)
	star := Eval(Star{E: Sym{A: "a"}}, g)
	// Reflexive-transitive over the path: 4+3+2+1.
	if len(star) != 10 {
		t.Errorf("a* = %v", star)
	}
}

func TestAlt(t *testing.T) {
	g := graph.New()
	g.AddEdge("u", "a", "v")
	g.AddEdge("u", "b", "w")
	r := Eval(Alt{L: Sym{A: "a"}, R: Sym{A: "b"}}, g)
	if !r[[2]string{"u", "v"}] || !r[[2]string{"u", "w"}] {
		t.Errorf("a+b = %v", r)
	}
}

// TestExprN is the Proposition 6 experiment: eₙ is nonempty exactly on
// graphs with an a-path through n pairwise-distinct data values.
func TestExprN(t *testing.T) {
	for n := 2; n <= 5; n++ {
		e, err := ExprN(n, "a")
		if err != nil {
			t.Fatal(err)
		}
		big := distinctPath(n)
		if r := Eval(e, big); len(r) == 0 {
			t.Errorf("e%d empty on %d distinct-valued nodes", n, n)
		}
		small := distinctPath(n - 1)
		if r := Eval(e, small); len(r) != 0 {
			t.Errorf("e%d nonempty on %d distinct-valued nodes: %v", n, n-1, r)
		}
	}
	if _, err := ExprN(1, "a"); err == nil {
		t.Error("ExprN(1) should be rejected")
	}
}

// TestExprNRepeatedValues: a long path whose values repeat does not
// satisfy eₙ for n above the number of distinct values.
func TestExprNRepeatedValues(t *testing.T) {
	g := graph.New()
	for i := 0; i < 6; i++ {
		g.SetValue(name(i), triplestore.V(fmt.Sprintf("v%d", i%2)))
		if i > 0 {
			g.AddEdge(name(i-1), "a", name(i))
		}
	}
	e3, _ := ExprN(3, "a")
	if r := Eval(e3, g); len(r) != 0 {
		t.Errorf("e3 matched a 2-valued path: %v", r)
	}
	e2, _ := ExprN(2, "a")
	if r := Eval(e2, g); len(r) == 0 {
		t.Error("e2 should match")
	}
}

func TestString(t *testing.T) {
	e, _ := ExprN(3, "a")
	got := e.String()
	want := "(↓x1.(a[x1≠]·↓x2.ε)·(a[x1≠∧x2≠]·↓x3.ε))"
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}
