// Package regmem implements regular expressions with memory in the style
// of Libkin & Vrgoč (ICDT 2012), the register-automata formalism the TriAL
// paper compares against in Proposition 6. An expression walks a data
// graph, can store the data value of the current node in a register
// (↓x), and can test the current node's value against registers ((x=) and
// (x≠)) while traversing labeled edges:
//
//	e := ε | ↓x.e | a[c] | e·e | e + e | e*
//
// where c is a conjunction of register (in)equality tests applied at the
// node reached by the a-edge.
//
// The paper's Proposition 6 witness is the family eₙ (ExprN): its answer
// set is nonempty on a graph iff the graph contains a path visiting n
// nodes with pairwise distinct data values — a property beyond L⁶∞ω and
// hence beyond TriAL*.
package regmem
