package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestRunBenchJSON runs the full harness once: every workload must
// execute, cross-check engine against evaluator (RunBenchJSON errors on
// mismatch), and produce positive timings. Speedups are recorded, not
// asserted — thresholds are CI policy, not a unit-test invariant.
func TestRunBenchJSON(t *testing.T) {
	rep, err := RunBenchJSON(4)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(benchWorkloads()) + len(shardedWorkloads()); len(rep.Workloads) != want {
		t.Fatalf("got %d workloads, want %d", len(rep.Workloads), want)
	}
	families := map[string]bool{}
	langs := map[string]bool{}
	gated := 0
	for _, w := range rep.Workloads {
		families[w.Family] = true
		langs[w.Lang] = true
		if w.Gated {
			gated++
			if w.Family != "reachability" && w.Family != "sharded" {
				t.Errorf("%s: gated workload in family %q, want reachability or sharded", w.Name, w.Family)
			}
		}
		if w.Family == "sharded" {
			if w.Baseline != "flat-engine" || w.Shards != 4 {
				t.Errorf("%s: sharded workload metadata %q/%d, want flat-engine/4", w.Name, w.Baseline, w.Shards)
			}
			// Single-meaning fields: sharded rows time the flat engine in
			// FlatEngineNs and never touch EvaluatorNs.
			if w.FlatEngineNs <= 0 || w.EvaluatorNs != 0 {
				t.Errorf("%s: sharded baseline timings flat=%d evaluator=%d", w.Name, w.FlatEngineNs, w.EvaluatorNs)
			}
		} else {
			if w.Baseline != "" || w.Shards != 0 {
				t.Errorf("%s: unexpected baseline metadata %q/%d", w.Name, w.Baseline, w.Shards)
			}
			if w.EvaluatorNs <= 0 || w.FlatEngineNs != 0 {
				t.Errorf("%s: baseline timings evaluator=%d flat=%d", w.Name, w.EvaluatorNs, w.FlatEngineNs)
			}
		}
		if w.EngineNs <= 0 {
			t.Errorf("%s: non-positive engine timing %d", w.Name, w.EngineNs)
		}
		if w.Speedup <= 0 {
			t.Errorf("%s: speedup %f", w.Name, w.Speedup)
		}
		if w.ResultSize <= 0 {
			t.Errorf("%s: empty result — the workload measures nothing", w.Name)
		}
	}
	for _, fam := range []string{"reachability", "join", "translated", "sharded"} {
		if !families[fam] {
			t.Errorf("no workload in family %q", fam)
		}
	}
	// The translated family must cover frontend languages, the point of
	// routing them through the engine.
	for _, lang := range []string{"rpq", "gxpath", "nsparql"} {
		if !langs[lang] {
			t.Errorf("no workload in language %q", lang)
		}
	}
	if gated == 0 {
		t.Error("no gated workloads: the CI regression gate would pass vacuously")
	}
	if min := rep.MinGatedSpeedup(); min <= 0 {
		t.Errorf("MinGatedSpeedup = %f", min)
	}
	if min := rep.MinShardedSpeedup(); min <= 0 {
		t.Errorf("MinShardedSpeedup = %f", min)
	}

	// shards <= 1 skips the sharded family entirely.
	flat, err := RunBenchJSON(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(flat.Workloads) != len(benchWorkloads()) {
		t.Errorf("shards=1 report has %d workloads, want %d", len(flat.Workloads), len(benchWorkloads()))
	}
	if flat.MinShardedSpeedup() != 0 {
		t.Errorf("shards=1 MinShardedSpeedup = %f, want 0", flat.MinShardedSpeedup())
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back BenchReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if len(back.Workloads) != len(rep.Workloads) {
		t.Error("JSON round trip lost workloads")
	}
}

func TestMinGatedSpeedup(t *testing.T) {
	rep := &BenchReport{Workloads: []BenchResult{
		{Name: "a", Speedup: 2.0, Gated: true},
		{Name: "b", Speedup: 1.5, Gated: true},
		{Name: "c", Speedup: 0.5},                                       // ungated: ignored
		{Name: "d", Speedup: 1.1, Gated: true, Baseline: "flat-engine"}, // sharded gate only
		{Name: "e", Speedup: 0.9, Baseline: "flat-engine", Shards: 4},   // ungated sharded
		{Name: "f", Speedup: 1.4, Gated: true, Baseline: "flat-engine"}, // sharded gate
	}}
	if got := rep.MinGatedSpeedup(); got != 1.5 {
		t.Errorf("MinGatedSpeedup = %f, want 1.5", got)
	}
	if got := rep.MinShardedSpeedup(); got != 1.1 {
		t.Errorf("MinShardedSpeedup = %f, want 1.1", got)
	}
	if got := (&BenchReport{}).MinGatedSpeedup(); got != 0 {
		t.Errorf("empty report MinGatedSpeedup = %f, want 0", got)
	}
	if got := (&BenchReport{}).MinShardedSpeedup(); got != 0 {
		t.Errorf("empty report MinShardedSpeedup = %f, want 0", got)
	}
}
