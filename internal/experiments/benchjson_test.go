package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/genstore"
)

// TestRunBenchJSON runs the full harness once: every workload must
// execute, cross-check engine against evaluator (RunBenchJSON errors on
// mismatch), and produce positive timings. Speedups are recorded, not
// asserted — thresholds are CI policy, not a unit-test invariant.
func TestRunBenchJSON(t *testing.T) {
	rep, err := RunBenchJSON(4)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(benchWorkloads()) + len(shardedWorkloads()); len(rep.Workloads) != want {
		t.Fatalf("got %d workloads, want %d", len(rep.Workloads), want)
	}
	families := map[string]bool{}
	langs := map[string]bool{}
	gated := 0
	for _, w := range rep.Workloads {
		families[w.Family] = true
		langs[w.Lang] = true
		if w.Gated {
			gated++
			if w.Family != "reachability" && w.Family != "sharded" {
				t.Errorf("%s: gated workload in family %q, want reachability or sharded", w.Name, w.Family)
			}
		}
		if w.Family == "sharded" {
			if w.Baseline != "flat-engine" || w.Shards != 4 {
				t.Errorf("%s: sharded workload metadata %q/%d, want flat-engine/4", w.Name, w.Baseline, w.Shards)
			}
			if rep.GOMAXPROCS <= 1 {
				// Single-core host: the row is cross-checked, annotated, and
				// carries no timings — it must never feed a gate.
				if w.Skipped == "" {
					t.Errorf("%s: sharded row not annotated as skipped at GOMAXPROCS=1", w.Name)
				}
				if w.FlatEngineNs != 0 || w.EngineNs != 0 || w.Speedup != 0 {
					t.Errorf("%s: skipped row carries timings flat=%d engine=%d speedup=%f",
						w.Name, w.FlatEngineNs, w.EngineNs, w.Speedup)
				}
			} else {
				// Single-meaning fields: sharded rows time the flat engine in
				// FlatEngineNs and never touch EvaluatorNs.
				if w.Skipped != "" {
					t.Errorf("%s: skipped on a multi-core host: %s", w.Name, w.Skipped)
				}
				if w.FlatEngineNs <= 0 || w.EvaluatorNs != 0 {
					t.Errorf("%s: sharded baseline timings flat=%d evaluator=%d", w.Name, w.FlatEngineNs, w.EvaluatorNs)
				}
			}
		} else {
			if w.Baseline != "" || w.Shards != 0 {
				t.Errorf("%s: unexpected baseline metadata %q/%d", w.Name, w.Baseline, w.Shards)
			}
			if w.EvaluatorNs <= 0 || w.FlatEngineNs != 0 {
				t.Errorf("%s: baseline timings evaluator=%d flat=%d", w.Name, w.EvaluatorNs, w.FlatEngineNs)
			}
		}
		if w.Skipped == "" {
			if w.EngineNs <= 0 {
				t.Errorf("%s: non-positive engine timing %d", w.Name, w.EngineNs)
			}
			if w.Speedup <= 0 {
				t.Errorf("%s: speedup %f", w.Name, w.Speedup)
			}
		}
		if w.ResultSize <= 0 {
			t.Errorf("%s: empty result — the workload measures nothing", w.Name)
		}
	}
	for _, fam := range []string{"reachability", "join", "translated", "sharded"} {
		if !families[fam] {
			t.Errorf("no workload in family %q", fam)
		}
	}
	// The translated family must cover frontend languages, the point of
	// routing them through the engine.
	for _, lang := range []string{"rpq", "gxpath", "nsparql"} {
		if !langs[lang] {
			t.Errorf("no workload in language %q", lang)
		}
	}
	if gated == 0 {
		t.Error("no gated workloads: the CI regression gate would pass vacuously")
	}
	if min := rep.MinGatedSpeedup(); min <= 0 {
		t.Errorf("MinGatedSpeedup = %f", min)
	}
	if rep.GOMAXPROCS > 1 {
		if min := rep.MinShardedSpeedup(); min <= 0 {
			t.Errorf("MinShardedSpeedup = %f", min)
		}
	} else if min := rep.MinShardedSpeedup(); min != 0 {
		// All sharded rows are skipped at GOMAXPROCS=1.
		t.Errorf("MinShardedSpeedup = %f on a single-core host, want 0", min)
	}

	// shards <= 1 skips the sharded family entirely.
	flat, err := RunBenchJSON(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(flat.Workloads) != len(benchWorkloads()) {
		t.Errorf("shards=1 report has %d workloads, want %d", len(flat.Workloads), len(benchWorkloads()))
	}
	if flat.MinShardedSpeedup() != 0 {
		t.Errorf("shards=1 MinShardedSpeedup = %f, want 0", flat.MinShardedSpeedup())
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back BenchReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if len(back.Workloads) != len(rep.Workloads) {
		t.Error("JSON round trip lost workloads")
	}
}

func TestMinGatedSpeedup(t *testing.T) {
	rep := &BenchReport{Workloads: []BenchResult{
		{Name: "a", Speedup: 2.0, Gated: true},
		{Name: "b", Speedup: 1.5, Gated: true},
		{Name: "c", Speedup: 0.5},                                                          // ungated: ignored
		{Name: "d", Speedup: 1.1, Gated: true, Family: "sharded", Baseline: "flat-engine"}, // sharded gate only
		{Name: "e", Speedup: 0.9, Family: "sharded", Baseline: "flat-engine", Shards: 4},   // ungated sharded
		{Name: "f", Speedup: 1.4, Gated: true, Family: "sharded", Baseline: "flat-engine"}, // sharded gate
		{Name: "g", Gated: true, Family: "sharded", Baseline: "flat-engine", Skipped: "GOMAXPROCS=1"},
		{Name: "h", Speedup: 0.8, Gated: true, Family: "scale", Baseline: "hash-join", GateMinSpeedup: 1.0},
	}}
	if got := rep.MinGatedSpeedup(); got != 1.5 {
		t.Errorf("MinGatedSpeedup = %f, want 1.5", got)
	}
	// Skipped rows and non-sharded families must not drag the sharded
	// minimum down (g would make it 0, h would make it 0.8).
	if got := rep.MinShardedSpeedup(); got != 1.1 {
		t.Errorf("MinShardedSpeedup = %f, want 1.1", got)
	}
	if got := (&BenchReport{}).MinGatedSpeedup(); got != 0 {
		t.Errorf("empty report MinGatedSpeedup = %f, want 0", got)
	}
	if got := (&BenchReport{}).MinShardedSpeedup(); got != 0 {
		t.Errorf("empty report MinShardedSpeedup = %f, want 0", got)
	}
}

// TestGateFailures pins the whole gating matrix on a synthetic report:
// family defaults, per-row threshold overrides, the Skipped exemption,
// and the GateMinProcs cutoff at both 1 and 4 GOMAXPROCS.
func TestGateFailures(t *testing.T) {
	workloads := []BenchResult{
		{Name: "reach-ok", Speedup: 2.0, Gated: true},
		{Name: "reach-bad", Speedup: 1.1, Gated: true},
		{Name: "ungated", Speedup: 0.1},
		{Name: "sharded-bad", Speedup: 0.7, Gated: true, Family: "sharded", Baseline: "flat-engine"},
		{Name: "sharded-skipped", Gated: true, Family: "sharded", Baseline: "flat-engine",
			Skipped: "GOMAXPROCS=1: not timed"},
		{Name: "sharded-4core", Speedup: 0.9, Gated: true, Family: "sharded", Baseline: "flat-engine",
			GateMinProcs: 4, GateMinSpeedup: 1.0},
		{Name: "triangle-count", Speedup: 0.8, Gated: true, Family: "scale", Baseline: "hash-join",
			GateMinSpeedup: 1.0},
		{Name: "social-join-1M", Speedup: 1.2, Gated: true, Family: "scale", Baseline: "evaluator",
			GateMinProcs: 4, GateMinSpeedup: 1.5},
	}

	single := &BenchReport{GOMAXPROCS: 1, Workloads: workloads}
	got := single.GateFailures(1.2, 1.0)
	// At 1 core: reach-bad (below the 1.2 default), sharded-bad (below
	// the 1.0 sharded default) and triangle-count (below its own 1.0 —
	// the leapfrog advantage is algorithmic, so it gates on any host).
	// The skipped row and both GateMinProcs=4 rows are exempt.
	want := []string{"reach-bad", "sharded-bad", "triangle-count"}
	if len(got) != len(want) {
		t.Fatalf("GateFailures at 1 proc = %v, want failures for %v", got, want)
	}
	for i, name := range want {
		if !strings.Contains(got[i], name) {
			t.Errorf("failure %d = %q, want it to name %s", i, got[i], name)
		}
	}

	multi := &BenchReport{GOMAXPROCS: 4, Workloads: workloads}
	got = multi.GateFailures(1.2, 1.0)
	// At 4 cores the GateMinProcs=4 rows join in: sharded-4core is below
	// its 1.0 override and social-join-1M below its 1.5.
	want = []string{"reach-bad", "sharded-bad", "sharded-4core", "triangle-count", "social-join-1M"}
	if len(got) != len(want) {
		t.Fatalf("GateFailures at 4 procs = %v, want failures for %v", got, want)
	}
	for i, name := range want {
		if !strings.Contains(got[i], name) {
			t.Errorf("failure %d = %q, want it to name %s", i, got[i], name)
		}
	}

	// All gates off (zero thresholds): only the per-row overrides bind.
	got = multi.GateFailures(0, 0)
	want = []string{"sharded-4core", "triangle-count", "social-join-1M"}
	if len(got) != len(want) {
		t.Fatalf("GateFailures with zero defaults = %v, want failures for %v", got, want)
	}

	if fails := (&BenchReport{GOMAXPROCS: 4}).GateFailures(1.2, 1.0); fails != nil {
		t.Errorf("empty report GateFailures = %v, want nil", fails)
	}
}

// TestRunScaleWorkload exercises the scale runner mechanics on a
// fixture-sized recipe of each baseline kind (the real scaleWorkloads
// rows build million-triple stores and only run under `trialbench
// -scale`).
// TestBoundedRAMWorkload exercises the bounded-RAM runner mechanics at
// fixture size (the real bounded-ram-1M row builds a million-triple
// store and only runs under `trialbench -scale`): both legs probe the
// same sampled leads, cross-check, and the row carries the 0.5 gate
// that holds cold probes to within 2x of materialized ones.
func TestBoundedRAMWorkload(t *testing.T) {
	res, err := boundedRAMWorkload("bounded-ram-small",
		genstore.PowerLawSocial(12, 500, 3000), 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.Family != "storage" || res.Baseline != "materialized-probes" {
		t.Errorf("family/baseline = %s/%s", res.Family, res.Baseline)
	}
	if res.ResultSize <= 0 || res.EngineNs <= 0 || res.FlatEngineNs <= 0 || res.Speedup <= 0 {
		t.Errorf("result=%d engine=%dns flat=%dns speedup=%f",
			res.ResultSize, res.EngineNs, res.FlatEngineNs, res.Speedup)
	}
	if !res.Gated || res.GateMinSpeedup != 0.5 {
		t.Errorf("gate metadata gated=%v min=%f, want gated at 0.5", res.Gated, res.GateMinSpeedup)
	}
	if res.Triples != 3000 {
		t.Errorf("triples = %d, want 3000", res.Triples)
	}
}

func TestRunScaleWorkload(t *testing.T) {
	for _, w := range []scaleWorkload{
		{
			name:           "triangle-count-small",
			source:         "join[1,2,3; 3=1',1=3'](join[1,3,3'; 3=1'](E, E), E)",
			gen:            genstore.PowerLawGraph(11, 200, 1500),
			baseline:       "hash-join",
			gateMinSpeedup: 1.0,
		},
		{
			name:         "social-join-small",
			source:       "join[1,2,3'; 3=1'](E, E)",
			gen:          genstore.PowerLawSocial(12, 500, 3000),
			baseline:     "evaluator",
			gateMinProcs: 4,
		},
	} {
		res, sp, err := runScaleWorkload(w)
		if err != nil {
			t.Fatalf("%s: %v", w.name, err)
		}
		if res.Family != "scale" || res.Baseline != w.baseline {
			t.Errorf("%s: family/baseline = %s/%s", w.name, res.Family, res.Baseline)
		}
		if res.ResultSize <= 0 || res.EngineNs <= 0 || res.Speedup <= 0 {
			t.Errorf("%s: result=%d engine=%dns speedup=%f", w.name, res.ResultSize, res.EngineNs, res.Speedup)
		}
		if w.baseline == "hash-join" && (res.FlatEngineNs <= 0 || res.EvaluatorNs != 0) {
			t.Errorf("%s: hash-join baseline timings flat=%d evaluator=%d", w.name, res.FlatEngineNs, res.EvaluatorNs)
		}
		if w.baseline == "evaluator" && (res.EvaluatorNs <= 0 || res.FlatEngineNs != 0) {
			t.Errorf("%s: evaluator baseline timings evaluator=%d flat=%d", w.name, res.EvaluatorNs, res.FlatEngineNs)
		}
		if res.Gated != (w.gateMinSpeedup > 0) || res.GateMinProcs != w.gateMinProcs {
			t.Errorf("%s: gate metadata gated=%v minprocs=%d", w.name, res.Gated, res.GateMinProcs)
		}
		if sp == nil {
			t.Errorf("%s: no trace span", w.name)
		}
	}
}
