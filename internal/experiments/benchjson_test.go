package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestRunBenchJSON runs the full harness once: every workload must
// execute, cross-check engine against evaluator (RunBenchJSON errors on
// mismatch), and produce positive timings. Speedups are recorded, not
// asserted — thresholds are CI policy, not a unit-test invariant.
func TestRunBenchJSON(t *testing.T) {
	rep, err := RunBenchJSON()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Workloads) != len(benchWorkloads()) {
		t.Fatalf("got %d workloads, want %d", len(rep.Workloads), len(benchWorkloads()))
	}
	families := map[string]bool{}
	langs := map[string]bool{}
	gated := 0
	for _, w := range rep.Workloads {
		families[w.Family] = true
		langs[w.Lang] = true
		if w.Gated {
			gated++
			if w.Family != "reachability" {
				t.Errorf("%s: gated workload in family %q, want reachability", w.Name, w.Family)
			}
		}
		if w.EvaluatorNs <= 0 || w.EngineNs <= 0 {
			t.Errorf("%s: non-positive timings %d/%d", w.Name, w.EvaluatorNs, w.EngineNs)
		}
		if w.Speedup <= 0 {
			t.Errorf("%s: speedup %f", w.Name, w.Speedup)
		}
		if w.ResultSize <= 0 {
			t.Errorf("%s: empty result — the workload measures nothing", w.Name)
		}
	}
	for _, fam := range []string{"reachability", "join", "translated"} {
		if !families[fam] {
			t.Errorf("no workload in family %q", fam)
		}
	}
	// The translated family must cover frontend languages, the point of
	// routing them through the engine.
	for _, lang := range []string{"rpq", "gxpath", "nsparql"} {
		if !langs[lang] {
			t.Errorf("no workload in language %q", lang)
		}
	}
	if gated == 0 {
		t.Error("no gated workloads: the CI regression gate would pass vacuously")
	}
	if min := rep.MinGatedSpeedup(); min <= 0 {
		t.Errorf("MinGatedSpeedup = %f", min)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back BenchReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if len(back.Workloads) != len(rep.Workloads) {
		t.Error("JSON round trip lost workloads")
	}
}

func TestMinGatedSpeedup(t *testing.T) {
	rep := &BenchReport{Workloads: []BenchResult{
		{Name: "a", Speedup: 2.0, Gated: true},
		{Name: "b", Speedup: 1.5, Gated: true},
		{Name: "c", Speedup: 0.5}, // ungated: ignored
	}}
	if got := rep.MinGatedSpeedup(); got != 1.5 {
		t.Errorf("MinGatedSpeedup = %f, want 1.5", got)
	}
	if got := (&BenchReport{}).MinGatedSpeedup(); got != 0 {
		t.Errorf("empty report MinGatedSpeedup = %f, want 0", got)
	}
}
