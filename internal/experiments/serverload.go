package experiments

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// This file is the serving-tier load harness behind `trialload`: N
// concurrent clients drive a mixed query/ingest workload against a
// serve.Server handler (in-process, over real HTTP via httptest),
// measuring per-class latency percentiles and aggregate QPS, then run a
// cancellation probe — a deadline far below the query's runtime — and
// verify through trial_query_cancelled_total and the process goroutine
// count that the engine's workers actually stopped. The result is
// BENCH_server.json, gated in CI like BENCH_engine.json.

// LoadConfig parameterizes one load run.
type LoadConfig struct {
	// Clients is the number of concurrent clients (default 8).
	Clients int
	// RequestsPerClient is how many requests each client issues
	// (default 50).
	RequestsPerClient int
	// Queries is the read workload, one picked per request (uniform);
	// defaults to a scan and two joins over relation E. Full star
	// closures are deliberately not in the default mix — on the default
	// grid(48) store one closure is ~1.5s of engine time, which is the
	// cancellation probe's job, not the throughput workload's.
	Queries []string
	// QueryLimit bounds each query response page (default 100).
	QueryLimit int
	// IngestEvery makes every k-th request of a client an ingest batch
	// instead of a query (0 disables ingest; default 5).
	IngestEvery int
	// BatchSize is the triples per ingest batch (default 8).
	BatchSize int
	// CancelQuery, when non-empty, is the cancellation probe: a query
	// expected to run far longer than CancelTimeoutMs, issued once
	// after the load phase with timeout_ms set. The probe records the
	// trial_query_cancelled_total delta and checks the goroutine count
	// drains back to its pre-probe baseline.
	CancelQuery string
	// CancelTimeoutMs is the probe deadline (default 100).
	CancelTimeoutMs int
}

// LatencySummary is one request class's latency distribution.
type LatencySummary struct {
	Count int     `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

// CancelProbe is the cancellation check's outcome: the probe query must
// answer 504, bump the cancelled counter, and leave no engine workers
// running (goroutines back to the pre-probe baseline).
type CancelProbe struct {
	Ran             bool    `json:"ran"`
	Query           string  `json:"query"`
	TimeoutMs       int     `json:"timeout_ms"`
	Status          int     `json:"status"`
	CancelledDelta  float64 `json:"cancelled_delta"`
	GoroutineBase   int     `json:"goroutine_base"`
	GoroutineAfter  int     `json:"goroutine_after"`
	DrainedWithinMs float64 `json:"drained_within_ms"`
}

// LoadReport is the BENCH_server.json document.
type LoadReport struct {
	GoVersion  string         `json:"go_version"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Clients    int            `json:"clients"`
	Requests   int            `json:"requests"`
	Errors     int            `json:"errors"`
	DurationMs float64        `json:"duration_ms"`
	QPS        float64        `json:"qps"`
	Query      LatencySummary `json:"query"`
	Ingest     LatencySummary `json:"ingest"`
	Cancel     CancelProbe    `json:"cancel"`
}

// WriteJSON writes the report as indented JSON.
func (r *LoadReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

func (c *LoadConfig) defaults() {
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.RequestsPerClient <= 0 {
		c.RequestsPerClient = 50
	}
	if len(c.Queries) == 0 {
		c.Queries = []string{
			"E",
			"join[1,3',3; 2=1'](E, E)",
			"join[1,2,3'; 3=1', 2=2'](E, E)",
		}
	}
	if c.QueryLimit <= 0 {
		c.QueryLimit = 100
	}
	if c.IngestEvery < 0 {
		c.IngestEvery = 0
	} else if c.IngestEvery == 0 {
		c.IngestEvery = 5
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 8
	}
	if c.CancelTimeoutMs <= 0 {
		c.CancelTimeoutMs = 100
	}
}

// RunServerLoad drives the load phase and the cancellation probe
// against h (a serve.Server, but any handler with the /v1 contract
// works) and returns the report. Request errors (non-2xx statuses,
// transport failures) are counted, not fatal — the gates decide.
func RunServerLoad(h http.Handler, cfg LoadConfig) (*LoadReport, error) {
	cfg.defaults()
	ts := httptest.NewServer(h)
	defer ts.Close()
	client := ts.Client()
	client.Timeout = 2 * time.Minute

	var (
		mu         sync.Mutex
		queryLat   []time.Duration
		ingestLat  []time.Duration
		errCount   int
		totalCount int
	)
	record := func(class string, d time.Duration, ok bool) {
		mu.Lock()
		defer mu.Unlock()
		totalCount++
		if !ok {
			errCount++
			return
		}
		if class == "ingest" {
			ingestLat = append(ingestLat, d)
		} else {
			queryLat = append(queryLat, d)
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c) + 1))
			for i := 0; i < cfg.RequestsPerClient; i++ {
				if cfg.IngestEvery > 0 && (i+1)%cfg.IngestEvery == 0 {
					var sb strings.Builder
					for j := 0; j < cfg.BatchSize; j++ {
						fmt.Fprintf(&sb, "{\"s\":\"load-c%d-r%d-%d\",\"p\":\"load\",\"o\":\"load-c%d-r%d-%d\"}\n",
							c, i, j, c, i, j+1)
					}
					t0 := time.Now()
					resp, err := client.Post(ts.URL+"/v1/triples", "application/x-ndjson",
						strings.NewReader(sb.String()))
					ok := err == nil && resp.StatusCode == http.StatusOK
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
					record("ingest", time.Since(t0), ok)
					continue
				}
				q := cfg.Queries[rng.Intn(len(cfg.Queries))]
				u := fmt.Sprintf("%s/v1/query?limit=%d&q=%s", ts.URL, cfg.QueryLimit, url.QueryEscape(q))
				t0 := time.Now()
				resp, err := client.Get(u)
				ok := err == nil && resp.StatusCode == http.StatusOK
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				record("query", time.Since(t0), ok)
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	rep := &LoadReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Clients:    cfg.Clients,
		Requests:   totalCount,
		Errors:     errCount,
		DurationMs: float64(wall.Microseconds()) / 1000,
		QPS:        float64(totalCount) / wall.Seconds(),
		Query:      summarize(queryLat),
		Ingest:     summarize(ingestLat),
	}
	if cfg.CancelQuery != "" {
		probe, err := runCancelProbe(ts, client, cfg)
		if err != nil {
			return rep, err
		}
		rep.Cancel = probe
	}
	return rep, nil
}

// runCancelProbe issues one deadline-doomed query and verifies the
// serving tier's cancellation contract: 504, a cancelled-counter bump,
// and engine workers drained back to the pre-probe goroutine baseline.
func runCancelProbe(ts *httptest.Server, client *http.Client, cfg LoadConfig) (CancelProbe, error) {
	probe := CancelProbe{Ran: true, Query: cfg.CancelQuery, TimeoutMs: cfg.CancelTimeoutMs}
	before, err := scrapeCounter(ts, client, "trial_query_cancelled_total")
	if err != nil {
		return probe, err
	}
	// Let load-phase goroutines (closed keep-alive conns, finished
	// workers) wind down before taking the baseline.
	time.Sleep(50 * time.Millisecond)
	probe.GoroutineBase = runtime.NumGoroutine()

	u := fmt.Sprintf("%s/v1/query?timeout_ms=%d&q=%s", ts.URL, cfg.CancelTimeoutMs, url.QueryEscape(cfg.CancelQuery))
	resp, err := client.Get(u)
	if err != nil {
		return probe, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	probe.Status = resp.StatusCode

	after, err := scrapeCounter(ts, client, "trial_query_cancelled_total")
	if err != nil {
		return probe, err
	}
	probe.CancelledDelta = after - before

	drainStart := time.Now()
	deadline := drainStart.Add(5 * time.Second)
	for {
		probe.GoroutineAfter = runtime.NumGoroutine()
		if probe.GoroutineAfter <= probe.GoroutineBase+2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	probe.DrainedWithinMs = float64(time.Since(drainStart).Microseconds()) / 1000
	return probe, nil
}

// scrapeCounter sums every series of one counter family from the
// /v1/metrics exposition.
func scrapeCounter(ts *httptest.Server, client *http.Client, family string) (float64, error) {
	resp, err := client.Get(ts.URL + "/v1/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	total := 0.0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, family) {
			continue
		}
		rest := line[len(family):]
		if !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "{") {
			continue // a longer family sharing the prefix
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			return 0, fmt.Errorf("scrape %s: bad sample %q", family, line)
		}
		total += v
	}
	return total, sc.Err()
}

// summarize computes the latency distribution of one request class.
func summarize(lat []time.Duration) LatencySummary {
	if len(lat) == 0 {
		return LatencySummary{}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	pct := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(lat)))) - 1
		if i < 0 {
			i = 0
		}
		return ms(lat[i])
	}
	return LatencySummary{
		Count: len(lat),
		P50Ms: pct(0.50),
		P95Ms: pct(0.95),
		P99Ms: pct(0.99),
		MaxMs: ms(lat[len(lat)-1]),
	}
}
