package experiments

import (
	"testing"
)

// TestWitnessExperiments runs every fast (non-perf) experiment and asserts
// the reproduced claim held.
func TestWitnessExperiments(t *testing.T) {
	for _, r := range All() {
		if r.Perf {
			continue
		}
		r := r
		t.Run(r.ID, func(t *testing.T) {
			rep := r.Run()
			if rep.ID != r.ID {
				t.Errorf("report ID %q does not match runner ID %q", rep.ID, r.ID)
			}
			if !rep.Pass {
				t.Errorf("experiment failed:\n%s", rep)
			}
			if len(rep.Rows) == 0 {
				t.Errorf("experiment produced no table rows")
			}
		})
	}
}

// TestPerfExperimentsSmoke runs the perf experiments (shape checks use
// wide tolerance bands; see checkRatios). Skipped in -short mode.
func TestPerfExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("perf experiments skipped in -short mode")
	}
	for _, r := range All() {
		if !r.Perf {
			continue
		}
		r := r
		t.Run(r.ID, func(t *testing.T) {
			rep := r.Run()
			if !rep.Pass {
				t.Errorf("perf experiment failed:\n%s", rep)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if r := ByID("E4"); r == nil || r.ID != "E4" {
		t.Error("ByID(E4) failed")
	}
	if r := ByID("E999"); r != nil {
		t.Error("ByID should return nil for unknown IDs")
	}
}

func TestReportString(t *testing.T) {
	rep := &Report{ID: "EX", Title: "demo", Source: "here", Pass: true,
		Header: []string{"a", "b"}}
	rep.row("1", "2")
	rep.notef("a note")
	out := rep.String()
	for _, want := range []string{"EX", "demo", "PASS", "a note"} {
		if !contains(out, want) {
			t.Errorf("report rendering missing %q:\n%s", want, out)
		}
	}
	rep.failf("boom")
	if !contains(rep.String(), "FAIL") {
		t.Error("failed report should render FAIL")
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}
