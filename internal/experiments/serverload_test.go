package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/genstore"
	"repro/internal/serve"
)

// TestRunServerLoadSmoke runs a small mixed workload plus the
// cancellation probe against a real serve.Server and checks the report
// is fully populated: every request accounted for, no errors,
// percentiles ordered, and the probe observing the 504 + counter bump
// + goroutine drain that trialload gates on.
func TestRunServerLoadSmoke(t *testing.T) {
	srv := serve.New(genstore.Grid(48, 48), serve.WithWorkers(4), serve.WithShards(2))
	cfg := LoadConfig{
		Clients:           4,
		RequestsPerClient: 10,
		Queries:           []string{"E", "join[1,3',3; 2=1'](E, E)"},
		QueryLimit:        50,
		IngestEvery:       5,
		BatchSize:         4,
		CancelQuery:       "rstar[1,2,3'; 3=1'](E)",
		CancelTimeoutMs:   1,
	}
	rep, err := RunServerLoad(srv, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 40 {
		t.Errorf("requests = %d, want 40", rep.Requests)
	}
	if rep.Errors != 0 {
		t.Errorf("errors = %d, want 0", rep.Errors)
	}
	if rep.Query.Count+rep.Ingest.Count != rep.Requests {
		t.Errorf("class counts %d+%d do not sum to %d requests",
			rep.Query.Count, rep.Ingest.Count, rep.Requests)
	}
	if rep.Ingest.Count != 4*2 { // every 5th of 10 requests per client
		t.Errorf("ingest count = %d, want 8", rep.Ingest.Count)
	}
	if rep.QPS <= 0 || rep.DurationMs <= 0 {
		t.Errorf("throughput unpopulated: qps=%f duration=%fms", rep.QPS, rep.DurationMs)
	}
	for _, s := range []LatencySummary{rep.Query, rep.Ingest} {
		if s.P50Ms > s.P95Ms || s.P95Ms > s.P99Ms || s.P99Ms > s.MaxMs {
			t.Errorf("percentiles out of order: %+v", s)
		}
	}

	if !rep.Cancel.Ran {
		t.Fatal("cancel probe did not run")
	}
	if rep.Cancel.Status != 504 {
		t.Errorf("cancel probe status = %d, want 504", rep.Cancel.Status)
	}
	if rep.Cancel.CancelledDelta < 1 {
		t.Errorf("cancelled delta = %f, want >= 1", rep.Cancel.CancelledDelta)
	}
	if rep.Cancel.GoroutineAfter > rep.Cancel.GoroutineBase+2 {
		t.Errorf("goroutines %d -> %d did not drain",
			rep.Cancel.GoroutineBase, rep.Cancel.GoroutineAfter)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round LoadReport
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if round.Cancel.Query != cfg.CancelQuery {
		t.Errorf("round-tripped cancel query = %q", round.Cancel.Query)
	}
}

// TestRunServerLoadNoCancel: an empty CancelQuery skips the probe.
func TestRunServerLoadNoCancel(t *testing.T) {
	srv := serve.New(genstore.Grid(8, 8), serve.WithWorkers(2))
	rep, err := RunServerLoad(srv, LoadConfig{
		Clients:           2,
		RequestsPerClient: 4,
		Queries:           []string{"E"},
		IngestEvery:       -1, // disable ingest
		CancelQuery:       "",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cancel.Ran {
		t.Error("cancel probe ran despite empty CancelQuery")
	}
	if rep.Ingest.Count != 0 {
		t.Errorf("ingest count = %d with ingest disabled", rep.Ingest.Count)
	}
	if rep.Query.Count != 8 {
		t.Errorf("query count = %d, want 8", rep.Query.Count)
	}
}

// TestSummarize pins the ceil-indexed percentile math on a known
// distribution.
func TestSummarize(t *testing.T) {
	var lat []time.Duration
	for i := 1; i <= 100; i++ {
		lat = append(lat, time.Duration(i)*time.Millisecond)
	}
	s := summarize(lat)
	if s.Count != 100 || s.P50Ms != 50 || s.P95Ms != 95 || s.P99Ms != 99 || s.MaxMs != 100 {
		t.Errorf("summarize(1..100ms) = %+v", s)
	}
	if z := summarize(nil); z.Count != 0 || z.MaxMs != 0 {
		t.Errorf("summarize(nil) = %+v", z)
	}
}
