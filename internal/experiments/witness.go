package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/datalog"
	"repro/internal/fixtures"
	"repro/internal/fo"
	"repro/internal/genstore"
	"repro/internal/graph"
	"repro/internal/gxpath"
	"repro/internal/nre"
	"repro/internal/rdf"
	"repro/internal/regmem"
	"repro/internal/rpq"
	"repro/internal/translate"
	"repro/internal/trial"
	"repro/internal/triplestore"
)

func mustEval(s *triplestore.Store, e trial.Expr) *triplestore.Relation {
	ev := trial.NewEvaluator(s)
	r, err := ev.Eval(e)
	if err != nil {
		panic(fmt.Sprintf("experiments: eval %s: %v", e, err))
	}
	return r
}

func pairNames(s *triplestore.Store, r *triplestore.Relation) map[[2]string]bool {
	out := map[[2]string]bool{}
	r.ForEach(func(t triplestore.Triple) {
		out[[2]string{s.Name(t[0]), s.Name(t[2])}] = true
	})
	return out
}

// E1Example2 regenerates the result table of Example 2.
func E1Example2() *Report {
	rep := &Report{
		ID: "E1", Title: "Example 2: e = E ✶[1,3',3; 2=1'] E on the Figure 1 store",
		Source: "§3, Example 2",
		Header: []string{"subject", "company", "object"},
		Pass:   true,
	}
	s := fixtures.Transport()
	r := mustEval(s, trial.Example2(fixtures.RelE))
	want := map[[3]string]bool{
		{"St. Andrews", "NatExpress", "Edinburgh"}: true,
		{"Edinburgh", "EastCoast", "London"}:       true,
		{"London", "Eurostar", "Brussels"}:         true,
	}
	got := map[[3]string]bool{}
	r.ForEach(func(t triplestore.Triple) {
		k := [3]string{s.Name(t[0]), s.Name(t[1]), s.Name(t[2])}
		got[k] = true
		rep.row(k[0], k[1], k[2])
	})
	if len(got) != len(want) {
		rep.failf("got %d triples, paper lists %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			rep.failf("missing paper row %v", k)
		}
	}
	return rep
}

// E2Example3 reproduces the non-associativity demonstration of Example 3.
func E2Example3() *Report {
	rep := &Report{
		ID: "E2", Title: "Example 3: right vs left Kleene closure of ✶[1,2,2'; 3=1']",
		Source: "§3, Example 3",
		Header: []string{"closure", "derived beyond E"},
		Pass:   true,
	}
	s := fixtures.Example3()
	cond := trial.Cond{Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L3), trial.P(trial.R1))}}
	right := mustEval(s, trial.MustStar(trial.R(fixtures.RelE), [3]trial.Pos{trial.L1, trial.L2, trial.R2}, cond, false))
	left := mustEval(s, trial.MustStar(trial.R(fixtures.RelE), [3]trial.Pos{trial.L1, trial.L2, trial.R2}, cond, true))
	derived := func(r *triplestore.Relation) string {
		base := s.Relation(fixtures.RelE)
		out := ""
		for _, t := range r.Triples() {
			if !base.Has(t) {
				out += s.FormatTriple(t) + " "
			}
		}
		return out
	}
	rep.row("right (e ✶)*", derived(right))
	rep.row("left (✶ e)*", derived(left))
	// Paper: right yields {(a,b,d),(a,b,e)}; left yields {(a,b,d)} only.
	if right.Len() != 5 || left.Len() != 4 {
		rep.failf("sizes: right %d (want 5), left %d (want 4)", right.Len(), left.Len())
	}
	abe := triplestore.Triple{s.Lookup("a"), s.Lookup("b"), s.Lookup("e")}
	if !right.Has(abe) || left.Has(abe) {
		rep.failf("(a,b,e) membership: right %v (want true), left %v (want false)", right.Has(abe), left.Has(abe))
	}
	return rep
}

// E3QueryQ reproduces the running query Q on the Figure 1 store.
func E3QueryQ() *Report {
	rep := &Report{
		ID: "E3", Title: "Query Q: same-company reachability between cities",
		Source: "§2.2, Theorem 1, Example 4",
		Header: []string{"pair", "in Q(D)", "paper"},
		Pass:   true,
	}
	s := fixtures.Transport()
	pairs := pairNames(s, mustEval(s, trial.QueryQ(fixtures.RelE)))
	checks := []struct {
		from, to string
		want     bool
	}{
		{"Edinburgh", "London", true},
		{"St. Andrews", "London", true},
		{"St. Andrews", "Brussels", false},
	}
	for _, c := range checks {
		got := pairs[[2]string{c.from, c.to}]
		rep.row(fmt.Sprintf("(%s, %s)", c.from, c.to), fmt.Sprint(got), fmt.Sprint(c.want))
		if got != c.want {
			rep.failf("pair (%s, %s): got %v want %v", c.from, c.to, got, c.want)
		}
	}
	return rep
}

// enumerateNREs generates all NREs over the σ-alphabet with at most n
// operator applications (breadth-limited), used to confirm empirically
// that no small NRE distinguishes the Proposition 1 witnesses.
func enumerateNREs(maxSize, cap int) []nre.Expr {
	var atoms []nre.Expr
	atoms = append(atoms, nre.Epsilon{})
	for _, a := range []string{rdf.LabelNext, rdf.LabelEdge, rdf.LabelNode} {
		atoms = append(atoms, nre.Label{A: a}, nre.Label{A: a, Inv: true})
	}
	levels := [][]nre.Expr{atoms}
	all := append([]nre.Expr{}, atoms...)
	for size := 1; size <= maxSize && len(all) < cap; size++ {
		var next []nre.Expr
		prev := levels[size-1]
		for _, e := range prev {
			next = append(next, nre.Star{E: e}, nre.Nest{E: e})
		}
		for _, l := range atoms {
			for _, r := range prev {
				next = append(next, nre.Concat{L: l, R: r}, nre.Union{L: l, R: r})
			}
		}
		levels = append(levels, next)
		all = append(all, next...)
	}
	if len(all) > cap {
		all = all[:cap]
	}
	return all
}

// E4Prop1Witness reproduces the Proposition 1 proof: σ(D1) = σ(D2)
// although Q(D1) ≠ Q(D2), so no NRE over σ(·) expresses Q.
func E4Prop1Witness() *Report {
	rep := &Report{
		ID: "E4", Title: "Proposition 1 witness: σ(D1) = σ(D2) but Q(D1) ≠ Q(D2)",
		Source: "Proposition 1 + appendix",
		Header: []string{"check", "result"},
		Pass:   true,
	}
	d1s, d2s := fixtures.D1(), fixtures.D2()
	d1, err := rdf.FromStore(d1s, fixtures.RelE)
	if err != nil {
		panic(err)
	}
	d2, err := rdf.FromStore(d2s, fixtures.RelE)
	if err != nil {
		panic(err)
	}
	s1, s2 := d1.Sigma(), d2.Sigma()
	eq := s1.Equal(s2)
	rep.row("σ(D1) = σ(D2) as graphs", fmt.Sprint(eq))
	if !eq {
		rep.failf("the σ transformations differ — witness broken")
	}
	// Bounded NRE enumeration: every NRE agrees (trivially, since the
	// graphs are equal — the point of the witness) — checked explicitly
	// through both evaluation paths.
	exprs := enumerateNREs(2, 400)
	agree := 0
	for _, e := range exprs {
		a := nre.Eval(e, nre.GraphStructure{G: s1})
		b := nre.Eval(e, nre.GraphStructure{G: s2})
		if a.Equal(b) {
			agree++
		}
	}
	rep.row(fmt.Sprintf("NREs (size ≤ 2, %d sampled) agreeing on σ(D1)/σ(D2)", len(exprs)),
		fmt.Sprintf("%d/%d", agree, len(exprs)))
	if agree != len(exprs) {
		rep.failf("%d NREs distinguish equal graphs (evaluator bug)", len(exprs)-agree)
	}
	// TriAL* distinguishes: (St Andrews, London) ∈ Q(D1) \ Q(D2).
	q1 := pairNames(d1s, mustEval(d1s, trial.QueryQ(fixtures.RelE)))
	q2 := pairNames(d2s, mustEval(d2s, trial.QueryQ(fixtures.RelE)))
	key := [2]string{"St Andrews", "London"}
	rep.row("(St Andrews, London) ∈ Q(D1)", fmt.Sprint(q1[key]))
	rep.row("(St Andrews, London) ∈ Q(D2)", fmt.Sprint(q2[key]))
	if !q1[key] || q2[key] {
		rep.failf("Q evaluation: want in D1 only (got D1=%v, D2=%v)", q1[key], q2[key])
	}
	return rep
}

// E5Thm1Witness reproduces Theorem 1: the nSPARQL-style NRE semantics over
// triples (next/edge/node axes) cannot express Q either, because it
// factors through σ(·).
func E5Thm1Witness() *Report {
	rep := &Report{
		ID: "E5", Title: "Theorem 1 witness: nSPARQL triple semantics agrees on D1/D2",
		Source: "Theorem 1 + appendix",
		Header: []string{"check", "result"},
		Pass:   true,
	}
	d1, err := rdf.FromStore(fixtures.D1(), fixtures.RelE)
	if err != nil {
		panic(err)
	}
	d2, err := rdf.FromStore(fixtures.D2(), fixtures.RelE)
	if err != nil {
		panic(err)
	}
	t1 := nre.TripleStructure{D: d1}
	t2 := nre.TripleStructure{D: d2}
	exprs := enumerateNREs(2, 400)
	agree := 0
	for _, e := range exprs {
		if nre.Eval(e, t1).Equal(nre.Eval(e, t2)) {
			agree++
		}
	}
	rep.row(fmt.Sprintf("NREs (size ≤ 2, %d sampled) agreeing under triple semantics", len(exprs)),
		fmt.Sprintf("%d/%d", agree, len(exprs)))
	if agree != len(exprs) {
		rep.failf("nSPARQL semantics distinguishes D1/D2 — contradicts σ-factoring")
	}
	// And the semantics factors through σ: evaluating over σ(Di) as a
	// graph gives the same relations.
	factored := 0
	sg := nre.GraphStructure{G: d1.Sigma()}
	for _, e := range exprs {
		if nre.Eval(e, t1).Equal(nre.Eval(e, sg)) {
			factored++
		}
	}
	rep.row("NREs whose triple semantics equals σ-graph semantics", fmt.Sprintf("%d/%d", factored, len(exprs)))
	if factored != len(exprs) {
		rep.failf("triple semantics does not factor through σ")
	}
	return rep
}

// E6Prop2RoundTrip samples the Proposition 2 equivalence: TriAL
// expressions and their TripleDatalog¬ translations agree.
func E6Prop2RoundTrip() *Report {
	return roundTrip("E6", "Proposition 2: TriAL ≡ nonrecursive TripleDatalog¬", false)
}

// E7Thm2RoundTrip samples the Theorem 2 equivalence for TriAL*.
func E7Thm2RoundTrip() *Report {
	return roundTrip("E7", "Theorem 2: TriAL* ≡ ReachTripleDatalog¬", true)
}

func roundTrip(id, title string, stars bool) *Report {
	rep := &Report{
		ID: id, Title: title, Source: "§4",
		Header: []string{"direction", "cases", "agreeing"},
		Pass:   true,
	}
	rng := rand.New(rand.NewSource(99))
	opts := genstore.ExprOptions{
		Relations:       []string{"E"},
		MaxDepth:        3,
		AllowStar:       stars,
		AllowValueConds: true,
		AllowUniverse:   true,
	}
	const n = 60
	fwd, back, backTried := 0, 0, 0
	for i := 0; i < n; i++ {
		s := genstore.Random(rng, 5, 8, 2)
		e := genstore.RandomExpr(rng, opts)
		prog, err := datalog.FromTriAL(e, []string{"E"})
		if err != nil {
			panic(err)
		}
		want := mustEval(s, e)
		res, err := prog.Evaluate(s)
		if err != nil {
			panic(err)
		}
		got, err := res.Answers()
		if err != nil {
			panic(err)
		}
		if got.Equal(want) {
			fwd++
		}
		if e2, err := datalog.ToTriAL(prog); err == nil {
			backTried++
			if mustEval(s, e2).Equal(want) {
				back++
			}
		}
	}
	rep.row("algebra → Datalog", fmt.Sprint(n), fmt.Sprint(fwd))
	rep.row("Datalog → algebra", fmt.Sprint(backTried), fmt.Sprint(back))
	if fwd != n || back != backTried {
		rep.failf("disagreements: forward %d/%d, back %d/%d", fwd, n, back, backTried)
	}
	return rep
}

// E8Membership checks the QueryEvaluation interface of Proposition 3:
// membership tests agree with full computation.
func E8Membership() *Report {
	rep := &Report{
		ID: "E8", Title: "Proposition 3: QueryEvaluation agrees with QueryComputation",
		Source: "§5, Proposition 3",
		Header: []string{"query", "triples checked", "agreeing"},
		Pass:   true,
	}
	rng := rand.New(rand.NewSource(7))
	s := genstore.Random(rng, 6, 20, 2)
	ev := trial.NewEvaluator(s)
	six, _ := trial.DistinctObjects(6)
	queries := map[string]trial.Expr{
		"Example2":   trial.Example2("E"),
		"ReachRight": trial.ReachRight("E"),
		"QueryQ":     trial.QueryQ("E"),
		"Distinct6":  six,
	}
	dom := s.ActiveDomain()
	for name, q := range queries {
		full, err := ev.Eval(q)
		if err != nil {
			panic(err)
		}
		checked, ok := 0, 0
		for _, a := range dom {
			for _, b := range dom {
				for _, c := range dom {
					tr := triplestore.Triple{a, b, c}
					holds, err := ev.Holds(q, tr)
					if err != nil {
						panic(err)
					}
					checked++
					if holds == full.Has(tr) {
						ok++
					}
				}
			}
		}
		rep.row(name, fmt.Sprint(checked), fmt.Sprint(ok))
		if ok != checked {
			rep.failf("%s: %d mismatches", name, checked-ok)
		}
	}
	return rep
}

// E14FO3 reproduces the FO³ ⊊ TriAL direction of Theorem 4: the
// translation is checked on random formulas, and the four-distinct-objects
// query separates T3 from T4 (which FO³ cannot distinguish, by the pebble
// argument of the proof).
func E14FO3() *Report {
	rep := &Report{
		ID: "E14", Title: "Theorem 4: FO³ ⊂ TriAL (translation + T3/T4 witness)",
		Source: "Theorem 4, part 2",
		Header: []string{"check", "result"},
		Pass:   true,
	}
	// Random-translation agreement.
	rng := rand.New(rand.NewSource(5))
	agree, n := 0, 40
	for i := 0; i < n; i++ {
		s := genstore.Random(rng, 4, 7, 2)
		f := randFO3(rng, 3)
		e, err := fo.FO3ToTriAL(f, [3]string{"x1", "x2", "x3"})
		if err != nil {
			panic(err)
		}
		r := mustEval(s, e)
		good := true
		dom := s.ActiveDomain()
		env := fo.Env{}
		for _, a := range dom {
			for _, b := range dom {
				for _, c := range dom {
					env["x1"], env["x2"], env["x3"] = a, b, c
					want, err := fo.Eval(f, s, env)
					if err != nil {
						panic(err)
					}
					if r.Has(triplestore.Triple{a, b, c}) != want {
						good = false
					}
				}
			}
		}
		if good {
			agree++
		}
	}
	rep.row(fmt.Sprintf("random FO³ formulas (%d) matching their translations", n), fmt.Sprintf("%d/%d", agree, n))
	if agree != n {
		rep.failf("FO³ translation disagreed on %d formulas", n-agree)
	}
	// Part 1: TriAL ⊆ FO — the reverse translation on the named queries.
	fwd := 0
	fwdExprs := []trial.Expr{trial.Example2("E"), trial.Example2Extended("E"), trial.Complement(trial.R("E"))}
	fwdStore := genstore.Random(rand.New(rand.NewSource(6)), 4, 7, 2)
	for _, e := range fwdExprs {
		f, err := fo.TriALToFO(e, []string{"E"}, [3]string{"o1", "o2", "o3"})
		if err != nil {
			panic(err)
		}
		want := mustEval(fwdStore, e)
		good := true
		env := fo.Env{}
		for _, a := range fwdStore.ActiveDomain() {
			for _, b := range fwdStore.ActiveDomain() {
				for _, c := range fwdStore.ActiveDomain() {
					env["o1"], env["o2"], env["o3"] = a, b, c
					got, err := fo.Eval(f, fwdStore, env)
					if err != nil {
						panic(err)
					}
					if got != want.Has(triplestore.Triple{a, b, c}) {
						good = false
					}
				}
			}
		}
		if good {
			fwd++
		}
	}
	rep.row(fmt.Sprintf("named TriAL queries (%d) matching their FO translations", len(fwdExprs)),
		fmt.Sprintf("%d/%d", fwd, len(fwdExprs)))
	if fwd != len(fwdExprs) {
		rep.failf("TriAL → FO translation disagreed")
	}
	// T3/T4 witness: four-distinct-objects query.
	four, _ := trial.DistinctObjects(4)
	e3 := mustEval(fixtures.CompleteStore(3), four)
	e4 := mustEval(fixtures.CompleteStore(4), four)
	rep.row("DistinctObjects(4) on T3 (empty expected)", fmt.Sprint(e3.Len() == 0))
	rep.row("DistinctObjects(4) on T4 (nonempty expected)", fmt.Sprint(e4.Len() > 0))
	rep.notef("T3 and T4 are L³∞ω-equivalent by the 3-pebble argument; the separation is TriAL-side only")
	if e3.Len() != 0 || e4.Len() == 0 {
		rep.failf("four-objects query misbehaved: |T3| = %d, |T4| = %d", e3.Len(), e4.Len())
	}
	return rep
}

func randFO3(rng *rand.Rand, depth int) fo.Formula {
	vars := []string{"x1", "x2", "x3"}
	tv := func() fo.Term { return fo.V(vars[rng.Intn(3)]) }
	if depth <= 0 {
		switch rng.Intn(3) {
		case 0:
			return fo.Atom{Rel: "E", Args: [3]fo.Term{tv(), tv(), tv()}}
		case 1:
			return fo.Eq{L: tv(), R: tv()}
		default:
			return fo.Sim{L: tv(), R: tv(), Component: -1}
		}
	}
	switch rng.Intn(6) {
	case 0:
		return randFO3(rng, 0)
	case 1:
		return fo.Not{F: randFO3(rng, depth-1)}
	case 2:
		return fo.And{L: randFO3(rng, depth-1), R: randFO3(rng, depth-1)}
	case 3:
		return fo.Or{L: randFO3(rng, depth-1), R: randFO3(rng, depth-1)}
	case 4:
		return fo.Exists{Var: vars[rng.Intn(3)], F: randFO3(rng, depth-1)}
	default:
		return fo.Forall{Var: vars[rng.Intn(3)], F: randFO3(rng, depth-1)}
	}
}

// E15CountingWitnesses reproduces the Theorem 4 part 3 witnesses: the
// six-distinct-objects query separates T5 from T6 (beyond FO⁵), and the
// FO⁴ formula φ of the appendix separates structures A and B while a
// family of TriAL expressions does not.
func E15CountingWitnesses() *Report {
	rep := &Report{
		ID: "E15", Title: "Theorem 4 part 3: T5/T6 and structures A/B",
		Source: "Theorem 4, part 3 + appendix",
		Header: []string{"check", "result"},
		Pass:   true,
	}
	six, _ := trial.DistinctObjects(6)
	t5 := mustEval(fixtures.CompleteStore(5), six)
	t6 := mustEval(fixtures.CompleteStore(6), six)
	rep.row("DistinctObjects(6) empty on T5", fmt.Sprint(t5.Len() == 0))
	rep.row("DistinctObjects(6) nonempty on T6", fmt.Sprint(t6.Len() > 0))
	if t5.Len() != 0 || t6.Len() == 0 {
		rep.failf("six-objects query misbehaved")
	}

	// Structures A and B: the appendix FO⁴ formula φ distinguishes them.
	a, b := fixtures.StructureA(), fixtures.StructureB()
	phi := appendixPhi()
	va, err := fo.Eval(phi, a, fo.Env{})
	if err != nil {
		panic(err)
	}
	vb, err := fo.Eval(phi, b, fo.Env{})
	if err != nil {
		panic(err)
	}
	rep.row("FO⁴ formula φ holds on A", fmt.Sprint(va))
	rep.row("FO⁴ formula φ holds on B", fmt.Sprint(vb))
	if !va || vb {
		rep.failf("φ should hold on A only (A=%v, B=%v)", va, vb)
	}
	// Spot-check: a family of TriAL expressions does not separate A and B
	// on nonemptiness (the full claim — agreement of all join-game types —
	// is proof-theoretic; we sample the named queries and random TriAL=
	// expressions).
	rng := rand.New(rand.NewSource(31))
	opts := genstore.ExprOptions{Relations: []string{fixtures.RelE}, MaxDepth: 3, EqualityOnly: true}
	agree, n := 0, 30
	for i := 0; i < n; i++ {
		e := genstore.RandomExpr(rng, opts)
		ra := mustEval(a, e)
		rb := mustEval(b, e)
		if (ra.Len() == 0) == (rb.Len() == 0) {
			agree++
		}
	}
	rep.row(fmt.Sprintf("random TriAL= expressions (%d) agreeing on A/B nonemptiness", n),
		fmt.Sprintf("%d/%d", agree, n))
	if agree != n {
		rep.failf("a sampled TriAL= expression separated A and B on nonemptiness")
	}
	return rep
}

// appendixPhi builds the FO⁴ separating formula of the Theorem 4 proof:
//
//	φ = ∃x∃y∃z∃w (ψ(x,y,w) ∧ ψ(x,w,z) ∧ ψ(w,y,z) ∧ ψ(x,y,z) ∧ pairwise ≠)
//	ψ(x,y,z) = ∃w (E(x,w,y) ∧ E(y,w,x) ∧ E(y,w,z) ∧ E(x,w,z) ∧ E(z,w,x)
//	             ∧ E(z,w,y) ∧ x≠y ∧ x≠z ∧ y≠z)
//
// (ψ says x, y, z are mutually connected in both directions through one
// shared middle object w; reusing w inside ψ keeps the variable count at
// four.)
func appendixPhi() fo.Formula {
	E := func(a, b, c string) fo.Formula {
		return fo.Atom{Rel: fixtures.RelE, Args: [3]fo.Term{fo.V(a), fo.V(b), fo.V(c)}}
	}
	neq := func(a, b string) fo.Formula {
		return fo.Not{F: fo.Eq{L: fo.V(a), R: fo.V(b)}}
	}
	conj := func(fs ...fo.Formula) fo.Formula {
		out := fs[0]
		for _, f := range fs[1:] {
			out = fo.And{L: out, R: f}
		}
		return out
	}
	// ψ's internal quantifier reuses whichever of the four variables is
	// not among its arguments — the standard FO⁴ variable-reuse trick; a
	// fixed inner name would be captured when ψ is applied to w.
	psi := func(x, y, z string) fo.Formula {
		used := map[string]bool{x: true, y: true, z: true}
		inner := ""
		for _, v := range []string{"x", "y", "z", "w"} {
			if !used[v] {
				inner = v
				break
			}
		}
		return fo.Exists{Var: inner, F: conj(
			neq(x, y), neq(x, z), neq(y, z),
			E(x, inner, y), E(y, inner, x),
			E(y, inner, z), E(z, inner, y),
			E(x, inner, z), E(z, inner, x),
		)}
	}
	return fo.Exists{Var: "x", F: fo.Exists{Var: "y", F: fo.Exists{Var: "z", F: fo.Exists{Var: "w", F: conj(
		neq("x", "y"), neq("x", "z"), neq("x", "w"), neq("y", "z"), neq("y", "w"), neq("z", "w"),
		psi("x", "y", "w"),
		psi("x", "w", "z"),
		psi("w", "y", "z"),
		psi("x", "y", "z"),
	)}}}}
}

// E22TrCl3 reproduces Theorem 6 (part 2): TrCl³ ⊆ TriAL*, via the
// executable star construction of internal/fo.TrCl3ToTriAL.
func E22TrCl3() *Report {
	rep := &Report{
		ID: "E22", Title: "Theorem 6: TrCl³ ⊂ TriAL* (translation equivalence)",
		Source: "§6.1, Theorem 6",
		Header: []string{"check", "result"},
		Pass:   true,
	}
	rng := rand.New(rand.NewSource(71))
	vars := []string{"x1", "x2", "x3"}
	agree, n := 0, 30
	for i := 0; i < n; i++ {
		s := genstore.Random(rng, 4, 7, 2)
		perm := rng.Perm(3)
		f := fo.TrCl{
			XVars: []string{vars[perm[0]]}, YVars: []string{vars[perm[1]]},
			F:  randFO3(rng, 2),
			T1: []fo.Term{fo.V(vars[rng.Intn(3)])},
			T2: []fo.Term{fo.V(vars[rng.Intn(3)])},
		}
		e, err := fo.TrCl3ToTriAL(f, [3]string{"x1", "x2", "x3"})
		if err != nil {
			panic(err)
		}
		r := mustEval(s, e)
		good := true
		dom := s.ActiveDomain()
		env := fo.Env{}
		for _, a := range dom {
			for _, b := range dom {
				for _, c := range dom {
					env["x1"], env["x2"], env["x3"] = a, b, c
					want, err := fo.Eval(f, s, env)
					if err != nil {
						panic(err)
					}
					if r.Has(triplestore.Triple{a, b, c}) != want {
						good = false
					}
				}
			}
		}
		if good {
			agree++
		}
	}
	rep.row(fmt.Sprintf("random TrCl³ formulas (%d) matching their TriAL* translations", n),
		fmt.Sprintf("%d/%d", agree, n))
	if agree != n {
		rep.failf("TrCl³ translation disagreed on %d formulas", n-agree)
	}
	rep.notef("the reverse separation (TriAL* ⊄ TrCl⁵) is the six-objects query of E15")
	return rep
}

// E16GXPathTranslation samples Theorem 7: GXPath ⊆ TriAL*, plus the
// four-distinct-nodes query beyond GXPath.
func E16GXPathTranslation() *Report {
	rep := &Report{
		ID: "E16", Title: "Theorem 7: GXPath ⊆ TriAL* (sampled translation equivalence)",
		Source: "§6.2.1, Theorem 7",
		Header: []string{"check", "result"},
		Pass:   true,
	}
	rng := rand.New(rand.NewSource(61))
	agree, n := 0, 60
	for i := 0; i < n; i++ {
		g := randGraphE(rng, 4, 7, 2, 0)
		p := randGXPath(rng, 3, false)
		want := gxpath.EvalPath(p, g)
		s := g.ToTriplestore()
		got := pairNames(s, mustEval(s, translate.Path(p, graph.RelE)))
		if len(got) == len(want) {
			same := true
			for pr := range got {
				if !want[pr] {
					same = false
				}
			}
			if same {
				agree++
			}
		}
	}
	rep.row(fmt.Sprintf("random GXPath paths (%d) matching translations", n), fmt.Sprintf("%d/%d", agree, n))
	if agree != n {
		rep.failf("%d GXPath translations disagreed", n-agree)
	}
	// Separation: ≥4 distinct nodes is TriAL-expressible but beyond
	// GXPath ≡ (FO*)³ — verified on complete graphs K3 vs K4.
	four, _ := trial.DistinctObjects(4)
	k := func(n int) *triplestore.Store {
		g := graph.New()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					g.AddEdge(fmt.Sprintf("v%d", i), "a", fmt.Sprintf("v%d", j))
				}
			}
		}
		return g.ToTriplestore()
	}
	r3 := mustEval(k(3), four)
	r4 := mustEval(k(4), four)
	// Note: the encoded store's active domain includes the label "a", so
	// the raw four-objects query counts it; the paper's separating query
	// adds label-exclusion inequalities. We approximate by checking the
	// five-distinct-objects query instead (4 nodes + 1 label).
	five, _ := trial.DistinctObjects(5)
	r3b := mustEval(k(3), five)
	r4b := mustEval(k(4), five)
	rep.row("5-distinct-objects (≈4 nodes + label) on K3 enc.", fmt.Sprint(r3b.Len() > 0))
	rep.row("5-distinct-objects on K4 enc.", fmt.Sprint(r4b.Len() > 0))
	if r3b.Len() != 0 || r4b.Len() == 0 {
		rep.failf("counting query misbehaved on encodings (K3: %d, K4: %d)", r3b.Len(), r4b.Len())
	}
	_ = r3
	_ = r4
	return rep
}

// E17GXPathData samples Corollary 4: GXPath(∼) ⊆ TriAL*.
func E17GXPathData() *Report {
	rep := &Report{
		ID: "E17", Title: "Corollary 4: GXPath(∼) ⊆ TriAL* (sampled translation equivalence)",
		Source: "§6.2.2, Corollary 4",
		Header: []string{"check", "result"},
		Pass:   true,
	}
	rng := rand.New(rand.NewSource(62))
	agree, n := 0, 60
	for i := 0; i < n; i++ {
		g := randGraphE(rng, 4, 7, 2, 2)
		p := randGXPath(rng, 3, true)
		want := gxpath.EvalPath(p, g)
		s := g.ToTriplestore()
		got := pairNames(s, mustEval(s, translate.Path(p, graph.RelE)))
		same := len(got) == len(want)
		for pr := range got {
			if !want[pr] {
				same = false
			}
		}
		if same {
			agree++
		}
	}
	rep.row(fmt.Sprintf("random GXPath(∼) paths (%d) matching translations", n), fmt.Sprintf("%d/%d", agree, n))
	if agree != n {
		rep.failf("%d data-test translations disagreed", n-agree)
	}
	return rep
}

func randGraphE(rng *rand.Rand, nNodes, nEdges, nLabels, nValues int) *graph.Graph {
	g := graph.New()
	for g.NumEdges() < nEdges {
		g.AddEdge(fmt.Sprintf("n%d", rng.Intn(nNodes)),
			string(rune('a'+rng.Intn(nLabels))),
			fmt.Sprintf("n%d", rng.Intn(nNodes)))
	}
	if nValues > 0 {
		for _, v := range g.Nodes() {
			if v[0] == 'n' {
				g.SetValue(v, triplestore.V(string(rune('u'+rng.Intn(nValues)))))
			}
		}
	}
	return g
}

func randGXPath(rng *rand.Rand, depth int, data bool) gxpath.Path {
	if depth <= 0 {
		switch rng.Intn(3) {
		case 0:
			return gxpath.Eps{}
		case 1:
			return gxpath.Label{A: string(rune('a' + rng.Intn(2)))}
		default:
			return gxpath.Label{A: string(rune('a' + rng.Intn(2))), Inv: true}
		}
	}
	n := 6
	if data {
		n = 7
	}
	switch rng.Intn(n) {
	case 0:
		return randGXPath(rng, 0, data)
	case 1:
		return gxpath.Concat{L: randGXPath(rng, depth-1, data), R: randGXPath(rng, depth-1, data)}
	case 2:
		return gxpath.Union{L: randGXPath(rng, depth-1, data), R: randGXPath(rng, depth-1, data)}
	case 3:
		return gxpath.Star{P: randGXPath(rng, depth-1, data)}
	case 4:
		return gxpath.Complement{P: randGXPath(rng, depth-1, data)}
	case 5:
		return gxpath.Test{N: gxpath.Diamond{P: randGXPath(rng, depth-1, data)}}
	default:
		return gxpath.DataCmp{P: randGXPath(rng, depth-1, data), Neq: rng.Intn(2) == 0}
	}
}

// E18CNRE reproduces the Theorem 8 content: the 7-clique CRPQ witness, the
// monotonicity counterexample, and the 3-variable CNRE translation.
func E18CNRE() *Report {
	rep := &Report{
		ID: "E18", Title: "Theorem 8: CNREs vs TriAL*",
		Source: "§6.2.1, Theorem 8 + appendix",
		Header: []string{"check", "result"},
		Pass:   true,
	}
	// (a) The k-clique CRPQ exists and behaves correctly (the 7-clique
	// instance is the property beyond L⁶∞ω). We verify on k = 4 for speed.
	k4 := rpq.Clique(4, "a")
	complete := func(n int) *graph.Graph {
		g := graph.New()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					g.AddEdge(fmt.Sprintf("v%d", i), "a", fmt.Sprintf("v%d", j))
				}
			}
		}
		return g
	}
	in4 := len(rpq.EvalCRPQ(k4, complete(4))) > 0
	in3 := len(rpq.EvalCRPQ(k4, complete(3))) > 0
	rep.row("4-clique CRPQ on K4 / K3", fmt.Sprintf("%v / %v", in4, in3))
	if !in4 || in3 {
		rep.failf("clique CRPQ misbehaved")
	}
	// (b) Monotonicity counterexample: the TriAL query "pairs with no
	// a-edge" shrinks when an edge is added; every CNRE is monotone.
	small := graph.New()
	small.AddEdge("v", "b", "v'")
	large := graph.New()
	large.AddEdge("v", "b", "v'")
	large.AddEdge("v", "a", "v'")
	noA := func(g *graph.Graph) bool {
		s := g.ToTriplestore()
		q := trial.Diff{
			L: translate.AllNodePairs(graph.RelE),
			R: translate.Path(gxpath.Label{A: "a"}, graph.RelE),
		}
		return pairNames(s, mustEval(s, q))[[2]string{"v", "v'"}]
	}
	inSmall, inLarge := noA(small), noA(large)
	rep.row("(v,v') has-no-a-edge on G ⊂ G′", fmt.Sprintf("%v / %v", inSmall, inLarge))
	if !inSmall || inLarge {
		rep.failf("negation query should hold on G only")
	}
	mono := nre.Eval(nre.Star{E: nre.Union{L: nre.Label{A: "a"}, R: nre.Label{A: "b"}}},
		nre.GraphStructure{G: small})
	monoL := nre.Eval(nre.Star{E: nre.Union{L: nre.Label{A: "a"}, R: nre.Label{A: "b"}}},
		nre.GraphStructure{G: large})
	monotone := true
	for p := range mono {
		if !monoL[p] {
			monotone = false
		}
	}
	rep.row("sample NRE monotone under G ⊆ G′", fmt.Sprint(monotone))
	if !monotone {
		rep.failf("NRE lost answers when edges were added")
	}
	// (c) 3-variable CNRE translation equivalence (sampled).
	rng := rand.New(rand.NewSource(63))
	agree, n := 0, 25
	for i := 0; i < n; i++ {
		g := randGraphE(rng, 4, 6, 2, 0)
		q := &nre.CNRE{
			Free: []string{"x", "y", "z"},
			Atoms: []nre.CAtom{
				{X: "x", Y: "y", E: randNREexp(rng, 2)},
				{X: "y", Y: "z", E: randNREexp(rng, 2)},
			},
		}
		e, err := translate.CNRE(q, graph.RelE)
		if err != nil {
			panic(err)
		}
		want := nre.AnswerTuples(q, nre.GraphStructure{G: g})
		s := g.ToTriplestore()
		r := mustEval(s, e)
		if r.Len() == len(want) {
			agree++
		}
	}
	rep.row(fmt.Sprintf("3-variable CNREs (%d) matching translations", n), fmt.Sprintf("%d/%d", agree, n))
	if agree != n {
		rep.failf("%d CNRE translations disagreed", n-agree)
	}
	return rep
}

func randNREexp(rng *rand.Rand, depth int) nre.Expr {
	if depth <= 0 {
		switch rng.Intn(3) {
		case 0:
			return nre.Epsilon{}
		case 1:
			return nre.Label{A: string(rune('a' + rng.Intn(2)))}
		default:
			return nre.Label{A: string(rune('a' + rng.Intn(2))), Inv: true}
		}
	}
	switch rng.Intn(5) {
	case 0:
		return randNREexp(rng, 0)
	case 1:
		return nre.Concat{L: randNREexp(rng, depth-1), R: randNREexp(rng, depth-1)}
	case 2:
		return nre.Union{L: randNREexp(rng, depth-1), R: randNREexp(rng, depth-1)}
	case 3:
		return nre.Star{E: randNREexp(rng, depth-1)}
	default:
		return nre.Nest{E: randNREexp(rng, depth-1)}
	}
}

// E19RegMem reproduces Proposition 6: the register-automata witness eₙ
// counts distinct data values (beyond TriAL*), while TriAL's negation
// query is non-monotone (beyond register automata).
func E19RegMem() *Report {
	rep := &Report{
		ID: "E19", Title: "Proposition 6: register automata vs TriAL*",
		Source: "§6.2.2, Proposition 6",
		Header: []string{"n", "eₙ on n distinct values", "eₙ on n−1 distinct values"},
		Pass:   true,
	}
	path := func(n int) *graph.Graph {
		g := graph.New()
		for i := 0; i < n; i++ {
			g.SetValue(fmt.Sprintf("p%d", i), triplestore.V(fmt.Sprintf("v%d", i)))
			if i > 0 {
				g.AddEdge(fmt.Sprintf("p%d", i-1), "a", fmt.Sprintf("p%d", i))
			}
		}
		return g
	}
	for n := 2; n <= 6; n++ {
		e, err := regmem.ExprN(n, "a")
		if err != nil {
			panic(err)
		}
		big := len(regmem.Eval(e, path(n))) > 0
		small := len(regmem.Eval(e, path(n-1))) > 0
		rep.row(fmt.Sprint(n), fmt.Sprint(big), fmt.Sprint(small))
		if !big || small {
			rep.failf("e%d misbehaved (big=%v, small=%v)", n, big, small)
		}
	}
	rep.notef("e₇ nonempty iff ≥7 distinct values: a property beyond L⁶∞ω ⊇ TriAL*")
	rep.notef("conversely the non-monotone TriAL query of E18(b) is beyond register automata")
	return rep
}

// E20SocialNetwork reproduces the §2.3 social-network modelling and
// data-value joins.
func E20SocialNetwork() *Report {
	rep := &Report{
		ID: "E20", Title: "§2.3 social network: attribute tuples and η-joins",
		Source: "§2.3",
		Header: []string{"query", "answers"},
		Pass:   true,
	}
	s := fixtures.SocialNetwork()
	// Rival-typed connections: component 3 of ρ(2) is "rival".
	rivalLit := triplestore.Value{
		triplestore.Null(), triplestore.Null(), triplestore.Null(),
		triplestore.F("rival"), triplestore.Null(),
	}
	rival := trial.MustSelect(trial.R(fixtures.RelE), trial.Cond{
		Val: []trial.ValAtom{{
			L: trial.RhoP(trial.L2), R: trial.Lit(rivalLit), Component: 3,
		}},
	})
	rr := mustEval(s, rival)
	rep.row("rival-typed edges", fmt.Sprint(rr.Len()))
	if rr.Len() != 1 || !rr.Has(triplestore.Triple{s.Lookup("o175"), s.Lookup("c163"), s.Lookup("o122")}) {
		rep.failf("rival selection wrong: %s", s.FormatRelation(rr))
	}
	// Two-hop friendship.
	twoHop := trial.MustJoin(trial.R(fixtures.RelE), [3]trial.Pos{trial.L1, trial.L2, trial.R3},
		trial.Cond{Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L3), trial.P(trial.R1))}},
		trial.R(fixtures.RelE))
	th := mustEval(s, twoHop)
	rep.row("two-hop connections", fmt.Sprint(th.Len()))
	if th.Len() != 1 || !th.Has(triplestore.Triple{s.Lookup("o175"), s.Lookup("c137"), s.Lookup("o122")}) {
		rep.failf("two-hop wrong: %s", s.FormatRelation(th))
	}
	// Two-hop with same creation date (component 4): Mario→Luigi (11-11-83)
	// then Luigi→DK (12-07-89) differ, so the same-date variant is empty.
	sameDate := trial.MustJoin(trial.R(fixtures.RelE), [3]trial.Pos{trial.L1, trial.L2, trial.R3},
		trial.Cond{
			Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L3), trial.P(trial.R1))},
			Val: []trial.ValAtom{{L: trial.RhoP(trial.L2), R: trial.RhoP(trial.R2), Component: 4}},
		},
		trial.R(fixtures.RelE))
	sd := mustEval(s, sameDate)
	rep.row("two-hop, same creation date", fmt.Sprint(sd.Len()))
	if sd.Len() != 0 {
		rep.failf("same-date two-hop should be empty: %s", s.FormatRelation(sd))
	}
	// Users with equal ages: none (23, 27, 117 pairwise distinct).
	sameAge := trial.MustSelect(trial.R(fixtures.RelE), trial.Cond{
		Val: []trial.ValAtom{{L: trial.RhoP(trial.L1), R: trial.RhoP(trial.L3), Component: 2}},
	})
	sa := mustEval(s, sameAge)
	rep.row("edges between same-age users", fmt.Sprint(sa.Len()))
	if sa.Len() != 0 {
		rep.failf("same-age selection should be empty")
	}
	return rep
}

// E21SigmaFig2 reproduces Figure 2: the σ transformation of the
// London–Brussels fragment.
func E21SigmaFig2() *Report {
	rep := &Report{
		ID: "E21", Title: "Figure 2: σ(D) for the London–Brussels fragment",
		Source: "§2.2, Figure 2",
		Header: []string{"edge", "present"},
		Pass:   true,
	}
	d := rdf.NewDocument()
	d.Add("London", "Train Op 2", "Brussels")
	d.Add("Train Op 2", "part_of", "Eurostar")
	g := d.Sigma()
	expect := [][3]string{
		{"London", rdf.LabelEdge, "Train Op 2"},
		{"Train Op 2", rdf.LabelNode, "Brussels"},
		{"London", rdf.LabelNext, "Brussels"},
		{"Train Op 2", rdf.LabelEdge, "part_of"},
		{"part_of", rdf.LabelNode, "Eurostar"},
		{"Train Op 2", rdf.LabelNext, "Eurostar"},
	}
	for _, e := range expect {
		ok := g.HasEdge(e[0], e[1], e[2])
		rep.row(fmt.Sprintf("(%s, %s, %s)", e[0], e[1], e[2]), fmt.Sprint(ok))
		if !ok {
			rep.failf("missing σ edge %v", e)
		}
	}
	if g.NumEdges() != len(expect) {
		rep.failf("σ(D) has %d edges, want %d", g.NumEdges(), len(expect))
	}
	return rep
}
