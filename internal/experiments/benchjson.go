package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"runtime/debug"

	"repro/internal/engine"
	"repro/internal/genstore"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/storage"
	"repro/internal/trial"
	"repro/internal/triplestore"
)

// This file is the machine-readable benchmark harness behind
// `trialbench -json`: paired evaluator-vs-engine timings per workload,
// emitted as BENCH_engine.json so CI can archive the perf trajectory per
// commit and fail when the engine's speedup regresses.
//
// Workload families:
//
//   - reachability: Kleene stars on chain and grid stores, the engine's
//     semi-naive delta iteration against the reference Evaluator's
//     generic fixpoint (the comparison the delta-star optimization is
//     about, matching BenchmarkEngineStar* in bench_test.go). These are
//     the gated workloads: CI fails if any drops below the threshold.
//   - join: multi-join queries where both sides use their best strategy.
//   - translated: frontend-language queries (RPQ, GXPath, nSPARQL)
//     compiled through internal/query — evidence that the engine speedup
//     applies to every language of the unified layer, not just
//     hand-written TriAL*.

// BenchResult is one workload's paired measurement. For the classic
// families the baseline is the reference Evaluator and EvaluatorNs
// holds its timing; for the "sharded" family the baseline is the FLAT
// ENGINE, timed in FlatEngineNs (EvaluatorNs stays 0 — every field has
// one meaning) — Speedup is then the partition-parallel engine's gain
// over the flat engine at Shards shards.
type BenchResult struct {
	Name         string  `json:"name"`
	Family       string  `json:"family"`
	Lang         string  `json:"lang"`
	Store        string  `json:"store"`
	Triples      int     `json:"triples"`
	ResultSize   int     `json:"result_size"`
	EvaluatorNs  int64   `json:"evaluator_ns_op,omitempty"`
	FlatEngineNs int64   `json:"flat_engine_ns_op,omitempty"`
	EngineNs     int64   `json:"engine_ns_op"`
	Speedup      float64 `json:"speedup"`
	Gated        bool    `json:"gated"`
	Baseline     string  `json:"baseline,omitempty"`
	Shards       int     `json:"shards,omitempty"`
	// Skipped, when non-empty, annotates a workload that was
	// cross-checked but not timed on this host (e.g. sharded rows at
	// GOMAXPROCS=1, where partition parallelism has no cores to use).
	// Skipped rows carry zero timings and are exempt from every gate.
	Skipped string `json:"skipped,omitempty"`
	// GateMinProcs restricts the row's gate to report legs with at least
	// this many GOMAXPROCS: speedups that come from parallel headroom
	// (sharded stars, the big social join) are only promises on
	// multi-core hosts, so single-core legs record them without judging.
	GateMinProcs int `json:"gate_min_procs,omitempty"`
	// GateMinSpeedup is a per-row gate threshold. 0 means the row uses
	// the family default passed to GateFailures.
	GateMinSpeedup float64 `json:"gate_min_speedup,omitempty"`
	// OperatorMs is the engine run's exclusive per-operator time
	// breakdown (milliseconds, from one traced execution after the
	// timed ones): where inside the plan the EngineNs actually goes.
	// Keys are operator span names ("join:index-right", "scan", ...).
	OperatorMs map[string]float64 `json:"operator_ms,omitempty"`
}

// BenchReport is the BENCH_engine.json document.
type BenchReport struct {
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Workloads  []BenchResult `json:"workloads"`

	// traces holds the per-workload span tree from the traced run behind
	// OperatorMs; trialbench -trace prints them for slow workloads. Not
	// part of the JSON document (the breakdown is; full trees are bulky).
	traces map[string]*obs.Span
}

// Trace returns the execution span tree recorded for a workload, or nil.
func (r *BenchReport) Trace(name string) *obs.Span { return r.traces[name] }

// record appends a measured workload and its trace to the report.
func (r *BenchReport) record(res BenchResult, sp *obs.Span) {
	if sp != nil {
		res.OperatorMs = selfTimesMs(sp)
		if r.traces == nil {
			r.traces = make(map[string]*obs.Span)
		}
		r.traces[res.Name] = sp
	}
	r.Workloads = append(r.Workloads, res)
}

// selfTimesMs converts a span tree's exclusive per-operator times to a
// name -> milliseconds map.
func selfTimesMs(sp *obs.Span) map[string]float64 {
	st := sp.SelfTimes()
	if len(st) == 0 {
		return nil
	}
	out := make(map[string]float64, len(st))
	for name, d := range st {
		out[name] = float64(d.Microseconds()) / 1000
	}
	return out
}

// benchWorkload describes one paired measurement before it runs.
type benchWorkload struct {
	name   string
	family string
	lang   query.Lang
	source string
	store  *triplestore.Store
	desc   string
	// disableReachStar pins the evaluator to the generic fixpoint, the
	// configuration the engine's delta star is measured against.
	disableReachStar bool
	gated            bool
}

func benchWorkloads() []benchWorkload {
	rng := rand.New(rand.NewSource(9))
	return []benchWorkload{
		{
			name: "chain-reach", family: "reachability",
			lang: query.LangTriAL, source: trial.ReachRight(genstore.RelE).String(),
			store: genstore.Chain(192, 1), desc: "chain(192)",
			disableReachStar: true, gated: true,
		},
		{
			name: "grid-reach", family: "reachability",
			lang: query.LangTriAL, source: trial.SameLabelReach(genstore.RelE).String(),
			store: genstore.Grid(12, 12), desc: "grid(12x12)",
			disableReachStar: true, gated: true,
		},
		{
			// Friend-of-friend composition: social triples are
			// (user, connection, user), so the chaining key is 3=1'.
			name: "social-join", family: "join",
			lang: query.LangTriAL, source: "join[1,2,3'; 3=1'](E, E)",
			store: genstore.Social(rng, 400, 4000, 4, 8), desc: "social(400,4000)",
		},
		{
			name: "transport-queryQ", family: "join",
			lang: query.LangTriAL, source: trial.QueryQ(genstore.RelE).String(),
			store: genstore.Transport(rng, 200, 21, 3), desc: "transport(200)",
		},
		{
			name: "rpq-chain-star", family: "translated",
			lang: query.LangRPQ, source: "p0*",
			store: genstore.Chain(160, 1), desc: "chain(160)",
			disableReachStar: true,
		},
		{
			name: "gxpath-grid-star", family: "translated",
			lang: query.LangGXPath, source: "(right u down)*",
			store: genstore.Grid(11, 11), desc: "grid(11x11)",
			disableReachStar: true,
		},
		{
			name: "nsparql-chain-star", family: "translated",
			lang: query.LangNSPARQL, source: "next*",
			store: genstore.Chain(160, 1), desc: "chain(160)",
			disableReachStar: true,
		},
	}
}

// shardedWorkload is one flat-engine-vs-sharded-engine measurement: the
// same TriAL* source executed by engine.New over the store and by
// engine.NewSharded over a ShardedStore view of it.
type shardedWorkload struct {
	name   string
	source string
	store  *triplestore.Store
	desc   string
	// gated marks the workloads the sharded regression gate
	// (MinShardedSpeedup, GateFailures) watches: semi-naive stars whose
	// per-round deltas are too small for the flat engine's chunked
	// parallelism, so partition-parallel rounds are the only way to use
	// the cores. At GOMAXPROCS=1 sharded rows are skip-and-annotated
	// rather than timed, so no sharded gate can hinge on a single-core
	// leg.
	gated bool
	// gateMinProcs / gateMinSpeedup: per-row gate overrides (see
	// BenchResult). A row whose win needs a minimum core count declares
	// it here and single-core legs record it without judging.
	gateMinProcs   int
	gateMinSpeedup float64
}

// shardedWorkloads are sharded variants of the chain/grid/social
// workloads. The star sources carry a 1≠3′ atom: it does not change the
// result on these acyclic stores but defeats the BFS reach shape, so
// both engines run the semi-naive delta fixpoint — the path partitioning
// parallelizes.
func shardedWorkloads() []shardedWorkload {
	rng := rand.New(rand.NewSource(9))
	return []shardedWorkload{
		{
			// Per-round deltas stay below the flat engine's 2048-triple
			// parallel-chunking threshold for the whole fixpoint, so the
			// flat engine runs its ~500 rounds sequentially on any host
			// while the sharded engine runs each round as one probe task
			// per shard — the contrast the gate measures. Sized so the
			// whole sweep stays a few seconds: these workloads also run
			// inside ordinary `go test ./...` (and its race job).
			name:   "sharded-chain-star",
			source: "rstar[1,2,3'; 3=1',1!=3'](E)",
			store:  genstore.Chain(500, 1), desc: "chain(500)",
			gated: true,
		},
		{
			// Reported, not gated: per-round work is small enough that the
			// routing overhead eats the win on low-core hosts.
			name:   "sharded-grid-star",
			source: "rstar[1,2,3'; 3=1',2=2',1!=3'](E)",
			store:  genstore.Grid(26, 26), desc: "grid(26x26)",
		},
		{
			// Gated on legs with at least 4 cores: the join's probe fan-out
			// parallelizes across shards, but the win is parallel headroom,
			// so a 1-or-2-core leg records the row without judging it.
			name:   "sharded-social-join",
			source: "join[1,2,3'; 3=1'](E, E)",
			store:  genstore.Social(rng, 800, 12000, 4, 8), desc: "social(800,12000)",
			gated: true, gateMinProcs: 4, gateMinSpeedup: 1.0,
		},
	}
}

// scaleWorkload is one scale-tier measurement: a store in the
// hundreds-of-thousands-to-millions range built through the NDJSON bulk
// ingest path, with the engine timed against either the reference
// Evaluator or its own binary-only (hash/index cascade) planner.
type scaleWorkload struct {
	name   string
	source string
	gen    genstore.ScaleGen
	// baseline selects the opponent: "evaluator" (EvaluatorNs) or
	// "hash-join" (the JoinNoWCO engine, timed in FlatEngineNs).
	baseline       string
	gateMinProcs   int
	gateMinSpeedup float64
}

// scaleWorkloads are the scale-tier rows behind `trialbench -scale`: the
// worst-case-optimal contest (leapfrog triejoin vs the binary hash-join
// cascade on a triangle query over a hub-heavy power-law graph, gated at
// any core count — the advantage is algorithmic, not parallel) and the
// million-triple social join against the reference Evaluator (gated at
// >= 4 cores, where the engine's chunked parallel probing has room).
func scaleWorkloads() []scaleWorkload {
	return []scaleWorkload{
		{
			name:           "triangle-count",
			source:         "join[1,2,3; 3=1',1=3'](join[1,3,3'; 3=1'](E, E), E)",
			gen:            genstore.PowerLawGraph(11, 5_000, 20_000),
			baseline:       "hash-join",
			gateMinSpeedup: 1.0,
		},
		{
			name:           "social-join-1M",
			source:         "join[1,2,3'; 3=1'](E, E)",
			gen:            genstore.PowerLawSocial(12, 500_000, 1_000_000),
			baseline:       "evaluator",
			gateMinProcs:   4,
			gateMinSpeedup: 1.5,
		},
	}
}

// BenchOptions configures RunBench.
type BenchOptions struct {
	// Shards > 1 adds the flat-vs-sharded family at that shard count.
	Shards int
	// Scale adds the scale-tier workloads (triangle-count, social-join-1M):
	// stores up to a million triples, so minutes rather than seconds.
	Scale bool
}

// RunBenchJSON measures the classic workloads — the evaluator-vs-engine
// families plus, when shards > 1, the flat-vs-sharded family — without
// the scale tier. It is RunBench(BenchOptions{Shards: shards}).
func RunBenchJSON(shards int) (*BenchReport, error) {
	return RunBench(BenchOptions{Shards: shards})
}

// RunBench measures every requested workload and returns the report.
// Timings are best-of-three (timeOp), trading statistical rigor for a
// bounded CI budget; the regression gates compare ratios, which
// best-of-N keeps stable. On a single-core host the sharded rows are
// cross-checked but skip-and-annotated instead of timed: partition
// parallelism has no cores to use there, so a timing would only record
// scheduler noise.
func RunBench(opt BenchOptions) (*BenchReport, error) {
	rep := &BenchReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, w := range benchWorkloads() {
		q := query.New(w.store, query.WithRelation(genstore.RelE))
		x, err := q.Compile(w.lang, w.source)
		if err != nil {
			return nil, fmt.Errorf("%s: compile: %w", w.name, err)
		}
		ev := trial.NewEvaluator(w.store)
		ev.DisableReachStar = w.disableReachStar

		want, err := ev.Eval(x)
		if err != nil {
			return nil, fmt.Errorf("%s: evaluator: %w", w.name, err)
		}
		got, err := q.Query(w.lang, w.source)
		if err != nil {
			return nil, fmt.Errorf("%s: engine: %w", w.name, err)
		}
		if !got.Equal(want) {
			return nil, fmt.Errorf("%s: engine result (%d triples) differs from evaluator (%d)",
				w.name, got.Len(), want.Len())
		}

		dEval := timeOp(func() {
			if _, err := ev.Eval(x); err != nil {
				panic(err)
			}
		})
		dEng := timeOp(func() {
			if _, err := q.Query(w.lang, w.source); err != nil {
				panic(err)
			}
		})
		speedup := 0.0
		if dEng > 0 {
			speedup = float64(dEval) / float64(dEng)
		}
		// One traced run AFTER the timed ones: the breakdown shows where
		// EngineNs goes without instrumentation polluting the timings.
		_, sp, err := q.QueryTrace(w.lang, w.source)
		if err != nil {
			return nil, fmt.Errorf("%s: traced run: %w", w.name, err)
		}
		rep.record(BenchResult{
			Name:        w.name,
			Family:      w.family,
			Lang:        string(w.lang),
			Store:       w.desc,
			Triples:     w.store.Size(),
			ResultSize:  want.Len(),
			EvaluatorNs: dEval.Nanoseconds(),
			EngineNs:    dEng.Nanoseconds(),
			Speedup:     speedup,
			Gated:       w.gated,
		}, sp)
	}
	if opt.Shards > 1 {
		skip := ""
		if rep.GOMAXPROCS <= 1 {
			skip = "GOMAXPROCS=1: partition parallelism has no cores; cross-checked, not timed"
		}
		for _, w := range shardedWorkloads() {
			res, sp, err := runShardedWorkload(w, opt.Shards, skip)
			if err != nil {
				return nil, err
			}
			rep.record(res, sp)
		}
	}
	if opt.Scale {
		for _, w := range scaleWorkloads() {
			res, sp, err := runScaleWorkload(w)
			if err != nil {
				return nil, err
			}
			rep.record(res, sp)
		}
		res, err := runColdStartWorkload()
		if err != nil {
			return nil, err
		}
		rep.record(res, nil)
		res, err = runBoundedRAMWorkload()
		if err != nil {
			return nil, err
		}
		rep.record(res, nil)
	}
	return rep, nil
}

// runColdStartWorkload measures the storage engine's cold start on a
// million-triple store: opening a segment-checkpointed data directory
// (binary decode + pre-sorted index install through the bulk loader)
// against re-ingesting the same dataset from NDJSON (JSON decode,
// interning, dedup, three index sorts). The advantage is algorithmic,
// so the row gates at every core count. The recovered store is
// cross-checked triple-for-triple against the ingested one first —
// CreateFrom preserves the dictionary, so raw IDs must agree.
func runColdStartWorkload() (BenchResult, error) {
	const name = "cold-start-1M"
	gen := genstore.PowerLawSocial(12, 500_000, 1_000_000)
	s, err := gen.Build()
	if err != nil {
		return BenchResult{}, fmt.Errorf("%s: %w", name, err)
	}
	dir, err := os.MkdirTemp("", "trialbench-coldstart-")
	if err != nil {
		return BenchResult{}, fmt.Errorf("%s: %w", name, err)
	}
	defer os.RemoveAll(dir)
	ck, err := storage.CreateFrom(dir, s, storage.WithSyncPolicy(storage.SyncNone))
	if err != nil {
		return BenchResult{}, fmt.Errorf("%s: checkpoint: %w", name, err)
	}
	if err := ck.Close(); err != nil {
		return BenchResult{}, fmt.Errorf("%s: checkpoint close: %w", name, err)
	}

	re, err := storage.Open(dir, storage.WithSyncPolicy(storage.SyncNone))
	if err != nil {
		return BenchResult{}, fmt.Errorf("%s: recover: %w", name, err)
	}
	rs, ss := re.Store(), s
	if rs.Size() != ss.Size() || rs.NumObjects() != ss.NumObjects() {
		return BenchResult{}, fmt.Errorf("%s: recovered %d triples/%d objects, ingested %d/%d",
			name, rs.Size(), rs.NumObjects(), ss.Size(), ss.NumObjects())
	}
	rt, st := rs.Relation(genstore.RelE).Triples(), ss.Relation(genstore.RelE).Triples()
	for i := range st {
		if rt[i] != st[i] {
			return BenchResult{}, fmt.Errorf("%s: recovered triple %d differs: %v vs %v", name, i, rt[i], st[i])
		}
	}
	if err := re.Close(); err != nil {
		return BenchResult{}, fmt.Errorf("%s: %w", name, err)
	}

	dIngest := timeOp(func() {
		if _, err := gen.Build(); err != nil {
			panic(err)
		}
	})
	dOpen := timeOp(func() {
		e, err := storage.Open(dir, storage.WithSyncPolicy(storage.SyncNone))
		if err != nil {
			panic(err)
		}
		if err := e.Close(); err != nil {
			panic(err)
		}
	})
	speedup := 0.0
	if dOpen > 0 {
		speedup = float64(dIngest) / float64(dOpen)
	}
	return BenchResult{
		Name:           name,
		Family:         "storage",
		Lang:           string(query.LangTriAL),
		Store:          gen.Desc,
		Triples:        s.Size(),
		ResultSize:     s.Size(),
		FlatEngineNs:   dIngest.Nanoseconds(),
		EngineNs:       dOpen.Nanoseconds(),
		Speedup:        speedup,
		Gated:          true,
		Baseline:       "ndjson-ingest",
		GateMinSpeedup: 5.0,
	}, nil
}

// runBoundedRAMWorkload proves the segment-backed read path serves a
// million-triple point-probe workload in a fraction of the memory the
// materialized store needs, at latency within the 2x gate. It measures
// the heap cost of an eager open (dictionary + three permutation runs),
// then of a cold open (WithReadBudget 0: dictionary + warmed block
// cache only), requires the cold side to save at least a quarter, and
// replays the probes under a GOMEMLIMIT set to the cold footprint plus
// a quarter of the savings — a limit the eager open provably exceeds.
// Go's limit is soft (it drives GC, never kills), so a violation shows
// up as the final heap-delta check failing, not as a crash. Both legs
// probe the same sampled subject leads and must match triple-for-triple
// (the two opens share segment files, hence dictionary IDs). The row
// gates cold probe latency at no worse than 2x the materialized binary
// search (GateMinSpeedup 0.5 on eager/cold) — the block cache is what
// holds that line; see internal/storage/blockcache.go.
func runBoundedRAMWorkload() (BenchResult, error) {
	// 2*(2*505*500 - 505 - 500) = 1,007,990 distinct triples over
	// 252,500 node names and 4 predicates: runs dominate the dictionary,
	// so staying cold saves real memory (a unique-predicate dataset like
	// PowerLawSocial would hide the run savings behind its giant dict).
	return boundedRAMWorkload("bounded-ram-1M", genstore.RoadNetwork(505, 500), 1024)
}

// minMeasurableDelta is the eager heap delta below which the
// GOMEMLIMIT stage is skipped: fixture-sized stores (the mechanics
// test) are smaller than GC measurement noise.
const minMeasurableDelta = 8 << 20

func boundedRAMWorkload(name string, gen genstore.ScaleGen, nProbes int) (BenchResult, error) {
	s, err := gen.Build()
	if err != nil {
		return BenchResult{}, fmt.Errorf("%s: %w", name, err)
	}
	nTriples := s.Size()
	dir, err := os.MkdirTemp("", "trialbench-boundedram-")
	if err != nil {
		return BenchResult{}, fmt.Errorf("%s: %w", name, err)
	}
	defer os.RemoveAll(dir)
	ck, err := storage.CreateFrom(dir, s, storage.WithSyncPolicy(storage.SyncNone))
	if err != nil {
		return BenchResult{}, fmt.Errorf("%s: checkpoint: %w", name, err)
	}
	if err := ck.Close(); err != nil {
		return BenchResult{}, fmt.Errorf("%s: checkpoint close: %w", name, err)
	}
	s, ck = nil, nil
	base := int64(heapAfterGC())

	// Eager leg: materialized store, binary-search probes. The sampled
	// subject leads and their total match count are the cross-check the
	// cold leg must reproduce.
	eager, err := storage.Open(dir, storage.WithSyncPolicy(storage.SyncNone))
	if err != nil {
		return BenchResult{}, fmt.Errorf("%s: eager open: %w", name, err)
	}
	ix := eager.Store().Relation(genstore.RelE).Index(triplestore.SPO)
	leads := ix.Leads()
	if len(leads) == 0 {
		return BenchResult{}, fmt.Errorf("%s: no leads", name)
	}
	sample := make([]triplestore.ID, 0, nProbes)
	for i := 0; i < nProbes; i++ {
		sample = append(sample, leads[i*len(leads)/nProbes])
	}
	probe := func(ix *triplestore.Index) int {
		n := 0
		for _, id := range sample {
			n += len(ix.Match(id))
		}
		return n
	}
	// Timings: collect and release free pages first so neither a pending
	// collection from store construction nor the inflated heap goal left
	// by earlier workloads in the same process (the 1M-triple rows run
	// before this one under `-scale`) lands a GC pause inside a timed
	// pass, and run enough probe rounds per pass (~milliseconds) that any
	// pause that does land is amortized instead of dominating — the
	// steady state allocates almost nothing on either side (both return
	// subslices), so longer passes just average out noise.
	const probeRounds = 32
	wantMatches := probe(ix)
	debug.FreeOSMemory()
	dEager := timeOp(func() {
		for k := 0; k < probeRounds; k++ {
			probe(ix)
		}
	})
	leads, ix = nil, nil
	eagerDelta := int64(heapAfterGC()) - base
	if err := eager.Close(); err != nil {
		return BenchResult{}, fmt.Errorf("%s: eager close: %w", name, err)
	}
	eager = nil

	// Cold leg: the cross-check pass doubles as the cache warmup, so the
	// timed probes and the heap measurement see the steady state.
	cold, err := storage.Open(dir,
		storage.WithSyncPolicy(storage.SyncNone), storage.WithReadBudget(0))
	if err != nil {
		return BenchResult{}, fmt.Errorf("%s: cold open: %w", name, err)
	}
	defer cold.Close()
	coldRel := cold.Store().Relation(genstore.RelE)
	if !coldRel.SourceBacked() {
		return BenchResult{}, fmt.Errorf("%s: relation materialized despite zero read budget", name)
	}
	if got := probe(coldRel.Index(triplestore.SPO)); got != wantMatches {
		return BenchResult{}, fmt.Errorf("%s: cold probes matched %d triples, eager %d", name, got, wantMatches)
	}
	coldIx := coldRel.Index(triplestore.SPO)
	debug.FreeOSMemory()
	dCold := timeOp(func() {
		for k := 0; k < probeRounds; k++ {
			probe(coldIx)
		}
	})
	coldDelta := int64(heapAfterGC()) - base
	if res := cold.Stats().Residency; res.ColdProbes == 0 {
		return BenchResult{}, fmt.Errorf("%s: probes never hit the segment-read path", name)
	}

	// Bounded-memory stage: rerun the workload under a limit the eager
	// open cannot fit (cold footprint + savings/4 < eager footprint).
	if eagerDelta >= minMeasurableDelta {
		savings := eagerDelta - coldDelta
		if savings < eagerDelta/4 {
			return BenchResult{}, fmt.Errorf("%s: cold open saves %d of %d eager bytes, want at least a quarter",
				name, savings, eagerDelta)
		}
		budget := coldDelta + savings/4
		prev := debug.SetMemoryLimit(base + budget)
		probe(coldRel.Index(triplestore.SPO))
		finalDelta := int64(heapAfterGC()) - base
		debug.SetMemoryLimit(prev)
		if finalDelta > budget {
			return BenchResult{}, fmt.Errorf("%s: heap delta %d exceeds the %d budget (eager needs %d)",
				name, finalDelta, budget, eagerDelta)
		}
	}
	if err := cold.Close(); err != nil {
		return BenchResult{}, fmt.Errorf("%s: cold close: %w", name, err)
	}

	speedup := 0.0
	if dCold > 0 {
		speedup = float64(dEager) / float64(dCold)
	}
	return BenchResult{
		Name:           name,
		Family:         "storage",
		Lang:           string(query.LangTriAL),
		Store:          gen.Desc,
		Triples:        nTriples,
		ResultSize:     wantMatches,
		FlatEngineNs:   dEager.Nanoseconds() / int64(probeRounds*nProbes),
		EngineNs:       dCold.Nanoseconds() / int64(probeRounds*nProbes),
		Speedup:        speedup,
		Gated:          true,
		Baseline:       "materialized-probes",
		GateMinSpeedup: 0.5,
	}, nil
}

// heapAfterGC returns live heap bytes after a forced collection — the
// baseline/delta primitive behind the bounded-RAM row's accounting.
func heapAfterGC() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// runShardedWorkload measures one flat-vs-sharded pair, cross-checking
// the two engines byte-identically first. The returned span is a traced
// run of the SHARDED side (the one EngineNs times). A non-empty skip
// keeps the cross-check but annotates the row instead of timing it.
func runShardedWorkload(w shardedWorkload, shards int, skip string) (BenchResult, *obs.Span, error) {
	x, err := trial.Parse(w.source)
	if err != nil {
		return BenchResult{}, nil, fmt.Errorf("%s: parse: %w", w.name, err)
	}
	flat, err := engine.New(w.store).Prepare(x)
	if err != nil {
		return BenchResult{}, nil, fmt.Errorf("%s: flat prepare: %w", w.name, err)
	}
	sharded, err := engine.NewSharded(triplestore.Shard(w.store, shards)).Prepare(x)
	if err != nil {
		return BenchResult{}, nil, fmt.Errorf("%s: sharded prepare: %w", w.name, err)
	}
	want, err := flat.Exec()
	if err != nil {
		return BenchResult{}, nil, fmt.Errorf("%s: flat: %w", w.name, err)
	}
	got, err := sharded.Exec()
	if err != nil {
		return BenchResult{}, nil, fmt.Errorf("%s: sharded: %w", w.name, err)
	}
	if !got.Equal(want) {
		return BenchResult{}, nil, fmt.Errorf("%s: sharded result (%d triples) differs from flat engine (%d)",
			w.name, got.Len(), want.Len())
	}
	if skip != "" {
		return BenchResult{
			Name:           w.name,
			Family:         "sharded",
			Lang:           string(query.LangTriAL),
			Store:          w.desc,
			Triples:        w.store.Size(),
			ResultSize:     want.Len(),
			Gated:          w.gated,
			Baseline:       "flat-engine",
			Shards:         shards,
			Skipped:        skip,
			GateMinProcs:   w.gateMinProcs,
			GateMinSpeedup: w.gateMinSpeedup,
		}, nil, nil
	}
	dFlat := timeOp(func() {
		if _, err := flat.Exec(); err != nil {
			panic(err)
		}
	})
	dSharded := timeOp(func() {
		if _, err := sharded.Exec(); err != nil {
			panic(err)
		}
	})
	speedup := 0.0
	if dSharded > 0 {
		speedup = float64(dFlat) / float64(dSharded)
	}
	sp := obs.StartSpan("execute")
	if _, err := sharded.ExecTrace(sp); err != nil {
		return BenchResult{}, nil, fmt.Errorf("%s: traced run: %w", w.name, err)
	}
	sp.End()
	return BenchResult{
		Name:           w.name,
		Family:         "sharded",
		Lang:           string(query.LangTriAL),
		Store:          w.desc,
		Triples:        w.store.Size(),
		ResultSize:     want.Len(),
		FlatEngineNs:   dFlat.Nanoseconds(),
		EngineNs:       dSharded.Nanoseconds(),
		Speedup:        speedup,
		Gated:          w.gated,
		Baseline:       "flat-engine",
		Shards:         shards,
		GateMinProcs:   w.gateMinProcs,
		GateMinSpeedup: w.gateMinSpeedup,
	}, sp, nil
}

// runScaleWorkload measures one scale-tier pair. The engine side is the
// forced-leapfrog planner for the "hash-join" contest (the operators
// must differ for the row to measure anything) and the auto planner
// otherwise; results are cross-checked byte-identically before timing.
func runScaleWorkload(w scaleWorkload) (BenchResult, *obs.Span, error) {
	s, err := w.gen.Build()
	if err != nil {
		return BenchResult{}, nil, fmt.Errorf("%s: %w", w.name, err)
	}
	x, err := trial.Parse(w.source)
	if err != nil {
		return BenchResult{}, nil, fmt.Errorf("%s: parse: %w", w.name, err)
	}

	var base func() (*triplestore.Relation, error)
	res := BenchResult{
		Name:           w.name,
		Family:         "scale",
		Lang:           string(query.LangTriAL),
		Store:          w.gen.Desc,
		Triples:        s.Size(),
		Gated:          w.gateMinSpeedup > 0,
		Baseline:       w.baseline,
		GateMinProcs:   w.gateMinProcs,
		GateMinSpeedup: w.gateMinSpeedup,
	}
	policy := engine.JoinAuto
	switch w.baseline {
	case "hash-join":
		policy = engine.JoinForceLeapfrog
		b, err := engine.New(s, engine.WithJoinPolicy(engine.JoinNoWCO)).Prepare(x)
		if err != nil {
			return BenchResult{}, nil, fmt.Errorf("%s: baseline prepare: %w", w.name, err)
		}
		base = b.Exec
	case "evaluator":
		ev := trial.NewEvaluator(s)
		base = func() (*triplestore.Relation, error) { return ev.Eval(x) }
	default:
		return BenchResult{}, nil, fmt.Errorf("%s: unknown baseline %q", w.name, w.baseline)
	}
	eng, err := engine.New(s, engine.WithJoinPolicy(policy)).Prepare(x)
	if err != nil {
		return BenchResult{}, nil, fmt.Errorf("%s: prepare: %w", w.name, err)
	}

	want, err := base()
	if err != nil {
		return BenchResult{}, nil, fmt.Errorf("%s: baseline: %w", w.name, err)
	}
	got, err := eng.Exec()
	if err != nil {
		return BenchResult{}, nil, fmt.Errorf("%s: engine: %w", w.name, err)
	}
	if !got.Equal(want) {
		return BenchResult{}, nil, fmt.Errorf("%s: engine result (%d triples) differs from %s (%d)",
			w.name, got.Len(), w.baseline, want.Len())
	}
	res.ResultSize = want.Len()

	dBase := timeOp(func() {
		if _, err := base(); err != nil {
			panic(err)
		}
	})
	dEng := timeOp(func() {
		if _, err := eng.Exec(); err != nil {
			panic(err)
		}
	})
	if w.baseline == "evaluator" {
		res.EvaluatorNs = dBase.Nanoseconds()
	} else {
		res.FlatEngineNs = dBase.Nanoseconds()
	}
	res.EngineNs = dEng.Nanoseconds()
	if dEng > 0 {
		res.Speedup = float64(dBase) / float64(dEng)
	}
	sp := obs.StartSpan("execute")
	if _, err := eng.ExecTrace(sp); err != nil {
		return BenchResult{}, nil, fmt.Errorf("%s: traced run: %w", w.name, err)
	}
	sp.End()
	return res, sp, nil
}

// MinGatedSpeedup returns the smallest speedup among the gated
// evaluator-baseline (reachability) workloads — the number the CI
// regression gate compares against its threshold. Sharded-family
// workloads have their own gate (MinShardedSpeedup).
func (r *BenchReport) MinGatedSpeedup() float64 {
	min := 0.0
	for _, w := range r.Workloads {
		if !w.Gated || w.Baseline != "" {
			continue
		}
		if min == 0 || w.Speedup < min {
			min = w.Speedup
		}
	}
	return min
}

// MinShardedSpeedup returns the smallest speedup among the gated
// sharded-family workloads: the partition-parallel engine's gain over
// the flat engine on the multi-core star workloads. 0 when the report
// carries no such workload. The gain comes from running star rounds in
// parallel across shards, so it only materializes with GOMAXPROCS > 1 —
// single-core callers should report it, not gate on it.
func (r *BenchReport) MinShardedSpeedup() float64 {
	min := 0.0
	for _, w := range r.Workloads {
		if !w.Gated || w.Family != "sharded" || w.Skipped != "" {
			continue
		}
		if min == 0 || w.Speedup < min {
			min = w.Speedup
		}
	}
	return min
}

// GateFailures applies every regression gate to the report and returns
// one message per violated gate (nil when all pass). minSpeedup is the
// default threshold for gated evaluator-baseline rows and minSharded for
// the gated sharded family; a row's GateMinSpeedup overrides its family
// default. Rows are exempt when Skipped annotates them (not timed on
// this host) or when their GateMinProcs exceeds the report's GOMAXPROCS —
// a single-core leg records parallel-headroom rows without judging them.
func (r *BenchReport) GateFailures(minSpeedup, minSharded float64) []string {
	var fails []string
	for _, w := range r.Workloads {
		if !w.Gated || w.Skipped != "" {
			continue
		}
		if w.GateMinProcs > r.GOMAXPROCS {
			continue
		}
		thr := w.GateMinSpeedup
		if thr == 0 {
			switch {
			case w.Family == "sharded":
				thr = minSharded
			case w.Baseline == "":
				thr = minSpeedup
			}
		}
		if thr > 0 && w.Speedup < thr {
			base := w.Baseline
			if base == "" {
				base = "evaluator"
			}
			fails = append(fails, fmt.Sprintf("%s: speedup %.2fx vs %s below threshold %.2fx",
				w.Name, w.Speedup, base, thr))
		}
	}
	return fails
}

// WriteJSON writes the report, indented for artifact readability.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
