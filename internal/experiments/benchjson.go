package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"

	"repro/internal/genstore"
	"repro/internal/query"
	"repro/internal/trial"
	"repro/internal/triplestore"
)

// This file is the machine-readable benchmark harness behind
// `trialbench -json`: paired evaluator-vs-engine timings per workload,
// emitted as BENCH_engine.json so CI can archive the perf trajectory per
// commit and fail when the engine's speedup regresses.
//
// Workload families:
//
//   - reachability: Kleene stars on chain and grid stores, the engine's
//     semi-naive delta iteration against the reference Evaluator's
//     generic fixpoint (the comparison the delta-star optimization is
//     about, matching BenchmarkEngineStar* in bench_test.go). These are
//     the gated workloads: CI fails if any drops below the threshold.
//   - join: multi-join queries where both sides use their best strategy.
//   - translated: frontend-language queries (RPQ, GXPath, nSPARQL)
//     compiled through internal/query — evidence that the engine speedup
//     applies to every language of the unified layer, not just
//     hand-written TriAL*.

// BenchResult is one workload's paired measurement.
type BenchResult struct {
	Name        string  `json:"name"`
	Family      string  `json:"family"`
	Lang        string  `json:"lang"`
	Store       string  `json:"store"`
	Triples     int     `json:"triples"`
	ResultSize  int     `json:"result_size"`
	EvaluatorNs int64   `json:"evaluator_ns_op"`
	EngineNs    int64   `json:"engine_ns_op"`
	Speedup     float64 `json:"speedup"`
	Gated       bool    `json:"gated"`
}

// BenchReport is the BENCH_engine.json document.
type BenchReport struct {
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Workloads  []BenchResult `json:"workloads"`
}

// benchWorkload describes one paired measurement before it runs.
type benchWorkload struct {
	name   string
	family string
	lang   query.Lang
	source string
	store  *triplestore.Store
	desc   string
	// disableReachStar pins the evaluator to the generic fixpoint, the
	// configuration the engine's delta star is measured against.
	disableReachStar bool
	gated            bool
}

func benchWorkloads() []benchWorkload {
	rng := rand.New(rand.NewSource(9))
	return []benchWorkload{
		{
			name: "chain-reach", family: "reachability",
			lang: query.LangTriAL, source: trial.ReachRight(genstore.RelE).String(),
			store: genstore.Chain(192, 1), desc: "chain(192)",
			disableReachStar: true, gated: true,
		},
		{
			name: "grid-reach", family: "reachability",
			lang: query.LangTriAL, source: trial.SameLabelReach(genstore.RelE).String(),
			store: genstore.Grid(12, 12), desc: "grid(12x12)",
			disableReachStar: true, gated: true,
		},
		{
			// Friend-of-friend composition: social triples are
			// (user, connection, user), so the chaining key is 3=1'.
			name: "social-join", family: "join",
			lang: query.LangTriAL, source: "join[1,2,3'; 3=1'](E, E)",
			store: genstore.Social(rng, 400, 4000, 4, 8), desc: "social(400,4000)",
		},
		{
			name: "transport-queryQ", family: "join",
			lang: query.LangTriAL, source: trial.QueryQ(genstore.RelE).String(),
			store: genstore.Transport(rng, 200, 21, 3), desc: "transport(200)",
		},
		{
			name: "rpq-chain-star", family: "translated",
			lang: query.LangRPQ, source: "p0*",
			store: genstore.Chain(160, 1), desc: "chain(160)",
			disableReachStar: true,
		},
		{
			name: "gxpath-grid-star", family: "translated",
			lang: query.LangGXPath, source: "(right u down)*",
			store: genstore.Grid(11, 11), desc: "grid(11x11)",
			disableReachStar: true,
		},
		{
			name: "nsparql-chain-star", family: "translated",
			lang: query.LangNSPARQL, source: "next*",
			store: genstore.Chain(160, 1), desc: "chain(160)",
			disableReachStar: true,
		},
	}
}

// RunBenchJSON measures every workload and returns the report. Timings
// are best-of-three (timeOp), trading statistical rigor for a bounded CI
// budget; the regression gate compares ratios, which best-of-N keeps
// stable.
func RunBenchJSON() (*BenchReport, error) {
	rep := &BenchReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, w := range benchWorkloads() {
		q := query.New(w.store, query.WithRelation(genstore.RelE))
		x, err := q.Compile(w.lang, w.source)
		if err != nil {
			return nil, fmt.Errorf("%s: compile: %w", w.name, err)
		}
		ev := trial.NewEvaluator(w.store)
		ev.DisableReachStar = w.disableReachStar

		want, err := ev.Eval(x)
		if err != nil {
			return nil, fmt.Errorf("%s: evaluator: %w", w.name, err)
		}
		got, err := q.Query(w.lang, w.source)
		if err != nil {
			return nil, fmt.Errorf("%s: engine: %w", w.name, err)
		}
		if !got.Equal(want) {
			return nil, fmt.Errorf("%s: engine result (%d triples) differs from evaluator (%d)",
				w.name, got.Len(), want.Len())
		}

		dEval := timeOp(func() {
			if _, err := ev.Eval(x); err != nil {
				panic(err)
			}
		})
		dEng := timeOp(func() {
			if _, err := q.Query(w.lang, w.source); err != nil {
				panic(err)
			}
		})
		speedup := 0.0
		if dEng > 0 {
			speedup = float64(dEval) / float64(dEng)
		}
		rep.Workloads = append(rep.Workloads, BenchResult{
			Name:        w.name,
			Family:      w.family,
			Lang:        string(w.lang),
			Store:       w.desc,
			Triples:     w.store.Size(),
			ResultSize:  want.Len(),
			EvaluatorNs: dEval.Nanoseconds(),
			EngineNs:    dEng.Nanoseconds(),
			Speedup:     speedup,
			Gated:       w.gated,
		})
	}
	return rep, nil
}

// MinGatedSpeedup returns the smallest speedup among the gated
// (reachability) workloads — the number the CI regression gate compares
// against its threshold.
func (r *BenchReport) MinGatedSpeedup() float64 {
	min := 0.0
	for _, w := range r.Workloads {
		if !w.Gated {
			continue
		}
		if min == 0 || w.Speedup < min {
			min = w.Speedup
		}
	}
	return min
}

// WriteJSON writes the report, indented for artifact readability.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
