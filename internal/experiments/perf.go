package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/datalog"
	"repro/internal/genstore"
	"repro/internal/trial"
	"repro/internal/triplestore"
)

// timeOp returns the best of three runs of f — a crude but stable estimator
// for the scaling tables (we care about growth ratios, not absolutes).
func timeOp(f func()) time.Duration {
	best := time.Duration(1<<62 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

func ratioRow(rep *Report, label string, size int, d, prev time.Duration) {
	ratio := "—"
	if prev > 0 {
		ratio = fmt.Sprintf("%.2f", float64(d)/float64(prev))
	}
	rep.row(label, fmt.Sprint(size), d.Round(time.Microsecond).String(), ratio)
}

// E9JoinScaling reproduces the Theorem 3 join bound: the nested-loop join
// (Procedure 1) scales quadratically in |T|. Doubling |T| (with |O| grown
// proportionally so the output stays linear) should multiply the time by
// about 4.
func E9JoinScaling() *Report {
	rep := &Report{
		ID: "E9", Title: "Theorem 3: naive join is O(|e|·|T|²) — doubling |T| ⇒ ~4×",
		Source: "§5, Theorem 3, Procedure 1",
		Header: []string{"strategy", "|T|", "time", "ratio"},
		Pass:   true,
	}
	rng := rand.New(rand.NewSource(1))
	join := trial.MustJoin(trial.R("E"), [3]trial.Pos{trial.L1, trial.L2, trial.R3},
		trial.Cond{Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L3), trial.P(trial.R1))}},
		trial.R("E"))
	var prev time.Duration
	var ratios []float64
	for _, size := range []int{500, 1000, 2000, 4000} {
		s := genstore.Random(rng, size, size, 0)
		ev := trial.NewEvaluator(s)
		ev.Mode = trial.ModeNaive
		d := timeOp(func() {
			if _, err := ev.Eval(join); err != nil {
				panic(err)
			}
		})
		if prev > 0 {
			ratios = append(ratios, float64(d)/float64(prev))
		}
		ratioRow(rep, "naive", size, d, prev)
		prev = d
	}
	rep.notef("expected ratio ≈ 4 (quadratic); measured ratios above")
	checkRatios(rep, ratios, 2.5, 7.0)
	return rep
}

// E11HashJoinScaling reproduces Proposition 4: the equality-only hash
// strategy is ~linear in |T| for selective joins, beating the quadratic
// naive join by a growing factor.
func E11HashJoinScaling() *Report {
	rep := &Report{
		ID: "E11", Title: "Proposition 4: TriAL= hash join ≈ O(|O|·|T|) vs naive O(|T|²)",
		Source: "§5, Proposition 4",
		Header: []string{"strategy", "|T|", "time", "ratio"},
		Pass:   true,
	}
	rng := rand.New(rand.NewSource(2))
	join := trial.MustJoin(trial.R("E"), [3]trial.Pos{trial.L1, trial.L2, trial.R3},
		trial.Cond{Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L3), trial.P(trial.R1))}},
		trial.R("E"))
	sizes := []int{500, 1000, 2000, 4000}
	stores := make([]*triplestore.Store, len(sizes))
	for i, size := range sizes {
		stores[i] = genstore.Random(rng, size, size, 0)
	}
	var prev time.Duration
	var hashRatios []float64
	var lastHash, lastNaive time.Duration
	for i, size := range sizes {
		ev := trial.NewEvaluator(stores[i])
		d := timeOp(func() {
			if _, err := ev.Eval(join); err != nil {
				panic(err)
			}
		})
		if prev > 0 {
			hashRatios = append(hashRatios, float64(d)/float64(prev))
		}
		ratioRow(rep, "hash", size, d, prev)
		prev = d
		lastHash = d
	}
	// One naive reference at the largest size for the speedup factor.
	evn := trial.NewEvaluator(stores[len(stores)-1])
	evn.Mode = trial.ModeNaive
	lastNaive = timeOp(func() {
		if _, err := evn.Eval(join); err != nil {
			panic(err)
		}
	})
	rep.row("naive (reference)", fmt.Sprint(sizes[len(sizes)-1]),
		lastNaive.Round(time.Microsecond).String(), "—")
	rep.notef("expected hash ratio ≈ 2 (linear); naive/hash speedup at |T|=%d: %.1f×",
		sizes[len(sizes)-1], float64(lastNaive)/float64(lastHash))
	checkRatios(rep, hashRatios, 1.2, 3.5)
	if lastNaive < lastHash {
		rep.failf("hash join slower than naive at the largest size")
	}
	return rep
}

// E10StarScaling reproduces the Theorem 3 star bound: the generic fixpoint
// with naive joins is ~cubic on chains (n iterations × O(n²) joins).
func E10StarScaling() *Report {
	rep := &Report{
		ID: "E10", Title: "Theorem 3: generic star fixpoint ≤ O(|e|·|T|³) — ~8× per doubling on chains",
		Source: "§5, Theorem 3, Procedure 2",
		Header: []string{"strategy", "chain length", "time", "ratio"},
		Pass:   true,
	}
	var prev time.Duration
	var ratios []float64
	for _, n := range []int{32, 64, 128} {
		s := genstore.Chain(n, 1)
		ev := trial.NewEvaluator(s)
		ev.Mode = trial.ModeNaive
		ev.DisableReachStar = true
		d := timeOp(func() {
			if _, err := ev.Eval(trial.ReachRight(genstore.RelE)); err != nil {
				panic(err)
			}
		})
		if prev > 0 {
			ratios = append(ratios, float64(d)/float64(prev))
		}
		ratioRow(rep, "naive star", n, d, prev)
		prev = d
	}
	rep.notef("expected ratio ≈ 8 (cubic); the paper's bound is a worst case, chains realize it")
	checkRatios(rep, ratios, 3.5, 14.0)
	return rep
}

// E12ReachStarScaling reproduces Proposition 5: the reachTA= procedures
// evaluate reachability stars in ~O(|O|·|T|) (quadratic on chains, where
// the output itself is quadratic), far below the generic fixpoint.
func E12ReachStarScaling() *Report {
	rep := &Report{
		ID: "E12", Title: "Proposition 5: reachTA= star ≈ O(|O|·|T|) vs generic fixpoint",
		Source: "§5, Proposition 5, Procedures 3–4",
		Header: []string{"strategy", "chain length", "time", "ratio"},
		Pass:   true,
	}
	var prev time.Duration
	var ratios []float64
	sizes := []int{128, 256, 512}
	for _, n := range sizes {
		s := genstore.Chain(n, 1)
		ev := trial.NewEvaluator(s)
		d := timeOp(func() {
			if _, err := ev.Eval(trial.ReachRight(genstore.RelE)); err != nil {
				panic(err)
			}
		})
		if prev > 0 {
			ratios = append(ratios, float64(d)/float64(prev))
		}
		ratioRow(rep, "reachTA= (Proc. 3)", n, d, prev)
		prev = d
	}
	// Same-label star (Procedure 4).
	prev = 0
	for _, n := range sizes {
		s := genstore.Chain(n, 1)
		ev := trial.NewEvaluator(s)
		d := timeOp(func() {
			if _, err := ev.Eval(trial.SameLabelReach(genstore.RelE)); err != nil {
				panic(err)
			}
		})
		ratioRow(rep, "reachTA= (Proc. 4)", n, d, prev)
		prev = d
	}
	// Generic fixpoint reference at the smallest size for the speedup.
	s := genstore.Chain(sizes[0], 1)
	slow := trial.NewEvaluator(s)
	slow.DisableReachStar = true
	slow.Mode = trial.ModeNaive
	dSlow := timeOp(func() {
		if _, err := slow.Eval(trial.ReachRight(genstore.RelE)); err != nil {
			panic(err)
		}
	})
	fast := trial.NewEvaluator(s)
	dFast := timeOp(func() {
		if _, err := fast.Eval(trial.ReachRight(genstore.RelE)); err != nil {
			panic(err)
		}
	})
	rep.row("generic fixpoint (reference)", fmt.Sprint(sizes[0]), dSlow.Round(time.Microsecond).String(), "—")
	rep.notef("expected ratio ≈ 4 (output is Θ(n²) on chains); speedup over generic fixpoint at n=%d: %.1f×",
		sizes[0], float64(dSlow)/float64(dFast))
	checkRatios(rep, ratios, 2.0, 7.0)
	if dSlow < dFast {
		rep.failf("specialized star slower than generic fixpoint")
	}
	return rep
}

// E13DatalogScaling reproduces Corollary 1: evaluating the Datalog
// translation tracks the algebra's cost (the translation is linear).
func E13DatalogScaling() *Report {
	rep := &Report{
		ID: "E13", Title: "Corollary 1: the Datalog translation evaluates within the paper's generic bounds",
		Source: "§5, Corollary 1",
		Header: []string{"evaluator", "cities", "time", "ratio"},
		Pass:   true,
	}
	rng := rand.New(rand.NewSource(3))
	q := trial.QueryQ(genstore.RelE)
	prog, err := datalog.FromTriAL(q, []string{genstore.RelE})
	if err != nil {
		panic(err)
	}
	sizes := []int{50, 100, 200}
	var prevA, prevD time.Duration
	var factor float64
	for _, n := range sizes {
		s := genstore.Transport(rng, n, n/10+1, 3)
		ev := trial.NewEvaluator(s)
		dA := timeOp(func() {
			if _, err := ev.Eval(q); err != nil {
				panic(err)
			}
		})
		ratioRow(rep, "algebra (Q)", n, dA, prevA)
		prevA = dA
		dD := timeOp(func() {
			if _, err := prog.Evaluate(s); err != nil {
				panic(err)
			}
		})
		ratioRow(rep, "datalog (Π_Q)", n, dD, prevD)
		prevD = dD
		factor = float64(dD) / float64(dA)
	}
	rep.notef("datalog/algebra factor at the largest size: %.1f×", factor)
	rep.notef("the Datalog route (semi-naive with equality-propagating join " +
		"indexes) stays within Corollary 1's generic bound; the algebra route " +
		"additionally benefits from the Proposition 5 star specialization")
	if factor > 1000 {
		rep.failf("datalog evaluation diverges from the algebra by more than the expected constant factors")
	}
	return rep
}

// checkRatios validates that measured growth ratios fall in [lo, hi]. The
// bands are deliberately wide: CI machines are noisy and only the shape
// matters. A single out-of-band ratio is reported but tolerated; two or
// more fail the experiment.
func checkRatios(rep *Report, ratios []float64, lo, hi float64) {
	bad := 0
	for _, r := range ratios {
		if r < lo || r > hi {
			bad++
			rep.notef("ratio %.2f outside expected band [%.1f, %.1f]", r, lo, hi)
		}
	}
	if bad > 1 {
		rep.failf("%d of %d growth ratios outside [%.1f, %.1f]", bad, len(ratios), lo, hi)
	}
}
