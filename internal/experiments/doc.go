// Package experiments reproduces, as executable checks, the claims of the
// TriAL paper: worked examples (Examples 2–4), inexpressibility witnesses
// (Proposition 1, Theorem 1, Theorems 4–8, Proposition 6), the capture
// results (Proposition 2, Theorem 2) and the complexity bounds of §5
// (Theorem 3, Propositions 4 and 5) as measured scaling curves.
//
// The paper has no experimental tables or figures — it is a theory paper —
// so these experiments play that role: each one regenerates a table whose
// shape the paper predicts. The experiment IDs (E1–E22) are indexed by
// All() below; cmd/trialbench prints any subset, and each report records
// the paper-expected versus measured outcome.
package experiments
