package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Report is the outcome of one experiment.
type Report struct {
	// ID is the experiment identifier (E1..E22; All() is the index).
	ID string
	// Title is a one-line description.
	Title string
	// Source cites the paper location being reproduced.
	Source string
	// Header and Rows form the regenerated table.
	Header []string
	Rows   [][]string
	// Notes carries free-form observations.
	Notes []string
	// Pass reports whether the paper's claim held.
	Pass bool
}

func (r *Report) String() string {
	var b strings.Builder
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	fmt.Fprintf(&b, "== %s: %s [%s] (%s)\n", r.ID, r.Title, status, r.Source)
	if len(r.Header) > 0 {
		widths := make([]int, len(r.Header))
		for i, h := range r.Header {
			widths[i] = len(h)
		}
		for _, row := range r.Rows {
			for i, c := range row {
				if i < len(widths) && len(c) > widths[i] {
					widths[i] = len(c)
				}
			}
		}
		line := func(cells []string) {
			for i, c := range cells {
				if i < len(widths) {
					fmt.Fprintf(&b, "  %-*s", widths[i], c)
				} else {
					fmt.Fprintf(&b, "  %s", c)
				}
			}
			b.WriteByte('\n')
		}
		line(r.Header)
		for _, row := range r.Rows {
			line(row)
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the report as a GitHub-flavored markdown section, for
// pasting into results documents.
func (r *Report) Markdown() string {
	var b strings.Builder
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	fmt.Fprintf(&b, "### %s — %s\n\n**%s** (%s)\n\n", r.ID, r.Title, status, r.Source)
	if len(r.Header) > 0 {
		b.WriteString("| " + strings.Join(r.Header, " | ") + " |\n")
		b.WriteString("|" + strings.Repeat("---|", len(r.Header)) + "\n")
		for _, row := range r.Rows {
			b.WriteString("| " + strings.Join(row, " | ") + " |\n")
		}
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "* %s\n", n)
	}
	return b.String()
}

func (r *Report) row(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

func (r *Report) notef(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

func (r *Report) failf(format string, args ...interface{}) {
	r.Pass = false
	r.Notes = append(r.Notes, "FAIL: "+fmt.Sprintf(format, args...))
}

// Runner produces one report. Fast runners complete in well under a
// second; perf runners (E9–E13) take seconds.
type Runner struct {
	ID   string
	Perf bool
	Run  func() *Report
}

// All returns every experiment runner, in ID order.
func All() []Runner {
	rs := []Runner{
		{ID: "E1", Run: E1Example2},
		{ID: "E2", Run: E2Example3},
		{ID: "E3", Run: E3QueryQ},
		{ID: "E4", Run: E4Prop1Witness},
		{ID: "E5", Run: E5Thm1Witness},
		{ID: "E6", Run: E6Prop2RoundTrip},
		{ID: "E7", Run: E7Thm2RoundTrip},
		{ID: "E8", Run: E8Membership},
		{ID: "E9", Perf: true, Run: E9JoinScaling},
		{ID: "E10", Perf: true, Run: E10StarScaling},
		{ID: "E11", Perf: true, Run: E11HashJoinScaling},
		{ID: "E12", Perf: true, Run: E12ReachStarScaling},
		{ID: "E13", Perf: true, Run: E13DatalogScaling},
		{ID: "E14", Run: E14FO3},
		{ID: "E15", Run: E15CountingWitnesses},
		{ID: "E16", Run: E16GXPathTranslation},
		{ID: "E17", Run: E17GXPathData},
		{ID: "E18", Run: E18CNRE},
		{ID: "E19", Run: E19RegMem},
		{ID: "E20", Run: E20SocialNetwork},
		{ID: "E21", Run: E21SigmaFig2},
		{ID: "E22", Run: E22TrCl3},
	}
	sort.Slice(rs, func(i, j int) bool { return idNum(rs[i].ID) < idNum(rs[j].ID) })
	return rs
}

func idNum(id string) int {
	n := 0
	fmt.Sscanf(id, "E%d", &n)
	return n
}

// ByID returns the runner with the given ID, or nil.
func ByID(id string) *Runner {
	for _, r := range All() {
		if r.ID == id {
			rc := r
			return &rc
		}
	}
	return nil
}
