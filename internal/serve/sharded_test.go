package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"repro/internal/fixtures"
)

func testShardedServer(t *testing.T, shards int) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(fixtures.Transport(), WithWorkers(2), WithRelation(fixtures.RelE),
		WithCacheSize(64), WithShards(shards))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

// TestShardedServerMatchesFlat runs the same queries against a flat and
// a sharded server over the same fixture: the bodies must be identical.
func TestShardedServerMatchesFlat(t *testing.T) {
	_, flat := testServer(t)
	_, shard := testShardedServer(t, 4)
	for _, q := range []string{
		"/query?q=E",
		"/query?q=" + url.QueryEscape("join[1,3',3; 2=1'](E, E)"),
		"/query?lang=rpq&q=" + url.QueryEscape("part_of*"),
	} {
		_, wantBody := get(t, flat.URL+q)
		resp, gotBody := get(t, shard.URL+q)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", q, resp.StatusCode, gotBody)
		}
		if gotBody != wantBody {
			t.Errorf("%s: sharded body diverges from flat:\n%s\nvs\n%s", q, gotBody, wantBody)
		}
	}
}

// TestShardedServerStats pins the /stats shard section: shard count and
// per-shard triple counts that sum to the store size.
func TestShardedServerStats(t *testing.T) {
	srv, ts := testShardedServer(t, 4)
	resp, body := get(t, ts.URL+"/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats: %d", resp.StatusCode)
	}
	var stats struct {
		Shards struct {
			Count    int `json:"count"`
			PerShard []struct {
				Shard   int `json:"shard"`
				Triples int `json:"triples"`
			} `json:"per_shard"`
		} `json:"shards"`
		Triples int `json:"triples"`
	}
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatalf("/stats unmarshal: %v\n%s", err, body)
	}
	if stats.Shards.Count != 4 || len(stats.Shards.PerShard) != 4 {
		t.Fatalf("shards section = %+v", stats.Shards)
	}
	total := 0
	for _, s := range stats.Shards.PerShard {
		total += s.Triples
	}
	if total != stats.Triples {
		t.Errorf("per-shard triples sum to %d, store has %d", total, stats.Triples)
	}
	if srv.sharded == nil {
		t.Error("server did not shard the store")
	}

	// Flat servers report count 1 and no per-shard list.
	_, flatTS := testServer(t)
	_, flatBody := get(t, flatTS.URL+"/stats")
	var flatStats struct {
		Shards struct {
			Count    int               `json:"count"`
			PerShard []json.RawMessage `json:"per_shard"`
		} `json:"shards"`
	}
	if err := json.Unmarshal([]byte(flatBody), &flatStats); err != nil {
		t.Fatal(err)
	}
	if flatStats.Shards.Count != 1 || flatStats.Shards.PerShard != nil {
		t.Errorf("flat shards section = %+v", flatStats.Shards)
	}
}

// TestShardedIngestDuringQueries is the server-level batch-boundary
// race test on a sharded store: concurrent POST /triples batches and
// /query reads (run with -race); every result size must sit on a batch
// boundary, and the final count must include every batch.
func TestShardedIngestDuringQueries(t *testing.T) {
	const batchSize, nBatches = 4, 12
	srv, ts := testShardedServer(t, 4)
	base := srv.store.Size()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for b := 0; b < nBatches; b++ {
			var lines strings.Builder
			for i := 0; i < batchSize; i++ {
				fmt.Fprintf(&lines, "{\"s\":\"in%d-%d\",\"p\":\"p\",\"o\":\"t\"}\n", b, i)
			}
			resp, err := http.Post(ts.URL+"/triples", "application/x-ndjson", strings.NewReader(lines.String()))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("POST /triples: %d", resp.StatusCode)
				return
			}
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				resp, _ := get(t, ts.URL+"/query?q=E&limit=1")
				if resp.StatusCode != http.StatusOK {
					t.Errorf("/query: %d", resp.StatusCode)
					return
				}
				var size int
				if _, err := fmt.Sscan(resp.Header.Get("X-Trial-Result-Size"), &size); err != nil {
					t.Error(err)
					return
				}
				if extra := size - base; extra < 0 || extra%batchSize != 0 {
					t.Errorf("query saw %d triples: not on a batch boundary", size)
					return
				}
			}
		}()
	}
	wg.Wait()

	if want := base + batchSize*nBatches; srv.store.Size() != want {
		t.Errorf("final store size = %d, want %d", srv.store.Size(), want)
	}
	// The ingested triples landed in the partitions too.
	total := 0
	for _, s := range srv.sharded.ShardStats() {
		total += s.Triples
	}
	if total != srv.store.Size() {
		t.Errorf("partitions hold %d triples, union %d", total, srv.store.Size())
	}
}
