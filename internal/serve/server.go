package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/storage"
	"repro/internal/triplestore"
)

// maxIngestBody bounds a /v1/triples request body (NDJSON batch):
// 32 MiB, enough for ~hundred-thousand-triple batches while keeping a
// single request from exhausting memory.
const maxIngestBody = 32 << 20

// DefaultMaxResults is the server-side cap on triples returned by one
// /v1/query page when the client asks for no (or a larger) limit. High
// enough that interactive use never notices, low enough that one query
// cannot stream an unbounded result.
const DefaultMaxResults = 100000

// Server is the HTTP serving tier: the live store and the query layer
// shared by all requests, plus the production middleware (auth, rate
// limiting, per-request deadlines). Queries snapshot the store per
// version; ingest mutates it through batched store methods, so the two
// sides never block each other beyond the store's internal writer lock.
// A Server is an http.Handler; cmd/trialserver mounts one behind
// http.Server, tests and cmd/trialload drive it directly.
type Server struct {
	store *triplestore.Store
	// sharded is non-nil when the store is hash-partitioned (WithShards
	// > 1): ingest must then go through it so the partitions stay in
	// lockstep with the union, and queries run partition-parallel.
	sharded *triplestore.ShardedStore
	// eng is non-nil when the server fronts a storage engine
	// (WithStorageEngine): ingest then goes through the engine so every
	// batch is WAL-durable before it is acknowledged, and Close flushes
	// and closes the engine after in-flight requests drain.
	eng     storage.Engine
	q       *query.Querier
	workers int
	mux     *http.ServeMux
	start   time.Time
	m       *serverMetrics
	slow    *obs.SlowLog

	tokens       map[string]Role // nil/empty = authentication disabled
	limiter      *rateLimiter    // nil = rate limiting disabled
	maxResults   int
	queryTimeout time.Duration // server-wide execution deadline; 0 = none
}

// Option configures a Server.
type Option func(*config)

type config struct {
	workers      int
	rel          string
	cacheSize    int
	shards       int
	slowCap      int
	threshold    time.Duration
	pprofOn      bool
	tokens       map[string]Role
	rateQPS      float64
	rateBurst    int
	maxResults   int
	queryTimeout time.Duration
	storeEng     storage.Engine
}

// WithWorkers bounds the engine worker pool (minimum 1).
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithRelation sets the edge relation graph-language queries run
// against (default "E").
func WithRelation(rel string) Option {
	return func(c *config) { c.rel = rel }
}

// WithCacheSize sets the plan-cache capacity (0 disables caching).
func WithCacheSize(n int) Option {
	return func(c *config) { c.cacheSize = n }
}

// WithShards hash-partitions the store by subject into n shards and
// executes partition-parallel (1 = flat store).
func WithShards(n int) Option {
	return func(c *config) { c.shards = n }
}

// WithSlowLog sizes the slow-query ring buffer and sets the latency
// threshold below which queries are not logged (0 logs every query).
func WithSlowLog(capacity int, threshold time.Duration) Option {
	return func(c *config) { c.slowCap, c.threshold = capacity, threshold }
}

// WithPprof mounts net/http/pprof under /debug/pprof/. The profiling
// routes run the full middleware chain: with WithAuthTokens they
// require an admin token (pprof.Cmdline would otherwise leak the
// -tokens flag to anyone), and with WithRateLimit they draw from the
// same buckets as the API, so profile collection cannot be used as an
// unthrottled DoS vector.
func WithPprof(on bool) Option {
	return func(c *config) { c.pprofOn = on }
}

// WithAuthTokens enables bearer-token authentication: every endpoint
// except /v1/healthz then requires a token from the map, and writes to
// /v1/triples require RoleAdmin. A nil or empty map leaves the server
// open.
func WithAuthTokens(tokens map[string]Role) Option {
	return func(c *config) { c.tokens = tokens }
}

// WithRateLimit enables per-client token-bucket rate limiting: each
// client (bearer token, else remote host) gets burst tokens refilled at
// qps per second; an empty bucket answers 429 with Retry-After.
// /v1/healthz and /v1/metrics are exempt so probes and scrapes never
// starve. qps <= 0 disables limiting.
func WithRateLimit(qps float64, burst int) Option {
	return func(c *config) { c.rateQPS, c.rateBurst = qps, burst }
}

// WithMaxResults caps the triples one /v1/query page may return
// (default DefaultMaxResults; minimum 1). Clients page past it with
// cursors.
func WithMaxResults(n int) Option {
	return func(c *config) { c.maxResults = n }
}

// WithQueryTimeout sets a server-wide execution deadline for every
// query; a request's timeout_ms can tighten but never exceed it. 0
// (the default) leaves queries bounded only by their own timeout_ms.
func WithQueryTimeout(d time.Duration) Option {
	return func(c *config) { c.queryTimeout = d }
}

// WithStorageEngine fronts the server with a storage engine (typically
// a WAL-backed disk engine): /v1/triples batches go through the engine
// so they are durable before the response is written, queries pin
// (version, segment manifest) snapshots, /v1/stats and /v1/metrics gain
// the storage section, and Close flushes and closes the engine after
// draining. The engine must be the one the store was opened from;
// incompatible with WithShards > 1.
func WithStorageEngine(eng storage.Engine) Option {
	return func(c *config) { c.storeEng = eng }
}

// NewStorage builds a Server over a storage engine's store — shorthand
// for New(eng.Store(), WithStorageEngine(eng), opts...).
func NewStorage(eng storage.Engine, opts ...Option) *Server {
	return New(eng.Store(), append([]Option{WithStorageEngine(eng)}, opts...)...)
}

// New builds a Server over the given store.
func New(store *triplestore.Store, opts ...Option) *Server {
	cfg := config{
		workers:    runtime.GOMAXPROCS(0),
		rel:        "E",
		cacheSize:  query.DefaultCacheSize,
		shards:     1,
		slowCap:    128,
		maxResults: DefaultMaxResults,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	if cfg.maxResults < 1 {
		cfg.maxResults = 1
	}
	qopts := []query.Option{
		query.WithRelation(cfg.rel),
		query.WithCacheSize(cfg.cacheSize),
		query.WithEngineOptions(engine.WithWorkers(cfg.workers)),
	}
	s := &Server{
		store:        store,
		eng:          cfg.storeEng,
		workers:      cfg.workers,
		mux:          http.NewServeMux(),
		start:        time.Now(),
		slow:         obs.NewSlowLog(cfg.slowCap, cfg.threshold),
		tokens:       cfg.tokens,
		maxResults:   cfg.maxResults,
		queryTimeout: cfg.queryTimeout,
	}
	if s.eng != nil && cfg.shards > 1 {
		// A sharded store maintains partition copies the engine's WAL knows
		// nothing about; refusing here beats silently losing durability.
		panic("serve: WithStorageEngine is incompatible with WithShards > 1")
	}
	switch {
	case cfg.shards > 1:
		s.sharded = triplestore.Shard(store, cfg.shards)
		s.q = query.NewSharded(s.sharded, qopts...)
	case s.eng != nil:
		s.q = query.NewStorage(s.eng, qopts...)
	default:
		s.q = query.New(store, qopts...)
	}
	s.m = newServerMetrics(s.q, store, s.sharded, s.eng, s.slow, s.start)
	if cfg.rateQPS > 0 {
		s.limiter = newRateLimiter(cfg.rateQPS, cfg.rateBurst)
	}
	s.routes(cfg.pprofOn)
	return s
}

// routes mounts the /v1 API and its deprecated legacy aliases. Each
// route runs the full middleware chain — instrument (metrics), rate
// limit, auth, method check — in that order: a rejected request is
// still counted under its route and status class, and the limiter sits
// outside auth so 401/403 rejections drain a bucket too (bearer-token
// brute-forcing is throttled like any other traffic, keyed by remote
// host since an invalid token never picks the bucket). Aliases share
// the v1 handlers but are instrumented under their original route
// labels (dashboards watching trial_http_requests_total{route="/query"}
// keep working) and answer with Deprecation and Link headers.
func (s *Server) routes(pprofOn bool) {
	type endpoint struct {
		v1      string // versioned path (also the metrics label for it)
		legacy  string // pre-v1 alias; "" = none
		h       http.HandlerFunc
		role    Role
		open    bool // skip auth (liveness probes)
		exempt  bool // skip rate limiting (probes, scrapes)
		allowed []string
	}
	endpoints := []endpoint{
		{v1: "/v1/query", legacy: "/query", h: s.handleQuery, role: RoleRead,
			allowed: []string{http.MethodGet, http.MethodPost}},
		{v1: "/v1/triples", legacy: "/triples", h: s.handleTriples, role: RoleAdmin,
			allowed: []string{http.MethodPost, http.MethodDelete}},
		{v1: "/v1/explain", legacy: "/explain", h: s.handleExplain, role: RoleRead,
			allowed: []string{http.MethodGet}},
		{v1: "/v1/stats", legacy: "/stats", h: s.handleStats, role: RoleRead,
			allowed: []string{http.MethodGet}},
		{v1: "/v1/metrics", legacy: "/metrics", h: s.handleMetrics, role: RoleRead, exempt: true,
			allowed: []string{http.MethodGet}},
		{v1: "/v1/debug/queries", legacy: "/debug/queries", h: s.handleDebugQueries, role: RoleRead,
			allowed: []string{http.MethodGet}},
		{v1: "/v1/healthz", legacy: "/healthz", h: s.handleHealthz, role: RoleRead, open: true, exempt: true,
			allowed: []string{http.MethodGet}},
	}
	for _, ep := range endpoints {
		h := s.methods(ep.h, ep.allowed...)
		if !ep.open {
			h = s.requireRole(ep.role, h)
		}
		if !ep.exempt {
			h = s.rateLimit(h)
		}
		s.mux.HandleFunc(ep.v1, s.m.instrument(ep.v1, h))
		if ep.legacy != "" {
			s.mux.HandleFunc(ep.legacy, s.m.instrument(ep.legacy, deprecated(ep.v1, h)))
		}
	}
	// The root route doubles as the 404 handler for unknown paths; like
	// everything else it answers JSON envelopes on failure and 405 (with
	// Allow) on wrong methods.
	s.mux.HandleFunc("/", s.m.instrument("/", s.methods(s.handleIndex, http.MethodGet)))
	if pprofOn {
		// Registered on this mux explicitly; the pprof import's
		// DefaultServeMux side effect is never served. These handlers
		// expose the process command line (which, under -tokens, carries
		// every bearer token) and unmetered CPU/heap profiling, so they
		// run the full middleware chain at admin level: instrumented,
		// rate limited, and — when auth is enabled — admin-only.
		mount := func(route string, h http.HandlerFunc, allowed ...string) {
			s.mux.HandleFunc(route, s.m.instrument(route,
				s.rateLimit(s.requireRole(RoleAdmin, s.methods(h, allowed...)))))
		}
		mount("/debug/pprof/", pprof.Index, http.MethodGet)
		mount("/debug/pprof/cmdline", pprof.Cmdline, http.MethodGet)
		mount("/debug/pprof/profile", pprof.Profile, http.MethodGet)
		mount("/debug/pprof/symbol", pprof.Symbol, http.MethodGet, http.MethodPost)
		mount("/debug/pprof/trace", pprof.Trace, http.MethodGet)
	}
}

// deprecated wraps a legacy alias: RFC 9745 Deprecation header plus a
// Link to the successor /v1 route, then the shared handler.
func deprecated(v1 string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", v1))
		h(w, r)
	}
}

// methods wraps a handler with an allowed-method check, answering 405
// with an Allow header and the JSON envelope otherwise. HEAD rides
// along wherever GET is allowed (net/http discards the body), so health
// probes keep working.
func (s *Server) methods(h http.HandlerFunc, allowed ...string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		for _, m := range allowed {
			if r.Method == m || (r.Method == http.MethodHead && m == http.MethodGet) {
				h(w, r)
				return
			}
		}
		s.m.httpRejected.With("method_not_allowed").Inc()
		allow := strings.Join(allowed, ", ")
		w.Header().Set("Allow", allow)
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
			"method not allowed", map[string]string{"allow": allow})
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Querier exposes the underlying query layer (cmd/trialload warms it).
func (s *Server) Querier() *query.Querier { return s.q }

// Sharded returns the sharded store, or nil for a flat server.
func (s *Server) Sharded() *triplestore.ShardedStore { return s.sharded }

// Storage returns the storage engine the server fronts, or nil.
func (s *Server) Storage() storage.Engine { return s.eng }

// closeDrainTimeout bounds how long Close waits for in-flight requests
// before closing the storage engine anyway. Callers normally call Close
// after http.Server.Shutdown has already drained the listener, so the
// wait is a backstop for requests driven directly against ServeHTTP.
const closeDrainTimeout = 10 * time.Second

// Close shuts the serving tier down: it waits (bounded) for in-flight
// requests to finish, releases the query layer's snapshot pin, then
// flushes and closes the storage engine so the memtable tail lands in a
// segment and the final WAL records are synced. Without a storage
// engine it only releases the query layer. Safe to call once after the
// HTTP listener has stopped accepting work.
func (s *Server) Close() error {
	deadline := time.Now().Add(closeDrainTimeout)
	for s.m.httpInFlight.Value() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	err := s.q.Close()
	if s.eng != nil {
		if cerr := s.eng.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		s.m.httpRejected.With("not_found").Inc()
		writeError(w, http.StatusNotFound, CodeNotFound,
			fmt.Sprintf("no such route %q", r.URL.Path), nil)
		return
	}
	fmt.Fprintf(w, `trialserver — unified query engine over HTTP

GET    /v1/query?q=EXPR[&lang=trial|nsparql|rpq|nre|gxpath][&limit=N][&cursor=C][&format=text|json][&explain=1][&trace=1][&timeout_ms=T]
POST   /v1/query         (expression in the body)
POST   /v1/triples       ingest: {"s":..,"p":..,"o":..[,"rel":..][,"op":"delete"]} or NDJSON stream (one batch; admin token)
DELETE /v1/triples       same formats, every line deletes
GET    /v1/explain?q=EXPR[&lang=L][&trace=1]
GET    /v1/stats
GET    /v1/metrics
GET    /v1/debug/queries
GET    /v1/healthz

The pre-v1 routes (/query, /triples, ...) remain as deprecated aliases.
Every language compiles to TriAL* and runs on the parallel engine.
Queries read immutable snapshots; ingest batches advance the store version once each.
Examples: /v1/query?q=join[1,3',3; 2=1'](E, E)
          /v1/query?lang=rpq&q=a*
          /v1/query?lang=gxpath&q=[<a>].b
Full contract: docs/API.md. Store: %d objects, %d triples, relations %v
`, s.store.NumObjects(), s.store.Size(), s.store.RelationNames())
}

// maxQueryBody bounds a POSTed query expression: 1 MiB, generous for
// any hand- or machine-written query while keeping the body in memory.
const maxQueryBody = 1 << 20

// readQuery extracts the expression text from ?q= or the request body.
// A body over maxQueryBody fails with *http.MaxBytesError — it must be
// rejected whole (413, see queryParamError), never truncated: a
// mid-expression cut usually yields a baffling parse error but could
// also parse as a different, still-valid query and silently execute it.
func readQuery(w http.ResponseWriter, r *http.Request) (string, error) {
	if q := r.URL.Query().Get("q"); q != "" {
		return q, nil
	}
	if r.Method == http.MethodPost {
		b, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxQueryBody))
		if err != nil {
			return "", err
		}
		if len(b) > 0 {
			return string(b), nil
		}
	}
	return "", fmt.Errorf("missing query: pass ?q= or a POST body")
}

// queryParamError answers a readQuery failure: 413 payload_too_large
// when the body cap tripped, 400 invalid_param otherwise.
func (s *Server) queryParamError(w http.ResponseWriter, err error) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		s.m.httpRejected.With("payload_too_large").Inc()
		writeError(w, http.StatusRequestEntityTooLarge, CodePayloadTooLarge,
			fmt.Sprintf("query body exceeds %d bytes", maxQueryBody), nil)
		return
	}
	writeError(w, http.StatusBadRequest, CodeInvalidParam, err.Error(), nil)
}

// readLang extracts and validates the ?lang= parameter (default TriAL*).
func readLang(r *http.Request) (query.Lang, error) {
	return query.ParseLang(r.URL.Query().Get("lang"))
}

// queryError maps a failed query onto the envelope: compile errors are
// 400 parse_error, an expired deadline is 504 timeout, anything else
// from planning or execution is 422 eval_error — preserving the 400/422
// status split clients of the pre-v1 server relied on.
func (s *Server) queryError(w http.ResponseWriter, err error) {
	var ce *query.CompileError
	switch {
	case errors.As(err, &ce):
		writeError(w, http.StatusBadRequest, CodeParseError, err.Error(), nil)
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, CodeTimeout,
			"query deadline exceeded", nil)
	case errors.Is(err, context.Canceled):
		// The client is gone; the status is moot but the envelope stays
		// consistent for proxies that still read it.
		writeError(w, http.StatusGatewayTimeout, CodeTimeout,
			"query cancelled", nil)
	default:
		writeError(w, http.StatusUnprocessableEntity, CodeEvalError, err.Error(), nil)
	}
}

// observeCancel counts a context-terminated query on
// trial_query_cancelled_total, by reason.
func (s *Server) observeCancel(err error) bool {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.m.queryCancelled.With("deadline").Inc()
	case errors.Is(err, context.Canceled):
		s.m.queryCancelled.With("disconnect").Inc()
	default:
		return false
	}
	return true
}

// queryContext derives the execution context for one request: the
// request's own context (client disconnects cancel execution) bounded
// by the server-wide WithQueryTimeout and tightened by a per-request
// timeout_ms parameter, which can never exceed the server bound.
func (s *Server) queryContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	d := s.queryTimeout
	if p := r.URL.Query().Get("timeout_ms"); p != "" {
		ms, err := strconv.Atoi(p)
		if err != nil || ms <= 0 {
			return nil, nil, fmt.Errorf("bad timeout_ms (want a positive integer)")
		}
		if pd := time.Duration(ms) * time.Millisecond; d == 0 || pd < d {
			d = pd
		}
	}
	if d <= 0 {
		return r.Context(), func() {}, nil
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q, err := readQuery(w, r)
	if err != nil {
		s.queryParamError(w, err)
		return
	}
	lang, err := readLang(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidParam, err.Error(), nil)
		return
	}
	limit := 0
	if l := r.URL.Query().Get("limit"); l != "" {
		limit, err = strconv.Atoi(l)
		if err != nil || limit < 0 {
			writeError(w, http.StatusBadRequest, CodeInvalidParam, "bad limit", nil)
			return
		}
	}
	hash := queryHash(string(lang), q, s.q.Relation())
	offset := 0
	if cs := r.URL.Query().Get("cursor"); cs != "" {
		c, err := decodeCursor(cs, hash)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeInvalidParam, err.Error(),
				map[string]any{"cursor": cs})
			return
		}
		offset = c.Offset
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "text"
	}
	if format != "text" && format != "json" {
		writeError(w, http.StatusBadRequest, CodeInvalidParam, "bad format (want text or json)", nil)
		return
	}

	var plan string
	if format == "text" && r.URL.Query().Get("explain") == "1" {
		plan, err = s.q.Explain(lang, q)
		if err != nil {
			s.queryError(w, err)
			return
		}
	}

	ctx, cancel, err := s.queryContext(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidParam, err.Error(), nil)
		return
	}
	defer cancel()

	traced := r.URL.Query().Get("trace") == "1"
	start := time.Now()
	var result *triplestore.Relation
	var sp *obs.Span
	if traced {
		result, sp, err = s.q.QueryTraceContext(ctx, lang, q)
	} else {
		result, err = s.q.QueryContext(ctx, lang, q)
	}
	dur := time.Since(start)
	s.m.observeQuery(lang, dur, err)
	rec := obs.QueryRecord{
		Time:     start,
		Lang:     string(lang),
		Source:   q,
		Duration: dur,
		Trace:    sp,
	}
	if err != nil {
		s.observeCancel(err)
		rec.Err = err.Error()
		s.slow.Record(rec)
		s.queryError(w, err)
		return
	}
	rec.ResultSize = result.Len()
	s.slow.Record(rec)

	// Pagination over the canonical sorted order: the page is
	// [offset, offset+page) of Triples(), where page is the client's
	// limit bounded by the server cap. X-Trial-Result-Size always
	// reports the full result size; when triples remain past the page,
	// X-Trial-Next-Cursor carries the opaque token for the next one.
	ts := result.Triples()
	total := len(ts)
	page := limit
	if page == 0 || page > s.maxResults {
		page = s.maxResults
	}
	if offset > total {
		offset = total
	}
	end := offset + page
	if end > total {
		end = total
	}
	w.Header().Set("X-Trial-Result-Size", strconv.Itoa(total))
	if end < total {
		w.Header().Set("X-Trial-Next-Cursor",
			encodeCursor(cursor{Offset: end, Version: s.store.Version(), Hash: hash}))
	}
	if format == "json" {
		w.Header().Set("Content-Type", "application/x-ndjson")
	} else {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	for _, line := range strings.Split(strings.TrimSuffix(plan, "\n"), "\n") {
		if line != "" {
			fmt.Fprintf(bw, "# %s\n", line)
		}
	}

	flusher, _ := w.(http.Flusher)
	written := 0
	enc := json.NewEncoder(bw)
	for _, t := range ts[offset:end] {
		if format == "json" {
			enc.Encode(map[string]string{
				"s": s.store.Name(t[0]),
				"p": s.store.Name(t[1]),
				"o": s.store.Name(t[2]),
			})
		} else {
			fmt.Fprintf(bw, "%s\t%s\t%s\n", s.store.Name(t[0]), s.store.Name(t[1]), s.store.Name(t[2]))
		}
		written++
		if flusher != nil && written%4096 == 0 {
			bw.Flush()
			flusher.Flush()
		}
	}
	if format == "text" {
		fmt.Fprintf(bw, "# %d triples\n", total)
	}
	if sp != nil {
		if format == "json" {
			enc.Encode(map[string]any{"trace": sp})
		} else {
			fmt.Fprintf(bw, "# trace:\n")
			for _, line := range strings.Split(strings.TrimSuffix(sp.Tree(), "\n"), "\n") {
				fmt.Fprintf(bw, "#   %s\n", line)
			}
		}
	}
}

// capTrackReader remembers whether the underlying http.MaxBytesReader
// tripped its limit: the NDJSON scanner reports the truncated final line
// as a parse error first, so the handler needs the flag (not the
// returned error) to answer 413 rather than 400.
type capTrackReader struct {
	r   io.Reader
	hit bool
}

func (c *capTrackReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		c.hit = true
	}
	return n, err
}

// handleTriples ingests mutations: POST applies the body's ops (adds by
// default, per-line "op":"delete" honored), DELETE forces every line to
// be a deletion. The body is a single JSON object or an NDJSON stream,
// applied as ONE batch: the store version advances at most once, queries
// racing the ingest see either the whole batch or none of it. With
// authentication enabled the route requires RoleAdmin (the middleware
// enforces it; this handler never sees unauthorized writes).
func (s *Server) handleTriples(w http.ResponseWriter, r *http.Request) {
	body := &capTrackReader{r: http.MaxBytesReader(w, r.Body, maxIngestBody)}
	ops, err := triplestore.ReadOps(body, s.q.Relation())
	if err != nil {
		if body.hit {
			s.m.httpRejected.With("payload_too_large").Inc()
			writeError(w, http.StatusRequestEntityTooLarge, CodePayloadTooLarge,
				fmt.Sprintf("ingest body exceeds %d bytes", maxIngestBody), nil)
			return
		}
		writeError(w, http.StatusBadRequest, CodeInvalidParam, err.Error(), nil)
		return
	}
	if len(ops) == 0 {
		writeError(w, http.StatusBadRequest, CodeInvalidParam,
			"empty batch: body must hold at least one JSON triple", nil)
		return
	}
	if r.Method == http.MethodDelete {
		for i := range ops {
			ops[i].Delete = true
		}
	}
	var res triplestore.BatchResult
	switch {
	case s.sharded != nil:
		res, err = s.sharded.ApplyBatch(ops)
	case s.eng != nil:
		// Through the storage engine: the batch is WAL-appended (and, per
		// the engine's sync policy, fsynced) before the store mutates, so
		// a 200 means the write survives a crash.
		res, err = s.eng.ApplyBatch(ops)
	default:
		res, err = s.store.ApplyBatch(ops)
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidParam, err.Error(), nil)
		return
	}
	s.m.observeBatch(res)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"added":   res.Added,
		"removed": res.Removed,
		"version": res.Version,
		"objects": s.store.NumObjects(),
		"triples": s.store.Size(),
	})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	q, err := readQuery(w, r)
	if err != nil {
		s.queryParamError(w, err)
		return
	}
	lang, err := readLang(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidParam, err.Error(), nil)
		return
	}
	// &trace=1 executes the query, so it runs under the same derived
	// context as /v1/query — server-wide WithQueryTimeout bound,
	// tightened by timeout_ms, cancelled on disconnect. Validated before
	// the plan is written: a bad timeout_ms must still answer a clean
	// 400 envelope, not a half-written plan.
	traced := r.URL.Query().Get("trace") == "1"
	var ctx context.Context
	if traced {
		var cancel context.CancelFunc
		ctx, cancel, err = s.queryContext(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeInvalidParam, err.Error(), nil)
			return
		}
		defer cancel()
	}
	plan, err := s.q.Explain(lang, q)
	if err != nil {
		s.queryError(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, plan)
	if !traced {
		return
	}
	// Run the query once and append the measured operator tree (actual
	// cardinalities and timings) under the predicted plan.
	start := time.Now()
	_, sp, err := s.q.QueryTraceContext(ctx, lang, q)
	s.m.observeQuery(lang, time.Since(start), err)
	if err != nil {
		s.observeCancel(err)
		fmt.Fprintf(w, "\nexecution failed: %s\n", err)
		return
	}
	fmt.Fprintf(w, "\nexecution trace:\n%s", sp.Tree())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	// Sharding observability: shard count and per-shard triple counts
	// (the skew bounds the partition-parallel speedup). count = 1 with no
	// per-shard list means the store is flat.
	shardInfo := map[string]any{"count": 1}
	if s.sharded != nil {
		shardInfo["count"] = s.sharded.NumShards()
		shardInfo["per_shard"] = s.sharded.ShardStats()
	}
	// Storage observability: the backend ("mem" when the server runs on
	// the plain in-memory store) and, for a disk engine, WAL/segment/
	// compaction/recovery counters (see storage.Stats).
	storageInfo := storage.Stats{Backend: "mem"}
	if s.eng != nil {
		storageInfo = s.eng.Stats()
	}
	json.NewEncoder(w).Encode(map[string]any{
		"shards":    shardInfo,
		"storage":   storageInfo,
		"objects":   s.store.NumObjects(),
		"triples":   s.store.Size(),
		"relations": s.store.RelationNames(),
		// Served-query count from the obs registry: the sum of
		// trial_queries_total over every language, counting only
		// successes (the pre-obs server never counted failed queries).
		"queries":    s.m.queriesTotal.Sum("status", "ok"),
		"uptime_s":   int(time.Since(s.start).Seconds()),
		"workers":    s.workers,
		"languages":  query.Langs(),
		"plan_cache": s.q.Stats(),
		// Logical-optimizer counters: per-rule rewrite hits across all
		// plan-cache misses (see internal/optimizer).
		"optimizer": s.q.RewriteStats(),
		// Statistics snapshot bookkeeping: how often the store-level
		// per-relation statistics were rebuilt, and the store version the
		// current snapshot reflects.
		"store_stats": map[string]any{
			"refreshes": s.store.StatsRefreshes(),
			"version":   s.store.Version(),
		},
		// Ingest counters: what arrived through /triples (batches and
		// the triples they actually changed), read from the same obs
		// instruments /metrics exports so the two endpoints agree ...
		"ingest": map[string]any{
			"batches": s.m.ingestBatches.Value(),
			"added":   s.m.ingestTriples.With("added").Value(),
			"removed": s.m.ingestTriples.With("removed").Value(),
		},
		// ... and the store's own lifetime mutation counters, which also
		// cover writes not made through HTTP (initial load, snapshots).
		"store_mutations": s.store.MutationStats(),
	})
}

// handleMetrics serves the server's obs registry in Prometheus text
// exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.m.reg.WritePrometheus(w); err != nil {
		log.Printf("trialserver: /metrics: %v", err)
	}
}

// handleDebugQueries serves the slow-query ring buffer, newest first.
// Records carry the execution trace when the query ran with &trace=1.
func (s *Server) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"threshold_ms": float64(s.slow.Threshold().Microseconds()) / 1000,
		"total":        s.slow.Total(),
		"queries":      s.slow.Snapshot(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	io.WriteString(w, "ok\n")
}
