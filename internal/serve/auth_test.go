package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/fixtures"
)

// envelope decodes the JSON error envelope from a response body.
func envelope(t *testing.T, body string) errorDetail {
	t.Helper()
	var e errorBody
	if err := json.Unmarshal([]byte(body), &e); err != nil {
		t.Fatalf("body is not the error envelope: %v\n%s", err, body)
	}
	if e.Error.Code == "" {
		t.Fatalf("envelope has no error code: %s", body)
	}
	return e.Error
}

func authedReq(t *testing.T, method, url, token, body string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(raw)
}

func TestParseTokens(t *testing.T) {
	tokens, err := ParseTokens("alpha:admin, beta:read")
	if err != nil {
		t.Fatal(err)
	}
	if tokens["alpha"] != RoleAdmin || tokens["beta"] != RoleRead {
		t.Errorf("tokens = %v", tokens)
	}
	if got, _ := ParseTokens(""); got != nil {
		t.Errorf("empty spec = %v, want nil", got)
	}
	for _, bad := range []string{"noRole", ":admin", "tok:root"} {
		if _, err := ParseTokens(bad); err == nil {
			t.Errorf("ParseTokens(%q) accepted", bad)
		}
	}
}

// TestAuthRoleMatrix pins the role matrix across every kind of route:
// no token and unknown tokens answer 401 with a WWW-Authenticate
// challenge, read tokens reach every read route but not writes, admin
// tokens reach everything, and /v1/healthz stays open for probes.
func TestAuthRoleMatrix(t *testing.T) {
	srv := New(fixtures.Transport(), WithWorkers(2), WithRelation(fixtures.RelE),
		WithAuthTokens(map[string]Role{"alpha": RoleAdmin, "beta": RoleRead}))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ingest := `{"s":"x","p":"auth","o":"y"}`
	cases := []struct {
		name   string
		method string
		path   string
		body   string
		token  string
		status int
		code   string // expected envelope code on failure; "" = success
	}{
		{"query no token", http.MethodGet, "/v1/query?q=E", "", "", http.StatusUnauthorized, CodeUnauthorized},
		{"query bad token", http.MethodGet, "/v1/query?q=E", "", "wrong", http.StatusUnauthorized, CodeUnauthorized},
		{"query read", http.MethodGet, "/v1/query?q=E", "", "beta", http.StatusOK, ""},
		{"query admin", http.MethodGet, "/v1/query?q=E", "", "alpha", http.StatusOK, ""},
		{"stats read", http.MethodGet, "/v1/stats", "", "beta", http.StatusOK, ""},
		{"metrics read", http.MethodGet, "/v1/metrics", "", "beta", http.StatusOK, ""},
		{"explain read", http.MethodGet, "/v1/explain?q=E", "", "beta", http.StatusOK, ""},
		{"debug read", http.MethodGet, "/v1/debug/queries", "", "beta", http.StatusOK, ""},
		{"write no token", http.MethodPost, "/v1/triples", ingest, "", http.StatusUnauthorized, CodeUnauthorized},
		{"write read token", http.MethodPost, "/v1/triples", ingest, "beta", http.StatusForbidden, CodeForbidden},
		{"delete read token", http.MethodDelete, "/v1/triples", ingest, "beta", http.StatusForbidden, CodeForbidden},
		{"write admin", http.MethodPost, "/v1/triples", ingest, "alpha", http.StatusOK, ""},
		{"legacy write read token", http.MethodPost, "/triples", ingest, "beta", http.StatusForbidden, CodeForbidden},
		{"legacy query read", http.MethodGet, "/query?q=E", "", "beta", http.StatusOK, ""},
		{"healthz open", http.MethodGet, "/v1/healthz", "", "", http.StatusOK, ""},
	}
	for _, tc := range cases {
		resp, body := authedReq(t, tc.method, ts.URL+tc.path, tc.token, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, body)
			continue
		}
		if tc.code != "" {
			if got := envelope(t, body).Code; got != tc.code {
				t.Errorf("%s: envelope code %q, want %q", tc.name, got, tc.code)
			}
			if tc.status == http.StatusUnauthorized && resp.Header.Get("WWW-Authenticate") == "" {
				t.Errorf("%s: 401 without WWW-Authenticate challenge", tc.name)
			}
		}
	}

	// Rejections land on the rejected counter by reason.
	_, metrics := authedReq(t, http.MethodGet, ts.URL+"/v1/metrics", "beta", "")
	for _, want := range []string{
		`trial_http_requests_rejected_total{reason="unauthorized"} 3`,
		`trial_http_requests_rejected_total{reason="forbidden"} 3`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestPprofAdminGate: with auth enabled the pprof routes require an
// admin token — /debug/pprof/cmdline echoes the process command line,
// which under -tokens contains every bearer token, so an open or
// read-level mount would leak the whole credential set.
func TestPprofAdminGate(t *testing.T) {
	srv := New(fixtures.Transport(), WithWorkers(2), WithRelation(fixtures.RelE),
		WithPprof(true),
		WithAuthTokens(map[string]Role{"alpha": RoleAdmin, "beta": RoleRead}))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
		cases := []struct {
			token  string
			status int
			code   string
		}{
			{"", http.StatusUnauthorized, CodeUnauthorized},
			{"wrong", http.StatusUnauthorized, CodeUnauthorized},
			{"beta", http.StatusForbidden, CodeForbidden},
			{"alpha", http.StatusOK, ""},
		}
		for _, tc := range cases {
			resp, body := authedReq(t, http.MethodGet, ts.URL+path, tc.token, "")
			if resp.StatusCode != tc.status {
				t.Errorf("%s token %q: status %d, want %d", path, tc.token, resp.StatusCode, tc.status)
				continue
			}
			if tc.code != "" {
				if got := envelope(t, body).Code; got != tc.code {
					t.Errorf("%s token %q: envelope code %q, want %q", path, tc.token, got, tc.code)
				}
			}
		}
	}
}

// TestAuthDisabledByDefault: without WithAuthTokens the server is open,
// including writes — the pre-v1 contract tests rely on.
func TestAuthDisabledByDefault(t *testing.T) {
	_, ts := testServer(t)
	resp, _ := authedReq(t, http.MethodPost, ts.URL+"/v1/triples", "", `{"s":"a","p":"b","o":"c"}`)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("open-server write: status %d, want 200", resp.StatusCode)
	}
}
