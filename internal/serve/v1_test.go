package serve

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/fixtures"
)

// TestV1Routes: every endpoint answers under /v1 with the same body as
// its legacy alias, and the alias carries Deprecation and Link headers
// while the /v1 route does not.
func TestV1Routes(t *testing.T) {
	_, ts := testServer(t)
	q := "?q=" + url.QueryEscape("join[1,3',3; 2=1'](E, E)")
	pairs := []struct{ v1, legacy string }{
		{"/v1/query" + q, "/query" + q},
		{"/v1/explain" + q, "/explain" + q},
		{"/v1/stats", "/stats"},
		{"/v1/metrics", "/metrics"},
		{"/v1/debug/queries", "/debug/queries"},
		{"/v1/healthz", "/healthz"},
	}
	for _, p := range pairs {
		resp, v1Body := get(t, ts.URL+p.v1)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", p.v1, resp.StatusCode)
			continue
		}
		if resp.Header.Get("Deprecation") != "" {
			t.Errorf("%s: /v1 route marked deprecated", p.v1)
		}
		lresp, legacyBody := get(t, ts.URL+p.legacy)
		if lresp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", p.legacy, lresp.StatusCode)
			continue
		}
		if lresp.Header.Get("Deprecation") != "true" {
			t.Errorf("%s: missing Deprecation header", p.legacy)
		}
		if link := lresp.Header.Get("Link"); !strings.Contains(link, "successor-version") ||
			!strings.Contains(link, strings.SplitN(p.v1, "?", 2)[0]) {
			t.Errorf("%s: Link = %q, want a successor-version pointer", p.legacy, link)
		}
		// Metrics-free endpoints must serve identical bodies on both
		// routes; /stats, /metrics and /debug/queries drift by uptime or
		// the requests themselves, so compare only the query-shaped ones.
		if strings.Contains(p.v1, "query?") || strings.Contains(p.v1, "explain") || strings.Contains(p.v1, "healthz") {
			if v1Body != legacyBody {
				t.Errorf("%s and %s bodies diverge:\n%s\nvs\n%s", p.v1, p.legacy, v1Body, legacyBody)
			}
		}
	}
}

// TestEnvelopeOnEveryFailurePath sweeps the /v1 failure paths: each one
// must answer the JSON envelope with its documented code.
func TestEnvelopeOnEveryFailurePath(t *testing.T) {
	_, ts := testServer(t)
	cases := []struct {
		name   string
		method string
		path   string
		body   string
		status int
		code   string
	}{
		{"missing query", http.MethodGet, "/v1/query", "", http.StatusBadRequest, CodeInvalidParam},
		{"parse error", http.MethodGet, "/v1/query?q=" + url.QueryEscape("join[("), "", http.StatusBadRequest, CodeParseError},
		{"eval error", http.MethodGet, "/v1/query?q=NoSuchRel", "", http.StatusUnprocessableEntity, CodeEvalError},
		{"bad limit", http.MethodGet, "/v1/query?q=E&limit=x", "", http.StatusBadRequest, CodeInvalidParam},
		{"bad format", http.MethodGet, "/v1/query?q=E&format=xml", "", http.StatusBadRequest, CodeInvalidParam},
		{"bad lang", http.MethodGet, "/v1/query?q=E&lang=sql", "", http.StatusBadRequest, CodeInvalidParam},
		{"bad timeout", http.MethodGet, "/v1/query?q=E&timeout_ms=-5", "", http.StatusBadRequest, CodeInvalidParam},
		{"bad cursor", http.MethodGet, "/v1/query?q=E&cursor=%21%21", "", http.StatusBadRequest, CodeInvalidParam},
		{"explain parse error", http.MethodGet, "/v1/explain?q=" + url.QueryEscape("join[("), "", http.StatusBadRequest, CodeParseError},
		{"ingest empty", http.MethodPost, "/v1/triples", "", http.StatusBadRequest, CodeInvalidParam},
		{"ingest malformed", http.MethodPost, "/v1/triples", `{"s":`, http.StatusBadRequest, CodeInvalidParam},
		{"bad method query", http.MethodDelete, "/v1/query?q=E", "", http.StatusMethodNotAllowed, CodeMethodNotAllowed},
		{"bad method stats", http.MethodPost, "/v1/stats", "", http.StatusMethodNotAllowed, CodeMethodNotAllowed},
		{"unknown route", http.MethodGet, "/v1/nope", "", http.StatusNotFound, CodeNotFound},
		{"legacy parse error", http.MethodGet, "/query?q=" + url.QueryEscape("join[("), "", http.StatusBadRequest, CodeParseError},
		{"legacy bad method", http.MethodDelete, "/query?q=E", "", http.StatusMethodNotAllowed, CodeMethodNotAllowed},
	}
	for _, tc := range cases {
		resp, body := authedReq(t, tc.method, ts.URL+tc.path, "", tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, body)
			continue
		}
		if got := envelope(t, body).Code; got != tc.code {
			t.Errorf("%s: envelope code %q, want %q", tc.name, got, tc.code)
		}
		if tc.status == http.StatusMethodNotAllowed && resp.Header.Get("Allow") == "" {
			t.Errorf("%s: 405 without an Allow header", tc.name)
		}
	}
}

// TestRootMethodCheck: the index and unknown-path handler runs the same
// method gate as every other route — POST / is 405 with Allow and the
// envelope, which the pre-v1 server got wrong (it served the index).
func TestRootMethodCheck(t *testing.T) {
	_, ts := testServer(t)
	resp, body := authedReq(t, http.MethodPost, ts.URL+"/", "", "")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /: status %d, want 405", resp.StatusCode)
	}
	if resp.Header.Get("Allow") != "GET" {
		t.Errorf("Allow = %q, want GET", resp.Header.Get("Allow"))
	}
	if got := envelope(t, body).Code; got != CodeMethodNotAllowed {
		t.Errorf("envelope code %q", got)
	}
	// Unknown paths get the envelope too.
	resp, body = get(t, ts.URL+"/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /nope: status %d, want 404", resp.StatusCode)
	}
	if got := envelope(t, body).Code; got != CodeNotFound {
		t.Errorf("envelope code %q", got)
	}
}

// TestQueryBodyTooLarge: a POSTed query past the 1 MiB body cap is
// rejected whole with 413 and the payload_too_large envelope — never
// truncated and parsed, which could silently run a different query.
func TestQueryBodyTooLarge(t *testing.T) {
	_, ts := testServer(t)
	resp, body := authedReq(t, http.MethodPost, ts.URL+"/v1/query", "", strings.Repeat("a", 1<<20+1))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413 (%s)", resp.StatusCode, body)
	}
	if got := envelope(t, body).Code; got != CodePayloadTooLarge {
		t.Errorf("envelope code %q, want %q", got, CodePayloadTooLarge)
	}
	// A body at the cap still reaches the parser (a parse error here,
	// never a 413).
	resp, body = authedReq(t, http.MethodPost, ts.URL+"/v1/query", "", strings.Repeat("a", 1<<20))
	if resp.StatusCode != http.StatusUnprocessableEntity && resp.StatusCode != http.StatusBadRequest {
		t.Errorf("at-cap body: status %d, want a parse/eval rejection (%s)", resp.StatusCode, body)
	}
}

// TestPprofMethodCheck: with pprof mounted, its routes pass through the
// same method gate (the pre-v1 server left them ungated).
func TestPprofMethodCheck(t *testing.T) {
	srv := New(fixtures.Transport(), WithWorkers(2), WithPprof(true))
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, body := authedReq(t, http.MethodDelete, ts.URL+"/debug/pprof/", "", "")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE /debug/pprof/: status %d, want 405", resp.StatusCode)
	}
	if got := envelope(t, body).Code; got != CodeMethodNotAllowed {
		t.Errorf("envelope code %q", got)
	}
	if resp, _ := get(t, ts.URL+"/debug/pprof/"); resp.StatusCode != http.StatusOK {
		t.Errorf("GET /debug/pprof/: status %d", resp.StatusCode)
	}
}
