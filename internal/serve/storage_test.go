package serve

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/storage"
)

// TestServerStorageEngine drives the full durable path over HTTP:
// ingest through the engine, query over pinned snapshots, the storage
// stats/metrics surface, then Close + reopen recovering the exact state.
func TestServerStorageEngine(t *testing.T) {
	dir := t.TempDir()
	eng, err := storage.Open(dir, storage.WithSyncPolicy(storage.SyncNone))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewStorage(eng)

	body := `{"s":"a","p":"p","o":"b"}
{"s":"b","p":"p","o":"c"}
{"s":"c","p":"p","o":"d"}`
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/triples", strings.NewReader(body)))
	if rec.Code != 200 {
		t.Fatalf("ingest: %d %s", rec.Code, rec.Body)
	}

	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/query?lang=rpq&q=p%2B", nil))
	if rec.Code != 200 {
		t.Fatalf("query: %d %s", rec.Code, rec.Body)
	}
	if got := strings.Count(rec.Body.String(), "\t"); got != 12 { // 6 pairs x 2 tabs
		t.Fatalf("p+ answered:\n%s", rec.Body)
	}

	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
	var stats struct {
		Storage storage.Stats `json:"storage"`
		Triples int           `json:"triples"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatalf("stats: %v\n%s", err, rec.Body)
	}
	if stats.Storage.Backend != "disk" || stats.Storage.WALRecords == 0 {
		t.Fatalf("storage stats = %+v", stats.Storage)
	}
	if stats.Triples != 3 {
		t.Fatalf("triples = %d", stats.Triples)
	}

	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/metrics", nil))
	for _, want := range []string{"trial_storage_wal_bytes", "trial_storage_segments",
		"trial_storage_compactions_total", "trial_storage_recovery_ms"} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Fatalf("metrics missing %s:\n%s", want, rec.Body)
		}
	}

	// Close drains, releases the query pin and closes the engine; the
	// directory then reopens to the exact served state.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Store().Size() != 3 {
		t.Fatalf("recovered %d triples, want 3", re.Store().Size())
	}
	if re.Store().Relation("E") == nil {
		t.Fatal("relation E lost across Close/reopen")
	}
}

// TestServerStorageMemStatsSection: a plain in-memory server still
// reports a storage section (backend "mem") so clients can probe the
// deployment mode uniformly.
func TestServerStorageMemStatsSection(t *testing.T) {
	srv := New(fixtures.Transport())
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
	var stats struct {
		Storage storage.Stats `json:"storage"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Storage.Backend != "mem" {
		t.Fatalf("backend = %q, want mem", stats.Storage.Backend)
	}
	if err := srv.Close(); err != nil { // no engine: only releases the querier
		t.Fatal(err)
	}
}

func TestServerStorageRejectsSharding(t *testing.T) {
	eng, err := storage.Open(t.TempDir(), storage.WithSyncPolicy(storage.SyncNone))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("WithStorageEngine + WithShards > 1 must panic")
		}
	}()
	NewStorage(eng, WithShards(4))
}
