package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/genstore"
)

// slowQuery is a star fixpoint over a grid — hundreds of semi-naive
// rounds over tens of thousands of triples, far past a 1ms deadline on
// any machine, while still finishing unbounded in well under a minute.
const slowQuery = `rstar[1,2,3'; 3=1'](E)`

func gridServer(t *testing.T, side, shards int) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(genstore.Grid(side, side), WithWorkers(4), WithShards(shards))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

// TestQueryTimeout pins the deadline path end to end: a 1ms timeout_ms
// on a heavy star query answers 504 with the timeout envelope, the
// cancellation lands on trial_query_cancelled_total{reason="deadline"},
// and the engine's worker goroutines drain back to baseline — the
// workers actually stopped instead of running the fixpoint to
// completion in the background.
func TestQueryTimeout(t *testing.T) {
	srv, ts := gridServer(t, 72, 1)
	// Warm up the keep-alive connection first so the baseline includes
	// the client/server conn goroutines, not just the engine's.
	if resp, _ := get(t, ts.URL+"/v1/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up: %d", resp.StatusCode)
	}
	baseline := runtime.NumGoroutine()

	resp, body := get(t, ts.URL+"/v1/query?timeout_ms=1&q="+url.QueryEscape(slowQuery))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%s)", resp.StatusCode, body)
	}
	if got := envelope(t, body).Code; got != CodeTimeout {
		t.Errorf("envelope code %q, want %q", got, CodeTimeout)
	}
	if got := srv.m.queryCancelled.With("deadline").Value(); got != 1 {
		t.Errorf("trial_query_cancelled_total{reason=\"deadline\"} = %d, want 1", got)
	}
	_, metrics := get(t, ts.URL+"/v1/metrics")
	if !strings.Contains(metrics, `trial_query_cancelled_total{reason="deadline"} 1`) {
		t.Error("exposition missing the deadline cancellation")
	}

	// Worker goroutines must drain promptly after the cancelled query.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+2 {
		t.Errorf("goroutines = %d, baseline %d: cancelled query left workers running", n, baseline)
	}

	// The server is healthy afterwards: queries without a deadline
	// succeed (a cheap scan, not the expensive fixpoint again).
	resp, _ = get(t, ts.URL+"/v1/query?limit=1&q=E")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-timeout query: status %d, want 200", resp.StatusCode)
	}
}

// TestServerQueryTimeoutOption: WithQueryTimeout bounds every query,
// and a request's timeout_ms cannot exceed it.
func TestServerQueryTimeoutOption(t *testing.T) {
	srv := New(genstore.Grid(72, 72), WithWorkers(4), WithQueryTimeout(time.Millisecond))
	ts := httptest.NewServer(srv)
	defer ts.Close()
	// No timeout_ms at all: the server bound applies.
	resp, body := get(t, ts.URL+"/v1/query?q="+url.QueryEscape(slowQuery))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("server-bound query: status %d, want 504 (%s)", resp.StatusCode, body)
	}
	// A huge timeout_ms cannot raise the server bound.
	resp, _ = get(t, ts.URL+"/v1/query?timeout_ms=600000&q="+url.QueryEscape(slowQuery))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("timeout_ms above server bound: status %d, want 504", resp.StatusCode)
	}
}

// TestExplainTraceHonorsTimeout: the &trace=1 execution path of
// /v1/explain runs under the same derived context as /v1/query — the
// server-wide WithQueryTimeout bound applies, so explain cannot be
// used to run an unbounded query. The plan has already streamed with
// 200 by then; the appended trace reports the failure, the
// cancellation lands on the deadline counter, and a bad timeout_ms is
// a clean 400 envelope instead of a half-written plan.
func TestExplainTraceHonorsTimeout(t *testing.T) {
	srv := New(genstore.Grid(72, 72), WithWorkers(4), WithQueryTimeout(time.Millisecond))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, body := get(t, ts.URL+"/v1/explain?trace=1&q="+url.QueryEscape(slowQuery))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(body, "execution failed") || !strings.Contains(body, "deadline") {
		t.Errorf("traced explain ran past the server deadline:\n%s", body)
	}
	if got := srv.m.queryCancelled.With("deadline").Value(); got != 1 {
		t.Errorf("trial_query_cancelled_total{reason=\"deadline\"} = %d, want 1", got)
	}

	resp, body = get(t, ts.URL+"/v1/explain?trace=1&timeout_ms=-5&q=E")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad timeout_ms: status %d, want 400 (%s)", resp.StatusCode, body)
	}
	if got := envelope(t, body).Code; got != CodeInvalidParam {
		t.Errorf("envelope code %q, want %q", got, CodeInvalidParam)
	}
}

// TestCancelDuringShardedStarHTTP races client-side cancellation
// against in-flight partition-parallel star queries over HTTP (run
// with -race): requests are aborted at staggered points mid-execution,
// disconnect cancellations land on the metric, and the server keeps
// answering correctly afterwards.
func TestCancelDuringShardedStarHTTP(t *testing.T) {
	srv, ts := gridServer(t, 48, 4)
	u := ts.URL + "/v1/query?q=" + url.QueryEscape(slowQuery)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(delay time.Duration) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
			if err != nil {
				t.Error(err)
				return
			}
			go func() {
				time.Sleep(delay)
				cancel()
			}()
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				resp.Body.Close()
			}
		}(time.Duration(i) * 2 * time.Millisecond)
	}
	wg.Wait()

	// However the races landed, the server must keep answering (a cheap
	// scan; the sharded differential suite pins result correctness).
	resp, _ := get(t, ts.URL+"/v1/query?limit=1&q=E")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-race query: status %d", resp.StatusCode)
	}
	// Cancelled requests show up by reason (timing-dependent count: a
	// request aborted before the handler ran never reaches the engine).
	total := srv.m.queryCancelled.With("disconnect").Value() + srv.m.queryCancelled.With("deadline").Value()
	t.Logf("cancelled queries observed: %d of 8 aborted requests", total)
}
