package serve

import (
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/storage"
	"repro/internal/triplestore"
)

// serverMetrics is the server's obs registry and the instruments it
// updates on the hot paths. Everything else on /metrics — plan-cache
// counters, store and shard gauges — is exported as callbacks sampling
// the owning component at scrape time, so there is exactly one source
// of truth per number and /stats reads the same instruments (the two
// endpoints cannot drift).
type serverMetrics struct {
	reg *obs.Registry

	// Query path. Latency is labeled by language and route (flat vs
	// sharded executor); outcomes by language and status. Both label
	// sets are closed (5 languages x fixed statuses), so cardinality is
	// bounded by construction, not just by the registry cap.
	queryDur     *obs.HistogramVec // trial_query_duration_seconds{lang,route}
	queriesTotal *obs.CounterVec   // trial_queries_total{lang,status}

	// Cancellation: queries stopped by their context, by reason —
	// "deadline" for an expired timeout_ms/server deadline, "disconnect"
	// for a client that went away mid-execution.
	queryCancelled *obs.CounterVec // trial_query_cancelled_total{reason}

	// Ingest path.
	ingestBatchSize *obs.Histogram  // trial_ingest_batch_triples
	ingestBatches   *obs.Counter    // trial_ingest_batches_total
	ingestTriples   *obs.CounterVec // trial_ingest_triples_total{op}

	// HTTP tier. Rejections are requests the serving tier refused before
	// (or instead of) running the handler, by reason: unauthorized,
	// forbidden, rate_limited, method_not_allowed, payload_too_large.
	httpInFlight *obs.Gauge      // trial_http_in_flight
	httpRequests *obs.CounterVec // trial_http_requests_total{route,class}
	httpRejected *obs.CounterVec // trial_http_requests_rejected_total{reason}

	route string // "flat" or "sharded", the executor this server runs
}

// newServerMetrics builds the registry for one server instance (tests
// scrape in isolation) and registers the callback-backed families.
func newServerMetrics(q *query.Querier, store *triplestore.Store,
	sharded *triplestore.ShardedStore, eng storage.Engine,
	slow *obs.SlowLog, start time.Time) *serverMetrics {
	reg := obs.NewRegistry()
	m := &serverMetrics{
		reg: reg,
		queryDur: reg.HistogramVec("trial_query_duration_seconds",
			"query latency by language and executor route", obs.DurationBuckets(), "lang", "route"),
		queriesTotal: reg.CounterVec("trial_queries_total",
			"queries served by language and status", "lang", "status"),
		queryCancelled: reg.CounterVec("trial_query_cancelled_total",
			"queries stopped by context cancellation, by reason", "reason"),
		ingestBatchSize: reg.Histogram("trial_ingest_batch_triples",
			"triples changed per ingest batch", obs.SizeBuckets()),
		ingestBatches: reg.Counter("trial_ingest_batches_total",
			"ingest batches applied through /triples"),
		ingestTriples: reg.CounterVec("trial_ingest_triples_total",
			"triples changed through /triples by operation", "op"),
		httpInFlight: reg.Gauge("trial_http_in_flight",
			"HTTP requests currently being served"),
		httpRequests: reg.CounterVec("trial_http_requests_total",
			"HTTP requests by route and status class", "route", "class"),
		httpRejected: reg.CounterVec("trial_http_requests_rejected_total",
			"HTTP requests refused by the serving tier, by reason", "reason"),
		route: "flat",
	}
	if sharded != nil {
		m.route = "sharded"
	}

	// Plan cache: counters owned by the Querier, sampled at scrape time.
	reg.CounterFunc("trial_plan_cache_hits_total", "plan-cache hits",
		func() uint64 { return q.Stats().Hits })
	reg.CounterFunc("trial_plan_cache_misses_total", "plan-cache misses",
		func() uint64 { return q.Stats().Misses })
	reg.CounterFunc("trial_plan_cache_evictions_total",
		"plans evicted by capacity pressure or store-version death",
		func() uint64 { return q.Stats().Evictions }, "reason", "capacity")
	reg.CounterFunc("trial_plan_cache_evictions_total", "",
		func() uint64 { return q.Stats().StaleEvictions }, "reason", "stale")
	reg.GaugeFunc("trial_plan_cache_size", "compiled plans currently cached",
		func() float64 { return float64(q.Stats().Size) })
	reg.GaugeFunc("trial_plan_cache_capacity", "plan-cache capacity",
		func() float64 { return float64(q.Stats().Capacity) })

	// Store: version and size gauges, lifetime mutation counters.
	reg.GaugeFunc("trial_store_version", "store version (each ingest batch advances it once)",
		func() float64 { return float64(store.Version()) })
	reg.GaugeFunc("trial_store_triples", "triples in the store",
		func() float64 { return float64(store.Size()) })
	reg.GaugeFunc("trial_store_objects", "interned objects in the store",
		func() float64 { return float64(store.NumObjects()) })
	reg.CounterFunc("trial_store_stats_refreshes_total",
		"per-relation statistics snapshot rebuilds",
		func() uint64 { return store.StatsRefreshes() })
	reg.CounterFunc("trial_store_mutations_total", "triples actually inserted or deleted, lifetime",
		func() uint64 { return store.MutationStats().Adds }, "op", "added")
	reg.CounterFunc("trial_store_mutations_total", "",
		func() uint64 { return store.MutationStats().Removes }, "op", "removed")

	// Shards: one gauge per partition (bounded by the shard count; the
	// registry folds anything past MaxCardinality into an overflow
	// series, so even an absurd -shards cannot blow up the scrape).
	nShards := 1
	if sharded != nil {
		nShards = sharded.NumShards()
		for i := 0; i < nShards; i++ {
			shard := i
			reg.GaugeFunc("trial_shard_triples", "triples per shard (skew bounds the parallel win)",
				func() float64 { return float64(sharded.ShardStats()[shard].Triples) },
				"shard", strconv.Itoa(shard))
		}
	}
	reg.GaugeFunc("trial_shards", "shard count (1 = flat store)",
		func() float64 { return float64(nShards) })

	// Storage engine: WAL, segment, flush/compaction and recovery
	// counters sampled from the engine at scrape time. Only registered
	// when the server fronts a disk engine; a plain in-memory server
	// keeps its scrape free of always-zero series.
	if eng != nil {
		reg.GaugeFunc("trial_storage_wal_bytes", "bytes in the live write-ahead log",
			func() float64 { return float64(eng.Stats().WALBytes) })
		reg.CounterFunc("trial_storage_wal_records_total", "records appended to the live WAL",
			func() uint64 { return eng.Stats().WALRecords })
		reg.GaugeFunc("trial_storage_segments", "immutable segment files in the current manifest",
			func() float64 { return float64(eng.Stats().Segments) })
		reg.GaugeFunc("trial_storage_segment_bytes", "total bytes across manifest segments",
			func() float64 { return float64(eng.Stats().SegmentBytes) })
		reg.CounterFunc("trial_storage_flushes_total", "memtable flushes to segment files",
			func() uint64 { return eng.Stats().Flushes })
		reg.CounterFunc("trial_storage_compactions_total", "segment-stack compactions",
			func() uint64 { return eng.Stats().Compactions })
		reg.GaugeFunc("trial_storage_recovery_ms", "milliseconds the last Open spent recovering",
			func() float64 { return eng.Stats().RecoveryMillis })
		reg.GaugeFunc("trial_storage_pinned_generations", "manifest generations pinned by snapshots",
			func() float64 { return float64(eng.Stats().PinnedGenerations) })
		// Residency: how much of the store is materialized on the heap
		// versus served from mapped segment files (WithReadBudget; all
		// zeros on an eager engine except the -1 budget gauge).
		reg.GaugeFunc("trial_storage_read_budget_bytes", "residency byte budget (-1 unlimited, 0 fully cold)",
			func() float64 { return float64(eng.Stats().Residency.Budget) })
		reg.GaugeFunc("trial_storage_resident_bytes", "estimated heap bytes held by promoted relations",
			func() float64 { return float64(eng.Stats().Residency.ResidentBytes) })
		reg.GaugeFunc("trial_storage_resident_relations", "relations materialized in memory",
			func() float64 { return float64(eng.Stats().Residency.ResidentRelations) })
		reg.GaugeFunc("trial_storage_cold_relations", "relations served from segment files",
			func() float64 { return float64(eng.Stats().Residency.ColdRelations) })
		reg.CounterFunc("trial_storage_promotions_total", "cold relations promoted to memory",
			func() uint64 { return eng.Stats().Residency.Promotions })
		reg.CounterFunc("trial_storage_cold_probes_total", "point reads answered from segment blocks",
			func() uint64 { return eng.Stats().Residency.ColdProbes })
		reg.CounterFunc("trial_storage_cold_decodes_total", "uncached full-run decodes from segments",
			func() uint64 { return eng.Stats().Residency.ColdDecodes })
		reg.GaugeFunc("trial_storage_block_cache_bytes", "decoded segment blocks held by the probe cache",
			func() float64 { return float64(eng.Stats().Residency.CacheBytes) })
		reg.CounterFunc("trial_storage_block_cache_hits_total", "point probes served from cached blocks",
			func() uint64 { return eng.Stats().Residency.CacheHits })
		reg.CounterFunc("trial_storage_block_cache_misses_total", "point probes that had to decode a block",
			func() uint64 { return eng.Stats().Residency.CacheMisses })
	}

	reg.GaugeFunc("trial_uptime_seconds", "seconds since server start",
		func() float64 { return time.Since(start).Seconds() })
	reg.CounterFunc("trial_slowlog_records_total",
		"queries accepted into the slow-query log, lifetime",
		func() uint64 { return slow.Total() })
	return m
}

// observeQuery records one query's latency and outcome.
func (m *serverMetrics) observeQuery(lang query.Lang, d time.Duration, err error) {
	status := "ok"
	if err != nil {
		status = "error"
	}
	m.queriesTotal.With(string(lang), status).Inc()
	m.queryDur.With(string(lang), m.route).Observe(d.Seconds())
}

// observeBatch records one applied ingest batch.
func (m *serverMetrics) observeBatch(res triplestore.BatchResult) {
	m.ingestBatches.Inc()
	m.ingestBatchSize.Observe(float64(res.Added + res.Removed))
	m.ingestTriples.With("added").Add(uint64(res.Added))
	m.ingestTriples.With("removed").Add(uint64(res.Removed))
}

// statusRecorder captures the response status code for the status-class
// counter, passing Flush through so streamed query results keep
// flushing.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with the HTTP-tier metrics: in-flight
// gauge and per-route status-class counters. route is the metrics label
// for the registration pattern (legacy aliases keep their original
// label), so the label set is exactly the server's route table —
// user-controlled paths never become label values.
func (m *serverMetrics) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		m.httpInFlight.Inc()
		defer m.httpInFlight.Dec()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		m.httpRequests.With(route, statusClass(rec.code)).Inc()
	}
}

func statusClass(code int) string {
	switch {
	case code < 200:
		return "1xx"
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}
