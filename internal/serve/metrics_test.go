package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/obs"
)

// exercise drives a mixed workload — queries in two languages (one
// repeated for a cache hit, one malformed), an ingest batch and a
// delete — so every metric family on /metrics has data behind it.
func exercise(t *testing.T, ts *httptest.Server) {
	t.Helper()
	for _, u := range []string{
		"/query?q=" + url.QueryEscape("join[1,3',3; 2=1'](E, E)"),
		"/query?q=" + url.QueryEscape("join[1,3',3; 2=1'](E, E)"), // plan-cache hit
		"/query?lang=rpq&q=" + url.QueryEscape("E*"),
	} {
		resp, _ := get(t, ts.URL+u)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", u, resp.StatusCode)
		}
	}
	resp, _ := get(t, ts.URL+"/query?q="+url.QueryEscape("join[("))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed query: status %d, want 400", resp.StatusCode)
	}
	body := strings.NewReader(`{"s":"x","p":"mt","o":"y"}` + "\n" + `{"s":"y","p":"mt","o":"z"}`)
	post, err := http.Post(ts.URL+"/triples", "application/x-ndjson", body)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d", post.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/triples",
		strings.NewReader(`{"s":"x","p":"mt","o":"y"}`))
	del, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	del.Body.Close()
	if del.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", del.StatusCode)
	}
}

// TestMetricsLint scrapes /metrics after a mixed query/ingest workload
// and runs the exposition through the obs linter: well-formed families,
// consistent histograms, bounded label cardinality. CI runs this as its
// metrics-lint gate.
func TestMetricsLint(t *testing.T) {
	_, ts := testServer(t)
	exercise(t, ts)
	resp, body := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	for _, err := range obs.LintExposition(strings.NewReader(body)) {
		t.Errorf("lint: %v", err)
	}
	for _, want := range []string{
		`trial_query_duration_seconds_bucket{lang="trial",route="flat",le="+Inf"} 3`,
		`trial_queries_total{lang="trial",status="ok"} 2`,
		`trial_queries_total{lang="trial",status="error"} 1`,
		`trial_queries_total{lang="rpq",status="ok"} 1`,
		`trial_ingest_batches_total 2`,
		`trial_ingest_triples_total{op="added"} 2`,
		`trial_ingest_triples_total{op="removed"} 1`,
		`trial_plan_cache_hits_total 1`,
		`trial_store_version `, // absolute value depends on fixture construction
		`trial_store_mutations_total{op="added"}`,
		`trial_http_requests_total{route="/query",class="2xx"} 3`,
		`trial_http_requests_total{route="/query",class="4xx"} 1`,
		`trial_http_in_flight 1`, // the /metrics request itself
		`trial_shards 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestMetricsSharded: the sharded server reports per-shard triple
// gauges and routes query latency under route="sharded".
func TestMetricsSharded(t *testing.T) {
	srv := New(fixtures.Transport(), WithWorkers(2), WithRelation(fixtures.RelE), WithCacheSize(64), WithShards(4))
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, _ := get(t, ts.URL+"/query?q="+url.QueryEscape("join[1,3',3; 2=1'](E, E)"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d", resp.StatusCode)
	}
	_, body := get(t, ts.URL+"/metrics")
	for _, err := range obs.LintExposition(strings.NewReader(body)) {
		t.Errorf("lint: %v", err)
	}
	for _, want := range []string{
		`trial_shards 4`,
		`trial_shard_triples{shard="0"}`,
		`trial_shard_triples{shard="3"}`,
		`trial_query_duration_seconds_bucket{lang="trial",route="sharded",le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestStatsMatchesMetrics: /stats reads the same obs instruments
// /metrics exports, with the pre-obs JSON shape.
func TestStatsMatchesMetrics(t *testing.T) {
	_, ts := testServer(t)
	exercise(t, ts)
	resp, body := get(t, ts.URL+"/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var st struct {
		Queries float64 `json:"queries"`
		Ingest  struct {
			Batches float64 `json:"batches"`
			Added   float64 `json:"added"`
			Removed float64 `json:"removed"`
		} `json:"ingest"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("unmarshal /stats: %v\n%s", err, body)
	}
	// 3 successful queries (the malformed one is excluded, as before the
	// obs refactor), 2 batches, 2 added, 1 removed.
	if st.Queries != 3 {
		t.Errorf("queries = %v, want 3", st.Queries)
	}
	if st.Ingest.Batches != 2 || st.Ingest.Added != 2 || st.Ingest.Removed != 1 {
		t.Errorf("ingest = %+v, want {2 2 1}", st.Ingest)
	}
}

// TestQueryTraceParam: &trace=1 appends the span tree — comment lines
// in text format, a final {"trace": ...} object in NDJSON.
func TestQueryTraceParam(t *testing.T) {
	_, ts := testServer(t)
	q := url.QueryEscape("join[1,3',3; 2=1'](E, E)")
	resp, body := get(t, ts.URL+"/query?trace=1&q="+q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, "# trace:") || !strings.Contains(body, "query ") {
		t.Errorf("text body lacks trace comments:\n%s", body)
	}
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if !strings.HasPrefix(line, "#") && len(strings.Split(line, "\t")) != 3 {
			t.Errorf("non-comment line %q is not a triple", line)
		}
	}

	resp, body = get(t, ts.URL+"/query?trace=1&format=json&q="+q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	var last struct {
		Trace struct {
			Name     string            `json:"name"`
			DurUs    float64           `json:"dur_us"`
			Attrs    map[string]any    `json:"attrs"`
			Children []json.RawMessage `json:"children"`
		} `json:"trace"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatalf("final NDJSON line is not a trace: %v\n%s", err, lines[len(lines)-1])
	}
	if last.Trace.Name != "query" || len(last.Trace.Children) == 0 {
		t.Errorf("trace = %+v", last.Trace)
	}
	if last.Trace.Attrs["plan_cache"] == nil {
		t.Error("trace lacks plan_cache attr")
	}
}

// TestExplainTrace: /explain?trace=1 appends the measured operator tree
// under the predicted plan.
func TestExplainTrace(t *testing.T) {
	_, ts := testServer(t)
	q := url.QueryEscape("join[1,3',3; 2=1'](E, E)")
	_, plain := get(t, ts.URL+"/explain?q="+q)
	resp, body := get(t, ts.URL+"/explain?trace=1&q="+q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !strings.HasPrefix(body, plain) {
		t.Errorf("traced explain does not start with the plain plan:\n%s", body)
	}
	if !strings.Contains(body, "execution trace:") || !strings.Contains(body, "execute") {
		t.Errorf("no execution trace appended:\n%s", body)
	}
}

// TestDebugQueries: the slow-query ring buffer serves recent queries
// newest first, keeping errors and attached traces.
func TestDebugQueries(t *testing.T) {
	_, ts := testServer(t)
	q := url.QueryEscape("join[1,3',3; 2=1'](E, E)")
	get(t, ts.URL+"/query?q="+q)
	get(t, ts.URL+"/query?q="+url.QueryEscape("join[("))
	get(t, ts.URL+"/query?trace=1&q="+q)

	resp, body := get(t, ts.URL+"/debug/queries")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var log struct {
		Total   float64 `json:"total"`
		Queries []struct {
			Lang       string          `json:"lang"`
			Source     string          `json:"source"`
			DurationMs float64         `json:"duration_ms"`
			ResultSize int             `json:"result_size"`
			Err        string          `json:"error"`
			Trace      json.RawMessage `json:"trace"`
		} `json:"queries"`
	}
	if err := json.Unmarshal([]byte(body), &log); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, body)
	}
	if log.Total != 3 || len(log.Queries) != 3 {
		t.Fatalf("total = %v, %d records, want 3", log.Total, len(log.Queries))
	}
	// Newest first: the traced query leads, then the error, then the
	// first query.
	if log.Queries[0].Trace == nil {
		t.Error("newest record lacks its trace")
	}
	if log.Queries[1].Err == "" {
		t.Error("error record lost its error")
	}
	if log.Queries[2].Trace != nil {
		t.Error("untraced record has a trace")
	}
	for _, r := range log.Queries {
		if r.Lang != "trial" || r.Source == "" {
			t.Errorf("record %+v lacks lang/source", r)
		}
	}
}

// TestPprofGate: /debug/pprof/ is 404 by default and mounted with the
// -pprof option.
func TestPprofGate(t *testing.T) {
	_, ts := testServer(t)
	resp, _ := get(t, ts.URL+"/debug/pprof/")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("ungated pprof: status %d, want 404", resp.StatusCode)
	}

	srv := New(fixtures.Transport(), WithWorkers(2), WithRelation(fixtures.RelE), WithCacheSize(64), WithPprof(true))
	ts2 := httptest.NewServer(srv)
	defer ts2.Close()
	resp, body := get(t, ts2.URL+"/debug/pprof/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("gated pprof: status %d", resp.StatusCode)
	}
}

// TestSlowLogThreshold: with a high threshold fast queries stay out of
// the log.
func TestSlowLogThreshold(t *testing.T) {
	srv := New(fixtures.Transport(), WithWorkers(2), WithRelation(fixtures.RelE), WithCacheSize(64),
		WithSlowLog(8, 10e9))
	ts := httptest.NewServer(srv)
	defer ts.Close()
	get(t, ts.URL+"/query?q="+url.QueryEscape("join[1,3',3; 2=1'](E, E)"))
	_, body := get(t, ts.URL+"/debug/queries")
	var log struct {
		Total       float64 `json:"total"`
		ThresholdMs float64 `json:"threshold_ms"`
	}
	if err := json.Unmarshal([]byte(body), &log); err != nil {
		t.Fatal(err)
	}
	if log.Total != 0 {
		t.Errorf("total = %v, want 0 (threshold %vms)", log.Total, log.ThresholdMs)
	}
	if log.ThresholdMs != 10000 {
		t.Errorf("threshold_ms = %v, want 10000", log.ThresholdMs)
	}
}
