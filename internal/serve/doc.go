// Package serve is the production HTTP serving tier over the unified
// query layer: the versioned /v1 API (query, ingest, explain, stats,
// metrics, debug), bearer-token authentication with read-only vs admin
// roles, per-client token-bucket rate limiting, per-request deadlines
// wired through internal/query into the engine's cancellation points,
// and result pagination with opaque cursors. Every failure path answers
// a stable JSON error envelope {"error": {"code", "message"}}.
//
// The pre-v1 routes (/query, /triples, /explain, /stats, /metrics,
// /debug/queries, /healthz) remain mounted as deprecated aliases of
// their /v1 twins: same handlers, same metrics route labels, plus a
// Deprecation header and a Link to the successor. cmd/trialserver is a
// thin flag-parsing front end over New; cmd/trialload drives a Server
// handler directly for load testing. See docs/API.md for the full
// endpoint contract.
package serve
