package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/trial"
)

func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(fixtures.Transport(), WithWorkers(2), WithRelation(fixtures.RelE), WithCacheSize(64))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestQueryText(t *testing.T) {
	srv, ts := testServer(t)
	resp, body := get(t, ts.URL+"/query?q="+
		"join%5B1%2C3%27%2C3%3B%202%3D1%27%5D(E%2C%20E)") // join[1,3',3; 2=1'](E, E)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	want, err := trial.NewEvaluator(srv.store).Eval(trial.Example2(fixtures.RelE))
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("X-Trial-Result-Size"); got != "" {
		if got != itoa(want.Len()) {
			t.Errorf("X-Trial-Result-Size = %s, want %d", got, want.Len())
		}
	} else {
		t.Error("missing X-Trial-Result-Size header")
	}
	lines := 0
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "#") || sc.Text() == "" {
			continue
		}
		if got := len(strings.Split(sc.Text(), "\t")); got != 3 {
			t.Errorf("line %q has %d fields, want 3", sc.Text(), got)
		}
		lines++
	}
	if lines != want.Len() {
		t.Errorf("streamed %d triples, want %d", lines, want.Len())
	}
}

func itoa(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}

func TestQueryJSONAndLimit(t *testing.T) {
	_, ts := testServer(t)
	resp, body := get(t, ts.URL+"/query?format=json&limit=2&q=E")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	var n int
	dec := json.NewDecoder(strings.NewReader(body))
	for dec.More() {
		var row map[string]string
		if err := dec.Decode(&row); err != nil {
			t.Fatal(err)
		}
		for _, k := range []string{"s", "p", "o"} {
			if _, ok := row[k]; !ok {
				t.Errorf("row %v missing %q", row, k)
			}
		}
		n++
	}
	if n != 2 {
		t.Errorf("limit=2 streamed %d rows", n)
	}
	if size := resp.Header.Get("X-Trial-Result-Size"); size != "7" {
		t.Errorf("full size header = %q, want 7 (limit must not truncate it)", size)
	}
}

func TestQueryPost(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Post(ts.URL+"/query", "text/plain",
		strings.NewReader(`rstar[1,2,3'; 3=1'](E)`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "St. Andrews\tBus Op 1\tBrussels") {
		t.Errorf("reachability result missing transitive triple:\n%s", body)
	}
}

func TestQueryErrors(t *testing.T) {
	_, ts := testServer(t)
	for _, tc := range []struct {
		url  string
		code int
	}{
		{"/query", http.StatusBadRequest},                      // no query
		{"/query?q=join%5B(", http.StatusBadRequest},           // parse error
		{"/query?q=NoSuchRel", http.StatusUnprocessableEntity}, // unknown relation
		{"/query?q=E&limit=x", http.StatusBadRequest},          // bad limit
		{"/query?q=E&format=xml", http.StatusBadRequest},       // bad format
	} {
		resp, body := get(t, ts.URL+tc.url)
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d (%s)", tc.url, resp.StatusCode, tc.code, body)
		}
	}
}

func TestExplainEndpoint(t *testing.T) {
	_, ts := testServer(t)
	resp, body := get(t, ts.URL+"/explain?q=rstar%5B1%2C2%2C3%27%3B%203%3D1%27%5D(E)")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, "bfs-reach") && !strings.Contains(body, "semi-naive") {
		t.Errorf("explain output missing star strategy:\n%s", body)
	}
	if !strings.Contains(body, "rewrites[v") {
		t.Errorf("explain output missing rewrite trace:\n%s", body)
	}
}

func TestStatsAndHealth(t *testing.T) {
	_, ts := testServer(t)
	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}
	resp, body = get(t, ts.URL+"/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	var stats map[string]any
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatal(err)
	}
	if stats["triples"] != float64(7) {
		t.Errorf("stats triples = %v, want 7", stats["triples"])
	}
	if stats["workers"] != float64(2) {
		t.Errorf("stats workers = %v, want the configured 2", stats["workers"])
	}
	opt, ok := stats["optimizer"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing optimizer counters: %v", body)
	}
	if opt["optimizer_version"] == float64(0) {
		t.Errorf("optimizer_version = %v, want nonzero", opt["optimizer_version"])
	}
	if _, ok := opt["rule_hits"]; !ok {
		t.Errorf("optimizer stats missing rule_hits: %v", opt)
	}
	ss, ok := stats["store_stats"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing store_stats: %v", body)
	}
	if _, ok := ss["refreshes"]; !ok {
		t.Errorf("store_stats missing refreshes: %v", ss)
	}

	// A query that the optimizer rewrites bumps the counters.
	get(t, ts.URL+"/query?q=sigma%5B1%3D2%5D(union(E%2C%20E))")
	_, body = get(t, ts.URL+"/stats")
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatal(err)
	}
	opt = stats["optimizer"].(map[string]any)
	if opt["rewritten"] == float64(0) {
		t.Errorf("optimizer rewritten count still zero after rewritten query: %v", opt)
	}
}

func TestConcurrentQueries(t *testing.T) {
	_, ts := testServer(t)
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/query?q=rstar%5B1%2C2%2C3%27%3B%203%3D1%27%5D(E)")
			if err != nil {
				errs <- err.Error()
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- "bad status"
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

func TestQueryLang(t *testing.T) {
	srv, ts := testServer(t)
	// An RPQ over the transport network: part_of-reachability. The façade
	// result is canonical {(x, x, y)}, so the translated expression must
	// agree with the reference evaluator via the query layer (covered in
	// internal/query); here we check the HTTP surface end to end.
	resp, body := get(t, ts.URL+"/query?lang=rpq&q=part_of%2B")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(body, "Train Op 1\tTrain Op 1\tNatExpress") {
		t.Errorf("rpq result missing transitive part_of pair:\n%s", body)
	}
	// nSPARQL and GXPath reach the same engine.
	for _, u := range []string{
		"/query?lang=nsparql&q=next*",
		"/query?lang=nre&q=part_of*",
		"/query?lang=gxpath&q=part_of*",
	} {
		if resp, body := get(t, ts.URL+u); resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d: %s", u, resp.StatusCode, body)
		}
	}
	// Bad language and bad source in a valid language.
	if resp, _ := get(t, ts.URL+"/query?lang=sql&q=E"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("lang=sql: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := get(t, ts.URL+"/query?lang=rpq&q=(a"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad rpq: status %d, want 400", resp.StatusCode)
	}
	// The explain endpoint accepts lang too.
	resp, body = get(t, ts.URL+"/explain?lang=rpq&q=part_of%2B")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "scan") {
		t.Errorf("explain lang=rpq: status %d body %q", resp.StatusCode, body)
	}
	_ = srv
}

func TestStatsPlanCache(t *testing.T) {
	_, ts := testServer(t)
	// Two identical queries: one miss, one hit.
	get(t, ts.URL+"/query?lang=rpq&q=part_of")
	get(t, ts.URL+"/query?lang=rpq&q=part_of")
	_, body := get(t, ts.URL+"/stats")
	var stats struct {
		PlanCache struct {
			Hits     uint64 `json:"hits"`
			Misses   uint64 `json:"misses"`
			Size     int    `json:"size"`
			Capacity int    `json:"capacity"`
		} `json:"plan_cache"`
		Languages []string `json:"languages"`
	}
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.PlanCache.Hits != 1 || stats.PlanCache.Misses != 1 {
		t.Errorf("plan_cache = %+v, want 1 hit and 1 miss", stats.PlanCache)
	}
	if stats.PlanCache.Capacity != 64 {
		t.Errorf("capacity = %d, want the configured 64", stats.PlanCache.Capacity)
	}
	if len(stats.Languages) != 5 {
		t.Errorf("languages = %v, want all five", stats.Languages)
	}
}
