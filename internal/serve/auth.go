package serve

import (
	"crypto/subtle"
	"fmt"
	"net/http"
	"strings"
)

// Role is the privilege level a bearer token grants. Roles are ordered:
// admin implies read.
type Role int

const (
	// RoleRead can run queries and read stats, metrics and debug
	// endpoints.
	RoleRead Role = iota
	// RoleAdmin can additionally mutate the store through /v1/triples.
	RoleAdmin
)

// String returns the role name used in token specs and error details.
func (r Role) String() string {
	if r == RoleAdmin {
		return "admin"
	}
	return "read"
}

// ParseRole parses "read" or "admin".
func ParseRole(s string) (Role, error) {
	switch s {
	case "read":
		return RoleRead, nil
	case "admin":
		return RoleAdmin, nil
	}
	return 0, fmt.Errorf("unknown role %q (want read or admin)", s)
}

// ParseTokens parses a -tokens flag value: comma-separated token:role
// pairs, e.g. "s3cret:admin,scraper:read". An empty string yields nil
// (authentication disabled).
func ParseTokens(spec string) (map[string]Role, error) {
	if spec == "" {
		return nil, nil
	}
	tokens := make(map[string]Role)
	for _, pair := range strings.Split(spec, ",") {
		tok, role, ok := strings.Cut(strings.TrimSpace(pair), ":")
		if !ok || tok == "" {
			return nil, fmt.Errorf("bad token spec %q (want token:role)", pair)
		}
		r, err := ParseRole(role)
		if err != nil {
			return nil, err
		}
		tokens[tok] = r
	}
	return tokens, nil
}

// bearerToken extracts the RFC 6750 bearer token from the Authorization
// header, or "" when absent.
func bearerToken(r *http.Request) string {
	h := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(h) > len(prefix) && strings.EqualFold(h[:len(prefix)], prefix) {
		return h[len(prefix):]
	}
	return ""
}

// lookupToken resolves a presented bearer token against the configured
// set, comparing every candidate with crypto/subtle so the scan takes
// the same time whether the token matches, mismatches early, or is
// absent — a brute-forcing client learns nothing from response timing
// (beyond token length, which ConstantTimeCompare rejects up front).
func (s *Server) lookupToken(tok string) (Role, bool) {
	var role Role
	found := false
	for t, r := range s.tokens {
		if subtle.ConstantTimeCompare([]byte(t), []byte(tok)) == 1 {
			role, found = r, true
		}
	}
	return role, found
}

// requireRole gates h on authentication when the server has tokens
// configured: a missing or unknown token answers 401 (with a
// WWW-Authenticate challenge), a known token below min answers 403.
// With no tokens configured the server is open and h runs as-is. The
// rate limiter validates the same token set when picking a bucket key
// (see clientKey), so per-client buckets follow proven identity, not
// whatever Authorization header the client invented.
func (s *Server) requireRole(min Role, h http.HandlerFunc) http.HandlerFunc {
	if len(s.tokens) == 0 {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		tok := bearerToken(r)
		role, ok := s.lookupToken(tok)
		if tok == "" || !ok {
			s.m.httpRejected.With("unauthorized").Inc()
			w.Header().Set("WWW-Authenticate", `Bearer realm="trialserver"`)
			writeError(w, http.StatusUnauthorized, CodeUnauthorized,
				"missing or unknown bearer token", nil)
			return
		}
		if role < min {
			s.m.httpRejected.With("forbidden").Inc()
			writeError(w, http.StatusForbidden, CodeForbidden,
				fmt.Sprintf("%s role required", min), map[string]string{"have": role.String()})
			return
		}
		h(w, r)
	}
}
