package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func doReq(t *testing.T, method, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	// HEAD responses carry the JSON content-type but no body.
	if strings.HasPrefix(resp.Header.Get("Content-Type"), "application/json") && len(raw) > 0 {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp, out
}

// TestIngestSmoke is the end-to-end ingest smoke test: POST triples,
// then query and see them; DELETE one, and see it gone.
func TestIngestSmoke(t *testing.T) {
	srv, ts := testServer(t)
	before := srv.store.Size()

	// Single-object body.
	resp, out := doReq(t, http.MethodPost, ts.URL+"/triples",
		`{"s":"NewTown","p":"Shiny Rail","o":"Edinburgh"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /triples status %d", resp.StatusCode)
	}
	if out["added"] != float64(1) || out["removed"] != float64(0) {
		t.Errorf("single insert response: %v", out)
	}

	// NDJSON bulk body, with an explicit rel and a delete op inline.
	resp, out = doReq(t, http.MethodPost, ts.URL+"/triples",
		`{"s":"NewTown","p":"Shiny Rail","o":"Glasgow"}
{"rel":"E","s":"Glasgow","p":"Shiny Rail","o":"NewTown"}
{"op":"delete","s":"NewTown","p":"Shiny Rail","o":"Edinburgh"}
`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bulk POST status %d", resp.StatusCode)
	}
	if out["added"] != float64(2) || out["removed"] != float64(1) {
		t.Errorf("bulk response: %v", out)
	}
	if got := srv.store.Size(); got != before+2 {
		t.Errorf("store size = %d, want %d", got, before+2)
	}

	// The query path must reflect the ingest (snapshot refresh + plan
	// cache invalidation), through the engine, not just the store.
	_, body := get(t, ts.URL+"/query?q=E")
	if !strings.Contains(body, "NewTown\tShiny Rail\tGlasgow") {
		t.Errorf("query does not reflect ingested triple:\n%s", body)
	}
	if strings.Contains(body, "NewTown\tShiny Rail\tEdinburgh") {
		t.Errorf("query still shows deleted triple:\n%s", body)
	}

	// DELETE /triples forces deletion regardless of per-line op.
	resp, out = doReq(t, http.MethodDelete, ts.URL+"/triples",
		`{"s":"NewTown","p":"Shiny Rail","o":"Glasgow"}`)
	if resp.StatusCode != http.StatusOK || out["removed"] != float64(1) {
		t.Fatalf("DELETE status %d response %v", resp.StatusCode, out)
	}
	_, body = get(t, ts.URL+"/query?q=E")
	if strings.Contains(body, "NewTown\tShiny Rail\tGlasgow") {
		t.Errorf("query still shows triple deleted via DELETE:\n%s", body)
	}

	// Ingest counters surface on /stats.
	_, stats := doReq(t, http.MethodGet, ts.URL+"/stats", "")
	ingest, ok := stats["ingest"].(map[string]any)
	if !ok {
		t.Fatalf("/stats has no ingest section: %v", stats)
	}
	if ingest["batches"] != float64(3) || ingest["added"] != float64(3) || ingest["removed"] != float64(2) {
		t.Errorf("ingest counters = %v", ingest)
	}
	if _, ok := stats["store_mutations"].(map[string]any); !ok {
		t.Errorf("/stats has no store_mutations section: %v", stats)
	}
}

func TestIngestErrors(t *testing.T) {
	_, ts := testServer(t)
	for name, tc := range map[string]struct {
		method, body string
		status       int
	}{
		"bad method":    {http.MethodGet, "", http.StatusMethodNotAllowed},
		"empty body":    {http.MethodPost, "", http.StatusBadRequest},
		"malformed":     {http.MethodPost, `{"s":`, http.StatusBadRequest},
		"missing field": {http.MethodPost, `{"s":"a","p":"b"}`, http.StatusBadRequest},
		"unknown op":    {http.MethodPost, `{"op":"merge","s":"a","p":"b","o":"c"}`, http.StatusBadRequest},
	} {
		resp, _ := doReq(t, tc.method, ts.URL+"/triples", tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", name, resp.StatusCode, tc.status)
		}
	}
	// A body over the ingest cap is rejected with 413, not buffered.
	line := `{"s":"` + strings.Repeat("x", 1<<20) + `","p":"p","o":"o"}` + "\n"
	huge := strings.Repeat(line, maxIngestBody/len(line)+2)
	resp, _ := doReq(t, http.MethodPost, ts.URL+"/triples", huge)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", resp.StatusCode)
	}
}

func TestMethodChecks(t *testing.T) {
	_, ts := testServer(t)
	for _, tc := range []struct{ method, path string }{
		{http.MethodDelete, "/query"},
		{http.MethodPost, "/explain"},
		{http.MethodPost, "/stats"},
		{http.MethodPost, "/healthz"},
	} {
		resp, _ := doReq(t, tc.method, ts.URL+tc.path, "q=E")
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", tc.method, tc.path, resp.StatusCode)
		}
		if resp.Header.Get("Allow") == "" {
			t.Errorf("%s %s: missing Allow header", tc.method, tc.path)
		}
	}
	// HEAD rides along with GET: health probes must keep working.
	for _, path := range []string{"/healthz", "/stats", "/query?q=E"} {
		resp, _ := doReq(t, http.MethodHead, ts.URL+path, "")
		if resp.StatusCode != http.StatusOK {
			t.Errorf("HEAD %s: status %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestConcurrentIngestAndQuery is the acceptance race test: concurrent
// POST /triples batches against concurrent /query requests. Every query
// must observe a consistent snapshot — the scan size always sits on a
// batch boundary because a batch advances the version once — and a query
// after all ingest completes reflects every new triple.
func TestConcurrentIngestAndQuery(t *testing.T) {
	srv, ts := testServer(t)
	base := srv.store.Size()
	const nWriters, nBatches, batchSize = 2, 12, 4

	var wg sync.WaitGroup
	for w := 0; w < nWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < nBatches; b++ {
				var sb strings.Builder
				for i := 0; i < batchSize; i++ {
					fmt.Fprintf(&sb, "{\"s\":\"w%d-b%d-%d\",\"p\":\"ingest\",\"o\":\"w%d-b%d-%d\"}\n",
						w, b, i, w, b, i+1)
				}
				resp, out := doReq(t, http.MethodPost, ts.URL+"/triples", sb.String())
				if resp.StatusCode != http.StatusOK {
					t.Errorf("ingest status %d", resp.StatusCode)
					return
				}
				if out["added"] != float64(batchSize) {
					t.Errorf("batch added %v, want %d", out["added"], batchSize)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				resp, body := get(t, ts.URL+"/query?q=E")
				if resp.StatusCode != http.StatusOK {
					t.Errorf("query status %d: %s", resp.StatusCode, body)
					return
				}
				n, err := strconv.Atoi(resp.Header.Get("X-Trial-Result-Size"))
				if err != nil {
					t.Errorf("bad result-size header: %v", err)
					return
				}
				if extra := n - base; extra < 0 || extra%batchSize != 0 {
					t.Errorf("scan saw %d triples: not on a batch boundary (base %d, batch %d)",
						n, base, batchSize)
					return
				}
			}
		}()
	}
	wg.Wait()

	resp, _ := get(t, ts.URL+"/query?q=E")
	n, err := strconv.Atoi(resp.Header.Get("X-Trial-Result-Size"))
	if err != nil {
		t.Fatal(err)
	}
	if want := base + nWriters*nBatches*batchSize; n != want {
		t.Errorf("final scan = %d triples, want %d", n, want)
	}
	// And a recursive query over the ingested chain works end to end.
	resp, body := get(t, ts.URL+"/query?lang=rpq&q=ingest%2B&limit=1")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("rpq over ingested data: status %d: %s", resp.StatusCode, body)
	}
}
