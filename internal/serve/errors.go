package serve

import (
	"encoding/json"
	"net/http"
)

// Stable machine-readable error codes: clients switch on these, the
// human-readable message may change freely. Every non-2xx response from
// a /v1 route (and its legacy alias) carries exactly one of them.
const (
	// CodeParseError: the query failed to compile (HTTP 400).
	CodeParseError = "parse_error"
	// CodeInvalidParam: a malformed parameter, cursor or body (HTTP 400).
	CodeInvalidParam = "invalid_param"
	// CodeUnauthorized: missing or unknown bearer token (HTTP 401).
	CodeUnauthorized = "unauthorized"
	// CodeForbidden: authenticated but lacking the required role (HTTP 403).
	CodeForbidden = "forbidden"
	// CodeNotFound: no such route (HTTP 404).
	CodeNotFound = "not_found"
	// CodeMethodNotAllowed: the route exists, the method is wrong; the
	// Allow header lists what works (HTTP 405).
	CodeMethodNotAllowed = "method_not_allowed"
	// CodePayloadTooLarge: the ingest body exceeded the server cap (HTTP 413).
	CodePayloadTooLarge = "payload_too_large"
	// CodeRateLimited: the client's token bucket is empty; Retry-After
	// says when it refills (HTTP 429).
	CodeRateLimited = "rate_limited"
	// CodeEvalError: the query compiled but planning or execution failed
	// (HTTP 422).
	CodeEvalError = "eval_error"
	// CodeTimeout: the query's deadline expired mid-execution (HTTP 504).
	CodeTimeout = "timeout"
)

// errorBody is the JSON error envelope: {"error": {"code", "message",
// "details"}}. Details is optional free-form context (e.g. the Allow
// list on a 405).
type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Details any    `json:"details,omitempty"`
}

// writeError answers one failure with the JSON envelope. It must be the
// only error writer on every handler path — http.Error would leak a
// text/plain body past the API contract.
func writeError(w http.ResponseWriter, status int, code, message string, details any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Error: errorDetail{Code: code, Message: message, Details: details}})
}
