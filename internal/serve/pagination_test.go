package serve

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/fixtures"
)

// pageLines returns the non-comment lines of a text-format query body.
func pageLines(body string) []string {
	var out []string
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if line != "" && !strings.HasPrefix(line, "#") {
			out = append(out, line)
		}
	}
	return out
}

// TestPaginationWalk pages through a full result with limit+cursor and
// must reassemble exactly the unpaginated body, in order, with the
// cursor header disappearing on the last page.
func TestPaginationWalk(t *testing.T) {
	_, ts := testServer(t)
	resp, full := get(t, ts.URL+"/v1/query?q=E")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	want := pageLines(full)

	var got []string
	cursor := ""
	for page := 0; ; page++ {
		if page > len(want) {
			t.Fatal("pagination did not terminate")
		}
		u := ts.URL + "/v1/query?q=E&limit=3"
		if cursor != "" {
			u += "&cursor=" + url.QueryEscape(cursor)
		}
		resp, body := get(t, u)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("page %d: status %d: %s", page, resp.StatusCode, body)
		}
		if resp.Header.Get("X-Trial-Result-Size") != "7" {
			t.Errorf("page %d: result-size header = %q, want the full 7", page,
				resp.Header.Get("X-Trial-Result-Size"))
		}
		lines := pageLines(body)
		if len(lines) > 3 {
			t.Fatalf("page %d: %d triples, limit is 3", page, len(lines))
		}
		got = append(got, lines...)
		cursor = resp.Header.Get("X-Trial-Next-Cursor")
		if cursor == "" {
			break
		}
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("paged walk reassembled:\n%s\nwant:\n%s", strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}

// TestPaginationCursorErrors: garbage, tampered and cross-query cursors
// answer 400 invalid_param.
func TestPaginationCursorErrors(t *testing.T) {
	_, ts := testServer(t)
	resp, _ := get(t, ts.URL+"/v1/query?q=E&limit=2")
	otherQuery := resp.Header.Get("X-Trial-Next-Cursor")
	if otherQuery == "" {
		t.Fatal("no cursor to misuse")
	}
	for name, c := range map[string]string{
		"garbage":     "not-base64!!",
		"wrong query": otherQuery, // issued for q=E, replayed below against another query
	} {
		resp, body := get(t, ts.URL+"/v1/query?limit=2&cursor="+url.QueryEscape(c)+
			"&q="+url.QueryEscape("join[1,3',3; 2=1'](E, E)"))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s cursor: status %d, want 400", name, resp.StatusCode)
			continue
		}
		if got := envelope(t, body).Code; got != CodeInvalidParam {
			t.Errorf("%s cursor: code %q, want %q", name, got, CodeInvalidParam)
		}
	}
}

// TestPaginationSurvivesVersionChange: a cursor issued before an ingest
// batch keeps working after the store version advances — the page is
// recomputed against the current version's sorted order (best-effort
// scan, documented in docs/API.md) rather than erroring.
func TestPaginationSurvivesVersionChange(t *testing.T) {
	srv, ts := testServer(t)
	resp, _ := get(t, ts.URL+"/v1/query?q=E&limit=2")
	cursor := resp.Header.Get("X-Trial-Next-Cursor")
	if cursor == "" {
		t.Fatal("no cursor issued")
	}
	v0 := srv.store.Version()

	// Advance the store version mid-pagination.
	post, err := http.Post(ts.URL+"/v1/triples", "application/x-ndjson",
		strings.NewReader(`{"s":"zzz-page","p":"zzz","o":"zzz-t"}`))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d", post.StatusCode)
	}
	if srv.store.Version() == v0 {
		t.Fatal("ingest did not advance the store version")
	}

	var got []string
	for cursor != "" {
		resp, body := get(t, ts.URL+"/v1/query?q=E&limit=2&cursor="+url.QueryEscape(cursor))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stale-version cursor: status %d: %s", resp.StatusCode, body)
		}
		got = append(got, pageLines(body)...)
		cursor = resp.Header.Get("X-Trial-Next-Cursor")
	}
	// 8 triples total now; offset 2 already consumed → 6 remaining, and
	// the new triple sorts last so it must appear.
	if len(got) != 6 {
		t.Errorf("resumed walk returned %d triples, want 6", len(got))
	}
	if !strings.Contains(strings.Join(got, "\n"), "zzz-page") {
		t.Errorf("resumed walk missed the newly ingested triple:\n%s", strings.Join(got, "\n"))
	}
}

// TestMaxResultsCap: the server cap bounds a page even with no client
// limit, and hands out a cursor to continue.
func TestMaxResultsCap(t *testing.T) {
	srv := New(fixtures.Transport(), WithWorkers(2), WithRelation(fixtures.RelE), WithMaxResults(4))
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, body := get(t, ts.URL+"/v1/query?q=E")
	if n := len(pageLines(body)); n != 4 {
		t.Errorf("uncapped request returned %d triples, want the cap 4", n)
	}
	if resp.Header.Get("X-Trial-Next-Cursor") == "" {
		t.Error("capped page without a continuation cursor")
	}
	if resp.Header.Get("X-Trial-Result-Size") != "7" {
		t.Errorf("result-size header = %q, want 7", resp.Header.Get("X-Trial-Result-Size"))
	}
	// A limit above the cap is clamped too.
	_, body = get(t, ts.URL+"/v1/query?q=E&limit=100")
	if n := len(pageLines(body)); n != 4 {
		t.Errorf("limit=100 returned %d triples, want the cap 4", n)
	}
}
