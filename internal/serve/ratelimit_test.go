package serve

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/fixtures"
)

// TestRateLimiterBucket drives the token bucket with a fake clock:
// burst requests pass, the next is denied with a sensible wait, and
// refill restores capacity at qps.
func TestRateLimiterBucket(t *testing.T) {
	l := newRateLimiter(2, 3) // 2 tokens/s, burst 3
	now := time.Unix(0, 0)
	l.now = func() time.Time { return now }
	for i := 0; i < 3; i++ {
		if ok, _ := l.allow("k"); !ok {
			t.Fatalf("request %d within burst denied", i)
		}
	}
	ok, wait := l.allow("k")
	if ok {
		t.Fatal("request past burst allowed")
	}
	if wait <= 0 || wait > time.Second {
		t.Errorf("wait = %v, want (0, 500ms] at 2 qps", wait)
	}
	now = now.Add(time.Second) // refills 2 tokens
	for i := 0; i < 2; i++ {
		if ok, _ := l.allow("k"); !ok {
			t.Fatalf("post-refill request %d denied", i)
		}
	}
	if ok, _ := l.allow("k"); ok {
		t.Error("third post-refill request allowed (only 2 tokens refilled)")
	}
	// Other keys have their own buckets.
	if ok, _ := l.allow("other"); !ok {
		t.Error("fresh key denied")
	}
}

// TestRateLimit429 pins the HTTP surface: past the burst the server
// answers 429 with a Retry-After header and the rate_limited envelope,
// and the rejection lands on the rejected counter. /v1/healthz and
// /v1/metrics stay exempt so probes and scrapes never starve.
func TestRateLimit429(t *testing.T) {
	srv := New(fixtures.Transport(), WithWorkers(2), WithRelation(fixtures.RelE),
		WithRateLimit(0.001, 2)) // negligible refill: 2 requests, then dry
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for i := 0; i < 2; i++ {
		resp, body := get(t, ts.URL+"/v1/query?q=E")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	resp, body := get(t, ts.URL+"/v1/query?q=E")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%s)", resp.StatusCode, body)
	}
	if got := envelope(t, body).Code; got != CodeRateLimited {
		t.Errorf("envelope code %q, want %q", got, CodeRateLimited)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}

	// Exempt routes keep answering after the bucket is dry.
	for _, path := range []string{"/v1/healthz", "/v1/metrics"} {
		if resp, _ := get(t, ts.URL+path); resp.StatusCode != http.StatusOK {
			t.Errorf("exempt %s: status %d, want 200", path, resp.StatusCode)
		}
	}
	_, metrics := get(t, ts.URL+"/v1/metrics")
	if !strings.Contains(metrics, `trial_http_requests_rejected_total{reason="rate_limited"} 1`) {
		t.Error("exposition missing the rate_limited rejection")
	}
}

// TestRateLimitIgnoresUnvalidatedTokens: with rate limiting on but auth
// off, a client rotating made-up Authorization headers must NOT mint a
// fresh bucket per request — every unvalidated token falls back to the
// host bucket, so the third request past a burst of 2 is throttled.
func TestRateLimitIgnoresUnvalidatedTokens(t *testing.T) {
	srv := New(fixtures.Transport(), WithWorkers(2), WithRelation(fixtures.RelE),
		WithRateLimit(0.001, 2))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for i := 0; i < 2; i++ {
		resp, body := authedReq(t, http.MethodGet, ts.URL+"/v1/query?q=E", "made-up-"+strconv.Itoa(i), "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	resp, body := authedReq(t, http.MethodGet, ts.URL+"/v1/query?q=E", "made-up-2", "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("rotated-token request: status %d, want 429 (%s)", resp.StatusCode, body)
	}
	if got := envelope(t, body).Code; got != CodeRateLimited {
		t.Errorf("envelope code %q, want %q", got, CodeRateLimited)
	}
}

// TestAuthFailuresRateLimited pins the middleware order: the limiter
// sits outside auth, so bearer-token brute-forcing drains the host
// bucket and turns into 429s past the burst instead of unthrottled
// 401s — while a valid client keeps its own per-token bucket.
func TestAuthFailuresRateLimited(t *testing.T) {
	srv := New(fixtures.Transport(), WithWorkers(2), WithRelation(fixtures.RelE),
		WithAuthTokens(map[string]Role{"alpha": RoleRead}),
		WithRateLimit(0.001, 2))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for i := 0; i < 2; i++ {
		resp, _ := authedReq(t, http.MethodGet, ts.URL+"/v1/query?q=E", "guess-"+strconv.Itoa(i), "")
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("guess %d: status %d, want 401", i, resp.StatusCode)
		}
	}
	resp, body := authedReq(t, http.MethodGet, ts.URL+"/v1/query?q=E", "guess-2", "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("guess past burst: status %d, want 429 (%s)", resp.StatusCode, body)
	}
	if got := envelope(t, body).Code; got != CodeRateLimited {
		t.Errorf("envelope code %q, want %q", got, CodeRateLimited)
	}
	// The legitimate client is unaffected: its bucket is keyed by its
	// validated token, not the (now dry) host bucket.
	if resp, body := authedReq(t, http.MethodGet, ts.URL+"/v1/query?q=E", "alpha", ""); resp.StatusCode != http.StatusOK {
		t.Errorf("valid client throttled by brute-force traffic: status %d (%s)", resp.StatusCode, body)
	}
}

// TestRateLimitPerToken: authenticated clients draw from per-token
// buckets, so one client hitting its limit does not throttle another.
func TestRateLimitPerToken(t *testing.T) {
	srv := New(fixtures.Transport(), WithWorkers(2), WithRelation(fixtures.RelE),
		WithAuthTokens(map[string]Role{"a": RoleRead, "b": RoleRead}),
		WithRateLimit(0.001, 1))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if resp, _ := authedReq(t, http.MethodGet, ts.URL+"/v1/query?q=E", "a", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("first a request: %d", resp.StatusCode)
	}
	if resp, _ := authedReq(t, http.MethodGet, ts.URL+"/v1/query?q=E", "a", ""); resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("second a request: %d, want 429", resp.StatusCode)
	}
	if resp, _ := authedReq(t, http.MethodGet, ts.URL+"/v1/query?q=E", "b", ""); resp.StatusCode != http.StatusOK {
		t.Errorf("b request throttled by a's bucket: %d", resp.StatusCode)
	}
}
