package serve

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"hash/fnv"
)

// cursor is the decoded pagination token for /v1/query: the offset into
// the result's canonical (lexicographically sorted) triple order, the
// store version the page was cut at, and a hash binding the cursor to
// the (lang, source, relation) it was issued for. Cursors are opaque to
// clients — base64url-encoded JSON — and deliberately survive store
// version changes: the result set is recomputed at the current version
// and the offset re-applied to the new sorted order, so a paginating
// client racing ingest sees a consistent-per-page, best-effort-overall
// scan instead of an error. The version field is diagnostic (echoed in
// error details), not a validity check.
type cursor struct {
	Offset  int    `json:"o"`
	Version uint64 `json:"v"`
	Hash    uint64 `json:"h"`
}

// queryHash binds a cursor to its query: FNV-64a over language, source
// and relation. Collisions only risk serving a weird offset, never
// corrupting data, so a 64-bit non-cryptographic hash is enough.
func queryHash(lang, source, rel string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(lang))
	h.Write([]byte{0})
	h.Write([]byte(source))
	h.Write([]byte{0})
	h.Write([]byte(rel))
	return h.Sum64()
}

func encodeCursor(c cursor) string {
	b, _ := json.Marshal(c)
	return base64.RawURLEncoding.EncodeToString(b)
}

func decodeCursor(s string, wantHash uint64) (cursor, error) {
	b, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return cursor{}, fmt.Errorf("undecodable cursor")
	}
	var c cursor
	if err := json.Unmarshal(b, &c); err != nil {
		return cursor{}, fmt.Errorf("undecodable cursor")
	}
	if c.Offset < 0 {
		return cursor{}, fmt.Errorf("negative cursor offset")
	}
	if c.Hash != wantHash {
		return cursor{}, fmt.Errorf("cursor was issued for a different query")
	}
	return c, nil
}
