package serve

import (
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// rateLimiter is a per-client token-bucket limiter: each key gets a
// bucket of capacity burst refilled at qps tokens per second, and one
// request costs one token. Keys are bearer tokens when the request
// authenticated, the remote address host otherwise, so a noisy client
// throttles itself without starving the rest.
type rateLimiter struct {
	qps   float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
	now     func() time.Time // injectable clock for tests
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxBuckets bounds the per-key map: past it, fully-refilled (idle)
// buckets are dropped — they are indistinguishable from fresh ones, so
// eviction never grants extra tokens.
const maxBuckets = 16384

func newRateLimiter(qps float64, burst int) *rateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{
		qps:     qps,
		burst:   float64(burst),
		buckets: make(map[string]*bucket),
		now:     time.Now,
	}
}

// allow reports whether key may proceed, and if not, how long until its
// bucket holds a full token again.
func (l *rateLimiter) allow(key string) (bool, time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, ok := l.buckets[key]
	if !ok {
		if len(l.buckets) >= maxBuckets {
			l.evictIdleLocked(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	}
	b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.qps)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.qps * float64(time.Second))
	return false, wait
}

// evictIdleLocked drops buckets that have refilled to capacity.
func (l *rateLimiter) evictIdleLocked(now time.Time) {
	for k, b := range l.buckets {
		if math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.qps) >= l.burst {
			delete(l.buckets, k)
		}
	}
}

// clientKey identifies the bucket a request draws from: the bearer
// token when it is one the server actually knows, else the remote
// host. Unvalidated tokens must not pick the key — otherwise a client
// could mint a fresh full bucket per request by randomizing its
// Authorization header, bypassing the per-host limit entirely (and
// churning the bucket map toward maxBuckets).
func (s *Server) clientKey(r *http.Request) string {
	if tok := bearerToken(r); tok != "" {
		if _, ok := s.lookupToken(tok); ok {
			return "tok:" + tok
		}
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	return "addr:" + host
}

// rateLimit gates h on the server's limiter, answering 429 with a
// Retry-After header (whole seconds, rounded up) and the rate_limited
// envelope when the client's bucket is empty. A server without
// WithRateLimit passes through untouched.
func (s *Server) rateLimit(h http.HandlerFunc) http.HandlerFunc {
	if s.limiter == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		ok, wait := s.limiter.allow(s.clientKey(r))
		if !ok {
			s.m.httpRejected.With("rate_limited").Inc()
			secs := int(math.Ceil(wait.Seconds()))
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeError(w, http.StatusTooManyRequests, CodeRateLimited,
				"rate limit exceeded", map[string]any{"retry_after_s": secs})
			return
		}
		h(w, r)
	}
}
