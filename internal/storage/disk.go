package storage

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/triplestore"
)

// ErrClosed is returned by operations on a closed engine.
var ErrClosed = errors.New("storage: engine is closed")

// diskOptions tune the Disk engine.
type diskOptions struct {
	syncPolicy SyncPolicy
	flushBytes int64
	compactAt  int
	readBudget int64
}

// Option configures Open and CreateFrom.
type Option func(*diskOptions)

// WithSyncPolicy sets the WAL fsync policy (default SyncAlways).
func WithSyncPolicy(p SyncPolicy) Option {
	return func(o *diskOptions) { o.syncPolicy = p }
}

// WithFlushBytes sets the WAL size that triggers a segment flush
// (default 8 MiB). Smaller values mean more, smaller segments.
func WithFlushBytes(n int64) Option {
	return func(o *diskOptions) {
		if n > 0 {
			o.flushBytes = n
		}
	}
}

// WithCompactAt sets the segment count that triggers background
// compaction into a single checkpoint segment (default 4; 0 disables).
func WithCompactAt(n int) Option {
	return func(o *diskOptions) { o.compactAt = n }
}

// WithReadBudget bounds how many bytes of relation data Open may
// materialize on the heap; the rest is served directly from mapped
// segment files through the block-indexed segment-read path.
//
//	n < 0  unlimited (default): every relation is materialized at open
//	       with warm access paths — the legacy eager fast path.
//	n = 0  fully cold: reads never materialize; only mutation does.
//	n > 0  relations are promoted to memory on repeated access while
//	       their estimated resident bytes fit the budget.
//
// See ResidencyStats for observing the outcome.
func WithReadBudget(n int64) Option {
	return func(o *diskOptions) { o.readBudget = n }
}

func buildOptions(opts []Option) diskOptions {
	o := diskOptions{syncPolicy: SyncAlways, flushBytes: 8 << 20, compactAt: 4, readBudget: -1}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// Disk is the durable storage engine: an in-memory triplestore.Store (the
// memtable — every read goes to it, so read semantics are identical to
// Mem) fronted by a WAL and backed by immutable sorted segments. See the
// package documentation and docs/STORAGE.md for the protocol.
type Disk struct {
	dir  string
	opts diskOptions

	mu     sync.Mutex // serializes mutations, flushes and manifest swaps
	store  *triplestore.Store
	wal    *wal
	man    *manifest
	closed bool

	// Overlay since the last flush: exactly what the next segment must
	// contain. Maintained by the ApplyBatchFunc effect callback.
	ovAdds         map[string]map[triplestore.Triple]struct{}
	ovDels         map[string]map[triplestore.Triple]struct{}
	dirtyVals      map[triplestore.ID]struct{}
	durableDictLen int

	// Snapshot pinning: per-generation refcounts and segment file sets.
	// A generation's files are deleted only when it is neither current
	// nor pinned.
	pinRefs  map[uint64]int
	genFiles map[uint64][]string

	compacting bool
	wg         sync.WaitGroup

	// Segment-read path state (lazy opens only, readBudget >= 0): the
	// open-time segments whose mapped bytes back cold relations, and
	// the residency tracker shared by their sources. The mappings stay
	// valid until Close even if compaction deletes the files (POSIX
	// unlink semantics; see mapFile).
	openSegs []*segment
	tracker  *residency

	flushes     uint64
	compactions uint64
	recoveryMs  float64
	walReplayed uint64
}

var _ Engine = (*Disk)(nil)

func segFileName(seq uint64) string { return fmt.Sprintf("seg-%08d.seg", seq) }
func walFileName(gen uint64) string { return fmt.Sprintf("wal-%08d.log", gen) }

// Open opens (or initializes) the data directory and recovers its state:
// segments load oldest-to-newest, then the WAL tail replays through the
// ordinary batch path, so the recovered store is exactly the one the
// crashed process had at its last committed batch boundary — same
// dictionary IDs, same relations, same values.
func Open(dir string, opts ...Option) (*Disk, error) {
	start := time.Now()
	o := buildOptions(opts)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create data dir: %w", err)
	}
	man, ok, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	if !ok {
		man = &manifest{Format: 1, Gen: 1, WALFile: walFileName(1), NextSeg: 1}
		if err := writeManifest(dir, man); err != nil {
			return nil, err
		}
	}

	e := &Disk{
		dir:       dir,
		opts:      o,
		man:       man,
		ovAdds:    make(map[string]map[triplestore.Triple]struct{}),
		ovDels:    make(map[string]map[triplestore.Triple]struct{}),
		dirtyVals: make(map[triplestore.ID]struct{}),
		pinRefs:   make(map[uint64]int),
		genFiles:  make(map[uint64][]string),
	}

	store, openSegs, tracker, err := loadSegments(dir, man, o.readBudget)
	if err != nil {
		return nil, err
	}
	e.store = store
	e.openSegs = openSegs
	e.tracker = tracker
	e.durableDictLen = man.DictLen

	walPath := filepath.Join(dir, man.WALFile)
	validSize, lastSeq, _, err := replayWAL(walPath, func(seq uint64, payload []byte) error {
		if seq <= man.WALSeqFloor {
			return nil // already folded into a segment
		}
		ent, derr := decodeWALEntry(payload)
		if derr != nil {
			return derr
		}
		switch ent.kind {
		case walKindBatch:
			if _, aerr := store.ApplyBatchFunc(ent.ops, e.overlayEffect); aerr != nil {
				return aerr
			}
		case walKindValue:
			id := store.SetValue(ent.name, ent.val)
			e.dirtyVals[id] = struct{}{}
		}
		e.walReplayed++
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("storage: WAL replay: %w", err)
	}
	if lastSeq < man.WALSeqFloor {
		lastSeq = man.WALSeqFloor
	}
	e.wal, err = openWALForAppend(walPath, o.syncPolicy, validSize, lastSeq)
	if err != nil {
		return nil, err
	}
	e.genFiles[man.Gen] = man.segmentFiles()
	e.removeOrphans()
	e.recoveryMs = float64(time.Since(start).Microseconds()) / 1000
	return e, nil
}

// loadSegments assembles the store covered by the manifest's segments.
//
// With a negative budget (the default) everything materializes eagerly:
// a single tombstone-free checkpoint installs its pre-sorted runs as
// ready-made access paths (the cold-start fast path); a segment stack
// replays adds and tombstones oldest-to-newest into plain sets.
//
// With a non-negative budget the runs are NOT decoded: each relation is
// installed source-backed over the mapped segment stack (see
// segreader.go), and the returned segments and tracker are retained on
// the engine for unmapping at Close and for residency stats.
func loadSegments(dir string, man *manifest, budget int64) (*triplestore.Store, []*segment, *residency, error) {
	if budget >= 0 {
		return loadSegmentsLazy(dir, man, budget)
	}
	store, err := loadSegmentsEager(dir, man)
	return store, nil, nil, err
}

func loadSegmentsEager(dir string, man *manifest) (*triplestore.Store, error) {
	bl := triplestore.NewBulkLoader()
	segs := make([]*segment, 0, len(man.Segments))
	for _, ms := range man.Segments {
		seg, err := readSegment(filepath.Join(dir, ms.File))
		if err != nil {
			return nil, err
		}
		if seg.seq != ms.Seq {
			return nil, fmt.Errorf("storage: %s: segment seq %d, manifest says %d", ms.File, seg.seq, ms.Seq)
		}
		segs = append(segs, seg)
	}
	fastPath := len(segs) == 1 && segs[0].dictBase == 0
	if fastPath {
		for _, rel := range segs[0].rels {
			if len(rel.dels) > 0 {
				fastPath = false
				break
			}
		}
	}
	switch {
	case len(segs) == 0:
		// Fresh or WAL-only directory: an empty store.
	case fastPath:
		seg := segs[0]
		if err := bl.AddNames(seg.names); err != nil {
			return nil, err
		}
		for _, v := range seg.values {
			if v.val == nil {
				continue
			}
			if err := bl.SetValueID(v.id, v.val); err != nil {
				return nil, err
			}
		}
		for _, rel := range seg.rels {
			if err := bl.SetRelationRuns(rel.name,
				rel.runs[triplestore.SPO], rel.runs[triplestore.POS], rel.runs[triplestore.OSP]); err != nil {
				return nil, err
			}
		}
	default:
		relSets := make(map[string]map[triplestore.Triple]struct{})
		var relOrder []string
		type valState struct{ val triplestore.Value }
		vals := make(map[triplestore.ID]valState)
		for _, seg := range segs {
			if seg.dictBase != bl.NumNames() {
				return nil, fmt.Errorf("storage: %s: dict base %d, expected %d", seg.file, seg.dictBase, bl.NumNames())
			}
			if err := bl.AddNames(seg.names); err != nil {
				return nil, err
			}
			for _, v := range seg.values {
				vals[v.id] = valState{val: v.val} // newest segment wins
			}
			for _, rel := range seg.rels {
				set, okRel := relSets[rel.name]
				if !okRel {
					set = make(map[triplestore.Triple]struct{}, len(rel.runs[triplestore.SPO]))
					relSets[rel.name] = set
					relOrder = append(relOrder, rel.name)
				}
				for _, t := range rel.runs[triplestore.SPO] {
					set[t] = struct{}{}
				}
				for _, t := range rel.dels {
					delete(set, t)
				}
			}
		}
		ids := make([]triplestore.ID, 0, len(vals))
		for id := range vals {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			if v := vals[id].val; v != nil {
				if err := bl.SetValueID(id, v); err != nil {
					return nil, err
				}
			}
		}
		for _, name := range relOrder {
			if err := bl.SetRelationSet(name, relSets[name]); err != nil {
				return nil, err
			}
		}
	}
	if bl.NumNames() != man.DictLen {
		return nil, fmt.Errorf("storage: segments cover %d names, manifest says %d", bl.NumNames(), man.DictLen)
	}
	return bl.Store(), nil
}

// loadSegmentsLazy assembles a store whose relations are served from
// the mapped segment files instead of the heap. The dictionary and
// value sections still load eagerly (interning needs them resolvable),
// but no triple run is decoded here: each relation gets a segSource
// over its per-segment layers, with later layers' tombstones folded
// into earlier layers' filters.
func loadSegmentsLazy(dir string, man *manifest, budget int64) (*triplestore.Store, []*segment, *residency, error) {
	bl := triplestore.NewBulkLoader()
	segs := make([]*segment, 0, len(man.Segments))
	fail := func(err error) (*triplestore.Store, []*segment, *residency, error) {
		for _, s := range segs {
			if s.unmap != nil {
				s.unmap()
			}
		}
		return nil, nil, nil, err
	}
	type valState struct{ val triplestore.Value }
	vals := make(map[triplestore.ID]valState)
	relLayers := make(map[string][]segLayer)
	relDels := make(map[string][][]triplestore.Triple)
	var relOrder []string
	for _, ms := range man.Segments {
		seg, err := readSegmentLazy(filepath.Join(dir, ms.File))
		if err != nil {
			return fail(err)
		}
		segs = append(segs, seg)
		if seg.seq != ms.Seq {
			return fail(fmt.Errorf("storage: %s: segment seq %d, manifest says %d", ms.File, seg.seq, ms.Seq))
		}
		if seg.dictBase != bl.NumNames() {
			return fail(fmt.Errorf("storage: %s: dict base %d, expected %d", seg.file, seg.dictBase, bl.NumNames()))
		}
		if err := bl.AddNames(seg.names); err != nil {
			return fail(err)
		}
		for _, v := range seg.values {
			vals[v.id] = valState{val: v.val} // newest segment wins
		}
		for ri := range seg.rels {
			rel := &seg.rels[ri]
			if _, ok := relLayers[rel.name]; !ok {
				relOrder = append(relOrder, rel.name)
			}
			relLayers[rel.name] = append(relLayers[rel.name], segLayer{raws: &seg.rawRuns[ri]})
			relDels[rel.name] = append(relDels[rel.name], rel.dels)
		}
	}
	ids := make([]triplestore.ID, 0, len(vals))
	for id := range vals {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if v := vals[id].val; v != nil {
			if err := bl.SetValueID(id, v); err != nil {
				return fail(err)
			}
		}
	}
	tracker := newResidency(budget)
	for _, name := range relOrder {
		layers := relLayers[name]
		dels := relDels[name]
		// Fold each layer's tombstones into every EARLIER layer's filter:
		// walking newest to oldest, cum is the union of dels strictly
		// after the current layer. The maps are shared read-only.
		var cum map[triplestore.Triple]struct{}
		for i := len(layers) - 1; i >= 0; i-- {
			layers[i].delsAfter = cum
			if len(dels[i]) > 0 {
				next := make(map[triplestore.Triple]struct{}, len(cum)+len(dels[i]))
				for t := range cum {
					next[t] = struct{}{}
				}
				for _, t := range dels[i] {
					next[t] = struct{}{}
				}
				cum = next
			}
		}
		src := newSegSource(name, layers)
		src.res = &relResidency{tr: tracker, estBytes: int64(src.count) * bytesPerResidentTriple}
		tracker.coldRels++
		if err := bl.SetRelationSource(name, src); err != nil {
			return fail(err)
		}
	}
	if bl.NumNames() != man.DictLen {
		return fail(fmt.Errorf("storage: segments cover %d names, manifest says %d", bl.NumNames(), man.DictLen))
	}
	return bl.Store(), segs, tracker, nil
}

// CreateFrom initializes dir (which must not already hold a store) with
// a single checkpoint segment capturing src exactly — same dictionary
// order, same IDs — and opens an engine over it. src is not retained.
// It is the bulk-import path: the proptest disk route and the bench
// harness use it to turn an in-memory store into a data directory.
func CreateFrom(dir string, src *triplestore.Store, opts ...Option) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create data dir: %w", err)
	}
	if _, ok, err := readManifest(dir); err != nil {
		return nil, err
	} else if ok {
		return nil, fmt.Errorf("storage: %s already holds a store", dir)
	}
	snap := src.Snapshot()
	sd := checkpointData(snap, 1, 0)
	file := segFileName(1)
	bytes, err := writeSegment(filepath.Join(dir, file), sd)
	if err != nil {
		return nil, err
	}
	man := &manifest{
		Format:  1,
		Gen:     1,
		DictLen: snap.NumObjects(),
		WALFile: walFileName(1),
		NextSeg: 2,
		Segments: []manifestSeg{{
			File: file, Seq: 1, Bytes: bytes, Triples: sd.triples(),
		}},
	}
	if err := writeManifest(dir, man); err != nil {
		return nil, err
	}
	return Open(dir, opts...)
}

// checkpointData captures a full snapshot as one segment: the whole
// dictionary, every non-nil value, and every relation's three index runs
// (pre-sorted by the snapshot's own access paths), with no tombstones.
func checkpointData(snap *triplestore.Store, seq, walSeq uint64) *segmentData {
	sd := &segmentData{seq: seq, walSeq: walSeq}
	n := snap.NumObjects()
	sd.names = make([]string, n)
	for i := 0; i < n; i++ {
		sd.names[i] = snap.Name(triplestore.ID(i))
	}
	for i := 0; i < n; i++ {
		if v := snap.Value(triplestore.ID(i)); v != nil {
			sd.values = append(sd.values, segValue{id: triplestore.ID(i), val: v})
		}
	}
	for _, name := range snap.RelationNames() {
		r := snap.Relation(name)
		sd.rels = append(sd.rels, segRelation{
			name: name,
			runs: [3][]triplestore.Triple{
				triplestore.SPO: r.Index(triplestore.SPO).Triples(),
				triplestore.POS: r.Index(triplestore.POS).Triples(),
				triplestore.OSP: r.Index(triplestore.OSP).Triples(),
			},
		})
	}
	return sd
}

// removeOrphans deletes files a crashed flush or compaction left behind:
// anything matching the segment/WAL/manifest-temp naming scheme that the
// live manifest does not reference.
func (e *Disk) removeOrphans() {
	entries, err := os.ReadDir(e.dir)
	if err != nil {
		return
	}
	keep := map[string]bool{manifestName: true, e.man.WALFile: true}
	for _, f := range e.man.segmentFiles() {
		keep[f] = true
	}
	for _, ent := range entries {
		name := ent.Name()
		if keep[name] {
			continue
		}
		if strings.HasPrefix(name, "seg-") || strings.HasPrefix(name, "wal-") ||
			strings.HasPrefix(name, manifestName+".tmp") {
			os.Remove(filepath.Join(e.dir, name))
		}
	}
}

// overlayEffect is the ApplyBatchFunc callback maintaining the flush
// overlay. It runs under the store's write lock (and the engine's own
// mutation lock), so the maps need no further synchronization.
func (e *Disk) overlayEffect(op triplestore.Op, t triplestore.Triple) {
	if op.Delete {
		if m := e.ovAdds[op.Rel]; m != nil {
			if _, ok := m[t]; ok {
				// Added since the last flush and never durable: the add
				// and the delete cancel; no tombstone needed.
				delete(m, t)
				return
			}
		}
		m := e.ovDels[op.Rel]
		if m == nil {
			m = make(map[triplestore.Triple]struct{})
			e.ovDels[op.Rel] = m
		}
		m[t] = struct{}{}
		return
	}
	if m := e.ovDels[op.Rel]; m != nil {
		if _, ok := m[t]; ok {
			// Durable, deleted since the last flush, now re-added: the
			// tombstone cancels and the durable triple stands.
			delete(m, t)
			return
		}
	}
	m := e.ovAdds[op.Rel]
	if m == nil {
		m = make(map[triplestore.Triple]struct{})
		e.ovAdds[op.Rel] = m
	}
	m[t] = struct{}{}
}

// Store returns the live memtable store. Do not mutate it directly.
func (e *Disk) Store() *triplestore.Store { return e.store }

// Snapshot returns an immutable view of the current state.
func (e *Disk) Snapshot() *triplestore.Store { return e.store.Snapshot() }

// Version returns the memtable version.
func (e *Disk) Version() uint64 { return e.store.Version() }

// Pin snapshots the store and retains the backing manifest generation:
// compaction defers deleting its segment files until release, realizing
// "a snapshot pins a segment set + memtable prefix" for on-disk state.
func (e *Disk) Pin() *Pin {
	e.mu.Lock()
	defer e.mu.Unlock()
	snap := e.store.Snapshot()
	gen := e.man.Gen
	e.pinRefs[gen]++
	return &Pin{Store: snap, Generation: gen, release: func() {
		e.mu.Lock()
		defer e.mu.Unlock()
		if e.pinRefs[gen]--; e.pinRefs[gen] <= 0 {
			delete(e.pinRefs, gen)
		}
		e.collectLocked()
	}}
}

// ApplyBatch appends the batch to the WAL (fsynced per policy), then
// applies it to the memtable. A WAL error leaves the store untouched; a
// crash after the append replays the batch on open.
func (e *Disk) ApplyBatch(ops []triplestore.Op) (triplestore.BatchResult, error) {
	for i, op := range ops {
		if op.Rel == "" {
			return triplestore.BatchResult{}, fmt.Errorf("triplestore: batch op %d: empty relation name", i)
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return triplestore.BatchResult{}, ErrClosed
	}
	return e.applyBatchLocked(ops)
}

func (e *Disk) applyBatchLocked(ops []triplestore.Op) (triplestore.BatchResult, error) {
	if _, err := e.wal.append(encodeBatch(ops)); err != nil {
		return triplestore.BatchResult{}, err
	}
	res, err := e.store.ApplyBatchFunc(ops, e.overlayEffect)
	if err != nil {
		return res, err
	}
	// A flush failure is not a batch failure: the batch is durable in
	// the WAL, and the next threshold crossing (or Close) retries.
	e.maybeFlushLocked()
	return res, nil
}

// ApplyNDJSON streams the batch in bounded chunks, each chunk one
// durable atomic batch (the same chunked-atomicity contract as the
// in-memory Store.ApplyNDJSON).
func (e *Disk) ApplyNDJSON(r io.Reader, defaultRel string) (triplestore.BatchResult, error) {
	const chunkOps = 4096
	or := triplestore.NewOpReader(r, defaultRel)
	var total triplestore.BatchResult
	for {
		ops, err := or.Next(chunkOps)
		if len(ops) > 0 {
			e.mu.Lock()
			if e.closed {
				e.mu.Unlock()
				return total, ErrClosed
			}
			res, aerr := e.applyBatchLocked(ops)
			e.mu.Unlock()
			total.Added += res.Added
			total.Removed += res.Removed
			total.Version = res.Version
			if aerr != nil {
				return total, aerr
			}
		}
		if err == io.EOF {
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
}

// SetValue durably assigns ρ(name) = v.
func (e *Disk) SetValue(name string, v triplestore.Value) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	if _, err := e.wal.append(encodeValue(name, v)); err != nil {
		return err
	}
	id := e.store.SetValue(name, v)
	e.dirtyVals[id] = struct{}{}
	e.maybeFlushLocked()
	return nil
}

// Flush forces the overlay into a segment and syncs the WAL.
func (e *Disk) Flush() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	if err := e.flushLocked(); err != nil {
		return err
	}
	return e.wal.sync()
}

// maybeFlushLocked flushes when the WAL crosses the size threshold and
// triggers compaction when the segment stack is deep enough. Both are
// skipped while a compaction is writing its checkpoint (the WAL simply
// keeps growing; the flush happens on the next crossing after the swap).
func (e *Disk) maybeFlushLocked() {
	if e.compacting || e.wal.bytes < e.opts.flushBytes {
		return
	}
	if err := e.flushLocked(); err != nil {
		return
	}
	if e.opts.compactAt > 0 && len(e.man.Segments) >= e.opts.compactAt {
		e.startCompactionLocked()
	}
}

// flushLocked folds the overlay into a new segment, rotates the WAL and
// swaps the manifest. On any error the old generation stays live (the
// overlay and WAL still hold everything).
func (e *Disk) flushLocked() error {
	numObj := e.store.NumObjects()
	if len(e.ovAdds) == 0 && len(e.ovDels) == 0 && len(e.dirtyVals) == 0 && numObj == e.durableDictLen {
		return nil // nothing to fold (the WAL may hold no-op batches; replay is harmless)
	}
	sd := &segmentData{
		seq:      e.man.NextSeg,
		walSeq:   e.wal.lastSeq,
		dictBase: e.durableDictLen,
	}
	for id := e.durableDictLen; id < numObj; id++ {
		sd.names = append(sd.names, e.store.Name(triplestore.ID(id)))
	}
	ids := make([]triplestore.ID, 0, len(e.dirtyVals))
	for id := range e.dirtyVals {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		sd.values = append(sd.values, segValue{id: id, val: e.store.Value(id)})
	}
	relNames := make([]string, 0, len(e.ovAdds)+len(e.ovDels))
	seen := make(map[string]bool)
	for name := range e.ovAdds {
		if !seen[name] {
			seen[name] = true
			relNames = append(relNames, name)
		}
	}
	for name := range e.ovDels {
		if !seen[name] {
			seen[name] = true
			relNames = append(relNames, name)
		}
	}
	sort.Strings(relNames)
	for _, name := range relNames {
		rel := segRelation{name: name}
		adds := e.ovAdds[name]
		base := make([]triplestore.Triple, 0, len(adds))
		for t := range adds {
			base = append(base, t)
		}
		for perm := triplestore.Perm(0); perm < 3; perm++ {
			run := append([]triplestore.Triple(nil), base...)
			p := perm
			sort.Slice(run, func(i, j int) bool { return permKey(p, run[i]).Less(permKey(p, run[j])) })
			rel.runs[perm] = run
		}
		dels := e.ovDels[name]
		rel.dels = make([]triplestore.Triple, 0, len(dels))
		for t := range dels {
			rel.dels = append(rel.dels, t)
		}
		sort.Slice(rel.dels, func(i, j int) bool { return rel.dels[i].Less(rel.dels[j]) })
		sd.rels = append(sd.rels, rel)
	}

	segFile := segFileName(sd.seq)
	segPath := filepath.Join(e.dir, segFile)
	bytes, err := writeSegment(segPath, sd)
	if err != nil {
		return err
	}
	newWALFile := walFileName(e.man.Gen + 1)
	newWAL, err := createWAL(filepath.Join(e.dir, newWALFile), e.opts.syncPolicy, e.wal.lastSeq)
	if err != nil {
		os.Remove(segPath)
		return err
	}
	newMan := *e.man
	newMan.Gen++
	newMan.DictLen = numObj
	newMan.WALFile = newWALFile
	newMan.WALSeqFloor = sd.walSeq
	newMan.NextSeg++
	newMan.Segments = append(append([]manifestSeg(nil), e.man.Segments...), manifestSeg{
		File: segFile, Seq: sd.seq, Bytes: bytes, Triples: sd.triples(),
	})
	if err := writeManifest(e.dir, &newMan); err != nil {
		newWAL.close()
		os.Remove(segPath)
		os.Remove(filepath.Join(e.dir, newWALFile))
		return err
	}
	// The new generation is durable; retire the old WAL (its records are
	// all folded into segments now).
	oldWAL := e.wal
	oldWALFile := e.man.WALFile
	e.man = &newMan
	e.genFiles[newMan.Gen] = newMan.segmentFiles()
	e.wal = newWAL
	oldWAL.close()
	os.Remove(filepath.Join(e.dir, oldWALFile))
	e.durableDictLen = numObj
	e.ovAdds = make(map[string]map[triplestore.Triple]struct{})
	e.ovDels = make(map[string]map[triplestore.Triple]struct{})
	e.dirtyVals = make(map[triplestore.ID]struct{})
	e.flushes++
	e.collectLocked()
	return nil
}

// startCompactionLocked kicks off a background checkpoint. It runs right
// after a flush, so the overlay is empty and the snapshot equals the
// durable state exactly; batches landing during the write go to the
// (fresh) WAL and overlay as usual and survive the swap untouched.
func (e *Disk) startCompactionLocked() {
	if e.compacting || e.closed || len(e.man.Segments) <= 1 {
		return
	}
	e.compacting = true
	snap := e.store.Snapshot()
	walSeq := e.wal.lastSeq
	segSeq := e.man.NextSeg
	e.man.NextSeg++ // reserve the file number; persisted at the swap
	// Record which segments the checkpoint folds in: segments flushed
	// while the checkpoint is being written are NOT covered by it and
	// must survive the manifest swap (merge, not replace).
	base := make(map[uint64]bool, len(e.man.Segments))
	for _, s := range e.man.Segments {
		base[s.Seq] = true
	}
	e.wg.Add(1)
	go e.runCompaction(snap, walSeq, segSeq, base)
}

func (e *Disk) runCompaction(snap *triplestore.Store, walSeq, segSeq uint64, base map[uint64]bool) {
	defer e.wg.Done()
	sd := checkpointData(snap, segSeq, walSeq)
	segFile := segFileName(segSeq)
	segPath := filepath.Join(e.dir, segFile)
	bytes, err := writeSegment(segPath, sd)

	e.mu.Lock()
	defer e.mu.Unlock()
	e.compacting = false
	if err != nil {
		return // segment stack stays; a later trigger retries
	}
	if e.closed {
		os.Remove(segPath)
		return
	}
	newMan := *e.man
	newMan.Gen++
	// The checkpoint replaces exactly the segments that existed when its
	// snapshot was taken. Segments flushed since (an explicit Flush racing
	// the checkpoint write) hold newer overlay data the checkpoint does
	// not contain: they stay in the manifest, stacked after the checkpoint
	// (their seqs are higher, their dictBase chains off the checkpoint's
	// dictionary length).
	segs := []manifestSeg{{File: segFile, Seq: segSeq, Bytes: bytes, Triples: sd.triples()}}
	for _, s := range e.man.Segments {
		if !base[s.Seq] {
			segs = append(segs, s)
		}
	}
	newMan.Segments = segs
	if err := writeManifest(e.dir, &newMan); err != nil {
		os.Remove(segPath)
		return
	}
	e.man = &newMan
	e.genFiles[newMan.Gen] = newMan.segmentFiles()
	e.compactions++
	e.collectLocked()
}

// collectLocked deletes segment files belonging only to generations that
// are neither current nor pinned.
func (e *Disk) collectLocked() {
	live := make(map[string]bool)
	for gen, files := range e.genFiles {
		if gen == e.man.Gen || e.pinRefs[gen] > 0 {
			for _, f := range files {
				live[f] = true
			}
		}
	}
	for gen, files := range e.genFiles {
		if gen == e.man.Gen || e.pinRefs[gen] > 0 {
			continue
		}
		for _, f := range files {
			if !live[f] {
				os.Remove(filepath.Join(e.dir, f))
			}
		}
		delete(e.genFiles, gen)
	}
}

// Stats reports the engine's durability counters.
func (e *Disk) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := Stats{
		Backend:           "disk",
		WALBytes:          e.wal.bytes,
		WALRecords:        e.wal.records,
		Segments:          len(e.man.Segments),
		Flushes:           e.flushes,
		Compactions:       e.compactions,
		RecoveryMillis:    e.recoveryMs,
		WALReplayed:       e.walReplayed,
		PinnedGenerations: len(e.genFiles),
	}
	for _, s := range e.man.Segments {
		st.SegmentBytes += s.Bytes
	}
	if e.tracker != nil {
		st.Residency = e.tracker.stats()
	} else {
		st.Residency.Budget = e.opts.readBudget
	}
	return st
}

// Close flushes the overlay into a final segment, syncs and closes the
// WAL, and waits for any in-flight compaction. Idempotent.
func (e *Disk) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true // stops new mutations; a compacting goroutine aborts its swap
	e.mu.Unlock()
	e.wg.Wait()
	e.mu.Lock()
	defer e.mu.Unlock()
	err := e.flushLocked()
	if cerr := e.wal.close(); err == nil {
		err = cerr
	}
	e.unmapLocked()
	return err
}

// unmapLocked releases the open-time segment mappings. Only safe once
// no reader can reach a cold relation again: Close/Abandon have marked
// the engine closed and drained background work, and the engine's
// contract is that snapshots and pins do not outlive it.
func (e *Disk) unmapLocked() {
	for _, s := range e.openSegs {
		if s.unmap != nil {
			s.unmap()
			s.unmap = nil
		}
	}
	e.openSegs = nil
}

// Abandon closes the engine WITHOUT flushing the memtable: file handles
// are released but no segment is written, so the next Open recovers by
// replaying the WAL tail — exactly the crash path, minus the kill.
// Crash-recovery and differential tests use it to exercise recovery
// in-process; production code wants Close.
func (e *Disk) Abandon() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	e.wg.Wait()
	e.mu.Lock()
	defer e.mu.Unlock()
	err := e.wal.close()
	e.unmapLocked()
	return err
}
