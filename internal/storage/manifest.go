package storage

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

const manifestName = "MANIFEST"

// Exists reports whether dir already holds a storage engine (that is,
// a manifest file). Callers use it to decide between opening an
// existing store and seeding a fresh one with CreateFrom.
func Exists(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, manifestName))
	return err == nil
}

// manifest names the live file set of a data directory: the segment
// stack (oldest first), the active WAL file, and the WAL sequence floor
// already folded into segments. It is replaced atomically (write to a
// temp file, fsync, rename, fsync the directory), so a crash during any
// flush or compaction leaves either the old generation or the new one —
// never a mix. Files on disk but not in the manifest are orphans from a
// crashed flush; recovery removes them.
type manifest struct {
	Format int `json:"format"`
	// Gen increases by one per manifest swap; snapshots pin generations.
	Gen uint64 `json:"generation"`
	// DictLen is the dictionary prefix covered by the segments.
	DictLen int `json:"dict_len"`
	// WALFile is the active log; records with seq > WALSeqFloor are not
	// yet folded into a segment and replay on open.
	WALFile     string `json:"wal_file"`
	WALSeqFloor uint64 `json:"wal_seq_floor"`
	// NextSeg numbers the next segment file.
	NextSeg  uint64        `json:"next_seg"`
	Segments []manifestSeg `json:"segments"`
}

type manifestSeg struct {
	File    string `json:"file"`
	Seq     uint64 `json:"seq"`
	Bytes   int64  `json:"bytes"`
	Triples int    `json:"triples"`
}

// files returns the file names (relative to the data dir) the
// generation depends on, segment files only — WAL retention is governed
// by the manifest swap itself, not by snapshot pins.
func (m *manifest) segmentFiles() []string {
	out := make([]string, 0, len(m.Segments))
	for _, s := range m.Segments {
		out = append(out, s.File)
	}
	return out
}

// writeManifest atomically replaces dir's manifest with m.
func writeManifest(dir string, m *manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("storage: encode manifest: %w", err)
	}
	tmp, err := os.CreateTemp(dir, manifestName+".tmp*")
	if err != nil {
		return fmt.Errorf("storage: manifest temp: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("storage: write manifest: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("storage: sync manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("storage: close manifest: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(dir, manifestName)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("storage: install manifest: %w", err)
	}
	return syncDir(dir)
}

// readManifest loads dir's manifest; ok is false when none exists (a
// fresh directory).
func readManifest(dir string) (*manifest, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("storage: read manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, false, fmt.Errorf("storage: parse manifest: %w", err)
	}
	if m.Format != 1 {
		return nil, false, fmt.Errorf("storage: unsupported manifest format %d", m.Format)
	}
	return &m, true, nil
}

// syncDir fsyncs a directory so a just-renamed file survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("storage: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("storage: sync dir: %w", err)
	}
	return nil
}
