package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/triplestore"
)

// This file is the segment-read path: triplestore.RunSource implemented
// directly over the TRISEG1 run files, so a relation can answer index
// probes (Match, Leads) and scans without ever being materialized on the
// heap. A point probe binary-searches a run's sparse block index and
// delta-decodes only the one-or-few 1024-triple blocks that can contain
// the probed ID, keeping the decodes warm in a byte-capped engine-wide
// block cache (blockcache.go) so repeated probing approaches
// materialized latency; a full scan decodes the run transiently and
// lets the GC take it, unless the residency policy has promoted the
// relation.
//
// Residency policy. Open with WithReadBudget(n):
//
//   - n < 0 (default): unlimited — the engine materializes everything at
//     open through the BulkLoader fast path, exactly as before this
//     seam existed. No segSource is created.
//   - n = 0: fully cold — no relation is ever promoted by reads; only a
//     mutation (which must materialize to apply) forces residency.
//   - n > 0: relations are promoted (decoded runs cached on the
//     Relation, indexes cached per permutation) after promoteAfter
//     accesses, while the estimated resident bytes fit the budget.
//     Relations that don't fit stay cold and keep paying per-probe
//     decodes — bounded memory traded for latency.
//
// Consistency. Sources are created at Open over that instant's segment
// stack and are immutable. Post-open writes go to the WAL and memtable:
// the mutation path force-materializes the touched relation (the source
// is dropped), so a source never needs to see data newer than the open.
// Compaction may rewrite and delete segment files while sources exist —
// the mapped pages survive unlink (see mapFile) and the open-time bytes
// stay valid until Disk.Close unmaps them.

// promoteAfter is how many cold accesses (Retain(false) calls — full
// decodes or index builds, not individual point probes) a relation
// sustains before the policy considers promoting it.
const promoteAfter = 3

// bytesPerResidentTriple estimates the heap cost of promoting one
// triple: the cached sorted view (24 bytes) plus three permutation
// indexes (72 bytes), rounded for slice headers and allocator slack.
const bytesPerResidentTriple = 96

// residency is the engine-wide residency tracker: one per Disk opened
// with a non-negative read budget, shared by every relation's
// relResidency. The probe-path counters are atomic (a point probe must
// not take a lock just to be counted); everything else is guarded by
// mu. cache is the engine's shared decoded-block cache (blockcache.go).
type residency struct {
	budget int64
	cache  *blockCache

	coldProbes  atomic.Uint64
	coldDecodes atomic.Uint64

	mu            sync.Mutex
	residentBytes int64
	residentRels  int
	coldRels      int
	promotions    uint64
}

func newResidency(budget int64) *residency {
	return &residency{budget: budget, cache: newBlockCache(probeCacheBytes)}
}

// stats snapshots the tracker for Engine.Stats.
func (tr *residency) stats() ResidencyStats {
	cb, ch, cm := tr.cache.stats()
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return ResidencyStats{
		Budget:            tr.budget,
		ResidentBytes:     tr.residentBytes,
		ResidentRelations: tr.residentRels,
		ColdRelations:     tr.coldRels,
		Promotions:        tr.promotions,
		ColdProbes:        tr.coldProbes.Load(),
		ColdDecodes:       tr.coldDecodes.Load(),
		CacheBytes:        cb,
		CacheHits:         ch,
		CacheMisses:       cm,
	}
}

// relResidency is one relation's residency state under the shared
// tracker: its access count, promotion flag and estimated heap cost.
type relResidency struct {
	tr       *residency
	estBytes int64

	// accesses and resident are guarded by tr.mu.
	accesses int
	resident bool
}

// retain implements the RunSource.Retain policy decision. force (the
// mutation path) promotes unconditionally — the relation is about to be
// materialized regardless, so the tracker must account for it even past
// the budget.
func (rr *relResidency) retain(force bool) bool {
	tr := rr.tr
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if rr.resident {
		return true
	}
	if force {
		rr.promoteLocked()
		return true
	}
	rr.accesses++
	if tr.budget == 0 || rr.accesses < promoteAfter {
		return false
	}
	if tr.residentBytes+rr.estBytes > tr.budget {
		return false
	}
	rr.promoteLocked()
	return true
}

func (rr *relResidency) promoteLocked() {
	rr.resident = true
	rr.tr.residentBytes += rr.estBytes
	rr.tr.residentRels++
	rr.tr.coldRels--
	rr.tr.promotions++
}

// segLayer is one segment's contribution to a relation, oldest first in
// segSource.layers. delsAfter is the union of the tombstones every
// LATER layer holds for this relation: an add in this layer survives
// iff it is not in delsAfter. (A tombstone is only ever written for a
// triple that was durable and present at flush time, so "deleted later"
// is exactly "this copy is dead"; a subsequent re-add lives in its own
// later layer and is judged by its own delsAfter.)
type segLayer struct {
	raws      *[3]segRun
	delsAfter map[triplestore.Triple]struct{}
}

// segSource serves one relation from the open-time segment stack. It is
// immutable and safe for concurrent use: all state is fixed at
// construction except the counters behind res, which take the tracker
// lock. Decode errors panic — the segment checksum was verified at
// open, so a failing decode means memory corruption, not bad input.
type segSource struct {
	name   string
	count  int
	layers []segLayer
	res    *relResidency
}

var _ triplestore.RunSource = (*segSource)(nil)

// newSegSource builds the source and computes its exact cardinality.
// Multi-layer stacks pay one transient merge to count; the common
// single-checkpoint case is O(1).
func newSegSource(name string, layers []segLayer) *segSource {
	s := &segSource{name: name, layers: layers}
	if len(layers) == 1 && len(layers[0].delsAfter) == 0 {
		s.count = layers[0].raws[triplestore.SPO].count
	} else {
		s.count = len(s.Run(triplestore.SPO))
	}
	return s
}

// Len returns the relation's cardinality.
func (s *segSource) Len() int { return s.count }

// Run returns the full surviving content in perm key order.
func (s *segSource) Run(perm triplestore.Perm) []triplestore.Triple {
	lists := make([][]triplestore.Triple, 0, len(s.layers))
	for _, ly := range s.layers {
		ts, err := ly.raws[perm].triples()
		if err != nil {
			panic(fmt.Sprintf("storage: relation %q: checksummed segment failed to decode: %v", s.name, err))
		}
		lists = append(lists, filterDeleted(ts, ly.delsAfter))
	}
	if s.res != nil {
		s.res.tr.coldDecodes.Add(1)
	}
	return mergePermLists(perm, lists)
}

// Match returns the surviving triples whose perm-leading component
// equals id, reading only the covering blocks of each layer — from the
// engine's block cache when they are warm, decoding (and publishing)
// them when not. The single-layer tombstone-free case — every relation
// after a compaction — returns the cached span directly, with no merge
// or filter allocation on the probe path.
func (s *segSource) Match(perm triplestore.Perm, id triplestore.ID) []triplestore.Triple {
	var cache *blockCache
	if s.res != nil {
		s.res.tr.coldProbes.Add(1)
		cache = s.res.tr.cache
	}
	if len(s.layers) == 1 && len(s.layers[0].delsAfter) == 0 {
		ts, err := s.layers[0].raws[perm].matchLeadCached(id, cache)
		if err != nil {
			panic(fmt.Sprintf("storage: relation %q: checksummed segment failed to decode: %v", s.name, err))
		}
		return ts
	}
	lists := make([][]triplestore.Triple, 0, len(s.layers))
	for _, ly := range s.layers {
		ts, err := ly.raws[perm].matchLeadCached(id, cache)
		if err != nil {
			panic(fmt.Sprintf("storage: relation %q: checksummed segment failed to decode: %v", s.name, err))
		}
		lists = append(lists, filterDeleted(ts, ly.delsAfter))
	}
	return mergePermLists(perm, lists)
}

// Leads returns the distinct perm-leading values in ascending order.
// Like a full scan, it decodes transiently; the engine's Index caches
// the result per Index value, so a promoted relation pays this once.
func (s *segSource) Leads(perm triplestore.Perm) []triplestore.ID {
	ts := s.Run(perm)
	lead := perm.Lead()
	out := make([]triplestore.ID, 0, len(ts)/2+1)
	for i, t := range ts {
		if i == 0 || t[lead] != ts[i-1][lead] {
			out = append(out, t[lead])
		}
	}
	return out
}

// Retain implements the residency policy (see relResidency.retain).
func (s *segSource) Retain(force bool) bool {
	if s.res == nil {
		return true
	}
	return s.res.retain(force)
}

// filterDeleted drops triples tombstoned by later layers. The common
// no-tombstone case returns ts unchanged (no copy).
func filterDeleted(ts []triplestore.Triple, dels map[triplestore.Triple]struct{}) []triplestore.Triple {
	if len(dels) == 0 {
		return ts
	}
	out := make([]triplestore.Triple, 0, len(ts))
	for _, t := range ts {
		if _, dead := dels[t]; !dead {
			out = append(out, t)
		}
	}
	return out
}

// mergePermLists k-way merges lists already sorted in perm key order
// into one strictly sorted run, dropping duplicates across lists. Layer
// counts are small (bounded by the compaction trigger), so iterated
// two-way merging beats a heap.
func mergePermLists(perm triplestore.Perm, lists [][]triplestore.Triple) []triplestore.Triple {
	var out []triplestore.Triple
	for _, l := range lists {
		switch {
		case len(l) == 0:
		case out == nil:
			out = l
		default:
			out = mergePerm(perm, out, l)
		}
	}
	return out
}

func mergePerm(perm triplestore.Perm, a, b []triplestore.Triple) []triplestore.Triple {
	out := make([]triplestore.Triple, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		ka, kb := permKey(perm, a[i]), permKey(perm, b[j])
		switch {
		case ka.Less(kb):
			out = append(out, a[i])
			i++
		case kb.Less(ka):
			out = append(out, b[j])
			j++
		default: // duplicate across layers (re-add): keep one
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
