package storage

import (
	"fmt"
	"testing"

	"repro/internal/triplestore"
)

// Reproducer: explicit Flush during a background compaction loses the
// flushed segment when the compaction swap replaces the manifest.
func TestFlushDuringCompactionRepro(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(dir, WithSyncPolicy(SyncNone), WithFlushBytes(1), WithCompactAt(1))
	if err != nil {
		t.Fatal(err)
	}
	// Seed enough data that the compaction checkpoint write takes a while.
	// Two threshold-crossing batches -> two segments -> compaction starts
	// at the end of the second flush.
	for b := 0; b < 2; b++ {
		var ops []triplestore.Op
		for i := 0; i < 200000; i++ {
			n := b*200000 + i
			ops = append(ops, triplestore.Op{Rel: "E", S: fmt.Sprintf("s%d", n), P: fmt.Sprintf("p%d", n%500), O: fmt.Sprintf("o%d", n)})
		}
		if _, err := eng.ApplyBatch(ops); err != nil {
			t.Fatal(err)
		}
	}
	eng.mu.Lock()
	compacting := eng.compacting
	eng.mu.Unlock()
	if !compacting {
		t.Skip("compaction finished too fast; repro inconclusive")
	}
	// While the compaction checkpoint is being written, apply a marker
	// batch and explicitly Flush it into its own segment.
	if _, err := eng.ApplyBatch([]triplestore.Op{{Rel: "E", S: "MARKER", P: "is", O: "present"}}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	eng.wg.Wait() // let the compaction swap land
	if err := eng.Abandon(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, WithSyncPolicy(SyncNone))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	rel := re.Store().Relation("E")
	id := re.Store().Lookup("MARKER")
	if id == triplestore.NoID {
		t.Fatalf("MARKER name lost after reopen: flushed segment dropped by compaction swap")
	}
	found := false
	rel.ForEach(func(tr triplestore.Triple) {
		if tr[0] == id {
			found = true
		}
	})
	if !found {
		t.Fatalf("MARKER triple lost after reopen: flushed segment dropped by compaction swap")
	}
}
