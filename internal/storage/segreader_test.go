package storage

import (
	"testing"

	"repro/internal/triplestore"
)

// coldAndEagerReopen closes eng and reopens the directory twice: once
// eager (the reference) and once with the given read budget (the
// engine under test). Callers own both engines.
func coldAndEagerReopen(t *testing.T, dir string, eng *Disk, budget int64) (ref, cold *Disk) {
	t.Helper()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	ref, err := Open(dir)
	if err != nil {
		t.Fatalf("eager reopen: %v", err)
	}
	cold, err = Open(dir, WithReadBudget(budget))
	if err != nil {
		ref.Close()
		t.Fatalf("cold reopen: %v", err)
	}
	return ref, cold
}

// TestSegReaderColdEqualsEager runs the same mutation script (inserts,
// deletes, multiple flushed segments, no compaction — so the lazy open
// must merge a tombstoned multi-layer stack) and checks the fully cold
// store is indistinguishable from the eager one.
func TestSegReaderColdEqualsEager(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(dir, WithSyncPolicy(SyncNone), WithFlushBytes(1024), WithCompactAt(0))
	if err != nil {
		t.Fatal(err)
	}
	applyScript(t, eng, 21, 12, 40)
	ref, cold := coldAndEagerReopen(t, dir, eng, 0)
	defer ref.Close()
	defer cold.Close()

	sawSourceBacked := false
	for _, name := range cold.Store().RelationNames() {
		if cold.Store().Relation(name).SourceBacked() {
			sawSourceBacked = true
		}
	}
	if !sawSourceBacked {
		t.Fatal("no relation is source-backed after a budget-0 open")
	}
	st := cold.Stats()
	if st.Residency.Budget != 0 || st.Residency.ColdRelations == 0 {
		t.Fatalf("residency = %+v: want budget 0 with cold relations", st.Residency)
	}
	assertStoresEqual(t, cold.Store(), ref.Store())
	if st := cold.Stats(); st.Residency.ColdDecodes == 0 {
		t.Fatalf("residency = %+v: comparisons decoded nothing cold", st.Residency)
	}
	if st := cold.Stats(); st.Residency.Promotions != 0 {
		t.Fatalf("residency = %+v: budget 0 must never promote on reads", st.Residency)
	}
}

// TestSegReaderPointProbes compares index probes (Match, MatchCount,
// Leads) and membership (Has) between a cold and an eager open, across
// all three permutations and every live ID.
func TestSegReaderPointProbes(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(dir, WithSyncPolicy(SyncNone), WithFlushBytes(2048), WithCompactAt(0))
	if err != nil {
		t.Fatal(err)
	}
	applyScript(t, eng, 99, 8, 50)
	ref, cold := coldAndEagerReopen(t, dir, eng, 0)
	defer ref.Close()
	defer cold.Close()

	for _, name := range ref.Store().RelationNames() {
		rr, cr := ref.Store().Relation(name), cold.Store().Relation(name)
		if rr.Len() != cr.Len() {
			t.Fatalf("relation %q: cold Len %d, eager %d", name, cr.Len(), rr.Len())
		}
		for perm := triplestore.Perm(0); perm < 3; perm++ {
			rix, cix := rr.Index(perm), cr.Index(perm)
			rl, cl := rix.Leads(), cix.Leads()
			if len(rl) != len(cl) {
				t.Fatalf("relation %q %v: cold %d leads, eager %d", name, perm, len(cl), len(rl))
			}
			for i := range rl {
				if rl[i] != cl[i] {
					t.Fatalf("relation %q %v: lead %d: cold %d, eager %d", name, perm, i, cl[i], rl[i])
				}
			}
			// Probe every live lead, plus IDs guaranteed absent.
			probes := append(append([]triplestore.ID(nil), rl...),
				triplestore.ID(ref.Store().NumObjects()+7), triplestore.ID(0xFFFF))
			for _, id := range probes {
				rm, cm := rix.Match(id), cix.Match(id)
				if len(rm) != len(cm) {
					t.Fatalf("relation %q %v Match(%d): cold %d, eager %d", name, perm, id, len(cm), len(rm))
				}
				for i := range rm {
					if rm[i] != cm[i] {
						t.Fatalf("relation %q %v Match(%d)[%d]: cold %v, eager %v", name, perm, id, i, cm[i], rm[i])
					}
				}
				if rix.MatchCount(id) != cix.MatchCount(id) {
					t.Fatalf("relation %q %v MatchCount(%d) disagrees", name, perm, id)
				}
			}
		}
		rr.ForEach(func(tr triplestore.Triple) {
			if !cr.Has(tr) {
				t.Fatalf("relation %q: cold missing %v", name, tr)
			}
		})
	}
	if st := cold.Stats(); st.Residency.ColdProbes == 0 {
		t.Fatalf("residency = %+v: probes did not go through the segment path", st.Residency)
	}
	// Each lead was probed twice (Match then MatchCount): the second
	// probe of every decoded block must have come from the block cache.
	if st := cold.Stats(); st.Residency.CacheHits == 0 || st.Residency.CacheBytes == 0 {
		t.Fatalf("residency = %+v: repeated probes never hit the block cache", st.Residency)
	}
}

// TestSegReaderPromotion checks the access-count policy: with a budget
// big enough for everything, repeated scans promote a relation (its
// decoded run is cached and it stops being source-backed), and the
// tracker accounts for it.
func TestSegReaderPromotion(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(dir, WithSyncPolicy(SyncNone))
	if err != nil {
		t.Fatal(err)
	}
	applyScript(t, eng, 3, 4, 30)
	ref, cold := coldAndEagerReopen(t, dir, eng, 1<<30)
	defer ref.Close()
	defer cold.Close()

	name := cold.Store().RelationNames()[0]
	r := cold.Store().Relation(name)
	if !r.SourceBacked() {
		t.Fatalf("relation %q not source-backed at open", name)
	}
	for i := 0; i < promoteAfter; i++ {
		r.Triples()
	}
	if r.SourceBacked() {
		t.Fatalf("relation %q still source-backed after %d scans under an ample budget", name, promoteAfter)
	}
	st := cold.Stats().Residency
	if st.Promotions != 1 || st.ResidentRelations != 1 || st.ResidentBytes == 0 {
		t.Fatalf("residency = %+v: want exactly one promoted relation with accounted bytes", st)
	}
	if !r.Equal(ref.Store().Relation(name)) {
		t.Fatalf("promoted relation %q diverges from eager content", name)
	}
}

// TestSegReaderBudgetCap checks the other side of the policy: a budget
// too small for the relation never promotes it, no matter how often it
// is scanned.
func TestSegReaderBudgetCap(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(dir, WithSyncPolicy(SyncNone))
	if err != nil {
		t.Fatal(err)
	}
	applyScript(t, eng, 5, 4, 30)
	ref, cold := coldAndEagerReopen(t, dir, eng, 1) // 1 byte: nothing fits
	defer ref.Close()
	defer cold.Close()

	name := cold.Store().RelationNames()[0]
	r := cold.Store().Relation(name)
	for i := 0; i < 3*promoteAfter; i++ {
		r.Triples()
	}
	if !r.SourceBacked() {
		t.Fatalf("relation %q promoted past a 1-byte budget", name)
	}
	if st := cold.Stats().Residency; st.Promotions != 0 || st.ResidentBytes != 0 {
		t.Fatalf("residency = %+v: want no promotions under a 1-byte budget", st)
	}
}

// TestSegReaderMutationForcesResidency checks that writing to a cold
// relation materializes it (past any budget), applies correctly, and
// survives a further reopen.
func TestSegReaderMutationForcesResidency(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(dir, WithSyncPolicy(SyncNone))
	if err != nil {
		t.Fatal(err)
	}
	applyScript(t, eng, 8, 4, 30)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	cold, err := Open(dir, WithReadBudget(0), WithSyncPolicy(SyncNone))
	if err != nil {
		t.Fatal(err)
	}
	name := cold.Store().RelationNames()[0]
	if !cold.Store().Relation(name).SourceBacked() {
		t.Fatalf("relation %q not source-backed at open", name)
	}
	if _, err := cold.ApplyBatch([]triplestore.Op{{Rel: name, S: "fresh-s", P: "fresh-p", O: "fresh-o"}}); err != nil {
		t.Fatal(err)
	}
	r := cold.Store().Relation(name)
	if r.SourceBacked() {
		t.Fatalf("relation %q still source-backed after a write", name)
	}
	st := cold.Stats().Residency
	if st.Promotions != 1 || st.ResidentRelations != 1 {
		t.Fatalf("residency = %+v: want the written relation force-promoted", st)
	}
	s, p, o := cold.Store().Lookup("fresh-s"), cold.Store().Lookup("fresh-p"), cold.Store().Lookup("fresh-o")
	if !r.Has(triplestore.Triple{s, p, o}) {
		t.Fatal("written triple missing from promoted relation")
	}
	// Snapshot the expected content as text before Close: a Clone would
	// share the cold relations' mapped sources, which die with the engine.
	want := make(map[string]string)
	for _, n := range cold.Store().RelationNames() {
		want[n] = cold.Store().FormatRelation(cold.Store().Relation(n))
	}
	if err := cold.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for n, w := range want {
		rel := re.Store().Relation(n)
		if rel == nil {
			if w == "" {
				continue
			}
			t.Fatalf("relation %q missing after reopen", n)
		}
		if got := re.Store().FormatRelation(rel); got != w {
			t.Fatalf("relation %q differs after reopen:\nwant:\n%s\ngot:\n%s", n, w, got)
		}
	}
}

// TestSegReaderCloneMutationStaysCold pins the promotion boundary:
// evaluators clone base relations and mutate the clones (every reach
// fixpoint seeds this way), and that must NOT flip the store's relation
// to resident — the clone's working set belongs to the query. Only a
// store-mediated write promotes (TestSegReaderMutationForcesResidency).
func TestSegReaderCloneMutationStaysCold(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(dir, WithSyncPolicy(SyncNone))
	if err != nil {
		t.Fatal(err)
	}
	applyScript(t, eng, 17, 4, 30)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	cold, err := Open(dir, WithReadBudget(0), WithSyncPolicy(SyncNone))
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	name := cold.Store().RelationNames()[0]
	r := cold.Store().Relation(name)
	clone := r.Clone()
	clone.Add(triplestore.Triple{1, 2, 3})
	if !r.SourceBacked() {
		t.Fatalf("relation %q lost its source after a clone mutation", name)
	}
	if st := cold.Stats().Residency; st.Promotions != 0 || st.ResidentRelations != 0 {
		t.Fatalf("residency = %+v: a clone mutation promoted the store's relation", st)
	}
}

// TestSegReaderColdSurvivesWALTail checks the overlay story: a cold
// open whose directory carries a WAL tail replays it through the
// mutation path, so the touched relations materialize and the rest
// stay cold — and the combined state equals the eager open's.
func TestSegReaderColdSurvivesWALTail(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(dir, WithSyncPolicy(SyncNone), WithFlushBytes(4096), WithCompactAt(0))
	if err != nil {
		t.Fatal(err)
	}
	applyScript(t, eng, 30, 10, 40)
	// Abandon without flushing: the WAL tail holds the last batches.
	if err := eng.Abandon(); err != nil {
		t.Fatal(err)
	}
	ref, err := Open(dir, WithSyncPolicy(SyncNone))
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Store().Clone()
	if err := ref.Abandon(); err != nil { // leave the WAL tail in place for the cold open
		t.Fatal(err)
	}
	cold, err := Open(dir, WithReadBudget(0), WithSyncPolicy(SyncNone))
	if err != nil {
		t.Fatal(err)
	}
	defer cold.Close()
	if st := cold.Stats(); st.WALReplayed == 0 {
		t.Fatalf("stats = %+v: want a replayed WAL tail for this scenario", st)
	}
	assertStoresEqual(t, cold.Store(), want)
}
