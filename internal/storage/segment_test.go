package storage

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/triplestore"
)

// randomRuns builds n distinct random triples and returns them sorted in
// all three permutation key orders.
func randomRuns(rng *rand.Rand, n int, idSpace uint32) [3][]triplestore.Triple {
	set := make(map[triplestore.Triple]struct{})
	for len(set) < n {
		t := triplestore.Triple{
			triplestore.ID(rng.Uint32() % idSpace),
			triplestore.ID(rng.Uint32() % idSpace),
			triplestore.ID(rng.Uint32() % idSpace),
		}
		set[t] = struct{}{}
	}
	var runs [3][]triplestore.Triple
	for perm := triplestore.Perm(0); perm < 3; perm++ {
		run := make([]triplestore.Triple, 0, n)
		for t := range set {
			run = append(run, t)
		}
		p := perm
		sort.Slice(run, func(i, j int) bool { return permKey(p, run[i]).Less(permKey(p, run[j])) })
		runs[perm] = run
	}
	return runs
}

func TestSegmentRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	runs := randomRuns(rng, 5000, 900)
	dels := []triplestore.Triple{{1, 2, 3}, {4, 5, 6}}
	sort.Slice(dels, func(i, j int) bool { return dels[i].Less(dels[j]) })
	sd := &segmentData{
		seq:      9,
		walSeq:   123,
		dictBase: 10,
		names:    []string{"x", "y", "", "weird name\n"},
		values: []segValue{
			{id: 3, val: triplestore.Value{triplestore.F("a"), triplestore.Null()}},
			{id: 11, val: nil}, // explicit clear
		},
		rels: []segRelation{
			{name: "E", runs: runs, dels: dels},
			{name: "empty"},
		},
	}
	path := filepath.Join(t.TempDir(), "seg.seg")
	if _, err := writeSegment(path, sd); err != nil {
		t.Fatal(err)
	}
	seg, err := readSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	if seg.seq != 9 || seg.walSeq != 123 || seg.dictBase != 10 {
		t.Fatalf("header = %d/%d/%d", seg.seq, seg.walSeq, seg.dictBase)
	}
	if !reflect.DeepEqual(seg.names, sd.names) {
		t.Fatalf("names = %q", seg.names)
	}
	if len(seg.values) != 2 || seg.values[0].id != 3 || !seg.values[0].val.Equal(sd.values[0].val) ||
		seg.values[1].id != 11 || seg.values[1].val != nil {
		t.Fatalf("values = %+v", seg.values)
	}
	if len(seg.rels) != 2 || seg.rels[0].name != "E" || seg.rels[1].name != "empty" {
		t.Fatalf("rels = %+v", seg.rels)
	}
	for perm := 0; perm < 3; perm++ {
		if !reflect.DeepEqual(seg.rels[0].runs[perm], runs[perm]) {
			t.Fatalf("perm %d run did not round-trip", perm)
		}
		if len(seg.rels[1].runs[perm]) != 0 {
			t.Fatalf("empty relation decoded %d triples", len(seg.rels[1].runs[perm]))
		}
	}
	if !reflect.DeepEqual(seg.rels[0].dels, dels) {
		t.Fatalf("dels = %v", seg.rels[0].dels)
	}
}

// TestSegmentSparseIndexMatch pins the point-read path: matchLead over
// the sparse block index must agree with filtering the fully decoded run,
// for every permutation, over a run long enough to span many blocks.
func TestSegmentSparseIndexMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	runs := randomRuns(rng, 4*segBlockSize+777, 300) // clustered leads across many blocks
	sd := &segmentData{seq: 1, rels: []segRelation{{name: "E", runs: runs}}}
	path := filepath.Join(t.TempDir(), "seg.seg")
	if _, err := writeSegment(path, sd); err != nil {
		t.Fatal(err)
	}
	seg, err := readSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	for perm := triplestore.Perm(0); perm < 3; perm++ {
		run := seg.rawRuns[0][perm]
		lead := perm.Lead()
		for id := triplestore.ID(0); id < 300; id += 7 {
			got, merr := run.matchLead(id)
			if merr != nil {
				t.Fatal(merr)
			}
			var want []triplestore.Triple
			for _, tr := range seg.rels[0].runs[perm] {
				if tr[lead] == id {
					want = append(want, tr)
				}
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%v matchLead(%d): got %d, want %d triples", perm, id, len(got), len(want))
			}
		}
	}
}

func TestSegmentCorruptionDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sd := &segmentData{seq: 1, rels: []segRelation{{name: "E", runs: randomRuns(rng, 500, 100)}}}
	path := filepath.Join(t.TempDir(), "seg.seg")
	if _, err := writeSegment(path, sd); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	for _, off := range []int{0, 12, len(raw) / 2, len(raw) - 2} {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0xff
		badPath := filepath.Join(t.TempDir(), "bad.seg")
		os.WriteFile(badPath, bad, 0o644)
		if _, err := readSegment(badPath); err == nil {
			t.Fatalf("flip at %d: corruption not detected", off)
		}
	}
	// Truncations must also fail loudly.
	for _, n := range []int{0, 7, len(raw) / 3, len(raw) - 1} {
		badPath := filepath.Join(t.TempDir(), "trunc.seg")
		os.WriteFile(badPath, raw[:n], 0o644)
		if _, err := readSegment(badPath); err == nil {
			t.Fatalf("truncate to %d: corruption not detected", n)
		}
	}
}
