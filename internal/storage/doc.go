// Package storage is the storage-engine seam of the triplestore stack:
// the write path (ApplyBatch, ApplyNDJSON, SetValue) and the snapshot
// lifecycle behind a single Engine interface, with two implementations.
//
// Mem wraps the purely in-memory triplestore.Store — exactly the behavior
// every query route had before the seam existed.
//
// Disk layers durability onto the same MVCC contract without changing
// it: every batch is appended to a length-prefixed, checksummed
// write-ahead log before it mutates the in-memory store (the memtable),
// so recovery replays to the last committed batch boundary exactly as
// the atomic-version contract promises; the accumulated overlay of
// mutations is flushed into immutable sorted segment files (one
// delta-encoded run per SPO/POS/OSP permutation, with a sparse block
// index) when it crosses a size threshold; a background compactor folds
// the segment stack into a single checkpoint; and a manifest, replaced
// atomically, names the live segment set and the WAL tail. Snapshots pin
// the manifest generation — Store.Snapshot's copy-on-write semantics map
// onto "retain these files" — so compaction never deletes a segment out
// from under a running query.
//
// The read contract the execution engine consumes — Index.Leads, Match,
// relation scans, Stats, snapshot pinning — is documented by AccessPath
// and satisfied by *triplestore.Store. Both backends hand out ordinary
// store snapshots, which is why the flat, sharded, merge-join and
// leapfrog routes run unmodified on either. File formats, the recovery
// protocol and fsync tradeoffs are documented in docs/STORAGE.md.
package storage
