package storage

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/triplestore"
)

// applyScript drives the same pseudo-random op sequence into any engine,
// returning the batches it applied. Deletes target earlier inserts so
// tombstones actually fire.
func applyScript(t *testing.T, eng Engine, seed int64, batches, opsPerBatch int) [][]triplestore.Op {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var all [][]triplestore.Op
	var inserted []triplestore.Op
	for b := 0; b < batches; b++ {
		var ops []triplestore.Op
		for i := 0; i < opsPerBatch; i++ {
			if len(inserted) > 0 && rng.Intn(5) == 0 {
				victim := inserted[rng.Intn(len(inserted))]
				victim.Delete = true
				ops = append(ops, victim)
				continue
			}
			op := triplestore.Op{
				Rel: fmt.Sprintf("R%d", rng.Intn(3)),
				S:   fmt.Sprintf("n%d", rng.Intn(50)),
				P:   fmt.Sprintf("p%d", rng.Intn(5)),
				O:   fmt.Sprintf("n%d", rng.Intn(50)),
			}
			ops = append(ops, op)
			inserted = append(inserted, op)
		}
		if _, err := eng.ApplyBatch(ops); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		all = append(all, ops)
		if b%3 == 0 {
			if err := eng.SetValue(fmt.Sprintf("n%d", rng.Intn(50)),
				triplestore.Value{triplestore.F(fmt.Sprintf("v%d", b))}); err != nil {
				t.Fatalf("SetValue: %v", err)
			}
		}
	}
	return all
}

// assertStoresEqual compares two stores built from the same op history:
// identical dictionaries (same IDs), values, and relations.
func assertStoresEqual(t *testing.T, got, want *triplestore.Store) {
	t.Helper()
	if got.NumObjects() != want.NumObjects() {
		t.Fatalf("NumObjects = %d, want %d", got.NumObjects(), want.NumObjects())
	}
	for i := 0; i < want.NumObjects(); i++ {
		id := triplestore.ID(i)
		if got.Name(id) != want.Name(id) {
			t.Fatalf("Name(%d) = %q, want %q", i, got.Name(id), want.Name(id))
		}
		if !got.Value(id).Equal(want.Value(id)) {
			t.Fatalf("Value(%d) = %v, want %v", i, got.Value(id), want.Value(id))
		}
	}
	wantRels := want.RelationNames()
	gotRels := got.RelationNames()
	wantSet := make(map[string]bool, len(wantRels))
	for _, n := range wantRels {
		wantSet[n] = true
	}
	for _, n := range gotRels {
		if !wantSet[n] {
			t.Fatalf("unexpected relation %q", n)
		}
	}
	for _, name := range wantRels {
		wr := want.Relation(name)
		gr := got.Relation(name)
		if wr.Len() == 0 && gr == nil {
			continue // an emptied relation may not survive a segment cycle by name
		}
		if gr == nil {
			t.Fatalf("relation %q missing", name)
		}
		if want.FormatRelation(wr) != got.FormatRelation(gr) {
			t.Fatalf("relation %q differs:\nwant:\n%s\ngot:\n%s", name, want.FormatRelation(wr), got.FormatRelation(gr))
		}
	}
}

func TestDiskDurabilityAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(dir, WithSyncPolicy(SyncNone))
	if err != nil {
		t.Fatal(err)
	}
	applyScript(t, eng, 42, 10, 30)
	ref := eng.Store().Clone()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	assertStoresEqual(t, re.Store(), ref)
	st := re.Stats()
	if st.Backend != "disk" || st.Segments == 0 {
		t.Fatalf("stats = %+v: want disk backend with segments (Close flushes)", st)
	}
	if st.RecoveryMillis <= 0 {
		t.Fatalf("recovery took %v ms, want > 0", st.RecoveryMillis)
	}
}

func TestDiskFlushThresholdCreatesSegments(t *testing.T) {
	dir := t.TempDir()
	// Tiny threshold: every few batches cross it. Compaction off so the
	// segment stack is observable.
	eng, err := Open(dir, WithSyncPolicy(SyncNone), WithFlushBytes(1024), WithCompactAt(0))
	if err != nil {
		t.Fatal(err)
	}
	applyScript(t, eng, 7, 12, 40)
	st := eng.Stats()
	if st.Flushes < 2 || st.Segments < 2 {
		t.Fatalf("stats = %+v: want multiple flushes and segments", st)
	}
	ref := eng.Store().Clone()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen exercises the multi-segment (tombstone-merging) load path.
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	assertStoresEqual(t, re.Store(), ref)
}

func TestDiskCompactionFoldsStack(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(dir, WithSyncPolicy(SyncNone), WithFlushBytes(512), WithCompactAt(3))
	if err != nil {
		t.Fatal(err)
	}
	applyScript(t, eng, 9, 20, 30)
	eng.wg.Wait() // let any in-flight compaction swap
	deadline := time.Now().Add(5 * time.Second)
	for eng.Stats().Compactions == 0 && time.Now().Before(deadline) {
		applyScript(t, eng, time.Now().UnixNano(), 1, 30)
		eng.wg.Wait()
	}
	st := eng.Stats()
	if st.Compactions == 0 {
		t.Fatalf("stats = %+v: compaction never ran", st)
	}
	ref := eng.Store().Clone()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	assertStoresEqual(t, re.Store(), ref)
}

func TestDiskPinRetainsSegmentsAcrossCompaction(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(dir, WithSyncPolicy(SyncNone), WithFlushBytes(256), WithCompactAt(0))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	applyScript(t, eng, 13, 6, 30)
	eng.mu.Lock()
	if err := eng.flushLocked(); err != nil {
		eng.mu.Unlock()
		t.Fatal(err)
	}
	oldFiles := eng.man.segmentFiles()
	eng.mu.Unlock()
	if len(oldFiles) < 2 {
		t.Fatalf("want a segment stack, have %v", oldFiles)
	}

	pin := eng.Pin()
	pinnedTriples := pin.Store.Size()

	// Force a compaction and wait for its swap.
	eng.mu.Lock()
	eng.startCompactionLocked()
	eng.mu.Unlock()
	eng.wg.Wait()
	if got := eng.Stats(); got.Compactions != 1 || got.Segments != 1 {
		t.Fatalf("stats after compaction = %+v", got)
	}

	// The pinned generation's files must survive the swap...
	for _, f := range oldFiles {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("pinned segment %s was deleted: %v", f, err)
		}
	}
	if pin.Store.Size() != pinnedTriples {
		t.Fatal("pinned snapshot changed size")
	}
	// ...and be garbage-collected on release.
	pin.Release()
	pin.Release() // idempotent
	for _, f := range oldFiles {
		if _, err := os.Stat(filepath.Join(dir, f)); !os.IsNotExist(err) {
			t.Fatalf("released segment %s still exists", f)
		}
	}
}

func TestDiskCreateFromPreservesIDs(t *testing.T) {
	src := triplestore.NewStore()
	for i := 0; i < 500; i++ {
		src.Add("E", fmt.Sprintf("a%d", i%60), fmt.Sprintf("p%d", i%4), fmt.Sprintf("a%d", (i*7)%60))
	}
	src.SetValue("a5", triplestore.V("hello", "world"))
	src.EnsureRelation("emptyRel")

	eng, err := CreateFrom(filepath.Join(t.TempDir(), "data"), src)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	assertStoresEqual(t, eng.Store(), src)
	// Same dictionary order ⇒ triples compare identically by raw ID.
	srcTs := src.Relation("E").Triples()
	gotTs := eng.Store().Relation("E").Triples()
	for i := range srcTs {
		if srcTs[i] != gotTs[i] {
			t.Fatalf("triple %d: %v vs %v", i, srcTs[i], gotTs[i])
		}
	}
	if eng.Store().Relation("emptyRel") == nil {
		t.Fatal("empty relation lost")
	}
	if _, err := CreateFrom(eng.dir, src); err == nil {
		t.Fatal("CreateFrom over an existing store must fail")
	}
}

func TestDiskApplyNDJSONStreamsDurably(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(dir, WithSyncPolicy(SyncNone), WithFlushBytes(2048))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	const n = 9000
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `{"s":"u%d","p":"knows","o":"u%d"}`+"\n", i%700, (i*3)%700)
	}
	res, err := eng.ApplyNDJSON(strings.NewReader(b.String()), "E")
	if err != nil {
		t.Fatal(err)
	}
	ref := eng.Store().Clone()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	assertStoresEqual(t, re.Store(), ref)
	if re.Store().Relation("E").Len() != res.Added {
		t.Fatalf("recovered %d triples, ingest added %d", re.Store().Relation("E").Len(), res.Added)
	}
}

func TestDiskClosedOperationsFail(t *testing.T) {
	eng, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := eng.ApplyBatch([]triplestore.Op{{Rel: "E", S: "a", P: "b", O: "c"}}); err != ErrClosed {
		t.Fatalf("ApplyBatch after Close: %v", err)
	}
	if err := eng.SetValue("a", nil); err != ErrClosed {
		t.Fatalf("SetValue after Close: %v", err)
	}
	if err := eng.Flush(); err != ErrClosed {
		t.Fatalf("Flush after Close: %v", err)
	}
}

func TestMemEngineContract(t *testing.T) {
	var eng Engine = NewMem(nil)
	if _, err := eng.ApplyBatch([]triplestore.Op{{Rel: "E", S: "a", P: "p", O: "b"}}); err != nil {
		t.Fatal(err)
	}
	if err := eng.SetValue("a", triplestore.V("x")); err != nil {
		t.Fatal(err)
	}
	pin := eng.Pin()
	if pin.Store == nil || !pin.Store.IsSnapshot() || pin.Generation != 0 {
		t.Fatalf("pin = %+v", pin)
	}
	pin.Release()
	if st := eng.Stats(); st.Backend != "mem" {
		t.Fatalf("stats = %+v", st)
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}
