package storage

import (
	"reflect"
	"testing"

	"repro/internal/triplestore"
)

// FuzzWALDecode hammers the WAL payload decoder with arbitrary bytes.
// Invariants: never panic; and for any payload that decodes, the
// re-encoded canonical form must decode back to the same entry
// (binary.Uvarint accepts non-minimal encodings, so exact byte
// round-trips cannot be asserted — semantic round-trips can).
func FuzzWALDecode(f *testing.F) {
	f.Add(encodeBatch([]triplestore.Op{{Rel: "E", S: "a", P: "p", O: "b"}}))
	f.Add(encodeBatch([]triplestore.Op{
		{Rel: "E", S: "x", P: "p", O: "y"},
		{Delete: true, Rel: "F", S: "x", P: "q", O: "z"},
	}))
	f.Add(encodeValue("node", triplestore.Value{triplestore.F("v"), triplestore.Null()}))
	f.Add(encodeValue("cleared", nil))
	f.Add([]byte{})
	f.Add([]byte{walKindBatch})
	f.Add([]byte{walKindValue, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		ent, err := decodeWALEntry(data)
		if err != nil {
			return
		}
		var canon []byte
		switch ent.kind {
		case walKindBatch:
			canon = encodeBatch(ent.ops)
		case walKindValue:
			if ent.nilV {
				canon = encodeValue(ent.name, nil)
			} else {
				canon = encodeValue(ent.name, ent.val)
			}
		default:
			t.Fatalf("decoded unknown kind %d without error", ent.kind)
		}
		ent2, err := decodeWALEntry(canon)
		if err != nil {
			t.Fatalf("canonical re-encode failed to decode: %v", err)
		}
		if !reflect.DeepEqual(ent, ent2) {
			t.Fatalf("semantic round-trip mismatch:\n %+v\n %+v", ent, ent2)
		}
	})
}
