package storage

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/triplestore"
)

// FuzzWALDecode hammers the WAL payload decoder with arbitrary bytes.
// Invariants: never panic; and for any payload that decodes, the
// re-encoded canonical form must decode back to the same entry
// (binary.Uvarint accepts non-minimal encodings, so exact byte
// round-trips cannot be asserted — semantic round-trips can).
func FuzzWALDecode(f *testing.F) {
	f.Add(encodeBatch([]triplestore.Op{{Rel: "E", S: "a", P: "p", O: "b"}}))
	f.Add(encodeBatch([]triplestore.Op{
		{Rel: "E", S: "x", P: "p", O: "y"},
		{Delete: true, Rel: "F", S: "x", P: "q", O: "z"},
	}))
	f.Add(encodeValue("node", triplestore.Value{triplestore.F("v"), triplestore.Null()}))
	f.Add(encodeValue("cleared", nil))
	f.Add([]byte{})
	f.Add([]byte{walKindBatch})
	f.Add([]byte{walKindValue, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		ent, err := decodeWALEntry(data)
		if err != nil {
			return
		}
		var canon []byte
		switch ent.kind {
		case walKindBatch:
			canon = encodeBatch(ent.ops)
		case walKindValue:
			if ent.nilV {
				canon = encodeValue(ent.name, nil)
			} else {
				canon = encodeValue(ent.name, ent.val)
			}
		default:
			t.Fatalf("decoded unknown kind %d without error", ent.kind)
		}
		ent2, err := decodeWALEntry(canon)
		if err != nil {
			t.Fatalf("canonical re-encode failed to decode: %v", err)
		}
		if !reflect.DeepEqual(ent, ent2) {
			t.Fatalf("semantic round-trip mismatch:\n %+v\n %+v", ent, ent2)
		}
	})
}

// FuzzSegmentMatch drives the block-indexed point read — segRun.matchLead
// and its block-cached variant matchLeadCached, the primitives behind
// every cold index probe — against a sorted-slice oracle. The fuzz
// input is chewed into a triple set — three bytes per triple, IDs
// folded into a small range so blocks collide and span — the
// set is delta-encoded exactly as writeSegment would, and every ID in
// range (present or not) is probed in all three permutations.
func FuzzSegmentMatch(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{1, 2, 3, 1, 2, 4, 9, 9, 9})
	long := make([]byte, 3*(segBlockSize+100)) // force a second block
	for i := range long {
		long[i] = byte(i * 7)
	}
	f.Add(long)

	f.Fuzz(func(t *testing.T, data []byte) {
		const idRange = 23 // small: many lead collisions, multi-block runs
		set := make(map[triplestore.Triple]struct{}, len(data)/3)
		for i := 0; i+2 < len(data); i += 3 {
			set[triplestore.Triple{
				triplestore.ID(data[i]) % idRange,
				triplestore.ID(data[i+1]) % idRange,
				triplestore.ID(data[i+2]) % idRange,
			}] = struct{}{}
		}
		ts := make([]triplestore.Triple, 0, len(set))
		for tr := range set {
			ts = append(ts, tr)
		}
		for perm := triplestore.Perm(0); perm < 3; perm++ {
			sorted := append([]triplestore.Triple(nil), ts...)
			sort.Slice(sorted, func(i, j int) bool {
				return permKey(perm, sorted[i]).Less(permKey(perm, sorted[j]))
			})
			data, blocks := encodeRun(perm, sorted)
			run := newSegRun(perm, len(sorted), blocks, data)
			// A deliberately tiny cache cap forces eviction churn on larger
			// inputs, exercising the clock sweep alongside plain hits.
			cache := newBlockCache(3 * segBlockSize * 12)

			if got, err := run.triples(); err != nil {
				t.Fatalf("%v: full decode: %v", perm, err)
			} else if !reflect.DeepEqual(got, sorted) && !(len(got) == 0 && len(sorted) == 0) {
				t.Fatalf("%v: full decode mismatch", perm)
			}
			lead := perm.Lead()
			for id := triplestore.ID(0); id < idRange+2; id++ {
				var want []triplestore.Triple
				for _, tr := range sorted {
					if tr[lead] == id {
						want = append(want, tr)
					}
				}
				got, err := run.matchLead(id)
				if err != nil {
					t.Fatalf("%v: matchLead(%d): %v", perm, id, err)
				}
				if len(got) != len(want) {
					t.Fatalf("%v: matchLead(%d): %d triples, oracle %d", perm, id, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%v: matchLead(%d)[%d]: %v, oracle %v", perm, id, i, got[i], want[i])
					}
				}
				// The cached variant must agree probe-for-probe: once with a
				// cold cache (decode-and-publish) and once warm (served from
				// the published blocks, possibly as a zero-copy subslice).
				for pass := 0; pass < 2; pass++ {
					cgot, err := run.matchLeadCached(id, cache)
					if err != nil {
						t.Fatalf("%v: matchLeadCached(%d) pass %d: %v", perm, id, pass, err)
					}
					if len(cgot) != len(want) {
						t.Fatalf("%v: matchLeadCached(%d) pass %d: %d triples, oracle %d",
							perm, id, pass, len(cgot), len(want))
					}
					for i := range want {
						if cgot[i] != want[i] {
							t.Fatalf("%v: matchLeadCached(%d)[%d] pass %d: %v, oracle %v",
								perm, id, i, pass, cgot[i], want[i])
						}
					}
				}
			}
		}
	})
}
