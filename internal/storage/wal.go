package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/triplestore"
)

// SyncPolicy controls when the WAL is fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every appended record: a batch is on disk
	// before ApplyBatch returns. The durable default.
	SyncAlways SyncPolicy = iota
	// SyncNone leaves syncing to the OS page cache (plus explicit Flush
	// and Close). An OS crash can lose recent batches; a process crash
	// cannot, since the bytes are already in the kernel.
	SyncNone
)

func (p SyncPolicy) String() string {
	if p == SyncNone {
		return "none"
	}
	return "always"
}

// ParseSyncPolicy parses the -wal-sync flag values "always" and "none".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("storage: unknown WAL sync policy %q (want always or none)", s)
}

// WAL record framing: every record is
//
//	[u32 payload length][u32 CRC-32C of seq+payload][u64 seq][payload]
//
// little-endian, CRC over bytes 8..16+len. Replay reads records in order
// and stops cleanly at the first short or checksum-failing record — a
// torn tail from a crash mid-append — which is exactly the last committed
// batch boundary, because ApplyBatch does not touch the memtable until
// its record is fully appended.
const (
	walHeaderSize = 16
	// maxWALRecord bounds a single record (and so a single batch's
	// encoded size); the 32 MiB server ingest cap fits comfortably.
	maxWALRecord = 256 << 20
)

var walCRC = crc32.MakeTable(crc32.Castagnoli)

// wal is an append-only log file. Not safe for concurrent use; the Disk
// engine serializes access under its mutation lock.
type wal struct {
	f       *os.File
	w       io.Writer // normally f; fault-injection tests swap in an erroring writer
	path    string
	policy  SyncPolicy
	bytes   int64  // current valid size
	records uint64 // records appended since open/rotation
	lastSeq uint64 // last sequence number appended or replayed
	broken  bool   // a failed append could not be rolled back
	buf     []byte
}

// createWAL creates a fresh, empty log at path (failing if it exists).
func createWAL(path string, policy SyncPolicy, lastSeq uint64) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: create WAL: %w", err)
	}
	return &wal{f: f, w: f, path: path, policy: policy, lastSeq: lastSeq}, nil
}

// openWALForAppend opens an existing log whose valid prefix is validSize
// bytes (as reported by replayWAL), truncating any torn tail so new
// records append at a clean boundary.
func openWALForAppend(path string, policy SyncPolicy, validSize int64, lastSeq uint64) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open WAL: %w", err)
	}
	if err := f.Truncate(validSize); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: truncate WAL tail: %w", err)
	}
	if _, err := f.Seek(validSize, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: seek WAL: %w", err)
	}
	return &wal{f: f, w: f, path: path, policy: policy, bytes: validSize, lastSeq: lastSeq}, nil
}

// append writes one record and returns its sequence number. On a write
// error the file is rolled back to the previous record boundary so later
// appends stay readable; if rollback itself fails the log is marked
// broken and refuses further appends.
func (w *wal) append(payload []byte) (uint64, error) {
	if w.broken {
		return 0, fmt.Errorf("storage: WAL is broken (an earlier append failed and could not be rolled back)")
	}
	if len(payload) > maxWALRecord {
		return 0, fmt.Errorf("storage: WAL record of %d bytes exceeds the %d limit", len(payload), maxWALRecord)
	}
	seq := w.lastSeq + 1
	n := walHeaderSize + len(payload)
	if cap(w.buf) < n {
		w.buf = make([]byte, n)
	}
	rec := w.buf[:n]
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(rec[8:16], seq)
	copy(rec[walHeaderSize:], payload)
	binary.LittleEndian.PutUint32(rec[4:8], crc32.Checksum(rec[8:], walCRC))
	if _, err := w.w.Write(rec); err != nil {
		if terr := w.f.Truncate(w.bytes); terr != nil {
			w.broken = true
		} else if _, serr := w.f.Seek(w.bytes, io.SeekStart); serr != nil {
			w.broken = true
		}
		return 0, fmt.Errorf("storage: WAL append: %w", err)
	}
	w.bytes += int64(n)
	w.records++
	w.lastSeq = seq
	if w.policy == SyncAlways {
		if err := w.f.Sync(); err != nil {
			return 0, fmt.Errorf("storage: WAL sync: %w", err)
		}
	}
	return seq, nil
}

// sync forces buffered records to disk regardless of policy.
func (w *wal) sync() error {
	if w.f == nil {
		return nil
	}
	return w.f.Sync()
}

// close syncs and closes the file.
func (w *wal) close() error {
	if w.f == nil {
		return nil
	}
	serr := w.f.Sync()
	cerr := w.f.Close()
	w.f = nil
	if serr != nil {
		return serr
	}
	return cerr
}

// replayWAL reads records from the log at path in order, invoking fn for
// each, and returns the size of the valid prefix and the last sequence
// number seen. A short or checksum-failing tail ends replay cleanly (it
// is the crash artifact the format is designed to tolerate); an error
// from fn aborts replay. A missing file replays as empty.
func replayWAL(path string, fn func(seq uint64, payload []byte) error) (validSize int64, lastSeq uint64, n uint64, err error) {
	data, rerr := os.ReadFile(path)
	if rerr != nil {
		if os.IsNotExist(rerr) {
			return 0, 0, 0, nil
		}
		return 0, 0, 0, fmt.Errorf("storage: read WAL: %w", rerr)
	}
	off := int64(0)
	for {
		rest := data[off:]
		if len(rest) < walHeaderSize {
			return off, lastSeq, n, nil // clean end or torn header
		}
		plen := int64(binary.LittleEndian.Uint32(rest[0:4]))
		if plen > maxWALRecord || walHeaderSize+plen > int64(len(rest)) {
			return off, lastSeq, n, nil // torn payload
		}
		crc := binary.LittleEndian.Uint32(rest[4:8])
		body := rest[8 : walHeaderSize+plen]
		if crc32.Checksum(body, walCRC) != crc {
			return off, lastSeq, n, nil // torn or bit-rotted record
		}
		seq := binary.LittleEndian.Uint64(rest[8:16])
		if ferr := fn(seq, rest[walHeaderSize:walHeaderSize+plen]); ferr != nil {
			return off, lastSeq, n, ferr
		}
		lastSeq = seq
		n++
		off += walHeaderSize + plen
	}
}

// WAL payload encoding. The first byte is the record kind; strings are
// uvarint length + bytes; uvarints are encoding/binary's.
const (
	walKindBatch byte = 1 // a full ApplyBatch: uvarint op count, then per op a flag byte (bit0 = delete) and the rel, s, p, o strings
	walKindValue byte = 2 // a SetValue: the object name, then a presence byte and (if present) uvarint field count of (null byte, string) fields
)

// walEntry is a decoded WAL payload.
type walEntry struct {
	kind byte
	ops  []triplestore.Op // walKindBatch
	name string           // walKindValue
	val  triplestore.Value
	nilV bool // walKindValue: the value is explicitly nil
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func readString(b []byte) (string, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > uint64(len(b)-sz) {
		return "", nil, fmt.Errorf("storage: corrupt string length")
	}
	return string(b[sz : sz+int(n)]), b[sz+int(n):], nil
}

// encodeBatch renders an ApplyBatch record payload.
func encodeBatch(ops []triplestore.Op) []byte {
	sz := 2 + 4*len(ops)
	for _, op := range ops {
		sz += len(op.Rel) + len(op.S) + len(op.P) + len(op.O) + 4*5
	}
	b := make([]byte, 0, sz)
	b = append(b, walKindBatch)
	b = binary.AppendUvarint(b, uint64(len(ops)))
	for _, op := range ops {
		var flags byte
		if op.Delete {
			flags |= 1
		}
		b = append(b, flags)
		b = appendString(b, op.Rel)
		b = appendString(b, op.S)
		b = appendString(b, op.P)
		b = appendString(b, op.O)
	}
	return b
}

// encodeValue renders a SetValue record payload.
func encodeValue(name string, v triplestore.Value) []byte {
	b := make([]byte, 0, len(name)+16)
	b = append(b, walKindValue)
	b = appendString(b, name)
	if v == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	b = binary.AppendUvarint(b, uint64(len(v)))
	for _, f := range v {
		if f.Null {
			b = append(b, 1)
		} else {
			b = append(b, 0)
			b = appendString(b, f.Str)
		}
	}
	return b
}

// decodeWALEntry parses a record payload. It never panics on arbitrary
// input (the fuzz target FuzzWALDecode pins that) and rejects trailing
// garbage, so a checksum-valid but semantically corrupt record fails
// recovery loudly instead of loading wrong data.
func decodeWALEntry(p []byte) (walEntry, error) {
	if len(p) == 0 {
		return walEntry{}, fmt.Errorf("storage: empty WAL payload")
	}
	switch p[0] {
	case walKindBatch:
		b := p[1:]
		n, sz := binary.Uvarint(b)
		if sz <= 0 {
			return walEntry{}, fmt.Errorf("storage: corrupt batch op count")
		}
		b = b[sz:]
		if n > uint64(len(b)) { // each op takes ≥ 5 bytes; cheap pre-bound
			return walEntry{}, fmt.Errorf("storage: batch op count %d exceeds payload", n)
		}
		ops := make([]triplestore.Op, 0, n)
		for i := uint64(0); i < n; i++ {
			if len(b) < 1 {
				return walEntry{}, fmt.Errorf("storage: truncated batch op %d", i)
			}
			var op triplestore.Op
			op.Delete = b[0]&1 != 0
			b = b[1:]
			var err error
			if op.Rel, b, err = readString(b); err != nil {
				return walEntry{}, err
			}
			if op.S, b, err = readString(b); err != nil {
				return walEntry{}, err
			}
			if op.P, b, err = readString(b); err != nil {
				return walEntry{}, err
			}
			if op.O, b, err = readString(b); err != nil {
				return walEntry{}, err
			}
			ops = append(ops, op)
		}
		if len(b) != 0 {
			return walEntry{}, fmt.Errorf("storage: %d trailing bytes after batch", len(b))
		}
		return walEntry{kind: walKindBatch, ops: ops}, nil

	case walKindValue:
		name, b, err := readString(p[1:])
		if err != nil {
			return walEntry{}, err
		}
		if len(b) < 1 {
			return walEntry{}, fmt.Errorf("storage: truncated value record")
		}
		present := b[0]
		b = b[1:]
		if present == 0 {
			if len(b) != 0 {
				return walEntry{}, fmt.Errorf("storage: trailing bytes after nil value")
			}
			return walEntry{kind: walKindValue, name: name, nilV: true}, nil
		}
		n, sz := binary.Uvarint(b)
		if sz <= 0 || n > uint64(len(b)) {
			return walEntry{}, fmt.Errorf("storage: corrupt value field count")
		}
		b = b[sz:]
		val := make(triplestore.Value, 0, n)
		for i := uint64(0); i < n; i++ {
			if len(b) < 1 {
				return walEntry{}, fmt.Errorf("storage: truncated value field %d", i)
			}
			isNull := b[0]
			b = b[1:]
			if isNull != 0 {
				val = append(val, triplestore.Null())
				continue
			}
			var s string
			if s, b, err = readString(b); err != nil {
				return walEntry{}, err
			}
			val = append(val, triplestore.F(s))
		}
		if len(b) != 0 {
			return walEntry{}, fmt.Errorf("storage: %d trailing bytes after value", len(b))
		}
		return walEntry{kind: walKindValue, name: name, val: val}, nil
	}
	return walEntry{}, fmt.Errorf("storage: unknown WAL record kind %d", p[0])
}
