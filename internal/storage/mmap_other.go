//go:build !unix

package storage

import (
	"fmt"
	"os"
)

// mapFile reads the file into the heap on platforms without a usable
// mmap. The segment-read path still decodes lazily (only probed blocks
// are converted to triples), but the raw bytes do count against the Go
// heap here; unmap just drops the reference.
func mapFile(path string) ([]byte, func(), error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("storage: read segment: %w", err)
	}
	return data, func() {}, nil
}
