package storage

import (
	"fmt"
	"testing"

	"repro/internal/triplestore"
)

// BenchmarkColdOpen measures opening a checkpointed data directory —
// the cold-start path the trialbench storage row gates.
func BenchmarkColdOpen(b *testing.B) {
	s := triplestore.NewStore()
	var ops []triplestore.Op
	for i := 0; i < 1_000_000; i++ {
		ops = append(ops, triplestore.Op{
			Rel: "E",
			S:   fmt.Sprintf("u%d", i%500_000),
			P:   fmt.Sprintf("c%d", i),
			O:   fmt.Sprintf("u%d", (i*7)%500_000),
		})
		if len(ops) == 65536 {
			s.ApplyBatch(ops)
			ops = ops[:0]
		}
	}
	s.ApplyBatch(ops)
	dir := b.TempDir()
	ck, err := CreateFrom(dir, s, WithSyncPolicy(SyncNone))
	if err != nil {
		b.Fatal(err)
	}
	ck.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := Open(dir, WithSyncPolicy(SyncNone))
		if err != nil {
			b.Fatal(err)
		}
		e.Close()
	}
}
