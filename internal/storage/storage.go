package storage

import (
	"io"

	"repro/internal/triplestore"
)

// AccessPath is the read contract the execution layer consumes from a
// pinned snapshot: permutation-index probes (through Relation → Index →
// Leads/Match), relation scans, dictionary resolution, statistics, and
// the value assignment. *triplestore.Store satisfies it — both for the
// live store and for its frozen Snapshot views — and every Engine hands
// out snapshots as plain stores, so the flat, sharded, merge-join and
// leapfrog execution strategies run unmodified on either backend.
type AccessPath interface {
	// Relation returns the named relation (nil if absent); its Index
	// method exposes the SPO/POS/OSP access paths (Leads, Match).
	Relation(name string) *triplestore.Relation
	// RelationNames returns the relation names in creation order.
	RelationNames() []string
	// Lookup, Name and NumObjects resolve the dictionary.
	Lookup(name string) triplestore.ID
	Name(id triplestore.ID) string
	NumObjects() int
	// Value and SameValue expose the data-value assignment ρ.
	Value(id triplestore.ID) triplestore.Value
	SameValue(a, b triplestore.ID) bool
	// Size, Stats and ActiveDomain feed the optimizer and the engine's
	// universe computation.
	Size() int
	Stats() triplestore.StoreStats
	ActiveDomain() []triplestore.ID
	// Version keys caches; Snapshot pins a consistent view (a frozen
	// store returns itself); IsSnapshot distinguishes the two.
	Version() uint64
	Snapshot() *triplestore.Store
	IsSnapshot() bool
}

// The in-memory store is the canonical AccessPath implementation.
var _ AccessPath = (*triplestore.Store)(nil)

// Engine is the storage-engine seam: the mutation path and snapshot
// lifecycle the query façade, the server and the tools program against,
// implemented by the in-memory Mem and the durable Disk backends.
//
// All mutations go through the engine. Mutating the underlying Store()
// directly is outside the durability contract (Disk could not log it and
// recovery would lose it).
type Engine interface {
	// Store returns the live underlying store for point reads (Name,
	// Lookup, Version, MutationStats, ...). Do not mutate it directly.
	Store() *triplestore.Store

	// Snapshot returns an immutable view of the current state. For
	// long-lived consumers on the Disk backend, prefer Pin, which also
	// retains the snapshot's segment files against compaction.
	Snapshot() *triplestore.Store

	// Pin returns a snapshot plus a release handle: until Release is
	// called, the files backing the snapshot (its manifest generation)
	// outlive any compaction. On Mem, pinning is just a snapshot.
	Pin() *Pin

	// Version returns the underlying store version.
	Version() uint64

	// ApplyBatch applies one atomic batch, durably on Disk (the batch is
	// in the WAL before the memtable mutates; a WAL write error leaves
	// the store untouched).
	ApplyBatch(ops []triplestore.Op) (triplestore.BatchResult, error)

	// ApplyNDJSON streams a batch in bounded chunks, each chunk one
	// atomic (and on Disk, durable) batch.
	ApplyNDJSON(r io.Reader, defaultRel string) (triplestore.BatchResult, error)

	// SetValue assigns ρ(name) = v, durably on Disk.
	SetValue(name string, v triplestore.Value) error

	// Flush forces the in-memory overlay into a durable segment (no-op
	// on Mem or when the overlay is empty).
	Flush() error

	// Stats reports backend counters for /v1/stats and the obs metrics.
	Stats() Stats

	// Close flushes the overlay, syncs and closes the WAL, and waits for
	// background compaction. The engine is unusable afterwards.
	Close() error
}

// Pin is a snapshot whose backing files are retained until released.
// Release is idempotent and safe to call concurrently with compaction.
type Pin struct {
	// Store is the pinned immutable snapshot.
	Store *triplestore.Store
	// Generation identifies the manifest generation backing the
	// snapshot (always 0 on the in-memory backend). Querier cache keys
	// pair it with the store version.
	Generation uint64

	release func()
}

// Release drops the pin. Idempotent.
func (p *Pin) Release() {
	if p.release != nil {
		p.release()
		p.release = nil
	}
}

// Stats are backend counters, surfaced on /v1/stats and as
// trial_storage_* metrics.
type Stats struct {
	// Backend is "mem" or "disk".
	Backend string `json:"backend"`
	// WALBytes is the size of the live WAL file; WALRecords counts
	// records appended to it since the last rotation.
	WALBytes   int64  `json:"wal_bytes"`
	WALRecords uint64 `json:"wal_records"`
	// Segments and SegmentBytes describe the live segment set.
	Segments     int   `json:"segments"`
	SegmentBytes int64 `json:"segment_bytes"`
	// Flushes and Compactions count segment writes since open.
	Flushes     uint64 `json:"flushes"`
	Compactions uint64 `json:"compactions"`
	// RecoveryMillis is how long Open took to restore state (segment
	// load + WAL replay); WALReplayed counts the batches replayed.
	RecoveryMillis float64 `json:"recovery_ms"`
	WALReplayed    uint64  `json:"wal_replayed"`
	// PinnedGenerations counts manifest generations still retained by
	// unreleased pins (the current one included).
	PinnedGenerations int `json:"pinned_generations"`
	// Residency describes the segment-read path's relation residency
	// (zero-valued on Mem and on eager-loading Disk engines).
	Residency ResidencyStats `json:"residency"`
}

// ResidencyStats describes which relations are materialized in memory
// (resident) versus served directly from segment files (cold) under the
// Disk engine's read budget (WithReadBudget).
type ResidencyStats struct {
	// Budget is the configured residency byte budget: -1 unlimited
	// (eager materialization at open, the default), 0 fully cold, >0 a
	// cap on promoted-relation bytes.
	Budget int64 `json:"budget"`
	// ResidentBytes estimates the heap held by promoted relations;
	// ResidentRelations counts them. ColdRelations counts relations
	// still served from segments.
	ResidentBytes     int64 `json:"resident_bytes"`
	ResidentRelations int   `json:"resident_relations"`
	ColdRelations     int   `json:"cold_relations"`
	// Promotions counts cold→resident transitions (access-count policy
	// or forced by mutation). ColdProbes counts point reads answered
	// from segment blocks; ColdDecodes counts full-run decodes served
	// without caching.
	Promotions  uint64 `json:"promotions"`
	ColdProbes  uint64 `json:"cold_probes"`
	ColdDecodes uint64 `json:"cold_decodes"`
	// The decoded-block cache behind cold point probes: current bytes
	// held (capped engine-wide) and lifetime hit/miss counts.
	CacheBytes  int64  `json:"cache_bytes"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
}
