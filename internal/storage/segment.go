package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"sync/atomic"

	"repro/internal/triplestore"
)

// Segment file format (little-endian, uvarints are encoding/binary's):
//
//	magic "TRISEG1\n" (8 bytes)
//	u32 format version (1)
//	u64 segment sequence number
//	u64 WAL sequence floor (records ≤ this are folded into the segment)
//	uvarint dictBase — IDs below it come from older segments
//	uvarint name count, then that many strings: the dictionary delta,
//	    assigning IDs dictBase, dictBase+1, ...
//	uvarint value count, then per entry: uvarint ID, presence byte, and
//	    (if present) uvarint field count of (null byte, string) fields.
//	    Values are deltas — the newest segment mentioning an ID wins.
//	uvarint relation count, then per relation:
//	    string name
//	    three triple runs (SPO, POS, OSP orders) of the triples this
//	    segment adds, each run:
//	        uvarint triple count
//	        uvarint block count, then per block: the block's first key
//	        (3 uvarints) and its byte offset into the run data — the
//	        sparse index, one entry per segBlockSize triples, enabling
//	        point reads without decoding the whole run
//	        uvarint run data length, then the delta-encoded run
//	    one tombstone run (SPO order, no block index): uvarint count,
//	    uvarint data length, data — the triples this segment deletes
//	    from older segments
//	u32 CRC-32C over everything before it
//
// Run data is delta-encoded in the permutation's key space. Each block
// opens with its full key (3 uvarints); within a block each triple
// stores the difference from its predecessor: uvarint d0, then (d0 > 0)
// full k1 and k2; else uvarint d1, then (d1 > 0) full k2; else uvarint
// d2. Runs are strictly sorted, so the encoding is self-checking: a
// non-positive final delta fails decode.
const (
	segMagic      = "TRISEG1\n"
	segFormat     = 1
	segBlockSize  = 1024
	maxSegEntries = 1 << 31 // sanity bound on any decoded count
)

// segRelation is one relation's contribution to a segment.
type segRelation struct {
	name string
	// runs holds the added triples in SPO, POS and OSP key order.
	runs [3][]triplestore.Triple
	// dels holds tombstoned triples in SPO order.
	dels []triplestore.Triple
}

// segValue is one dirty data-value entry.
type segValue struct {
	id  triplestore.ID
	val triplestore.Value // nil means "explicitly cleared"
}

// segmentData is the in-memory form of a segment file.
type segmentData struct {
	seq      uint64
	walSeq   uint64
	dictBase int
	names    []string
	values   []segValue
	rels     []segRelation
}

// triples returns the number of added triples (per the SPO runs).
func (sd *segmentData) triples() int {
	n := 0
	for _, r := range sd.rels {
		n += len(r.runs[triplestore.SPO])
	}
	return n
}

// permKey reorders t into perm's key space; permUnkey inverts it.
func permKey(p triplestore.Perm, t triplestore.Triple) triplestore.Triple {
	switch p {
	case triplestore.SPO:
		return t
	case triplestore.POS:
		return triplestore.Triple{t[1], t[2], t[0]}
	default: // OSP
		return triplestore.Triple{t[2], t[0], t[1]}
	}
}

func permUnkey(p triplestore.Perm, k triplestore.Triple) triplestore.Triple {
	switch p {
	case triplestore.SPO:
		return k
	case triplestore.POS:
		return triplestore.Triple{k[2], k[0], k[1]}
	default: // OSP
		return triplestore.Triple{k[1], k[2], k[0]}
	}
}

// encodeRun delta-encodes ts (already in perm key order) and returns the
// run data plus the sparse block index.
func encodeRun(perm triplestore.Perm, ts []triplestore.Triple) (data []byte, blocks []segBlock) {
	var prev triplestore.Triple
	for i, t := range ts {
		k := permKey(perm, t)
		if i%segBlockSize == 0 {
			blocks = append(blocks, segBlock{key: k, off: len(data)})
			data = binary.AppendUvarint(data, uint64(k[0]))
			data = binary.AppendUvarint(data, uint64(k[1]))
			data = binary.AppendUvarint(data, uint64(k[2]))
			prev = k
			continue
		}
		d0 := uint64(k[0] - prev[0])
		data = binary.AppendUvarint(data, d0)
		if d0 > 0 {
			data = binary.AppendUvarint(data, uint64(k[1]))
			data = binary.AppendUvarint(data, uint64(k[2]))
		} else {
			d1 := uint64(k[1] - prev[1])
			data = binary.AppendUvarint(data, d1)
			if d1 > 0 {
				data = binary.AppendUvarint(data, uint64(k[2]))
			} else {
				data = binary.AppendUvarint(data, uint64(k[2]-prev[2]))
			}
		}
		prev = k
	}
	return data, blocks
}

// segBlock is one sparse-index entry: the first key of the block and the
// block's byte offset into the run data.
type segBlock struct {
	key triplestore.Triple
	off int
}

// runDecoder decodes a delta-encoded run.
type runDecoder struct {
	data  []byte
	count int
}

// uv reads one uvarint.
func (rd *runDecoder) uv(b []byte) (uint64, []byte, error) {
	v, sz := binary.Uvarint(b)
	if sz <= 0 {
		return 0, nil, fmt.Errorf("storage: corrupt run varint")
	}
	return v, b[sz:], nil
}

// decodeAll decodes the entire run into triples (in perm key order,
// converted back to subject-predicate-object form).
func (rd *runDecoder) decodeAll(perm triplestore.Perm, out []triplestore.Triple) ([]triplestore.Triple, error) {
	b := rd.data
	var prev triplestore.Triple
	for i := 0; i < rd.count; i++ {
		k, rest, err := rd.next(i, prev, b)
		if err != nil {
			return nil, err
		}
		if i > 0 && !prev.Less(k) {
			return nil, fmt.Errorf("storage: run not strictly sorted at %d", i)
		}
		out = append(out, permUnkey(perm, k))
		prev, b = k, rest
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("storage: %d trailing bytes in run", len(b))
	}
	return out, nil
}

// next decodes the i-th triple's key given the previous key.
func (rd *runDecoder) next(i int, prev triplestore.Triple, b []byte) (triplestore.Triple, []byte, error) {
	const maxID = uint64(^triplestore.ID(0)) - 1 // NoID is reserved
	var k triplestore.Triple
	if i%segBlockSize == 0 {
		var v uint64
		var err error
		for j := 0; j < 3; j++ {
			if v, b, err = rd.uv(b); err != nil {
				return k, nil, err
			}
			if v > maxID {
				return k, nil, fmt.Errorf("storage: run ID %d out of range", v)
			}
			k[j] = triplestore.ID(v)
		}
		return k, b, nil
	}
	d0, b, err := rd.uv(b)
	if err != nil {
		return k, nil, err
	}
	if d0 > maxID-uint64(prev[0]) {
		return k, nil, fmt.Errorf("storage: run delta overflow")
	}
	k[0] = prev[0] + triplestore.ID(d0)
	if d0 > 0 {
		var v1, v2 uint64
		if v1, b, err = rd.uv(b); err != nil {
			return k, nil, err
		}
		if v2, b, err = rd.uv(b); err != nil {
			return k, nil, err
		}
		if v1 > maxID || v2 > maxID {
			return k, nil, fmt.Errorf("storage: run ID out of range")
		}
		k[1], k[2] = triplestore.ID(v1), triplestore.ID(v2)
		return k, b, nil
	}
	k[1] = prev[1]
	d1, b, err := rd.uv(b)
	if err != nil {
		return k, nil, err
	}
	if d1 > maxID-uint64(prev[1]) {
		return k, nil, fmt.Errorf("storage: run delta overflow")
	}
	k[1] = prev[1] + triplestore.ID(d1)
	if d1 > 0 {
		var v2 uint64
		if v2, b, err = rd.uv(b); err != nil {
			return k, nil, err
		}
		if v2 > maxID {
			return k, nil, fmt.Errorf("storage: run ID out of range")
		}
		k[2] = triplestore.ID(v2)
		return k, b, nil
	}
	d2, b, err := rd.uv(b)
	if err != nil {
		return k, nil, err
	}
	if d2 > maxID-uint64(prev[2]) {
		return k, nil, fmt.Errorf("storage: run delta overflow")
	}
	k[2] = prev[2] + triplestore.ID(d2)
	return k, b, nil
}

// segRun is a decoded run header: its sparse index plus raw data, kept
// for point reads (matchLead) independent of the full decode.
type segRun struct {
	perm   triplestore.Perm
	count  int
	blocks []segBlock
	data   []byte
	// cacheSlots holds the run's published block-cache entries, one
	// atomic pointer per block (see blockcache.go). Allocated once at
	// construction so the probe hit path reads it without coordination;
	// copies of the segRun value share the backing array.
	cacheSlots []atomic.Pointer[blockEntry]
}

// newSegRun builds a run header with its cache slots.
func newSegRun(perm triplestore.Perm, count int, blocks []segBlock, data []byte) segRun {
	return segRun{
		perm: perm, count: count, blocks: blocks, data: data,
		cacheSlots: make([]atomic.Pointer[blockEntry], len(blocks)),
	}
}

// triples fully decodes the run.
func (r *segRun) triples() ([]triplestore.Triple, error) {
	rd := runDecoder{data: r.data, count: r.count}
	return rd.decodeAll(r.perm, make([]triplestore.Triple, 0, r.count))
}

// decodeBlock decodes the bi-th block of the run (segBlockSize triples,
// fewer for the last block) into subject-predicate-object triples in
// perm key order. Blocks restart delta encoding at an absolute key, so
// any block decodes independently of the ones before it.
func (r *segRun) decodeBlock(bi int) ([]triplestore.Triple, error) {
	start := bi * segBlockSize
	n := segBlockSize
	if start+n > r.count {
		n = r.count - start
	}
	end := len(r.data)
	if bi+1 < len(r.blocks) {
		end = r.blocks[bi+1].off
	}
	rd := runDecoder{data: r.data[r.blocks[bi].off:end], count: n}
	return rd.decodeAll(r.perm, make([]triplestore.Triple, 0, n))
}

// matchLead returns the run's triples whose leading component equals id,
// using the sparse block index to decode only the covering blocks. This
// is the segment-level point read the block index exists for.
func (r *segRun) matchLead(id triplestore.ID) ([]triplestore.Triple, error) {
	if len(r.blocks) == 0 {
		return nil, nil
	}
	// Matches may begin in the last block whose first key is strictly
	// below id (the run of id can start mid-block) and span every
	// following block whose first key is at most id.
	start := sort.Search(len(r.blocks), func(i int) bool { return r.blocks[i].key[0] >= id })
	if start > 0 {
		start--
	}
	var out []triplestore.Triple
	for bi := start; bi < len(r.blocks); bi++ {
		if r.blocks[bi].key[0] > id {
			break
		}
		blockStart := bi * segBlockSize
		n := segBlockSize
		if blockStart+n > r.count {
			n = r.count - blockStart
		}
		rd := runDecoder{data: r.data[r.blocks[bi].off:], count: n}
		b := rd.data
		var prev triplestore.Triple
		for i := 0; i < n; i++ {
			k, rest, err := rd.next(i, prev, b)
			if err != nil {
				return nil, err
			}
			prev, b = k, rest
			if k[0] == id {
				out = append(out, permUnkey(r.perm, k))
			} else if k[0] > id {
				return out, nil
			}
		}
	}
	return out, nil
}

// segment is a parsed segment file. An eager read (readSegment) decodes
// every run into segmentData.rels[i].runs; a lazy read (readSegmentLazy)
// leaves the runs nil and keeps only the raw delta-encoded bytes plus
// their sparse block indexes (rawRuns), mapped from the file — the
// segment-read path decodes blocks on demand from there. Tombstones and
// the dictionary/value sections are decoded in both modes (they are
// needed up front and are small relative to the runs).
type segment struct {
	segmentData
	file  string
	bytes int64
	// raw runs (with block indexes) per relation, same order as rels.
	rawRuns [][3]segRun
	// unmap releases the file mapping backing rawRuns (lazy reads only;
	// nil after an eager read). Call only once no reader can touch the
	// raw bytes again — Disk.Close after draining background work.
	unmap func()
}

// writeSegment renders sd into path (created fresh) and fsyncs it.
func writeSegment(path string, sd *segmentData) (int64, error) {
	b := make([]byte, 0, 1<<16)
	b = append(b, segMagic...)
	b = binary.LittleEndian.AppendUint32(b, segFormat)
	b = binary.LittleEndian.AppendUint64(b, sd.seq)
	b = binary.LittleEndian.AppendUint64(b, sd.walSeq)
	b = binary.AppendUvarint(b, uint64(sd.dictBase))
	b = binary.AppendUvarint(b, uint64(len(sd.names)))
	for _, n := range sd.names {
		b = appendString(b, n)
	}
	b = binary.AppendUvarint(b, uint64(len(sd.values)))
	for _, v := range sd.values {
		b = binary.AppendUvarint(b, uint64(v.id))
		if v.val == nil {
			b = append(b, 0)
			continue
		}
		b = append(b, 1)
		b = binary.AppendUvarint(b, uint64(len(v.val)))
		for _, f := range v.val {
			if f.Null {
				b = append(b, 1)
			} else {
				b = append(b, 0)
				b = appendString(b, f.Str)
			}
		}
	}
	b = binary.AppendUvarint(b, uint64(len(sd.rels)))
	for _, rel := range sd.rels {
		b = appendString(b, rel.name)
		for perm := triplestore.Perm(0); perm < 3; perm++ {
			run := rel.runs[perm]
			data, blocks := encodeRun(perm, run)
			b = binary.AppendUvarint(b, uint64(len(run)))
			b = binary.AppendUvarint(b, uint64(len(blocks)))
			for _, blk := range blocks {
				b = binary.AppendUvarint(b, uint64(blk.key[0]))
				b = binary.AppendUvarint(b, uint64(blk.key[1]))
				b = binary.AppendUvarint(b, uint64(blk.key[2]))
				b = binary.AppendUvarint(b, uint64(blk.off))
			}
			b = binary.AppendUvarint(b, uint64(len(data)))
			b = append(b, data...)
		}
		delData, _ := encodeRun(triplestore.SPO, rel.dels)
		b = binary.AppendUvarint(b, uint64(len(rel.dels)))
		b = binary.AppendUvarint(b, uint64(len(delData)))
		b = append(b, delData...)
	}
	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, walCRC))

	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, fmt.Errorf("storage: create segment: %w", err)
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		os.Remove(path)
		return 0, fmt.Errorf("storage: write segment: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return 0, fmt.Errorf("storage: sync segment: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return 0, fmt.Errorf("storage: close segment: %w", err)
	}
	return int64(len(b)), nil
}

type segCursor struct{ b []byte }

func (c *segCursor) uv() (uint64, error) {
	v, sz := binary.Uvarint(c.b)
	if sz <= 0 {
		return 0, fmt.Errorf("storage: corrupt segment varint")
	}
	c.b = c.b[sz:]
	return v, nil
}

func (c *segCursor) count() (int, error) {
	v, err := c.uv()
	if err != nil {
		return 0, err
	}
	if v > maxSegEntries || v > uint64(len(c.b))+1 {
		return 0, fmt.Errorf("storage: segment count %d exceeds file", v)
	}
	return int(v), nil
}

func (c *segCursor) str() (string, error) {
	s, rest, err := readString(c.b)
	if err != nil {
		return "", err
	}
	c.b = rest
	return s, nil
}

func (c *segCursor) byteVal() (byte, error) {
	if len(c.b) < 1 {
		return 0, fmt.Errorf("storage: truncated segment")
	}
	v := c.b[0]
	c.b = c.b[1:]
	return v, nil
}

func (c *segCursor) take(n int) ([]byte, error) {
	if n < 0 || n > len(c.b) {
		return nil, fmt.Errorf("storage: truncated segment data")
	}
	out := c.b[:n]
	c.b = c.b[n:]
	return out, nil
}

// readSegment loads and verifies the segment file at path, decoding
// every run into memory (the eager path used by unbounded-budget opens).
func readSegment(path string) (*segment, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("storage: read segment: %w", err)
	}
	return parseSegment(path, raw, true, nil)
}

// readSegmentLazy maps the segment file and verifies its checksum but
// does not decode the triple runs: the returned segment serves point
// reads and on-demand decodes from the mapped bytes (see segSource).
func readSegmentLazy(path string) (*segment, error) {
	raw, unmap, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	seg, err := parseSegment(path, raw, false, unmap)
	if err != nil {
		unmap()
		return nil, err
	}
	return seg, nil
}

// parseSegment verifies and decodes a segment image. With eager set the
// triple runs are fully decoded into rels[i].runs; otherwise only the
// run headers (counts, block indexes, raw data windows) are retained.
func parseSegment(path string, raw []byte, eager bool, unmap func()) (*segment, error) {
	if len(raw) < len(segMagic)+4+8+8+4 || string(raw[:len(segMagic)]) != segMagic {
		return nil, fmt.Errorf("storage: %s: not a segment file", path)
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.Checksum(body, walCRC) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("storage: %s: segment checksum mismatch", path)
	}
	seg := &segment{file: path, bytes: int64(len(raw)), unmap: unmap}
	if v := binary.LittleEndian.Uint32(body[8:12]); v != segFormat {
		return nil, fmt.Errorf("storage: %s: unsupported segment format %d", path, v)
	}
	seg.seq = binary.LittleEndian.Uint64(body[12:20])
	seg.walSeq = binary.LittleEndian.Uint64(body[20:28])
	c := &segCursor{b: body[28:]}

	dictBase, err := c.uv()
	if err != nil {
		return nil, err
	}
	seg.dictBase = int(dictBase)
	nNames, err := c.count()
	if err != nil {
		return nil, err
	}
	// Decode the dictionary delta in two passes: scan the length prefixes
	// to find the section's extent, convert the whole section to a single
	// string, then slice each name out of the shared backing. One
	// allocation for the entire dictionary instead of one per name — at a
	// million-plus names the per-string allocations (and the GC scan work
	// they induce) otherwise dominate cold-start recovery.
	scan := segCursor{b: c.b}
	for i := 0; i < nNames; i++ {
		n, err := scan.uv()
		if err != nil {
			return nil, err
		}
		if n > uint64(len(scan.b)) {
			return nil, fmt.Errorf("storage: corrupt string length")
		}
		scan.b = scan.b[n:]
	}
	all := string(c.b[:len(c.b)-len(scan.b)])
	seg.names = make([]string, 0, nNames)
	pos := 0
	for i := 0; i < nNames; i++ {
		before := len(c.b)
		n, err := c.uv()
		if err != nil {
			return nil, err
		}
		pos += before - len(c.b)
		seg.names = append(seg.names, all[pos:pos+int(n)])
		pos += int(n)
		c.b = c.b[n:]
	}
	nVals, err := c.count()
	if err != nil {
		return nil, err
	}
	seg.values = make([]segValue, 0, nVals)
	for i := 0; i < nVals; i++ {
		idv, err := c.uv()
		if err != nil {
			return nil, err
		}
		present, err := c.byteVal()
		if err != nil {
			return nil, err
		}
		sv := segValue{id: triplestore.ID(idv)}
		if present != 0 {
			nf, err := c.count()
			if err != nil {
				return nil, err
			}
			val := make(triplestore.Value, 0, nf)
			for j := 0; j < nf; j++ {
				isNull, err := c.byteVal()
				if err != nil {
					return nil, err
				}
				if isNull != 0 {
					val = append(val, triplestore.Null())
					continue
				}
				s, err := c.str()
				if err != nil {
					return nil, err
				}
				val = append(val, triplestore.F(s))
			}
			sv.val = val
		}
		seg.values = append(seg.values, sv)
	}
	nRels, err := c.count()
	if err != nil {
		return nil, err
	}
	for i := 0; i < nRels; i++ {
		name, err := c.str()
		if err != nil {
			return nil, err
		}
		var rel segRelation
		rel.name = name
		var raws [3]segRun
		for perm := triplestore.Perm(0); perm < 3; perm++ {
			count, err := c.count()
			if err != nil {
				return nil, err
			}
			nBlocks, err := c.count()
			if err != nil {
				return nil, err
			}
			if want := (count + segBlockSize - 1) / segBlockSize; nBlocks != want {
				return nil, fmt.Errorf("storage: %s: %d blocks for %d triples (want %d)", path, nBlocks, count, want)
			}
			blocks := make([]segBlock, 0, nBlocks)
			for j := 0; j < nBlocks; j++ {
				var k triplestore.Triple
				for x := 0; x < 3; x++ {
					v, err := c.uv()
					if err != nil {
						return nil, err
					}
					k[x] = triplestore.ID(v)
				}
				off, err := c.uv()
				if err != nil {
					return nil, err
				}
				blocks = append(blocks, segBlock{key: k, off: int(off)})
			}
			dataLen, err := c.count()
			if err != nil {
				return nil, err
			}
			data, err := c.take(dataLen)
			if err != nil {
				return nil, err
			}
			raws[perm] = newSegRun(perm, count, blocks, data)
			if eager {
				ts, err := raws[perm].triples()
				if err != nil {
					return nil, fmt.Errorf("storage: %s: relation %q %v run: %w", path, name, perm, err)
				}
				rel.runs[perm] = ts
			}
		}
		nDels, err := c.count()
		if err != nil {
			return nil, err
		}
		delLen, err := c.count()
		if err != nil {
			return nil, err
		}
		delData, err := c.take(delLen)
		if err != nil {
			return nil, err
		}
		rd := runDecoder{data: delData, count: nDels}
		dels, err := rd.decodeAll(triplestore.SPO, make([]triplestore.Triple, 0, nDels))
		if err != nil {
			return nil, fmt.Errorf("storage: %s: relation %q tombstones: %w", path, name, err)
		}
		rel.dels = dels
		for p := range raws {
			if raws[p].count != raws[0].count {
				return nil, fmt.Errorf("storage: %s: relation %q run lengths disagree", path, name)
			}
		}
		seg.rels = append(seg.rels, rel)
		seg.rawRuns = append(seg.rawRuns, raws)
	}
	if len(c.b) != 0 {
		return nil, fmt.Errorf("storage: %s: %d trailing bytes", path, len(c.b))
	}
	return seg, nil
}
