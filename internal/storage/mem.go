package storage

import (
	"io"

	"repro/internal/triplestore"
)

// Mem is the in-memory storage engine: a thin adapter over
// *triplestore.Store with no durability. It preserves the exact
// semantics every query route ran on before the seam existed.
type Mem struct {
	store *triplestore.Store
}

// NewMem wraps an existing store (a fresh one when s is nil).
func NewMem(s *triplestore.Store) *Mem {
	if s == nil {
		s = triplestore.NewStore()
	}
	return &Mem{store: s}
}

// Store returns the underlying live store.
func (m *Mem) Store() *triplestore.Store { return m.store }

// Snapshot returns an immutable copy-on-write view.
func (m *Mem) Snapshot() *triplestore.Store { return m.store.Snapshot() }

// Pin returns a snapshot; there are no files to retain, so the release
// handle is a no-op and the generation is always 0.
func (m *Mem) Pin() *Pin {
	return &Pin{Store: m.store.Snapshot()}
}

// Version returns the store version.
func (m *Mem) Version() uint64 { return m.store.Version() }

// ApplyBatch applies one atomic batch.
func (m *Mem) ApplyBatch(ops []triplestore.Op) (triplestore.BatchResult, error) {
	return m.store.ApplyBatch(ops)
}

// ApplyNDJSON streams a batch in bounded chunks.
func (m *Mem) ApplyNDJSON(r io.Reader, defaultRel string) (triplestore.BatchResult, error) {
	return m.store.ApplyNDJSON(r, defaultRel)
}

// SetValue assigns ρ(name) = v.
func (m *Mem) SetValue(name string, v triplestore.Value) error {
	m.store.SetValue(name, v)
	return nil
}

// Flush is a no-op: there is nothing to persist.
func (m *Mem) Flush() error { return nil }

// Stats reports the backend name; all durability counters are zero.
func (m *Mem) Stats() Stats { return Stats{Backend: "mem"} }

// Close is a no-op.
func (m *Mem) Close() error { return nil }

var _ Engine = (*Mem)(nil)
