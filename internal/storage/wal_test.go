package storage

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/triplestore"
)

func TestWALAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := createWAL(path, SyncAlways, 0)
	if err != nil {
		t.Fatal(err)
	}
	batches := [][]triplestore.Op{
		{{Rel: "E", S: "a", P: "p", O: "b"}},
		{{Rel: "E", S: "b", P: "p", O: "c"}, {Delete: true, Rel: "E", S: "a", P: "p", O: "b"}},
	}
	for _, ops := range batches {
		if _, err := w.append(encodeBatch(ops)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.append(encodeValue("a", triplestore.Value{triplestore.F("v"), triplestore.Null()})); err != nil {
		t.Fatal(err)
	}
	if _, err := w.append(encodeValue("b", nil)); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	var entries []walEntry
	var seqs []uint64
	validSize, lastSeq, n, err := replayWAL(path, func(seq uint64, payload []byte) error {
		ent, derr := decodeWALEntry(payload)
		if derr != nil {
			return derr
		}
		entries = append(entries, ent)
		seqs = append(seqs, seq)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if n != 4 || lastSeq != 4 {
		t.Fatalf("replayed %d records, lastSeq %d; want 4, 4", n, lastSeq)
	}
	fi, _ := os.Stat(path)
	if validSize != fi.Size() {
		t.Fatalf("validSize %d, file size %d", validSize, fi.Size())
	}
	if !reflect.DeepEqual(seqs, []uint64{1, 2, 3, 4}) {
		t.Fatalf("seqs = %v", seqs)
	}
	if !reflect.DeepEqual(entries[0].ops, batches[0]) || !reflect.DeepEqual(entries[1].ops, batches[1]) {
		t.Fatalf("batch payloads did not round-trip: %+v", entries[:2])
	}
	if entries[2].name != "a" || !entries[2].val.Equal(triplestore.Value{triplestore.F("v"), triplestore.Null()}) {
		t.Fatalf("value payload did not round-trip: %+v", entries[2])
	}
	if entries[3].name != "b" || !entries[3].nilV {
		t.Fatalf("nil-value payload did not round-trip: %+v", entries[3])
	}
}

func TestWALTornTailStopsAtBoundary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := createWAL(path, SyncNone, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := w.append(encodeBatch([]triplestore.Op{{Rel: "E", S: "s", P: "p", O: "o"}})); err != nil {
			t.Fatal(err)
		}
	}
	boundary := w.bytes
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: garbage past the last record.
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	f.Write([]byte{0x10, 0, 0, 0, 0xde, 0xad})
	f.Close()

	validSize, lastSeq, n, err := replayWAL(path, func(uint64, []byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || lastSeq != 3 || validSize != boundary {
		t.Fatalf("n=%d lastSeq=%d validSize=%d; want 3, 3, %d", n, lastSeq, validSize, boundary)
	}
	// Reopen for append: the torn tail is truncated, a new record lands
	// on a clean boundary and replays.
	w2, err := openWALForAppend(path, SyncNone, validSize, lastSeq)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w2.append(encodeBatch([]triplestore.Op{{Rel: "E", S: "x", P: "p", O: "y"}})); err != nil {
		t.Fatal(err)
	}
	w2.close()
	_, lastSeq, n, err = replayWAL(path, func(uint64, []byte) error { return nil })
	if err != nil || n != 4 || lastSeq != 4 {
		t.Fatalf("after reopen: n=%d lastSeq=%d err=%v; want 4, 4, nil", n, lastSeq, err)
	}
}

// flakyWriter fails the nth Write call after writing a partial prefix.
type flakyWriter struct {
	f       *os.File
	calls   int
	failOn  int
	partial int
}

var errInjected = errors.New("injected write failure")

func (fw *flakyWriter) Write(p []byte) (int, error) {
	fw.calls++
	if fw.calls == fw.failOn {
		n := fw.partial
		if n > len(p) {
			n = len(p)
		}
		fw.f.Write(p[:n])
		return n, errInjected
	}
	return fw.f.Write(p)
}

func TestWALAppendErrorRollsBackPartialRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := createWAL(path, SyncAlways, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.append(encodeBatch([]triplestore.Op{{Rel: "E", S: "a", P: "p", O: "b"}})); err != nil {
		t.Fatal(err)
	}
	fw := &flakyWriter{f: w.f, failOn: 1, partial: 7}
	w.w = fw
	if _, err := w.append(encodeBatch([]triplestore.Op{{Rel: "E", S: "c", P: "p", O: "d"}})); !errors.Is(err, errInjected) {
		t.Fatalf("append error = %v, want injected", err)
	}
	if w.broken {
		t.Fatal("rollback should have succeeded")
	}
	w.w = w.f
	if _, err := w.append(encodeBatch([]triplestore.Op{{Rel: "E", S: "e", P: "p", O: "f"}})); err != nil {
		t.Fatal(err)
	}
	w.close()

	var got [][]triplestore.Op
	_, _, n, err := replayWAL(path, func(_ uint64, payload []byte) error {
		ent, derr := decodeWALEntry(payload)
		if derr != nil {
			return derr
		}
		got = append(got, ent.ops)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || got[0][0].S != "a" || got[1][0].S != "e" {
		t.Fatalf("replayed %d records %v; want the two committed ones", n, got)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	if p, err := ParseSyncPolicy("always"); err != nil || p != SyncAlways {
		t.Fatalf("always: %v %v", p, err)
	}
	if p, err := ParseSyncPolicy("none"); err != nil || p != SyncNone {
		t.Fatalf("none: %v %v", p, err)
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("want error for unknown policy")
	}
}
