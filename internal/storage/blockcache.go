package storage

import (
	"sync"
	"sync/atomic"

	"repro/internal/triplestore"
)

// The block cache keeps recently decoded 1024-triple blocks on the heap
// so repeated point probes against a cold relation stop paying the
// delta-decode on every hit. Without it a warm probe costs a full block
// decode (~3000 varints); with it the probe is two binary searches over
// resident memory — the difference between ~50x and ~2x of the
// materialized path. The cache is engine-wide (one per Disk opened with
// a read budget), byte-capped at probeCacheBytes, and uses clock
// (second-chance) eviction.
//
// Entries live in per-run slot arrays (segRun.cacheSlots, one atomic
// pointer per block, allocated at run construction), so the hit path is
// an array index plus an atomic load — no lock, no map. The cache's own
// mutex guards only the miss path: the eviction ring, the byte count,
// and entry publication. A run's entries simply age out after the run
// is promoted or compacted away: the clock hand reclaims anything whose
// referenced bit has not been set since the last sweep. Cached slices
// are immutable once published — matchLeadCached returns subslices of
// them, so callers share the read-only convention of Index.Match.

// probeCacheBytes caps the decoded-block cache. Sized to hold one
// million-triple permutation run (~12 MiB decoded) with room to spare,
// and counted against the engine's heap by the bounded-RAM bench gate.
const probeCacheBytes = 16 << 20

// blockEntryOverhead approximates the per-entry bookkeeping cost (entry
// struct, slice header, ring slot) added to the triple bytes.
const blockEntryOverhead = 64

type blockKey struct {
	run *segRun
	idx int
}

type blockEntry struct {
	ts  []triplestore.Triple
	sz  int64
	ref atomic.Bool // referenced since the last clock sweep
}

type blockCache struct {
	cap    int64
	hits   atomic.Uint64
	misses atomic.Uint64

	mu    sync.Mutex
	ring  []blockKey // unordered clock ring over the published entries
	hand  int
	bytes int64
}

func newBlockCache(capBytes int64) *blockCache {
	return &blockCache{cap: capBytes}
}

// get returns the cached decode of run block bi, or nil. Lock-free.
func (c *blockCache) get(r *segRun, bi int) []triplestore.Triple {
	if r.cacheSlots != nil {
		if e := r.cacheSlots[bi].Load(); e != nil {
			if !e.ref.Load() { // write the ref bit only on transition
				e.ref.Store(true)
			}
			c.hits.Add(1)
			return e.ts
		}
	}
	c.misses.Add(1)
	return nil
}

// put publishes a decoded block, evicting clock-unreferenced entries
// until it fits. A block larger than the whole cache is not admitted
// (the decode stays transient); a slot raced in by another goroutine
// wins and the local copy is dropped.
func (c *blockCache) put(r *segRun, bi int, ts []triplestore.Triple) {
	const tripleBytes = 12 // [3]uint32
	if r.cacheSlots == nil {
		return
	}
	sz := int64(len(ts))*tripleBytes + blockEntryOverhead
	if sz > c.cap {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if r.cacheSlots[bi].Load() != nil {
		return
	}
	for c.bytes+sz > c.cap && len(c.ring) > 0 {
		vk := c.ring[c.hand]
		ve := vk.run.cacheSlots[vk.idx].Load()
		if ve != nil && ve.ref.Swap(false) { // second chance; a full sweep clears every bit
			c.hand = (c.hand + 1) % len(c.ring)
			continue
		}
		if ve != nil {
			vk.run.cacheSlots[vk.idx].Store(nil)
			c.bytes -= ve.sz
		}
		c.ring[c.hand] = c.ring[len(c.ring)-1]
		c.ring = c.ring[:len(c.ring)-1]
		if c.hand >= len(c.ring) {
			c.hand = 0
		}
	}
	r.cacheSlots[bi].Store(&blockEntry{ts: ts, sz: sz})
	c.ring = append(c.ring, blockKey{run: r, idx: bi})
	c.bytes += sz
}

// stats returns (bytes, hits, misses) for ResidencyStats.
func (c *blockCache) stats() (int64, uint64, uint64) {
	c.mu.Lock()
	b := c.bytes
	c.mu.Unlock()
	return b, c.hits.Load(), c.misses.Load()
}

// matchLeadCached is matchLead through the block cache: covering blocks
// come from c when warm (then the id's span is found by binary search)
// and are decoded-and-published on miss. A match confined to one block
// returns a subslice of the cached decode — zero-copy, which is what
// keeps a warm probe within sight of a materialized one. The binary
// searches are hand-rolled: sort.Search's per-iteration closure call is
// measurable at this granularity. A nil cache degrades to the uncached
// matchLead.
func (r *segRun) matchLeadCached(id triplestore.ID, c *blockCache) ([]triplestore.Triple, error) {
	if c == nil {
		return r.matchLead(id)
	}
	if len(r.blocks) == 0 {
		return nil, nil
	}
	// Same block range as matchLead: the id's run may start mid-block in
	// the last block whose first key is strictly below it.
	lo, hi := 0, len(r.blocks)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.blocks[mid].key[0] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	start := lo
	if start > 0 {
		start--
	}
	lead := r.perm.Lead()
	var out []triplestore.Triple
	single := true
	for bi := start; bi < len(r.blocks); bi++ {
		if r.blocks[bi].key[0] > id {
			break
		}
		ts := c.get(r, bi)
		if ts == nil {
			var err error
			if ts, err = r.decodeBlock(bi); err != nil {
				return nil, err
			}
			c.put(r, bi, ts)
		}
		lo, hi := 0, len(ts)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if ts[mid][lead] < id {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		hi = lo
		for hi < len(ts) && ts[hi][lead] == id {
			hi++
		}
		if lo == hi {
			continue
		}
		if out == nil {
			out = ts[lo:hi:hi]
		} else {
			if single { // span crosses blocks: stop aliasing the cache
				out = append([]triplestore.Triple(nil), out...)
				single = false
			}
			out = append(out, ts[lo:hi]...)
		}
		if hi < len(ts) { // the id's span ended inside this block
			break
		}
	}
	return out, nil
}
