package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/triplestore"
)

// copyDirShallow clones a storage directory so a "crashed" copy can be
// mangled without disturbing the live engine.
func copyDirShallow(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		data, err := os.ReadFile(filepath.Join(src, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, ent.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// scriptBatches returns a deterministic sequence of small batches with
// inserts and deletes across two relations.
func scriptBatches(n int) [][]triplestore.Op {
	var batches [][]triplestore.Op
	for b := 0; b < n; b++ {
		ops := []triplestore.Op{
			{Rel: "E", S: fmt.Sprintf("a%d", b), P: "p", O: fmt.Sprintf("a%d", b+1)},
			{Rel: "F", S: fmt.Sprintf("a%d", b+1), P: "q", O: "hub"},
		}
		if b > 0 {
			ops = append(ops, triplestore.Op{Delete: true, Rel: "E",
				S: fmt.Sprintf("a%d", b-1), P: "p", O: fmt.Sprintf("a%d", b)})
		}
		batches = append(batches, ops)
	}
	return batches
}

// TestRecoveryTruncationSweep cuts the WAL at every byte offset and
// reopens. Recovery must land exactly on the last batch boundary that
// fits in the prefix: no partial batches, no lost committed batches.
func TestRecoveryTruncationSweep(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(dir, WithSyncPolicy(SyncNone), WithFlushBytes(1<<30))
	if err != nil {
		t.Fatal(err)
	}
	batches := scriptBatches(6)
	for _, ops := range batches {
		if _, err := eng.ApplyBatch(ops); err != nil {
			t.Fatal(err)
		}
	}
	walFile := eng.man.WALFile
	walSize := eng.wal.bytes
	// Simulate a crash: copy the dir with the engine still open (no
	// Close, so nothing is flushed to segments — all state is WAL).
	crashed := copyDirShallow(t, dir)
	eng.Close()

	// Reference stores: state after each committed batch prefix.
	refs := make([]*triplestore.Store, len(batches)+1)
	mem := NewMem(nil)
	refs[0] = mem.Store().Clone()
	for i, ops := range batches {
		if _, err := mem.ApplyBatch(ops); err != nil {
			t.Fatal(err)
		}
		refs[i+1] = mem.Store().Clone()
	}

	walData, err := os.ReadFile(filepath.Join(crashed, walFile))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(walData)) != walSize {
		t.Fatalf("wal copy is %d bytes, engine wrote %d", len(walData), walSize)
	}
	for cut := 0; cut <= len(walData); cut++ {
		work := copyDirShallow(t, crashed)
		if err := os.WriteFile(filepath.Join(work, walFile), walData[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := Open(work)
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		n := re.Stats().WALReplayed
		if int(n) > len(batches) {
			t.Fatalf("cut %d: replayed %d records, only %d written", cut, n, len(batches))
		}
		assertStoresEqual(t, re.Store(), refs[n])
		re.Close()
	}
}

// TestRecoveryMidBatchWriteFailure injects a write error mid-record.
// The batch must fail, the in-memory store must be untouched, and the
// engine must keep working — and recover to the same state on reopen.
func TestRecoveryMidBatchWriteFailure(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(dir, WithSyncPolicy(SyncNone), WithFlushBytes(1<<30))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ApplyBatch([]triplestore.Op{{Rel: "E", S: "a", P: "p", O: "b"}}); err != nil {
		t.Fatal(err)
	}
	version := eng.Version()
	size := eng.Store().Size()

	fw := &flakyWriter{f: eng.wal.f, failOn: 1, partial: 11}
	eng.wal.w = fw
	_, err = eng.ApplyBatch([]triplestore.Op{{Rel: "E", S: "poison", P: "p", O: "pill"}})
	if !errors.Is(err, errInjected) {
		t.Fatalf("ApplyBatch error = %v, want injected", err)
	}
	if eng.Version() != version || eng.Store().Size() != size {
		t.Fatal("failed batch mutated the store")
	}
	if eng.Store().Lookup("poison") != triplestore.NoID {
		t.Fatal("failed batch interned a name")
	}
	eng.wal.w = eng.wal.f

	if _, err := eng.ApplyBatch([]triplestore.Op{{Rel: "E", S: "c", P: "p", O: "d"}}); err != nil {
		t.Fatalf("engine did not survive the injected failure: %v", err)
	}
	ref := eng.Store().Clone()
	crashed := copyDirShallow(t, dir)
	eng.Close()

	re, err := Open(crashed)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Stats().WALReplayed != 2 {
		t.Fatalf("replayed %d records, want the 2 committed ones", re.Stats().WALReplayed)
	}
	assertStoresEqual(t, re.Store(), ref)
}

// TestRecoveryMidFlushCrash simulates dying between segment write and
// manifest swap: an orphan segment (complete or partial) exists on disk
// but the manifest never adopted it. Reopen must ignore and remove the
// orphan and recover purely from manifest + WAL.
func TestRecoveryMidFlushCrash(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(dir, WithSyncPolicy(SyncNone))
	if err != nil {
		t.Fatal(err)
	}
	applyScript(t, eng, 21, 5, 20)
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	eng.mu.Lock()
	if err := eng.flushLocked(); err != nil { // ensure at least one real segment
		eng.mu.Unlock()
		t.Fatal(err)
	}
	eng.mu.Unlock()
	applyScript(t, eng, 22, 2, 10) // leave a WAL tail past the flush
	ref := eng.Store().Clone()
	crashed := copyDirShallow(t, dir)
	eng.Close()

	// Orphans a crash could leave behind: a partial segment write, a
	// stale WAL from the pre-flush generation, a manifest temp file.
	orphanSeg := filepath.Join(crashed, segFileName(99))
	os.WriteFile(orphanSeg, []byte("TRISEG1\npartial garbage"), 0o644)
	orphanWAL := filepath.Join(crashed, walFileName(99))
	os.WriteFile(orphanWAL, []byte{1, 2, 3}, 0o644)
	orphanTmp := filepath.Join(crashed, "MANIFEST.tmp12345")
	os.WriteFile(orphanTmp, []byte("{"), 0o644)

	re, err := Open(crashed)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	assertStoresEqual(t, re.Store(), ref)
	for _, orphan := range []string{orphanSeg, orphanWAL, orphanTmp} {
		if _, err := os.Stat(orphan); !os.IsNotExist(err) {
			t.Fatalf("orphan %s survived recovery", orphan)
		}
	}
}

// TestRecoveryCorruptionFailsLoudly: damage to a manifest-referenced
// segment or to the manifest itself must fail Open, never silently
// load wrong data.
func TestRecoveryCorruptionFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	eng, err := Open(dir, WithSyncPolicy(SyncNone))
	if err != nil {
		t.Fatal(err)
	}
	applyScript(t, eng, 31, 4, 25)
	if err := eng.Close(); err != nil { // Close flushes a segment
		t.Fatal(err)
	}
	man, ok, err := readManifest(dir)
	if err != nil || !ok || len(man.Segments) == 0 {
		t.Fatalf("manifest: %+v ok=%v err=%v", man, ok, err)
	}

	segCopy := copyDirShallow(t, dir)
	segPath := filepath.Join(segCopy, man.Segments[0].File)
	raw, _ := os.ReadFile(segPath)
	raw[len(raw)/2] ^= 0x40
	os.WriteFile(segPath, raw, 0o644)
	if _, err := Open(segCopy); err == nil {
		t.Fatal("Open succeeded on a corrupt segment")
	}

	manCopy := copyDirShallow(t, dir)
	os.WriteFile(filepath.Join(manCopy, manifestName), []byte("not json"), 0o644)
	if _, err := Open(manCopy); err == nil {
		t.Fatal("Open succeeded on a corrupt manifest")
	}

	missingCopy := copyDirShallow(t, dir)
	os.Remove(filepath.Join(missingCopy, man.Segments[0].File))
	if _, err := Open(missingCopy); err == nil {
		t.Fatal("Open succeeded with a manifest-referenced segment missing")
	}
}
