//go:build unix

package storage

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps the file at path read-only and returns its contents plus
// an unmap function. The mapping is private to the process and survives
// unlink (POSIX), so compaction may delete a segment file while cold
// readers still hold its pages; the kernel reclaims them at unmap. The
// returned bytes live outside the Go heap — a store served from mapped
// segments does not charge its segment bytes against GOMEMLIMIT, which
// is what lets a bounded-memory process query a dataset larger than its
// heap ceiling.
//
// Empty files map to an empty slice with a no-op unmap (mmap of length
// zero is an error on most platforms).
func mapFile(path string) ([]byte, func(), error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("storage: map segment: %w", err)
	}
	defer f.Close() // the mapping outlives the descriptor
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, fmt.Errorf("storage: map segment: %w", err)
	}
	size := fi.Size()
	if size == 0 {
		return nil, func() {}, nil
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("storage: map segment: %s too large", path)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("storage: mmap %s: %w", path, err)
	}
	return data, func() { _ = syscall.Munmap(data) }, nil
}
