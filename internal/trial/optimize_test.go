package trial

import (
	"math/rand"
	"testing"
)

func TestOptimizeFusesSelections(t *testing.T) {
	e := MustSelect(MustSelect(R("E"), Cond{Obj: []ObjAtom{Eq(P(L1), P(L2))}}),
		Cond{Obj: []ObjAtom{Neq(P(L2), P(L3))}})
	o := Optimize(e)
	sel, ok := o.(Select)
	if !ok {
		t.Fatalf("optimized to %T (%s)", o, o)
	}
	if len(sel.Cond.Obj) != 2 {
		t.Errorf("conditions not fused: %s", o)
	}
	if _, nested := sel.E.(Select); nested {
		t.Errorf("nested selection survived: %s", o)
	}
}

func TestOptimizeDropsEmptySelection(t *testing.T) {
	e := MustSelect(R("E"), Cond{})
	if got := Optimize(e); got.String() != "E" {
		t.Errorf("Optimize = %s", got)
	}
}

func TestOptimizePushesIntoJoin(t *testing.T) {
	join := Example2("E") // out = (1, 3', 3)
	sel := MustSelect(join, Cond{Obj: []ObjAtom{Eq(P(L2), Obj("NatExpress"))}})
	o := Optimize(sel)
	j, ok := o.(Join)
	if !ok {
		t.Fatalf("optimized to %T (%s)", o, o)
	}
	// The selection on output position 2 must now constrain join position
	// 3' (the second output slot of Example 2).
	found := false
	for _, a := range j.Cond.Obj {
		if !a.L.IsConst && a.L.Pos == R3 && a.R.IsConst && a.R.Name == "NatExpress" {
			found = true
		}
	}
	if !found {
		t.Errorf("selection not reindexed into join: %s", o)
	}
}

func TestOptimizeUnionIdempotence(t *testing.T) {
	e := Union{L: Example2("E"), R: Example2("E")}
	if _, ok := Optimize(e).(Join); !ok {
		t.Errorf("duplicate union not collapsed: %s", Optimize(e))
	}
}

// TestOptimizePreservesSemantics is the equivalence property test: the
// optimized expression computes the same relation, under all three
// evaluation strategies.
func TestOptimizePreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 250; i++ {
		s := randStore(rng, 4+rng.Intn(5), 3+rng.Intn(12))
		e := randExprT(rng, 4)
		o := Optimize(e)
		want := mustEval(t, NewEvaluator(s), e)
		hash := mustEval(t, NewEvaluator(s), o)
		if !hash.Equal(want) {
			t.Fatalf("optimizer changed semantics (hash)\noriginal: %s\noptimized: %s", e, o)
		}
		naive := NewEvaluator(s)
		naive.Mode = ModeNaive
		nv := mustEval(t, naive, o)
		if !nv.Equal(want) {
			t.Fatalf("optimizer changed semantics (naive)\noriginal: %s\noptimized: %s", e, o)
		}
	}
}

func TestOptimizeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for i := 0; i < 100; i++ {
		e := randExprT(rng, 4)
		once := Optimize(e)
		twice := Optimize(once)
		if once.String() != twice.String() {
			t.Fatalf("optimizer not idempotent:\nonce: %s\ntwice: %s", once, twice)
		}
	}
}

func TestSemijoin(t *testing.T) {
	s := transport()
	ev := NewEvaluator(s)
	// Triples whose predicate has a part_of parent.
	semi := Semijoin(R("E"), Cond{Obj: []ObjAtom{
		Eq(P(L2), P(R1)),
		Eq(P(R2), Obj("part_of")),
	}}, R("E"))
	r := mustEval(t, ev, semi)
	// Exactly the three city/service/city triples plus (EastCoast, ...)? —
	// triples whose middle object is the subject of a part_of triple:
	// the three service edges (their operators have part_of) …
	wantExactly(t, s, r, [][3]string{
		{"St. Andrews", "Bus Op 1", "Edinburgh"},
		{"Edinburgh", "Train Op 1", "London"},
		{"London", "Train Op 2", "Brussels"},
	})
	anti := Antijoin(R("E"), Cond{Obj: []ObjAtom{
		Eq(P(L2), P(R1)),
		Eq(P(R2), Obj("part_of")),
	}}, R("E"))
	ra := mustEval(t, ev, anti)
	if ra.Len() != 4 {
		t.Errorf("antijoin size = %d, want 4 (the part_of triples)", ra.Len())
	}
}

func TestSemijoinOnly(t *testing.T) {
	semi := Semijoin(R("E"), Cond{}, R("F"))
	if !SemijoinOnly(semi) {
		t.Error("semijoin should be in the fragment")
	}
	if !SemijoinOnly(Antijoin(R("E"), Cond{}, R("F"))) {
		t.Error("antijoin should be in the fragment")
	}
	if SemijoinOnly(Example2("E")) {
		t.Error("general join should not be in the fragment")
	}
	if SemijoinOnly(ReachRight("E")) {
		t.Error("stars should not be in the fragment")
	}
}
