package trial

// Optimize applies semantics-preserving algebraic rewrites to an
// expression. The paper's algorithms treat the expression as given; these
// rewrites are the obvious engineering layer on top:
//
//   - σ_c2(σ_c1(e))           → σ_{c1∧c2}(e)         (selection fusion)
//   - σ_∅(e)                  → e                    (trivial selection)
//   - σ_c(e1 ∪ e2)            → σ_c(e1) ∪ σ_c(e2)    (pushdown)
//   - σ_c(e1 − e2)            → σ_c(e1) − e2         (pushdown)
//   - σ_c(e1 ✶^{out}_θ e2)    → e1 ✶^{out}_{θ∧c′} e2 (fusion into the join,
//     with c′ = c re-indexed through the join's output positions)
//   - e ∪ e                   → e                    (syntactic idempotence)
//
// Fusing selections into joins matters beyond constant factors: equality
// atoms that reach the join condition become hash keys for the
// Proposition 4 strategy, turning filter-after-join into an indexed join.
//
// This is the minimal, dependency-free rewriter kept with the reference
// implementation. The production query stack uses internal/optimizer — a
// superset of these rules with statistics-driven cost-based rewrites,
// projection and star identities, and a rewrite trace.
func Optimize(e Expr) Expr {
	switch x := e.(type) {
	case Rel, Universe:
		return e
	case Select:
		inner := Optimize(x.E)
		if x.Cond.Empty() {
			return inner
		}
		switch child := inner.(type) {
		case Select:
			return Optimize(Select{E: child.E, Cond: mergeConds(child.Cond, x.Cond)})
		case Union:
			return Union{
				L: Optimize(Select{E: child.L, Cond: x.Cond}),
				R: Optimize(Select{E: child.R, Cond: x.Cond}),
			}
		case Diff:
			return Diff{
				L: Optimize(Select{E: child.L, Cond: x.Cond}),
				R: child.R,
			}
		case Join:
			return Join{
				L:    child.L,
				R:    child.R,
				Out:  child.Out,
				Cond: mergeConds(child.Cond, reindexThroughOut(x.Cond, child.Out)),
			}
		}
		return Select{E: inner, Cond: x.Cond}
	case Union:
		l, r := Optimize(x.L), Optimize(x.R)
		if l.String() == r.String() {
			return l
		}
		return Union{L: l, R: r}
	case Diff:
		return Diff{L: Optimize(x.L), R: Optimize(x.R)}
	case Join:
		return Join{L: Optimize(x.L), R: Optimize(x.R), Out: x.Out, Cond: x.Cond}
	case Star:
		return Star{E: Optimize(x.E), Out: x.Out, Cond: x.Cond, Left: x.Left}
	}
	return e
}

func mergeConds(a, b Cond) Cond {
	return Cond{
		Obj: append(append([]ObjAtom{}, a.Obj...), b.Obj...),
		Val: append(append([]ValAtom{}, a.Val...), b.Val...),
	}
}

// reindexThroughOut maps a selection condition over a join's *output*
// positions (1, 2, 3) to the join's *input* positions, using the output
// projection: output position i is fed from out[i].
func reindexThroughOut(c Cond, out [3]Pos) Cond {
	mapTerm := func(t ObjTerm) ObjTerm {
		if t.IsConst {
			return t
		}
		return P(out[t.Pos.Index()])
	}
	mapVTerm := func(t ValTerm) ValTerm {
		if t.IsLit {
			return t
		}
		return RhoP(out[t.Pos.Index()])
	}
	var c2 Cond
	for _, a := range c.Obj {
		c2.Obj = append(c2.Obj, ObjAtom{L: mapTerm(a.L), R: mapTerm(a.R), Neq: a.Neq})
	}
	for _, a := range c.Val {
		c2.Val = append(c2.Val, ValAtom{L: mapVTerm(a.L), R: mapVTerm(a.R), Neq: a.Neq, Component: a.Component})
	}
	return c2
}

// Semijoin builds e1 ⋉_{θ,η} e2: the triples of e1 for which some triple
// of e2 satisfies the condition. In TriAL this is simply the join that
// keeps positions 1, 2, 3 — closure makes semijoins a derived operator,
// which is why the paper's §7 can ask about the semijoin-only fragment
// (related to the guarded fragment of FO) as a *restriction* of the
// algebra.
func Semijoin(l Expr, c Cond, r Expr) Join {
	return MustJoin(l, [3]Pos{L1, L2, L3}, c, r)
}

// Antijoin builds e1 − (e1 ⋉_{θ,η} e2): the triples of e1 with no
// matching triple in e2.
func Antijoin(l Expr, c Cond, r Expr) Diff {
	return Diff{L: l, R: Semijoin(l, c, r)}
}

// SemijoinOnly reports whether the expression lies in the semijoin
// fragment the paper's conclusion proposes: every join keeps exactly the
// left operand's positions (1, 2, 3) in order. Selections, unions and
// differences are allowed; stars and general joins are not.
func SemijoinOnly(e Expr) bool {
	switch x := e.(type) {
	case Rel, Universe:
		return true
	case Select:
		return SemijoinOnly(x.E)
	case Union:
		return SemijoinOnly(x.L) && SemijoinOnly(x.R)
	case Diff:
		return SemijoinOnly(x.L) && SemijoinOnly(x.R)
	case Join:
		return x.Out == [3]Pos{L1, L2, L3} && SemijoinOnly(x.L) && SemijoinOnly(x.R)
	case Star:
		return false
	}
	return false
}
