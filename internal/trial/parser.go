package trial

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/triplestore"
)

// Parse parses the textual TriAL* syntax produced by Expr.String:
//
//	expr  := U | name | "quoted name"
//	       | sigma[cond](expr)
//	       | union(expr, expr) | diff(expr, expr) | inter(expr, expr)
//	       | comp(expr)
//	       | join[i,j,k; cond](expr, expr)
//	       | rstar[i,j,k; cond](expr)       // (e ✶)*
//	       | lstar[i,j,k; cond](expr)       // (✶ e)*
//	cond  := atom ("," atom)*
//	atom  := term (= | !=) term             // θ: object condition
//	       | vterm (= | !=) vterm [@N]      // η: data condition
//	term  := 1 | 2 | 3 | 1' | 2' | 3' | name | "quoted name"
//	vterm := p(position) | "literal"
//
// Inside conditions the bare tokens 1, 2, 3, 1', 2', 3' denote positions;
// quote an object name consisting of such a digit to use it as a constant.
func Parse(input string) (Expr, error) {
	p := &parser{lex: newLexer(input)}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if tok := p.lex.peek(); tok.kind != tokEOF {
		return nil, fmt.Errorf("trial: unexpected trailing input %q", tok.text)
	}
	return e, nil
}

// MustParse is Parse, panicking on error. For statically known expressions.
func MustParse(input string) Expr {
	e, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return e
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokString
	tokPunct // one of [ ] ( ) , ; = @ and != as a unit
)

type token struct {
	kind tokKind
	text string
}

type lexer struct {
	in   string
	pos  int
	tok  token
	errs []string
}

func newLexer(in string) *lexer {
	l := &lexer{in: in}
	l.advance()
	return l
}

func (l *lexer) peek() token { return l.tok }

func (l *lexer) next() token {
	t := l.tok
	l.advance()
	return t
}

func (l *lexer) advance() {
	for l.pos < len(l.in) && unicode.IsSpace(rune(l.in[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.in) {
		l.tok = token{kind: tokEOF}
		return
	}
	c := l.in[l.pos]
	switch {
	case c == '"':
		j := strings.IndexByte(l.in[l.pos+1:], '"')
		if j < 0 {
			l.errs = append(l.errs, "unterminated string")
			l.tok = token{kind: tokEOF}
			return
		}
		l.tok = token{kind: tokString, text: l.in[l.pos+1 : l.pos+1+j]}
		l.pos += j + 2
	case strings.IndexByte("[](),;=@", c) >= 0:
		l.tok = token{kind: tokPunct, text: string(c)}
		l.pos++
	case c == '!':
		if l.pos+1 < len(l.in) && l.in[l.pos+1] == '=' {
			l.tok = token{kind: tokPunct, text: "!="}
			l.pos += 2
		} else {
			l.errs = append(l.errs, "lone '!'")
			l.tok = token{kind: tokEOF}
		}
	default:
		start := l.pos
		for l.pos < len(l.in) && isIdentByte(l.in[l.pos]) {
			l.pos++
		}
		if l.pos == start {
			l.errs = append(l.errs, fmt.Sprintf("unexpected character %q", c))
			l.tok = token{kind: tokEOF}
			return
		}
		l.tok = token{kind: tokIdent, text: l.in[start:l.pos]}
	}
}

func isIdentByte(c byte) bool {
	return c == '_' || c == '-' || c == '.' || c == '\'' || c == ':' || c == '/' || c == '#' ||
		('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}

type parser struct {
	lex *lexer
}

func (p *parser) expect(text string) error {
	tok := p.lex.next()
	if tok.text != text || tok.kind == tokString {
		return fmt.Errorf("trial: expected %q, got %q", text, tok.text)
	}
	return nil
}

func (p *parser) parseExpr() (Expr, error) {
	tok := p.lex.next()
	if tok.kind == tokString {
		return Rel{Name: tok.text}, nil
	}
	if tok.kind != tokIdent {
		return nil, fmt.Errorf("trial: expected expression, got %q", tok.text)
	}
	switch tok.text {
	case "U":
		return Universe{}, nil
	case "sigma":
		cond, err := p.parseBracketCond()
		if err != nil {
			return nil, err
		}
		args, err := p.parseArgs(1)
		if err != nil {
			return nil, err
		}
		return NewSelect(args[0], cond)
	case "union", "diff", "inter":
		args, err := p.parseArgs(2)
		if err != nil {
			return nil, err
		}
		switch tok.text {
		case "union":
			return Union{L: args[0], R: args[1]}, nil
		case "diff":
			return Diff{L: args[0], R: args[1]}, nil
		default:
			return Intersect(args[0], args[1]), nil
		}
	case "comp":
		args, err := p.parseArgs(1)
		if err != nil {
			return nil, err
		}
		return Complement(args[0]), nil
	case "join":
		out, cond, err := p.parseOutCond()
		if err != nil {
			return nil, err
		}
		args, err := p.parseArgs(2)
		if err != nil {
			return nil, err
		}
		return NewJoin(args[0], out, cond, args[1])
	case "rstar", "lstar":
		out, cond, err := p.parseOutCond()
		if err != nil {
			return nil, err
		}
		args, err := p.parseArgs(1)
		if err != nil {
			return nil, err
		}
		return NewStar(args[0], out, cond, tok.text == "lstar")
	default:
		return Rel{Name: tok.text}, nil
	}
}

func (p *parser) parseArgs(n int) ([]Expr, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var args []Expr
	for i := 0; i < n; i++ {
		if i > 0 {
			if err := p.expect(","); err != nil {
				return nil, err
			}
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, e)
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return args, nil
}

// parseOutCond parses "[i,j,k]" or "[i,j,k; cond]".
func (p *parser) parseOutCond() ([3]Pos, Cond, error) {
	var out [3]Pos
	if err := p.expect("["); err != nil {
		return out, Cond{}, err
	}
	for i := 0; i < 3; i++ {
		if i > 0 {
			if err := p.expect(","); err != nil {
				return out, Cond{}, err
			}
		}
		tok := p.lex.next()
		pos, err := ParsePos(tok.text)
		if err != nil {
			return out, Cond{}, err
		}
		out[i] = pos
	}
	var cond Cond
	switch tok := p.lex.next(); tok.text {
	case "]":
		return out, cond, nil
	case ";":
		c, err := p.parseCond()
		if err != nil {
			return out, Cond{}, err
		}
		if err := p.expect("]"); err != nil {
			return out, Cond{}, err
		}
		return out, c, nil
	default:
		return out, Cond{}, fmt.Errorf("trial: expected ';' or ']', got %q", tok.text)
	}
}

// parseBracketCond parses "[cond]" (possibly empty: "[]").
func (p *parser) parseBracketCond() (Cond, error) {
	if err := p.expect("["); err != nil {
		return Cond{}, err
	}
	if p.lex.peek().text == "]" && p.lex.peek().kind == tokPunct {
		p.lex.next()
		return Cond{}, nil
	}
	c, err := p.parseCond()
	if err != nil {
		return Cond{}, err
	}
	if err := p.expect("]"); err != nil {
		return Cond{}, err
	}
	return c, nil
}

func (p *parser) parseCond() (Cond, error) {
	var c Cond
	for {
		if err := p.parseAtom(&c); err != nil {
			return Cond{}, err
		}
		if p.lex.peek().kind == tokPunct && p.lex.peek().text == "," {
			p.lex.next()
			continue
		}
		return c, nil
	}
}

func (p *parser) parseAtom(c *Cond) error {
	// Data atom: p(pos) op vterm.
	if p.lex.peek().kind == tokIdent && p.lex.peek().text == "p" {
		l, err := p.parseValTerm()
		if err != nil {
			return err
		}
		neq, err := p.parseOp()
		if err != nil {
			return err
		}
		r, err := p.parseValTerm()
		if err != nil {
			return err
		}
		comp := -1
		if p.lex.peek().kind == tokPunct && p.lex.peek().text == "@" {
			p.lex.next()
			tok := p.lex.next()
			n, err := strconv.Atoi(tok.text)
			if err != nil {
				return fmt.Errorf("trial: bad component index %q", tok.text)
			}
			comp = n
		}
		c.Val = append(c.Val, ValAtom{L: l, R: r, Neq: neq, Component: comp})
		return nil
	}
	l, err := p.parseObjTerm()
	if err != nil {
		return err
	}
	neq, err := p.parseOp()
	if err != nil {
		return err
	}
	r, err := p.parseObjTerm()
	if err != nil {
		return err
	}
	c.Obj = append(c.Obj, ObjAtom{L: l, R: r, Neq: neq})
	return nil
}

func (p *parser) parseOp() (neq bool, err error) {
	tok := p.lex.next()
	switch tok.text {
	case "=":
		return false, nil
	case "!=":
		return true, nil
	}
	return false, fmt.Errorf("trial: expected '=' or '!=', got %q", tok.text)
}

func (p *parser) parseObjTerm() (ObjTerm, error) {
	tok := p.lex.next()
	if tok.kind == tokString {
		return Obj(tok.text), nil
	}
	if tok.kind != tokIdent {
		return ObjTerm{}, fmt.Errorf("trial: expected term, got %q", tok.text)
	}
	if pos, err := ParsePos(tok.text); err == nil {
		return P(pos), nil
	}
	return Obj(tok.text), nil
}

func (p *parser) parseValTerm() (ValTerm, error) {
	tok := p.lex.next()
	if tok.kind == tokString {
		return Lit(triplestore.V(tok.text)), nil
	}
	if tok.kind == tokIdent && tok.text == "p" {
		if err := p.expect("("); err != nil {
			return ValTerm{}, err
		}
		ptok := p.lex.next()
		pos, err := ParsePos(ptok.text)
		if err != nil {
			return ValTerm{}, err
		}
		if err := p.expect(")"); err != nil {
			return ValTerm{}, err
		}
		return RhoP(pos), nil
	}
	return ValTerm{}, fmt.Errorf("trial: expected data term, got %q", tok.text)
}
