package trial

import (
	"fmt"
	"strings"
)

// Explain renders the evaluation plan the Evaluator would use for an
// expression under the given mode: one line per AST node, annotated with
// the join strategy (nested-loop vs hash, and which equality atoms become
// hash keys) and with star specializations (the reachTA= procedures of
// Proposition 5). It is a planning aid and a debugging tool; it performs
// no evaluation.
func Explain(e Expr, mode Mode, disableReachStar bool) string {
	var b strings.Builder
	explain(&b, e, mode, disableReachStar, 0)
	return b.String()
}

func explain(b *strings.Builder, e Expr, mode Mode, noReach bool, depth int) {
	indent := strings.Repeat("  ", depth)
	switch x := e.(type) {
	case Rel:
		fmt.Fprintf(b, "%sscan %s\n", indent, quoteName(x.Name))
	case Universe:
		fmt.Fprintf(b, "%suniverse (|adom|³ triples — cubic!)\n", indent)
	case Select:
		fmt.Fprintf(b, "%sselect [%s]\n", indent, x.Cond)
		explain(b, x.E, mode, noReach, depth+1)
	case Union:
		fmt.Fprintf(b, "%sunion\n", indent)
		explain(b, x.L, mode, noReach, depth+1)
		explain(b, x.R, mode, noReach, depth+1)
	case Diff:
		fmt.Fprintf(b, "%sdifference\n", indent)
		explain(b, x.L, mode, noReach, depth+1)
		explain(b, x.R, mode, noReach, depth+1)
	case Join:
		fmt.Fprintf(b, "%sjoin out=[%s] %s\n", indent, outString(x.Out), joinStrategy(x.Cond, mode))
		explain(b, x.L, mode, noReach, depth+1)
		explain(b, x.R, mode, noReach, depth+1)
	case Star:
		name := "right-star"
		if x.Left {
			name = "left-star"
		}
		strategy := "generic fixpoint (Thm. 3 Procedure 2)"
		if !noReach {
			switch reachStarKind(x) {
			case reachAny:
				strategy = "reachTA= Procedure 3 (per-source reachability)"
			case reachSameLabel:
				strategy = "reachTA= Procedure 4 (per-label reachability)"
			}
		}
		fmt.Fprintf(b, "%s%s out=[%s] via %s\n", indent, name, outString(x.Out), strategy)
		if reachStarKind(x) == reachNone || noReach {
			fmt.Fprintf(b, "%s  (each round: %s)\n", indent, joinStrategy(x.Cond, mode))
		}
		explain(b, x.E, mode, noReach, depth+1)
	}
}

// joinStrategy describes how a join condition would be executed.
func joinStrategy(c Cond, mode Mode) string {
	if mode == ModeNaive {
		return "nested-loop (Thm. 3 Procedure 1)"
	}
	var keys []string
	for _, a := range c.Obj {
		if !a.Neq && !a.L.IsConst && !a.R.IsConst && a.L.Pos.Left() != a.R.Pos.Left() {
			keys = append(keys, a.String())
		}
	}
	for _, a := range c.Val {
		if !a.Neq && !a.L.IsLit && !a.R.IsLit && a.L.Pos.Left() != a.R.Pos.Left() {
			keys = append(keys, a.String())
		}
	}
	if len(keys) == 0 {
		return "hash (no cross-equality keys: degenerates to cross product + filter)"
	}
	return "hash on {" + strings.Join(keys, ", ") + "}"
}
