package trial

import "fmt"

// This file collects, as reusable constructors, the named TriAL and TriAL*
// expressions that appear in the paper. Tests and experiments refer to
// them by the paper's numbering.

// Example2 is the expression e = E ✶^{1,3′,3}_{2=1′} E of Example 2:
// travel information for pairs of cities together with the operating
// company (one part_of step).
func Example2(rel string) Expr {
	return MustJoin(R(rel), [3]Pos{L1, R3, L3}, Cond{Obj: []ObjAtom{Eq(P(L2), P(R1))}}, R(rel))
}

// Example2Extended is e′ = e ∪ (e ✶^{1,3′,3}_{2=1′} E) from Example 2,
// which also reports companies one part_of step further up.
func Example2Extended(rel string) Expr {
	e := Example2(rel)
	return Union{L: e, R: MustJoin(e, [3]Pos{L1, R3, L3}, Cond{Obj: []ObjAtom{Eq(P(L2), P(R1))}}, R(rel))}
}

// ReachRight is Reach→ of the introduction and Example 4:
// (E ✶^{1,2,3′}_{3=1′})*, pairs (x, z) connected by a chain in which the
// object of each triple is the subject of the next.
func ReachRight(rel string) Expr {
	return MustStar(R(rel), [3]Pos{L1, L2, R3}, Cond{Obj: []ObjAtom{Eq(P(L3), P(R1))}}, false)
}

// ReachUp is Reach⇑ exactly as written in Example 4:
// (✶^{1′,2′,3}_{1=2′} E)*, the left Kleene closure.
//
// Note (erratum observed during reproduction): because the join's output
// (1′, 2′, 3) discards position 1 of the left operand, the left closure
// X_{k+1} = E ✶ X_k stops producing new subject/predicate pairs after the
// first step — the condition 1 = 2′ keeps re-matching the same chain
// element. The unbounded "climbing" pattern drawn in the paper's
// introduction (subject of each triple = predicate of the next) is
// computed by the right closure of the same join, provided as
// ReachUpRight. Tests pin down both behaviours.
func ReachUp(rel string) Expr {
	return MustStar(R(rel), [3]Pos{R1, R2, L3}, Cond{Obj: []ObjAtom{Eq(P(L1), P(R2))}}, true)
}

// ReachUpRight is the right Kleene closure (E ✶^{1′,2′,3}_{1=2′})*, which
// realizes the unbounded Reach⇑ pattern of the introduction: pairs whose
// connection climbs through triples linked by subject-of-one =
// predicate-of-the-next, keeping the subject and predicate of the last
// triple and the object of the first.
func ReachUpRight(rel string) Expr {
	return MustStar(R(rel), [3]Pos{R1, R2, L3}, Cond{Obj: []ObjAtom{Eq(P(L1), P(R2))}}, false)
}

// SameLabelReach is (E ✶^{1,2,3′}_{3=1′,2=2′})*: reachability by a path
// labeled with the same element — the second reachTA= primitive of §5.
func SameLabelReach(rel string) Expr {
	return MustStar(R(rel), [3]Pos{L1, L2, R3},
		Cond{Obj: []ObjAtom{Eq(P(L3), P(R1)), Eq(P(L2), P(R2))}}, false)
}

// QueryQ is the query Q of §2.2 ("pairs of cities (x, y) such that one can
// travel from x to y using services operated by the same company"),
// expressed as in Example 4:
//
//	((E ✶^{1,3′,3}_{2=1′})* ✶^{1,2,3′}_{3=1′,2=2′})*
//
// The inner star lifts each service to every company it is (transitively)
// part of; the outer star is same-company reachability over the lifted
// triples.
func QueryQ(rel string) Expr {
	inner := MustStar(R(rel), [3]Pos{L1, R3, L3}, Cond{Obj: []ObjAtom{Eq(P(L2), P(R1))}}, false)
	return MustStar(inner, [3]Pos{L1, L2, R3},
		Cond{Obj: []ObjAtom{Eq(P(L3), P(R1)), Eq(P(L2), P(R2))}}, false)
}

// DistinctObjects returns the expression whose result is nonempty iff the
// store's active domain has at least n distinct objects, for 4 ≤ n ≤ 6:
// U ✶^{1,2,3}_θ U with θ asserting pairwise inequality of the first n join
// positions. The n = 4 instance separates TriAL from FO³ (Theorem 4,
// part 2); n = 6 separates it from FO⁵ (part 3) and, over graph encodings,
// GXPath (Theorem 7).
func DistinctObjects(n int) (Expr, error) {
	if n < 4 || n > 6 {
		return nil, fmt.Errorf("trial: DistinctObjects supports 4..6 positions, got %d", n)
	}
	ps := []Pos{L1, L2, L3, R1, R2, R3}[:n]
	var c Cond
	for i := 0; i < len(ps); i++ {
		for j := i + 1; j < len(ps); j++ {
			c.Obj = append(c.Obj, Neq(P(ps[i]), P(ps[j])))
		}
	}
	return MustJoin(U(), [3]Pos{L1, L2, L3}, c, U()), nil
}

// Diagonal is the relation D = U ✶^{1,1,1}_{1=1} U of all triples
// (a, a, a) over the active domain, used in the GXPath translation
// (Theorem 7).
func Diagonal() Expr {
	return MustJoin(U(), [3]Pos{L1, L1, L1}, Cond{Obj: []ObjAtom{Eq(P(L1), P(L1))}}, U())
}
