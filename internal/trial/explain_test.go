package trial

import (
	"strings"
	"testing"
)

func TestExplainQueryQ(t *testing.T) {
	out := Explain(QueryQ("E"), ModeAuto, false)
	for _, want := range []string{
		"Procedure 4",      // outer star: same-label reachability
		"generic fixpoint", // inner star is not a reachTA= shape
		"scan E",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain(Q) missing %q:\n%s", want, out)
		}
	}
}

func TestExplainModes(t *testing.T) {
	e := Example2("E")
	auto := Explain(e, ModeAuto, false)
	if !strings.Contains(auto, "hash on {2=1'}") {
		t.Errorf("auto plan missing hash key:\n%s", auto)
	}
	naive := Explain(e, ModeNaive, false)
	if !strings.Contains(naive, "nested-loop") {
		t.Errorf("naive plan missing nested-loop:\n%s", naive)
	}
}

func TestExplainDisabledReach(t *testing.T) {
	out := Explain(ReachRight("E"), ModeAuto, true)
	if strings.Contains(out, "Procedure 3") {
		t.Errorf("disabled reach star still specialized:\n%s", out)
	}
	if !strings.Contains(out, "generic fixpoint") {
		t.Errorf("plan missing fixpoint note:\n%s", out)
	}
	on := Explain(ReachRight("E"), ModeAuto, false)
	if !strings.Contains(on, "Procedure 3") {
		t.Errorf("reach star not specialized:\n%s", on)
	}
}

func TestExplainCoversAllNodes(t *testing.T) {
	six, _ := DistinctObjects(6)
	e := Union{
		L: MustSelect(Complement(R("E")), Cond{Obj: []ObjAtom{Eq(P(L1), P(L2))}}),
		R: Intersect(six, U()),
	}
	out := Explain(e, ModeAuto, false)
	for _, want := range []string{"union", "difference", "select", "universe", "join"} {
		if !strings.Contains(out, want) {
			t.Errorf("plan missing %q:\n%s", want, out)
		}
	}
	// Inequality-only join degenerates.
	if !strings.Contains(out, "degenerates") {
		t.Errorf("plan should flag the keyless join:\n%s", out)
	}
}
