// Package trial implements the Triple Algebra TriAL and its recursive
// extension TriAL* from Libkin, Reutter and Vrgoč, "TriAL for RDF"
// (PODS 2013), §3, together with the evaluation algorithms of §5:
// the generic algorithms of Theorem 3, the O(|e|·|O|·|T|) equality-only
// strategy of Proposition 4, and the reachTA= star procedures of
// Proposition 5.
//
// TriAL is a closed algebra over triplestores: every expression evaluates
// to a set of triples. Its operations are relation names, selection
// σ_{θ,η}, union, difference, and the family of joins e1 ✶^{i,j,k}_{θ,η} e2
// that keep three of the six positions of the joined pair. TriAL* adds
// right and left Kleene closures of joins, (e ✶)* and (✶ e)*.
package trial
