package trial

import (
	"testing"

	"repro/internal/triplestore"
)

func TestParseBasics(t *testing.T) {
	cases := []struct {
		in   string
		want string // expected String() of parsed expression; "" = same as in
	}{
		{"E", ""},
		{"U", ""},
		{`"Train Op 1"`, ""},
		{"union(E, F)", ""},
		{"diff(U, E)", ""},
		{"sigma[1=2](E)", ""},
		{"sigma[2=part_of](E)", ""},
		{"sigma[1!=3](E)", ""},
		{"join[1,3',3; 2=1'](E, E)", ""},
		{"join[1,2,3](E, F)", ""},
		{"rstar[1,2,3'; 3=1'](E)", ""},
		{"lstar[1',2',3; 1=2'](E)", ""},
		{`sigma[p(1)=p(3)](E)`, ""},
		{`sigma[p(2)="blue"](E)`, ""},
		{`sigma[p(1)!=p(3)@2](E)`, ""},
		{"inter(E, F)", "join[1,2,3; 1=1',2=2',3=3'](E, F)"},
		{"comp(E)", "diff(U, E)"},
	}
	for _, c := range cases {
		e, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		want := c.want
		if want == "" {
			want = c.in
		}
		if got := e.String(); got != want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"",
		"union(E)",
		"union(E, F, G)",
		"join[1,2](E, F)",
		"join[1,2,9](E, F)",
		"sigma[1=1'](E)", // selection may not mention primed positions
		"sigma[1-2](E)",
		"rstar[1,2,3'(E)",
		"E F",
		`"unterminated`,
		"join[1,2,3; p(1)=2](E, F)",
		"sigma[p(1)=p(3)@x](E)",
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): want error", in)
		}
	}
}

// TestParseRoundTrip checks that String() output re-parses to an identical
// rendering for the paper's named queries.
func TestParseRoundTrip(t *testing.T) {
	six, _ := DistinctObjects(6)
	for _, e := range []Expr{
		Example2("E"),
		Example2Extended("E"),
		ReachRight("E"),
		ReachUp("E"),
		ReachUpRight("E"),
		SameLabelReach("E"),
		QueryQ("E"),
		six,
		Diagonal(),
		Intersect(R("E"), Complement(R("F"))),
	} {
		s1 := e.String()
		e2, err := Parse(s1)
		if err != nil {
			t.Errorf("reparse %q: %v", s1, err)
			continue
		}
		if s2 := e2.String(); s2 != s1 {
			t.Errorf("round trip changed rendering:\n in: %s\nout: %s", s1, s2)
		}
	}
}

// TestParsedEvaluates checks that a parsed expression evaluates like the
// programmatically built one.
func TestParsedEvaluates(t *testing.T) {
	s := transport()
	ev := NewEvaluator(s)
	built := mustEval(t, ev, Example2("E"))
	parsed, err := Parse("join[1,3',3; 2=1'](E, E)")
	if err != nil {
		t.Fatal(err)
	}
	got := mustEval(t, ev, parsed)
	if !got.Equal(built) {
		t.Errorf("parsed and built expressions disagree")
	}
}

// TestParseQuotedPositionConstant: a quoted "1" is an object constant, not
// a position.
func TestParseQuotedPositionConstant(t *testing.T) {
	s := triplestore.NewStore()
	s.Add("E", "1", "p", "b")
	s.Add("E", "x", "p", "b")
	ev := NewEvaluator(s)
	e, err := Parse(`sigma[1="1"](E)`)
	if err != nil {
		t.Fatal(err)
	}
	r := mustEval(t, ev, e)
	if r.Len() != 1 {
		t.Errorf("size = %d, want 1 (only the triple with subject named 1)", r.Len())
	}
}
