package trial

import (
	"fmt"
	"math/bits"

	"repro/internal/triplestore"
)

// MatrixEvaluator evaluates TriAL* expressions using the literal array
// representation of §5: every relation is an n×n×n bit cube over the
// store's objects, and the algorithms are the paper's Procedures 1–4,
// including Warshall's transitive closure for the reachability stars.
//
// This evaluator exists for fidelity and for the ablation benchmarks: the
// cube costs Θ(n³) bits regardless of |T|, so it only makes sense for
// dense stores over small object sets. The production path is Evaluator.
type MatrixEvaluator struct {
	// DisableReachStar forces the generic Procedure 2 fixpoint for all
	// stars, as in Evaluator.
	DisableReachStar bool

	store *triplestore.Store
	n     int
	adom  []triplestore.ID
}

// NewMatrixEvaluator returns a matrix evaluator over the store.
func NewMatrixEvaluator(s *triplestore.Store) *MatrixEvaluator {
	return &MatrixEvaluator{store: s, n: s.NumObjects(), adom: s.ActiveDomain()}
}

// Eval computes e(T), returning an ordinary relation.
func (mv *MatrixEvaluator) Eval(e Expr) (*triplestore.Relation, error) {
	c, err := mv.eval(e)
	if err != nil {
		return nil, err
	}
	return c.toRelation(), nil
}

// bitcube is a dense n×n×n bit array: entry (i,j,k) is bit (i·n+j)·n+k.
type bitcube struct {
	n     int
	words []uint64
}

func newCube(n int) *bitcube {
	return &bitcube{n: n, words: make([]uint64, (n*n*n+63)/64)}
}

func (c *bitcube) index(t triplestore.Triple) int {
	return (int(t[0])*c.n+int(t[1]))*c.n + int(t[2])
}

func (c *bitcube) set(t triplestore.Triple) {
	i := c.index(t)
	c.words[i>>6] |= 1 << uint(i&63)
}

func (c *bitcube) has(t triplestore.Triple) bool {
	i := c.index(t)
	return c.words[i>>6]&(1<<uint(i&63)) != 0
}

func (c *bitcube) triple(bit int) triplestore.Triple {
	k := bit % c.n
	bit /= c.n
	j := bit % c.n
	i := bit / c.n
	return triplestore.Triple{triplestore.ID(i), triplestore.ID(j), triplestore.ID(k)}
}

// forEach iterates the set bits, word-skipping over empty regions.
func (c *bitcube) forEach(f func(triplestore.Triple)) {
	for w, word := range c.words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			f(c.triple(w*64 + b))
			word &= word - 1
		}
	}
}

func (c *bitcube) clone() *bitcube {
	d := newCube(c.n)
	copy(d.words, c.words)
	return d
}

func (c *bitcube) or(d *bitcube) {
	for i := range c.words {
		c.words[i] |= d.words[i]
	}
}

func (c *bitcube) andNot(d *bitcube) {
	for i := range c.words {
		c.words[i] &^= d.words[i]
	}
}

func (c *bitcube) equal(d *bitcube) bool {
	for i := range c.words {
		if c.words[i] != d.words[i] {
			return false
		}
	}
	return true
}

func (c *bitcube) count() int {
	n := 0
	for _, w := range c.words {
		n += bits.OnesCount64(w)
	}
	return n
}

func (c *bitcube) toRelation() *triplestore.Relation {
	r := triplestore.NewRelation()
	c.forEach(func(t triplestore.Triple) { r.Add(t) })
	return r
}

func (mv *MatrixEvaluator) fromRelation(r *triplestore.Relation) *bitcube {
	c := newCube(mv.n)
	r.ForEach(func(t triplestore.Triple) { c.set(t) })
	return c
}

func (mv *MatrixEvaluator) eval(e Expr) (*bitcube, error) {
	switch x := e.(type) {
	case Rel:
		r := mv.store.Relation(x.Name)
		if r == nil {
			return nil, fmt.Errorf("trial: unknown relation %q", x.Name)
		}
		return mv.fromRelation(r), nil
	case Universe:
		c := newCube(mv.n)
		for _, a := range mv.adom {
			for _, b := range mv.adom {
				for _, d := range mv.adom {
					c.set(triplestore.Triple{a, b, d})
				}
			}
		}
		return c, nil
	case Select:
		if !x.Cond.leftOnly() {
			return nil, fmt.Errorf("trial: selection condition %q mentions primed positions", x.Cond.String())
		}
		in, err := mv.eval(x.E)
		if err != nil {
			return nil, err
		}
		ce := compileCond(mv.store, x.Cond)
		out := newCube(mv.n)
		in.forEach(func(t triplestore.Triple) {
			if ce.holds(t, t) {
				out.set(t)
			}
		})
		return out, nil
	case Union:
		l, err := mv.eval(x.L)
		if err != nil {
			return nil, err
		}
		r, err := mv.eval(x.R)
		if err != nil {
			return nil, err
		}
		out := l.clone()
		out.or(r)
		return out, nil
	case Diff:
		l, err := mv.eval(x.L)
		if err != nil {
			return nil, err
		}
		r, err := mv.eval(x.R)
		if err != nil {
			return nil, err
		}
		out := l.clone()
		out.andNot(r)
		return out, nil
	case Join:
		l, err := mv.eval(x.L)
		if err != nil {
			return nil, err
		}
		r, err := mv.eval(x.R)
		if err != nil {
			return nil, err
		}
		return mv.join(l, r, x.Out, x.Cond), nil
	case Star:
		base, err := mv.eval(x.E)
		if err != nil {
			return nil, err
		}
		if !mv.DisableReachStar {
			switch reachStarKind(x) {
			case reachAny:
				return mv.reachStarAny(base), nil
			case reachSameLabel:
				return mv.reachStarSameLabel(base), nil
			}
		}
		return mv.fixpointStar(base, x), nil
	}
	return nil, fmt.Errorf("trial: unknown expression type %T", e)
}

// join is Procedure 1: enumerate pairs of set entries, check the
// condition, set the projected entry. (The paper iterates all n⁶ index
// pairs; word-skipping over zero regions is the only liberty taken.)
func (mv *MatrixEvaluator) join(l, r *bitcube, out [3]Pos, cond Cond) *bitcube {
	ce := compileCond(mv.store, cond)
	res := newCube(mv.n)
	l.forEach(func(lt triplestore.Triple) {
		r.forEach(func(rt triplestore.Triple) {
			if ce.holds(lt, rt) {
				res.set(project(out, lt, rt))
			}
		})
	})
	return res
}

// fixpointStar is Procedure 2: iterate Re := Re ∪ (Re ✶ R) until
// saturation (the paper bounds the iterations by n³; equality testing
// reaches the same fixpoint earlier).
func (mv *MatrixEvaluator) fixpointStar(base *bitcube, st Star) *bitcube {
	res := base.clone()
	for {
		var step *bitcube
		if st.Left {
			step = mv.join(base, res, st.Out, st.Cond)
		} else {
			step = mv.join(res, base, st.Out, st.Cond)
		}
		next := res.clone()
		next.or(step)
		if next.equal(res) {
			return res
		}
		res = next
	}
}

// bitmatrix is an n×n bit matrix with rows as bitsets, for the Warshall
// closure of Procedures 3–4.
type bitmatrix struct {
	n     int
	width int
	rows  []uint64
}

func newMatrix(n int) *bitmatrix {
	w := (n + 63) / 64
	return &bitmatrix{n: n, width: w, rows: make([]uint64, n*w)}
}

func (m *bitmatrix) row(i int) []uint64 { return m.rows[i*m.width : (i+1)*m.width] }

func (m *bitmatrix) set(i, j int) { m.row(i)[j>>6] |= 1 << uint(j&63) }

func (m *bitmatrix) has(i, j int) bool { return m.row(i)[j>>6]&(1<<uint(j&63)) != 0 }

// warshall computes the transitive closure in place: the paper's
// Procedure 3 step 7, with word-parallel row unions.
func (m *bitmatrix) warshall() {
	for k := 0; k < m.n; k++ {
		rk := m.row(k)
		for i := 0; i < m.n; i++ {
			if m.has(i, k) {
				ri := m.row(i)
				for w := range ri {
					ri[w] |= rk[w]
				}
			}
		}
	}
}

// reachStarAny is Procedure 3: build the subject→object reachability
// matrix of the base relation, close it transitively with Warshall, and
// emit (i, k, l) whenever R[i,k,j] and j →* l.
func (mv *MatrixEvaluator) reachStarAny(base *bitcube) *bitcube {
	reach := newMatrix(mv.n)
	base.forEach(func(t triplestore.Triple) {
		reach.set(int(t[0]), int(t[2]))
	})
	reach.warshall()
	res := base.clone()
	base.forEach(func(t triplestore.Triple) {
		row := reach.row(int(t[2]))
		for w, word := range row {
			for word != 0 {
				b := bits.TrailingZeros64(word)
				res.set(triplestore.Triple{t[0], t[1], triplestore.ID(w*64 + b)})
				word &= word - 1
			}
		}
	})
	return res
}

// reachStarSameLabel is Procedure 4: a per-label reachability matrix.
func (mv *MatrixEvaluator) reachStarSameLabel(base *bitcube) *bitcube {
	// Group base triples by middle object.
	byLabel := map[triplestore.ID][]triplestore.Triple{}
	base.forEach(func(t triplestore.Triple) {
		byLabel[t[1]] = append(byLabel[t[1]], t)
	})
	res := base.clone()
	for _, ts := range byLabel {
		reach := newMatrix(mv.n)
		for _, t := range ts {
			reach.set(int(t[0]), int(t[2]))
		}
		reach.warshall()
		for _, t := range ts {
			row := reach.row(int(t[2]))
			for w, word := range row {
				for word != 0 {
					b := bits.TrailingZeros64(word)
					res.set(triplestore.Triple{t[0], t[1], triplestore.ID(w*64 + b)})
					word &= word - 1
				}
			}
		}
	}
	return res
}
