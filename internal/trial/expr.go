package trial

import (
	"fmt"
	"strings"
)

// Expr is a TriAL* expression. Expressions are immutable once built; use
// the constructor functions, which validate positions and conditions.
type Expr interface {
	// String renders the expression in the textual syntax accepted by Parse.
	String() string
	isExpr()
}

// Rel refers to a named relation of the triplestore.
type Rel struct{ Name string }

// Universe is the universal relation U of §3: all triples over the active
// domain (objects occurring in some triple of the store). The paper shows
// U is definable from joins and union; it is provided as a primitive both
// for convenience and because complements (e^c = U − e) are pervasive.
type Universe struct{}

// Select is the selection σ_{θ,η}(E). Conditions may mention only
// positions 1, 2, 3.
type Select struct {
	E    Expr
	Cond Cond
}

// Union is e1 ∪ e2.
type Union struct{ L, R Expr }

// Diff is e1 − e2.
type Diff struct{ L, R Expr }

// Join is the triple join e1 ✶^{i,j,k}_{θ,η} e2. Out lists the three
// output positions (i, j, k), each one of the six join positions; Cond
// holds θ (object conditions) and η (data conditions).
type Join struct {
	L, R Expr
	Out  [3]Pos
	Cond Cond
}

// Star is the Kleene closure of a join: (e ✶^{i,j,k}_{θ,η})* when
// Left is false (right closure) and (✶^{i,j,k}_{θ,η} e)* when Left is
// true. The two differ because triple joins are not associative
// (Example 3 of the paper).
type Star struct {
	E    Expr
	Out  [3]Pos
	Cond Cond
	Left bool
}

func (Rel) isExpr()      {}
func (Universe) isExpr() {}
func (Select) isExpr()   {}
func (Union) isExpr()    {}
func (Diff) isExpr()     {}
func (Join) isExpr()     {}
func (Star) isExpr()     {}

// R is a convenience constructor for a relation reference.
func R(name string) Rel { return Rel{Name: name} }

// U is the universal relation.
func U() Universe { return Universe{} }

// NewSelect validates and builds a selection.
func NewSelect(e Expr, c Cond) (Select, error) {
	if !c.leftOnly() {
		return Select{}, fmt.Errorf("trial: selection condition %q mentions primed positions", c.String())
	}
	return Select{E: e, Cond: c}, nil
}

// MustSelect is NewSelect, panicking on error. Intended for statically
// known expressions (tests, examples).
func MustSelect(e Expr, c Cond) Select {
	s, err := NewSelect(e, c)
	if err != nil {
		panic(err)
	}
	return s
}

// NewJoin validates and builds a join with output positions i, j, k.
func NewJoin(l Expr, out [3]Pos, c Cond, r Expr) (Join, error) {
	for _, p := range out {
		if !p.Valid() {
			return Join{}, fmt.Errorf("trial: invalid output position %v", p)
		}
	}
	return Join{L: l, R: r, Out: out, Cond: c}, nil
}

// MustJoin is NewJoin, panicking on error.
func MustJoin(l Expr, out [3]Pos, c Cond, r Expr) Join {
	j, err := NewJoin(l, out, c, r)
	if err != nil {
		panic(err)
	}
	return j
}

// NewStar validates and builds a Kleene closure of a join over e.
func NewStar(e Expr, out [3]Pos, c Cond, left bool) (Star, error) {
	for _, p := range out {
		if !p.Valid() {
			return Star{}, fmt.Errorf("trial: invalid output position %v", p)
		}
	}
	return Star{E: e, Out: out, Cond: c, Left: left}, nil
}

// MustStar is NewStar, panicking on error.
func MustStar(e Expr, out [3]Pos, c Cond, left bool) Star {
	s, err := NewStar(e, out, c, left)
	if err != nil {
		panic(err)
	}
	return s
}

// Intersect builds e1 ∩ e2 as the join of §3:
// e1 ✶^{1,2,3}_{1=1′,2=2′,3=3′} e2.
func Intersect(l, r Expr) Join {
	return MustJoin(l, [3]Pos{L1, L2, L3},
		Cond{Obj: []ObjAtom{Eq(P(L1), P(R1)), Eq(P(L2), P(R2)), Eq(P(L3), P(R3))}}, r)
}

// Complement builds e^c = U − e.
func Complement(e Expr) Diff { return Diff{L: U(), R: e} }

// EqualityOnly reports whether every condition in the expression uses only
// equalities — membership in the TriAL= fragment (§5, Proposition 4).
func EqualityOnly(e Expr) bool {
	switch x := e.(type) {
	case Rel, Universe:
		return true
	case Select:
		return x.Cond.EqualityOnly() && EqualityOnly(x.E)
	case Union:
		return EqualityOnly(x.L) && EqualityOnly(x.R)
	case Diff:
		return EqualityOnly(x.L) && EqualityOnly(x.R)
	case Join:
		return x.Cond.EqualityOnly() && EqualityOnly(x.L) && EqualityOnly(x.R)
	case Star:
		return x.Cond.EqualityOnly() && EqualityOnly(x.E)
	}
	return false
}

// Size returns the number of AST nodes, the |e| of the paper's bounds.
func Size(e Expr) int {
	switch x := e.(type) {
	case Rel, Universe:
		return 1
	case Select:
		return 1 + Size(x.E)
	case Union:
		return 1 + Size(x.L) + Size(x.R)
	case Diff:
		return 1 + Size(x.L) + Size(x.R)
	case Join:
		return 1 + Size(x.L) + Size(x.R)
	case Star:
		return 1 + Size(x.E)
	}
	return 1
}

// Relations returns the names of the store relations the expression
// mentions, in first-occurrence order.
func Relations(e Expr) []string {
	var names []string
	seen := map[string]bool{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case Rel:
			if !seen[x.Name] {
				seen[x.Name] = true
				names = append(names, x.Name)
			}
		case Select:
			walk(x.E)
		case Union:
			walk(x.L)
			walk(x.R)
		case Diff:
			walk(x.L)
			walk(x.R)
		case Join:
			walk(x.L)
			walk(x.R)
		case Star:
			walk(x.E)
		}
	}
	walk(e)
	return names
}

func (r Rel) String() string    { return quoteName(r.Name) }
func (Universe) String() string { return "U" }
func (s Select) String() string { return "sigma[" + s.Cond.String() + "](" + s.E.String() + ")" }
func (u Union) String() string  { return "union(" + u.L.String() + ", " + u.R.String() + ")" }
func (d Diff) String() string   { return "diff(" + d.L.String() + ", " + d.R.String() + ")" }

func outString(out [3]Pos) string {
	parts := []string{out[0].String(), out[1].String(), out[2].String()}
	return strings.Join(parts, ",")
}

func (j Join) String() string {
	head := "join[" + outString(j.Out)
	if !j.Cond.Empty() {
		head += "; " + j.Cond.String()
	}
	return head + "](" + j.L.String() + ", " + j.R.String() + ")"
}

func (s Star) String() string {
	name := "rstar"
	if s.Left {
		name = "lstar"
	}
	head := name + "[" + outString(s.Out)
	if !s.Cond.Empty() {
		head += "; " + s.Cond.String()
	}
	return head + "](" + s.E.String() + ")"
}
