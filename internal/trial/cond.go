package trial

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/triplestore"
)

// ObjTerm is one side of an object condition in θ: either a join position
// or an object constant (an element of O, referred to by name and resolved
// against the store at evaluation time).
type ObjTerm struct {
	Pos     Pos
	Name    string
	IsConst bool
}

// P returns the term for position p.
func P(p Pos) ObjTerm { return ObjTerm{Pos: p} }

// Obj returns the term for the object constant named name.
func Obj(name string) ObjTerm { return ObjTerm{Name: name, IsConst: true} }

func (t ObjTerm) String() string {
	if t.IsConst {
		return quoteName(t.Name)
	}
	return t.Pos.String()
}

// ObjAtom is a single (in)equality of θ: l = r or l ≠ r.
type ObjAtom struct {
	L, R ObjTerm
	Neq  bool
}

func (a ObjAtom) String() string {
	op := "="
	if a.Neq {
		op = "!="
	}
	return a.L.String() + op + a.R.String()
}

// ValTerm is one side of a data condition in η: either ρ(p) for a join
// position p, or a data-value literal.
type ValTerm struct {
	Pos   Pos
	Lit   triplestore.Value
	IsLit bool
}

// RhoP returns the term ρ(p).
func RhoP(p Pos) ValTerm { return ValTerm{Pos: p} }

// Lit returns the term for a constant data value.
func Lit(v triplestore.Value) ValTerm { return ValTerm{Lit: v, IsLit: true} }

func (t ValTerm) String() string {
	if t.IsLit {
		if len(t.Lit) == 1 && !t.Lit[0].Null {
			return "\"" + t.Lit[0].Str + "\""
		}
		return t.Lit.String()
	}
	return "p(" + t.Pos.String() + ")"
}

// ValAtom is a single (in)equality of η: ρ-terms compared for (in)equality.
// If Component >= 0 the comparison applies to that tuple component of the
// values only (the ∼i relations of §4); otherwise whole values compare.
type ValAtom struct {
	L, R      ValTerm
	Neq       bool
	Component int
}

func (a ValAtom) String() string {
	op := "="
	if a.Neq {
		op = "!="
	}
	s := a.L.String() + op + a.R.String()
	if a.Component >= 0 {
		s += fmt.Sprintf("@%d", a.Component)
	}
	return s
}

// Cond bundles the θ (object) and η (data value) conditions of a join or
// selection. The zero Cond imposes no constraints.
type Cond struct {
	Obj []ObjAtom
	Val []ValAtom
}

// And returns a copy of c with additional object equality atoms l = r.
func (c Cond) And(atoms ...ObjAtom) Cond {
	c2 := Cond{Obj: append(append([]ObjAtom{}, c.Obj...), atoms...), Val: append([]ValAtom{}, c.Val...)}
	return c2
}

// Eq is the object equality atom a = b.
func Eq(a, b ObjTerm) ObjAtom { return ObjAtom{L: a, R: b} }

// Neq is the object inequality atom a ≠ b.
func Neq(a, b ObjTerm) ObjAtom { return ObjAtom{L: a, R: b, Neq: true} }

// VEq is the data equality atom ρ-term = ρ-term.
func VEq(a, b ValTerm) ValAtom { return ValAtom{L: a, R: b, Component: -1} }

// VNeq is the data inequality atom.
func VNeq(a, b ValTerm) ValAtom { return ValAtom{L: a, R: b, Neq: true, Component: -1} }

// Empty reports whether the condition imposes no constraints.
func (c Cond) Empty() bool { return len(c.Obj) == 0 && len(c.Val) == 0 }

// EqualityOnly reports whether every atom is an equality — the defining
// restriction of the TriAL= fragment (§5).
func (c Cond) EqualityOnly() bool {
	for _, a := range c.Obj {
		if a.Neq {
			return false
		}
	}
	for _, a := range c.Val {
		if a.Neq {
			return false
		}
	}
	return true
}

// positions returns the distinct positions mentioned anywhere in c.
func (c Cond) positions() []Pos {
	seen := map[Pos]bool{}
	add := func(p Pos) { seen[p] = true }
	for _, a := range c.Obj {
		if !a.L.IsConst {
			add(a.L.Pos)
		}
		if !a.R.IsConst {
			add(a.R.Pos)
		}
	}
	for _, a := range c.Val {
		if !a.L.IsLit {
			add(a.L.Pos)
		}
		if !a.R.IsLit {
			add(a.R.Pos)
		}
	}
	out := make([]Pos, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// leftOnly reports whether c mentions only positions 1, 2, 3 — required
// for selection conditions.
func (c Cond) leftOnly() bool {
	for _, p := range c.positions() {
		if !p.Left() {
			return false
		}
	}
	return true
}

func (c Cond) String() string {
	parts := make([]string, 0, len(c.Obj)+len(c.Val))
	for _, a := range c.Obj {
		parts = append(parts, a.String())
	}
	for _, a := range c.Val {
		parts = append(parts, a.String())
	}
	return strings.Join(parts, ",")
}

// condEval is a compiled form of Cond bound to a store, for fast
// evaluation against candidate triple pairs.
type condEval struct {
	store *triplestore.Store
	obj   []objCheck
	val   []valCheck
}

type objCheck struct {
	lPos, rPos     Pos
	lConst, rConst triplestore.ID
	lIsC, rIsC     bool
	neq            bool
}

type valCheck struct {
	lPos, rPos Pos
	lLit, rLit triplestore.Value
	lIsL, rIsL bool
	neq        bool
	component  int
}

// compileCond resolves object-constant names against the store. Constants
// naming objects absent from the store make equality atoms unsatisfiable
// and inequality atoms trivially true; we model this with NoID, which no
// triple component can equal.
func compileCond(s *triplestore.Store, c Cond) *condEval {
	ce := &condEval{store: s}
	for _, a := range c.Obj {
		oc := objCheck{neq: a.Neq}
		if a.L.IsConst {
			oc.lIsC, oc.lConst = true, s.Lookup(a.L.Name)
		} else {
			oc.lPos = a.L.Pos
		}
		if a.R.IsConst {
			oc.rIsC, oc.rConst = true, s.Lookup(a.R.Name)
		} else {
			oc.rPos = a.R.Pos
		}
		ce.obj = append(ce.obj, oc)
	}
	for _, a := range c.Val {
		vc := valCheck{neq: a.Neq, component: a.Component}
		if a.L.IsLit {
			vc.lIsL, vc.lLit = true, a.L.Lit
		} else {
			vc.lPos = a.L.Pos
		}
		if a.R.IsLit {
			vc.rIsL, vc.rLit = true, a.R.Lit
		} else {
			vc.rPos = a.R.Pos
		}
		ce.val = append(ce.val, vc)
	}
	return ce
}

// holds reports whether the condition is satisfied by the pair of triples
// (left = positions 1,2,3; right = positions 1′,2′,3′). For selections the
// same triple is passed on both sides.
func (ce *condEval) holds(left, right triplestore.Triple) bool {
	for _, oc := range ce.obj {
		var l, r triplestore.ID
		if oc.lIsC {
			l = oc.lConst
		} else {
			l = at(oc.lPos, left, right)
		}
		if oc.rIsC {
			r = oc.rConst
		} else {
			r = at(oc.rPos, left, right)
		}
		if (l == r) == oc.neq {
			return false
		}
	}
	for _, vc := range ce.val {
		var l, r triplestore.Value
		if vc.lIsL {
			l = vc.lLit
		} else {
			l = ce.store.Value(at(vc.lPos, left, right))
		}
		if vc.rIsL {
			r = vc.rLit
		} else {
			r = ce.store.Value(at(vc.rPos, left, right))
		}
		var eq bool
		if vc.component >= 0 {
			eq = l.ComponentEqual(r, vc.component)
		} else {
			eq = l.Equal(r)
		}
		if eq == vc.neq {
			return false
		}
	}
	return true
}

// quoteName renders an object or relation name so that it re-parses as a
// name: quoted unless it consists solely of identifier characters and
// cannot be mistaken for a join position (1, 2', ...).
func quoteName(s string) string {
	if s == "" {
		return `""`
	}
	for i := 0; i < len(s); i++ {
		if !isIdentByte(s[i]) {
			return "\"" + s + "\""
		}
	}
	if _, err := ParsePos(s); err == nil {
		return "\"" + s + "\""
	}
	return s
}
