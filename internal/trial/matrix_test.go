package trial

import (
	"math/rand"
	"testing"

	"repro/internal/triplestore"
)

func TestMatrixExample2(t *testing.T) {
	s := transport()
	mv := NewMatrixEvaluator(s)
	r, err := mv.Eval(Example2("E"))
	if err != nil {
		t.Fatal(err)
	}
	wantExactly(t, s, r, [][3]string{
		{"St. Andrews", "NatExpress", "Edinburgh"},
		{"Edinburgh", "EastCoast", "London"},
		{"London", "Eurostar", "Brussels"},
	})
}

func TestMatrixQueryQ(t *testing.T) {
	s := transport()
	mv := NewMatrixEvaluator(s)
	want := mustEval(t, NewEvaluator(s), QueryQ("E"))
	got, err := mv.Eval(QueryQ("E"))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("matrix Q disagrees:\nmatrix: %sset: %s",
			s.FormatRelation(got), s.FormatRelation(want))
	}
}

// TestMatrixAgreesWithSet differentially tests the matrix evaluator (the
// paper's literal array algorithms) against the set-based evaluator on
// random expressions and stores.
func TestMatrixAgreesWithSet(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 200; i++ {
		s := randStore(rng, 4+rng.Intn(5), 3+rng.Intn(12))
		e := randExprT(rng, 3)
		set := NewEvaluator(s)
		mv := NewMatrixEvaluator(s)
		a, err1 := set.Eval(e)
		b, err2 := mv.Eval(e)
		if err1 != nil || err2 != nil {
			t.Fatalf("eval errors: %v / %v on %s", err1, err2, e)
		}
		if !a.Equal(b) {
			t.Fatalf("matrix evaluator disagrees on %s\nset: %s\nmatrix: %s",
				e, s.FormatRelation(a), s.FormatRelation(b))
		}
	}
}

// TestMatrixReachVsFixpoint exercises both matrix star paths (Procedures
// 2 vs 3/4).
func TestMatrixReachVsFixpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	for i := 0; i < 60; i++ {
		s := randStore(rng, 5+rng.Intn(4), 4+rng.Intn(12))
		for _, e := range []Expr{ReachRight("E"), SameLabelReach("E")} {
			fast := NewMatrixEvaluator(s)
			slow := NewMatrixEvaluator(s)
			slow.DisableReachStar = true
			a, err1 := fast.Eval(e)
			b, err2 := slow.Eval(e)
			if err1 != nil || err2 != nil {
				t.Fatalf("eval errors: %v / %v", err1, err2)
			}
			if !a.Equal(b) {
				t.Fatalf("Procedure 3/4 disagrees with Procedure 2 on %s", e)
			}
		}
	}
}

func TestMatrixErrors(t *testing.T) {
	mv := NewMatrixEvaluator(triplestore.NewStore())
	if _, err := mv.Eval(R("missing")); err == nil {
		t.Error("unknown relation should error")
	}
	if _, err := mv.Eval(Union{L: R("missing"), R: R("missing")}); err == nil {
		t.Error("error should propagate")
	}
}

func TestBitcubeBasics(t *testing.T) {
	c := newCube(5)
	tr := triplestore.Triple{4, 3, 2}
	if c.has(tr) {
		t.Error("fresh cube has bit set")
	}
	c.set(tr)
	if !c.has(tr) || c.count() != 1 {
		t.Error("set/has/count broken")
	}
	var seen []triplestore.Triple
	c.forEach(func(t triplestore.Triple) { seen = append(seen, t) })
	if len(seen) != 1 || seen[0] != tr {
		t.Errorf("forEach = %v", seen)
	}
	d := c.clone()
	d.set(triplestore.Triple{0, 0, 0})
	if c.count() != 1 || d.count() != 2 {
		t.Error("clone shares storage")
	}
	d.andNot(c)
	if d.has(tr) || d.count() != 1 {
		t.Error("andNot broken")
	}
}

func TestBitmatrixWarshall(t *testing.T) {
	m := newMatrix(70) // spans two words per row
	m.set(0, 1)
	m.set(1, 69)
	m.set(69, 0)
	m.warshall()
	for _, pair := range [][2]int{{0, 69}, {1, 0}, {69, 1}, {0, 0}} {
		if !m.has(pair[0], pair[1]) {
			t.Errorf("closure missing (%d,%d)", pair[0], pair[1])
		}
	}
	if m.has(2, 3) {
		t.Error("closure invented an edge")
	}
}
