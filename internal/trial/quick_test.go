package trial

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/triplestore"
)

// TestPosRoundTripQuick: ParsePos inverts String for all positions.
func TestPosRoundTripQuick(t *testing.T) {
	for p := L1; p <= R3; p++ {
		got, err := ParsePos(p.String())
		if err != nil || got != p {
			t.Errorf("round trip of %v: got %v, %v", p, got, err)
		}
	}
	if _, err := ParsePos("4"); err == nil {
		t.Error("ParsePos(4) should fail")
	}
}

// TestCondSymmetryQuick: object atoms are symmetric — swapping the two
// sides never changes satisfaction.
func TestCondSymmetryQuick(t *testing.T) {
	s := triplestore.NewStore()
	s.Add("E", "a", "b", "c")
	prop := func(lp, rp uint8, neq bool, lt, rt [3]uint8) bool {
		l := P(Pos(lp % 6))
		r := P(Pos(rp % 6))
		left := triplestore.Triple{triplestore.ID(lt[0] % 4), triplestore.ID(lt[1] % 4), triplestore.ID(lt[2] % 4)}
		right := triplestore.Triple{triplestore.ID(rt[0] % 4), triplestore.ID(rt[1] % 4), triplestore.ID(rt[2] % 4)}
		a := compileCond(s, Cond{Obj: []ObjAtom{{L: l, R: r, Neq: neq}}})
		b := compileCond(s, Cond{Obj: []ObjAtom{{L: r, R: l, Neq: neq}}})
		return a.holds(left, right) == b.holds(left, right)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestCondNegationQuick: an atom and its negation partition all pairs.
func TestCondNegationQuick(t *testing.T) {
	s := triplestore.NewStore()
	for _, n := range []string{"a", "b", "c", "d"} {
		s.SetValue(n, triplestore.V(n))
	}
	s.Add("E", "a", "b", "c")
	prop := func(lp, rp uint8, lt, rt [3]uint8, val bool) bool {
		l, r := Pos(lp%6), Pos(rp%6)
		left := triplestore.Triple{triplestore.ID(lt[0] % 4), triplestore.ID(lt[1] % 4), triplestore.ID(lt[2] % 4)}
		right := triplestore.Triple{triplestore.ID(rt[0] % 4), triplestore.ID(rt[1] % 4), triplestore.ID(rt[2] % 4)}
		var pos, neg Cond
		if val {
			pos = Cond{Val: []ValAtom{{L: RhoP(l), R: RhoP(r), Component: -1}}}
			neg = Cond{Val: []ValAtom{{L: RhoP(l), R: RhoP(r), Neq: true, Component: -1}}}
		} else {
			pos = Cond{Obj: []ObjAtom{Eq(P(l), P(r))}}
			neg = Cond{Obj: []ObjAtom{Neq(P(l), P(r))}}
		}
		a := compileCond(s, pos).holds(left, right)
		b := compileCond(s, neg).holds(left, right)
		return a != b
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestProjectQuick: project picks exactly the requested components.
func TestProjectQuick(t *testing.T) {
	prop := func(o1, o2, o3 uint8, lt, rt [3]uint8) bool {
		out := [3]Pos{Pos(o1 % 6), Pos(o2 % 6), Pos(o3 % 6)}
		left := triplestore.Triple{triplestore.ID(lt[0]), triplestore.ID(lt[1]), triplestore.ID(lt[2])}
		right := triplestore.Triple{triplestore.ID(rt[0]), triplestore.ID(rt[1]), triplestore.ID(rt[2])}
		got := project(out, left, right)
		for i, p := range out {
			want := left[p.Index()]
			if !p.Left() {
				want = right[p.Index()]
			}
			if got[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestOptimizePreservesFragmentsQuick: optimization keeps an expression
// inside TriAL= and never increases the AST size.
func TestOptimizePreservesFragmentsQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 200; i++ {
		e := randExprT(rng, 4)
		o := Optimize(e)
		if EqualityOnly(e) && !EqualityOnly(o) {
			t.Fatalf("optimizer left TriAL=: %s → %s", e, o)
		}
		if Size(o) > Size(e) {
			t.Fatalf("optimizer grew the expression: %s (%d) → %s (%d)",
				e, Size(e), o, Size(o))
		}
	}
}

// TestParseRenderedRandomQuick: every randomly generated expression's
// rendering re-parses to an identical rendering.
func TestParseRenderedRandomQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		e := randExprT(rng, 4)
		s1 := e.String()
		e2, err := Parse(s1)
		if err != nil {
			t.Fatalf("reparse of %q: %v", s1, err)
		}
		if s2 := e2.String(); s1 != s2 {
			t.Fatalf("round trip changed rendering:\n%s\n%s", s1, s2)
		}
	}
}

// TestUniverseSizeQuick: |U| = |adom|³ on random stores.
func TestUniverseSizeQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 30; i++ {
		s := randStore(rng, 3+rng.Intn(5), 2+rng.Intn(8))
		ev := NewEvaluator(s)
		n := len(s.ActiveDomain())
		if got := ev.Universe().Len(); got != n*n*n {
			t.Fatalf("|U| = %d, want %d³", got, n)
		}
	}
}
