package trial

import "testing"

// FuzzParse checks that the expression parser never panics and that
// successfully parsed expressions render/reparse stably. Run with
// `go test -fuzz=FuzzParse ./internal/trial`; the seed corpus runs as an
// ordinary test.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"E",
		"U",
		"union(E, F)",
		"diff(U, E)",
		"sigma[1=2,p(1)!=p(3)](E)",
		"join[1,3',3; 2=1'](E, E)",
		"rstar[1,2,3'; 3=1',2=2'](rstar[1,3',3; 2=1'](E))",
		"lstar[1',2',3; 1=2'](E)",
		`sigma[2="part of"](E)`,
		"comp(inter(E, F))",
		"join[1,1,1](U, U)",
		"sigma[p(1)=p(2)@3](E)",
		"join[",
		"sigma[1=](E)",
		"))))",
		"rstar[9,9,9](E)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		e, err := Parse(input)
		if err != nil {
			return
		}
		s1 := e.String()
		e2, err := Parse(s1)
		if err != nil {
			t.Fatalf("rendering of parsed %q does not reparse: %q: %v", input, s1, err)
		}
		if s2 := e2.String(); s1 != s2 {
			t.Fatalf("unstable rendering: %q vs %q", s1, s2)
		}
	})
}
