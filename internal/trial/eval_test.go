package trial

import (
	"testing"

	"repro/internal/triplestore"
)

// transport builds the Figure 1 store. Duplicated from the fixtures
// package to avoid an import cycle (fixtures is free to import trial).
func transport() *triplestore.Store {
	s := triplestore.NewStore()
	for _, t := range [][3]string{
		{"St. Andrews", "Bus Op 1", "Edinburgh"},
		{"Edinburgh", "Train Op 1", "London"},
		{"London", "Train Op 2", "Brussels"},
		{"Bus Op 1", "part_of", "NatExpress"},
		{"Train Op 1", "part_of", "EastCoast"},
		{"Train Op 2", "part_of", "Eurostar"},
		{"EastCoast", "part_of", "NatExpress"},
	} {
		s.Add("E", t[0], t[1], t[2])
	}
	return s
}

func mustEval(t *testing.T, ev *Evaluator, e Expr) *triplestore.Relation {
	t.Helper()
	r, err := ev.Eval(e)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return r
}

// names converts a relation to a set of name triples for readable asserts.
func names(s *triplestore.Store, r *triplestore.Relation) map[[3]string]bool {
	out := make(map[[3]string]bool, r.Len())
	r.ForEach(func(t triplestore.Triple) {
		out[[3]string{s.Name(t[0]), s.Name(t[1]), s.Name(t[2])}] = true
	})
	return out
}

func wantExactly(t *testing.T, s *triplestore.Store, r *triplestore.Relation, want [][3]string) {
	t.Helper()
	got := names(s, r)
	if len(got) != len(want) {
		t.Errorf("result has %d triples, want %d: %v", len(got), len(want), got)
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("missing triple %v", w)
		}
	}
}

// TestExample2 reproduces Example 2: e = E ✶^{1,3′,3}_{2=1′} E on the
// Figure 1 store yields exactly the three city/company/city triples the
// paper lists.
func TestExample2(t *testing.T) {
	s := transport()
	for _, mode := range []Mode{ModeAuto, ModeNaive} {
		ev := NewEvaluator(s)
		ev.Mode = mode
		r := mustEval(t, ev, Example2("E"))
		wantExactly(t, s, r, [][3]string{
			{"St. Andrews", "NatExpress", "Edinburgh"},
			{"Edinburgh", "EastCoast", "London"},
			{"London", "Eurostar", "Brussels"},
		})
	}
}

// TestExample2Extended reproduces e′ of Example 2, which adds the triple
// (Edinburgh, NatExpress, London) via one more part_of step.
func TestExample2Extended(t *testing.T) {
	s := transport()
	ev := NewEvaluator(s)
	r := mustEval(t, ev, Example2Extended("E"))
	got := names(s, r)
	if !got[[3]string{"Edinburgh", "NatExpress", "London"}] {
		t.Error("missing (Edinburgh, NatExpress, London)")
	}
	if !got[[3]string{"St. Andrews", "NatExpress", "Edinburgh"}] {
		t.Error("missing base triple from e")
	}
}

// TestExample3 reproduces Example 3: over E = {(a,b,c), (c,d,e), (d,e,f)},
// the right closure of ✶^{1,2,2′}_{3=1′} yields E ∪ {(a,b,d), (a,b,e)}
// while the left closure yields only E ∪ {(a,b,d)} — triple joins are not
// associative.
func TestExample3(t *testing.T) {
	s := triplestore.NewStore()
	s.Add("E", "a", "b", "c")
	s.Add("E", "c", "d", "e")
	s.Add("E", "d", "e", "f")
	ev := NewEvaluator(s)

	cond := Cond{Obj: []ObjAtom{Eq(P(L3), P(R1))}}
	right := MustStar(R("E"), [3]Pos{L1, L2, R2}, cond, false)
	left := MustStar(R("E"), [3]Pos{L1, L2, R2}, cond, true)

	wantExactly(t, s, mustEval(t, ev, right), [][3]string{
		{"a", "b", "c"}, {"c", "d", "e"}, {"d", "e", "f"},
		{"a", "b", "d"}, {"a", "b", "e"},
	})
	wantExactly(t, s, mustEval(t, ev, left), [][3]string{
		{"a", "b", "c"}, {"c", "d", "e"}, {"d", "e", "f"},
		{"a", "b", "d"},
	})
}

// TestQueryQ reproduces the paper's running query Q (§2.2, Example 4):
// (Edinburgh, London) ∈ Q(D), (St. Andrews, London) ∈ Q(D) via the
// transitivity of part_of, and (St. Andrews, Brussels) ∉ Q(D) because that
// route requires changing companies.
func TestQueryQ(t *testing.T) {
	s := transport()
	ev := NewEvaluator(s)
	r := mustEval(t, ev, QueryQ("E"))
	pairs := map[[2]string]bool{}
	r.ForEach(func(tr triplestore.Triple) {
		pairs[[2]string{s.Name(tr[0]), s.Name(tr[2])}] = true
	})
	for _, want := range [][2]string{
		{"Edinburgh", "London"},
		{"St. Andrews", "London"},
		{"St. Andrews", "Edinburgh"},
		{"London", "Brussels"},
	} {
		if !pairs[want] {
			t.Errorf("Q(D) missing pair %v", want)
		}
	}
	if pairs[[2]string{"St. Andrews", "Brussels"}] {
		t.Error("Q(D) wrongly contains (St. Andrews, Brussels): that trip changes companies")
	}
	if pairs[[2]string{"Edinburgh", "Brussels"}] {
		t.Error("Q(D) wrongly contains (Edinburgh, Brussels)")
	}
}

// TestQueryQReachSpecializationAgrees checks that the reachTA=
// specialization (Proposition 5) computes the same result as the generic
// fixpoint of Theorem 3 for query Q, whose outer star has the
// same-label-reachability shape.
func TestQueryQReachSpecializationAgrees(t *testing.T) {
	s := transport()
	fast := NewEvaluator(s)
	slow := NewEvaluator(s)
	slow.DisableReachStar = true
	a := mustEval(t, fast, QueryQ("E"))
	b := mustEval(t, slow, QueryQ("E"))
	if !a.Equal(b) {
		t.Errorf("specialized and generic star disagree:\nfast=%v\nslow=%v",
			s.FormatRelation(a), s.FormatRelation(b))
	}
}

// TestReachRight checks Reach→ on a chain: every pair (oi, oj), i < j,
// is reachable, with the predicate of the first edge retained.
func TestReachRight(t *testing.T) {
	s := triplestore.NewStore()
	s.Add("E", "o0", "p0", "o1")
	s.Add("E", "o1", "p1", "o2")
	s.Add("E", "o2", "p2", "o3")
	ev := NewEvaluator(s)
	r := mustEval(t, ev, ReachRight("E"))
	wantExactly(t, s, r, [][3]string{
		{"o0", "p0", "o1"}, {"o0", "p0", "o2"}, {"o0", "p0", "o3"},
		{"o1", "p1", "o2"}, {"o1", "p1", "o3"},
		{"o2", "p2", "o3"},
	})
}

// TestReachUp pins down the semantics of the paper's Reach⇑ expression
// (left closure) and of the right closure that realizes the unbounded
// climbing pattern of the introduction. The store is a three-level climb:
// (a,b,c) on top, (x,a,y) in the middle (subject a of the top triple is
// its predicate), and (w,x,v) at the bottom.
func TestReachUp(t *testing.T) {
	s := triplestore.NewStore()
	s.Add("E", "a", "b", "c")
	s.Add("E", "x", "a", "y")
	s.Add("E", "w", "x", "v")
	ev := NewEvaluator(s)

	// Left closure (verbatim Example 4): saturates after one join round —
	// the join output discards the left operand's subject, so no chain of
	// length > 2 can form.
	left := mustEval(t, ev, ReachUp("E"))
	wantExactly(t, s, left, [][3]string{
		{"a", "b", "c"}, {"x", "a", "y"}, {"w", "x", "v"},
		{"x", "a", "c"}, // (a,b,c) below (x,a,y): subject a = predicate a
		{"w", "x", "y"}, // (x,a,y) below (w,x,v)
	})

	// Right closure: the full climb (w,x,c) is derived as well.
	right := mustEval(t, ev, ReachUpRight("E"))
	wantExactly(t, s, right, [][3]string{
		{"a", "b", "c"}, {"x", "a", "y"}, {"w", "x", "v"},
		{"x", "a", "c"}, {"w", "x", "y"},
		{"w", "x", "c"}, // two-step climb, only via the right closure
	})
}

// TestUniverseAndComplement checks U and e^c = U − e over the active domain.
func TestUniverseAndComplement(t *testing.T) {
	s := triplestore.NewStore()
	s.Add("E", "a", "p", "b")
	ev := NewEvaluator(s)
	u := mustEval(t, ev, U())
	if u.Len() != 27 { // 3 active objects
		t.Fatalf("|U| = %d, want 27", u.Len())
	}
	c := mustEval(t, ev, Complement(R("E")))
	if c.Len() != 26 {
		t.Fatalf("|E^c| = %d, want 26", c.Len())
	}
	if c.Has(triplestore.Triple{s.Lookup("a"), s.Lookup("p"), s.Lookup("b")}) {
		t.Error("complement contains E's triple")
	}
}

// TestIntersect checks the derived intersection of §3.
func TestIntersect(t *testing.T) {
	s := triplestore.NewStore()
	s.Add("E", "a", "p", "b")
	s.Add("E", "c", "q", "d")
	s.Add("F", "a", "p", "b")
	ev := NewEvaluator(s)
	r := mustEval(t, ev, Intersect(R("E"), R("F")))
	wantExactly(t, s, r, [][3]string{{"a", "p", "b"}})
}

// TestSelect checks selections with object constants and inequalities.
func TestSelect(t *testing.T) {
	s := transport()
	ev := NewEvaluator(s)
	sel := MustSelect(R("E"), Cond{Obj: []ObjAtom{Eq(P(L2), Obj("part_of"))}})
	r := mustEval(t, ev, sel)
	if r.Len() != 4 {
		t.Errorf("part_of selection size = %d, want 4", r.Len())
	}
	selNeq := MustSelect(R("E"), Cond{Obj: []ObjAtom{Neq(P(L2), Obj("part_of"))}})
	r2 := mustEval(t, ev, selNeq)
	if r2.Len() != 3 {
		t.Errorf("non-part_of selection size = %d, want 3", r2.Len())
	}
}

// TestSelectUnknownConstant: equality with a constant not in the store is
// unsatisfiable; inequality is trivially true.
func TestSelectUnknownConstant(t *testing.T) {
	s := transport()
	ev := NewEvaluator(s)
	r := mustEval(t, ev, MustSelect(R("E"), Cond{Obj: []ObjAtom{Eq(P(L1), Obj("nonexistent"))}}))
	if r.Len() != 0 {
		t.Errorf("equality with unknown constant: size = %d, want 0", r.Len())
	}
	r2 := mustEval(t, ev, MustSelect(R("E"), Cond{Obj: []ObjAtom{Neq(P(L1), Obj("nonexistent"))}}))
	if r2.Len() != 7 {
		t.Errorf("inequality with unknown constant: size = %d, want 7", r2.Len())
	}
}

// TestSelectValueConditions checks η conditions in selections.
func TestSelectValueConditions(t *testing.T) {
	s := triplestore.NewStore()
	s.SetValue("a", triplestore.V("red"))
	s.SetValue("b", triplestore.V("red"))
	s.SetValue("c", triplestore.V("blue"))
	s.Add("E", "a", "p", "b")
	s.Add("E", "a", "p", "c")
	ev := NewEvaluator(s)
	sameVal := MustSelect(R("E"), Cond{Val: []ValAtom{VEq(RhoP(L1), RhoP(L3))}})
	r := mustEval(t, ev, sameVal)
	wantExactly(t, s, r, [][3]string{{"a", "p", "b"}})
	litSel := MustSelect(R("E"), Cond{Val: []ValAtom{VEq(RhoP(L3), Lit(triplestore.V("blue")))}})
	r2 := mustEval(t, ev, litSel)
	wantExactly(t, s, r2, [][3]string{{"a", "p", "c"}})
}

// TestJoinValueConditions checks η conditions across a join, in both the
// hash and naive strategies.
func TestJoinValueConditions(t *testing.T) {
	s := triplestore.NewStore()
	s.SetValue("a", triplestore.V("x"))
	s.SetValue("b", triplestore.V("x"))
	s.SetValue("c", triplestore.V("y"))
	s.Add("E", "a", "p", "a")
	s.Add("E", "b", "p", "b")
	s.Add("E", "c", "p", "c")
	join := MustJoin(R("E"), [3]Pos{L1, L2, R1}, Cond{Val: []ValAtom{VEq(RhoP(L1), RhoP(R1))}}, R("E"))
	for _, mode := range []Mode{ModeAuto, ModeNaive} {
		ev := NewEvaluator(s)
		ev.Mode = mode
		r := mustEval(t, ev, join)
		// Pairs with equal values: (a,a),(a,b),(b,a),(b,b),(c,c).
		if r.Len() != 5 {
			t.Errorf("mode %v: size = %d, want 5: %v", mode, r.Len(), s.FormatRelation(r))
		}
	}
}

// TestJoinValueComponentConditions checks the ∼i per-component comparisons.
func TestJoinValueComponentConditions(t *testing.T) {
	s := triplestore.NewStore()
	s.SetValue("a", triplestore.V("n1", "shared"))
	s.SetValue("b", triplestore.V("n2", "shared"))
	s.Add("E", "a", "p", "a")
	s.Add("E", "b", "p", "b")
	atom := ValAtom{L: RhoP(L1), R: RhoP(R1), Component: 1}
	join := MustJoin(R("E"), [3]Pos{L1, L2, R1}, Cond{Val: []ValAtom{atom}}, R("E"))
	ev := NewEvaluator(s)
	r := mustEval(t, ev, join)
	if r.Len() != 4 { // all pairs share component 1
		t.Errorf("size = %d, want 4", r.Len())
	}
	atom0 := ValAtom{L: RhoP(L1), R: RhoP(R1), Component: 0}
	join0 := MustJoin(R("E"), [3]Pos{L1, L2, R1}, Cond{Val: []ValAtom{atom0}}, R("E"))
	r0 := mustEval(t, ev, join0)
	if r0.Len() != 2 { // only the diagonal pairs share component 0
		t.Errorf("component-0 size = %d, want 2", r0.Len())
	}
}

// TestDistinctObjects checks the counting queries used in the proofs of
// Theorems 4 and 6: the n-distinct-objects query is nonempty exactly on
// stores with ≥ n active-domain objects.
func TestDistinctObjects(t *testing.T) {
	complete := func(n int) *triplestore.Store {
		s := triplestore.NewStore()
		var names []string
		for i := 0; i < n; i++ {
			names = append(names, string(rune('a'+i)))
		}
		for _, a := range names {
			for _, b := range names {
				for _, c := range names {
					s.Add("E", a, b, c)
				}
			}
		}
		return s
	}
	for n := 4; n <= 6; n++ {
		q, err := DistinctObjects(n)
		if err != nil {
			t.Fatal(err)
		}
		small := NewEvaluator(complete(n - 1))
		if r := mustEval(t, small, q); r.Len() != 0 {
			t.Errorf("DistinctObjects(%d) nonempty on %d-object store", n, n-1)
		}
		large := NewEvaluator(complete(n))
		if r := mustEval(t, large, q); r.Len() == 0 {
			t.Errorf("DistinctObjects(%d) empty on %d-object store", n, n)
		}
	}
	if _, err := DistinctObjects(3); err == nil {
		t.Error("DistinctObjects(3) should be rejected")
	}
	if _, err := DistinctObjects(7); err == nil {
		t.Error("DistinctObjects(7) should be rejected")
	}
}

// TestDiagonal checks the D relation used by the GXPath translation.
func TestDiagonal(t *testing.T) {
	s := triplestore.NewStore()
	s.Add("E", "a", "p", "b")
	ev := NewEvaluator(s)
	r := mustEval(t, ev, Diagonal())
	wantExactly(t, s, r, [][3]string{{"a", "a", "a"}, {"p", "p", "p"}, {"b", "b", "b"}})
}

// TestHolds checks the QueryEvaluation problem interface (Proposition 3).
func TestHolds(t *testing.T) {
	s := transport()
	ev := NewEvaluator(s)
	tr := triplestore.Triple{s.Lookup("Edinburgh"), s.Lookup("EastCoast"), s.Lookup("London")}
	ok, err := ev.Holds(Example2("E"), tr)
	if err != nil || !ok {
		t.Errorf("Holds = %v, %v; want true", ok, err)
	}
	tr2 := triplestore.Triple{s.Lookup("Edinburgh"), s.Lookup("Eurostar"), s.Lookup("London")}
	ok, err = ev.Holds(Example2("E"), tr2)
	if err != nil || ok {
		t.Errorf("Holds = %v, %v; want false", ok, err)
	}
}

// TestUnknownRelation checks error reporting.
func TestUnknownRelation(t *testing.T) {
	ev := NewEvaluator(triplestore.NewStore())
	if _, err := ev.Eval(R("missing")); err == nil {
		t.Error("want error for unknown relation")
	}
	if _, err := ev.Eval(Union{L: R("missing"), R: R("missing")}); err == nil {
		t.Error("want error propagated through union")
	}
}

// TestEmptyStarIsEmpty: the closure of a join over an empty relation is ∅.
func TestEmptyStarIsEmpty(t *testing.T) {
	s := triplestore.NewStore()
	s.EnsureRelation("E")
	ev := NewEvaluator(s)
	r := mustEval(t, ev, ReachRight("E"))
	if r.Len() != 0 {
		t.Errorf("star over empty relation has %d triples", r.Len())
	}
}

// TestStarOnCycle: reachability on a directed cycle saturates to all pairs
// and the fixpoint terminates.
func TestStarOnCycle(t *testing.T) {
	s := triplestore.NewStore()
	n := 5
	for i := 0; i < n; i++ {
		s.Add("E", name(i), "p", name((i+1)%n))
	}
	for _, disable := range []bool{false, true} {
		ev := NewEvaluator(s)
		ev.DisableReachStar = disable
		r := mustEval(t, ev, ReachRight("E"))
		if r.Len() != n*n {
			t.Errorf("disable=%v: cycle reach size = %d, want %d", disable, r.Len(), n*n)
		}
	}
}

func name(i int) string { return string(rune('a' + i)) }

// TestReachStarKindDetection checks the reachTA= shape recognizer.
func TestReachStarKindDetection(t *testing.T) {
	reach := ReachRight("E").(Star)
	if got := reachStarKind(reach); got != reachAny {
		t.Errorf("ReachRight kind = %v, want reachAny", got)
	}
	same := SameLabelReach("E").(Star)
	if got := reachStarKind(same); got != reachSameLabel {
		t.Errorf("SameLabelReach kind = %v, want reachSameLabel", got)
	}
	// Wrong output positions: not a reach star.
	other := MustStar(R("E"), [3]Pos{L1, L2, R2}, Cond{Obj: []ObjAtom{Eq(P(L3), P(R1))}}, false)
	if got := reachStarKind(other); got != reachNone {
		t.Errorf("kind = %v, want reachNone", got)
	}
	// Inequality: not a reach star.
	ineq := MustStar(R("E"), [3]Pos{L1, L2, R3}, Cond{Obj: []ObjAtom{Neq(P(L3), P(R1))}}, false)
	if got := reachStarKind(ineq); got != reachNone {
		t.Errorf("kind = %v, want reachNone", got)
	}
	// Data condition: not a reach star.
	val := MustStar(R("E"), [3]Pos{L1, L2, R3}, Cond{
		Obj: []ObjAtom{Eq(P(L3), P(R1))},
		Val: []ValAtom{VEq(RhoP(L1), RhoP(R1))},
	}, false)
	if got := reachStarKind(val); got != reachNone {
		t.Errorf("kind = %v, want reachNone", got)
	}
}

// TestEqualityOnly checks TriAL= membership detection.
func TestEqualityOnly(t *testing.T) {
	if !EqualityOnly(QueryQ("E")) {
		t.Error("Q uses only equalities")
	}
	six, _ := DistinctObjects(6)
	if EqualityOnly(six) {
		t.Error("DistinctObjects uses inequalities")
	}
}

// TestSize checks the |e| measure.
func TestSize(t *testing.T) {
	if got := Size(R("E")); got != 1 {
		t.Errorf("Size(E) = %d", got)
	}
	if got := Size(Example2("E")); got != 3 {
		t.Errorf("Size(Example2) = %d, want 3", got)
	}
	if got := Size(QueryQ("E")); got != 3 {
		t.Errorf("Size(QueryQ) = %d, want 3 (two stars over one relation)", got)
	}
}

// TestPairs13 checks the π₁,₃ projection used for the §6.2 comparisons.
func TestPairs13(t *testing.T) {
	s := transport()
	ev := NewEvaluator(s)
	r := mustEval(t, ev, Example2("E"))
	pairs := Pairs13(r)
	if len(pairs) != 3 {
		t.Fatalf("pairs = %d, want 3", len(pairs))
	}
	key := [2]triplestore.ID{s.Lookup("Edinburgh"), s.Lookup("London")}
	if !pairs[key] {
		t.Error("missing (Edinburgh, London)")
	}
	// Triples differing only in the middle collapse to one pair.
	s2 := triplestore.NewStore()
	s2.Add("E", "a", "p", "b")
	s2.Add("E", "a", "q", "b")
	r2 := mustEval(t, NewEvaluator(s2), R("E"))
	if got := Pairs13(r2); len(got) != 1 {
		t.Errorf("collapsed pairs = %d, want 1", len(got))
	}
}

// TestRelations checks relation-name collection.
func TestRelations(t *testing.T) {
	e := Union{L: R("A"), R: Diff{L: R("B"), R: R("A")}}
	got := Relations(e)
	if len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Errorf("Relations = %v", got)
	}
}
