package trial

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/triplestore"
)

// Mode selects the join-evaluation strategy.
type Mode int

const (
	// ModeAuto uses hash joins keyed on the equality atoms of each join
	// condition, with remaining atoms applied as residual filters. For
	// TriAL= expressions this realizes the O(|e|·|O|·|T|) strategy of
	// Proposition 4.
	ModeAuto Mode = iota
	// ModeNaive forces the nested-loop join of Theorem 3 (Procedure 1),
	// O(|T|²) per join. Used by the benchmarks that reproduce the paper's
	// generic bounds.
	ModeNaive
)

// Evaluator computes e(T) for TriAL* expressions over a fixed store
// (the QueryComputation problem of §5). The store must not be mutated
// while the evaluator is in use: the universal relation is cached.
type Evaluator struct {
	// Mode selects the join strategy (see Mode).
	Mode Mode
	// DisableReachStar turns off the Proposition 5 specialization of
	// Kleene stars whose join has one of the two reachTA= shapes; stars
	// are then always evaluated by the generic fixpoint of Theorem 3.
	DisableReachStar bool

	store    *triplestore.Store
	universe *triplestore.Relation
}

// NewEvaluator returns an evaluator over the given store.
func NewEvaluator(s *triplestore.Store) *Evaluator {
	return &Evaluator{store: s}
}

// Store returns the evaluator's store.
func (ev *Evaluator) Store() *triplestore.Store { return ev.store }

// Eval computes the relation e(T).
func (ev *Evaluator) Eval(e Expr) (*triplestore.Relation, error) {
	switch x := e.(type) {
	case Rel:
		r := ev.store.Relation(x.Name)
		if r == nil {
			return nil, fmt.Errorf("trial: unknown relation %q", x.Name)
		}
		return r, nil
	case Universe:
		return ev.Universe(), nil
	case Select:
		if !x.Cond.leftOnly() {
			return nil, fmt.Errorf("trial: selection condition %q mentions primed positions", x.Cond.String())
		}
		in, err := ev.Eval(x.E)
		if err != nil {
			return nil, err
		}
		ce := compileCond(ev.store, x.Cond)
		out := triplestore.NewRelation()
		in.ForEach(func(t triplestore.Triple) {
			if ce.holds(t, t) {
				out.Add(t)
			}
		})
		return out, nil
	case Union:
		l, err := ev.Eval(x.L)
		if err != nil {
			return nil, err
		}
		r, err := ev.Eval(x.R)
		if err != nil {
			return nil, err
		}
		return triplestore.Union(l, r), nil
	case Diff:
		l, err := ev.Eval(x.L)
		if err != nil {
			return nil, err
		}
		r, err := ev.Eval(x.R)
		if err != nil {
			return nil, err
		}
		return triplestore.Difference(l, r), nil
	case Join:
		l, err := ev.Eval(x.L)
		if err != nil {
			return nil, err
		}
		r, err := ev.Eval(x.R)
		if err != nil {
			return nil, err
		}
		return ev.join(l, r, x.Out, x.Cond), nil
	case Star:
		base, err := ev.Eval(x.E)
		if err != nil {
			return nil, err
		}
		if !ev.DisableReachStar {
			if kind := reachStarKind(x); kind != reachNone {
				return reachClosure(context.Background(), base, kind, nil), nil
			}
		}
		return ev.fixpointStar(base, x), nil
	}
	return nil, fmt.Errorf("trial: unknown expression type %T", e)
}

// Holds solves the QueryEvaluation problem of §5 (Proposition 3): is the
// triple t in e(T)?
func (ev *Evaluator) Holds(e Expr, t triplestore.Triple) (bool, error) {
	r, err := ev.Eval(e)
	if err != nil {
		return false, err
	}
	return r.Has(t), nil
}

// Universe returns (and caches) the universal relation U: all triples over
// the active domain.
func (ev *Evaluator) Universe() *triplestore.Relation {
	if ev.universe == nil {
		ev.universe = ComputeUniverse(ev.store)
	}
	return ev.universe
}

// join evaluates l ✶^{out}_{cond} r.
func (ev *Evaluator) join(l, r *triplestore.Relation, out [3]Pos, cond Cond) *triplestore.Relation {
	if ev.Mode == ModeNaive {
		return ev.naiveJoin(l, r, out, cond)
	}
	return ev.hashJoin(l, r, out, cond)
}

// naiveJoin is Procedure 1 of the paper: enumerate all pairs of triples,
// check the condition, emit the projected triple. O(|l|·|r|).
func (ev *Evaluator) naiveJoin(l, r *triplestore.Relation, out [3]Pos, cond Cond) *triplestore.Relation {
	ce := compileCond(ev.store, cond)
	res := triplestore.NewRelation()
	for _, lt := range l.Triples() {
		for _, rt := range r.Triples() {
			if ce.holds(lt, rt) {
				res.Add(project(out, lt, rt))
			}
		}
	}
	return res
}

// hashJoin builds a hash index over the right operand keyed by the
// cross-side equality atoms of the condition and probes it with each left
// triple; all atoms (including the keyed ones) are then re-checked on the
// candidate pair. With equality-only conditions every candidate pair
// satisfies the cross atoms by construction, realizing Proposition 4's
// strategy; inequalities degrade gracefully to a filtered scan of the
// matching bucket.
func (ev *Evaluator) hashJoin(l, r *triplestore.Relation, out [3]Pos, cond Cond) *triplestore.Relation {
	lKey, rKey := crossEqualityKeys(ev.store, cond)
	ce := compileCond(ev.store, cond)
	res := triplestore.NewRelation()

	index := make(map[string][]triplestore.Triple, r.Len())
	r.ForEach(func(rt triplestore.Triple) {
		k := rKey(rt)
		index[k] = append(index[k], rt)
	})
	l.ForEach(func(lt triplestore.Triple) {
		for _, rt := range index[lKey(lt)] {
			if ce.holds(lt, rt) {
				res.Add(project(out, lt, rt))
			}
		}
	})
	return res
}

// crossEqualityKeys derives key functions for the two sides of a join from
// the cross-side equality atoms of cond (object equalities with one
// position on each side, and data-value equalities likewise). Atoms that
// are not cross-side equalities contribute nothing to the key and are
// handled by the residual condition check.
func crossEqualityKeys(s *triplestore.Store, cond Cond) (func(triplestore.Triple) string, func(triplestore.Triple) string) {
	type objPair struct{ l, r Pos }
	type valPair struct {
		l, r Pos
		comp int
	}
	var objs []objPair
	var vals []valPair
	for _, a := range cond.Obj {
		if a.Neq || a.L.IsConst || a.R.IsConst {
			continue
		}
		lp, rp := a.L.Pos, a.R.Pos
		if lp.Left() == rp.Left() {
			continue
		}
		if !lp.Left() {
			lp, rp = rp, lp
		}
		objs = append(objs, objPair{lp, rp})
	}
	for _, a := range cond.Val {
		if a.Neq || a.L.IsLit || a.R.IsLit {
			continue
		}
		lp, rp := a.L.Pos, a.R.Pos
		if lp.Left() == rp.Left() {
			continue
		}
		if !lp.Left() {
			lp, rp = rp, lp
		}
		vals = append(vals, valPair{lp, rp, a.Component})
	}
	keyFor := func(left bool) func(triplestore.Triple) string {
		return func(t triplestore.Triple) string {
			var b strings.Builder
			for _, p := range objs {
				pos := p.l
				if !left {
					pos = p.r
				}
				b.WriteString(strconv.FormatUint(uint64(t[pos.Index()]), 36))
				b.WriteByte('|')
			}
			for _, p := range vals {
				pos := p.l
				if !left {
					pos = p.r
				}
				v := s.Value(t[pos.Index()])
				if p.comp >= 0 {
					v = componentValue(v, p.comp)
				}
				b.WriteString(v.Key())
				b.WriteByte('|')
			}
			return b.String()
		}
	}
	return keyFor(true), keyFor(false)
}

func componentValue(v triplestore.Value, i int) triplestore.Value {
	if i < len(v) {
		return triplestore.Value{v[i]}
	}
	return triplestore.Value{triplestore.Null()}
}

func project(out [3]Pos, lt, rt triplestore.Triple) triplestore.Triple {
	return triplestore.Triple{at(out[0], lt, rt), at(out[1], lt, rt), at(out[2], lt, rt)}
}

// fixpointStar evaluates (e ✶)* or (✶ e)* by semi-naive iteration:
// the right closure accumulates ((e ✶ e) ✶ e) ... by joining the frontier
// of newly derived triples with the base on the right; the left closure
// joins the base with the frontier. Termination is guaranteed because the
// result is a subset of O³ (the paper's Procedure 2 caps iterations at n³
// for the same reason).
func (ev *Evaluator) fixpointStar(base *triplestore.Relation, st Star) *triplestore.Relation {
	result := base.Clone()
	frontier := base
	for frontier.Len() > 0 {
		var derived *triplestore.Relation
		if st.Left {
			derived = ev.join(base, frontier, st.Out, st.Cond)
		} else {
			derived = ev.join(frontier, base, st.Out, st.Cond)
		}
		next := triplestore.NewRelation()
		derived.ForEach(func(t triplestore.Triple) {
			if result.Add(t) {
				next.Add(t)
			}
		})
		frontier = next
	}
	return result
}

type reachKind int

const (
	reachNone reachKind = iota
	// reachAny is (R ✶^{1,2,3′}_{3=1′})*: "reachable by an arbitrary path".
	reachAny
	// reachSameLabel is (R ✶^{1,2,3′}_{3=1′,2=2′})*: "reachable by a path
	// labeled with the same element".
	reachSameLabel
)

// reachStarKind recognizes the two star shapes that define the reachTA=
// fragment (§5). Both the right and the left closure of these joins
// compute the same relation (the join acts like relational composition on
// positions 1/3 carrying position 2 along), so either orientation
// qualifies.
func reachStarKind(st Star) reachKind {
	if st.Out != [3]Pos{L1, L2, R3} || len(st.Cond.Val) != 0 {
		return reachNone
	}
	var has31, has22 bool
	for _, a := range st.Cond.Obj {
		if a.Neq || a.L.IsConst || a.R.IsConst {
			return reachNone
		}
		switch {
		case a.L.Pos == L3 && a.R.Pos == R1, a.L.Pos == R1 && a.R.Pos == L3:
			has31 = true
		case a.L.Pos == L2 && a.R.Pos == R2, a.L.Pos == R2 && a.R.Pos == L2:
			has22 = true
		default:
			return reachNone
		}
	}
	switch {
	case has31 && !has22:
		return reachAny
	case has31 && has22:
		return reachSameLabel
	}
	return reachNone
}

// reachClosure implements Procedures 3 and 4 of the paper: evaluate the
// reachability stars in O(|O|·|T|) by computing, for every object that
// occurs as the endpoint of a base triple, the set of objects reachable
// from it in the edge graph {(s,o) : (s,p,o) ∈ base} — per label for
// reachSameLabel. (We use per-source BFS instead of the paper's Warshall
// transitive closure; both meet the bound, BFS without the O(|O|³)
// matrix.)
//
// When seed is non-nil only base triples satisfying it start chains: the
// result is σ_seed(star(base)) for conditions over the star's invariant
// positions (1 and 2, which every derived triple inherits from its seed).
// The engine uses this to hoist such selections out of the fixpoint.
//
// ctx is polled every 256 seed triples: once it is done the remaining
// sources are skipped, so a cancelled closure stops burning CPU quickly
// without putting a branch on every BFS edge. Callers that observe
// ctx.Err() afterwards must discard the (partial) result; the evaluator
// passes context.Background() and keeps the exact reference semantics.
func reachClosure(ctx context.Context, base *triplestore.Relation, kind reachKind, seed func(triplestore.Triple) bool) *triplestore.Relation {
	polled, cancelled := 0, false
	done := func() bool {
		if cancelled {
			return true
		}
		if polled++; polled&255 == 0 && ctx.Err() != nil {
			cancelled = true
		}
		return cancelled
	}
	var result *triplestore.Relation
	if seed == nil {
		// BFS from t's endpoint includes the endpoint itself (a length-0
		// path), so every base triple re-derives; cloning just skips the
		// per-triple Add work.
		result = base.Clone()
		seed = func(triplestore.Triple) bool { return true }
	} else {
		result = triplestore.NewRelation()
	}
	switch kind {
	case reachAny:
		adj := make(map[triplestore.ID][]triplestore.ID)
		base.ForEach(func(t triplestore.Triple) {
			adj[t[0]] = append(adj[t[0]], t[2])
		})
		reach := newReachCache(adj)
		base.ForEach(func(t triplestore.Triple) {
			if done() || !seed(t) {
				return
			}
			for _, l := range reach.from(t[2]) {
				result.Add(triplestore.Triple{t[0], t[1], l})
			}
		})
	case reachSameLabel:
		byLabel := make(map[triplestore.ID]map[triplestore.ID][]triplestore.ID)
		base.ForEach(func(t triplestore.Triple) {
			adj := byLabel[t[1]]
			if adj == nil {
				adj = make(map[triplestore.ID][]triplestore.ID)
				byLabel[t[1]] = adj
			}
			adj[t[0]] = append(adj[t[0]], t[2])
		})
		caches := make(map[triplestore.ID]*reachCache, len(byLabel))
		base.ForEach(func(t triplestore.Triple) {
			if done() || !seed(t) {
				return
			}
			rc := caches[t[1]]
			if rc == nil {
				rc = newReachCache(byLabel[t[1]])
				caches[t[1]] = rc
			}
			for _, l := range rc.from(t[2]) {
				result.Add(triplestore.Triple{t[0], t[1], l})
			}
		})
	}
	return result
}

// reachCache memoizes per-source BFS over an adjacency map.
type reachCache struct {
	adj  map[triplestore.ID][]triplestore.ID
	memo map[triplestore.ID][]triplestore.ID
}

func newReachCache(adj map[triplestore.ID][]triplestore.ID) *reachCache {
	return &reachCache{adj: adj, memo: make(map[triplestore.ID][]triplestore.ID)}
}

// from returns all objects reachable from src by a path of length ≥ 0 in
// the adjacency graph (src itself is always included: the star already
// contains the base, so including the endpoint is harmless and keeps the
// chains-of-length-≥-1 semantics exact).
func (rc *reachCache) from(src triplestore.ID) []triplestore.ID {
	if r, ok := rc.memo[src]; ok {
		return r
	}
	visited := map[triplestore.ID]bool{src: true}
	queue := []triplestore.ID{src}
	var order []triplestore.ID
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range rc.adj[v] {
			if !visited[w] {
				visited[w] = true
				queue = append(queue, w)
			}
		}
	}
	rc.memo[src] = order
	return order
}

// Pairs13 projects a relation to its (subject, object) pairs — the π₁,₃
// used in §6.2 to compare TriAL* with binary graph query languages.
func Pairs13(r *triplestore.Relation) map[[2]triplestore.ID]bool {
	out := make(map[[2]triplestore.ID]bool, r.Len())
	r.ForEach(func(t triplestore.Triple) {
		out[[2]triplestore.ID{t[0], t[2]}] = true
	})
	return out
}
