package trial

import (
	"math/rand"
	"testing"

	"repro/internal/triplestore"
)

// randStore builds a small random store with data values, for differential
// testing. (The genstore package has richer generators but would create an
// import cycle here.)
func randStore(rng *rand.Rand, nObj, nTriples int) *triplestore.Store {
	s := triplestore.NewStore()
	names := make([]string, nObj)
	for i := range names {
		names[i] = string(rune('a'+i%26)) + string(rune('0'+i/26))
		s.SetValue(names[i], triplestore.V(string(rune('u'+rng.Intn(3)))))
	}
	for i := 0; i < nTriples; i++ {
		s.Add("E", names[rng.Intn(nObj)], names[rng.Intn(nObj)], names[rng.Intn(nObj)])
	}
	return s
}

func randCondT(rng *rand.Rand, leftOnly bool) Cond {
	pool := []Pos{L1, L2, L3, R1, R2, R3}
	if leftOnly {
		pool = pool[:3]
	}
	var c Cond
	for i := rng.Intn(3); i > 0; i-- {
		if rng.Intn(4) == 0 {
			c.Val = append(c.Val, ValAtom{
				L:         RhoP(pool[rng.Intn(len(pool))]),
				R:         RhoP(pool[rng.Intn(len(pool))]),
				Neq:       rng.Intn(3) == 0,
				Component: -1,
			})
		} else {
			c.Obj = append(c.Obj, ObjAtom{
				L:   P(pool[rng.Intn(len(pool))]),
				R:   P(pool[rng.Intn(len(pool))]),
				Neq: rng.Intn(3) == 0,
			})
		}
	}
	return c
}

func randExprT(rng *rand.Rand, depth int) Expr {
	if depth <= 1 || rng.Intn(5) == 0 {
		return R("E")
	}
	out := [3]Pos{
		Pos(rng.Intn(6)),
		Pos(rng.Intn(6)),
		Pos(rng.Intn(6)),
	}
	switch rng.Intn(6) {
	case 0:
		return MustSelect(randExprT(rng, depth-1), randCondT(rng, true))
	case 1:
		return Union{L: randExprT(rng, depth-1), R: randExprT(rng, depth-1)}
	case 2:
		return Diff{L: randExprT(rng, depth-1), R: randExprT(rng, depth-1)}
	case 3, 4:
		return MustJoin(randExprT(rng, depth-1), out, randCondT(rng, false), randExprT(rng, depth-1))
	default:
		return MustStar(randExprT(rng, depth-1), out, randCondT(rng, false), rng.Intn(2) == 0)
	}
}

// TestNaiveHashAgree differentially tests the two join strategies of §5 on
// random TriAL* expressions: the nested-loop joins of Theorem 3 and the
// hash joins of Proposition 4 must compute identical relations.
func TestNaiveHashAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		s := randStore(rng, 4+rng.Intn(5), 3+rng.Intn(12))
		e := randExprT(rng, 3)
		naive := NewEvaluator(s)
		naive.Mode = ModeNaive
		hash := NewEvaluator(s)
		a, err1 := naive.Eval(e)
		b, err2 := hash.Eval(e)
		if err1 != nil || err2 != nil {
			t.Fatalf("eval errors: %v / %v on %s", err1, err2, e)
		}
		if !a.Equal(b) {
			t.Fatalf("strategies disagree on %s\nnaive: %s\nhash: %s",
				e, s.FormatRelation(a), s.FormatRelation(b))
		}
	}
}

// TestReachStarAgreesWithFixpoint differentially tests the Proposition 5
// specialization against the generic star fixpoint on random stores, for
// both reachTA= star shapes and both closure orientations.
func TestReachStarAgreesWithFixpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	stars := []Expr{
		ReachRight("E"),
		SameLabelReach("E"),
		MustStar(R("E"), [3]Pos{L1, L2, R3}, Cond{Obj: []ObjAtom{Eq(P(L3), P(R1))}}, true),
		MustStar(R("E"), [3]Pos{L1, L2, R3},
			Cond{Obj: []ObjAtom{Eq(P(L3), P(R1)), Eq(P(L2), P(R2))}}, true),
	}
	for trial := 0; trial < 200; trial++ {
		s := randStore(rng, 4+rng.Intn(6), 3+rng.Intn(15))
		for _, e := range stars {
			fast := NewEvaluator(s)
			slow := NewEvaluator(s)
			slow.DisableReachStar = true
			a, err1 := fast.Eval(e)
			b, err2 := slow.Eval(e)
			if err1 != nil || err2 != nil {
				t.Fatalf("eval errors: %v / %v", err1, err2)
			}
			if !a.Equal(b) {
				t.Fatalf("reach star disagrees with fixpoint on %s over\n%s\nfast: %s\nslow: %s",
					e, s.FormatRelation(s.Relation("E")), s.FormatRelation(a), s.FormatRelation(b))
			}
		}
	}
}

// TestClosureProperty checks the paper's central design property: every
// expression evaluates to a set of triples over the store's objects —
// closure of the algebra (§3).
func TestClosureProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		s := randStore(rng, 5, 8)
		e := randExprT(rng, 4)
		ev := NewEvaluator(s)
		r, err := ev.Eval(e)
		if err != nil {
			t.Fatal(err)
		}
		n := triplestore.ID(s.NumObjects())
		r.ForEach(func(tr triplestore.Triple) {
			for _, o := range tr {
				if o >= n {
					t.Fatalf("result triple %v mentions unknown object", tr)
				}
			}
		})
	}
}

// TestStarMonotone: the closure always contains its base (by definition
// (e ✶)* ⊇ e), and re-applying the star is idempotent for the
// reachability shapes.
func TestStarMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		s := randStore(rng, 5, 10)
		ev := NewEvaluator(s)
		base := mustEval(t, ev, R("E"))
		star := mustEval(t, ev, ReachRight("E"))
		base.ForEach(func(tr triplestore.Triple) {
			if !star.Has(tr) {
				t.Fatalf("star lost base triple %v", tr)
			}
		})
		// Idempotence: computing reach over the reach result changes nothing.
		s2 := triplestore.NewStore()
		for _, tr := range star.Triples() {
			s2.Add("E", s.Name(tr[0]), s.Name(tr[1]), s.Name(tr[2]))
		}
		ev2 := NewEvaluator(s2)
		star2 := mustEval(t, ev2, ReachRight("E"))
		if star2.Len() != star.Len() {
			t.Fatalf("reach not idempotent: %d then %d", star.Len(), star2.Len())
		}
	}
}

// TestUnionDiffAlgebraicLaws checks set-algebra laws through the evaluator.
func TestUnionDiffAlgebraicLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		s := randStore(rng, 5, 10)
		ev := NewEvaluator(s)
		e := R("E")
		// e ∪ e = e
		if r := mustEval(t, ev, Union{L: e, R: e}); !r.Equal(mustEval(t, ev, e)) {
			t.Fatal("union not idempotent")
		}
		// e − e = ∅
		if r := mustEval(t, ev, Diff{L: e, R: e}); r.Len() != 0 {
			t.Fatal("self-difference nonempty")
		}
		// (e^c)^c = e over the active domain
		if r := mustEval(t, ev, Complement(Complement(e))); !r.Equal(mustEval(t, ev, e)) {
			t.Fatal("double complement differs")
		}
		// e ∩ U = e
		if r := mustEval(t, ev, Intersect(e, U())); !r.Equal(mustEval(t, ev, e)) {
			t.Fatal("intersection with U differs")
		}
	}
}
