package trial

import (
	"context"

	"repro/internal/triplestore"
)

// CompiledCond is a condition compiled against a store for repeated
// evaluation over candidate triple pairs. It is the exported face of the
// compiled form the Evaluator uses internally, provided so that external
// execution engines (internal/engine) share exactly the same condition
// semantics: object-constant resolution (absent constants behave as NoID),
// data-value comparison, and the ∼i component relations.
type CompiledCond struct{ ce *condEval }

// Compile binds the condition to a store.
func (c Cond) Compile(s *triplestore.Store) CompiledCond {
	return CompiledCond{ce: compileCond(s, c)}
}

// Holds reports whether the condition is satisfied by the pair of triples
// (left = positions 1,2,3; right = 1′,2′,3′). For selection conditions pass
// the same triple on both sides.
func (cc CompiledCond) Holds(left, right triplestore.Triple) bool {
	return cc.ce.holds(left, right)
}

// LeftOnly reports whether the condition mentions only positions 1, 2, 3 —
// the validity requirement for selection conditions.
func (c Cond) LeftOnly() bool { return c.leftOnly() }

// CrossEqualityKeyFuncs returns the canonical hash-key functions for the
// two sides of a join keyed on the cross-side equality atoms of c — the
// same derivation the Evaluator's hash join uses, exported so external
// engines bucket identically (including component-restricted value
// equalities). Atoms that are not cross-side equalities contribute nothing
// and must be re-checked as residuals.
func CrossEqualityKeyFuncs(s *triplestore.Store, c Cond) (left, right func(triplestore.Triple) string) {
	return crossEqualityKeys(s, c)
}

// ComputeUniverse materializes the universal relation U of §3 over the
// active domain of s: all triples whose components occur in some triple.
// Both the Evaluator and external engines build U through this helper so
// complements cannot desynchronize.
func ComputeUniverse(s *triplestore.Store) *triplestore.Relation {
	dom := s.ActiveDomain()
	u := triplestore.NewRelationCap(len(dom) * len(dom) * len(dom))
	for _, a := range dom {
		for _, b := range dom {
			for _, c := range dom {
				u.Add(triplestore.Triple{a, b, c})
			}
		}
	}
	return u
}

// At returns the object at position p of the flattened join pair
// (o1, o2, o3, o1′, o2′, o3′).
func At(p Pos, left, right triplestore.Triple) triplestore.ID {
	return at(p, left, right)
}

// Project applies a join's output projection to a candidate pair.
func Project(out [3]Pos, left, right triplestore.Triple) triplestore.Triple {
	return project(out, left, right)
}

// CrossObjEqualities returns the object-equality atoms of c that relate a
// left position to a right position (the atoms a join can use as keys for
// hashing or index probes), normalized so the first position of each pair
// is the left one.
func (c Cond) CrossObjEqualities() [][2]Pos {
	var out [][2]Pos
	for _, a := range c.Obj {
		if a.Neq || a.L.IsConst || a.R.IsConst {
			continue
		}
		lp, rp := a.L.Pos, a.R.Pos
		if lp.Left() == rp.Left() {
			continue
		}
		if !lp.Left() {
			lp, rp = rp, lp
		}
		out = append(out, [2]Pos{lp, rp})
	}
	return out
}

// CrossValEqualities returns the data-value equality atoms of c that relate
// a left position to a right position, normalized left-first, with the
// compared component (-1 for whole values).
func (c Cond) CrossValEqualities() []CrossValEq {
	var out []CrossValEq
	for _, a := range c.Val {
		if a.Neq || a.L.IsLit || a.R.IsLit {
			continue
		}
		lp, rp := a.L.Pos, a.R.Pos
		if lp.Left() == rp.Left() {
			continue
		}
		if !lp.Left() {
			lp, rp = rp, lp
		}
		out = append(out, CrossValEq{L: lp, R: rp, Component: a.Component})
	}
	return out
}

// CrossValEq is one cross-side data-value equality: ρ(L) = ρ(R), possibly
// restricted to one tuple component.
type CrossValEq struct {
	L, R      Pos
	Component int
}

// ReachShape classifies a Kleene star against the two reachTA= shapes of
// §5 (Proposition 5), for which transitive closure is computable in
// O(|O|·|T|) instead of the generic fixpoint. Exported so external
// engines (internal/engine) and the logical optimizer share exactly the
// recognition the Evaluator uses.
type ReachShape int

const (
	// ReachNone: not a reachability star; evaluate by generic fixpoint.
	ReachNone ReachShape = ReachShape(reachNone)
	// ReachAny is (R ✶^{1,2,3′}_{3=1′})*: reachable by an arbitrary path.
	ReachAny ReachShape = ReachShape(reachAny)
	// ReachSameLabel is (R ✶^{1,2,3′}_{3=1′,2=2′})*: reachable by a path
	// whose triples all carry the same middle element.
	ReachSameLabel ReachShape = ReachShape(reachSameLabel)
)

// StarReachShape recognizes the reachTA= star shapes. Both orientations
// qualify: for these composition-like joins the right and left closures
// compute the same relation.
func StarReachShape(st Star) ReachShape { return ReachShape(reachStarKind(st)) }

// ReachClosure computes the star of a reachability-shaped join over base
// by per-source BFS (Procedures 3 and 4 of the paper). A non-nil seed
// restricts which base triples start chains: the result is then
// σ_seed(star(base)) for seed conditions over the star's invariant
// positions 1 and 2 — the device behind the engine's selection hoisting.
func ReachClosure(base *triplestore.Relation, shape ReachShape, seed func(triplestore.Triple) bool) *triplestore.Relation {
	return reachClosure(context.Background(), base, reachKind(shape), seed)
}

// ReachClosureCtx is ReachClosure with cooperative cancellation: the
// per-source BFS sweep polls ctx between seed triples and, once the
// context is done, stops expanding sources and returns ctx.Err() instead
// of a partial closure. The reference Evaluator keeps the uncancellable
// ReachClosure; this entry point exists for serving engines whose
// callers may disconnect or time out mid-star (internal/engine).
func ReachClosureCtx(ctx context.Context, base *triplestore.Relation, shape ReachShape, seed func(triplestore.Triple) bool) (*triplestore.Relation, error) {
	r := reachClosure(ctx, base, reachKind(shape), seed)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return r, nil
}
