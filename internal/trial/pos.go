package trial

import (
	"fmt"

	"repro/internal/triplestore"
)

// Pos identifies one of the six positions available in a join: positions
// 1, 2, 3 of the left operand and 1′, 2′, 3′ of the right operand. The
// paper indexes them {1, 2, 3, 1′, 2′, 3′}.
type Pos int

// The six join positions. L1..L3 are the paper's 1, 2, 3; R1..R3 are
// 1′, 2′, 3′.
const (
	L1 Pos = iota
	L2
	L3
	R1
	R2
	R3
)

// Valid reports whether p is one of the six positions.
func (p Pos) Valid() bool { return p >= L1 && p <= R3 }

// Left reports whether p refers to the left operand (1, 2, 3).
func (p Pos) Left() bool { return p >= L1 && p <= L3 }

// Index returns the component index (0..2) within the operand's triple.
func (p Pos) Index() int { return int(p) % 3 }

func (p Pos) String() string {
	switch p {
	case L1:
		return "1"
	case L2:
		return "2"
	case L3:
		return "3"
	case R1:
		return "1'"
	case R2:
		return "2'"
	case R3:
		return "3'"
	}
	return fmt.Sprintf("Pos(%d)", int(p))
}

// ParsePos parses the textual forms 1, 2, 3, 1', 2', 3'.
func ParsePos(s string) (Pos, error) {
	switch s {
	case "1":
		return L1, nil
	case "2":
		return L2, nil
	case "3":
		return L3, nil
	case "1'":
		return R1, nil
	case "2'":
		return R2, nil
	case "3'":
		return R3, nil
	}
	return 0, fmt.Errorf("trial: invalid position %q", s)
}

// at returns the object at position p given the left and right triples of
// a join, flattened as (o1, o2, o3, o1′, o2′, o3′).
func at(p Pos, left, right triplestore.Triple) triplestore.ID {
	if p.Left() {
		return left[p.Index()]
	}
	return right[p.Index()]
}
