package datalog

import "strings"

// unionFind tracks equality classes of rule variables and constants for
// the join-index planner: a variable equality-linked to a constant or to
// an already-bound variable contributes an indexable key position.
type unionFind struct {
	parent map[string]string
}

func newUnionFind() *unionFind {
	return &unionFind{parent: map[string]string{}}
}

func (u *unionFind) find(x string) string {
	p, ok := u.parent[x]
	if !ok {
		u.parent[x] = x
		return x
	}
	if p == x {
		return x
	}
	root := u.find(p)
	u.parent[x] = root
	return root
}

func (u *unionFind) union(a, b string) {
	u.parent[u.find(a)] = u.find(b)
}

// resolve returns a term whose value determines the value of variable v:
// a constant in v's equality class, or a class member variable present in
// bound. Keys in the union-find are prefixed "v:" for variables and "c:"
// for constants.
func (u *unionFind) resolve(v string, bound map[string]bool) (Term, bool) {
	root := u.find("v:" + v)
	for member := range u.parent {
		if u.find(member) != root {
			continue
		}
		if name, ok := strings.CutPrefix(member, "c:"); ok {
			return C(name), true
		}
		if name, ok := strings.CutPrefix(member, "v:"); ok && bound[name] {
			return V(name), true
		}
	}
	return Term{}, false
}
