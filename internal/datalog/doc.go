// Package datalog implements the declarative languages of §4 of the TriAL
// paper: TripleDatalog¬ (capturing TriAL, Proposition 2) and
// ReachTripleDatalog¬ (capturing TriAL*, Theorem 2).
//
// A program is a finite set of rules
//
//	S(x̄) ← S1(x̄1), S2(x̄2), ∼(y1,z1), ..., u1 = v1, ...
//
// where S, S1, S2 have arity at most 3, every relational atom and equality
// or similarity atom may be negated, and all head and condition variables
// occur in x̄1 or x̄2. The ∼ relation holds between objects with the same
// data value (ρ(x) = ρ(y)).
//
// The package provides a text parser, syntactic validators for the two
// fragments, a stratified bottom-up evaluator with semi-naive iteration
// for recursive strata, and the two linear-time translations of the paper:
// FromTriAL (algebra → program) and ToTriAL (program → algebra).
package datalog
