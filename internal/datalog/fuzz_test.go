package datalog

import "testing"

// FuzzParseProgram checks that the Datalog parser never panics and that
// parsed programs render/reparse stably.
func FuzzParseProgram(f *testing.F) {
	for _, seed := range []string{
		`Ans(?x, ?y, ?z) :- E(?x, ?y, ?z).`,
		`Ans(?x, ?y, ?z) :- E(?x, ?y, ?z), not F(?x, ?y, ?z), ~(?x, ?y), ?x != London.`,
		`S(?x, ?y, ?z) :- R(?x, ?y, ?z).
		 S(?x, ?y, ?w) :- S(?x, ?y, ?z), R(?z, ?q, ?w), ~2(?x, ?z).
		 @answer S.`,
		`P(a, "b c", ?x) :- E(a, ?y, ?x), ?y = ?y.`,
		`Fact(a, b, c).`,
		`Ans(?x :-`,
		`@answer`,
		`~(?x)`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		p, err := ParseProgram(input)
		if err != nil {
			return
		}
		s1 := p.String()
		p2, err := ParseProgram(s1)
		if err != nil {
			t.Fatalf("rendering of parsed program does not reparse: %q: %v", s1, err)
		}
		if s2 := p2.String(); s1 != s2 {
			t.Fatalf("unstable rendering:\n%q\n%q", s1, s2)
		}
	})
}
