package datalog

import (
	"fmt"

	"repro/internal/trial"
)

// ToTriAL translates a TripleDatalog¬ or ReachTripleDatalog¬ program into
// an equivalent TriAL (respectively TriAL*) expression, following the
// constructions in the proofs of Proposition 2 and Theorem 2. All
// predicates must have arity exactly 3 (the algebra is a language of
// triples; the paper's fragments allow lower arities in intermediate
// predicates but its translation, like ours, is stated for the ternary
// case). Negated body atoms become complements, so the resulting
// expression may use the universal relation U.
func ToTriAL(p *Program) (trial.Expr, error) {
	if err := p.CheckTripleDatalogShape(); err != nil {
		return nil, err
	}
	arities, err := p.arities()
	if err != nil {
		return nil, err
	}
	for pred, a := range arities {
		if a != 3 {
			return nil, fmt.Errorf("datalog: ToTriAL requires arity 3, but %s has arity %d", pred, a)
		}
	}
	recursive := p.recursivePredicates()
	for pred := range recursive {
		if !p.IDB()[pred] {
			return nil, fmt.Errorf("datalog: recursive predicate %s is not defined by rules", pred)
		}
	}
	if err := p.CheckReachShape(); err != nil {
		return nil, err
	}
	c := &toCtx{
		prog:      p,
		recursive: recursive,
		reach:     p.dependencyClosure(),
		memo:      map[string]trial.Expr{},
		idb:       p.IDB(),
	}
	ans := p.Ans
	if ans == "" {
		ans = "Ans"
	}
	return c.exprFor(ans)
}

type toCtx struct {
	prog      *Program
	recursive map[string]bool
	reach     map[string]map[string]bool
	idb       map[string]bool
	memo      map[string]trial.Expr
	building  []string
}

func (c *toCtx) exprFor(pred string) (trial.Expr, error) {
	if e, ok := c.memo[pred]; ok {
		return e, nil
	}
	if !c.idb[pred] {
		// EDB: a store relation.
		return trial.R(pred), nil
	}
	for _, b := range c.building {
		if b == pred {
			return nil, fmt.Errorf("datalog: unsupported recursion through %s (only reach-shaped self-recursion translates)", pred)
		}
	}
	c.building = append(c.building, pred)
	defer func() { c.building = c.building[:len(c.building)-1] }()

	var rules []Rule
	for _, r := range c.prog.Rules {
		if r.Head.Pred == pred {
			rules = append(rules, r)
		}
	}
	var e trial.Expr
	var err error
	if c.recursive[pred] {
		e, err = c.starFor(pred, rules)
	} else {
		for _, r := range rules {
			re, rerr := c.ruleExpr(r)
			if rerr != nil {
				return nil, rerr
			}
			if e == nil {
				e = re
			} else {
				e = trial.Union{L: e, R: re}
			}
		}
		if e == nil {
			err = fmt.Errorf("datalog: predicate %s has no rules", pred)
		}
	}
	if err != nil {
		return nil, err
	}
	c.memo[pred] = e
	return e, nil
}

// ruleExpr translates one nonrecursive rule into a join (or self-join for
// single-atom rules).
func (c *toCtx) ruleExpr(r Rule) (trial.Expr, error) {
	if len(r.Body) == 0 {
		return nil, fmt.Errorf("datalog: rule for %s has no relational atoms", r.Head.Pred)
	}
	atoms := r.Body
	if len(atoms) == 1 {
		// Duplicate the single atom: the right copy adds no constraints
		// (it is nonempty whenever the left is), and all output positions
		// refer to the left copy.
		atoms = []Atom{atoms[0], atoms[0]}
	}
	if len(atoms) != 2 {
		return nil, fmt.Errorf("datalog: rule for %s has %d relational atoms", r.Head.Pred, len(atoms))
	}
	left, right := atoms[0], atoms[1]
	// A rule whose atoms are both negated is unsafe and was rejected by
	// CheckTripleDatalogShape; a rule with one negated atom becomes a join
	// against the complement, per the proof of Proposition 2.
	le, err := c.operand(left)
	if err != nil {
		return nil, err
	}
	re, err := c.operand(right)
	if err != nil {
		return nil, err
	}
	frame := frameOf(left, right)
	out, cond, err := frame.headAndCond(r)
	if err != nil {
		return nil, err
	}
	return trial.NewJoin(le, out, cond, re)
}

func (c *toCtx) operand(a Atom) (trial.Expr, error) {
	e, err := c.exprFor(a.Pred)
	if err != nil {
		return nil, err
	}
	if a.Neg {
		return trial.Complement(e), nil
	}
	return e, nil
}

// starFor translates a reach-shaped recursive predicate into a Kleene
// closure, per the proof of Theorem 2.
func (c *toCtx) starFor(pred string, rules []Rule) (trial.Expr, error) {
	base, step := rules[0], rules[1]
	otherOK := func(s, q string) bool { return q != s && !c.reach[q][s] }
	if isReachStep(base, pred, otherOK) {
		base, step = step, base
	}
	baseAtom := base.Body[0]
	// Locate the self atom and the nonrecursive atom in the step rule.
	var self, other Atom
	var selfLeft bool
	if step.Body[0].Pred == pred {
		self, other, selfLeft = step.Body[0], step.Body[1], true
	} else {
		self, other, selfLeft = step.Body[1], step.Body[0], false
	}
	if other.Pred != baseAtom.Pred {
		return nil, fmt.Errorf("datalog: predicate %s: base rule uses %s but step rule uses %s",
			pred, baseAtom.Pred, other.Pred)
	}
	for i, t := range self.Args {
		if t.IsConst {
			return nil, fmt.Errorf("datalog: predicate %s: constants in the recursive atom are not supported", pred)
		}
		for j := 0; j < i; j++ {
			if self.Args[j].Var == t.Var {
				return nil, fmt.Errorf("datalog: predicate %s: repeated variables in the recursive atom are not supported", pred)
			}
		}
	}
	be, err := c.exprFor(baseAtom.Pred)
	if err != nil {
		return nil, err
	}
	// Frame: for a right closure (self atom first) the self atom holds
	// positions 1..3 and the base holds 1'..3'; for a left closure the
	// base holds 1..3.
	var frame atomFrame
	if selfLeft {
		frame = frameOf(self, other)
	} else {
		frame = frameOf(other, self)
	}
	out, cond, err := frame.headAndCond(step)
	if err != nil {
		return nil, err
	}
	// The constraints contributed by the base atom's repeated variables or
	// constants apply at every step of the closure; the Kleene star keys
	// them into the condition, which NewStar accepts verbatim.
	return trial.NewStar(be, out, cond, !selfLeft)
}

// atomFrame maps rule variables to join positions (first occurrence wins)
// and records intra-frame equalities forced by repeated variables and by
// constants in atom arguments.
type atomFrame struct {
	pos    map[string]trial.Pos
	forced trial.Cond
}

func frameOf(left, right Atom) atomFrame {
	f := atomFrame{pos: map[string]trial.Pos{}}
	place := func(a Atom, basePos trial.Pos) {
		for i, t := range a.Args {
			p := basePos + trial.Pos(i)
			if t.IsConst {
				f.forced.Obj = append(f.forced.Obj, trial.Eq(trial.P(p), trial.Obj(t.Const)))
				continue
			}
			if prev, ok := f.pos[t.Var]; ok {
				f.forced.Obj = append(f.forced.Obj, trial.Eq(trial.P(prev), trial.P(p)))
			} else {
				f.pos[t.Var] = p
			}
		}
	}
	place(left, trial.L1)
	place(right, trial.R1)
	return f
}

// headAndCond computes the join's output positions from the rule head and
// its condition from the forced equalities plus the rule's explicit
// equality and similarity atoms.
func (f atomFrame) headAndCond(r Rule) ([3]trial.Pos, trial.Cond, error) {
	var out [3]trial.Pos
	if len(r.Head.Args) != 3 {
		return out, trial.Cond{}, fmt.Errorf("datalog: head of %s has arity %d, want 3", r.Head.Pred, len(r.Head.Args))
	}
	for i, t := range r.Head.Args {
		if t.IsConst {
			return out, trial.Cond{}, fmt.Errorf("datalog: constants in rule heads are not supported")
		}
		p, ok := f.pos[t.Var]
		if !ok {
			return out, trial.Cond{}, fmt.Errorf("datalog: head variable ?%s not bound in body", t.Var)
		}
		out[i] = p
	}
	cond := trial.Cond{
		Obj: append([]trial.ObjAtom{}, f.forced.Obj...),
		Val: append([]trial.ValAtom{}, f.forced.Val...),
	}
	objTerm := func(t Term) (trial.ObjTerm, error) {
		if t.IsConst {
			return trial.Obj(t.Const), nil
		}
		p, ok := f.pos[t.Var]
		if !ok {
			return trial.ObjTerm{}, fmt.Errorf("datalog: condition variable ?%s not bound in body", t.Var)
		}
		return trial.P(p), nil
	}
	for _, a := range r.Eqs {
		l, err := objTerm(a.L)
		if err != nil {
			return out, trial.Cond{}, err
		}
		rt, err := objTerm(a.R)
		if err != nil {
			return out, trial.Cond{}, err
		}
		cond.Obj = append(cond.Obj, trial.ObjAtom{L: l, R: rt, Neq: a.Neq})
	}
	for _, a := range r.Sims {
		lp, lok := f.pos[a.L.Var]
		rp, rok := f.pos[a.R.Var]
		if a.L.IsConst || a.R.IsConst || !lok || !rok {
			return out, trial.Cond{}, fmt.Errorf("datalog: ~ atoms must relate bound variables")
		}
		cond.Val = append(cond.Val, trial.ValAtom{
			L:         trial.RhoP(lp),
			R:         trial.RhoP(rp),
			Neq:       a.Neg,
			Component: a.Component,
		})
	}
	return out, cond, nil
}
