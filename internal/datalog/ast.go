package datalog

import (
	"fmt"
	"strings"
)

// Term is a variable or an object constant (named; resolved against the
// store at evaluation time).
type Term struct {
	Var     string
	Const   string
	IsConst bool
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// C returns a constant term.
func C(name string) Term { return Term{Const: name, IsConst: true} }

func (t Term) String() string {
	if t.IsConst {
		if strings.ContainsAny(t.Const, " \t(),.:?!\"~") || t.Const == "" {
			return "\"" + t.Const + "\""
		}
		return t.Const
	}
	return "?" + t.Var
}

// Atom is a relational atom S(t1, ..., tk), k ≤ 3, possibly negated.
type Atom struct {
	Pred string
	Args []Term
	Neg  bool
}

func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	s := a.Pred + "(" + strings.Join(parts, ", ") + ")"
	if a.Neg {
		return "not " + s
	}
	return s
}

// SimAtom is ∼(l, r) — "l and r have the same data value" — possibly
// negated. Component ≥ 0 selects the ∼i variant of §4 that compares the
// i-th components of tuple values; -1 compares whole values.
type SimAtom struct {
	L, R      Term
	Neg       bool
	Component int
}

func (a SimAtom) String() string {
	name := "~"
	if a.Component >= 0 {
		name = fmt.Sprintf("~%d", a.Component)
	}
	s := name + "(" + a.L.String() + ", " + a.R.String() + ")"
	if a.Neg {
		return "not " + s
	}
	return s
}

// EqAtom is l = r or l != r over terms.
type EqAtom struct {
	L, R Term
	Neq  bool
}

func (a EqAtom) String() string {
	op := " = "
	if a.Neq {
		op = " != "
	}
	return a.L.String() + op + a.R.String()
}

// Rule is a single Datalog rule. The head must not be negated.
type Rule struct {
	Head Atom
	Body []Atom
	Sims []SimAtom
	Eqs  []EqAtom
}

func (r Rule) String() string {
	var parts []string
	for _, a := range r.Body {
		parts = append(parts, a.String())
	}
	for _, a := range r.Sims {
		parts = append(parts, a.String())
	}
	for _, a := range r.Eqs {
		parts = append(parts, a.String())
	}
	if len(parts) == 0 {
		return r.Head.String() + "."
	}
	return r.Head.String() + " :- " + strings.Join(parts, ", ") + "."
}

// Program is a set of rules with a designated answer predicate.
type Program struct {
	Rules []Rule
	// Ans names the answer predicate; Evaluate returns its extension.
	Ans string
}

func (p *Program) String() string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Predicates returns all predicate names appearing in the program
// (heads first, then body-only predicates), deduplicated in order.
func (p *Program) Predicates() []string {
	var names []string
	seen := map[string]bool{}
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	for _, r := range p.Rules {
		add(r.Head.Pred)
	}
	for _, r := range p.Rules {
		for _, a := range r.Body {
			add(a.Pred)
		}
	}
	return names
}

// IDB returns the set of predicates appearing in some rule head.
func (p *Program) IDB() map[string]bool {
	idb := map[string]bool{}
	for _, r := range p.Rules {
		idb[r.Head.Pred] = true
	}
	return idb
}

// arityError reports conflicting or oversized arities.
func (p *Program) arities() (map[string]int, error) {
	ar := map[string]int{}
	check := func(a Atom) error {
		if len(a.Args) == 0 || len(a.Args) > 3 {
			return fmt.Errorf("datalog: predicate %s has arity %d, want 1..3", a.Pred, len(a.Args))
		}
		if prev, ok := ar[a.Pred]; ok && prev != len(a.Args) {
			return fmt.Errorf("datalog: predicate %s used with arities %d and %d", a.Pred, prev, len(a.Args))
		}
		ar[a.Pred] = len(a.Args)
		return nil
	}
	for _, r := range p.Rules {
		if err := check(r.Head); err != nil {
			return nil, err
		}
		for _, a := range r.Body {
			if err := check(a); err != nil {
				return nil, err
			}
		}
	}
	return ar, nil
}
