package datalog

import (
	"strings"
	"testing"

	"repro/internal/triplestore"
)

func transport() *triplestore.Store {
	s := triplestore.NewStore()
	for _, t := range [][3]string{
		{"St. Andrews", "Bus Op 1", "Edinburgh"},
		{"Edinburgh", "Train Op 1", "London"},
		{"London", "Train Op 2", "Brussels"},
		{"Bus Op 1", "part_of", "NatExpress"},
		{"Train Op 1", "part_of", "EastCoast"},
		{"Train Op 2", "part_of", "Eurostar"},
		{"EastCoast", "part_of", "NatExpress"},
	} {
		s.Add("E", t[0], t[1], t[2])
	}
	return s
}

func TestParseProgramBasics(t *testing.T) {
	prog, err := ParseProgram(`
		% copy rule with a condition
		Ans(?x, ?y, ?z) :- E(?x, ?y, ?z), ?x != ?z.
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 1 {
		t.Fatalf("rules = %d", len(prog.Rules))
	}
	r := prog.Rules[0]
	if r.Head.Pred != "Ans" || len(r.Body) != 1 || len(r.Eqs) != 1 || !r.Eqs[0].Neq {
		t.Errorf("parsed rule = %s", r)
	}
	if prog.Ans != "Ans" {
		t.Errorf("Ans = %q", prog.Ans)
	}
}

func TestParseProgramFeatures(t *testing.T) {
	prog, err := ParseProgram(`
		@answer Out.
		Out(?x, ?y, ?z) :- E(?x, ?y, ?z), not F(?x, ?y, ?z),
		                   ~(?x, ?y), not ~2(?y, ?z),
		                   ?x = "St. Andrews", not ?y = ?z.
	`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Ans != "Out" {
		t.Fatalf("Ans = %q", prog.Ans)
	}
	r := prog.Rules[0]
	if len(r.Body) != 2 || !r.Body[1].Neg {
		t.Errorf("body = %v", r.Body)
	}
	if len(r.Sims) != 2 || r.Sims[1].Component != 2 || !r.Sims[1].Neg {
		t.Errorf("sims = %v", r.Sims)
	}
	if len(r.Eqs) != 2 || !r.Eqs[1].Neq {
		t.Errorf("eqs = %v", r.Eqs)
	}
	// 'not ?y = ?z' flips to '?y != ?z'.
	if r.Eqs[1].L.Var != "y" {
		t.Errorf("eq = %v", r.Eqs[1])
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"Ans(?x, ?y, ?z)",                      // missing period
		"Ans(?x ?y) :- E(?x, ?y, ?z).",         // missing comma
		"Ans(?x) :- E(?x, ?y, ?z), ? = ?y.",    // bad variable
		"Ans(?x) :- E(?x, ?y, ?z, ?w).",        // arity 4
		"@answer.",                             // missing name
		"@foo Bar.",                            // unknown directive
		`Ans(?x) :- E(?x, "unterminated, ?y).`, // string
		"Ans(?x) :- E(?x, ?y, ?z), ~(?x, ?y",   // unclosed
	} {
		if _, err := ParseProgram(in); err == nil {
			t.Errorf("ParseProgram(%q): want error", in)
		}
	}
}

func TestRuleString(t *testing.T) {
	prog := MustParseProgram(`Ans(?x, ?y, ?z) :- E(?x, ?w, ?y), not ~(?x, ?z), ?x != Edinburgh.`)
	got := strings.TrimSpace(prog.String())
	reparsed, err := ParseProgram(got)
	if err != nil {
		t.Fatalf("reparse of %q: %v", got, err)
	}
	if strings.TrimSpace(reparsed.String()) != got {
		t.Errorf("round trip changed rendering: %q vs %q", got, reparsed.String())
	}
}

func TestEvaluateCopyRule(t *testing.T) {
	s := transport()
	prog := MustParseProgram(`Ans(?x, ?y, ?z) :- E(?x, ?y, ?z).`)
	res, err := prog.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := res.Answers()
	if err != nil {
		t.Fatal(err)
	}
	if ans.Len() != 7 {
		t.Errorf("answers = %d, want 7", ans.Len())
	}
}

func TestEvaluateJoinRule(t *testing.T) {
	s := transport()
	// Example 2 as a Datalog rule: operators lifted to their companies.
	prog := MustParseProgram(`
		Ans(?x, ?c, ?y) :- E(?x, ?op, ?y), E(?op, part_of, ?c).
	`)
	res, err := prog.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := res.Answers()
	if err != nil {
		t.Fatal(err)
	}
	want := map[[3]string]bool{
		{"St. Andrews", "NatExpress", "Edinburgh"}: true,
		{"Edinburgh", "EastCoast", "London"}:       true,
		{"London", "Eurostar", "Brussels"}:         true,
		// part_of is itself a triple with predicate part_of one level up:
		{"EastCoast", "NatExpress", "NatExpress"}: false,
	}
	got := map[[3]string]bool{}
	ans.ForEach(func(tr triplestore.Triple) {
		got[[3]string{s.Name(tr[0]), s.Name(tr[1]), s.Name(tr[2])}] = true
	})
	for k, w := range want {
		if w && !got[k] {
			t.Errorf("missing %v (got %v)", k, got)
		}
	}
}

func TestEvaluateNegation(t *testing.T) {
	s := triplestore.NewStore()
	s.Add("E", "a", "p", "b")
	s.Add("E", "b", "p", "c")
	s.Add("F", "a", "p", "b")
	prog := MustParseProgram(`Ans(?x, ?y, ?z) :- E(?x, ?y, ?z), not F(?x, ?y, ?z).`)
	res, err := prog.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	ans, _ := res.Answers()
	if ans.Len() != 1 {
		t.Fatalf("answers = %d, want 1", ans.Len())
	}
	if !ans.Has(triplestore.Triple{s.Lookup("b"), s.Lookup("p"), s.Lookup("c")}) {
		t.Error("wrong surviving triple")
	}
}

func TestEvaluateSimilarity(t *testing.T) {
	s := triplestore.NewStore()
	s.SetValue("a", triplestore.V("red"))
	s.SetValue("b", triplestore.V("red"))
	s.SetValue("c", triplestore.V("blue"))
	s.Add("E", "a", "p", "b")
	s.Add("E", "a", "p", "c")
	prog := MustParseProgram(`Ans(?x, ?y, ?z) :- E(?x, ?y, ?z), ~(?x, ?z).`)
	res, err := prog.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	ans, _ := res.Answers()
	if ans.Len() != 1 || !ans.Has(triplestore.Triple{s.Lookup("a"), s.Lookup("p"), s.Lookup("b")}) {
		t.Errorf("similarity answers wrong: %s", s.FormatRelation(ans))
	}
	neg := MustParseProgram(`Ans(?x, ?y, ?z) :- E(?x, ?y, ?z), not ~(?x, ?z).`)
	res2, err := neg.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	ans2, _ := res2.Answers()
	if ans2.Len() != 1 || !ans2.Has(triplestore.Triple{s.Lookup("a"), s.Lookup("p"), s.Lookup("c")}) {
		t.Errorf("negated similarity answers wrong: %s", s.FormatRelation(ans2))
	}
}

func TestEvaluateComponentSimilarity(t *testing.T) {
	s := triplestore.NewStore()
	s.SetValue("a", triplestore.V("n1", "shared"))
	s.SetValue("b", triplestore.V("n2", "shared"))
	s.Add("E", "a", "p", "b")
	prog := MustParseProgram(`Ans(?x, ?y, ?z) :- E(?x, ?y, ?z), ~1(?x, ?z).`)
	res, err := prog.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	ans, _ := res.Answers()
	if ans.Len() != 1 {
		t.Errorf("component-1 similarity should hold: %d answers", ans.Len())
	}
	prog0 := MustParseProgram(`Ans(?x, ?y, ?z) :- E(?x, ?y, ?z), ~0(?x, ?z).`)
	res0, err := prog0.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	ans0, _ := res0.Answers()
	if ans0.Len() != 0 {
		t.Errorf("component-0 similarity should fail: %d answers", ans0.Len())
	}
}

// TestEvaluateTransitiveClosure checks recursion: part_of transitivity in
// the reach shape of §4.
func TestEvaluateTransitiveClosure(t *testing.T) {
	s := transport()
	prog := MustParseProgram(`
		PartOf(?x, ?p, ?y) :- Base(?x, ?p, ?y).
		PartOf(?x, ?p, ?z) :- PartOf(?x, ?p, ?y), Base(?y, ?q, ?z).
		Base(?x, ?p, ?y) :- E(?x, ?p, ?y), ?p = part_of.
		@answer PartOf.
	`)
	if err := prog.CheckReachShape(); err != nil {
		t.Fatalf("reach shape: %v", err)
	}
	res, err := prog.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	ans, _ := res.Answers()
	// Direct: 4 base triples. Derived: Bus Op 1 → NatExpress (direct),
	// Train Op 1 → EastCoast → NatExpress adds one.
	tr := triplestore.Triple{s.Lookup("Train Op 1"), s.Lookup("part_of"), s.Lookup("NatExpress")}
	if !ans.Has(tr) {
		t.Errorf("missing transitive part_of triple; got\n%s", s.FormatRelation(ans))
	}
	if ans.Len() != 5 {
		t.Errorf("answers = %d, want 5", ans.Len())
	}
}

func TestSafetyCheck(t *testing.T) {
	bad := []string{
		`Ans(?x, ?y, ?z) :- E(?x, ?y, ?w).`,                    // z unbound
		`Ans(?x, ?y, ?z) :- E(?x, ?y, ?z), not F(?x, ?y, ?w).`, // w unbound in negation
		`Ans(?x, ?y, ?z) :- E(?x, ?y, ?z), ~(?x, ?w).`,         // w unbound in ~
		`Ans(?x, ?y, ?z) :- E(?x, ?y, ?z), ?w = ?x.`,           // w unbound in eq
		`Ans(?x, ?y, ?z) :- not E(?x, ?y, ?z).`,                // all negative
	}
	for _, in := range bad {
		prog := MustParseProgram(in)
		if err := prog.CheckSafety(); err == nil {
			t.Errorf("CheckSafety(%q): want error", in)
		}
		if _, err := prog.Evaluate(transport()); err == nil {
			t.Errorf("Evaluate(%q): want error", in)
		}
	}
	good := MustParseProgram(`Ans(?x, ?y, "London") :- E(?x, ?y, ?z), ?x = ?x.`)
	if err := good.CheckSafety(); err != nil {
		t.Errorf("CheckSafety: %v", err)
	}
}

func TestTripleDatalogShape(t *testing.T) {
	tooMany := MustParseProgram(`Ans(?x, ?y, ?z) :- E(?x, ?y, ?a), E(?a, ?y, ?b), E(?b, ?y, ?z).`)
	if err := tooMany.CheckTripleDatalogShape(); err == nil {
		t.Error("3-atom rule should be rejected")
	}
	ok := MustParseProgram(`Ans(?x, ?y, ?z) :- E(?x, ?y, ?a), E(?a, ?y, ?z).`)
	if err := ok.CheckTripleDatalogShape(); err != nil {
		t.Errorf("2-atom rule rejected: %v", err)
	}
}

func TestNonrecursiveDetection(t *testing.T) {
	nonrec := MustParseProgram(`
		A(?x, ?y, ?z) :- E(?x, ?y, ?z).
		B(?x, ?y, ?z) :- A(?x, ?y, ?z).
	`)
	if !nonrec.IsNonrecursive() {
		t.Error("acyclic program reported recursive")
	}
	rec := MustParseProgram(`
		A(?x, ?y, ?z) :- E(?x, ?y, ?z).
		A(?x, ?y, ?z) :- A(?x, ?y, ?w), E(?w, ?y, ?z).
	`)
	if rec.IsNonrecursive() {
		t.Error("recursive program reported nonrecursive")
	}
}

func TestStratification(t *testing.T) {
	prog := MustParseProgram(`
		A(?x, ?y, ?z) :- E(?x, ?y, ?z).
		B(?x, ?y, ?z) :- E(?x, ?y, ?z), not A(?x, ?y, ?z).
	`)
	strata, err := prog.Stratify()
	if err != nil {
		t.Fatal(err)
	}
	if len(strata) != 2 {
		t.Fatalf("strata = %v", strata)
	}
	// Negation through recursion is rejected.
	bad := MustParseProgram(`
		A(?x, ?y, ?z) :- E(?x, ?y, ?z), not B(?x, ?y, ?z).
		B(?x, ?y, ?z) :- E(?x, ?y, ?z), not A(?x, ?y, ?z).
	`)
	if _, err := bad.Stratify(); err == nil {
		t.Error("unstratifiable program accepted")
	}
}

func TestReachShapeValidation(t *testing.T) {
	good := MustParseProgram(`
		S(?x, ?y, ?z) :- R(?x, ?y, ?z).
		S(?x, ?y, ?w) :- S(?x, ?y, ?z), R(?z, ?q, ?w), ~(?x, ?z).
		R(?x, ?y, ?z) :- E(?x, ?y, ?z).
		@answer S.
	`)
	if err := good.CheckReachShape(); err != nil {
		t.Errorf("good reach program rejected: %v", err)
	}
	threeRules := MustParseProgram(`
		S(?x, ?y, ?z) :- R(?x, ?y, ?z).
		S(?x, ?y, ?w) :- S(?x, ?y, ?z), R(?z, ?q, ?w).
		S(?x, ?y, ?w) :- S(?x, ?w, ?z), R(?z, ?q, ?w).
		R(?x, ?y, ?z) :- E(?x, ?y, ?z).
	`)
	if err := threeRules.CheckReachShape(); err == nil {
		t.Error("three-rule recursive predicate accepted")
	}
	badBase := MustParseProgram(`
		S(?x, ?y, ?z) :- R(?x, ?y, ?z), ?x != ?y.
		S(?x, ?y, ?w) :- S(?x, ?y, ?z), R(?z, ?q, ?w).
		R(?x, ?y, ?z) :- E(?x, ?y, ?z).
	`)
	if err := badBase.CheckReachShape(); err == nil {
		t.Error("base rule with conditions accepted")
	}
	nonlinear := MustParseProgram(`
		S(?x, ?y, ?z) :- R(?x, ?y, ?z).
		S(?x, ?y, ?w) :- S(?x, ?y, ?z), S(?z, ?q, ?w).
		R(?x, ?y, ?z) :- E(?x, ?y, ?z).
	`)
	if err := nonlinear.CheckReachShape(); err == nil {
		t.Error("nonlinear recursion accepted")
	}
}

func TestLowArityPredicates(t *testing.T) {
	s := transport()
	prog := MustParseProgram(`
		City(?x) :- E(?x, ?p, ?y), ?p != part_of.
		City(?y) :- E(?x, ?p, ?y), ?p != part_of.
		Pair(?x, ?y) :- City(?x), City(?y), ?x != ?y.
		@answer Pair.
	`)
	res, err := prog.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	tuples := res.Tuples("City")
	if len(tuples) != 4 {
		t.Errorf("cities = %d, want 4", len(tuples))
	}
	pairs := res.Tuples("Pair")
	if len(pairs) != 12 {
		t.Errorf("pairs = %d, want 12", len(pairs))
	}
	if _, err := res.Relation("Pair"); err == nil {
		t.Error("Relation on arity-2 predicate should error")
	}
}

func TestHeadConstantUnknown(t *testing.T) {
	s := transport()
	prog := MustParseProgram(`Ans(NoSuchObject, ?y, ?z) :- E(?x, ?y, ?z).`)
	if _, err := prog.Evaluate(s); err == nil {
		t.Error("unknown head constant should error")
	}
}

func TestEqualityWithUnknownConstant(t *testing.T) {
	s := transport()
	eq := MustParseProgram(`Ans(?x, ?y, ?z) :- E(?x, ?y, ?z), ?x = NoSuchObject.`)
	res, err := eq.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	ans, _ := res.Answers()
	if ans.Len() != 0 {
		t.Error("equality with unknown constant should be unsatisfiable")
	}
	neq := MustParseProgram(`Ans(?x, ?y, ?z) :- E(?x, ?y, ?z), ?x != NoSuchObject.`)
	res2, err := neq.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	ans2, _ := res2.Answers()
	if ans2.Len() != 7 {
		t.Error("inequality with unknown constant should be trivially true")
	}
}
