package datalog

import (
	"math/rand"
	"testing"

	"repro/internal/genstore"
	"repro/internal/trial"
	"repro/internal/triplestore"
)

// evalExpr evaluates a TriAL expression directly.
func evalExpr(t *testing.T, s *triplestore.Store, e trial.Expr) *triplestore.Relation {
	t.Helper()
	ev := trial.NewEvaluator(s)
	r, err := ev.Eval(e)
	if err != nil {
		t.Fatalf("algebra eval: %v", err)
	}
	return r
}

// evalProg evaluates a program's answer predicate.
func evalProg(t *testing.T, s *triplestore.Store, p *Program) *triplestore.Relation {
	t.Helper()
	res, err := p.Evaluate(s)
	if err != nil {
		t.Fatalf("datalog eval: %v", err)
	}
	ans, err := res.Answers()
	if err != nil {
		t.Fatal(err)
	}
	return ans
}

// TestFromTriALExamples translates the paper's named queries to Datalog
// and checks the programs compute the same relations (Proposition 2 and
// Theorem 2, concrete side).
func TestFromTriALExamples(t *testing.T) {
	s := transport()
	six, _ := trial.DistinctObjects(6)
	exprs := map[string]trial.Expr{
		"Example2":         trial.Example2("E"),
		"Example2Extended": trial.Example2Extended("E"),
		"ReachRight":       trial.ReachRight("E"),
		"ReachUp":          trial.ReachUp("E"),
		"SameLabelReach":   trial.SameLabelReach("E"),
		"QueryQ":           trial.QueryQ("E"),
		"DistinctObjects6": six,
		"Complement":       trial.Complement(trial.R("E")),
		"SelectConst": trial.MustSelect(trial.R("E"),
			trial.Cond{Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L2), trial.Obj("part_of"))}}),
	}
	for name, e := range exprs {
		prog, err := FromTriAL(e, []string{"E"})
		if err != nil {
			t.Errorf("%s: FromTriAL: %v", name, err)
			continue
		}
		if err := prog.CheckTripleDatalogShape(); err != nil {
			t.Errorf("%s: program outside TripleDatalog shape: %v", name, err)
		}
		want := evalExpr(t, s, e)
		got := evalProg(t, s, prog)
		if !got.Equal(want) {
			t.Errorf("%s: program and expression disagree\nexpr: %s\nprogram:\n%s\nwant %d triples, got %d",
				name, e, prog, want.Len(), got.Len())
		}
	}
}

// TestFromTriALNonrecursive: TriAL (star-free) expressions translate to
// nonrecursive programs, as Proposition 2 requires.
func TestFromTriALNonrecursive(t *testing.T) {
	six, _ := trial.DistinctObjects(6)
	for _, e := range []trial.Expr{
		trial.Example2("E"),
		trial.Complement(trial.R("E")),
		six,
	} {
		prog, err := FromTriAL(e, []string{"E"})
		if err != nil {
			t.Fatal(err)
		}
		if !prog.IsNonrecursive() {
			t.Errorf("translation of star-free %s is recursive", e)
		}
	}
	// And a starred expression is recursive.
	prog, err := FromTriAL(trial.ReachRight("E"), []string{"E"})
	if err != nil {
		t.Fatal(err)
	}
	if prog.IsNonrecursive() {
		t.Error("translation of a Kleene closure should be recursive")
	}
	if err := prog.CheckReachShape(); err != nil {
		t.Errorf("star translation outside ReachTripleDatalog shape: %v", err)
	}
}

// TestFromTriALRejectsLiterals: η literals are outside the ∼ vocabulary.
func TestFromTriALRejectsLiterals(t *testing.T) {
	e := trial.MustSelect(trial.R("E"),
		trial.Cond{Val: []trial.ValAtom{trial.VEq(trial.RhoP(trial.L1), trial.Lit(triplestore.V("x")))}})
	if _, err := FromTriAL(e, []string{"E"}); err == nil {
		t.Error("want error for data-value literal")
	}
}

// TestToTriALHandWritten translates hand-written programs to algebra.
func TestToTriALHandWritten(t *testing.T) {
	s := transport()
	cases := []struct {
		name string
		prog string
	}{
		{"copy", `Ans(?x, ?y, ?z) :- E(?x, ?y, ?z).`},
		{"permute", `Ans(?z, ?y, ?x) :- E(?x, ?y, ?z).`},
		{"join", `Ans(?x, ?c, ?y) :- E(?x, ?op, ?y), E(?op, ?p, ?c), ?p = part_of.`},
		{"const-in-atom", `Ans(?x, ?p, ?c) :- E(?x, ?p, ?c), E(?p, part_of, ?c2).`},
		{"negated", `Ans(?x, ?y, ?z) :- E(?x, ?y, ?z), not F(?x, ?y, ?z).
		             F(?x, ?y, ?z) :- E(?x, ?y, ?z), ?x = Edinburgh.`},
		{"repeat-var", `Ans(?x, ?x, ?z) :- E(?x, ?x, ?z).`},
		{"union", `Ans(?x, ?y, ?z) :- E(?x, ?y, ?z), ?y = part_of.
		           Ans(?x, ?y, ?z) :- E(?x, ?y, ?z), ?x = London.`},
		{"reach", `S(?x, ?y, ?z) :- R(?x, ?y, ?z).
		           S(?x, ?y, ?w) :- S(?x, ?y, ?z), R(?z, ?q, ?w).
		           R(?x, ?y, ?z) :- E(?x, ?y, ?z).
		           @answer S.`},
		{"same-label-reach", `S(?x, ?y, ?z) :- R(?x, ?y, ?z).
		           S(?x, ?y, ?w) :- S(?x, ?y, ?z), R(?z, ?y2, ?w), ?y = ?y2.
		           R(?x, ?y, ?z) :- E(?x, ?y, ?z).
		           @answer S.`},
	}
	for _, c := range cases {
		prog := MustParseProgram(c.prog)
		e, err := ToTriAL(prog)
		if err != nil {
			t.Errorf("%s: ToTriAL: %v", c.name, err)
			continue
		}
		want := evalProg(t, s, prog)
		got := evalExpr(t, s, e)
		if !got.Equal(want) {
			t.Errorf("%s: expression %s disagrees with program\nwant %d triples, got %d",
				c.name, e, want.Len(), got.Len())
		}
	}
}

// TestToTriALErrors checks rejection of programs outside the fragment.
func TestToTriALErrors(t *testing.T) {
	cases := []string{
		// Arity 2 predicate.
		`Ans(?x, ?y, ?z) :- E(?x, ?y, ?z), P(?x, ?y).
		 P(?x, ?y) :- E(?x, ?y, ?z).`,
		// Mutual recursion.
		`Ans(?x, ?y, ?z) :- B(?x, ?y, ?z).
		 A(?x, ?y, ?z) :- B(?x, ?y, ?z), E(?x, ?y, ?z).
		 B(?x, ?y, ?z) :- A(?x, ?y, ?z), E(?x, ?y, ?z).`,
		// Recursive rule with repeated variable in the self atom.
		`S(?x, ?y, ?z) :- R(?x, ?y, ?z).
		 S(?x, ?x, ?w) :- S(?x, ?x, ?z), R(?z, ?q, ?w).
		 R(?x, ?y, ?z) :- E(?x, ?y, ?z).
		 @answer S.`,
		// Head constant.
		`Ans(London, ?y, ?z) :- E(?x, ?y, ?z).`,
	}
	for i, in := range cases {
		prog := MustParseProgram(in)
		if _, err := ToTriAL(prog); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

// TestRoundTripProperty is the E6/E7 experiment: random TriAL* expressions
// translate to Datalog and back, and all three evaluations agree on random
// stores.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	opts := genstore.ExprOptions{
		Relations:       []string{"E"},
		MaxDepth:        3,
		AllowStar:       true,
		AllowValueConds: true,
		AllowUniverse:   true,
	}
	for i := 0; i < 150; i++ {
		s := genstore.Random(rng, 4+rng.Intn(4), 4+rng.Intn(10), 2)
		e := genstore.RandomExpr(rng, opts)
		prog, err := FromTriAL(e, []string{"E"})
		if err != nil {
			t.Fatalf("FromTriAL(%s): %v", e, err)
		}
		want := evalExpr(t, s, e)
		got := evalProg(t, s, prog)
		if !got.Equal(want) {
			t.Fatalf("program disagrees with expression %s\nprogram:\n%s", e, prog)
		}
		// Back-translation: only reach-shaped recursion round-trips, so
		// restrict to cases where ToTriAL accepts the program.
		back, err := ToTriAL(prog)
		if err != nil {
			continue
		}
		got2 := evalExpr(t, s, back)
		if !got2.Equal(want) {
			t.Fatalf("round-tripped expression disagrees\noriginal: %s\nback: %s", e, back)
		}
	}
}

// TestRoundTripReachPrograms: random reach-shaped programs translate to
// TriAL* and agree (the Theorem 2 direction program → algebra).
func TestRoundTripReachPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	heads := [][3]string{
		{"x1", "x2", "x6"},
		{"x4", "x5", "x3"},
		{"x1", "x5", "x6"},
		{"x4", "x2", "x3"},
	}
	for i := 0; i < 60; i++ {
		s := genstore.Random(rng, 5, 12, 2)
		h := heads[rng.Intn(len(heads))]
		step := Rule{
			Head: Atom{Pred: "S", Args: []Term{V(h[0]), V(h[1]), V(h[2])}},
			Body: []Atom{
				{Pred: "S", Args: []Term{V("x1"), V("x2"), V("x3")}},
				{Pred: "R", Args: []Term{V("x4"), V("x5"), V("x6")}},
			},
			Eqs: []EqAtom{{L: V("x3"), R: V("x4")}},
		}
		if rng.Intn(2) == 0 {
			step.Eqs = append(step.Eqs, EqAtom{L: V("x2"), R: V("x5")})
		}
		if rng.Intn(2) == 0 {
			step.Sims = append(step.Sims, SimAtom{L: V("x1"), R: V("x6"), Component: -1})
		}
		prog := &Program{
			Ans: "S",
			Rules: []Rule{
				{Head: Atom{Pred: "S", Args: []Term{V("x"), V("y"), V("z")}},
					Body: []Atom{{Pred: "R", Args: []Term{V("x"), V("y"), V("z")}}}},
				step,
				{Head: Atom{Pred: "R", Args: []Term{V("x"), V("y"), V("z")}},
					Body: []Atom{{Pred: "E", Args: []Term{V("x"), V("y"), V("z")}}}},
			},
		}
		if err := prog.CheckReachShape(); err != nil {
			t.Fatalf("generated program outside reach shape: %v\n%s", err, prog)
		}
		e, err := ToTriAL(prog)
		if err != nil {
			t.Fatalf("ToTriAL: %v\n%s", err, prog)
		}
		want := evalProg(t, s, prog)
		got := evalExpr(t, s, e)
		if !got.Equal(want) {
			t.Fatalf("disagreement for program\n%s\nexpression %s\nwant %d got %d",
				prog, e, want.Len(), got.Len())
		}
	}
}
