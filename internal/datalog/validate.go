package datalog

import (
	"fmt"
)

// CheckSafety verifies that every rule is safe for bottom-up evaluation:
// all head variables and all variables in equality, similarity, and
// negated atoms occur in some positive body atom — the condition (2) of
// the paper's rule shape (1).
func (p *Program) CheckSafety() error {
	for i, r := range p.Rules {
		bound := map[string]bool{}
		for _, a := range r.Body {
			if a.Neg {
				continue
			}
			for _, t := range a.Args {
				if !t.IsConst {
					bound[t.Var] = true
				}
			}
		}
		need := func(t Term, where string) error {
			if !t.IsConst && !bound[t.Var] {
				return fmt.Errorf("datalog: rule %d (%s): variable ?%s in %s not bound by a positive body atom",
					i, r.Head.Pred, t.Var, where)
			}
			return nil
		}
		for _, t := range r.Head.Args {
			if err := need(t, "head"); err != nil {
				return err
			}
		}
		for _, a := range r.Body {
			if !a.Neg {
				continue
			}
			for _, t := range a.Args {
				if err := need(t, "negated atom"); err != nil {
					return err
				}
			}
		}
		for _, a := range r.Sims {
			if err := need(a.L, "~ atom"); err != nil {
				return err
			}
			if err := need(a.R, "~ atom"); err != nil {
				return err
			}
		}
		for _, a := range r.Eqs {
			if err := need(a.L, "equality"); err != nil {
				return err
			}
			if err := need(a.R, "equality"); err != nil {
				return err
			}
		}
	}
	return nil
}

// CheckTripleDatalogShape verifies the syntactic shape of TripleDatalog¬
// rules (§4, rule form (1)): at most two relational atoms per body, all
// predicates of arity at most 3.
func (p *Program) CheckTripleDatalogShape() error {
	if _, err := p.arities(); err != nil {
		return err
	}
	for i, r := range p.Rules {
		if len(r.Body) > 2 {
			return fmt.Errorf("datalog: rule %d (%s) has %d relational atoms; TripleDatalog allows at most 2",
				i, r.Head.Pred, len(r.Body))
		}
		if r.Head.Neg {
			return fmt.Errorf("datalog: rule %d has negated head", i)
		}
	}
	return p.CheckSafety()
}

// DependencyGraph returns, for each head predicate, the set of predicates
// occurring in bodies of its rules, with a flag for negated occurrences.
type depEdge struct {
	from, to string
	negated  bool
}

func (p *Program) depEdges() []depEdge {
	var edges []depEdge
	for _, r := range p.Rules {
		for _, a := range r.Body {
			edges = append(edges, depEdge{from: r.Head.Pred, to: a.Pred, negated: a.Neg})
		}
	}
	return edges
}

// IsNonrecursive reports whether the program's dependency graph is acyclic
// — the defining condition for (nonrecursive) TripleDatalog¬ programs.
func (p *Program) IsNonrecursive() bool {
	_, err := p.Stratify()
	if err != nil {
		return false
	}
	adj := map[string][]string{}
	for _, e := range p.depEdges() {
		adj[e.from] = append(adj[e.from], e.to)
	}
	// Cycle detection over IDB predicates.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	idb := p.IDB()
	var visit func(string) bool
	visit = func(n string) bool {
		color[n] = gray
		for _, m := range adj[n] {
			if !idb[m] {
				continue
			}
			switch color[m] {
			case gray:
				return false
			case white:
				if !visit(m) {
					return false
				}
			}
		}
		color[n] = black
		return true
	}
	for pred := range idb {
		if color[pred] == white {
			if !visit(pred) {
				return false
			}
		}
	}
	return true
}

// Stratify orders the program's IDB predicates into strata such that
// negated dependencies cross strictly downward. It returns an error if
// negation occurs within a recursive cycle (the program then has no
// stratified semantics).
func (p *Program) Stratify() ([][]string, error) {
	idb := p.IDB()
	// Longest-path stratification: stratum(S) ≥ stratum(T) for positive
	// edges S→T, stratum(S) > stratum(T) for negated edges, for IDB T.
	stratum := map[string]int{}
	for pred := range idb {
		stratum[pred] = 0
	}
	edges := p.depEdges()
	n := len(idb)
	for iter := 0; ; iter++ {
		changed := false
		for _, e := range edges {
			if !idb[e.to] {
				continue
			}
			min := stratum[e.to]
			if e.negated {
				min++
			}
			if stratum[e.from] < min {
				stratum[e.from] = min
				changed = true
			}
		}
		if !changed {
			break
		}
		if iter > n {
			return nil, fmt.Errorf("datalog: program is not stratifiable (negation through recursion)")
		}
	}
	maxS := 0
	for _, s := range stratum {
		if s > maxS {
			maxS = s
		}
	}
	out := make([][]string, maxS+1)
	for _, pred := range p.Predicates() {
		if idb[pred] {
			out[stratum[pred]] = append(out[stratum[pred]], pred)
		}
	}
	return out, nil
}

// CheckReachShape verifies the ReachTripleDatalog¬ condition: every
// recursive predicate S is the head of exactly two rules
//
//	S(x̄)  ← R(x̄)
//	S(x̄′) ← S(x̄1), R(x̄2), V(y1,z1), ..., u1 (!)= v1, ...
//
// with the V atoms drawn from equalities and ∼ (they live in Rule.Eqs and
// Rule.Sims here). The paper states "R is a nonrecursive predicate"; read
// literally that would exclude the programs its own Theorem 2 translation
// produces for nested Kleene closures (the outer star's R is the inner
// star's recursive predicate), so we enforce the reading the theorem
// needs: R must not depend on S — the recursion is stratified and linear.
func (p *Program) CheckReachShape() error {
	if err := p.CheckTripleDatalogShape(); err != nil {
		return err
	}
	reach := p.dependencyClosure()
	recursive := map[string]bool{}
	for _, pred := range p.Predicates() {
		if reach[pred][pred] {
			recursive[pred] = true
		}
	}
	// otherOK: may the non-self predicate of S's rules be q?
	otherOK := func(s, q string) bool { return q != s && !reach[q][s] }
	for pred := range recursive {
		var rules []Rule
		for _, r := range p.Rules {
			if r.Head.Pred == pred {
				rules = append(rules, r)
			}
		}
		if len(rules) != 2 {
			return fmt.Errorf("datalog: recursive predicate %s has %d rules, want exactly 2", pred, len(rules))
		}
		base, step := rules[0], rules[1]
		if isReachStep(base, pred, otherOK) {
			base, step = step, base
		}
		if err := checkReachBase(base, pred, otherOK); err != nil {
			return err
		}
		if !isReachStep(step, pred, otherOK) {
			return fmt.Errorf("datalog: predicate %s: second rule is not of the reach step form S ← S, R, conditions", pred)
		}
	}
	return nil
}

func checkReachBase(r Rule, pred string, otherOK func(s, q string) bool) error {
	if len(r.Body) != 1 || r.Body[0].Neg || !otherOK(pred, r.Body[0].Pred) ||
		len(r.Sims) != 0 || len(r.Eqs) != 0 {
		return fmt.Errorf("datalog: predicate %s: base rule must be S(x̄) ← R(x̄) with R independent of S", pred)
	}
	if len(r.Head.Args) != len(r.Body[0].Args) {
		return fmt.Errorf("datalog: predicate %s: base rule arity mismatch", pred)
	}
	for i, t := range r.Head.Args {
		b := r.Body[0].Args[i]
		if t.IsConst || b.IsConst || t.Var != b.Var {
			return fmt.Errorf("datalog: predicate %s: base rule head must copy the body atom verbatim", pred)
		}
	}
	return nil
}

func isReachStep(r Rule, pred string, otherOK func(s, q string) bool) bool {
	if len(r.Body) != 2 {
		return false
	}
	var selfCount int
	for _, a := range r.Body {
		if a.Neg {
			return false
		}
		if a.Pred == pred {
			selfCount++
		} else if !otherOK(pred, a.Pred) {
			return false
		}
	}
	return selfCount == 1
}

// dependencyClosure returns the transitive closure of the predicate
// dependency relation: reach[a][b] means a's definition (transitively)
// uses b.
func (p *Program) dependencyClosure() map[string]map[string]bool {
	adj := map[string]map[string]bool{}
	for _, e := range p.depEdges() {
		if adj[e.from] == nil {
			adj[e.from] = map[string]bool{}
		}
		adj[e.from][e.to] = true
	}
	preds := p.Predicates()
	reach := map[string]map[string]bool{}
	for _, a := range preds {
		reach[a] = map[string]bool{}
		for b := range adj[a] {
			reach[a][b] = true
		}
	}
	for _, k := range preds {
		for _, i := range preds {
			if reach[i][k] {
				for j := range reach[k] {
					reach[i][j] = true
				}
			}
		}
	}
	return reach
}

// recursivePredicates returns the predicates that (transitively) depend on
// themselves.
func (p *Program) recursivePredicates() map[string]bool {
	reach := p.dependencyClosure()
	out := map[string]bool{}
	for _, a := range p.Predicates() {
		if reach[a][a] {
			out[a] = true
		}
	}
	return out
}
