package datalog

import (
	"fmt"

	"repro/internal/triplestore"
)

// fact is a padded tuple; positions ≥ arity are zero.
type fact [3]triplestore.ID

type tupleSet map[fact]struct{}

// Result holds the least model of a program over a store: the extension of
// every IDB predicate.
type Result struct {
	store  *triplestore.Store
	facts  map[string]tupleSet
	arity  map[string]int
	ansTag string
}

// Relation returns the extension of an arity-3 predicate as a triplestore
// relation.
func (r *Result) Relation(pred string) (*triplestore.Relation, error) {
	if a, ok := r.arity[pred]; ok && a != 3 {
		return nil, fmt.Errorf("datalog: predicate %s has arity %d, not 3", pred, a)
	}
	rel := triplestore.NewRelation()
	for f := range r.facts[pred] {
		rel.Add(triplestore.Triple(f))
	}
	return rel, nil
}

// Tuples returns the extension of a predicate as sorted slices of IDs.
func (r *Result) Tuples(pred string) [][]triplestore.ID {
	a := r.arity[pred]
	rel := triplestore.NewRelation()
	for f := range r.facts[pred] {
		rel.Add(triplestore.Triple(f))
	}
	var out [][]triplestore.ID
	for _, t := range rel.Triples() {
		out = append(out, append([]triplestore.ID{}, t[:a]...))
	}
	return out
}

// Answers returns the extension of the program's answer predicate.
func (r *Result) Answers() (*triplestore.Relation, error) {
	return r.Relation(r.ansTag)
}

// Evaluate computes the stratified least model of the program over the
// store. EDB predicates are the store's relations; the similarity relation
// ∼ is interpreted as ρ-equality on the store. It returns an error for
// unsafe or unstratifiable programs.
func (p *Program) Evaluate(s *triplestore.Store) (*Result, error) {
	if err := p.CheckSafety(); err != nil {
		return nil, err
	}
	arities, err := p.arities()
	if err != nil {
		return nil, err
	}
	strata, err := p.Stratify()
	if err != nil {
		return nil, err
	}
	res := &Result{
		store:  s,
		facts:  make(map[string]tupleSet),
		arity:  arities,
		ansTag: p.Ans,
	}
	if res.ansTag == "" {
		res.ansTag = "Ans"
	}
	idb := p.IDB()
	for pred := range idb {
		res.facts[pred] = tupleSet{}
	}
	for _, stratum := range strata {
		inStratum := map[string]bool{}
		for _, pred := range stratum {
			inStratum[pred] = true
		}
		var rules []Rule
		for _, r := range p.Rules {
			if inStratum[r.Head.Pred] {
				rules = append(rules, r)
			}
		}
		if err := evalStratum(s, res, rules, inStratum); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// evalStratum runs semi-naive iteration for one stratum.
func evalStratum(s *triplestore.Store, res *Result, rules []Rule, inStratum map[string]bool) error {
	// Initial round: evaluate all rules with no delta restriction.
	delta := map[string]tupleSet{}
	for pred := range inStratum {
		delta[pred] = tupleSet{}
	}
	for _, r := range rules {
		facts, err := evalRule(s, res, r, "", nil)
		if err != nil {
			return err
		}
		for _, f := range facts {
			if _, ok := res.facts[r.Head.Pred][f]; !ok {
				res.facts[r.Head.Pred][f] = struct{}{}
				delta[r.Head.Pred][f] = struct{}{}
			}
		}
	}
	// Semi-naive rounds: each derivation uses at least one delta atom.
	for {
		next := map[string]tupleSet{}
		for pred := range inStratum {
			next[pred] = tupleSet{}
		}
		derived := false
		for _, r := range rules {
			for i, a := range r.Body {
				if a.Neg || !inStratum[a.Pred] {
					continue
				}
				if len(delta[a.Pred]) == 0 {
					continue
				}
				facts, err := evalRule(s, res, r, a.Pred, deltaPick{atomIndex: i, set: delta[a.Pred]})
				if err != nil {
					return err
				}
				for _, f := range facts {
					if _, ok := res.facts[r.Head.Pred][f]; !ok {
						res.facts[r.Head.Pred][f] = struct{}{}
						next[r.Head.Pred][f] = struct{}{}
						derived = true
					}
				}
			}
		}
		if !derived {
			return nil
		}
		delta = next
	}
}

type deltaPick struct {
	atomIndex int
	set       tupleSet
}

// evalRule enumerates all satisfying assignments of the rule body and
// returns the resulting head facts. If deltaPred is nonempty, the body
// atom at delta.atomIndex ranges over delta.set instead of the full
// extension (semi-naive restriction).
func evalRule(s *triplestore.Store, res *Result, r Rule, deltaPred string, delta interface{}) ([]fact, error) {
	var dp *deltaPick
	if d, ok := delta.(deltaPick); ok && deltaPred != "" {
		dp = &d
	}
	env := map[string]triplestore.ID{}
	var out []fact

	var checkTail func() (bool, error)
	checkTail = func() (bool, error) {
		// Negated relational atoms.
		for _, a := range r.Body {
			if !a.Neg {
				continue
			}
			f, ok, err := groundAtom(s, a, env)
			if err != nil {
				return false, err
			}
			if !ok {
				// An unknown constant can never match; negation holds.
				continue
			}
			if hasFact(s, res, a.Pred, f) {
				return false, nil
			}
		}
		// Equalities.
		for _, a := range r.Eqs {
			l, lok := groundTerm(s, a.L, env)
			rr, rok := groundTerm(s, a.R, env)
			eq := lok && rok && l == rr
			if !lok || !rok {
				eq = false // unknown constants equal nothing
			}
			if eq == a.Neq {
				return false, nil
			}
		}
		// Similarity atoms.
		for _, a := range r.Sims {
			l, lok := groundTerm(s, a.L, env)
			rr, rok := groundTerm(s, a.R, env)
			if !lok || !rok {
				if !a.Neg {
					return false, nil
				}
				continue
			}
			var same bool
			if a.Component >= 0 {
				same = s.Value(l).ComponentEqual(s.Value(rr), a.Component)
			} else {
				same = s.SameValue(l, rr)
			}
			if same == a.Neg {
				return false, nil
			}
		}
		return true, nil
	}

	var positives []int
	for i, a := range r.Body {
		if !a.Neg {
			positives = append(positives, i)
		}
	}

	// Index plan: for each positive atom after the first, the argument
	// positions whose value is determined before the atom is visited —
	// constants, variables bound by earlier atoms, or variables linked to
	// either through the rule's positive equality atoms — become a hash
	// key, so candidate facts are found by lookup instead of a scan.
	// Equality propagation matters because the Proposition 2 translation
	// writes join conditions as explicit x3 = x4 atoms over distinct
	// variables rather than repeating variables across atoms.
	find := newUnionFind()
	for _, eq := range r.Eqs {
		if eq.Neq {
			continue
		}
		if !eq.L.IsConst && !eq.R.IsConst {
			find.union("v:"+eq.L.Var, "v:"+eq.R.Var)
		} else if !eq.L.IsConst && eq.R.IsConst {
			find.union("v:"+eq.L.Var, "c:"+eq.R.Const)
		} else if eq.L.IsConst && !eq.R.IsConst {
			find.union("v:"+eq.R.Var, "c:"+eq.L.Const)
		}
	}
	type keyEntry struct {
		pos  int
		term Term // how to resolve the probe value at lookup time
	}
	keyPlan := make([][]keyEntry, len(positives))
	boundVars := map[string]bool{}
	for k, idx := range positives {
		a := r.Body[idx]
		if k > 0 {
			for i, t := range a.Args {
				switch {
				case t.IsConst:
					keyPlan[k] = append(keyPlan[k], keyEntry{pos: i, term: t})
				case boundVars[t.Var]:
					keyPlan[k] = append(keyPlan[k], keyEntry{pos: i, term: t})
				default:
					// Equality-linked to a constant or a bound variable?
					if src, ok := find.resolve(t.Var, boundVars); ok {
						keyPlan[k] = append(keyPlan[k], keyEntry{pos: i, term: src})
					}
				}
			}
		}
		for _, t := range a.Args {
			if !t.IsConst {
				boundVars[t.Var] = true
			}
		}
	}
	indexes := make([]map[string][]fact, len(positives))
	factKey := func(f fact, plan []keyEntry) string {
		var b [3 * 4]byte
		n := 0
		for _, ke := range plan {
			v := f[ke.pos]
			for s := 0; s < 4; s++ {
				b[n] = byte(v >> (8 * s))
				n++
			}
		}
		return string(b[:n])
	}
	buildIndex := func(k int) error {
		idx := positives[k]
		a := r.Body[idx]
		m := make(map[string][]fact)
		add := func(f fact) error {
			key := factKey(f, keyPlan[k])
			m[key] = append(m[key], f)
			return nil
		}
		if dp != nil && dp.atomIndex == idx {
			for f := range dp.set {
				if err := add(f); err != nil {
					return err
				}
			}
		} else if err := forEachFact(s, res, a.Pred, len(a.Args), add); err != nil {
			return err
		}
		indexes[k] = m
		return nil
	}

	var rec func(k int) error
	rec = func(k int) error {
		if k == len(positives) {
			ok, err := checkTail()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			f, err := headFact(s, r.Head, env)
			if err != nil {
				return err
			}
			out = append(out, f)
			return nil
		}
		idx := positives[k]
		a := r.Body[idx]
		iter := func(f fact) error {
			// Unify a.Args with f under env.
			var boundHere []string
			ok := true
			for i, t := range a.Args {
				if t.IsConst {
					id := s.Lookup(t.Const)
					if id == triplestore.NoID || id != f[i] {
						ok = false
						break
					}
					continue
				}
				if v, bound := env[t.Var]; bound {
					if v != f[i] {
						ok = false
						break
					}
				} else {
					env[t.Var] = f[i]
					boundHere = append(boundHere, t.Var)
				}
			}
			if ok {
				if err := rec(k + 1); err != nil {
					return err
				}
			}
			for _, v := range boundHere {
				delete(env, v)
			}
			return nil
		}
		if len(keyPlan[k]) > 0 {
			if indexes[k] == nil {
				if err := buildIndex(k); err != nil {
					return err
				}
			}
			// Probe: resolve the key values from env/constants.
			var key [3 * 4]byte
			n := 0
			for _, ke := range keyPlan[k] {
				id, ok := groundTerm(s, ke.term, env)
				if !ok {
					return nil // unknown constant: no matches
				}
				for sh := 0; sh < 4; sh++ {
					key[n] = byte(id >> (8 * sh))
					n++
				}
			}
			for _, f := range indexes[k][string(key[:n])] {
				if err := iter(f); err != nil {
					return err
				}
			}
			return nil
		}
		if dp != nil && dp.atomIndex == idx {
			for f := range dp.set {
				if err := iter(f); err != nil {
					return err
				}
			}
			return nil
		}
		return forEachFact(s, res, a.Pred, len(a.Args), iter)
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return out, nil
}

// groundAtom grounds an atom's arguments under env; second result is false
// if a constant is unknown to the store.
func groundAtom(s *triplestore.Store, a Atom, env map[string]triplestore.ID) (fact, bool, error) {
	var f fact
	for i, t := range a.Args {
		id, ok := groundTerm(s, t, env)
		if !ok {
			return f, false, nil
		}
		f[i] = id
	}
	return f, true, nil
}

func groundTerm(s *triplestore.Store, t Term, env map[string]triplestore.ID) (triplestore.ID, bool) {
	if t.IsConst {
		id := s.Lookup(t.Const)
		return id, id != triplestore.NoID
	}
	id, ok := env[t.Var]
	return id, ok
}

func headFact(s *triplestore.Store, head Atom, env map[string]triplestore.ID) (fact, error) {
	var f fact
	for i, t := range head.Args {
		if t.IsConst {
			id := s.Lookup(t.Const)
			if id == triplestore.NoID {
				return f, fmt.Errorf("datalog: head constant %q not in store", t.Const)
			}
			f[i] = id
			continue
		}
		id, ok := env[t.Var]
		if !ok {
			return f, fmt.Errorf("datalog: unbound head variable ?%s", t.Var)
		}
		f[i] = id
	}
	return f, nil
}

// hasFact reports whether pred contains f, consulting IDB extensions first
// and then the store's relations (arity 3 EDB).
func hasFact(s *triplestore.Store, res *Result, pred string, f fact) bool {
	if set, ok := res.facts[pred]; ok {
		_, has := set[f]
		return has
	}
	if rel := s.Relation(pred); rel != nil {
		return rel.Has(triplestore.Triple(f))
	}
	return false
}

// forEachFact iterates the extension of pred: IDB if derived, otherwise
// the store relation of that name (empty if neither exists).
func forEachFact(s *triplestore.Store, res *Result, pred string, arity int, f func(fact) error) error {
	if set, ok := res.facts[pred]; ok {
		for fa := range set {
			if err := f(fa); err != nil {
				return err
			}
		}
		return nil
	}
	if rel := s.Relation(pred); rel != nil {
		if arity != 3 {
			return fmt.Errorf("datalog: store relation %s used with arity %d", pred, arity)
		}
		var outerErr error
		rel.ForEach(func(t triplestore.Triple) {
			if outerErr == nil {
				outerErr = f(fact(t))
			}
		})
		return outerErr
	}
	return nil
}
