package datalog

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ParseProgram parses the textual Datalog syntax:
//
//	Ans(?x, ?y, ?z) :- E(?x, ?w, ?y), not F(?y, ?w, ?z),
//	                   ~(?x, ?y), not ~2(?x, ?z), ?x != ?y, ?x = Edinburgh.
//
// Variables start with '?'; bare identifiers and quoted strings are object
// constants. '~' is the same-data-value relation; '~N' compares component
// N of tuple values. Each rule ends with '.'; '%' starts a line comment.
// The answer predicate is "Ans" unless the program sets it with a line
//
//	@answer PredName.
func ParseProgram(input string) (*Program, error) {
	p := &dparser{lex: newDLexer(input)}
	prog := &Program{}
	for {
		tok := p.lex.peek()
		if tok.kind == dtokEOF {
			break
		}
		if tok.kind == dtokPunct && tok.text == "@" {
			p.lex.next()
			name := p.lex.next()
			if name.kind != dtokIdent || name.text != "answer" {
				return nil, fmt.Errorf("datalog: unknown directive @%s", name.text)
			}
			pred := p.lex.next()
			if pred.kind != dtokIdent {
				return nil, fmt.Errorf("datalog: @answer needs a predicate name")
			}
			prog.Ans = pred.text
			if err := p.expect("."); err != nil {
				return nil, err
			}
			continue
		}
		r, err := p.parseRule()
		if err != nil {
			return nil, err
		}
		prog.Rules = append(prog.Rules, *r)
	}
	if prog.Ans == "" {
		prog.Ans = "Ans"
	}
	return prog, nil
}

// MustParseProgram is ParseProgram, panicking on error.
func MustParseProgram(input string) *Program {
	p, err := ParseProgram(input)
	if err != nil {
		panic(err)
	}
	return p
}

type dtokKind int

const (
	dtokEOF dtokKind = iota
	dtokIdent
	dtokVar
	dtokString
	dtokPunct
)

type dtoken struct {
	kind dtokKind
	text string
}

type dlexer struct {
	in  string
	pos int
	tok dtoken
	err error
}

func newDLexer(in string) *dlexer {
	l := &dlexer{in: in}
	l.advance()
	return l
}

func (l *dlexer) peek() dtoken { return l.tok }

func (l *dlexer) next() dtoken {
	t := l.tok
	l.advance()
	return t
}

func (l *dlexer) advance() {
	for l.pos < len(l.in) {
		c := l.in[l.pos]
		if unicode.IsSpace(rune(c)) {
			l.pos++
			continue
		}
		if c == '%' {
			for l.pos < len(l.in) && l.in[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		break
	}
	if l.pos >= len(l.in) {
		l.tok = dtoken{kind: dtokEOF}
		return
	}
	c := l.in[l.pos]
	switch {
	case c == '"':
		j := strings.IndexByte(l.in[l.pos+1:], '"')
		if j < 0 {
			l.err = fmt.Errorf("datalog: unterminated string")
			l.tok = dtoken{kind: dtokEOF}
			return
		}
		l.tok = dtoken{kind: dtokString, text: l.in[l.pos+1 : l.pos+1+j]}
		l.pos += j + 2
	case c == '?':
		l.pos++
		start := l.pos
		for l.pos < len(l.in) && isDIdent(l.in[l.pos]) {
			l.pos++
		}
		if l.pos == start {
			l.err = fmt.Errorf("datalog: '?' without variable name")
			l.tok = dtoken{kind: dtokEOF}
			return
		}
		l.tok = dtoken{kind: dtokVar, text: l.in[start:l.pos]}
	case c == ':':
		if l.pos+1 < len(l.in) && l.in[l.pos+1] == '-' {
			l.tok = dtoken{kind: dtokPunct, text: ":-"}
			l.pos += 2
			return
		}
		l.err = fmt.Errorf("datalog: lone ':'")
		l.tok = dtoken{kind: dtokEOF}
	case c == '!':
		if l.pos+1 < len(l.in) && l.in[l.pos+1] == '=' {
			l.tok = dtoken{kind: dtokPunct, text: "!="}
			l.pos += 2
			return
		}
		l.err = fmt.Errorf("datalog: lone '!'")
		l.tok = dtoken{kind: dtokEOF}
	case c == '~':
		l.pos++
		start := l.pos
		for l.pos < len(l.in) && l.in[l.pos] >= '0' && l.in[l.pos] <= '9' {
			l.pos++
		}
		l.tok = dtoken{kind: dtokPunct, text: "~" + l.in[start:l.pos]}
	case strings.IndexByte("(),.=@", c) >= 0:
		l.tok = dtoken{kind: dtokPunct, text: string(c)}
		l.pos++
	default:
		start := l.pos
		for l.pos < len(l.in) && isDIdent(l.in[l.pos]) {
			l.pos++
		}
		if l.pos == start {
			l.err = fmt.Errorf("datalog: unexpected character %q", c)
			l.tok = dtoken{kind: dtokEOF}
			return
		}
		l.tok = dtoken{kind: dtokIdent, text: l.in[start:l.pos]}
	}
}

func isDIdent(c byte) bool {
	return c == '_' || c == '-' || c == ':' || c == '/' || c == '#' ||
		('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}

type dparser struct {
	lex *dlexer
}

func (p *dparser) expect(text string) error {
	tok := p.lex.next()
	if tok.kind == dtokString || tok.text != text {
		if p.lex.err != nil {
			return p.lex.err
		}
		return fmt.Errorf("datalog: expected %q, got %q", text, tok.text)
	}
	return nil
}

func (p *dparser) parseRule() (*Rule, error) {
	head, err := p.parsePredAtom(false)
	if err != nil {
		return nil, err
	}
	r := &Rule{Head: *head}
	tok := p.lex.next()
	if tok.kind == dtokPunct && tok.text == "." {
		return r, nil
	}
	if tok.kind != dtokPunct || tok.text != ":-" {
		return nil, fmt.Errorf("datalog: expected ':-' or '.', got %q", tok.text)
	}
	for {
		if err := p.parseBodyItem(r); err != nil {
			return nil, err
		}
		tok := p.lex.next()
		if tok.kind == dtokPunct && tok.text == "." {
			return r, nil
		}
		if tok.kind != dtokPunct || tok.text != "," {
			return nil, fmt.Errorf("datalog: expected ',' or '.', got %q", tok.text)
		}
	}
}

func (p *dparser) parseBodyItem(r *Rule) error {
	neg := false
	if t := p.lex.peek(); t.kind == dtokIdent && t.text == "not" {
		p.lex.next()
		neg = true
	}
	tok := p.lex.peek()
	// Similarity atom.
	if tok.kind == dtokPunct && strings.HasPrefix(tok.text, "~") {
		p.lex.next()
		comp := -1
		if len(tok.text) > 1 {
			n, err := strconv.Atoi(tok.text[1:])
			if err != nil {
				return fmt.Errorf("datalog: bad ~ component %q", tok.text)
			}
			comp = n
		}
		if err := p.expect("("); err != nil {
			return err
		}
		l, err := p.parseTerm()
		if err != nil {
			return err
		}
		if err := p.expect(","); err != nil {
			return err
		}
		rt, err := p.parseTerm()
		if err != nil {
			return err
		}
		if err := p.expect(")"); err != nil {
			return err
		}
		r.Sims = append(r.Sims, SimAtom{L: l, R: rt, Neg: neg, Component: comp})
		return nil
	}
	// Equality: term (=|!=) term — distinguished from predicate atoms by
	// the token after the first term.
	if tok.kind == dtokVar || tok.kind == dtokString {
		l, err := p.parseTerm()
		if err != nil {
			return err
		}
		return p.parseEqTail(r, l, neg)
	}
	if tok.kind == dtokIdent {
		// Could be a predicate atom Name(...) or a constant in an equality.
		name := p.lex.next()
		after := p.lex.peek()
		if after.kind == dtokPunct && after.text == "(" {
			atom, err := p.parsePredArgs(name.text, neg)
			if err != nil {
				return err
			}
			r.Body = append(r.Body, *atom)
			return nil
		}
		return p.parseEqTail(r, C(name.text), neg)
	}
	if p.lex.err != nil {
		return p.lex.err
	}
	return fmt.Errorf("datalog: unexpected token %q in rule body", tok.text)
}

// parseEqTail parses "(=|!=) term" after a leading term. A 'not' prefix
// flips the polarity.
func (p *dparser) parseEqTail(r *Rule, l Term, neg bool) error {
	op := p.lex.next()
	var isNeq bool
	switch {
	case op.kind == dtokPunct && op.text == "=":
		isNeq = false
	case op.kind == dtokPunct && op.text == "!=":
		isNeq = true
	default:
		return fmt.Errorf("datalog: expected '=' or '!=', got %q", op.text)
	}
	rt, err := p.parseTerm()
	if err != nil {
		return err
	}
	if neg {
		isNeq = !isNeq
	}
	r.Eqs = append(r.Eqs, EqAtom{L: l, R: rt, Neq: isNeq})
	return nil
}

func (p *dparser) parsePredAtom(neg bool) (*Atom, error) {
	tok := p.lex.next()
	if tok.kind != dtokIdent {
		if p.lex.err != nil {
			return nil, p.lex.err
		}
		return nil, fmt.Errorf("datalog: expected predicate name, got %q", tok.text)
	}
	return p.parsePredArgs(tok.text, neg)
}

func (p *dparser) parsePredArgs(name string, neg bool) (*Atom, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	a := &Atom{Pred: name, Neg: neg}
	for {
		t, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		a.Args = append(a.Args, t)
		tok := p.lex.next()
		if tok.kind == dtokPunct && tok.text == ")" {
			break
		}
		if tok.kind != dtokPunct || tok.text != "," {
			return nil, fmt.Errorf("datalog: expected ',' or ')', got %q", tok.text)
		}
	}
	if len(a.Args) > 3 {
		return nil, fmt.Errorf("datalog: predicate %s has arity %d > 3", name, len(a.Args))
	}
	return a, nil
}

func (p *dparser) parseTerm() (Term, error) {
	tok := p.lex.next()
	switch tok.kind {
	case dtokVar:
		return V(tok.text), nil
	case dtokString:
		return C(tok.text), nil
	case dtokIdent:
		return C(tok.text), nil
	}
	if p.lex.err != nil {
		return Term{}, p.lex.err
	}
	return Term{}, fmt.Errorf("datalog: expected term, got %q", tok.text)
}
