package datalog

import (
	"fmt"

	"repro/internal/trial"
)

// FromTriAL translates a TriAL* expression into an equivalent Datalog
// program, following the constructions in the proofs of Proposition 2 and
// Theorem 2: one fresh predicate per algebra node, two rules for unions
// and for Kleene closures, negated atoms for differences. relNames lists
// the store's relation names; they are needed to define the universal
// relation U (via active-domain predicates) whenever the expression uses
// U. The translation is linear in the size of the expression (Corollary 1
// relies on this).
//
// Expressions whose η conditions compare against data-value literals are
// rejected: the relational vocabulary of §4 contains only the ∼ (and ∼i)
// relations, not value constants — the paper makes the same simplification
// in its proofs ("to avoid two-sorted structures").
func FromTriAL(e trial.Expr, relNames []string) (*Program, error) {
	c := &fromCtx{relNames: relNames}
	top, err := c.translate(e)
	if err != nil {
		return nil, err
	}
	return &Program{Rules: c.rules, Ans: top}, nil
}

type fromCtx struct {
	rules    []Rule
	n        int
	relNames []string
	uPred    string
}

func (c *fromCtx) fresh() string {
	c.n++
	return fmt.Sprintf("P%d", c.n)
}

var xyz = []Term{V("x"), V("y"), V("z")}

// sixVars are the canonical variables for the two atoms of a join rule,
// mirroring the paper's x1..x3, x4..x6.
var sixVars = []Term{V("x1"), V("x2"), V("x3"), V("x4"), V("x5"), V("x6")}

func (c *fromCtx) translate(e trial.Expr) (string, error) {
	switch x := e.(type) {
	case trial.Rel:
		p := c.fresh()
		c.rules = append(c.rules, Rule{
			Head: Atom{Pred: p, Args: xyz},
			Body: []Atom{{Pred: x.Name, Args: xyz}},
		})
		return p, nil
	case trial.Universe:
		return c.universe()
	case trial.Union:
		a, err := c.translate(x.L)
		if err != nil {
			return "", err
		}
		b, err := c.translate(x.R)
		if err != nil {
			return "", err
		}
		p := c.fresh()
		c.rules = append(c.rules,
			Rule{Head: Atom{Pred: p, Args: xyz}, Body: []Atom{{Pred: a, Args: xyz}}},
			Rule{Head: Atom{Pred: p, Args: xyz}, Body: []Atom{{Pred: b, Args: xyz}}},
		)
		return p, nil
	case trial.Diff:
		a, err := c.translate(x.L)
		if err != nil {
			return "", err
		}
		b, err := c.translate(x.R)
		if err != nil {
			return "", err
		}
		p := c.fresh()
		c.rules = append(c.rules, Rule{
			Head: Atom{Pred: p, Args: xyz},
			Body: []Atom{
				{Pred: a, Args: xyz},
				{Pred: b, Args: xyz, Neg: true},
			},
		})
		return p, nil
	case trial.Select:
		a, err := c.translate(x.E)
		if err != nil {
			return "", err
		}
		sims, eqs, err := condAtoms(x.Cond, sixVars[:3])
		if err != nil {
			return "", err
		}
		p := c.fresh()
		c.rules = append(c.rules, Rule{
			Head: Atom{Pred: p, Args: sixVars[:3]},
			Body: []Atom{{Pred: a, Args: sixVars[:3]}},
			Sims: sims,
			Eqs:  eqs,
		})
		return p, nil
	case trial.Join:
		a, err := c.translate(x.L)
		if err != nil {
			return "", err
		}
		b, err := c.translate(x.R)
		if err != nil {
			return "", err
		}
		sims, eqs, err := condAtoms(x.Cond, sixVars)
		if err != nil {
			return "", err
		}
		p := c.fresh()
		c.rules = append(c.rules, Rule{
			Head: Atom{Pred: p, Args: outVars(x.Out)},
			Body: []Atom{
				{Pred: a, Args: sixVars[:3]},
				{Pred: b, Args: sixVars[3:]},
			},
			Sims: sims,
			Eqs:  eqs,
		})
		return p, nil
	case trial.Star:
		a, err := c.translate(x.E)
		if err != nil {
			return "", err
		}
		sims, eqs, err := condAtoms(x.Cond, sixVars)
		if err != nil {
			return "", err
		}
		p := c.fresh()
		// Base rule: S(x̄) ← R(x̄).
		c.rules = append(c.rules, Rule{
			Head: Atom{Pred: p, Args: xyz},
			Body: []Atom{{Pred: a, Args: xyz}},
		})
		// Step rule. For the right closure X_{k+1} = X_k ✶ e the recursive
		// predicate supplies positions 1..3; for the left closure it
		// supplies the primed positions.
		selfAtom := Atom{Pred: p, Args: sixVars[:3]}
		baseAtom := Atom{Pred: a, Args: sixVars[3:]}
		body := []Atom{selfAtom, baseAtom}
		if x.Left {
			body = []Atom{
				{Pred: a, Args: sixVars[:3]},
				{Pred: p, Args: sixVars[3:]},
			}
		}
		c.rules = append(c.rules, Rule{
			Head: Atom{Pred: p, Args: outVars(x.Out)},
			Body: body,
			Sims: sims,
			Eqs:  eqs,
		})
		return p, nil
	}
	return "", fmt.Errorf("datalog: cannot translate expression of type %T", e)
}

// universe emits the rules defining U over the active domain, once.
func (c *fromCtx) universe() (string, error) {
	if c.uPred != "" {
		return c.uPred, nil
	}
	if len(c.relNames) == 0 {
		return "", fmt.Errorf("datalog: expression uses U but no store relation names were supplied")
	}
	dom := "Dom0"
	pair := "Dom1"
	u := "U0"
	for _, rel := range c.relNames {
		for i := 0; i < 3; i++ {
			args := []Term{V("x"), V("y"), V("z")}
			head := []Term{args[i]}
			c.rules = append(c.rules, Rule{
				Head: Atom{Pred: dom, Args: head},
				Body: []Atom{{Pred: rel, Args: args}},
			})
		}
	}
	c.rules = append(c.rules,
		Rule{
			Head: Atom{Pred: pair, Args: []Term{V("x"), V("y")}},
			Body: []Atom{{Pred: dom, Args: []Term{V("x")}}, {Pred: dom, Args: []Term{V("y")}}},
		},
		Rule{
			Head: Atom{Pred: u, Args: xyz},
			Body: []Atom{{Pred: pair, Args: []Term{V("x"), V("y")}}, {Pred: dom, Args: []Term{V("z")}}},
		},
	)
	c.uPred = u
	return u, nil
}

func outVars(out [3]trial.Pos) []Term {
	return []Term{sixVars[int(out[0])], sixVars[int(out[1])], sixVars[int(out[2])]}
}

// condAtoms converts a trial.Cond into equality and similarity atoms over
// the given variable frame (3 variables for selections, 6 for joins).
func condAtoms(c trial.Cond, frame []Term) ([]SimAtom, []EqAtom, error) {
	term := func(t trial.ObjTerm) (Term, error) {
		if t.IsConst {
			return C(t.Name), nil
		}
		if int(t.Pos) >= len(frame) {
			return Term{}, fmt.Errorf("datalog: condition mentions position %v outside the rule frame", t.Pos)
		}
		return frame[int(t.Pos)], nil
	}
	var eqs []EqAtom
	for _, a := range c.Obj {
		l, err := term(a.L)
		if err != nil {
			return nil, nil, err
		}
		r, err := term(a.R)
		if err != nil {
			return nil, nil, err
		}
		eqs = append(eqs, EqAtom{L: l, R: r, Neq: a.Neq})
	}
	var sims []SimAtom
	for _, a := range c.Val {
		if a.L.IsLit || a.R.IsLit {
			return nil, nil, fmt.Errorf("datalog: data-value literals are not expressible in the ∼ vocabulary of §4")
		}
		if int(a.L.Pos) >= len(frame) || int(a.R.Pos) >= len(frame) {
			return nil, nil, fmt.Errorf("datalog: data condition mentions position outside the rule frame")
		}
		sims = append(sims, SimAtom{
			L:         frame[int(a.L.Pos)],
			R:         frame[int(a.R.Pos)],
			Neg:       a.Neq,
			Component: a.Component,
		})
	}
	return sims, eqs, nil
}
