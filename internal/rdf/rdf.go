package rdf

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/triplestore"
)

// Triple is one ground RDF triple.
type Triple struct {
	S, P, O string
}

// Document is a ground RDF document: a set of triples.
type Document struct {
	set map[Triple]struct{}
}

// NewDocument returns an empty document.
func NewDocument() *Document {
	return &Document{set: make(map[Triple]struct{})}
}

// Add inserts a triple.
func (d *Document) Add(s, p, o string) {
	d.set[Triple{s, p, o}] = struct{}{}
}

// Has reports membership.
func (d *Document) Has(s, p, o string) bool {
	_, ok := d.set[Triple{s, p, o}]
	return ok
}

// Remove deletes a triple if present.
func (d *Document) Remove(s, p, o string) {
	delete(d.set, Triple{s, p, o})
}

// Len returns the number of triples.
func (d *Document) Len() int { return len(d.set) }

// Triples returns the triples sorted by (S, P, O).
func (d *Document) Triples() []Triple {
	out := make([]Triple, 0, len(d.set))
	for t := range d.set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.S != b.S {
			return a.S < b.S
		}
		if a.P != b.P {
			return a.P < b.P
		}
		return a.O < b.O
	})
	return out
}

// The σ(·) alphabet of [Arenas & Pérez 2011].
const (
	LabelNext = "next"
	LabelEdge = "edge"
	LabelNode = "node"
)

// Sigma computes the graph transformation σ(D) of §2.2/Figure 2. The
// resulting graph database is over Σ = {next, node, edge} and contains all
// resources of D as nodes.
func (d *Document) Sigma() *graph.Graph {
	g := graph.New()
	for t := range d.set {
		g.AddEdge(t.S, LabelEdge, t.P)
		g.AddEdge(t.P, LabelNode, t.O)
		g.AddEdge(t.S, LabelNext, t.O)
	}
	return g
}

// ToStore builds the triplestore representation of the document: a single
// ternary relation holding the triples (the triplestore view of §2.2).
func (d *Document) ToStore(rel string) *triplestore.Store {
	s := triplestore.NewStore()
	for _, t := range d.Triples() {
		s.Add(rel, t.S, t.P, t.O)
	}
	return s
}

// FromStore extracts an RDF document from an arity-3 relation of a store.
func FromStore(s *triplestore.Store, rel string) (*Document, error) {
	r := s.Relation(rel)
	if r == nil {
		return nil, fmt.Errorf("rdf: store has no relation %q", rel)
	}
	d := NewDocument()
	r.ForEach(func(t triplestore.Triple) {
		d.Add(s.Name(t[0]), s.Name(t[1]), s.Name(t[2]))
	})
	return d, nil
}

// ReadNTriples parses a small subset of the N-Triples syntax: lines of the
// form `<s> <p> <o> .` with URIs in angle brackets, plus blank lines and
// `#` comments. Literals and blank nodes are rejected — the paper works
// with ground RDF documents.
func ReadNTriples(r io.Reader) (*Document, error) {
	d := NewDocument()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasSuffix(line, ".") {
			return nil, fmt.Errorf("rdf: line %d: missing terminating '.'", lineNo)
		}
		line = strings.TrimSpace(strings.TrimSuffix(line, "."))
		var parts []string
		for len(line) > 0 {
			line = strings.TrimSpace(line)
			if line == "" {
				break
			}
			if line[0] != '<' {
				return nil, fmt.Errorf("rdf: line %d: only ground URIs are supported", lineNo)
			}
			end := strings.IndexByte(line, '>')
			if end < 0 {
				return nil, fmt.Errorf("rdf: line %d: unterminated URI", lineNo)
			}
			parts = append(parts, line[1:end])
			line = line[end+1:]
		}
		if len(parts) != 3 {
			return nil, fmt.Errorf("rdf: line %d: want 3 URIs, got %d", lineNo, len(parts))
		}
		d.Add(parts[0], parts[1], parts[2])
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return d, nil
}

// WriteNTriples writes the document in the subset syntax read by
// ReadNTriples, sorted.
func (d *Document) WriteNTriples(w io.Writer) error {
	for _, t := range d.Triples() {
		if _, err := fmt.Fprintf(w, "<%s> <%s> <%s> .\n", t.S, t.P, t.O); err != nil {
			return err
		}
	}
	return nil
}
