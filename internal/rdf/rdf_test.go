package rdf

import (
	"bytes"
	"strings"
	"testing"
)

func TestDocumentBasics(t *testing.T) {
	d := NewDocument()
	d.Add("s", "p", "o")
	d.Add("s", "p", "o") // set semantics
	if d.Len() != 1 {
		t.Fatalf("Len = %d", d.Len())
	}
	if !d.Has("s", "p", "o") || d.Has("o", "p", "s") {
		t.Error("Has misbehaves")
	}
	d.Remove("s", "p", "o")
	if d.Len() != 0 {
		t.Error("Remove failed")
	}
}

// TestSigmaFig2 reproduces Figure 2: the London–Brussels fragment of the
// Figure 1 database transforms into exactly the six expected edges.
func TestSigmaFig2(t *testing.T) {
	d := NewDocument()
	d.Add("London", "Train Op 2", "Brussels")
	d.Add("Train Op 2", "part_of", "Eurostar")
	g := d.Sigma()
	expect := [][3]string{
		{"London", LabelEdge, "Train Op 2"},
		{"Train Op 2", LabelNode, "Brussels"},
		{"London", LabelNext, "Brussels"},
		{"Train Op 2", LabelEdge, "part_of"},
		{"part_of", LabelNode, "Eurostar"},
		{"Train Op 2", LabelNext, "Eurostar"},
	}
	if g.NumEdges() != len(expect) {
		t.Errorf("σ(D) has %d edges, want %d:\n%s", g.NumEdges(), len(expect), g)
	}
	for _, e := range expect {
		if !g.HasEdge(e[0], e[1], e[2]) {
			t.Errorf("missing σ edge %v", e)
		}
	}
}

func TestToStoreFromStore(t *testing.T) {
	d := NewDocument()
	d.Add("a", "p", "b")
	d.Add("p", "q", "c")
	s := d.ToStore("E")
	if s.Size() != 2 {
		t.Fatalf("store size = %d", s.Size())
	}
	d2, err := FromStore(s, "E")
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != 2 || !d2.Has("p", "q", "c") {
		t.Error("FromStore lost triples")
	}
	if _, err := FromStore(s, "missing"); err == nil {
		t.Error("want error for missing relation")
	}
}

func TestNTriplesRoundTrip(t *testing.T) {
	in := `# a comment
<http://ex.org/a> <http://ex.org/p> <http://ex.org/b> .

<s> <p> <o> .
`
	d, err := ReadNTriples(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
	var buf bytes.Buffer
	if err := d.WriteNTriples(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadNTriples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != 2 || !d2.Has("http://ex.org/a", "http://ex.org/p", "http://ex.org/b") {
		t.Error("roundtrip lost triples")
	}
}

func TestNTriplesErrors(t *testing.T) {
	for _, in := range []string{
		"<a> <b> <c>",         // missing period
		"<a> <b> .",           // two URIs
		"<a> <b> <c> <d> .",   // four URIs
		`<a> <b> "literal" .`, // literal
		"<a> <b> <unterminated .",
	} {
		if _, err := ReadNTriples(strings.NewReader(in)); err == nil {
			t.Errorf("ReadNTriples(%q): want error", in)
		}
	}
}
