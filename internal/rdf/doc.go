// Package rdf implements ground RDF documents (§2.2 of the TriAL paper) —
// finite sets of triples (s, p, o) over URIs, with no blank nodes or
// literals — and the transformation σ(D) of Arenas and Pérez used by
// nSPARQL: the graph over the alphabet {next, edge, node} containing, for
// each triple (s, p, o), the edges (s, edge, p), (p, node, o) and
// (s, next, o) (Figure 2).
package rdf
