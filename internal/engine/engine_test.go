package engine

import (
	"strings"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/genstore"
	"repro/internal/trial"
)

func TestEvalString(t *testing.T) {
	s := fixtures.Transport()
	e := New(s)
	r, err := e.EvalString(`join[1,3',3; 2=1'](E, E)`)
	if err != nil {
		t.Fatal(err)
	}
	want, err := trial.NewEvaluator(s).Eval(trial.Example2(fixtures.RelE))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equal(want) {
		t.Fatalf("EvalString = %d triples, want %d", r.Len(), want.Len())
	}
	if _, err := e.EvalString("join[("); err == nil {
		t.Fatal("EvalString accepted a malformed query")
	}
}

// TestPlannerChoosesIndexJoin: a join of two base-relation scans with a
// cross equality should pick an index strategy, not hash — both sides are
// materialized access paths and the bucket estimate beats build+probe.
func TestPlannerChoosesIndexJoin(t *testing.T) {
	s := genstore.Chain(64, 2)
	e := New(s)
	plan, err := e.Explain(trial.Example2(genstore.RelE))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "index-") {
		t.Errorf("expected an index join for scan-scan equality join, got:\n%s", plan)
	}
}

// TestPlannerFallsBackToHash: when neither input is a base scan, index
// joins are unavailable and the planner must use hash.
func TestPlannerFallsBackToHash(t *testing.T) {
	s := genstore.Chain(64, 2)
	e := New(s, WithoutOptimize())
	inner := trial.Union{L: trial.R(genstore.RelE), R: trial.R(genstore.RelE)}
	j := trial.MustJoin(inner, [3]trial.Pos{trial.L1, trial.L2, trial.R3},
		trial.Cond{Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L3), trial.P(trial.R1))}}, inner)
	plan, err := e.Explain(j)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "hash") {
		t.Errorf("expected hash join for union-union join, got:\n%s", plan)
	}
}

// TestPlannerLoopWithoutKeys: no cross-side equality means no keyed
// strategy exists.
func TestPlannerLoopWithoutKeys(t *testing.T) {
	s := genstore.Chain(8, 1)
	e := New(s)
	j := trial.MustJoin(trial.R(genstore.RelE), [3]trial.Pos{trial.L1, trial.L2, trial.R3},
		trial.Cond{}, trial.R(genstore.RelE))
	plan, err := e.Explain(j)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "loop") {
		t.Errorf("expected loop join for key-less join, got:\n%s", plan)
	}
}

// TestStarPlanStrategies: reachability-shaped stars should plan the
// Proposition 5 BFS closure; stars outside the reachTA= shapes keep the
// index-backed semi-naive delta iteration.
func TestStarPlanStrategies(t *testing.T) {
	s := genstore.Chain(8, 1)
	e := New(s)
	plan, err := e.Explain(trial.ReachRight(genstore.RelE))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "bfs-reach") {
		t.Errorf("expected bfs-reach star for ReachRight, got:\n%s", plan)
	}
	// Output position 1' breaks the reach shape but keeps the 3=1' key.
	nonReach := trial.MustStar(trial.R(genstore.RelE), [3]trial.Pos{trial.R1, trial.L2, trial.R3},
		trial.Cond{Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L3), trial.P(trial.R1))}}, false)
	plan, err = e.Explain(nonReach)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "semi-naive delta-index") {
		t.Errorf("expected semi-naive delta-index star, got:\n%s", plan)
	}
}

// TestConcurrentEval exercises the concurrency contract the server relies
// on: many goroutines evaluating over one engine and one store. Run with
// -race to make this meaningful.
func TestConcurrentEval(t *testing.T) {
	s := genstore.Grid(6, 6)
	e := New(s)
	queries := []trial.Expr{
		trial.ReachRight(genstore.RelE),
		trial.Example2(genstore.RelE),
		trial.SameLabelReach(genstore.RelE),
	}
	want := make([]int, len(queries))
	for i, q := range queries {
		r, err := e.Eval(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r.Len()
	}
	// Fresh engine (and store) so lazy caches are rebuilt under load.
	s2 := genstore.Grid(6, 6)
	e2 := New(s2)
	done := make(chan error, 24)
	for g := 0; g < 24; g++ {
		go func(g int) {
			q := queries[g%len(queries)]
			r, err := e2.Eval(q)
			if err == nil && r.Len() != want[g%len(queries)] {
				done <- errMismatch
				return
			}
			done <- err
		}(g)
	}
	for g := 0; g < 24; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "concurrent result size mismatch" }

func TestWorkerOption(t *testing.T) {
	s := genstore.Chain(4, 1)
	if e := New(s, WithWorkers(0)); e.workers != 1 {
		t.Errorf("WithWorkers(0) gave %d workers, want 1", e.workers)
	}
	if e := New(s, WithWorkers(7)); e.workers != 7 {
		t.Errorf("WithWorkers(7) gave %d workers, want 7", e.workers)
	}
}
