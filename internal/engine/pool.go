package engine

import (
	"context"
	"sync"

	"repro/internal/triplestore"
)

// seqThreshold is the probe-side size below which a join runs on the
// calling goroutine: partitioning and merging cost more than they save on
// small inputs.
const seqThreshold = 2048

// cancelStride is how many probe triples a worker processes between
// context polls. ctx.Err() takes a lock, so polling per triple would put
// contention on the hot loop; a stride this size bounds the wasted work
// after cancellation to well under a millisecond per worker while keeping
// the uncancelled path at one cheap mask-and-branch per triple.
const cancelStride = 4096

// parallelCollect runs f over every triple of ts, collecting the triples f
// emits into a relation. When ts is large enough it is partitioned into
// chunks executed by a bounded pool of e.workers goroutines, each
// accumulating into a private relation; the per-worker relations are merged
// at the end. f must be safe for concurrent calls and must only read
// shared state; the emit function it receives is not goroutine-safe and
// must only be called from within that invocation of f.
//
// ctx carries the query's deadline/cancellation: workers poll it at chunk
// pickup and every cancelStride triples within a chunk, abandoning the
// remaining probes once it is done. The result is then partial — callers
// must check ctx.Err() afterwards (execCtx.collect does) and discard it,
// so a cancelled query frees its workers instead of finishing the operator.
func (e *Engine) parallelCollect(ctx context.Context, ts []triplestore.Triple, f func(t triplestore.Triple, emit func(triplestore.Triple))) *triplestore.Relation {
	if e.workers <= 1 || len(ts) < seqThreshold {
		out := triplestore.NewRelation()
		emit := func(t triplestore.Triple) { out.Add(t) }
		for i, t := range ts {
			if i&(cancelStride-1) == cancelStride-1 && ctx.Err() != nil {
				break
			}
			f(t, emit)
		}
		return out
	}

	// More chunks than workers so an unlucky skewed partition does not
	// leave the pool idle behind one straggler.
	nChunks := e.workers * 4
	if nChunks > len(ts) {
		nChunks = len(ts)
	}
	locals := make([]*triplestore.Relation, nChunks)
	var wg sync.WaitGroup
	sem := make(chan struct{}, e.workers)
	chunkSize := (len(ts) + nChunks - 1) / nChunks
	for i := 0; i < nChunks; i++ {
		lo := i * chunkSize
		hi := lo + chunkSize
		if hi > len(ts) {
			hi = len(ts)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(i int, part []triplestore.Triple) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				return
			}
			local := triplestore.NewRelation()
			emit := func(t triplestore.Triple) { local.Add(t) }
			for j, t := range part {
				if j&(cancelStride-1) == cancelStride-1 && ctx.Err() != nil {
					break
				}
				f(t, emit)
			}
			locals[i] = local
		}(i, ts[lo:hi])
	}
	wg.Wait()

	total := 0
	for _, l := range locals {
		if l != nil {
			total += l.Len()
		}
	}
	out := triplestore.NewRelationCap(total)
	for _, l := range locals {
		if l != nil {
			out.AddAll(l)
		}
	}
	return out
}
