package engine

import (
	"sync"

	"repro/internal/triplestore"
)

// seqThreshold is the probe-side size below which a join runs on the
// calling goroutine: partitioning and merging cost more than they save on
// small inputs.
const seqThreshold = 2048

// parallelCollect runs f over every triple of ts, collecting the triples f
// emits into a relation. When ts is large enough it is partitioned into
// chunks executed by a bounded pool of e.workers goroutines, each
// accumulating into a private relation; the per-worker relations are merged
// at the end. f must be safe for concurrent calls and must only read
// shared state; the emit function it receives is not goroutine-safe and
// must only be called from within that invocation of f.
func (e *Engine) parallelCollect(ts []triplestore.Triple, f func(t triplestore.Triple, emit func(triplestore.Triple))) *triplestore.Relation {
	if e.workers <= 1 || len(ts) < seqThreshold {
		out := triplestore.NewRelation()
		emit := func(t triplestore.Triple) { out.Add(t) }
		for _, t := range ts {
			f(t, emit)
		}
		return out
	}

	// More chunks than workers so an unlucky skewed partition does not
	// leave the pool idle behind one straggler.
	nChunks := e.workers * 4
	if nChunks > len(ts) {
		nChunks = len(ts)
	}
	locals := make([]*triplestore.Relation, nChunks)
	var wg sync.WaitGroup
	sem := make(chan struct{}, e.workers)
	chunkSize := (len(ts) + nChunks - 1) / nChunks
	for i := 0; i < nChunks; i++ {
		lo := i * chunkSize
		hi := lo + chunkSize
		if hi > len(ts) {
			hi = len(ts)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(i int, part []triplestore.Triple) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			local := triplestore.NewRelation()
			emit := func(t triplestore.Triple) { local.Add(t) }
			for _, t := range part {
				f(t, emit)
			}
			locals[i] = local
		}(i, ts[lo:hi])
	}
	wg.Wait()

	total := 0
	for _, l := range locals {
		if l != nil {
			total += l.Len()
		}
	}
	out := triplestore.NewRelationCap(total)
	for _, l := range locals {
		if l != nil {
			out.AddAll(l)
		}
	}
	return out
}
