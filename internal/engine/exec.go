package engine

import (
	"repro/internal/obs"
	"repro/internal/trial"
	"repro/internal/triplestore"
)

func (n *scanNode) exec(ctx *execCtx) (*triplestore.Relation, error) {
	return n.rel, nil
}

func (n *universeNode) exec(ctx *execCtx) (*triplestore.Relation, error) {
	return ctx.e.Universe(), nil
}

func (n *filterNode) exec(ctx *execCtx) (*triplestore.Relation, error) {
	in, err := ctx.run(n.child)
	if err != nil {
		return nil, err
	}
	return ctx.collect(in.Slice(), func(t triplestore.Triple, emit func(triplestore.Triple)) {
		if n.cc.Holds(t, t) {
			emit(t)
		}
	})
}

func (n *unionNode) exec(ctx *execCtx) (*triplestore.Relation, error) {
	l, err := ctx.run(n.l)
	if err != nil {
		return nil, err
	}
	r, err := ctx.run(n.r)
	if err != nil {
		return nil, err
	}
	return triplestore.Union(l, r), nil
}

func (n *diffNode) exec(ctx *execCtx) (*triplestore.Relation, error) {
	l, err := ctx.run(n.l)
	if err != nil {
		return nil, err
	}
	r, err := ctx.run(n.r)
	if err != nil {
		return nil, err
	}
	return triplestore.Difference(l, r), nil
}

func (n *projectNode) exec(ctx *execCtx) (*triplestore.Relation, error) {
	in, err := ctx.run(n.child)
	if err != nil {
		return nil, err
	}
	return ctx.collect(in.Slice(), func(t triplestore.Triple, emit func(triplestore.Triple)) {
		emit(triplestore.Triple{t[n.out[0]], t[n.out[1]], t[n.out[2]]})
	})
}

func (n *sharedNode) exec(ctx *execCtx) (*triplestore.Relation, error) {
	// Plan execution recurses on the calling goroutine (parallelism lives
	// inside operators), so the memo needs no lock.
	if r := ctx.shared[n.slot]; r != nil {
		ctx.trace.SetAttr("memo", "hit")
		return r, nil
	}
	r, err := ctx.run(n.child)
	if err != nil {
		return nil, err
	}
	ctx.shared[n.slot] = r
	return r, nil
}

// filterSlice keeps the triples satisfying a compiled single-triple
// condition (a side-only prefilter).
func filterSlice(ts []triplestore.Triple, cc trial.CompiledCond) []triplestore.Triple {
	out := make([]triplestore.Triple, 0, len(ts))
	for _, t := range ts {
		if cc.Holds(t, t) {
			out = append(out, t)
		}
	}
	return out
}

// filterRelation keeps the triples of r satisfying a compiled
// single-triple condition.
func filterRelation(r *triplestore.Relation, cc trial.CompiledCond) *triplestore.Relation {
	out := triplestore.NewRelationCap(r.Len())
	r.ForEach(func(t triplestore.Triple) {
		if cc.Holds(t, t) {
			out.Add(t)
		}
	})
	return out
}

func (n *joinNode) exec(ctx *execCtx) (*triplestore.Relation, error) {
	l, err := ctx.run(n.l)
	if err != nil {
		return nil, err
	}
	r, err := ctx.run(n.r)
	if err != nil {
		return nil, err
	}
	ctx.trace.SetAttr("in_left", l.Len())
	ctx.trace.SetAttr("in_right", r.Len())
	// Side-only prefilters shrink the probe side (and for hash/loop the
	// build side) with one check per triple. Indexed sides stay whole:
	// their access path is the base relation's cached index, and the full
	// condition is re-checked per candidate pair anyway.
	probeLeft := func() []triplestore.Triple {
		lts := l.Slice()
		if n.hasLCond {
			lts = filterSlice(lts, n.lCC)
		}
		return lts
	}
	switch n.strategy {
	case joinIndexRight:
		probe := n.objKeys[0]
		if n.shardRels != nil {
			return ctx.e.shardedIndexJoin(ctx.ctx, ctx.trace, n.shardRels, probeLeft(),
				probe[0].Index(), probe[1].Index(), false, n.cc, n.out)
		}
		// Build the access path before fanning out: Index mutates the
		// relation's cache under its own lock, but building once up front
		// keeps workers contention-free.
		ix := r.Index(triplestore.PermFor(probe[1].Index()))
		return ctx.collect(probeLeft(), func(lt triplestore.Triple, emit func(triplestore.Triple)) {
			for _, rt := range ix.Match(lt[probe[0].Index()]) {
				if n.cc.Holds(lt, rt) {
					emit(trial.Project(n.out, lt, rt))
				}
			}
		})
	case joinIndexLeft:
		probe := n.objKeys[0]
		rts := r.Slice()
		if n.hasRCond {
			rts = filterSlice(rts, n.rCC)
		}
		if n.shardRels != nil {
			return ctx.e.shardedIndexJoin(ctx.ctx, ctx.trace, n.shardRels, rts,
				probe[1].Index(), probe[0].Index(), true, n.cc, n.out)
		}
		ix := l.Index(triplestore.PermFor(probe[0].Index()))
		return ctx.collect(rts, func(rt triplestore.Triple, emit func(triplestore.Triple)) {
			for _, lt := range ix.Match(rt[probe[1].Index()]) {
				if n.cc.Holds(lt, rt) {
					emit(trial.Project(n.out, lt, rt))
				}
			}
		})
	case joinMerge:
		// Both sides are base-relation scans: walk their permutation
		// indexes in key order, pairing equal-key groups. The common keys
		// come from intersecting the two indexes' cached lead runs; each
		// key's group pair is independent, so the pairing fans out over
		// the worker pool.
		probe := n.objKeys[0]
		lIx := l.Index(triplestore.PermFor(probe[0].Index()))
		rIx := r.Index(triplestore.PermFor(probe[1].Index()))
		common := intersectSortedIDs(lIx.Leads(), rIx.Leads())
		ctx.trace.SetAttr("merge_keys", len(common))
		res := ctx.e.parallelIDCollect(ctx.ctx, common, func(id triplestore.ID, emit func(triplestore.Triple)) {
			rts := rIx.Match(id)
			if n.hasRCond {
				rts = filterSlice(rts, n.rCC)
				if len(rts) == 0 {
					return
				}
			}
			for _, lt := range lIx.Match(id) {
				if n.hasLCond && !n.lCC.Holds(lt, lt) {
					continue
				}
				for _, rt := range rts {
					if n.cc.Holds(lt, rt) {
						emit(trial.Project(n.out, lt, rt))
					}
				}
			}
		})
		if err := ctx.ctx.Err(); err != nil {
			return nil, err
		}
		return res, nil
	case joinHash:
		lKey, rKey := trial.CrossEqualityKeyFuncs(ctx.e.store, n.cond)
		table := make(map[string][]triplestore.Triple, r.Len())
		r.ForEach(func(rt triplestore.Triple) {
			if n.hasRCond && !n.rCC.Holds(rt, rt) {
				return
			}
			k := rKey(rt)
			table[k] = append(table[k], rt)
		})
		return ctx.collect(probeLeft(), func(lt triplestore.Triple, emit func(triplestore.Triple)) {
			for _, rt := range table[lKey(lt)] {
				if n.cc.Holds(lt, rt) {
					emit(trial.Project(n.out, lt, rt))
				}
			}
		})
	default: // joinLoop
		rts := r.Slice()
		if n.hasRCond {
			rts = filterSlice(rts, n.rCC)
		}
		return ctx.collect(probeLeft(), func(lt triplestore.Triple, emit func(triplestore.Triple)) {
			for _, rt := range rts {
				if n.cc.Holds(lt, rt) {
					emit(trial.Project(n.out, lt, rt))
				}
			}
		})
	}
}

// exec evaluates the Kleene closure. Reach-shaped stars (the reachTA=
// fragment of §5) use Proposition 5's per-source BFS — the same
// procedure the reference Evaluator uses — honoring the hoisted seed
// filter if one was attached. Everything else runs semi-naive (delta)
// iteration: the result starts as the seed set, and each round joins
// only the delta (the triples derived for the first time in the previous
// round) with the loop-invariant base, until no new triples appear. The
// access path over the base is built once, before the first round.
//
// Both paths poll the execution context: the BFS between source triples
// (trial.ReachClosureCtx), the semi-naive loop at every round boundary
// (plus the chunk-level polls inside each round's parallel join). A star
// over a dense graph therefore stops within one round of its caller
// disconnecting or timing out.
func (n *starNode) exec(ctx *execCtx) (*triplestore.Relation, error) {
	base, err := ctx.run(n.child)
	if err != nil {
		return nil, err
	}
	ctx.trace.SetAttr("in", base.Len())
	if n.reach != trial.ReachNone {
		var seed func(triplestore.Triple) bool
		if n.hasSeed {
			seed = func(t triplestore.Triple) bool { return n.seedCC.Holds(t, t) }
		}
		return trial.ReachClosureCtx(ctx.ctx, base, n.reach, seed)
	}
	// The join side of the iteration may be prefiltered by side-only
	// condition atoms; the seed set may be filtered by a hoisted
	// selection. Both filters only prune work: the full join condition is
	// still checked for every candidate pair.
	joinBase := base
	if n.hasBaseCond {
		joinBase = filterRelation(base, n.baseCC)
	}
	seeds := base
	if n.hasSeed {
		seeds = filterRelation(base, n.seedCC)
	}
	if n.shardedN > 0 {
		return n.execShardedStar(ctx, joinBase, seeds)
	}
	step := n.stepFunc(ctx, joinBase)
	result := seeds.Clone()
	delta := seeds
	rec := newRoundRecorder(ctx.trace, seeds.Len())
	for delta.Len() > 0 {
		if err := ctx.ctx.Err(); err != nil {
			return nil, err
		}
		rec.round(delta.Len())
		derived := step(delta)
		next := triplestore.NewRelation()
		derived.ForEach(func(t triplestore.Triple) {
			if result.Add(t) {
				next.Add(t)
			}
		})
		delta = next
	}
	if err := ctx.ctx.Err(); err != nil {
		return nil, err
	}
	rec.done()
	return result, nil
}

// maxTracedDeltas bounds how many per-round delta sizes a star span
// records: deep fixpoints (a 500-chain runs ~500 rounds) would otherwise
// bloat every trace with an attribute nobody can read.
const maxTracedDeltas = 32

// roundRecorder accumulates semi-naive round statistics onto a span: the
// round count and the first maxTracedDeltas per-round delta sizes. All
// methods are no-ops for an untraced run (nil span), so the fixpoint
// loops stay branch-cheap.
type roundRecorder struct {
	sp     *obs.Span
	rounds int
	deltas []int
}

func newRoundRecorder(sp *obs.Span, seeds int) *roundRecorder {
	if sp != nil {
		sp.SetAttr("seeds", seeds)
	}
	return &roundRecorder{sp: sp}
}

func (r *roundRecorder) round(deltaLen int) {
	if r.sp == nil {
		return
	}
	r.rounds++
	if len(r.deltas) < maxTracedDeltas {
		r.deltas = append(r.deltas, deltaLen)
	}
}

func (r *roundRecorder) done() {
	if r.sp == nil {
		return
	}
	r.sp.SetAttr("rounds", r.rounds)
	if r.rounds > maxTracedDeltas {
		r.sp.SetAttr("deltas_truncated", true)
	}
	r.sp.SetAttr("deltas", r.deltas)
}

// stepFunc returns the per-round join of the semi-naive iteration. For the
// right closure (e ✶)* the round computes delta ✶ base; for the left
// closure, base ✶ delta. When the condition has a cross-side object
// equality the base side is served by a permutation index; otherwise the
// round degrades to a (parallel) scan of base per delta triple. A round
// interrupted by cancellation may return a partial derivation; the star
// loop checks the context before trusting any round's output.
func (n *starNode) stepFunc(ctx *execCtx, base *triplestore.Relation) func(*triplestore.Relation) *triplestore.Relation {
	if len(n.objKeys) > 0 {
		probe := n.objKeys[0]
		if !n.left {
			ix := base.Index(triplestore.PermFor(probe[1].Index()))
			return func(delta *triplestore.Relation) *triplestore.Relation {
				return ctx.e.parallelCollect(ctx.ctx, delta.Slice(), func(lt triplestore.Triple, emit func(triplestore.Triple)) {
					for _, rt := range ix.Match(lt[probe[0].Index()]) {
						if n.cc.Holds(lt, rt) {
							emit(trial.Project(n.out, lt, rt))
						}
					}
				})
			}
		}
		ix := base.Index(triplestore.PermFor(probe[0].Index()))
		return func(delta *triplestore.Relation) *triplestore.Relation {
			return ctx.e.parallelCollect(ctx.ctx, delta.Slice(), func(rt triplestore.Triple, emit func(triplestore.Triple)) {
				for _, lt := range ix.Match(rt[probe[1].Index()]) {
					if n.cc.Holds(lt, rt) {
						emit(trial.Project(n.out, lt, rt))
					}
				}
			})
		}
	}
	baseTs := base.Slice()
	if !n.left {
		return func(delta *triplestore.Relation) *triplestore.Relation {
			return ctx.e.parallelCollect(ctx.ctx, delta.Slice(), func(lt triplestore.Triple, emit func(triplestore.Triple)) {
				for _, rt := range baseTs {
					if n.cc.Holds(lt, rt) {
						emit(trial.Project(n.out, lt, rt))
					}
				}
			})
		}
	}
	return func(delta *triplestore.Relation) *triplestore.Relation {
		return ctx.e.parallelCollect(ctx.ctx, delta.Slice(), func(rt triplestore.Triple, emit func(triplestore.Triple)) {
			for _, lt := range baseTs {
				if n.cc.Holds(lt, rt) {
					emit(trial.Project(n.out, lt, rt))
				}
			}
		})
	}
}
