package engine

import (
	"repro/internal/trial"
	"repro/internal/triplestore"
)

func (n *scanNode) exec(e *Engine) (*triplestore.Relation, error) {
	return n.rel, nil
}

func (n *universeNode) exec(e *Engine) (*triplestore.Relation, error) {
	return e.Universe(), nil
}

func (n *filterNode) exec(e *Engine) (*triplestore.Relation, error) {
	in, err := n.child.exec(e)
	if err != nil {
		return nil, err
	}
	return e.parallelCollect(in.Slice(), func(t triplestore.Triple, emit func(triplestore.Triple)) {
		if n.cc.Holds(t, t) {
			emit(t)
		}
	}), nil
}

func (n *unionNode) exec(e *Engine) (*triplestore.Relation, error) {
	l, err := n.l.exec(e)
	if err != nil {
		return nil, err
	}
	r, err := n.r.exec(e)
	if err != nil {
		return nil, err
	}
	return triplestore.Union(l, r), nil
}

func (n *diffNode) exec(e *Engine) (*triplestore.Relation, error) {
	l, err := n.l.exec(e)
	if err != nil {
		return nil, err
	}
	r, err := n.r.exec(e)
	if err != nil {
		return nil, err
	}
	return triplestore.Difference(l, r), nil
}

func (n *joinNode) exec(e *Engine) (*triplestore.Relation, error) {
	l, err := n.l.exec(e)
	if err != nil {
		return nil, err
	}
	r, err := n.r.exec(e)
	if err != nil {
		return nil, err
	}
	switch n.strategy {
	case joinIndexRight:
		probe := n.objKeys[0]
		// Build the access path before fanning out: Index mutates the
		// relation's cache under its own lock, but building once up front
		// keeps workers contention-free.
		ix := r.Index(triplestore.PermFor(probe[1].Index()))
		return e.parallelCollect(l.Slice(), func(lt triplestore.Triple, emit func(triplestore.Triple)) {
			for _, rt := range ix.Match(lt[probe[0].Index()]) {
				if n.cc.Holds(lt, rt) {
					emit(trial.Project(n.out, lt, rt))
				}
			}
		}), nil
	case joinIndexLeft:
		probe := n.objKeys[0]
		ix := l.Index(triplestore.PermFor(probe[0].Index()))
		return e.parallelCollect(r.Slice(), func(rt triplestore.Triple, emit func(triplestore.Triple)) {
			for _, lt := range ix.Match(rt[probe[1].Index()]) {
				if n.cc.Holds(lt, rt) {
					emit(trial.Project(n.out, lt, rt))
				}
			}
		}), nil
	case joinHash:
		lKey, rKey := trial.CrossEqualityKeyFuncs(e.store, n.cond)
		table := make(map[string][]triplestore.Triple, r.Len())
		r.ForEach(func(rt triplestore.Triple) {
			k := rKey(rt)
			table[k] = append(table[k], rt)
		})
		return e.parallelCollect(l.Slice(), func(lt triplestore.Triple, emit func(triplestore.Triple)) {
			for _, rt := range table[lKey(lt)] {
				if n.cc.Holds(lt, rt) {
					emit(trial.Project(n.out, lt, rt))
				}
			}
		}), nil
	default: // joinLoop
		rts := r.Slice()
		return e.parallelCollect(l.Slice(), func(lt triplestore.Triple, emit func(triplestore.Triple)) {
			for _, rt := range rts {
				if n.cc.Holds(lt, rt) {
					emit(trial.Project(n.out, lt, rt))
				}
			}
		}), nil
	}
}

// exec evaluates the Kleene closure by semi-naive iteration: the result
// starts as the base, and each round joins only the delta (the triples
// derived for the first time in the previous round) with the base, until
// no new triples appear. The access path over the loop-invariant base is
// built once, before the first round — this is what separates the engine's
// delta-star from re-running the Theorem 3 join every iteration.
func (n *starNode) exec(e *Engine) (*triplestore.Relation, error) {
	base, err := n.child.exec(e)
	if err != nil {
		return nil, err
	}
	step := n.stepFunc(e, base)
	result := base.Clone()
	delta := base
	for delta.Len() > 0 {
		derived := step(delta)
		next := triplestore.NewRelation()
		derived.ForEach(func(t triplestore.Triple) {
			if result.Add(t) {
				next.Add(t)
			}
		})
		delta = next
	}
	return result, nil
}

// stepFunc returns the per-round join of the semi-naive iteration. For the
// right closure (e ✶)* the round computes delta ✶ base; for the left
// closure, base ✶ delta. When the condition has a cross-side object
// equality the base side is served by a permutation index; otherwise the
// round degrades to a (parallel) scan of base per delta triple.
func (n *starNode) stepFunc(e *Engine, base *triplestore.Relation) func(*triplestore.Relation) *triplestore.Relation {
	if len(n.objKeys) > 0 {
		probe := n.objKeys[0]
		if !n.left {
			ix := base.Index(triplestore.PermFor(probe[1].Index()))
			return func(delta *triplestore.Relation) *triplestore.Relation {
				return e.parallelCollect(delta.Slice(), func(lt triplestore.Triple, emit func(triplestore.Triple)) {
					for _, rt := range ix.Match(lt[probe[0].Index()]) {
						if n.cc.Holds(lt, rt) {
							emit(trial.Project(n.out, lt, rt))
						}
					}
				})
			}
		}
		ix := base.Index(triplestore.PermFor(probe[0].Index()))
		return func(delta *triplestore.Relation) *triplestore.Relation {
			return e.parallelCollect(delta.Slice(), func(rt triplestore.Triple, emit func(triplestore.Triple)) {
				for _, lt := range ix.Match(rt[probe[1].Index()]) {
					if n.cc.Holds(lt, rt) {
						emit(trial.Project(n.out, lt, rt))
					}
				}
			})
		}
	}
	baseTs := base.Slice()
	if !n.left {
		return func(delta *triplestore.Relation) *triplestore.Relation {
			return e.parallelCollect(delta.Slice(), func(lt triplestore.Triple, emit func(triplestore.Triple)) {
				for _, rt := range baseTs {
					if n.cc.Holds(lt, rt) {
						emit(trial.Project(n.out, lt, rt))
					}
				}
			})
		}
	}
	return func(delta *triplestore.Relation) *triplestore.Relation {
		return e.parallelCollect(delta.Slice(), func(rt triplestore.Triple, emit func(triplestore.Triple)) {
			for _, lt := range baseTs {
				if n.cc.Holds(lt, rt) {
					emit(trial.Project(n.out, lt, rt))
				}
			}
		})
	}
}
