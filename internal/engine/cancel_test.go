package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/genstore"
	"repro/internal/trial"
	"repro/internal/triplestore"
)

// cancelQueries covers the operator families with distinct cancellation
// points: a parallel-collect join, a semi-naive star fixpoint, and a
// BFS reach closure (Proposition 5 access path).
func cancelQueries() map[string]trial.Expr {
	return map[string]trial.Expr{
		"join":  trial.Example2(genstore.RelE),
		"star":  trial.QueryQ(genstore.RelE),
		"reach": trial.ReachRight(genstore.RelE),
	}
}

// TestEvalContextPreCancelled: a context that is already cancelled must
// surface context.Canceled from every operator family, on both the flat
// and the sharded engine, without evaluating anything.
func TestEvalContextPreCancelled(t *testing.T) {
	s := genstore.Grid(24, 24)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	engines := map[string]*Engine{
		"flat":    New(s),
		"sharded": NewSharded(triplestore.Shard(s, 4)),
	}
	for ename, e := range engines {
		for qname, q := range cancelQueries() {
			if _, err := e.EvalContext(ctx, q); !errors.Is(err, context.Canceled) {
				t.Errorf("%s/%s: EvalContext(cancelled) err = %v, want context.Canceled", ename, qname, err)
			}
		}
	}
}

// TestEvalContextExpiredDeadline: an already-expired deadline behaves
// like cancellation but reports DeadlineExceeded.
func TestEvalContextExpiredDeadline(t *testing.T) {
	s := genstore.Grid(16, 16)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	e := New(s)
	if _, err := e.EvalContext(ctx, trial.QueryQ(genstore.RelE)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("EvalContext(expired deadline) err = %v, want context.DeadlineExceeded", err)
	}
}

// TestExecContextPrepared: the context-aware entry points on a Prepared
// plan honour cancellation and still execute normally with a live
// context.
func TestExecContextPrepared(t *testing.T) {
	s := genstore.Chain(64, 2)
	e := New(s)
	p, err := e.Prepare(trial.QueryQ(genstore.RelE))
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Exec()
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.ExecContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("ExecContext = %d triples, want %d", got.Len(), want.Len())
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.ExecContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExecContext(cancelled) err = %v, want context.Canceled", err)
	}
	if _, err := p.ExecTraceContext(ctx, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExecTraceContext(cancelled) err = %v, want context.Canceled", err)
	}
}

// TestCancelDuringShardedStar races cancellation against an in-flight
// partition-parallel star fixpoint: many goroutines evaluate while the
// context is cancelled mid-run. Run under -race this pins that the
// shard-task and round-boundary cancellation points are data-race free;
// each evaluation must either complete with the correct fixpoint or
// return the context's error — never a partial relation.
func TestCancelDuringShardedStar(t *testing.T) {
	s := genstore.Grid(32, 32)
	e := NewSharded(triplestore.Shard(s, 4), WithWorkers(4))
	q := trial.QueryQ(genstore.RelE)
	want, err := e.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(delay time.Duration) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(delay)
				cancel()
			}()
			defer cancel()
			r, err := e.EvalContext(ctx, q)
			if err != nil {
				if !errors.Is(err, context.Canceled) {
					t.Errorf("EvalContext err = %v, want nil or context.Canceled", err)
				}
				return
			}
			if !r.Equal(want) {
				t.Errorf("completed run returned %d triples, want %d", r.Len(), want.Len())
			}
		}(time.Duration(i) * 50 * time.Microsecond)
	}
	wg.Wait()
}
