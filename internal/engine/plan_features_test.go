package engine

import (
	"strings"
	"testing"

	"repro/internal/genstore"
	"repro/internal/trial"
)

// The tests in this file pin the physical features PR 3 added around the
// logical optimizer: projection nodes for identity self-joins,
// common-subexpression sharing, hoisted star seed filters, side-only
// join prefilters, and the rewrite trace on Explain.

func mustParseT(t *testing.T, q string) trial.Expr {
	t.Helper()
	x, err := trial.Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	return x
}

// explainFor plans x on a fresh chain store and returns the rendering.
func explainFor(t *testing.T, q string, opts ...Option) string {
	t.Helper()
	e := New(genstore.Chain(12, 2), opts...)
	plan, err := e.Explain(mustParseT(t, q))
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestProjectionPlan(t *testing.T) {
	// The rearrange device compiles to a linear projection, not a join.
	plan := explainFor(t, "join[1,1,3; 1=1',2=2',3=3'](E, E)")
	if !strings.Contains(plan, "project[1,1,3]") {
		t.Errorf("identity self-join did not plan as projection:\n%s", plan)
	}
	if strings.Contains(plan, "hash") || strings.Contains(plan, "index-") {
		t.Errorf("projection plan still contains a join strategy:\n%s", plan)
	}
	// Result parity with the reference evaluator on the same shape.
	s := genstore.Chain(12, 2)
	x := mustParseT(t, "join[3,2,1; 1=1',2=2',3=3'](E, E)")
	want, err := trial.NewEvaluator(s).Eval(x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := New(s).Eval(x)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("projection result %d triples, evaluator %d", got.Len(), want.Len())
	}
}

func TestCommonSubexpressionSharing(t *testing.T) {
	// The same composite subexpression twice: compiled once, shared.
	// WithoutOptimize keeps the duplicate union arms in the tree, so the
	// sharing must come from the planner, not the rewriter.
	plan := explainFor(t, "diff(sigma[1!=3](union(E, sigma[2=p0](E))), sigma[1!=3](union(E, sigma[2=p0](E))))",
		WithoutOptimize())
	if !strings.Contains(plan, "shared#0") {
		t.Errorf("duplicate subtrees were not shared:\n%s", plan)
	}
	// diff(x, x) with shared nodes must still evaluate (to empty).
	s := genstore.Chain(12, 2)
	r, err := New(s, WithoutOptimize()).Eval(
		mustParseT(t, "diff(sigma[1!=3](union(E, sigma[2=p0](E))), sigma[1!=3](union(E, sigma[2=p0](E))))"))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Errorf("diff(x, x) = %d triples, want 0", r.Len())
	}
}

func TestStarSeedFilterPlan(t *testing.T) {
	// σ over the star's invariant positions 1 and 2 hoists into the
	// fixpoint as a seed filter (and the star stays BFS-shaped).
	plan := explainFor(t, "sigma[1=o0](rstar[1,2,3'; 3=1'](E))")
	if !strings.Contains(plan, "seed-filter=[1=o0]") {
		t.Errorf("selection over invariant positions was not hoisted:\n%s", plan)
	}
	if strings.Contains(plan, "filter [1=o0]") {
		t.Errorf("hoisted selection still planned as a post-filter:\n%s", plan)
	}
	// σ over position 3 is not invariant: it must stay a post-filter.
	plan = explainFor(t, "sigma[3=o0](rstar[1,2,3'; 3=1'](E))")
	if strings.Contains(plan, "seed-filter") {
		t.Errorf("non-invariant selection was hoisted:\n%s", plan)
	}
	// Differential: hoisted and non-hoisted agree with the evaluator —
	// including the left-closure orientations, which the unoptimized
	// engine plans without the optimizer's lstar→rstar canonicalization.
	for _, q := range []string{
		"sigma[1=o0](rstar[1,2,3'; 3=1'](E))",
		"sigma[1=o2,2=p0](rstar[1,2,3'; 3=1',2=2'](E))",
		"sigma[3=o5](rstar[1,2,3'; 3=1'](E))",
		// Non-reach shape with an invariant position 1 (Out[0]=1).
		"sigma[1=o0](rstar[1,3,3'; 3=1'](E))",
		// Left reach star: positions 1 and 2 stay invariant (BFS path).
		"sigma[1=o0](lstar[1,2,3'; 3=1'](E))",
		"sigma[2=p1](lstar[1,2,3'; 3=1',2=2'](E))",
		// Left non-reach star: position 3 (Out[2]=3') is the invariant.
		"sigma[3=o5](lstar[1',2,3'; 3=1'](E))",
	} {
		s := genstore.Chain(10, 2)
		x := mustParseT(t, q)
		want, err := trial.NewEvaluator(s).Eval(x)
		if err != nil {
			t.Fatal(err)
		}
		for i, e := range []*Engine{New(s), New(s, WithoutOptimize())} {
			got, err := e.Eval(x)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Errorf("%s: engine[%d] %d triples, evaluator %d", q, i, got.Len(), want.Len())
			}
		}
	}
}

func TestJoinSidePrefilterPlan(t *testing.T) {
	// 2=p0 mentions only the left side, 2'=p1 only the right: both become
	// prefilters on the join node.
	q := "join[1,2,3'; 3=1',2=p0,2'=p1](E, E)"
	plan := explainFor(t, q, WithoutOptimize())
	if !strings.Contains(plan, "prefilter-left=[2=p0]") || !strings.Contains(plan, "prefilter-right=[2=p1]") {
		t.Errorf("side-only atoms did not become prefilters:\n%s", plan)
	}
	s := genstore.Chain(12, 2)
	x := mustParseT(t, q)
	want, err := trial.NewEvaluator(s).Eval(x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := New(s).Eval(x)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Errorf("prefiltered join: engine %d triples, evaluator %d", got.Len(), want.Len())
	}
}

func TestExplainIncludesRewriteTrace(t *testing.T) {
	plan := explainFor(t, "sigma[1=2](union(E, E))")
	if !strings.Contains(plan, "rewrites[v") {
		t.Errorf("Explain missing rewrite trace:\n%s", plan)
	}
	if !strings.Contains(plan, "dedupe-union") {
		t.Errorf("trace does not mention the fired rule:\n%s", plan)
	}
	plan = explainFor(t, "E", WithoutOptimize())
	if !strings.Contains(plan, "rewrites[v1]: off") {
		t.Errorf("WithoutOptimize Explain should say rewrites are off:\n%s", plan)
	}
}

func TestPreparedTrace(t *testing.T) {
	e := New(genstore.Chain(8, 1))
	p, err := e.Prepare(mustParseT(t, "sigma[1=2](union(E, E))"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Trace() == nil || !p.Trace().Changed() {
		t.Errorf("Prepared.Trace = %v, want recorded rewrites", p.Trace())
	}
	p, err = New(genstore.Chain(8, 1), WithoutOptimize()).Prepare(mustParseT(t, "E"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Trace() != nil {
		t.Errorf("WithoutOptimize Prepared.Trace = %v, want nil", p.Trace())
	}
}
