package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/optimizer"
	"repro/internal/trial"
	"repro/internal/triplestore"
)

// Engine evaluates TriAL* expressions over a fixed view of a store. The
// store handed to New must not change underneath the engine: either pass
// a triplestore.Store.Snapshot() — an immutable copy-on-write view, the
// arrangement internal/query uses so ingest can proceed while queries
// run — or a live store that is not mutated while the engine is in use.
// Under that contract an Engine is safe for concurrent Eval calls, which
// is what cmd/trialserver relies on. Mutating the live store between
// queries is fine even when the engine wraps it directly: the universal
// relation is cached per store version, and store-mediated writes keep
// or invalidate the per-relation access paths themselves.
type Engine struct {
	store      *triplestore.Store
	workers    int
	optimize   bool
	joinPolicy JoinPolicy

	// sharded enables the partition-parallel executor (sharded.go): nil
	// for a flat engine, otherwise the ShardedStore whose union view is
	// store. Set by NewSharded, never by option, so a sharded engine can
	// only be built over a store that actually has partitions.
	sharded *triplestore.ShardedStore

	mu          sync.Mutex
	universe    *triplestore.Relation
	universeVer uint64
}

// Option configures an Engine.
type Option func(*Engine)

// WithWorkers bounds the worker pool used by parallel operators. Values
// below 1 are treated as 1 (fully sequential execution).
func WithWorkers(n int) Option {
	return func(e *Engine) {
		if n < 1 {
			n = 1
		}
		e.workers = n
	}
}

// WithoutOptimize disables the logical rewrite pass (internal/optimizer)
// before planning, compiling the expression tree as written. Mostly
// useful for tests isolating the physical layer.
func WithoutOptimize() Option {
	return func(e *Engine) { e.optimize = false }
}

// JoinPolicy constrains which physical join strategies the planner may
// pick. The default JoinAuto lets the cost model choose freely; the
// restricted policies pin a route deterministically, which is what the
// differential test tier and the bench harness use to compare the
// worst-case-optimal operators against the classic binary plans on the
// same store and expression.
type JoinPolicy int

const (
	// JoinAuto is the default: cost-based choice among all strategies.
	JoinAuto JoinPolicy = iota
	// JoinNoWCO restricts the planner to the binary strategies
	// (hash/index/loop), disabling both the leapfrog triejoin and the
	// sort-merge join — the planner as it was before the WCO tier.
	JoinNoWCO
	// JoinForceLeapfrog compiles every flattenable join cascade as a
	// leapfrog triejoin regardless of cost or shape (cyclic or not).
	JoinForceLeapfrog
	// JoinForceMerge picks the sort-merge join whenever the join is
	// merge-eligible (both sides base-relation scans with a cross-side
	// object equality), regardless of cost.
	JoinForceMerge
)

// WithJoinPolicy constrains the planner's join-strategy choice.
func WithJoinPolicy(p JoinPolicy) Option {
	return func(e *Engine) { e.joinPolicy = p }
}

// New returns an engine over the given store. By default it optimizes
// expressions before planning and parallelizes across GOMAXPROCS workers.
func New(s *triplestore.Store, opts ...Option) *Engine {
	e := &Engine{store: s, workers: runtime.GOMAXPROCS(0), optimize: true}
	for _, o := range opts {
		o(e)
	}
	return e
}

// NewSharded returns an engine with partition-parallel execution over
// the given sharded store (its union view serves every operator the
// partitions cannot: universe, difference, unkeyed joins). The usual
// contract applies: hand it a ShardedStore.Snapshot(), or a live store
// that is not mutated while the engine is in use. A single-shard store
// yields a plain flat engine — there is nothing to partition.
func NewSharded(ss *triplestore.ShardedStore, opts ...Option) *Engine {
	e := New(ss.Store, opts...)
	if ss.NumShards() > 1 {
		e.sharded = ss
	}
	return e
}

// Store returns the engine's store.
func (e *Engine) Store() *triplestore.Store { return e.store }

// Sharded returns the sharded store driving the partition-parallel
// executor, or nil for a flat engine.
func (e *Engine) Sharded() *triplestore.ShardedStore { return e.sharded }

// Eval computes the relation x(T).
func (e *Engine) Eval(x trial.Expr) (*triplestore.Relation, error) {
	return e.EvalContext(context.Background(), x)
}

// EvalContext is Eval under a caller-supplied context: the engine polls
// it at operator boundaries, inside worker chunk loops, at semi-naive
// star round boundaries and at shard-task pickup, so cancelling the
// context (client disconnect, deadline) actually frees the worker pool
// instead of letting the plan run to completion. The error is then
// ctx.Err() — context.Canceled or context.DeadlineExceeded.
func (e *Engine) EvalContext(ctx context.Context, x trial.Expr) (*triplestore.Relation, error) {
	p, err := e.plan(x)
	if err != nil {
		return nil, err
	}
	return p.execContext(e, ctx, nil)
}

// Optimizer returns a logical optimizer over the engine's store (and its
// current statistics snapshot) — the one plan uses when optimization is
// enabled.
func (e *Engine) Optimizer() *optimizer.Optimizer { return optimizer.New(e.store) }

// EvalString parses a TriAL* expression in the textual syntax of
// trial.Parse and evaluates it.
func (e *Engine) EvalString(query string) (*triplestore.Relation, error) {
	x, err := trial.Parse(query)
	if err != nil {
		return nil, err
	}
	return e.Eval(x)
}

// Explain returns a rendering of the plan chosen for x: the logical
// optimizer's rewrite trace on the first line, then one physical
// operator per line, children indented, with the selected join
// strategies and the planner's cardinality estimates.
func (e *Engine) Explain(x trial.Expr) (string, error) {
	p, err := e.plan(x)
	if err != nil {
		return "", err
	}
	return p.explainString(), nil
}

// plan validates, optimizes and compiles x into a physical plan.
func (e *Engine) plan(x trial.Expr) (*compiledPlan, error) {
	if err := validate(x); err != nil {
		return nil, err
	}
	var tr *optimizer.Trace
	if e.optimize {
		x, tr = e.Optimizer().Optimize(x)
	}
	c := newCompiler(e, x)
	root, err := c.compile(x)
	if err != nil {
		return nil, err
	}
	return &compiledPlan{root: root, nShared: c.nShared, trace: tr}, nil
}

// validate rejects the malformed shapes the Evaluator rejects, before the
// optimizer gets a chance to rewrite them away (e.g. a selection with
// primed positions fused into a join).
func validate(x trial.Expr) error {
	switch n := x.(type) {
	case trial.Rel, trial.Universe:
		return nil
	case trial.Select:
		if !n.Cond.LeftOnly() {
			return fmt.Errorf("trial: selection condition %q mentions primed positions", n.Cond.String())
		}
		return validate(n.E)
	case trial.Union:
		if err := validate(n.L); err != nil {
			return err
		}
		return validate(n.R)
	case trial.Diff:
		if err := validate(n.L); err != nil {
			return err
		}
		return validate(n.R)
	case trial.Join:
		if err := validate(n.L); err != nil {
			return err
		}
		return validate(n.R)
	case trial.Star:
		return validate(n.E)
	}
	return fmt.Errorf("trial: unknown expression type %T", x)
}

// Universe returns (and caches) the universal relation U over the store's
// active domain, built by the same trial.ComputeUniverse the Evaluator
// uses. The cache is keyed by the store's version, so a store mutated
// between queries (the pattern internal/query's version-keyed plan cache
// supports) yields a fresh universe, matching the per-relation indexes,
// which Relation.Add invalidates itself.
func (e *Engine) Universe() *triplestore.Relation {
	e.mu.Lock()
	defer e.mu.Unlock()
	if v := e.store.Version(); e.universe == nil || e.universeVer != v {
		e.universe = trial.ComputeUniverse(e.store)
		e.universeVer = v
	}
	return e.universe
}
