// Package engine is a query execution engine for TriAL* expressions: the
// performance-oriented counterpart to the semantics-reference Evaluator
// in internal/trial.
//
// Where the Evaluator scans whole relations for every join, the engine
// first rewrites the expression with the logical optimizer
// (internal/optimizer — selection pushdown, projection composition,
// statistics-driven join commutation, star collapsing), then compiles it
// into a tree of physical operators chosen by a cost model grounded in
// the per-relation statistics of internal/triplestore:
//
//   - index nested-loop joins probing the permutation indexes
//     (SPO/POS/OSP) that internal/triplestore materializes per relation,
//     probing the cross equality whose statistics promise the smallest
//     bucket;
//   - hash joins keyed on the cross-side equality atoms of the join
//     condition (the Proposition 4 strategy), probed in parallel by a
//     bounded worker pool;
//   - linear projections for the identity self-joins the §6.2
//     translations emit to permute triple components — no join at all;
//   - common-subexpression sharing: structurally identical subplans
//     compile once and execute once per run, however often the
//     expression mentions them;
//   - Kleene stars by Proposition 5's per-source BFS when the star has a
//     reachTA= shape (exactly as the Evaluator's ModeAuto does), and
//     semi-naive (delta) iteration otherwise, building the access path
//     over the loop-invariant base once and probing it with only the
//     newly derived triples each round. Selections over a star's
//     invariant positions are hoisted into the fixpoint as seed filters,
//     so the recursion starts from less.
//
// NewSharded builds the engine over a triplestore.ShardedStore and
// executes partition-parallel (sharded.go): index joins probing the
// shard key (the subject) route each probe to its owning shard's index,
// other indexed joins broadcast-probe every shard's partition, and
// semi-naive star rounds run one probe task per shard — sound because
// the algebra is closed under union and the indexed operators
// distribute over any disjoint partition of a relation. Results are
// byte-identical to the flat engine (pinned by internal/proptest).
//
// Prepare returns a reusable compiled plan carrying the optimizer's
// rewrite trace; Explain renders the trace and the chosen physical plan
// (including the sharded access paths).
//
// An engine expects its store view to hold still: build it over a
// triplestore Snapshot (what internal/query does, so concurrent ingest
// through the store's mutation methods never races a running query), or
// over a live store that is only mutated between queries — compiled
// plans bind relation access paths at plan time, and the version-keyed
// caches above the engine (plans, statistics, the universal relation)
// refresh per store version.
//
// The engine computes exactly the relations defined in §3 of the paper —
// differential tests assert identity with trial.Evaluator on every
// fixture and on random expressions — it just gets there faster.
package engine
