package engine

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/optimizer"
	"repro/internal/trial"
	"repro/internal/triplestore"
)

// This file implements the engine's worst-case-optimal join: a leapfrog
// triejoin (Veldhuizen 2014) over the store's SPO/POS/OSP permutation
// indexes. The optimizer flattens a cascade of triple joins into a
// multiway join (optimizer.FlattenJoin); this operator then solves it
// one variable at a time, intersecting each variable's sorted candidate
// lists across all atoms before ever pairing triples. On cyclic shapes
// (triangles, diamonds) this meets the AGM output bound, which no binary
// join order can: a binary plan must materialize some two-atom
// intermediate, Θ(N²) in the worst case against an O(N^{3/2}) output.
//
// Exactness: the descent only binds the variables induced by object
// equalities; once every atom's triple is fixed, each original join
// level's operand triples are reconstructed through the flattened
// provenance and the level's full condition is re-checked. Inequalities,
// constants and data-value atoms therefore hold exactly as in the binary
// cascade, and the result is byte-identical to the reference evaluator's
// (pinned by internal/proptest across flat and sharded routes).

// leapfrogIter is a trie-level iterator over an ascending []ID run, with
// the contract the triejoin needs (and FuzzLeapfrogIterator pins):
// key/next/seek/atEnd, where seek(t) positions at the least key ≥ t and
// requires t ≥ the current key (monotone seeks only).
type leapfrogIter struct {
	ids []triplestore.ID
	pos int
}

func newLeapfrogIter(ids []triplestore.ID) *leapfrogIter { return &leapfrogIter{ids: ids} }

func (it *leapfrogIter) atEnd() bool         { return it.pos >= len(it.ids) }
func (it *leapfrogIter) key() triplestore.ID { return it.ids[it.pos] }
func (it *leapfrogIter) next()               { it.pos++ }
func (it *leapfrogIter) seek(t triplestore.ID) {
	// Binary search over the unvisited suffix only: successive monotone
	// seeks stay O(log distance), never rescanning consumed prefix.
	it.pos += sort.Search(len(it.ids)-it.pos, func(i int) bool { return it.ids[it.pos+i] >= t })
}

// leapfrogIntersect yields, in ascending order, every ID present in all
// iterators — the classic leapfrog: round-robin over the iterators, each
// seeking to the current maximum until all keys agree. Stops early when
// yield returns false. The iterators are consumed.
func leapfrogIntersect(its []*leapfrogIter, yield func(triplestore.ID) bool) {
	if len(its) == 0 {
		return
	}
	for _, it := range its {
		if it.atEnd() {
			return
		}
	}
	sort.Slice(its, func(i, j int) bool { return its[i].key() < its[j].key() })
	p := 0
	max := its[len(its)-1].key()
	for {
		it := its[p]
		if it.key() == max {
			// All iterators agree (each was seeked to ≥ max and none
			// overshot): max is in the intersection.
			if !yield(max) {
				return
			}
			it.next()
			if it.atEnd() {
				return
			}
			max = it.key()
		} else {
			it.seek(max)
			if it.atEnd() {
				return
			}
			max = it.key()
		}
		p = (p + 1) % len(its)
	}
}

// lfAtom is one base-relation occurrence of the flattened join.
type lfAtom struct {
	name string
	rel  *triplestore.Relation
}

// lfLevel is one original binary join level, kept for the residual
// condition check over reconstructed operand triples.
type lfLevel struct {
	cond         trial.Cond
	cc           trial.CompiledCond
	lProv, rProv [3]optimizer.Slot
}

// leapfrogNode executes a flattened multiway join by leapfrog triejoin.
type leapfrogNode struct {
	atoms  []lfAtom
	levels []lfLevel
	out    [3]optimizer.Slot
	vars   [][]optimizer.Slot // variable classes in elimination order
	rows   float64            // AGM bound estimate
}

// tryLeapfrog compiles a join cascade as a leapfrog triejoin when the
// policy allows it and either the policy forces it or the shape is
// cyclic with an AGM bound below the binary plan's worst case. Returns
// nil to fall through to the binary strategies.
func (c *compiler) tryLeapfrog(n trial.Join) planNode {
	switch c.e.joinPolicy {
	case JoinNoWCO, JoinForceMerge:
		return nil
	}
	mj, ok := optimizer.FlattenJoin(n)
	if !ok {
		return nil
	}
	atoms := make([]lfAtom, len(mj.Atoms))
	for i, name := range mj.Atoms {
		rel := c.e.store.Relation(name)
		if rel == nil {
			return nil // unknown relation: let the binary path report it
		}
		atoms[i] = lfAtom{name: name, rel: rel}
	}
	cards := make([]float64, len(atoms))
	for i := range atoms {
		cards[i] = float64(atoms[i].rel.Len())
	}
	agm := optimizer.AGMCycleBound(cards)
	if c.e.joinPolicy != JoinForceLeapfrog {
		// Cost gate: only cyclic shapes, and only when the AGM bound
		// undercuts the binary cascade's worst case — computed by
		// replaying the levels with per-relation MaxMatch (worst bucket)
		// in place of average fanout. On uniform data worst ≈ average
		// and the binary plan keeps the job; on skewed (power-law) data
		// the worst-case intermediate blows past the AGM bound and the
		// triejoin takes over.
		if !mj.CyclicConnected() {
			return nil
		}
		if binary := binaryWorstCost(mj, atoms); agm >= binary {
			return nil
		}
	}
	lf := &leapfrogNode{atoms: atoms, out: mj.Out, vars: mj.Classes, rows: agm}
	for _, lv := range mj.Levels {
		lf.levels = append(lf.levels, lfLevel{
			cond:  lv.Cond,
			cc:    lv.Cond.Compile(c.e.store),
			lProv: lv.LProv,
			rProv: lv.RProv,
		})
	}
	return lf
}

// binaryWorstCost replays the flattened cascade bottom-up, charging each
// level its worst-case output size: a keyed probe into a base relation
// pays the relation's MaxMatch bucket (not the average fanout) per probe
// tuple. The sum over levels bounds the triples a binary plan may
// materialize on adversarial (skewed) data — the quantity the AGM bound
// is compared against.
func binaryWorstCost(mj *optimizer.MultiJoin, atoms []lfAtom) float64 {
	outCard := make([]float64, len(mj.Levels))
	card := func(atom, level int) float64 {
		if atom >= 0 {
			return float64(atoms[atom].rel.Len())
		}
		return outCard[level]
	}
	worstFan := func(atom int, keys [][2]trial.Pos, left bool) float64 {
		st := atoms[atom].rel.Stats()
		best := math.Inf(1)
		for _, k := range keys {
			p := k[1]
			if left {
				p = k[0]
			}
			if f := st.WorstFanout(p.Index()); f < best {
				best = f
			}
		}
		return best
	}
	total := 0.0
	for i, lv := range mj.Levels {
		lCard := card(lv.LAtom, lv.LLevel)
		rCard := card(lv.RAtom, lv.RLevel)
		keys := lv.Cond.CrossObjEqualities()
		var produced float64
		switch {
		case len(keys) == 0:
			produced = lCard * rCard
		case lv.RAtom >= 0:
			produced = lCard * worstFan(lv.RAtom, keys, false)
		case lv.LAtom >= 0:
			produced = rCard * worstFan(lv.LAtom, keys, true)
		default:
			// Two derived inputs: a keyed join of intermediates keeps at
			// most the larger side per matching key, as the average-case
			// planner assumes.
			produced = lCard
			if rCard > produced {
				produced = rCard
			}
		}
		total += produced
		outCard[i] = produced
	}
	return total
}

func (n *leapfrogNode) exec(ctx *execCtx) (*triplestore.Relation, error) {
	ctx.trace.SetAttr("atoms", len(n.atoms))
	ctx.trace.SetAttr("vars", len(n.vars))
	// cands[i] == nil means atom i is unbound: its candidates are the
	// whole relation, served through its permutation indexes.
	base := make([][]triplestore.Triple, len(n.atoms))
	if len(n.vars) == 0 {
		// No shared variables at all (possible only under forced policy):
		// a plain nested-loop enumeration with residual checks.
		out := triplestore.NewRelation()
		n.enumerate(base, func(t triplestore.Triple) { out.Add(t) })
		if err := ctx.ctx.Err(); err != nil {
			return nil, err
		}
		return out, nil
	}
	// Materialize the first variable's intersection, then fan the
	// remaining descent out across the worker pool: each top-level value
	// explores an independent subtree.
	cls := n.vars[0]
	its := make([]*leapfrogIter, len(cls))
	for i, s := range cls {
		its[i] = newLeapfrogIter(n.slotIDs(base, s))
	}
	var top []triplestore.ID
	leapfrogIntersect(its, func(v triplestore.ID) bool { top = append(top, v); return true })
	ctx.trace.SetAttr("top_vals", len(top))
	res := ctx.e.parallelIDCollect(ctx.ctx, top, func(v triplestore.ID, emit func(triplestore.Triple)) {
		if cands, ok := n.narrow(base, cls, v); ok {
			n.solve(1, cands, emit)
		}
	})
	if err := ctx.ctx.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// solve binds variable vi across its atoms by leapfrog intersection and
// recurses; after the last variable the remaining free components are
// enumerated and the residual level conditions applied.
func (n *leapfrogNode) solve(vi int, cands [][]triplestore.Triple, emit func(triplestore.Triple)) {
	if vi == len(n.vars) {
		n.enumerate(cands, emit)
		return
	}
	cls := n.vars[vi]
	its := make([]*leapfrogIter, len(cls))
	for i, s := range cls {
		its[i] = newLeapfrogIter(n.slotIDs(cands, s))
	}
	leapfrogIntersect(its, func(v triplestore.ID) bool {
		if next, ok := n.narrow(cands, cls, v); ok {
			n.solve(vi+1, next, emit)
		}
		return true
	})
}

// slotIDs returns the ascending distinct values the slot's component
// takes over the atom's current candidates: the cached index Leads for
// an unbound atom, a sort-dedupe pass over the candidate list otherwise.
func (n *leapfrogNode) slotIDs(cands [][]triplestore.Triple, s optimizer.Slot) []triplestore.ID {
	if cands[s.Atom] == nil {
		return n.atoms[s.Atom].rel.Index(triplestore.PermFor(s.Comp)).Leads()
	}
	list := cands[s.Atom]
	ids := make([]triplestore.ID, 0, len(list))
	for _, t := range list {
		ids = append(ids, t[s.Comp])
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w := 0
	for i, id := range ids {
		if i == 0 || id != ids[w-1] {
			ids[w] = id
			w++
		}
	}
	return ids[:w]
}

// narrow restricts each atom touched by the class to candidates whose
// class components equal v. Unbound atoms bind through an index point
// lookup; bound atoms filter. Returns ok=false when any atom runs dry.
func (n *leapfrogNode) narrow(cands [][]triplestore.Triple, cls []optimizer.Slot, v triplestore.ID) ([][]triplestore.Triple, bool) {
	out := make([][]triplestore.Triple, len(cands))
	copy(out, cands)
	for i := 0; i < len(cls); {
		a := cls[i].Atom
		j := i
		for j < len(cls) && cls[j].Atom == a {
			j++
		}
		slots := cls[i:j]
		list := out[a]
		rest := slots
		if list == nil {
			// Index.Match returns a shared subslice of the index — read
			// only, which the filters below respect by allocating.
			list = n.atoms[a].rel.Index(triplestore.PermFor(slots[0].Comp)).Match(v)
			rest = slots[1:]
		}
		if len(rest) > 0 {
			filtered := make([]triplestore.Triple, 0, len(list))
			for _, t := range list {
				keep := true
				for _, s := range rest {
					if t[s.Comp] != v {
						keep = false
						break
					}
				}
				if keep {
					filtered = append(filtered, t)
				}
			}
			list = filtered
		}
		if len(list) == 0 {
			return nil, false
		}
		out[a] = list
		i = j
	}
	return out, true
}

// enumerate walks the cartesian product of the remaining candidate lists
// (whole relations for atoms no variable touched), reconstructs every
// original join level's operand triples through the provenance, and
// emits the root projection for assignments passing all residual
// conditions.
func (n *leapfrogNode) enumerate(cands [][]triplestore.Triple, emit func(triplestore.Triple)) {
	k := len(n.atoms)
	asg := make([]triplestore.Triple, k)
	at := func(s optimizer.Slot) triplestore.ID { return asg[s.Atom][s.Comp] }
	var rec func(i int)
	rec = func(i int) {
		if i == k {
			for li := range n.levels {
				lv := &n.levels[li]
				lt := triplestore.Triple{at(lv.lProv[0]), at(lv.lProv[1]), at(lv.lProv[2])}
				rt := triplestore.Triple{at(lv.rProv[0]), at(lv.rProv[1]), at(lv.rProv[2])}
				if !lv.cc.Holds(lt, rt) {
					return
				}
			}
			emit(triplestore.Triple{at(n.out[0]), at(n.out[1]), at(n.out[2])})
			return
		}
		list := cands[i]
		if list == nil {
			list = n.atoms[i].rel.Slice()
		}
		for _, t := range list {
			asg[i] = t
			rec(i + 1)
		}
	}
	rec(0)
}

func (n *leapfrogNode) est() float64  { return n.rows }
func (n *leapfrogNode) label() string { return "join:leapfrog" }

func (n *leapfrogNode) explain(b *strings.Builder, depth int) {
	indent(b, depth)
	names := make([]string, len(n.atoms))
	for i, a := range n.atoms {
		names[i] = a.name
	}
	fmt.Fprintf(b, "join leapfrog [%s] vars=%d est=%.0f\n",
		strings.Join(names, " * "), len(n.vars), n.rows)
	for _, a := range n.atoms {
		indent(b, depth+1)
		fmt.Fprintf(b, "scan %s (%d triples)\n", a.name, a.rel.Len())
	}
}

// intersectSortedIDs merges two ascending ID runs, keeping the common
// values — the merge join's driver over the two indexes' leads.
func intersectSortedIDs(a, b []triplestore.ID) []triplestore.ID {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	out := make([]triplestore.ID, 0, n)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// parallelIDCollect is parallelCollect over an ID work list: f runs once
// per ID, emitting triples into per-worker relations merged at the end.
// Same pooling, chunking and cancellation-polling contract as
// parallelCollect (see pool.go); the leapfrog triejoin fans out over the
// first variable's values and the merge join over the common index leads.
func (e *Engine) parallelIDCollect(ctx context.Context, ids []triplestore.ID, f func(id triplestore.ID, emit func(triplestore.Triple))) *triplestore.Relation {
	if e.workers <= 1 || len(ids) < seqThreshold {
		out := triplestore.NewRelation()
		emit := func(t triplestore.Triple) { out.Add(t) }
		for i, id := range ids {
			if i&(cancelStride-1) == cancelStride-1 && ctx.Err() != nil {
				break
			}
			f(id, emit)
		}
		return out
	}
	nChunks := e.workers * 4
	if nChunks > len(ids) {
		nChunks = len(ids)
	}
	locals := make([]*triplestore.Relation, nChunks)
	var wg sync.WaitGroup
	sem := make(chan struct{}, e.workers)
	chunkSize := (len(ids) + nChunks - 1) / nChunks
	for i := 0; i < nChunks; i++ {
		lo := i * chunkSize
		hi := lo + chunkSize
		if hi > len(ids) {
			hi = len(ids)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(i int, part []triplestore.ID) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				return
			}
			local := triplestore.NewRelation()
			emit := func(t triplestore.Triple) { local.Add(t) }
			for j, id := range part {
				if j&(cancelStride-1) == cancelStride-1 && ctx.Err() != nil {
					break
				}
				f(id, emit)
			}
			locals[i] = local
		}(i, ids[lo:hi])
	}
	wg.Wait()

	total := 0
	for _, l := range locals {
		if l != nil {
			total += l.Len()
		}
	}
	out := triplestore.NewRelationCap(total)
	for _, l := range locals {
		if l != nil {
			out.AddAll(l)
		}
	}
	return out
}
