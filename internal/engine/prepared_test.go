package engine

import (
	"sync"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/genstore"
	"repro/internal/trial"
)

// TestPreparedMatchesEval asserts a prepared plan computes the same
// relation as a direct Eval, across repeated and concurrent executions.
func TestPreparedMatchesEval(t *testing.T) {
	s := genstore.Grid(6, 6)
	e := New(s)
	for _, x := range []trial.Expr{
		trial.Example2(genstore.RelE),
		trial.ReachRight(genstore.RelE),
		trial.QueryQ(genstore.RelE),
	} {
		want, err := e.Eval(x)
		if err != nil {
			t.Fatal(err)
		}
		p, err := e.Prepare(x)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			got, err := p.Exec()
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("prepared exec %d mismatch for %s: got %d want %d triples",
					i, x, got.Len(), want.Len())
			}
		}
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				got, err := p.Exec()
				if err != nil {
					t.Error(err)
					return
				}
				if !got.Equal(want) {
					t.Errorf("concurrent prepared exec mismatch for %s", x)
				}
			}()
		}
		wg.Wait()
	}
}

// TestPreparedErrors asserts Prepare rejects what Eval rejects.
func TestPreparedErrors(t *testing.T) {
	e := New(fixtures.Transport())
	if _, err := e.Prepare(trial.R("NoSuchRelation")); err == nil {
		t.Error("Prepare accepted an unknown relation")
	}
	bad := trial.Select{E: trial.R(fixtures.RelE), Cond: trial.Cond{
		Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L1), trial.P(trial.R2))}}}
	if _, err := e.Prepare(bad); err == nil {
		t.Error("Prepare accepted a selection over primed positions")
	}
}

// TestPreparedExplain asserts the prepared plan renders identically to
// Engine.Explain and Expr returns the original expression.
func TestPreparedExplain(t *testing.T) {
	e := New(fixtures.Transport())
	x := trial.Example2(fixtures.RelE)
	p, err := e.Prepare(x)
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Explain(x)
	if err != nil {
		t.Fatal(err)
	}
	if p.Explain() != want {
		t.Errorf("Prepared.Explain = %q, want %q", p.Explain(), want)
	}
	if p.Expr().String() != x.String() {
		t.Errorf("Prepared.Expr changed: %v", p.Expr())
	}
}
