package engine

import (
	"testing"

	"repro/internal/genstore"
	"repro/internal/obs"
	"repro/internal/trial"
	"repro/internal/triplestore"
)

// TestExecTraceOperators: a traced execution must produce one span per
// physical operator, with output cardinalities matching the actual
// result and the same relation an untraced Exec computes.
func TestExecTraceOperators(t *testing.T) {
	s := genstore.Chain(64, 2)
	e := New(s)
	p, err := e.Prepare(trial.Example2(genstore.RelE))
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Exec()
	if err != nil {
		t.Fatal(err)
	}

	root := obs.StartSpan("execute")
	got, err := p.ExecTrace(root)
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("traced result (%d triples) differs from untraced (%d)", got.Len(), want.Len())
	}

	kids := root.Children()
	if len(kids) != 1 {
		t.Fatalf("root has %d children, want 1 (the plan root)", len(kids))
	}
	join := kids[0]
	if join.Name() != "join:index-right" && join.Name() != "join:index-left" && join.Name() != "join:hash" {
		t.Errorf("plan-root span = %q, want a join", join.Name())
	}
	if out, ok := join.Attr("out").(int); !ok || out != want.Len() {
		t.Errorf("join out attr = %v, want %d", join.Attr("out"), want.Len())
	}
	if join.Attr("in_left") == nil || join.Attr("in_right") == nil {
		t.Error("join span lacks input cardinalities")
	}
	if join.Duration() <= 0 {
		t.Error("join span has no duration")
	}
	// Scans execute under the join.
	if sc := root.Find("scan"); sc == nil {
		t.Errorf("no scan span in trace:\n%s", root.Tree())
	}
}

// TestExecTraceStarRounds: the semi-naive star records its round count
// and per-round delta sizes.
func TestExecTraceStarRounds(t *testing.T) {
	s := genstore.Chain(20, 1)
	e := New(s)
	// The 1!=3' atom defeats the BFS reach shape, forcing the delta
	// fixpoint (the same trick the sharded bench workloads use).
	x, err := trial.Parse("rstar[1,2,3'; 3=1',1!=3'](E)")
	if err != nil {
		t.Fatal(err)
	}
	p, err := e.Prepare(x)
	if err != nil {
		t.Fatal(err)
	}
	root := obs.StartSpan("execute")
	if _, err := p.ExecTrace(root); err != nil {
		t.Fatal(err)
	}
	root.End()
	star := root.Children()[0]
	if star.Name() != "star:semi-naive delta-index" {
		t.Fatalf("plan-root span = %q, want the semi-naive star (tree:\n%s)", star.Name(), root.Tree())
	}
	rounds, ok := star.Attr("rounds").(int)
	if !ok || rounds < 2 {
		t.Errorf("rounds attr = %v, want >= 2", star.Attr("rounds"))
	}
	deltas, ok := star.Attr("deltas").([]int)
	if !ok || len(deltas) == 0 || deltas[0] != 20 {
		t.Errorf("deltas attr = %v, want first round = 20 seeds", star.Attr("deltas"))
	}
	if seeds, ok := star.Attr("seeds").(int); !ok || seeds != 20 {
		t.Errorf("seeds attr = %v, want 20", star.Attr("seeds"))
	}
}

// TestExecTraceSharded: partition-parallel operators record their mode
// and per-shard task timings, and stay byte-identical to the flat
// engine while traced.
func TestExecTraceSharded(t *testing.T) {
	s := genstore.Chain(100, 1)
	ss := triplestore.Shard(s, 4)
	e := NewSharded(ss)
	x, err := trial.Parse("rstar[1,2,3'; 3=1',1!=3'](E)")
	if err != nil {
		t.Fatal(err)
	}
	p, err := e.Prepare(x)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := New(s).Prepare(x)
	if err != nil {
		t.Fatal(err)
	}
	want, err := flat.Exec()
	if err != nil {
		t.Fatal(err)
	}

	root := obs.StartSpan("execute")
	got, err := p.ExecTrace(root)
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("traced sharded result (%d) differs from flat (%d)", got.Len(), want.Len())
	}
	star := root.Children()[0]
	if star.Name() != "star:semi-naive delta-index sharded(4)" {
		t.Fatalf("span = %q (tree:\n%s)", star.Name(), root.Tree())
	}
	us, ok := star.Attr("shard_us").([]int64)
	if !ok || len(us) != 4 {
		t.Errorf("shard_us attr = %v, want 4 entries", star.Attr("shard_us"))
	}

	// A sharded index join records its probe mode.
	j, err := trial.Parse("join[1,2,3'; 3=1'](E, E)")
	if err != nil {
		t.Fatal(err)
	}
	pj, err := e.Prepare(j)
	if err != nil {
		t.Fatal(err)
	}
	root = obs.StartSpan("execute")
	if _, err := pj.ExecTrace(root); err != nil {
		t.Fatal(err)
	}
	root.End()
	join := root.Children()[0]
	mode, _ := join.Attr("shard_mode").(string)
	if mode != "partition-probe" && mode != "broadcast-probe" {
		t.Errorf("shard_mode = %v (tree:\n%s)", join.Attr("shard_mode"), root.Tree())
	}
}

// TestTraceOverheadPathUntraced: with a nil span the traced entry point
// must behave identically (the ctx.run fast path).
func TestTraceOverheadPathUntraced(t *testing.T) {
	s := genstore.Grid(8, 8)
	e := New(s)
	p, err := e.Prepare(trial.ReachRight(genstore.RelE))
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.ExecTrace(nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("ExecTrace(nil) differs from Exec")
	}
}
