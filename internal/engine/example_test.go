package engine_test

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/trial"
	"repro/internal/triplestore"
)

// ExampleEngine_Prepare compiles a reachability closure once and
// executes the prepared plan; the plan can be reused (and run
// concurrently) as long as the store is not mutated.
func ExampleEngine_Prepare() {
	s := triplestore.NewStore()
	s.Add("E", "a", "p", "b")
	s.Add("E", "b", "p", "c")

	e := engine.New(s)
	x, err := trial.Parse("rstar[1,2,3'; 3=1'](E)")
	if err != nil {
		panic(err)
	}
	p, err := e.Prepare(x)
	if err != nil {
		panic(err)
	}
	r, err := p.Exec()
	if err != nil {
		panic(err)
	}
	for _, t := range r.Triples() {
		fmt.Println(s.FormatTriple(t))
	}
	// Output:
	// (a, p, b)
	// (a, p, c)
	// (b, p, c)
}
