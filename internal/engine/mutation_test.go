package engine

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/genstore"
	"repro/internal/trial"
	"repro/internal/triplestore"
)

// mutationQueries are the expressions the mutated-store differential
// tests pin: scans, joins, a star and a complement-flavoured difference,
// so every physical operator family sees post-mutation data.
var mutationQueries = []string{
	"E",
	"join[1,3',3; 2=1'](E, E)",
	"join[1,1,3'; 3=1'](E, E)*",
	"diff(E, join[1,3',3; 2=1'](E, E))",
}

// checkMutatedParity asserts that an engine over a snapshot of s computes
// byte-identical results to the reference Evaluator over s, for every
// mutation query.
func checkMutatedParity(t *testing.T, s *triplestore.Store, label string) {
	t.Helper()
	snap := s.Snapshot()
	eng := New(snap)
	ev := trial.NewEvaluator(s)
	for _, src := range mutationQueries {
		x, err := trial.Parse(src)
		if err != nil {
			t.Fatalf("%s: parse %q: %v", label, src, err)
		}
		want, wantErr := ev.Eval(x)
		got, gotErr := eng.Eval(x)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%s: %q error mismatch: evaluator=%v engine=%v", label, src, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if gw, ge := s.FormatRelation(want), snap.FormatRelation(got); gw != ge {
			t.Errorf("%s: %q diverges after mutation:\nevaluator:\n%sengine:\n%s", label, src, gw, ge)
		}
	}
}

// TestDifferentialAfterMutation pins the engine to the Evaluator across a
// sequence of store mutations: incremental adds (exercising the index
// overlays), removals (exercising index invalidation), batches, and
// value changes.
func TestDifferentialAfterMutation(t *testing.T) {
	s := genstore.Chain(12, 2)
	checkMutatedParity(t, s, "initial")

	// Warm the access paths, then mutate through the store so the
	// permutation indexes are extended incrementally rather than rebuilt.
	eng := New(s.Snapshot())
	if _, err := eng.EvalString("join[1,3',3; 2=1'](E, E)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		s.Add(genstore.RelE, fmt.Sprintf("n%d", i), "a", fmt.Sprintf("n%d", i+1))
	}
	checkMutatedParity(t, s, "after incremental adds")

	if !s.Remove(genstore.RelE, "n3", "a", "n4") {
		t.Fatal("Remove: triple not found")
	}
	checkMutatedParity(t, s, "after removal")

	ops := make([]triplestore.Op, 0, 30)
	for i := 0; i < 15; i++ {
		ops = append(ops, triplestore.Op{Rel: genstore.RelE, S: fmt.Sprintf("m%d", i), P: "b", O: fmt.Sprintf("m%d", i+1)})
	}
	for i := 0; i < 15; i++ {
		ops = append(ops, triplestore.Op{Delete: true, Rel: genstore.RelE, S: fmt.Sprintf("n%d", 2*i), P: "a", O: fmt.Sprintf("n%d", 2*i+1)})
	}
	if _, err := s.ApplyBatch(ops); err != nil {
		t.Fatal(err)
	}
	checkMutatedParity(t, s, "after batch")

	s.SetValue("m0", triplestore.V("hub"))
	s.SetValue("m7", triplestore.V("hub"))
	checkMutatedParity(t, s, "after value change")
}

// TestSnapshotIsolationDuringEvaluate runs engines over snapshots while a
// writer mutates the live store concurrently: every evaluation must see
// exactly its snapshot's state (run with -race to check synchronization).
func TestSnapshotIsolationDuringEvaluate(t *testing.T) {
	s := genstore.Chain(16, 2)
	base := s.Snapshot()
	baseEng := New(base)
	x, err := trial.Parse("join[1,3',3; 2=1'](E, E)")
	if err != nil {
		t.Fatal(err)
	}
	want, err := baseEng.Eval(x)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.Add(genstore.RelE, fmt.Sprintf("w%d", i), "a", fmt.Sprintf("w%d", i+1))
			s.SetValue(fmt.Sprintf("w%d", i), triplestore.V("x"))
			if i%7 == 0 {
				s.Remove(genstore.RelE, fmt.Sprintf("w%d", i-3), "a", fmt.Sprintf("w%d", i-2))
			}
			i++
		}
	}()

	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 25; i++ {
				// The pinned snapshot must keep answering with its own state.
				got, err := baseEng.Eval(x)
				if err != nil {
					t.Error(err)
					return
				}
				if !got.Equal(want) {
					t.Errorf("snapshot result drifted: got %d want %d triples", got.Len(), want.Len())
					return
				}
				// Fresh snapshots of the moving store must evaluate cleanly.
				if _, err := New(s.Snapshot()).Eval(x); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// The writer runs for the whole reader lifetime.
	readers.Wait()
	close(stop)
	<-writerDone
}
