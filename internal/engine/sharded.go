package engine

import (
	"context"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/trial"
	"repro/internal/triplestore"
)

// This file is the partition-parallel executor over a
// triplestore.ShardedStore. The TriAL* algebra is closed under union, so
// any relation equals the union of its shard partitions and the indexed
// operators distribute over that union:
//
//   - A join whose probe key is the shard key (the subject, position 1)
//     routes each probe triple to the one shard that can match it and
//     runs one probe task per shard — a partition-probe join over the
//     store's per-shard permutation indexes.
//   - A join probing any other position cannot route (the partitions are
//     keyed by subject), so it falls back to broadcast-probe: every
//     shard joins the whole probe side against its own partition, and
//     the disjoint per-shard results merge into the union.
//   - The semi-naive star re-partitions its loop-invariant base by the
//     probed position at fixpoint setup (the base is a derived relation,
//     so the store's subject partitions do not apply), then routes each
//     round's delta to shards — every round is a partition-probe join
//     run per-shard on the worker pool.
//
// Each task accumulates into a private relation and the merge
// deduplicates through set inserts, exactly like parallelCollect, so the
// result is byte-identical to the flat engine's (internal/proptest pins
// this). With a single worker the tasks run sequentially on the calling
// goroutine: same results, no goroutine overhead.

// forEachShard runs task(i) for every shard, in parallel across the
// engine's worker pool when it has more than one worker. The shard-task
// boundary is a cancellation point: a task whose context is already done
// at pickup never starts, so a cancelled query releases the pool within
// one task's runtime (the chunk-level polls of parallelCollect bound
// that runtime for the probe loops themselves).
func (e *Engine) forEachShard(ctx context.Context, n int, task func(shard int)) {
	if e.workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			task(i)
		}
		return
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, e.workers)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				return
			}
			task(i)
		}(i)
	}
	wg.Wait()
}

// collectShards runs task per shard and merges the per-shard result
// relations (nil results are skipped) into one.
func (e *Engine) collectShards(ctx context.Context, n int, task func(shard int) *triplestore.Relation) *triplestore.Relation {
	locals := make([]*triplestore.Relation, n)
	e.forEachShard(ctx, n, func(i int) { locals[i] = task(i) })
	total := 0
	for _, l := range locals {
		if l != nil {
			total += l.Len()
		}
	}
	out := triplestore.NewRelationCap(total)
	for _, l := range locals {
		if l != nil {
			out.AddAll(l)
		}
	}
	return out
}

// bucketByPos splits ts into one bucket per shard, keyed by the hash of
// the triple component at pos — the routing step of a partition-probe.
func bucketByPos(ss *triplestore.ShardedStore, ts []triplestore.Triple, pos int) [][]triplestore.Triple {
	buckets := make([][]triplestore.Triple, ss.NumShards())
	for _, t := range ts {
		i := ss.ShardOf(t[pos])
		buckets[i] = append(buckets[i], t)
	}
	return buckets
}

// probeIndex joins probe triples against one shard's index: for every
// probe triple, the index matches on its probePos component, the full
// condition is re-checked per candidate pair, and survivors project into
// the local result. indexedLeft reports that the indexed side is the
// join's LEFT operand (the probe triples are right operands).
func probeIndex(probe []triplestore.Triple, ix *triplestore.Index, probePos int, indexedLeft bool,
	cc trial.CompiledCond, out [3]trial.Pos) *triplestore.Relation {
	local := triplestore.NewRelation()
	if indexedLeft {
		for _, rt := range probe {
			for _, lt := range ix.Match(rt[probePos]) {
				if cc.Holds(lt, rt) {
					local.Add(trial.Project(out, lt, rt))
				}
			}
		}
		return local
	}
	for _, lt := range probe {
		for _, rt := range ix.Match(lt[probePos]) {
			if cc.Holds(lt, rt) {
				local.Add(trial.Project(out, lt, rt))
			}
		}
	}
	return local
}

// shardTimer captures per-shard wall times for a trace span: timed
// wraps one shard task (each shard index is written by one goroutine at
// a time, so the slice needs no lock), attach folds the timings into
// the span. A nil-span timer is pass-through.
type shardTimer struct {
	sp   *obs.Span
	durs []time.Duration
}

func newShardTimer(sp *obs.Span, n int) *shardTimer {
	t := &shardTimer{sp: sp}
	if sp != nil {
		t.durs = make([]time.Duration, n)
	}
	return t
}

// timed wraps task so shard i's cumulative wall time lands in durs[i].
func (t *shardTimer) timed(task func(int) *triplestore.Relation) func(int) *triplestore.Relation {
	if t.sp == nil {
		return task
	}
	return func(i int) *triplestore.Relation {
		start := time.Now()
		r := task(i)
		t.durs[i] += time.Since(start)
		return r
	}
}

// timedVoid is timed for tasks with no result (forEachShard).
func (t *shardTimer) timedVoid(task func(int)) func(int) {
	if t.sp == nil {
		return task
	}
	return func(i int) {
		start := time.Now()
		task(i)
		t.durs[i] += time.Since(start)
	}
}

// attach records the per-shard microsecond timings on the span.
func (t *shardTimer) attach() {
	if t.sp == nil {
		return
	}
	us := make([]int64, len(t.durs))
	for i, d := range t.durs {
		us[i] = d.Microseconds()
	}
	t.sp.SetAttr("shard_us", us)
}

// shardedIndexJoin evaluates an index join against the partitioned base
// relation: partition-probe when the indexed position is the shard key
// (subject), broadcast-probe otherwise. parts are the store's shard
// partitions of the indexed side; probePos/basePos index the key
// component on the probe and indexed triples. When sp is non-nil the
// join records its mode and per-shard task timings on it. A context
// cancelled mid-join skips the remaining shard tasks and returns the
// context's error instead of a partial merge.
func (e *Engine) shardedIndexJoin(ctx context.Context, sp *obs.Span, parts []*triplestore.Relation, probe []triplestore.Triple,
	probePos, basePos int, indexedLeft bool, cc trial.CompiledCond, out [3]trial.Pos) (*triplestore.Relation, error) {
	perm := triplestore.PermFor(basePos)
	timer := newShardTimer(sp, len(parts))
	defer timer.attach()
	var r *triplestore.Relation
	if basePos == 0 {
		sp.SetAttr("shard_mode", "partition-probe")
		buckets := bucketByPos(e.sharded, probe, probePos)
		r = e.collectShards(ctx, len(parts), timer.timed(func(i int) *triplestore.Relation {
			if len(buckets[i]) == 0 || parts[i].Len() == 0 {
				return nil
			}
			return probeIndex(buckets[i], parts[i].Index(perm), probePos, indexedLeft, cc, out)
		}))
	} else {
		sp.SetAttr("shard_mode", "broadcast-probe")
		r = e.collectShards(ctx, len(parts), timer.timed(func(i int) *triplestore.Relation {
			if parts[i].Len() == 0 {
				return nil
			}
			return probeIndex(probe, parts[i].Index(perm), probePos, indexedLeft, cc, out)
		}))
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return r, nil
}

// execShardedStar runs the partition-parallel semi-naive fixpoint: the
// loop-invariant base is hash-partitioned by the probed position (any
// disjoint partition is sound under the union closure; the store's
// subject partitions do not apply to a derived base), each partition
// gets its own permutation index built on the worker pool, and every
// round routes the delta to its shards and runs one probe task per
// shard. The per-shard locals fold straight into the result set —
// result.Add deduplicates, exactly like the flat loop — so no
// intermediate merged relation is built per round. Cancellation is
// polled at every round boundary and at every shard-task pickup, so a
// timed-out star stops deriving within one round and returns the
// context's error rather than a partial fixpoint.
func (n *starNode) execShardedStar(ctx *execCtx, base, seeds *triplestore.Relation) (*triplestore.Relation, error) {
	e := ctx.e
	ss := e.sharded
	probe := n.objKeys[0]
	// Right closure joins delta ✶ base (base on the primed side); left
	// closure joins base ✶ delta.
	basePos, deltaPos := probe[1].Index(), probe[0].Index()
	if n.left {
		basePos, deltaPos = probe[0].Index(), probe[1].Index()
	}
	parts := bucketByPos(ss, base.Slice(), basePos)
	perm := triplestore.PermFor(basePos)
	timer := newShardTimer(ctx.trace, len(parts))
	defer timer.attach()
	ixs := make([]*triplestore.Index, len(parts))
	e.forEachShard(ctx.ctx, len(parts), timer.timedVoid(func(i int) {
		if len(parts[i]) > 0 {
			ixs[i] = triplestore.IndexTriples(parts[i], perm)
		}
	}))
	result := seeds.Clone()
	delta := seeds
	rec := newRoundRecorder(ctx.trace, seeds.Len())
	for delta.Len() > 0 {
		if err := ctx.ctx.Err(); err != nil {
			return nil, err
		}
		rec.round(delta.Len())
		buckets := bucketByPos(ss, delta.Slice(), deltaPos)
		locals := make([]*triplestore.Relation, len(parts))
		e.forEachShard(ctx.ctx, len(parts), timer.timedVoid(func(i int) {
			if len(buckets[i]) == 0 || ixs[i] == nil {
				return
			}
			locals[i] = probeIndex(buckets[i], ixs[i], deltaPos, n.left, n.cc, n.out)
		}))
		next := triplestore.NewRelation()
		for _, l := range locals {
			if l == nil {
				continue
			}
			l.ForEach(func(t triplestore.Triple) {
				if result.Add(t) {
					next.Add(t)
				}
			})
		}
		delta = next
	}
	if err := ctx.ctx.Err(); err != nil {
		return nil, err
	}
	rec.done()
	return result, nil
}
