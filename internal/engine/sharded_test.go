package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/genstore"
	"repro/internal/trial"
	"repro/internal/triplestore"
)

// shardedVariants returns sharded engines worth covering: several shard
// counts, parallel and sequential workers, over live stores and
// snapshots.
func shardedVariants(s *triplestore.Store) []*Engine {
	return []*Engine{
		NewSharded(triplestore.Shard(s, 2)),
		NewSharded(triplestore.Shard(s, 4), WithWorkers(1)),
		NewSharded(triplestore.Shard(s, 7), WithWorkers(4)),
		NewSharded(triplestore.Shard(s, 16).Snapshot()),
	}
}

// TestShardedDifferentialNamedQueries pins every sharded engine variant
// byte-identical (via the sorted rendering) to the flat engine and the
// reference Evaluator on the paper's named queries.
func TestShardedDifferentialNamedQueries(t *testing.T) {
	queries := []trial.Expr{
		trial.Example2(fixtures.RelE),
		trial.Example2Extended(fixtures.RelE),
		trial.ReachRight(fixtures.RelE),
		trial.ReachUp(fixtures.RelE),
		trial.ReachUpRight(fixtures.RelE),
		trial.SameLabelReach(fixtures.RelE),
		trial.QueryQ(fixtures.RelE),
	}
	for name, s := range diffStores() {
		t.Run(name, func(t *testing.T) {
			engines := shardedVariants(s)
			for _, q := range queries {
				checkAgainstEvaluator(t, s, q, engines)
			}
		})
	}
}

// TestShardedDifferentialRandomExprs cross-checks sharded engines on
// random TriAL* expressions, stars included.
func TestShardedDifferentialRandomExprs(t *testing.T) {
	cfg := genstore.ExprOptions{
		Relations:       []string{genstore.RelE},
		MaxDepth:        3,
		AllowStar:       true,
		AllowValueConds: true,
	}
	stores := map[string]*triplestore.Store{
		"random": genstore.Random(rand.New(rand.NewSource(21)), 12, 40, 3),
		"chain":  genstore.Chain(9, 2),
		"cycle":  genstore.Cycle(7),
		"social": genstore.Social(rand.New(rand.NewSource(22)), 8, 20, 3, 3),
	}
	for name, s := range stores {
		t.Run(name, func(t *testing.T) {
			engines := shardedVariants(s)
			rng := rand.New(rand.NewSource(23))
			for i := 0; i < 60; i++ {
				x := genstore.RandomExpr(rng, cfg)
				t.Run(fmt.Sprintf("%d", i), func(t *testing.T) {
					checkAgainstEvaluator(t, s, x, engines)
				})
			}
		})
	}
}

// TestShardedJoinModes pins both sharded join paths against the flat
// engine on a store large enough to populate every shard: a
// subject-probed join (partition-probe) and a predicate/object-probed
// join (broadcast-probe).
func TestShardedJoinModes(t *testing.T) {
	s := genstore.Random(rand.New(rand.NewSource(31)), 60, 900, 0)
	queries := map[string]string{
		// 3=1': the probed side is keyed on its subject — partition-probe.
		"partition": "join[1,2,3'; 3=1'](E, E)",
		// 2=2': probed on the predicate position — broadcast-probe.
		"broadcast": "join[1,3,3'; 2=2'](E, E)",
		// 2=1' with output rearrangement (Example 2's shape).
		"example2": "join[1,3',3; 2=1'](E, E)",
	}
	flat := New(s)
	engines := shardedVariants(s)
	for name, src := range queries {
		t.Run(name, func(t *testing.T) {
			x, err := trial.Parse(src)
			if err != nil {
				t.Fatal(err)
			}
			want, err := flat.Eval(x)
			if err != nil {
				t.Fatal(err)
			}
			for i, e := range engines {
				got, err := e.Eval(x)
				if err != nil {
					t.Fatal(err)
				}
				if gw, gg := s.FormatRelation(want), s.FormatRelation(got); gw != gg {
					t.Errorf("sharded[%d] diverges from flat on %s (%d vs %d triples)",
						i, src, got.Len(), want.Len())
				}
			}
		})
	}
}

// TestShardedExplain asserts the plan rendering names the sharded access
// paths, so operators can see partitioning from /explain.
func TestShardedExplain(t *testing.T) {
	// Every edge gets a distinct predicate, so the predicate-probed index
	// has fanout 1 and beats the hash join in the cost model.
	s := genstore.Chain(64, 64)
	e := NewSharded(triplestore.Shard(s, 4))

	plan, err := e.Explain(trial.MustJoin(trial.R(genstore.RelE),
		[3]trial.Pos{trial.L1, trial.L2, trial.R3},
		trial.Cond{Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L3), trial.P(trial.R1))}},
		trial.R(genstore.RelE)))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "sharded(4,partition-probe)") {
		t.Errorf("subject-probed join plan lacks partition-probe marker:\n%s", plan)
	}

	plan, err = e.Explain(trial.MustJoin(trial.R(genstore.RelE),
		[3]trial.Pos{trial.L1, trial.L3, trial.R3},
		trial.Cond{Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L2), trial.P(trial.R2))}},
		trial.R(genstore.RelE)))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "sharded(4,broadcast-probe)") {
		t.Errorf("predicate-probed join plan lacks broadcast-probe marker:\n%s", plan)
	}

	// A non-reach star (the !=' atom defeats the BFS shape) goes
	// partition-parallel semi-naive.
	star, err := trial.Parse("rstar[1,2,3'; 3=1',1!=3'](E)")
	if err != nil {
		t.Fatal(err)
	}
	plan, err = e.Explain(star)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "sharded(4)") {
		t.Errorf("semi-naive star plan lacks sharded marker:\n%s", plan)
	}

	// The flat engine renders none of this.
	plan, err = New(s).Explain(star)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan, "sharded") {
		t.Errorf("flat plan mentions sharding:\n%s", plan)
	}
}

// TestShardedSemiNaiveStarLargeChain runs the partition-parallel star on
// a chain long enough for many delta rounds, against the flat engine.
func TestShardedSemiNaiveStarLargeChain(t *testing.T) {
	s := genstore.Chain(300, 1)
	star, err := trial.Parse("rstar[1,2,3'; 3=1',1!=3'](E)")
	if err != nil {
		t.Fatal(err)
	}
	want, err := New(s).Eval(star)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []*Engine{
		NewSharded(triplestore.Shard(s, 4), WithWorkers(4)),
		NewSharded(triplestore.Shard(s, 8), WithWorkers(2)),
	} {
		got, err := e.Eval(star)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Errorf("sharded star = %d triples, flat = %d", got.Len(), want.Len())
		}
	}
}

// TestNewShardedSingleShardIsFlat pins the degenerate case: one shard
// means nothing to partition, so the engine runs flat.
func TestNewShardedSingleShardIsFlat(t *testing.T) {
	s := genstore.Chain(8, 1)
	e := NewSharded(triplestore.Shard(s, 1))
	if e.Sharded() != nil {
		t.Error("single-shard engine kept a sharded executor")
	}
	ss := triplestore.Shard(s, 4)
	if NewSharded(ss).Sharded() != ss {
		t.Error("multi-shard engine lost its sharded store")
	}
}

// TestShardedEvalOnSnapshotDuringIngest evaluates on a sharded snapshot
// while batches land on the live store (run under -race): results must
// stay pinned to the snapshot's version.
func TestShardedEvalOnSnapshotDuringIngest(t *testing.T) {
	ss := triplestore.NewShardedStore(4)
	for i := 0; i < 64; i++ {
		ss.Add("E", fmt.Sprintf("s%d", i), "p", fmt.Sprintf("s%d", i+1))
	}
	snap := ss.Snapshot()
	e := NewSharded(snap, WithWorkers(4))
	x, err := trial.Parse("join[1,2,3'; 3=1'](E, E)")
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Eval(x)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for b := 0; b < 10; b++ {
			ops := make([]triplestore.Op, 8)
			for i := range ops {
				ops[i] = triplestore.Op{Rel: "E", S: fmt.Sprintf("n%d-%d", b, i), P: "q", O: "t"}
			}
			if _, err := ss.ApplyBatch(ops); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 20; i++ {
		got, err := e.Eval(x)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("snapshot-bound eval drifted: %d vs %d triples", got.Len(), want.Len())
		}
	}
	<-done
}
