package engine

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/genstore"
	"repro/internal/trial"
	"repro/internal/triplestore"
)

// triangleQuery is the canonical cyclic shape:
// join[1,2,3; 3=1',1=3'](join[1,3,3'; 3=1'](E, E), E) — E(a,_,b) ∧
// E(b,_,c) ∧ E(c,_,a) projected to (a, b, c).
func triangleQuery(rel string) trial.Join {
	inner := trial.MustJoin(trial.R(rel), [3]trial.Pos{trial.L1, trial.L3, trial.R3},
		trial.Cond{Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L3), trial.P(trial.R1))}},
		trial.R(rel))
	return trial.MustJoin(inner, [3]trial.Pos{trial.L1, trial.L2, trial.L3},
		trial.Cond{Obj: []trial.ObjAtom{
			trial.Eq(trial.P(trial.L3), trial.P(trial.R1)),
			trial.Eq(trial.P(trial.L1), trial.P(trial.R3)),
		}},
		trial.R(rel))
}

// diamondQuery closes a 4-cycle from two 2-hop paths.
func diamondQuery(rel string) trial.Join {
	path := func() trial.Join {
		return trial.MustJoin(trial.R(rel), [3]trial.Pos{trial.L1, trial.L3, trial.R3},
			trial.Cond{Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L3), trial.P(trial.R1))}},
			trial.R(rel))
	}
	return trial.MustJoin(path(), [3]trial.Pos{trial.L1, trial.L2, trial.L3},
		trial.Cond{Obj: []trial.ObjAtom{
			trial.Eq(trial.P(trial.L3), trial.P(trial.R1)),
			trial.Eq(trial.P(trial.L1), trial.P(trial.R3)),
		}},
		path())
}

// TestLeapfrogEquivalence pins the forced leapfrog route byte-identical
// to the reference evaluator on cyclic shapes over every differential
// store, with residual conditions (inequality) mixed in.
func TestLeapfrogEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	stores := map[string]*triplestore.Store{
		"cycle":   genstore.Cycle(12),
		"grid":    genstore.Grid(5, 5),
		"random":  genstore.Random(rng, 30, 150, 4),
		"social":  fixtures.SocialNetwork(),
		"chain":   genstore.Chain(24, 2),
		"socialG": genstore.Social(rng, 40, 300, 4, 8),
	}
	tri := triangleQuery(genstore.RelE)
	dia := diamondQuery(genstore.RelE)
	// A triangle with an extra residual inequality 1≠2': not expressible
	// as a pure variable binding, must survive through the residual check.
	triNeq := tri
	triNeq.Cond = tri.Cond.And(trial.Neq(trial.P(trial.L1), trial.P(trial.R2)))
	for name, s := range stores {
		if s.Relation(genstore.RelE) == nil {
			continue
		}
		for _, x := range []trial.Expr{tri, dia, triNeq} {
			want, err := trial.NewEvaluator(s).Eval(x)
			if err != nil {
				t.Fatalf("%s: evaluator: %v", name, err)
			}
			for _, e := range []*Engine{
				New(s, WithJoinPolicy(JoinForceLeapfrog)),
				New(s, WithJoinPolicy(JoinForceLeapfrog), WithWorkers(1)),
				New(s, WithJoinPolicy(JoinForceLeapfrog), WithoutOptimize()),
			} {
				plan, err := e.Explain(x)
				if err != nil {
					t.Fatalf("%s: explain: %v", name, err)
				}
				if !strings.Contains(plan, "leapfrog") {
					t.Fatalf("%s: forced policy did not plan leapfrog for %s:\n%s", name, x, plan)
				}
				got, err := e.Eval(x)
				if err != nil {
					t.Fatalf("%s: leapfrog eval: %v", name, err)
				}
				if !got.Equal(want) {
					t.Errorf("%s: leapfrog = %d triples, evaluator = %d for %s\nplan:\n%s",
						name, got.Len(), want.Len(), x, plan)
				}
			}
		}
	}
}

// TestMergeJoinEquivalence pins the forced sort-merge route against the
// evaluator on dense scan-scan joins, including side-only prefilters and
// residual inequalities.
func TestMergeJoinEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	stores := map[string]*triplestore.Store{
		"social": genstore.Social(rng, 50, 400, 4, 8),
		"random": genstore.Random(rng, 30, 200, 4),
		"grid":   genstore.Grid(6, 6),
	}
	base := trial.MustJoin(trial.R(genstore.RelE), [3]trial.Pos{trial.L1, trial.L2, trial.R3},
		trial.Cond{Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L3), trial.P(trial.R1))}},
		trial.R(genstore.RelE))
	withNeq := base
	withNeq.Cond = base.Cond.And(trial.Neq(trial.P(trial.L1), trial.P(trial.R3)))
	for name, s := range stores {
		for _, x := range []trial.Expr{base, withNeq} {
			want, err := trial.NewEvaluator(s).Eval(x)
			if err != nil {
				t.Fatalf("%s: evaluator: %v", name, err)
			}
			for _, e := range []*Engine{
				New(s, WithJoinPolicy(JoinForceMerge)),
				New(s, WithJoinPolicy(JoinForceMerge), WithWorkers(1)),
			} {
				plan, err := e.Explain(x)
				if err != nil {
					t.Fatalf("%s: explain: %v", name, err)
				}
				if !strings.Contains(plan, "merge") {
					t.Fatalf("%s: forced policy did not plan merge for %s:\n%s", name, x, plan)
				}
				got, err := e.Eval(x)
				if err != nil {
					t.Fatalf("%s: merge eval: %v", name, err)
				}
				if !got.Equal(want) {
					t.Errorf("%s: merge = %d triples, evaluator = %d for %s\nplan:\n%s",
						name, got.Len(), want.Len(), x, plan)
				}
			}
		}
	}
}

// TestPlannerMergeForDenseScanJoin: on a dense join of two base scans
// (per-subject fanout well above 1) the linear merge walk beats both the
// index probe (|L|·fanout) and the hash build (string keys), so the cost
// model should pick it unforced.
func TestPlannerMergeForDenseScanJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := genstore.Social(rng, 50, 500, 4, 8)
	e := New(s)
	x := trial.MustJoin(trial.R(genstore.RelE), [3]trial.Pos{trial.L1, trial.L2, trial.R3},
		trial.Cond{Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L3), trial.P(trial.R1))}},
		trial.R(genstore.RelE))
	plan, err := e.Explain(x)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "merge") {
		t.Errorf("expected merge join for dense scan-scan join, got:\n%s", plan)
	}
}

// TestPlannerLeapfrogOnSkew: the auto policy should route a triangle
// query through the leapfrog triejoin on a hub-heavy (skewed) graph —
// where the binary plan's worst-case intermediate explodes past the AGM
// bound — and keep the binary plan on a uniform chain, where worst case
// ≈ average and pairwise joins are already optimal.
func TestPlannerLeapfrogOnSkew(t *testing.T) {
	// A hub: one node with edges to/from everyone, plus a sparse rest.
	s := triplestore.NewStore()
	for i := 0; i < 60; i++ {
		s.Add(genstore.RelE, "hub", "p", node(i))
		s.Add(genstore.RelE, node(i), "p", "hub")
	}
	for i := 0; i < 59; i++ {
		s.Add(genstore.RelE, node(i), "p", node(i+1))
	}
	tri := triangleQuery(genstore.RelE)
	plan, err := New(s).Explain(tri)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "leapfrog") {
		t.Errorf("expected leapfrog on skewed store, got:\n%s", plan)
	}
	// The result must still match the evaluator.
	want, err := trial.NewEvaluator(s).Eval(tri)
	if err != nil {
		t.Fatal(err)
	}
	got, err := New(s).Eval(tri)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("auto leapfrog = %d triples, evaluator = %d", got.Len(), want.Len())
	}

	uniform := genstore.Chain(100, 2)
	plan, err = New(uniform).Explain(tri)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan, "leapfrog") {
		t.Errorf("uniform chain should keep the binary plan, got:\n%s", plan)
	}

	// JoinNoWCO pins the pre-WCO planner even on the skewed store.
	plan, err = New(s, WithJoinPolicy(JoinNoWCO)).Explain(tri)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan, "leapfrog") || strings.Contains(plan, "merge") {
		t.Errorf("JoinNoWCO must not plan WCO operators, got:\n%s", plan)
	}
}

func node(i int) string { return "n" + string(rune('A'+i/26)) + string(rune('a'+i%26)) }

// TestLeapfrogIntersect checks the k-way intersection against a brute
// force oracle on overlapping runs.
func TestLeapfrogIntersect(t *testing.T) {
	lists := [][]triplestore.ID{
		{1, 3, 5, 7, 9, 11, 40},
		{2, 3, 4, 7, 10, 11, 40, 41},
		{3, 7, 8, 11, 12, 40},
	}
	its := make([]*leapfrogIter, len(lists))
	for i, l := range lists {
		its[i] = newLeapfrogIter(l)
	}
	var got []triplestore.ID
	leapfrogIntersect(its, func(v triplestore.ID) bool { got = append(got, v); return true })
	want := []triplestore.ID{3, 7, 11, 40}
	if len(got) != len(want) {
		t.Fatalf("intersect = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("intersect = %v, want %v", got, want)
		}
	}
	// Empty input list: empty intersection.
	its = []*leapfrogIter{newLeapfrogIter(nil), newLeapfrogIter([]triplestore.ID{1})}
	leapfrogIntersect(its, func(v triplestore.ID) bool { t.Fatalf("yielded %d from empty", v); return false })
}

// FuzzLeapfrogIterator drives random next/seek sequences through the
// trie iterator and checks every observation against a linear scan of
// the same sorted run — the open/next/seek contract of the triejoin.
func FuzzLeapfrogIterator(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5}, []byte{0, 1, 2, 3})
	f.Add([]byte{0, 0, 0, 255}, []byte{7, 0, 255})
	f.Add([]byte{}, []byte{1})
	f.Fuzz(func(t *testing.T, idBytes, ops []byte) {
		// Build an ascending, deduplicated run from byte deltas.
		ids := make([]triplestore.ID, 0, len(idBytes))
		var cur triplestore.ID
		for _, b := range idBytes {
			cur += triplestore.ID(b % 17)
			if len(ids) == 0 || ids[len(ids)-1] != cur {
				ids = append(ids, cur)
			}
		}
		it := newLeapfrogIter(ids)
		oracle := 0 // index of the oracle's current element
		for _, op := range ops {
			if it.atEnd() != (oracle >= len(ids)) {
				t.Fatalf("atEnd = %v, oracle at %d/%d", it.atEnd(), oracle, len(ids))
			}
			if it.atEnd() {
				break
			}
			if it.key() != ids[oracle] {
				t.Fatalf("key = %d, oracle has %d", it.key(), ids[oracle])
			}
			if op%2 == 0 {
				it.next()
				oracle++
			} else {
				// Monotone seek: target ≥ current key by contract.
				target := it.key() + triplestore.ID(op/2)
				it.seek(target)
				for oracle < len(ids) && ids[oracle] < target {
					oracle++
				}
			}
		}
		if it.atEnd() != (oracle >= len(ids)) {
			t.Fatalf("final atEnd = %v, oracle at %d/%d", it.atEnd(), oracle, len(ids))
		}
		if !it.atEnd() && it.key() != ids[oracle] {
			t.Fatalf("final key = %d, oracle has %d", it.key(), ids[oracle])
		}
	})
}
