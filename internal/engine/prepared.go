package engine

import (
	"context"

	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/trial"
	"repro/internal/triplestore"
)

// Prepared is a compiled physical plan bound to its engine: the product
// of validation, the logical rewrites of internal/optimizer and physical
// planning, ready to execute any number of times. Plan nodes hold no
// per-execution state (hash tables, delta sets and the
// common-subexpression memo live in a per-run execution context), so a
// Prepared is safe for concurrent Exec calls under the engine's usual
// contract that the store is not mutated while in use. internal/query
// caches Prepared values keyed by source text, store version and
// optimizer version so repeated queries skip parsing, translation,
// rewriting and planning entirely.
type Prepared struct {
	e    *Engine
	plan *compiledPlan
	expr trial.Expr
}

// Prepare validates, optimizes and compiles x into a reusable plan.
func (e *Engine) Prepare(x trial.Expr) (*Prepared, error) {
	plan, err := e.plan(x)
	if err != nil {
		return nil, err
	}
	return &Prepared{e: e, plan: plan, expr: x}, nil
}

// Exec computes the relation of the prepared expression.
func (p *Prepared) Exec() (*triplestore.Relation, error) {
	return p.plan.exec(p.e)
}

// ExecContext is Exec under a caller-supplied context: cancellation and
// deadlines propagate into the operator loops, worker chunks, star
// rounds and shard tasks (see Engine.EvalContext), so a timed-out or
// disconnected caller stops burning cores. On cancellation the error is
// ctx.Err() and no partial relation is returned.
func (p *Prepared) ExecContext(ctx context.Context) (*triplestore.Relation, error) {
	return p.plan.execContext(p.e, ctx, nil)
}

// ExecTrace computes the relation, recording one child span per
// physical operator under sp: operator kind (join strategy, star access
// path), planner estimate vs. actual output cardinality, join input
// sizes, semi-naive round counts with per-round delta sizes, and
// per-shard task timings on the partition-parallel paths. A nil sp runs
// exactly like Exec.
func (p *Prepared) ExecTrace(sp *obs.Span) (*triplestore.Relation, error) {
	return p.plan.execTrace(p.e, sp)
}

// ExecTraceContext is ExecTrace under a caller-supplied context (see
// ExecContext). A cancelled run still leaves the spans recorded so far
// on sp, which is how traced slow-query records show where an aborted
// query spent its time.
func (p *Prepared) ExecTraceContext(ctx context.Context, sp *obs.Span) (*triplestore.Relation, error) {
	return p.plan.execContext(p.e, ctx, sp)
}

// Expr returns the expression the plan was prepared from (as written,
// before optimization).
func (p *Prepared) Expr() trial.Expr { return p.expr }

// Trace returns the logical optimizer's rewrite trace for this plan, or
// nil when the engine was built WithoutOptimize.
func (p *Prepared) Trace() *optimizer.Trace { return p.plan.trace }

// Explain renders the rewrite trace and the physical plan, in the same
// format as Engine.Explain.
func (p *Prepared) Explain() string { return p.plan.explainString() }
