package engine

import (
	"strings"

	"repro/internal/trial"
	"repro/internal/triplestore"
)

// Prepared is a compiled physical plan bound to its engine: the product of
// validation, the trial.Optimize rewrites and physical planning, ready to
// execute any number of times. Plan nodes hold no per-execution state
// (hash tables and delta sets are built inside exec), so a Prepared is
// safe for concurrent Exec calls under the engine's usual contract that
// the store is not mutated while in use. internal/query caches Prepared
// values keyed by source text and store version so repeated queries skip
// parsing, translation and planning entirely.
type Prepared struct {
	e    *Engine
	root planNode
	expr trial.Expr
}

// Prepare validates, optimizes and compiles x into a reusable plan.
func (e *Engine) Prepare(x trial.Expr) (*Prepared, error) {
	root, err := e.plan(x)
	if err != nil {
		return nil, err
	}
	return &Prepared{e: e, root: root, expr: x}, nil
}

// Exec computes the relation of the prepared expression.
func (p *Prepared) Exec() (*triplestore.Relation, error) {
	return p.root.exec(p.e)
}

// Expr returns the expression the plan was prepared from (as written,
// before optimization).
func (p *Prepared) Expr() trial.Expr { return p.expr }

// Explain renders the physical plan, in the same format as Engine.Explain.
func (p *Prepared) Explain() string {
	var b strings.Builder
	p.root.explain(&b, 0)
	return b.String()
}
