package engine

import (
	"fmt"
	"strings"

	"repro/internal/trial"
	"repro/internal/triplestore"
)

// planNode is one physical operator. exec computes the operator's result
// relation; est is the planner's (rough) output-cardinality estimate used
// to rank join strategies; explain renders the subtree.
type planNode interface {
	exec(e *Engine) (*triplestore.Relation, error)
	est() float64
	explain(b *strings.Builder, depth int)
}

// joinStrategy selects the physical join implementation.
type joinStrategy int

const (
	// joinHash builds a hash table over the right operand keyed on the
	// cross-side equality atoms and probes it with the left operand in
	// parallel — the engine's form of the Proposition 4 strategy.
	joinHash joinStrategy = iota
	// joinIndexRight probes the right base relation's permutation index
	// with each left triple (index nested-loop join).
	joinIndexRight
	// joinIndexLeft probes the left base relation's permutation index
	// with each right triple.
	joinIndexLeft
	// joinLoop is the parallel nested-loop fallback for conditions with no
	// cross-side equality atoms (including the pure cartesian join).
	joinLoop
)

func (s joinStrategy) String() string {
	switch s {
	case joinHash:
		return "hash"
	case joinIndexRight:
		return "index-right"
	case joinIndexLeft:
		return "index-left"
	default:
		return "loop"
	}
}

type scanNode struct {
	name string
	rel  *triplestore.Relation
}

type universeNode struct {
	rows float64
}

type filterNode struct {
	child planNode
	cond  trial.Cond
	cc    trial.CompiledCond
	rows  float64
}

type unionNode struct {
	l, r planNode
}

type diffNode struct {
	l, r planNode
}

type joinNode struct {
	l, r     planNode
	out      [3]trial.Pos
	cond     trial.Cond
	cc       trial.CompiledCond
	strategy joinStrategy
	objKeys  [][2]trial.Pos // cross-side object equalities, for index probes
	rows     float64
}

type starNode struct {
	child   planNode
	out     [3]trial.Pos
	cond    trial.Cond
	cc      trial.CompiledCond
	left    bool
	objKeys [][2]trial.Pos
	rows    float64
}

// compile lowers a validated (and optimized) expression to physical
// operators bottom-up, estimating cardinalities as it goes.
func (e *Engine) compile(x trial.Expr) (planNode, error) {
	switch n := x.(type) {
	case trial.Rel:
		rel := e.store.Relation(n.Name)
		if rel == nil {
			return nil, fmt.Errorf("trial: unknown relation %q", n.Name)
		}
		return &scanNode{name: n.Name, rel: rel}, nil
	case trial.Universe:
		// |O| bounds the active domain; good enough for an estimate and
		// avoids a full store scan at plan time.
		d := float64(e.store.NumObjects())
		return &universeNode{rows: d * d * d}, nil
	case trial.Select:
		child, err := e.compile(n.E)
		if err != nil {
			return nil, err
		}
		return &filterNode{
			child: child,
			cond:  n.Cond,
			cc:    n.Cond.Compile(e.store),
			rows:  child.est() * 0.5,
		}, nil
	case trial.Union:
		l, err := e.compile(n.L)
		if err != nil {
			return nil, err
		}
		r, err := e.compile(n.R)
		if err != nil {
			return nil, err
		}
		return &unionNode{l: l, r: r}, nil
	case trial.Diff:
		l, err := e.compile(n.L)
		if err != nil {
			return nil, err
		}
		r, err := e.compile(n.R)
		if err != nil {
			return nil, err
		}
		return &diffNode{l: l, r: r}, nil
	case trial.Join:
		l, err := e.compile(n.L)
		if err != nil {
			return nil, err
		}
		r, err := e.compile(n.R)
		if err != nil {
			return nil, err
		}
		return e.chooseJoin(l, r, n.Out, n.Cond), nil
	case trial.Star:
		child, err := e.compile(n.E)
		if err != nil {
			return nil, err
		}
		return &starNode{
			child:   child,
			out:     n.Out,
			cond:    n.Cond,
			cc:      n.Cond.Compile(e.store),
			left:    n.Left,
			objKeys: n.Cond.CrossObjEqualities(),
			rows:    child.est() * 8,
		}, nil
	}
	return nil, fmt.Errorf("trial: unknown expression type %T", x)
}

// chooseJoin ranks the physical join strategies by estimated cost and
// picks the cheapest. Costs are in "triples touched":
//
//	hash:        |L| + |R|            (build right, probe left)
//	index-right: |L| · max(1, |R|/|O|) (probe right's index per left triple)
//	index-left:  |R| · max(1, |L|/|O|)
//	loop:        |L| · |R|             (only option without cross equalities)
//
// |R|/|O| approximates the bucket size of a single-position index probe
// under a uniform distribution. Index strategies require the indexed side
// to be a base relation scan (a materialized, reusable access path) and at
// least one cross-side object equality to probe on.
func (e *Engine) chooseJoin(l, r planNode, out [3]trial.Pos, cond trial.Cond) *joinNode {
	objKeys := cond.CrossObjEqualities()
	valKeys := cond.CrossValEqualities()
	lRows, rRows := l.est(), r.est()
	nObj := float64(e.store.NumObjects())
	if nObj < 1 {
		nObj = 1
	}

	jn := &joinNode{
		l: l, r: r, out: out, cond: cond,
		cc:      cond.Compile(e.store),
		objKeys: objKeys,
	}
	if len(objKeys)+len(valKeys) == 0 {
		jn.strategy = joinLoop
		jn.rows = lRows * rRows
		return jn
	}
	jn.rows = lRows
	if rRows > jn.rows {
		jn.rows = rRows
	}

	jn.strategy = joinHash
	cost := lRows + rRows
	if _, ok := r.(*scanNode); ok && len(objKeys) > 0 {
		bucket := rRows / nObj
		if bucket < 1 {
			bucket = 1
		}
		if c := lRows * bucket; c < cost {
			jn.strategy, cost = joinIndexRight, c
		}
	}
	if _, ok := l.(*scanNode); ok && len(objKeys) > 0 {
		bucket := lRows / nObj
		if bucket < 1 {
			bucket = 1
		}
		if c := rRows * bucket; c < cost {
			jn.strategy, cost = joinIndexLeft, c
		}
	}
	return jn
}

func (n *scanNode) est() float64     { return float64(n.rel.Len()) }
func (n *universeNode) est() float64 { return n.rows }
func (n *filterNode) est() float64   { return n.rows }
func (n *unionNode) est() float64    { return n.l.est() + n.r.est() }
func (n *diffNode) est() float64     { return n.l.est() }
func (n *joinNode) est() float64     { return n.rows }
func (n *starNode) est() float64     { return n.rows }

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func (n *scanNode) explain(b *strings.Builder, depth int) {
	indent(b, depth)
	fmt.Fprintf(b, "scan %s (%d triples)\n", n.name, n.rel.Len())
}

func (n *universeNode) explain(b *strings.Builder, depth int) {
	indent(b, depth)
	fmt.Fprintf(b, "universe est=%.0f\n", n.rows)
}

func (n *filterNode) explain(b *strings.Builder, depth int) {
	indent(b, depth)
	fmt.Fprintf(b, "filter [%s] est=%.0f\n", n.cond.String(), n.rows)
	n.child.explain(b, depth+1)
}

func (n *unionNode) explain(b *strings.Builder, depth int) {
	indent(b, depth)
	fmt.Fprintf(b, "union est=%.0f\n", n.est())
	n.l.explain(b, depth+1)
	n.r.explain(b, depth+1)
}

func (n *diffNode) explain(b *strings.Builder, depth int) {
	indent(b, depth)
	fmt.Fprintf(b, "diff est=%.0f\n", n.est())
	n.l.explain(b, depth+1)
	n.r.explain(b, depth+1)
}

func (n *joinNode) explain(b *strings.Builder, depth int) {
	indent(b, depth)
	cond := n.cond.String()
	if cond != "" {
		cond = "; " + cond
	}
	fmt.Fprintf(b, "join[%s,%s,%s%s] %s est=%.0f\n",
		n.out[0], n.out[1], n.out[2], cond, n.strategy, n.rows)
	n.l.explain(b, depth+1)
	n.r.explain(b, depth+1)
}

func (n *starNode) explain(b *strings.Builder, depth int) {
	indent(b, depth)
	name := "rstar"
	if n.left {
		name = "lstar"
	}
	access := "delta-loop"
	if len(n.objKeys) > 0 {
		access = "delta-index"
	}
	cond := n.cond.String()
	if cond != "" {
		cond = "; " + cond
	}
	fmt.Fprintf(b, "%s[%s,%s,%s%s] semi-naive %s est=%.0f\n",
		name, n.out[0], n.out[1], n.out[2], cond, access, n.rows)
	n.child.explain(b, depth+1)
}
