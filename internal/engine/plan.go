package engine

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/trial"
	"repro/internal/triplestore"
)

// planNode is one physical operator. exec computes the operator's result
// relation; est is the planner's (rough) output-cardinality estimate used
// to rank join strategies; label names the operator kind for execution
// traces; explain renders the subtree.
type planNode interface {
	exec(ctx *execCtx) (*triplestore.Relation, error)
	est() float64
	label() string
	explain(b *strings.Builder, depth int)
}

// execCtx is the per-execution state of one plan run: the engine (worker
// pool, store, universe cache), the request context carrying the caller's
// deadline/cancellation, plus the memo slots for shared subexpressions. A
// fresh context per Exec keeps plan nodes stateless, which is what makes
// a Prepared safe for concurrent Exec calls.
//
// trace, when non-nil, is the span of the operator currently executing:
// ctx.run pushes a child span around each node's exec, so operators set
// attributes (cardinalities, star rounds, per-shard timings) on
// ctx.trace without knowing their place in the tree. Plan execution
// recurses on one goroutine, so the push/pop needs no lock; only span
// methods themselves are called from worker goroutines.
type execCtx struct {
	e      *Engine
	ctx    context.Context
	shared []*triplestore.Relation // indexed by sharedNode.slot; nil = not yet computed
	trace  *obs.Span
}

// collect is parallelCollect under this execution's context: a
// cancellation that tripped mid-operator surfaces as the context's error
// rather than as a silently partial relation.
func (ctx *execCtx) collect(ts []triplestore.Triple, f func(t triplestore.Triple, emit func(triplestore.Triple))) (*triplestore.Relation, error) {
	r := ctx.e.parallelCollect(ctx.ctx, ts, f)
	if err := ctx.ctx.Err(); err != nil {
		return nil, err
	}
	return r, nil
}

// run executes one node, wrapped in a trace span when tracing is on.
// Every operator records its output cardinality and the planner's
// estimate, so a trace shows where estimates diverged from reality. The
// operator boundary is also a cancellation point: once the request
// context is done no further operator starts, so a disconnected or
// timed-out client stops the whole plan, not just the operator that
// noticed first.
func (ctx *execCtx) run(n planNode) (*triplestore.Relation, error) {
	if err := ctx.ctx.Err(); err != nil {
		return nil, err
	}
	if ctx.trace == nil {
		return n.exec(ctx)
	}
	parent := ctx.trace
	sp := parent.StartChild(n.label())
	ctx.trace = sp
	r, err := n.exec(ctx)
	ctx.trace = parent
	if err != nil {
		sp.SetAttr("error", err.Error())
	} else if r != nil {
		sp.SetAttr("out", r.Len())
		sp.SetAttr("est", int(n.est()))
	}
	sp.End()
	return r, err
}

// compiledPlan is the product of planning: the operator tree, the number
// of memo slots its shared nodes need, and the logical optimizer's
// rewrite trace (nil when the engine optimizes nothing).
type compiledPlan struct {
	root    planNode
	nShared int
	trace   *optimizer.Trace
}

// exec runs the plan once with a fresh execution context.
func (p *compiledPlan) exec(e *Engine) (*triplestore.Relation, error) {
	return p.execContext(e, context.Background(), nil)
}

// execTrace runs the plan once, attaching one span per operator under
// sp when it is non-nil. The untraced path costs one nil check per
// operator.
func (p *compiledPlan) execTrace(e *Engine, sp *obs.Span) (*triplestore.Relation, error) {
	return p.execContext(e, context.Background(), sp)
}

// execContext runs the plan once under the caller's context: operator
// boundaries, worker chunk loops, semi-naive star rounds and per-shard
// tasks all poll it, so cancelling reqCtx actually frees the engine's
// workers mid-plan. A nil reqCtx runs uncancellable.
func (p *compiledPlan) execContext(e *Engine, reqCtx context.Context, sp *obs.Span) (*triplestore.Relation, error) {
	if reqCtx == nil {
		reqCtx = context.Background()
	}
	ctx := &execCtx{e: e, ctx: reqCtx, trace: sp}
	if p.nShared > 0 {
		ctx.shared = make([]*triplestore.Relation, p.nShared)
	}
	return ctx.run(p.root)
}

// explainString renders the rewrite trace followed by the physical plan.
func (p *compiledPlan) explainString() string {
	var b strings.Builder
	b.WriteString(p.trace.String())
	b.WriteByte('\n')
	p.root.explain(&b, 0)
	return b.String()
}

// joinStrategy selects the physical join implementation.
type joinStrategy int

const (
	// joinHash builds a hash table over the right operand keyed on the
	// cross-side equality atoms and probes it with the left operand in
	// parallel — the engine's form of the Proposition 4 strategy.
	joinHash joinStrategy = iota
	// joinIndexRight probes the right base relation's permutation index
	// with each left triple (index nested-loop join).
	joinIndexRight
	// joinIndexLeft probes the left base relation's permutation index
	// with each right triple.
	joinIndexLeft
	// joinLoop is the parallel nested-loop fallback for conditions with no
	// cross-side equality atoms (including the pure cartesian join).
	joinLoop
	// joinMerge walks two permutation indexes in key order, pairing
	// equal-key groups — a sort-merge join whose sort is free because
	// base relations already materialize sorted access paths. Eligible
	// only when both sides are base-relation scans with a cross-side
	// object equality.
	joinMerge
)

func (s joinStrategy) String() string {
	switch s {
	case joinHash:
		return "hash"
	case joinIndexRight:
		return "index-right"
	case joinIndexLeft:
		return "index-left"
	case joinMerge:
		return "merge"
	default:
		return "loop"
	}
}

type scanNode struct {
	name string
	rel  *triplestore.Relation
}

type universeNode struct {
	rows float64
}

type filterNode struct {
	child planNode
	cond  trial.Cond
	cc    trial.CompiledCond
	rows  float64
}

type unionNode struct {
	l, r planNode
}

type diffNode struct {
	l, r planNode
}

// projectNode is the linear form of an identity self-join (the
// rearrange device of internal/translate, recognized by
// optimizer.ProjectionShape): each input triple maps to one output
// triple built from its own components — no join at all.
type projectNode struct {
	child planNode
	out   [3]int // component indexes into the input triple
	rows  float64
}

// sharedNode wraps a subplan that occurs more than once in the plan
// (common subexpression). The first exec in a run computes the child and
// parks the result in the context's memo slot; later execs reuse it.
type sharedNode struct {
	child planNode
	slot  int
}

type joinNode struct {
	l, r     planNode
	out      [3]trial.Pos
	cond     trial.Cond
	cc       trial.CompiledCond
	strategy joinStrategy
	objKeys  [][2]trial.Pos // cross-side object equalities, for index probes

	// Side-only prefilters: atoms of cond mentioning one side only,
	// re-indexed to plain selection conditions. They shrink the probe
	// (and for hash/loop the build) input with a per-triple check before
	// any per-pair work; the full condition is still verified per pair.
	lCond, rCond       trial.Cond
	lCC, rCC           trial.CompiledCond
	hasLCond, hasRCond bool

	// Sharded execution (engines built with NewSharded): the store's
	// shard partitions of the indexed side, resolved at compile time.
	// When the probed position is the shard key (subject) the join runs
	// partition-probe; otherwise it broadcast-probes every shard. The
	// mode is decided by shardedIndexJoin from the probed position;
	// indexedProbePos derives it for explain.
	shardRels []*triplestore.Relation

	rows float64
}

// indexedProbePos returns the position of the indexed side's triples the
// join probes on (the component the access path sorts first), or -1 for
// non-index strategies.
func (n *joinNode) indexedProbePos() int {
	switch n.strategy {
	case joinIndexRight:
		return n.objKeys[0][1].Index()
	case joinIndexLeft:
		return n.objKeys[0][0].Index()
	}
	return -1
}

type starNode struct {
	child   planNode
	out     [3]trial.Pos
	cond    trial.Cond
	cc      trial.CompiledCond
	left    bool
	objKeys [][2]trial.Pos

	// reach: when the star has one of the reachTA= shapes of §5 the node
	// computes the closure by Proposition 5's BFS instead of the generic
	// delta fixpoint, exactly as the reference Evaluator does.
	reach trial.ReachShape

	// Seed filter: a selection over the star's invariant positions,
	// hoisted out of the fixpoint. Only base triples satisfying it start
	// chains, so semi-naive iteration runs on a smaller frontier; the
	// result equals σ_seed(star(base)).
	seedCond trial.Cond
	seedCC   trial.CompiledCond
	hasSeed  bool

	// Base prefilter: side-only atoms of the star's join condition,
	// applied once to the loop-invariant join side before the access
	// path is built (seeds are not filtered by it).
	baseCond    trial.Cond
	baseCC      trial.CompiledCond
	hasBaseCond bool

	// shardedN > 0 marks a partition-parallel semi-naive star (sharded
	// engines with a probe key only): the per-round delta join runs one
	// task per shard over shardedN runtime partitions of the base.
	shardedN int

	rows float64
}

// compiler lowers one optimized expression to physical operators. It
// holds the subtree-occurrence counts that drive common-subexpression
// sharing: structurally identical composite subtrees (by their canonical
// String rendering) compile to one sharedNode, so each executes once per
// run no matter how often the expression mentions it. The optimizer's
// canonical forms (union ordering, projection normalization) are what
// make syntactically different writings of the same subexpression
// collide here.
type compiler struct {
	e       *Engine
	occ     map[string]int
	sharedN map[string]*sharedNode
	nShared int
}

func newCompiler(e *Engine, x trial.Expr) *compiler {
	c := &compiler{e: e, occ: make(map[string]int), sharedN: make(map[string]*sharedNode)}
	c.count(x)
	return c
}

// count tallies composite subtrees; leaves (scans, U) are free to repeat.
func (c *compiler) count(x trial.Expr) {
	switch n := x.(type) {
	case trial.Select:
		c.occ[x.String()]++
		c.count(n.E)
	case trial.Union:
		c.occ[x.String()]++
		c.count(n.L)
		c.count(n.R)
	case trial.Diff:
		c.occ[x.String()]++
		c.count(n.L)
		c.count(n.R)
	case trial.Join:
		c.occ[x.String()]++
		if _, ok := optimizer.ProjectionShape(n); ok {
			c.count(n.L) // both sides are the same expression; count once
			return
		}
		c.count(n.L)
		c.count(n.R)
	case trial.Star:
		c.occ[x.String()]++
		c.count(n.E)
	}
}

// compile lowers x, wrapping composite subtrees that occur more than
// once in a sharedNode keyed by their rendering.
func (c *compiler) compile(x trial.Expr) (planNode, error) {
	switch x.(type) {
	case trial.Rel, trial.Universe:
		return c.compileNode(x)
	}
	key := x.String()
	if c.occ[key] < 2 {
		return c.compileNode(x)
	}
	if sn, ok := c.sharedN[key]; ok {
		return sn, nil
	}
	n, err := c.compileNode(x)
	if err != nil {
		return nil, err
	}
	sn := &sharedNode{child: n, slot: c.nShared}
	c.nShared++
	c.sharedN[key] = sn
	return sn, nil
}

// compileNode lowers one operator, estimating cardinalities as it goes.
func (c *compiler) compileNode(x trial.Expr) (planNode, error) {
	e := c.e
	switch n := x.(type) {
	case trial.Rel:
		rel := e.store.Relation(n.Name)
		if rel == nil {
			return nil, fmt.Errorf("trial: unknown relation %q", n.Name)
		}
		return &scanNode{name: n.Name, rel: rel}, nil
	case trial.Universe:
		// |O| bounds the active domain; good enough for an estimate and
		// avoids a full store scan at plan time.
		d := float64(e.store.NumObjects())
		return &universeNode{rows: d * d * d}, nil
	case trial.Select:
		// Selection over a star, constraining only positions the star's
		// iteration never changes: hoist it out of the fixpoint as a seed
		// filter so the recursion starts from (and therefore derives) less.
		if st, ok := n.E.(trial.Star); ok && condOnInvariantPositions(st, n.Cond) {
			sn, err := c.compileStar(st)
			if err != nil {
				return nil, err
			}
			sn.seedCond = n.Cond
			sn.seedCC = n.Cond.Compile(e.store)
			sn.hasSeed = true
			sn.rows *= optimizer.Selectivity(n.Cond, triplestore.RelStats{})
			return sn, nil
		}
		child, err := c.compile(n.E)
		if err != nil {
			return nil, err
		}
		return &filterNode{
			child: child,
			cond:  n.Cond,
			cc:    n.Cond.Compile(e.store),
			rows:  child.est() * optimizer.Selectivity(n.Cond, scanStats(child)),
		}, nil
	case trial.Union:
		l, err := c.compile(n.L)
		if err != nil {
			return nil, err
		}
		r, err := c.compile(n.R)
		if err != nil {
			return nil, err
		}
		return &unionNode{l: l, r: r}, nil
	case trial.Diff:
		l, err := c.compile(n.L)
		if err != nil {
			return nil, err
		}
		r, err := c.compile(n.R)
		if err != nil {
			return nil, err
		}
		return &diffNode{l: l, r: r}, nil
	case trial.Join:
		if out, ok := optimizer.ProjectionShape(n); ok {
			child, err := c.compile(n.L)
			if err != nil {
				return nil, err
			}
			return &projectNode{child: child, out: out, rows: child.est()}, nil
		}
		// Multiway cascades over base relations may compile to one
		// worst-case-optimal leapfrog triejoin instead of a binary tree.
		if lf := c.tryLeapfrog(n); lf != nil {
			return lf, nil
		}
		l, err := c.compile(n.L)
		if err != nil {
			return nil, err
		}
		r, err := c.compile(n.R)
		if err != nil {
			return nil, err
		}
		return c.chooseJoin(l, r, n.Out, n.Cond), nil
	case trial.Star:
		return c.compileStar(n)
	}
	return nil, fmt.Errorf("trial: unknown expression type %T", x)
}

// compileStar lowers a Kleene closure, detecting the BFS-eligible reach
// shapes and splitting side-only condition atoms into a base prefilter.
func (c *compiler) compileStar(n trial.Star) (*starNode, error) {
	child, err := c.compile(n.E)
	if err != nil {
		return nil, err
	}
	sn := &starNode{
		child:   child,
		out:     n.Out,
		cond:    n.Cond,
		cc:      n.Cond.Compile(c.e.store),
		left:    n.Left,
		objKeys: n.Cond.CrossObjEqualities(),
		reach:   trial.StarReachShape(n),
		rows:    child.est() * 8,
	}
	if sn.reach == trial.ReachNone {
		// The delta iteration joins the frontier against the loop-invariant
		// base: for the right closure the base sits on the primed side, for
		// the left closure on the unprimed side.
		if bc, ok := sideOnlyCond(n.Cond, !n.Left); ok {
			sn.baseCond = bc
			sn.baseCC = bc.Compile(c.e.store)
			sn.hasBaseCond = true
		}
		if ss := c.e.sharded; ss != nil && len(sn.objKeys) > 0 {
			sn.shardedN = ss.NumShards()
		}
	}
	return sn, nil
}

// scanStats returns the statistics of a base-relation scan, or the zero
// stats for derived inputs.
func scanStats(n planNode) triplestore.RelStats {
	if sc, ok := n.(*scanNode); ok {
		return sc.rel.Stats()
	}
	return triplestore.RelStats{}
}

// condOnInvariantPositions reports whether every position cond mentions
// is invariant under the star's iteration — i.e. every derived triple
// inherits the position's component from the base triple that seeded its
// chain. For the reach shapes (evaluated by BFS over right-oriented
// derivations) positions 1 and 2 are invariant; for a generic right
// closure position i is invariant when Out[i] = i (fed from the
// accumulated side), and for a left closure when Out[i] = i′.
func condOnInvariantPositions(st trial.Star, c trial.Cond) bool {
	var mask [3]bool
	if trial.StarReachShape(st) != trial.ReachNone {
		mask = [3]bool{true, true, false}
	} else {
		for i := 0; i < 3; i++ {
			if !st.Left && st.Out[i] == trial.Pos(i) {
				mask[i] = true
			}
			if st.Left && st.Out[i] == trial.Pos(i+3) {
				mask[i] = true
			}
		}
	}
	ok := func(p trial.Pos) bool { return p.Left() && mask[p.Index()] }
	for _, a := range c.Obj {
		if (!a.L.IsConst && !ok(a.L.Pos)) || (!a.R.IsConst && !ok(a.R.Pos)) {
			return false
		}
	}
	for _, a := range c.Val {
		if (!a.L.IsLit && !ok(a.L.Pos)) || (!a.R.IsLit && !ok(a.R.Pos)) {
			return false
		}
	}
	return true
}

// sideOnlyCond extracts the atoms of a join condition that mention only
// the given side (right = primed positions), re-indexed to unprimed
// positions so they evaluate as a selection over a single triple.
// Constants and literals may appear on either side of such atoms.
func sideOnlyCond(c trial.Cond, right bool) (trial.Cond, bool) {
	onSide := func(p trial.Pos) bool { return p.Left() != right }
	norm := func(p trial.Pos) trial.Pos { return trial.Pos(p.Index()) }
	var out trial.Cond
	for _, a := range c.Obj {
		if (!a.L.IsConst && !onSide(a.L.Pos)) || (!a.R.IsConst && !onSide(a.R.Pos)) {
			continue
		}
		l, r := a.L, a.R
		if !l.IsConst {
			l = trial.P(norm(l.Pos))
		}
		if !r.IsConst {
			r = trial.P(norm(r.Pos))
		}
		out.Obj = append(out.Obj, trial.ObjAtom{L: l, R: r, Neq: a.Neq})
	}
	for _, a := range c.Val {
		if (!a.L.IsLit && !onSide(a.L.Pos)) || (!a.R.IsLit && !onSide(a.R.Pos)) {
			continue
		}
		l, r := a.L, a.R
		if !l.IsLit {
			l = trial.RhoP(norm(l.Pos))
		}
		if !r.IsLit {
			r = trial.RhoP(norm(r.Pos))
		}
		out.Val = append(out.Val, trial.ValAtom{L: l, R: r, Neq: a.Neq, Component: a.Component})
	}
	return out, !out.Empty()
}

// chooseJoin ranks the physical join strategies by estimated cost and
// picks the cheapest. Costs are in "triples touched":
//
//	hash:        |L| + |R|             (build right, probe left)
//	index-right: |L| · fanout_R(probe) (probe right's index per left triple)
//	index-left:  |R| · fanout_L(probe)
//	merge:       ½ · (|L| + |R|)       (walk both permutation indexes in order)
//	loop:        |L| · |R|             (only option without cross equalities)
//
// fanout is the indexed relation's statistics-based bucket size for the
// probed position (RelStats.Fanout): |R| over the position's distinct
// count, replacing the global |O| guess of the pre-statistics planner.
// Index strategies require the indexed side to be a base relation scan
// (a materialized, reusable access path) and at least one cross-side
// object equality to probe on; among the candidate equalities the
// planner probes the one with the smallest fanout.
func (c *compiler) chooseJoin(l, r planNode, out [3]trial.Pos, cond trial.Cond) *joinNode {
	objKeys := cond.CrossObjEqualities()
	valKeys := cond.CrossValEqualities()
	lRows, rRows := l.est(), r.est()

	jn := &joinNode{
		l: l, r: r, out: out, cond: cond,
		cc:      cond.Compile(c.e.store),
		objKeys: objKeys,
	}
	if lc, ok := sideOnlyCond(cond, false); ok {
		jn.lCond, jn.lCC, jn.hasLCond = lc, lc.Compile(c.e.store), true
	}
	if rc, ok := sideOnlyCond(cond, true); ok {
		jn.rCond, jn.rCC, jn.hasRCond = rc, rc.Compile(c.e.store), true
	}
	if len(objKeys)+len(valKeys) == 0 {
		jn.strategy = joinLoop
		jn.rows = lRows * rRows
		return jn
	}
	jn.rows = lRows
	if rRows > jn.rows {
		jn.rows = rRows
	}

	jn.strategy = joinHash
	cost := lRows + rRows
	bestKey := -1
	if sc, ok := r.(*scanNode); ok && len(objKeys) > 0 {
		st := sc.rel.Stats()
		k, fan := bestProbeKey(objKeys, st, false)
		if cst := lRows * fan; cst < cost {
			jn.strategy, cost, bestKey = joinIndexRight, cst, k
		}
	}
	if sc, ok := l.(*scanNode); ok && len(objKeys) > 0 {
		st := sc.rel.Stats()
		k, fan := bestProbeKey(objKeys, st, true)
		if cst := rRows * fan; cst < cost {
			jn.strategy, cost, bestKey = joinIndexLeft, cst, k
		}
	}
	if bestKey > 0 {
		// exec probes objKeys[0]; float the chosen key to the front.
		keys := append([][2]trial.Pos{}, objKeys...)
		keys[0], keys[bestKey] = keys[bestKey], keys[0]
		jn.objKeys = keys
	}
	// Sort-merge: when both sides are base-relation scans their
	// permutation indexes are already materialized in key order, so the
	// join is one linear walk — no hash table, no per-tuple key strings.
	// Chosen only when strictly cheaper, so an index probe at fanout 1
	// (the chain-join sweet spot) keeps its plan.
	if c.e.joinPolicy != JoinNoWCO && len(objKeys) > 0 {
		_, lScan := l.(*scanNode)
		_, rScan := r.(*scanNode)
		if lScan && rScan {
			if cst := optimizer.MergeCostFactor * (lRows + rRows); cst < cost || c.e.joinPolicy == JoinForceMerge {
				jn.strategy = joinMerge
			}
		}
	}
	// Sharded engines resolve the indexed side's shard partitions now, so
	// exec can run partition-probe (probe key = shard key) or broadcast-
	// probe per shard instead of probing one union index.
	if ss := c.e.sharded; ss != nil {
		switch jn.strategy {
		case joinIndexRight:
			jn.shardRels = ss.ShardRelations(r.(*scanNode).name)
		case joinIndexLeft:
			jn.shardRels = ss.ShardRelations(l.(*scanNode).name)
		}
	}
	return jn
}

// bestProbeKey returns the cross equality whose indexed-side position
// has the smallest statistics-based fanout in st (the indexed relation's
// stats). left selects which side of each key pair is indexed.
func bestProbeKey(objKeys [][2]trial.Pos, st triplestore.RelStats, left bool) (int, float64) {
	best, bestFan := 0, 0.0
	for i, k := range objKeys {
		p := k[1]
		if left {
			p = k[0]
		}
		fan := st.Fanout(p.Index())
		if fan < 1 {
			fan = 1
		}
		if i == 0 || fan < bestFan {
			best, bestFan = i, fan
		}
	}
	return best, bestFan
}

func (n *scanNode) est() float64     { return float64(n.rel.Len()) }
func (n *universeNode) est() float64 { return n.rows }
func (n *filterNode) est() float64   { return n.rows }
func (n *unionNode) est() float64    { return n.l.est() + n.r.est() }
func (n *diffNode) est() float64     { return n.l.est() }
func (n *projectNode) est() float64  { return n.rows }
func (n *sharedNode) est() float64   { return n.child.est() }
func (n *joinNode) est() float64     { return n.rows }
func (n *starNode) est() float64     { return n.rows }

// label names the operator kind for trace spans. The name is the stable
// aggregation key of the per-operator breakdowns (obs.Span.SelfTimes),
// so it carries the physical variant (join strategy, star access path)
// but no per-query detail.
func (n *scanNode) label() string     { return "scan" }
func (n *universeNode) label() string { return "universe" }
func (n *filterNode) label() string   { return "filter" }
func (n *unionNode) label() string    { return "union" }
func (n *diffNode) label() string     { return "diff" }
func (n *projectNode) label() string  { return "project" }
func (n *sharedNode) label() string   { return "shared" }
func (n *joinNode) label() string     { return "join:" + n.strategy.String() }
func (n *starNode) label() string     { return "star:" + n.access() }

// access names the star's evaluation mode, shared by explain and trace
// labels.
func (n *starNode) access() string {
	switch {
	case n.reach == trial.ReachAny:
		return "bfs-reach"
	case n.reach == trial.ReachSameLabel:
		return "bfs-reach-same-label"
	case n.shardedN > 0:
		return fmt.Sprintf("semi-naive delta-index sharded(%d)", n.shardedN)
	case len(n.objKeys) > 0:
		return "semi-naive delta-index"
	default:
		return "semi-naive delta-loop"
	}
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func (n *scanNode) explain(b *strings.Builder, depth int) {
	indent(b, depth)
	fmt.Fprintf(b, "scan %s (%d triples)\n", n.name, n.rel.Len())
}

func (n *universeNode) explain(b *strings.Builder, depth int) {
	indent(b, depth)
	fmt.Fprintf(b, "universe est=%.0f\n", n.rows)
}

func (n *filterNode) explain(b *strings.Builder, depth int) {
	indent(b, depth)
	fmt.Fprintf(b, "filter [%s] est=%.0f\n", n.cond.String(), n.rows)
	n.child.explain(b, depth+1)
}

func (n *unionNode) explain(b *strings.Builder, depth int) {
	indent(b, depth)
	fmt.Fprintf(b, "union est=%.0f\n", n.est())
	n.l.explain(b, depth+1)
	n.r.explain(b, depth+1)
}

func (n *diffNode) explain(b *strings.Builder, depth int) {
	indent(b, depth)
	fmt.Fprintf(b, "diff est=%.0f\n", n.est())
	n.l.explain(b, depth+1)
	n.r.explain(b, depth+1)
}

func (n *projectNode) explain(b *strings.Builder, depth int) {
	indent(b, depth)
	fmt.Fprintf(b, "project[%d,%d,%d] est=%.0f\n", n.out[0]+1, n.out[1]+1, n.out[2]+1, n.rows)
	n.child.explain(b, depth+1)
}

func (n *sharedNode) explain(b *strings.Builder, depth int) {
	indent(b, depth)
	fmt.Fprintf(b, "shared#%d est=%.0f (computed once per run)\n", n.slot, n.est())
	n.child.explain(b, depth+1)
}

func (n *joinNode) explain(b *strings.Builder, depth int) {
	indent(b, depth)
	cond := n.cond.String()
	if cond != "" {
		cond = "; " + cond
	}
	pre := ""
	if n.hasLCond {
		pre += fmt.Sprintf(" prefilter-left=[%s]", n.lCond.String())
	}
	if n.hasRCond {
		pre += fmt.Sprintf(" prefilter-right=[%s]", n.rCond.String())
	}
	if n.shardRels != nil {
		mode := "broadcast-probe"
		if n.indexedProbePos() == 0 {
			mode = "partition-probe"
		}
		pre += fmt.Sprintf(" sharded(%d,%s)", len(n.shardRels), mode)
	}
	fmt.Fprintf(b, "join[%s,%s,%s%s] %s%s est=%.0f\n",
		n.out[0], n.out[1], n.out[2], cond, n.strategy, pre, n.rows)
	n.l.explain(b, depth+1)
	n.r.explain(b, depth+1)
}

func (n *starNode) explain(b *strings.Builder, depth int) {
	indent(b, depth)
	name := "rstar"
	if n.left {
		name = "lstar"
	}
	access := n.access()
	cond := n.cond.String()
	if cond != "" {
		cond = "; " + cond
	}
	extra := ""
	if n.hasSeed {
		extra += fmt.Sprintf(" seed-filter=[%s]", n.seedCond.String())
	}
	if n.hasBaseCond {
		extra += fmt.Sprintf(" base-prefilter=[%s]", n.baseCond.String())
	}
	fmt.Fprintf(b, "%s[%s,%s,%s%s] %s%s est=%.0f\n",
		name, n.out[0], n.out[1], n.out[2], cond, access, extra, n.rows)
	n.child.explain(b, depth+1)
}
