package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/genstore"
	"repro/internal/trial"
	"repro/internal/triplestore"
)

// diffStores returns the named stores the differential tests run over.
func diffStores() map[string]*triplestore.Store {
	rng := rand.New(rand.NewSource(42))
	return map[string]*triplestore.Store{
		"transport":  fixtures.Transport(),
		"d1":         fixtures.D1(),
		"d2":         fixtures.D2(),
		"example3":   fixtures.Example3(),
		"social":     fixtures.SocialNetwork(),
		"complete4":  fixtures.CompleteStore(4),
		"chain":      genstore.Chain(24, 2),
		"cycle":      genstore.Cycle(12),
		"grid":       genstore.Grid(5, 5),
		"random":     genstore.Random(rng, 30, 120, 4),
		"transportG": genstore.Transport(rng, 20, 4, 3),
	}
}

// checkAgainstEvaluator asserts that the engine and both Evaluator modes
// produce the identical relation for x over s.
func checkAgainstEvaluator(t *testing.T, s *triplestore.Store, x trial.Expr, engines []*Engine) {
	t.Helper()
	evAuto := trial.NewEvaluator(s)
	want, wantErr := evAuto.Eval(x)

	evNaive := trial.NewEvaluator(s)
	evNaive.Mode = trial.ModeNaive
	naive, naiveErr := evNaive.Eval(x)
	if (wantErr == nil) != (naiveErr == nil) {
		t.Fatalf("evaluator modes disagree on error for %s: auto=%v naive=%v", x, wantErr, naiveErr)
	}
	if wantErr == nil && !want.Equal(naive) {
		t.Fatalf("evaluator modes disagree on %s: auto=%d naive=%d triples", x, want.Len(), naive.Len())
	}

	for i, e := range engines {
		got, gotErr := e.Eval(x)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("engine[%d] error mismatch for %s: evaluator=%v engine=%v", i, x, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if !got.Equal(want) {
			t.Errorf("engine[%d] result mismatch for %s: engine=%d evaluator=%d triples\nplan:\n%s",
				i, x, got.Len(), want.Len(), mustExplain(e, x))
			reportDiff(t, s, got, want)
			return
		}
	}
}

func mustExplain(e *Engine, x trial.Expr) string {
	p, err := e.Explain(x)
	if err != nil {
		return "explain error: " + err.Error()
	}
	return p
}

func reportDiff(t *testing.T, s *triplestore.Store, got, want *triplestore.Relation) {
	t.Helper()
	n := 0
	want.ForEach(func(tr triplestore.Triple) {
		if !got.Has(tr) && n < 5 {
			t.Logf("missing %s", s.FormatTriple(tr))
			n++
		}
	})
	got.ForEach(func(tr triplestore.Triple) {
		if !want.Has(tr) && n < 10 {
			t.Logf("extra %s", s.FormatTriple(tr))
			n++
		}
	})
}

// engineVariants returns engines with the configurations worth covering:
// optimized parallel (production default), sequential, and unoptimized
// (physical layer compiled from the raw AST).
func engineVariants(s *triplestore.Store) []*Engine {
	return []*Engine{
		New(s),
		New(s, WithWorkers(1)),
		New(s, WithoutOptimize()),
	}
}

// TestDifferentialNamedQueries runs the paper's named queries over every
// fixture store. Universe-based queries (Diagonal is U ✶ U with no
// cross-side key, i.e. |O|⁶ pairs under nested loops) only run on stores
// with a small active domain.
func TestDifferentialNamedQueries(t *testing.T) {
	queries := []trial.Expr{
		trial.Example2(fixtures.RelE),
		trial.Example2Extended(fixtures.RelE),
		trial.ReachRight(fixtures.RelE),
		trial.ReachUp(fixtures.RelE),
		trial.ReachUpRight(fixtures.RelE),
		trial.SameLabelReach(fixtures.RelE),
		trial.QueryQ(fixtures.RelE),
	}
	for name, s := range diffStores() {
		t.Run(name, func(t *testing.T) {
			engines := engineVariants(s)
			for _, q := range queries {
				checkAgainstEvaluator(t, s, q, engines)
			}
			if len(s.ActiveDomain()) <= 12 {
				checkAgainstEvaluator(t, s, trial.Diagonal(), engines)
			}
		})
	}
}

// TestDifferentialRandomExprs cross-checks engine and evaluator on random
// TriAL expressions (equality-only and general, with and without value
// conditions).
func TestDifferentialRandomExprs(t *testing.T) {
	// Stores stay small: the differential oracle includes ModeNaive, whose
	// nested-loop joins are quadratic in intermediate results, and random
	// joins can produce O(|T|²) intermediates.
	configs := []genstore.ExprOptions{
		{Relations: []string{genstore.RelE}, MaxDepth: 3, EqualityOnly: true},
		{Relations: []string{genstore.RelE}, MaxDepth: 3},
		{Relations: []string{genstore.RelE}, MaxDepth: 3, AllowValueConds: true},
		{Relations: []string{genstore.RelE}, MaxDepth: 2, AllowUniverse: true},
	}
	stores := map[string]*triplestore.Store{
		"random": genstore.Random(rand.New(rand.NewSource(3)), 10, 30, 3),
		"chain":  genstore.Chain(8, 2),
		"social": genstore.Social(rand.New(rand.NewSource(4)), 8, 16, 3, 3),
	}
	for name, s := range stores {
		t.Run(name, func(t *testing.T) {
			engines := engineVariants(s)
			rng := rand.New(rand.NewSource(99))
			domain := len(s.ActiveDomain())
			for ci, cfg := range configs {
				// U is cubic in the domain and no-key joins square it
				// again; keep universe expressions to small domains.
				if cfg.AllowUniverse && domain > 12 {
					continue
				}
				for i := 0; i < 60; i++ {
					x := genstore.RandomExpr(rng, cfg)
					t.Run(fmt.Sprintf("cfg%d_%d", ci, i), func(t *testing.T) {
						checkAgainstEvaluator(t, s, x, engines)
					})
				}
			}
		})
	}
}

// TestDifferentialRandomStarExprs stresses the semi-naive delta star:
// star-enabled random expressions over recursion-friendly topologies.
func TestDifferentialRandomStarExprs(t *testing.T) {
	stores := map[string]*triplestore.Store{
		"chain": genstore.Chain(7, 1),
		"cycle": genstore.Cycle(6),
		"grid":  genstore.Grid(3, 3),
	}
	cfg := genstore.ExprOptions{
		Relations: []string{genstore.RelE},
		MaxDepth:  3,
		AllowStar: true,
	}
	for name, s := range stores {
		t.Run(name, func(t *testing.T) {
			engines := engineVariants(s)
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 80; i++ {
				x := genstore.RandomExpr(rng, cfg)
				t.Run(fmt.Sprintf("%d", i), func(t *testing.T) {
					checkAgainstEvaluator(t, s, x, engines)
				})
			}
		})
	}
}

// TestDifferentialStarShapes covers every explicit star orientation and
// key shape: right/left closure, with and without a usable cross-side
// equality, and the same-label variant.
func TestDifferentialStarShapes(t *testing.T) {
	cond31 := trial.Cond{Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L3), trial.P(trial.R1))}}
	cond22 := cond31.And(trial.Eq(trial.P(trial.L2), trial.P(trial.R2)))
	noKey := trial.Cond{Obj: []trial.ObjAtom{trial.Neq(trial.P(trial.L1), trial.P(trial.R3))}}
	stars := []trial.Expr{
		trial.MustStar(trial.R(genstore.RelE), [3]trial.Pos{trial.L1, trial.L2, trial.R3}, cond31, false),
		trial.MustStar(trial.R(genstore.RelE), [3]trial.Pos{trial.L1, trial.L2, trial.R3}, cond31, true),
		trial.MustStar(trial.R(genstore.RelE), [3]trial.Pos{trial.L1, trial.L2, trial.R3}, cond22, false),
		trial.MustStar(trial.R(genstore.RelE), [3]trial.Pos{trial.L1, trial.R2, trial.R3}, cond31, false),
		trial.MustStar(trial.R(genstore.RelE), [3]trial.Pos{trial.L1, trial.L2, trial.R3}, noKey, false),
		trial.MustStar(trial.R(genstore.RelE), [3]trial.Pos{trial.L1, trial.L2, trial.R3}, noKey, true),
	}
	stores := map[string]*triplestore.Store{
		"chain": genstore.Chain(16, 2),
		"cycle": genstore.Cycle(10),
		"grid":  genstore.Grid(4, 5),
	}
	for name, s := range stores {
		t.Run(name, func(t *testing.T) {
			engines := engineVariants(s)
			for _, q := range stars {
				checkAgainstEvaluator(t, s, q, engines)
			}
		})
	}
}

// TestDifferentialValueComponentJoin covers joins whose only cross-side
// atom is a component-restricted value equality (the ∼i relations of §4):
// the hash join must bucket on the component exactly as the Evaluator
// does, not fall back to a single bucket.
func TestDifferentialValueComponentJoin(t *testing.T) {
	s := genstore.Social(rand.New(rand.NewSource(5)), 8, 20, 2, 3)
	engines := engineVariants(s)
	for _, comp := range []int{-1, 3, 4} {
		cond := trial.Cond{Val: []trial.ValAtom{{
			L: trial.RhoP(trial.L2), R: trial.RhoP(trial.R2), Component: comp,
		}}}
		q := trial.MustJoin(trial.R(genstore.RelE), [3]trial.Pos{trial.L1, trial.L3, trial.R1}, cond,
			trial.R(genstore.RelE))
		checkAgainstEvaluator(t, s, q, engines)
	}
}

// TestDifferentialParallelLargeStore forces multi-worker engines on
// stores large enough to cross the parallel threshold of the worker pool
// (probe sides ≥ 2048 triples), so the chunked parallel path — never
// reached by the small stores above, nor by the default worker count on a
// single-CPU machine — is differentially checked too. The oracle is
// ModeAuto only; naive joins would be quadratic at this size.
func TestDifferentialParallelLargeStore(t *testing.T) {
	type workload struct {
		store   *triplestore.Store
		queries []trial.Expr
	}
	sel := trial.MustSelect(trial.R(genstore.RelE),
		trial.Cond{Obj: []trial.ObjAtom{trial.Neq(trial.P(trial.L1), trial.P(trial.L3))}})
	workloads := map[string]workload{
		// Dense random store: joins and filters with 4000-triple probe sides.
		"random": {
			store:   genstore.Random(rand.New(rand.NewSource(11)), 300, 4000, 0),
			queries: []trial.Expr{trial.Example2(genstore.RelE), sel},
		},
		// Long chain: the delta star's result (and late-round probe sides)
		// crosses the threshold while the output stays bounded.
		"chain": {
			store:   genstore.Chain(1200, 3),
			queries: []trial.Expr{trial.ReachRight(genstore.RelE)},
		},
	}
	for name, w := range workloads {
		t.Run(name, func(t *testing.T) {
			ev := trial.NewEvaluator(w.store)
			engines := []*Engine{New(w.store, WithWorkers(4)), New(w.store, WithWorkers(16))}
			for _, q := range w.queries {
				want, err := ev.Eval(q)
				if err != nil {
					t.Fatal(err)
				}
				for i, e := range engines {
					got, err := e.Eval(q)
					if err != nil {
						t.Fatal(err)
					}
					if !got.Equal(want) {
						t.Errorf("parallel engine[%d] mismatch for %s: engine=%d evaluator=%d",
							i, q, got.Len(), want.Len())
					}
				}
			}
		})
	}
}

// TestErrorParity asserts the engine rejects what the evaluator rejects.
func TestErrorParity(t *testing.T) {
	s := fixtures.Transport()
	e := New(s)
	ev := trial.NewEvaluator(s)

	for _, x := range []trial.Expr{
		trial.R("NoSuchRelation"),
		trial.Union{L: trial.R(fixtures.RelE), R: trial.R("missing")},
		trial.Select{E: trial.R(fixtures.RelE), Cond: trial.Cond{
			Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L1), trial.P(trial.R2))}}},
	} {
		_, evErr := ev.Eval(x)
		_, engErr := e.Eval(x)
		if (evErr == nil) != (engErr == nil) {
			t.Errorf("error parity broken for %s: evaluator=%v engine=%v", x, evErr, engErr)
		}
	}
}
