package fo

import (
	"fmt"

	"repro/internal/trial"
)

// TriALToFO translates a (star-free) TriAL expression into a first-order
// formula over the ⟨E1..En, ∼⟩ vocabulary with free variables
// (out1, out2, out3), following the inductive construction in the proof of
// Theorem 4 (part 1): relation names become atoms, set operations become
// boolean connectives, and a join existentially quantifies the three
// discarded positions.
//
// The proof shows six variable *names* suffice by reusing them across
// subformulas; this implementation instead allocates fresh names per join
// (which keeps the construction capture-free and testable) and exposes the
// count the proof cares about through QuantifierRank and the six-variable
// schedule is not re-verified mechanically. Kleene stars are rejected —
// transitive closure is not first-order (that direction is Theorem 6).
//
// The universal relation U translates to adom(x) ∧ adom(y) ∧ adom(z) where
// adom says the object occurs in some relation of relNames.
func TriALToFO(e trial.Expr, relNames []string, out [3]string) (Formula, error) {
	c := &fromTrialCtx{rels: relNames}
	return c.build(e, out)
}

type fromTrialCtx struct {
	rels []string
	n    int
}

func (c *fromTrialCtx) fresh() string {
	c.n++
	return fmt.Sprintf("w%d", c.n)
}

func (c *fromTrialCtx) build(e trial.Expr, out [3]string) (Formula, error) {
	switch x := e.(type) {
	case trial.Rel:
		return Atom{Rel: x.Name, Args: [3]Term{V(out[0]), V(out[1]), V(out[2])}}, nil
	case trial.Universe:
		conj := c.adom(out[0])
		conj = And{L: conj, R: c.adom(out[1])}
		conj = And{L: conj, R: c.adom(out[2])}
		return conj, nil
	case trial.Select:
		inner, err := c.build(x.E, out)
		if err != nil {
			return nil, err
		}
		cond, err := condFormula(x.Cond, [6]string{out[0], out[1], out[2], "", "", ""})
		if err != nil {
			return nil, err
		}
		if cond == nil {
			return inner, nil
		}
		return And{L: inner, R: cond}, nil
	case trial.Union:
		l, err := c.build(x.L, out)
		if err != nil {
			return nil, err
		}
		r, err := c.build(x.R, out)
		if err != nil {
			return nil, err
		}
		return Or{L: l, R: r}, nil
	case trial.Diff:
		l, err := c.build(x.L, out)
		if err != nil {
			return nil, err
		}
		r, err := c.build(x.R, out)
		if err != nil {
			return nil, err
		}
		return And{L: l, R: Not{F: r}}, nil
	case trial.Join:
		return c.join(x, out)
	case trial.Star:
		return nil, fmt.Errorf("fo: Kleene closures are not first-order (Theorem 6's TrCl translation covers them)")
	}
	return nil, fmt.Errorf("fo: unknown expression type %T", e)
}

// join builds ∃(discarded positions) ϕ1(p1..p3) ∧ ϕ2(p4..p6) ∧ cond,
// where the six position variables are chosen so that output positions
// carry the requested free-variable names.
func (c *fromTrialCtx) join(x trial.Join, out [3]string) (Formula, error) {
	var pos [6]string
	// Claimed output slots first: output position i is fed from x.Out[i].
	// The same join position may feed several output slots; the extra
	// slots then force equalities.
	var eqs []Formula
	for i, p := range x.Out {
		idx := int(p)
		if pos[idx] == "" {
			pos[idx] = out[i]
		} else {
			eqs = append(eqs, Eq{L: V(pos[idx]), R: V(out[i])})
		}
	}
	// But distinct output names bound to one slot also mean those names
	// must be equal; conversely unclaimed positions get fresh names and an
	// existential quantifier.
	var quantified []string
	for i := range pos {
		if pos[i] == "" {
			pos[i] = c.fresh()
			quantified = append(quantified, pos[i])
		}
	}
	l, err := c.build(x.L, [3]string{pos[0], pos[1], pos[2]})
	if err != nil {
		return nil, err
	}
	r, err := c.build(x.R, [3]string{pos[3], pos[4], pos[5]})
	if err != nil {
		return nil, err
	}
	body := And{L: l, R: r}
	cond, err := condFormula(x.Cond, pos)
	if err != nil {
		return nil, err
	}
	if cond != nil {
		body = And{L: body, R: cond}
	}
	for _, eq := range eqs {
		body = And{L: body, R: eq}
	}
	var f Formula = body
	for i := len(quantified) - 1; i >= 0; i-- {
		f = Exists{Var: quantified[i], F: f}
	}
	return f, nil
}

func (c *fromTrialCtx) adom(v string) Formula {
	u1, u2 := c.fresh(), c.fresh()
	var f Formula
	for _, rel := range c.rels {
		for i := 0; i < 3; i++ {
			args := [3]Term{V(u1), V(u2), V(u2)}
			switch i {
			case 0:
				args = [3]Term{V(v), V(u1), V(u2)}
			case 1:
				args = [3]Term{V(u1), V(v), V(u2)}
			case 2:
				args = [3]Term{V(u1), V(u2), V(v)}
			}
			atom := Formula(Atom{Rel: rel, Args: args})
			if f == nil {
				f = atom
			} else {
				f = Or{L: f, R: atom}
			}
		}
	}
	if f == nil {
		// No relations: the active domain is empty, so adom(v) is false.
		f = Not{F: Eq{L: V(v), R: V(v)}}
		return f
	}
	return Exists{Var: u1, F: Exists{Var: u2, F: f}}
}

// condFormula renders θ/η conditions over the six position variables
// (empty strings mean the condition may not reference primed positions —
// the selection case).
func condFormula(c trial.Cond, pos [6]string) (Formula, error) {
	var f Formula
	add := func(g Formula) {
		if f == nil {
			f = g
		} else {
			f = And{L: f, R: g}
		}
	}
	objTerm := func(t trial.ObjTerm) (Term, error) {
		if t.IsConst {
			return C(t.Name), nil
		}
		name := pos[int(t.Pos)]
		if name == "" {
			return Term{}, fmt.Errorf("fo: condition references unavailable position %v", t.Pos)
		}
		return V(name), nil
	}
	for _, a := range c.Obj {
		l, err := objTerm(a.L)
		if err != nil {
			return nil, err
		}
		r, err := objTerm(a.R)
		if err != nil {
			return nil, err
		}
		var g Formula = Eq{L: l, R: r}
		if a.Neq {
			g = Not{F: g}
		}
		add(g)
	}
	for _, a := range c.Val {
		if a.L.IsLit || a.R.IsLit {
			return nil, fmt.Errorf("fo: data-value literals are outside the ∼ vocabulary")
		}
		ln := pos[int(a.L.Pos)]
		rn := pos[int(a.R.Pos)]
		if ln == "" || rn == "" {
			return nil, fmt.Errorf("fo: data condition references unavailable position")
		}
		var g Formula = Sim{L: V(ln), R: V(rn), Component: a.Component}
		if a.Neq {
			g = Not{F: g}
		}
		add(g)
	}
	return f, nil
}

// QuantifierRank returns the maximum nesting depth of quantifiers — a
// coarse complexity measure for translated formulas.
func QuantifierRank(f Formula) int {
	switch x := f.(type) {
	case Not:
		return QuantifierRank(x.F)
	case And:
		return max(QuantifierRank(x.L), QuantifierRank(x.R))
	case Or:
		return max(QuantifierRank(x.L), QuantifierRank(x.R))
	case Exists:
		return 1 + QuantifierRank(x.F)
	case Forall:
		return 1 + QuantifierRank(x.F)
	case TrCl:
		return QuantifierRank(x.F)
	}
	return 0
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
