package fo

import (
	"fmt"

	"repro/internal/trial"
)

// FO3ToTriAL translates an FO formula using at most the three variables of
// varOrder into an equivalent TriAL expression, following the inductive
// construction in the proof of Theorem 4 (part 2). The resulting
// expression satisfies, for every triplestore T with active domain A:
//
//	e_ϕ(T) = {(a1, a2, a3) ∈ A³ | T ⊨ ϕ[x1→a1, x2→a2, x3→a3]}
//
// where (x1, x2, x3) = varOrder. Positions of non-free variables range
// over the whole active domain, which is how the proof "ignores" unused
// positions while staying closed.
//
// TrCl subformulas are not handled here (that is the Theorem 6
// construction, which targets TriAL*); they produce an error.
func FO3ToTriAL(f Formula, varOrder [3]string) (trial.Expr, error) {
	slot := map[string]trial.Pos{
		varOrder[0]: trial.L1,
		varOrder[1]: trial.L2,
		varOrder[2]: trial.L3,
	}
	if len(slot) != 3 {
		return nil, fmt.Errorf("fo: varOrder must list three distinct variables")
	}
	for _, v := range Vars(f) {
		if _, ok := slot[v]; !ok {
			return nil, fmt.Errorf("fo: formula uses variable %s outside varOrder %v", v, varOrder)
		}
	}
	return fo3(f, slot)
}

func fo3(f Formula, slot map[string]trial.Pos) (trial.Expr, error) {
	switch x := f.(type) {
	case Atom:
		return fo3Atom(x, slot)
	case Sim:
		cond := trial.Cond{}
		lt, err := fo3ValTerm(x.L, slot)
		if err != nil {
			return nil, err
		}
		rt, err := fo3ValTerm(x.R, slot)
		if err != nil {
			return nil, err
		}
		cond.Val = append(cond.Val, trial.ValAtom{L: lt, R: rt, Component: x.Component})
		return trial.MustSelect(trial.U(), cond), nil
	case Eq:
		lt, err := fo3ObjTerm(x.L, slot)
		if err != nil {
			return nil, err
		}
		rt, err := fo3ObjTerm(x.R, slot)
		if err != nil {
			return nil, err
		}
		return trial.MustSelect(trial.U(), trial.Cond{Obj: []trial.ObjAtom{{L: lt, R: rt}}}), nil
	case Not:
		inner, err := fo3(x.F, slot)
		if err != nil {
			return nil, err
		}
		return trial.Diff{L: trial.U(), R: inner}, nil
	case And:
		l, err := fo3(x.L, slot)
		if err != nil {
			return nil, err
		}
		r, err := fo3(x.R, slot)
		if err != nil {
			return nil, err
		}
		return trial.Intersect(l, r), nil
	case Or:
		l, err := fo3(x.L, slot)
		if err != nil {
			return nil, err
		}
		r, err := fo3(x.R, slot)
		if err != nil {
			return nil, err
		}
		return trial.Union{L: l, R: r}, nil
	case Exists:
		return fo3Exists(x.Var, x.F, slot)
	case Forall:
		// ∀x ϕ = ¬∃x ¬ϕ.
		inner, err := fo3Exists(x.Var, Not{F: x.F}, slot)
		if err != nil {
			return nil, err
		}
		return trial.Diff{L: trial.U(), R: inner}, nil
	case TrCl:
		return nil, fmt.Errorf("fo: FO3ToTriAL does not handle trcl (TriAL* translation of Theorem 6 is out of scope here)")
	}
	return nil, fmt.Errorf("fo: unknown formula type %T", f)
}

func fo3Exists(v string, body Formula, slot map[string]trial.Pos) (trial.Expr, error) {
	p, ok := slot[v]
	if !ok {
		return nil, fmt.Errorf("fo: quantified variable %s outside varOrder", v)
	}
	inner, err := fo3(body, slot)
	if err != nil {
		return nil, err
	}
	// Refill the quantified slot with arbitrary domain elements: join with
	// U, taking the other two slots from the left and slot p from U.
	out := [3]trial.Pos{trial.L1, trial.L2, trial.L3}
	out[p.Index()] = []trial.Pos{trial.R1, trial.R2, trial.R3}[p.Index()]
	return trial.MustJoin(inner, out, trial.Cond{}, trial.U()), nil
}

// fo3Atom builds the expression for E(t1, t2, t3) over the slot frame:
// triples whose slot components satisfy the membership pattern. The
// relation is first constrained by a selection expressing repeated
// variables and constants, then rearranged into slot order with unused
// slots refilled from U.
func fo3Atom(a Atom, slot map[string]trial.Pos) (trial.Expr, error) {
	// Selection over E's own positions.
	var cond trial.Cond
	atomPos := [3]trial.Pos{trial.L1, trial.L2, trial.L3}
	firstOcc := map[string]trial.Pos{}
	for i, t := range a.Args {
		if t.IsConst {
			cond.Obj = append(cond.Obj, trial.Eq(trial.P(atomPos[i]), trial.Obj(t.Const)))
			continue
		}
		if prev, ok := firstOcc[t.Var]; ok {
			cond.Obj = append(cond.Obj, trial.Eq(trial.P(prev), trial.P(atomPos[i])))
		} else {
			firstOcc[t.Var] = atomPos[i]
		}
	}
	base := trial.Expr(trial.R(a.Rel))
	if !cond.Empty() {
		base = trial.MustSelect(base, cond)
	}
	// Rearrangement: slot s takes the E-position of its variable's first
	// occurrence; slots whose variable does not occur take U positions.
	var out [3]trial.Pos
	uPos := []trial.Pos{trial.R1, trial.R2, trial.R3}
	used := false
	for v, p := range slot {
		occ, ok := firstOcc[v]
		if !ok {
			out[p.Index()] = uPos[p.Index()]
			continue
		}
		out[p.Index()] = occ
		used = true
	}
	if !used {
		// Ground atom (all constants): nonempty selection means the fact
		// holds; the join with U then yields all of U, else ∅.
		out = [3]trial.Pos{trial.R1, trial.R2, trial.R3}
	}
	return trial.MustJoin(base, out, trial.Cond{}, trial.U()), nil
}

func fo3ObjTerm(t Term, slot map[string]trial.Pos) (trial.ObjTerm, error) {
	if t.IsConst {
		return trial.Obj(t.Const), nil
	}
	p, ok := slot[t.Var]
	if !ok {
		return trial.ObjTerm{}, fmt.Errorf("fo: variable %s outside varOrder", t.Var)
	}
	return trial.P(p), nil
}

func fo3ValTerm(t Term, slot map[string]trial.Pos) (trial.ValTerm, error) {
	if t.IsConst {
		return trial.ValTerm{}, fmt.Errorf("fo: ∼ over constants is not supported in the translation")
	}
	p, ok := slot[t.Var]
	if !ok {
		return trial.ValTerm{}, fmt.Errorf("fo: variable %s outside varOrder", t.Var)
	}
	return trial.RhoP(p), nil
}
