package fo

import (
	"math/rand"
	"testing"

	"repro/internal/trial"
	"repro/internal/triplestore"
)

func lineStore() *triplestore.Store {
	s := triplestore.NewStore()
	s.Add("E", "a", "p", "b")
	s.Add("E", "b", "p", "c")
	return s
}

func mustEvalF(t *testing.T, f Formula, s *triplestore.Store, env Env) bool {
	t.Helper()
	v, err := Eval(f, s, env)
	if err != nil {
		t.Fatalf("Eval(%s): %v", f, err)
	}
	return v
}

func TestAtomAndEq(t *testing.T) {
	s := lineStore()
	f := Atom{Rel: "E", Args: [3]Term{C("a"), C("p"), C("b")}}
	if !mustEvalF(t, f, s, Env{}) {
		t.Error("ground atom should hold")
	}
	g := Atom{Rel: "E", Args: [3]Term{C("b"), C("p"), C("a")}}
	if mustEvalF(t, g, s, Env{}) {
		t.Error("reversed atom should fail")
	}
	eq := Eq{L: C("a"), R: C("a")}
	if !mustEvalF(t, eq, s, Env{}) {
		t.Error("a = a should hold")
	}
}

func TestQuantifiers(t *testing.T) {
	s := lineStore()
	// ∃x ∃y ∃z E(x, y, z)
	f := Exists{Var: "x", F: Exists{Var: "y", F: Exists{Var: "z",
		F: Atom{Rel: "E", Args: [3]Term{V("x"), V("y"), V("z")}}}}}
	if !mustEvalF(t, f, s, Env{}) {
		t.Error("∃∃∃ E should hold")
	}
	// ∀x ∃y ∃z (E(x,y,z) ∨ E(z,y,x)): every active object is an endpoint…
	g := Forall{Var: "x", F: Exists{Var: "y", F: Exists{Var: "z",
		F: Or{
			L: Atom{Rel: "E", Args: [3]Term{V("x"), V("y"), V("z")}},
			R: Atom{Rel: "E", Args: [3]Term{V("z"), V("y"), V("x")}},
		}}}}
	// …except p, which occurs only in the middle. So g is false.
	if mustEvalF(t, g, s, Env{}) {
		t.Error("∀ should fail: p occurs only as a predicate")
	}
}

func TestSim(t *testing.T) {
	s := triplestore.NewStore()
	s.SetValue("a", triplestore.V("r"))
	s.SetValue("b", triplestore.V("r"))
	s.SetValue("c", triplestore.V("s"))
	s.Add("E", "a", "b", "c")
	f := Sim{L: C("a"), R: C("b"), Component: -1}
	if !mustEvalF(t, f, s, Env{}) {
		t.Error("∼(a,b) should hold")
	}
	g := Sim{L: C("a"), R: C("c"), Component: -1}
	if mustEvalF(t, g, s, Env{}) {
		t.Error("∼(a,c) should fail")
	}
}

func TestEvalErrors(t *testing.T) {
	s := lineStore()
	if _, err := Eval(Atom{Rel: "missing", Args: [3]Term{C("a"), C("a"), C("a")}}, s, Env{}); err == nil {
		t.Error("unknown relation should error")
	}
	if _, err := Eval(Eq{L: C("zzz"), R: C("a")}, s, Env{}); err == nil {
		t.Error("unknown constant should error")
	}
	if _, err := Eval(Eq{L: V("x"), R: C("a")}, s, Env{}); err == nil {
		t.Error("unbound variable should error")
	}
}

func TestVarsAndFree(t *testing.T) {
	f := Exists{Var: "x", F: And{
		L: Atom{Rel: "E", Args: [3]Term{V("x"), V("y"), V("z")}},
		R: Eq{L: V("x"), R: V("y")},
	}}
	if got := Vars(f); len(got) != 3 {
		t.Errorf("Vars = %v", got)
	}
	if got := Free(f); len(got) != 2 || got[0] != "y" || got[1] != "z" {
		t.Errorf("Free = %v", got)
	}
}

func TestTrClReachability(t *testing.T) {
	s := lineStore() // a → b → c (via middle p)
	// edge(x, y) := ∃w E(x, w, y); here expressed with the third variable z.
	edge := Exists{Var: "z", F: Atom{Rel: "E", Args: [3]Term{V("x"), V("z"), V("y")}}}
	reach := func(from, to string) Formula {
		return TrCl{
			XVars: []string{"x"}, YVars: []string{"y"},
			F:  edge,
			T1: []Term{C(from)}, T2: []Term{C(to)},
		}
	}
	if !mustEvalF(t, reach("a", "c"), s, Env{}) {
		t.Error("a should reach c")
	}
	if mustEvalF(t, reach("c", "a"), s, Env{}) {
		t.Error("c should not reach a")
	}
	if !mustEvalF(t, reach("a", "a"), s, Env{}) {
		t.Error("reachability is reflexive")
	}
	// p is never an endpoint: a must not reach p.
	if mustEvalF(t, reach("a", "p"), s, Env{}) {
		t.Error("a should not reach p")
	}
}

func TestTrClMalformed(t *testing.T) {
	bad := TrCl{XVars: []string{"x"}, YVars: []string{"y", "z"},
		F: Eq{L: V("x"), R: V("y")}, T1: []Term{C("a")}, T2: []Term{C("a")}}
	if _, err := Eval(bad, lineStore(), Env{}); err == nil {
		t.Error("mismatched trcl arities should error")
	}
}

func TestAnswers(t *testing.T) {
	s := lineStore()
	f := Exists{Var: "y", F: Atom{Rel: "E", Args: [3]Term{V("x"), V("y"), V("z")}}}
	got, err := Answers(f, s, []string{"x", "z"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("answers = %v", got)
	}
}

// --- FO³ → TriAL translation (Theorem 4, part 2) ---

var vo = [3]string{"x1", "x2", "x3"}

// checkFO3 compares the translated expression against direct evaluation
// over all assignments.
func checkFO3(t *testing.T, f Formula, s *triplestore.Store) {
	t.Helper()
	e, err := FO3ToTriAL(f, vo)
	if err != nil {
		t.Fatalf("FO3ToTriAL(%s): %v", f, err)
	}
	ev := trial.NewEvaluator(s)
	r, err := ev.Eval(e)
	if err != nil {
		t.Fatalf("eval of translation of %s: %v", f, err)
	}
	dom := s.ActiveDomain()
	env := Env{}
	for _, a1 := range dom {
		for _, a2 := range dom {
			for _, a3 := range dom {
				env["x1"], env["x2"], env["x3"] = a1, a2, a3
				want, err := Eval(f, s, env)
				if err != nil {
					t.Fatal(err)
				}
				got := r.Has(triplestore.Triple{a1, a2, a3})
				if got != want {
					t.Fatalf("%s at (%s,%s,%s): translation %v, direct %v\nexpr: %s",
						f, s.Name(a1), s.Name(a2), s.Name(a3), got, want, e)
				}
			}
		}
	}
}

func TestFO3TranslationFixed(t *testing.T) {
	s := triplestore.NewStore()
	s.SetValue("a", triplestore.V("r"))
	s.SetValue("b", triplestore.V("r"))
	s.SetValue("c", triplestore.V("s"))
	s.Add("E", "a", "p", "b")
	s.Add("E", "b", "p", "c")
	s.Add("E", "c", "c", "c")
	E := func(a, b, c Term) Formula { return Atom{Rel: "E", Args: [3]Term{a, b, c}} }
	formulas := []Formula{
		E(V("x1"), V("x2"), V("x3")),
		E(V("x2"), V("x1"), V("x3")), // permuted
		E(V("x1"), V("x1"), V("x1")), // repeated variable
		E(V("x1"), C("p"), V("x3")),  // constant
		Eq{L: V("x1"), R: V("x2")},
		Sim{L: V("x1"), R: V("x3"), Component: -1},
		Not{F: E(V("x1"), V("x2"), V("x3"))},
		And{L: E(V("x1"), V("x2"), V("x3")), R: Eq{L: V("x1"), R: V("x1")}},
		Or{L: Eq{L: V("x1"), R: V("x2")}, R: Eq{L: V("x2"), R: V("x3")}},
		Exists{Var: "x2", F: E(V("x1"), V("x2"), V("x3"))},
		Forall{Var: "x2", F: Or{L: Not{F: E(V("x1"), V("x2"), V("x3"))}, R: Eq{L: V("x1"), R: V("x1")}}},
		Exists{Var: "x1", F: Exists{Var: "x3", F: E(V("x1"), V("x2"), V("x3"))}},
		E(C("a"), C("p"), C("b")), // ground atom
	}
	for _, f := range formulas {
		checkFO3(t, f, s)
	}
}

// TestFO3TranslationRandom: experiment E14 — random FO³ formulas agree
// with their TriAL translations on random stores.
func TestFO3TranslationRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 60; i++ {
		s := randStore(rng)
		f := randFO3(rng, 3)
		checkFO3(t, f, s)
	}
}

func randStore(rng *rand.Rand) *triplestore.Store {
	s := triplestore.NewStore()
	names := []string{"a", "b", "c", "d"}
	for _, n := range names {
		s.SetValue(n, triplestore.V(string(rune('u'+rng.Intn(2)))))
	}
	k := 3 + rng.Intn(6)
	for i := 0; i < k; i++ {
		s.Add("E", names[rng.Intn(4)], names[rng.Intn(4)], names[rng.Intn(4)])
	}
	return s
}

func randFO3(rng *rand.Rand, depth int) Formula {
	vars := []Term{V("x1"), V("x2"), V("x3")}
	tv := func() Term { return vars[rng.Intn(3)] }
	if depth <= 0 {
		switch rng.Intn(3) {
		case 0:
			return Atom{Rel: "E", Args: [3]Term{tv(), tv(), tv()}}
		case 1:
			return Eq{L: tv(), R: tv()}
		default:
			return Sim{L: tv(), R: tv(), Component: -1}
		}
	}
	switch rng.Intn(6) {
	case 0:
		return randFO3(rng, 0)
	case 1:
		return Not{F: randFO3(rng, depth-1)}
	case 2:
		return And{L: randFO3(rng, depth-1), R: randFO3(rng, depth-1)}
	case 3:
		return Or{L: randFO3(rng, depth-1), R: randFO3(rng, depth-1)}
	case 4:
		return Exists{Var: vars[rng.Intn(3)].Var, F: randFO3(rng, depth-1)}
	default:
		return Forall{Var: vars[rng.Intn(3)].Var, F: randFO3(rng, depth-1)}
	}
}

func TestFO3TranslationErrors(t *testing.T) {
	if _, err := FO3ToTriAL(Eq{L: V("x9"), R: V("x1")}, vo); err == nil {
		t.Error("variable outside order should be rejected")
	}
	tr := TrCl{XVars: []string{"x1"}, YVars: []string{"x2"},
		F: Eq{L: V("x1"), R: V("x2")}, T1: []Term{V("x1")}, T2: []Term{V("x2")}}
	if _, err := FO3ToTriAL(tr, vo); err == nil {
		t.Error("trcl should be rejected by the FO³ translation")
	}
	if _, err := FO3ToTriAL(Eq{L: V("x1"), R: V("x1")}, [3]string{"x1", "x1", "x2"}); err == nil {
		t.Error("non-distinct varOrder should be rejected")
	}
}
