package fo

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/triplestore"
)

// Term is a variable or an object constant.
type Term struct {
	Var     string
	Const   string
	IsConst bool
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// C returns a constant term.
func C(name string) Term { return Term{Const: name, IsConst: true} }

func (t Term) String() string {
	if t.IsConst {
		return "'" + t.Const + "'"
	}
	return t.Var
}

// Formula is an FO/TrCl formula.
type Formula interface {
	String() string
	isFormula()
}

// Atom is E(t1, t2, t3) for a ternary relation symbol E.
type Atom struct {
	Rel  string
	Args [3]Term
}

// Sim is ∼(l, r), or ∼i(l, r) when Component ≥ 0.
type Sim struct {
	L, R      Term
	Component int
}

// Eq is l = r.
type Eq struct{ L, R Term }

// Not is ¬ϕ.
type Not struct{ F Formula }

// And is ϕ ∧ ψ.
type And struct{ L, R Formula }

// Or is ϕ ∨ ψ.
type Or struct{ L, R Formula }

// Exists is ∃x ϕ.
type Exists struct {
	Var string
	F   Formula
}

// Forall is ∀x ϕ.
type Forall struct {
	Var string
	F   Formula
}

// TrCl is the transitive-closure operator [trcl_{x̄,ȳ} ϕ(x̄, ȳ, z̄)](t̄1, t̄2):
// it holds when the tuple valued by T2 is reachable from the tuple valued
// by T1 in the graph over n-tuples whose edges are the (x̄, ȳ) pairs
// satisfying ϕ (parameters z̄ are the formula's remaining free variables).
// Reachability is reflexive: a tuple reaches itself by the empty path.
type TrCl struct {
	XVars, YVars []string
	F            Formula
	T1, T2       []Term
}

func (Atom) isFormula()   {}
func (Sim) isFormula()    {}
func (Eq) isFormula()     {}
func (Not) isFormula()    {}
func (And) isFormula()    {}
func (Or) isFormula()     {}
func (Exists) isFormula() {}
func (Forall) isFormula() {}
func (TrCl) isFormula()   {}

func (a Atom) String() string {
	return fmt.Sprintf("%s(%s,%s,%s)", a.Rel, a.Args[0], a.Args[1], a.Args[2])
}
func (s Sim) String() string {
	name := "~"
	if s.Component >= 0 {
		name = fmt.Sprintf("~%d", s.Component)
	}
	return fmt.Sprintf("%s(%s,%s)", name, s.L, s.R)
}
func (e Eq) String() string     { return e.L.String() + "=" + e.R.String() }
func (n Not) String() string    { return "¬(" + n.F.String() + ")" }
func (a And) String() string    { return "(" + a.L.String() + " ∧ " + a.R.String() + ")" }
func (o Or) String() string     { return "(" + o.L.String() + " ∨ " + o.R.String() + ")" }
func (e Exists) String() string { return "∃" + e.Var + " " + e.F.String() }
func (f Forall) String() string { return "∀" + f.Var + " " + f.F.String() }
func (t TrCl) String() string {
	terms := func(ts []Term) string {
		parts := make([]string, len(ts))
		for i, x := range ts {
			parts[i] = x.String()
		}
		return strings.Join(parts, ",")
	}
	return fmt.Sprintf("[trcl_{%s;%s} %s](%s; %s)",
		strings.Join(t.XVars, ","), strings.Join(t.YVars, ","),
		t.F, terms(t.T1), terms(t.T2))
}

// Vars returns the distinct variable names occurring in the formula (free
// or bound) — the measure for FO^k membership (§6.1 counts variables, with
// reuse allowed).
func Vars(f Formula) []string {
	seen := map[string]bool{}
	var out []string
	add := func(t Term) {
		if !t.IsConst && !seen[t.Var] {
			seen[t.Var] = true
			out = append(out, t.Var)
		}
	}
	addName := func(n string) { add(V(n)) }
	var walk func(Formula)
	walk = func(f Formula) {
		switch x := f.(type) {
		case Atom:
			for _, t := range x.Args {
				add(t)
			}
		case Sim:
			add(x.L)
			add(x.R)
		case Eq:
			add(x.L)
			add(x.R)
		case Not:
			walk(x.F)
		case And:
			walk(x.L)
			walk(x.R)
		case Or:
			walk(x.L)
			walk(x.R)
		case Exists:
			addName(x.Var)
			walk(x.F)
		case Forall:
			addName(x.Var)
			walk(x.F)
		case TrCl:
			for _, v := range x.XVars {
				addName(v)
			}
			for _, v := range x.YVars {
				addName(v)
			}
			walk(x.F)
			for _, t := range x.T1 {
				add(t)
			}
			for _, t := range x.T2 {
				add(t)
			}
		}
	}
	walk(f)
	sort.Strings(out)
	return out
}

// Free returns the free variables of the formula, sorted.
func Free(f Formula) []string {
	out := map[string]bool{}
	var walk func(Formula, map[string]bool)
	walk = func(f Formula, bound map[string]bool) {
		addT := func(t Term) {
			if !t.IsConst && !bound[t.Var] {
				out[t.Var] = true
			}
		}
		switch x := f.(type) {
		case Atom:
			for _, t := range x.Args {
				addT(t)
			}
		case Sim:
			addT(x.L)
			addT(x.R)
		case Eq:
			addT(x.L)
			addT(x.R)
		case Not:
			walk(x.F, bound)
		case And:
			walk(x.L, bound)
			walk(x.R, bound)
		case Or:
			walk(x.L, bound)
			walk(x.R, bound)
		case Exists:
			b2 := copyBound(bound)
			b2[x.Var] = true
			walk(x.F, b2)
		case Forall:
			b2 := copyBound(bound)
			b2[x.Var] = true
			walk(x.F, b2)
		case TrCl:
			b2 := copyBound(bound)
			for _, v := range x.XVars {
				b2[v] = true
			}
			for _, v := range x.YVars {
				b2[v] = true
			}
			walk(x.F, b2)
			for _, t := range x.T1 {
				addT(t)
			}
			for _, t := range x.T2 {
				addT(t)
			}
		}
	}
	walk(f, map[string]bool{})
	names := make([]string, 0, len(out))
	for v := range out {
		names = append(names, v)
	}
	sort.Strings(names)
	return names
}

func copyBound(b map[string]bool) map[string]bool {
	c := make(map[string]bool, len(b))
	for k, v := range b {
		c[k] = v
	}
	return c
}

// Env is a variable assignment.
type Env map[string]triplestore.ID

// Eval decides T ⊨ ϕ[env] under active-domain semantics. It returns an
// error for unknown relation symbols, unknown constants, or unbound free
// variables.
func Eval(f Formula, s *triplestore.Store, env Env) (bool, error) {
	dom := s.ActiveDomain()
	return eval(f, s, dom, env)
}

func term(s *triplestore.Store, t Term, env Env) (triplestore.ID, error) {
	if t.IsConst {
		id := s.Lookup(t.Const)
		if id == triplestore.NoID {
			return 0, fmt.Errorf("fo: constant %q not in store", t.Const)
		}
		return id, nil
	}
	id, ok := env[t.Var]
	if !ok {
		return 0, fmt.Errorf("fo: unbound variable %s", t.Var)
	}
	return id, nil
}

func eval(f Formula, s *triplestore.Store, dom []triplestore.ID, env Env) (bool, error) {
	switch x := f.(type) {
	case Atom:
		rel := s.Relation(x.Rel)
		if rel == nil {
			return false, fmt.Errorf("fo: unknown relation %q", x.Rel)
		}
		var tr triplestore.Triple
		for i, t := range x.Args {
			id, err := term(s, t, env)
			if err != nil {
				return false, err
			}
			tr[i] = id
		}
		return rel.Has(tr), nil
	case Sim:
		l, err := term(s, x.L, env)
		if err != nil {
			return false, err
		}
		r, err := term(s, x.R, env)
		if err != nil {
			return false, err
		}
		if x.Component >= 0 {
			return s.Value(l).ComponentEqual(s.Value(r), x.Component), nil
		}
		return s.SameValue(l, r), nil
	case Eq:
		l, err := term(s, x.L, env)
		if err != nil {
			return false, err
		}
		r, err := term(s, x.R, env)
		if err != nil {
			return false, err
		}
		return l == r, nil
	case Not:
		v, err := eval(x.F, s, dom, env)
		return !v, err
	case And:
		l, err := eval(x.L, s, dom, env)
		if err != nil || !l {
			return false, err
		}
		return eval(x.R, s, dom, env)
	case Or:
		l, err := eval(x.L, s, dom, env)
		if err != nil || l {
			return l, err
		}
		return eval(x.R, s, dom, env)
	case Exists:
		saved, had := env[x.Var]
		for _, a := range dom {
			env[x.Var] = a
			v, err := eval(x.F, s, dom, env)
			if err != nil {
				restore(env, x.Var, saved, had)
				return false, err
			}
			if v {
				restore(env, x.Var, saved, had)
				return true, nil
			}
		}
		restore(env, x.Var, saved, had)
		return false, nil
	case Forall:
		saved, had := env[x.Var]
		for _, a := range dom {
			env[x.Var] = a
			v, err := eval(x.F, s, dom, env)
			if err != nil {
				restore(env, x.Var, saved, had)
				return false, err
			}
			if !v {
				restore(env, x.Var, saved, had)
				return false, nil
			}
		}
		restore(env, x.Var, saved, had)
		return true, nil
	case TrCl:
		return evalTrCl(x, s, dom, env)
	}
	return false, fmt.Errorf("fo: unknown formula type %T", f)
}

func restore(env Env, v string, saved triplestore.ID, had bool) {
	if had {
		env[v] = saved
	} else {
		delete(env, v)
	}
}

func evalTrCl(x TrCl, s *triplestore.Store, dom []triplestore.ID, env Env) (bool, error) {
	n := len(x.XVars)
	if n == 0 || len(x.YVars) != n || len(x.T1) != n || len(x.T2) != n {
		return false, fmt.Errorf("fo: malformed trcl (|x̄| = %d, |ȳ| = %d, |t̄1| = %d, |t̄2| = %d)",
			n, len(x.YVars), len(x.T1), len(x.T2))
	}
	start := make([]triplestore.ID, n)
	goal := make([]triplestore.ID, n)
	for i := 0; i < n; i++ {
		v, err := term(s, x.T1[i], env)
		if err != nil {
			return false, err
		}
		start[i] = v
		v, err = term(s, x.T2[i], env)
		if err != nil {
			return false, err
		}
		goal[i] = v
	}
	key := func(t []triplestore.ID) string {
		var b strings.Builder
		for _, id := range t {
			fmt.Fprintf(&b, "%d,", id)
		}
		return b.String()
	}
	// BFS over n-tuples; successors computed by enumerating dom^n and
	// testing ϕ. Exponential in n, fine for the small witness structures.
	startK := key(start)
	goalK := key(goal)
	if startK == goalK {
		return true, nil
	}
	visited := map[string]bool{startK: true}
	queue := [][]triplestore.ID{start}
	// Save/restore the x̄/ȳ bindings around the search.
	type saveEntry struct {
		v   string
		id  triplestore.ID
		had bool
	}
	var saves []saveEntry
	for _, v := range append(append([]string{}, x.XVars...), x.YVars...) {
		id, had := env[v]
		saves = append(saves, saveEntry{v, id, had})
	}
	defer func() {
		for _, sv := range saves {
			restore(env, sv.v, sv.id, sv.had)
		}
	}()
	var tuples [][]triplestore.ID
	var gen func(cur []triplestore.ID)
	gen = func(cur []triplestore.ID) {
		if len(cur) == n {
			tuples = append(tuples, append([]triplestore.ID{}, cur...))
			return
		}
		for _, a := range dom {
			gen(append(cur, a))
		}
	}
	gen(nil)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for i, v := range x.XVars {
			env[v] = cur[i]
		}
		for _, next := range tuples {
			if visited[key(next)] {
				continue
			}
			for i, v := range x.YVars {
				env[v] = next[i]
			}
			ok, err := eval(x.F, s, dom, env)
			if err != nil {
				return false, err
			}
			if !ok {
				continue
			}
			if key(next) == goalK {
				return true, nil
			}
			visited[key(next)] = true
			queue = append(queue, next)
		}
	}
	return false, nil
}

// Answers enumerates, over the active domain, the assignments to freeVars
// satisfying ϕ, returned as tuples in freeVars order.
func Answers(f Formula, s *triplestore.Store, freeVars []string) ([][]triplestore.ID, error) {
	dom := s.ActiveDomain()
	env := Env{}
	var out [][]triplestore.ID
	var rec func(k int) error
	rec = func(k int) error {
		if k == len(freeVars) {
			ok, err := eval(f, s, dom, env)
			if err != nil {
				return err
			}
			if ok {
				tuple := make([]triplestore.ID, len(freeVars))
				for i, v := range freeVars {
					tuple[i] = env[v]
				}
				out = append(out, tuple)
			}
			return nil
		}
		for _, a := range dom {
			env[freeVars[k]] = a
			if err := rec(k + 1); err != nil {
				return err
			}
		}
		delete(env, freeVars[k])
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return out, nil
}
