package fo

import (
	"math/rand"
	"testing"

	"repro/internal/trial"
	"repro/internal/triplestore"
)

var outVars = [3]string{"o1", "o2", "o3"}

// checkTriALToFO compares the Theorem 4 (part 1) translation against the
// algebra evaluator over the whole active domain.
func checkTriALToFO(t *testing.T, e trial.Expr, s *triplestore.Store) {
	t.Helper()
	f, err := TriALToFO(e, []string{"E"}, outVars)
	if err != nil {
		t.Fatalf("TriALToFO(%s): %v", e, err)
	}
	ev := trial.NewEvaluator(s)
	want, err := ev.Eval(e)
	if err != nil {
		t.Fatal(err)
	}
	dom := s.ActiveDomain()
	env := Env{}
	for _, a := range dom {
		for _, b := range dom {
			for _, c := range dom {
				env["o1"], env["o2"], env["o3"] = a, b, c
				got, err := Eval(f, s, env)
				if err != nil {
					t.Fatalf("eval of translation of %s: %v", e, err)
				}
				if got != want.Has(triplestore.Triple{a, b, c}) {
					t.Fatalf("%s at (%s,%s,%s): FO %v, algebra %v\nformula: %s",
						e, s.Name(a), s.Name(b), s.Name(c), got, !got, f)
				}
			}
		}
	}
}

func TestTriALToFOFixed(t *testing.T) {
	s := triplestore.NewStore()
	s.SetValue("a", triplestore.V("r"))
	s.SetValue("b", triplestore.V("r"))
	s.SetValue("c", triplestore.V("s"))
	s.Add("E", "a", "p", "b")
	s.Add("E", "b", "p", "c")
	s.Add("E", "c", "a", "a")
	six, _ := trial.DistinctObjects(6)
	exprs := []trial.Expr{
		trial.R("E"),
		trial.U(),
		trial.Example2("E"),
		trial.Example2Extended("E"),
		trial.Complement(trial.R("E")),
		trial.Intersect(trial.R("E"), trial.U()),
		trial.Diagonal(),
		six,
		trial.MustSelect(trial.R("E"), trial.Cond{Obj: []trial.ObjAtom{
			trial.Eq(trial.P(trial.L2), trial.Obj("p")),
		}}),
		trial.MustSelect(trial.R("E"), trial.Cond{Val: []trial.ValAtom{
			trial.VEq(trial.RhoP(trial.L1), trial.RhoP(trial.L3)),
		}}),
		trial.Semijoin(trial.R("E"), trial.Cond{Obj: []trial.ObjAtom{
			trial.Eq(trial.P(trial.L3), trial.P(trial.R1)),
		}}, trial.R("E")),
		// Repeated output positions.
		trial.MustJoin(trial.R("E"), [3]trial.Pos{trial.L1, trial.L1, trial.R3},
			trial.Cond{Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L3), trial.P(trial.R1))}},
			trial.R("E")),
	}
	for _, e := range exprs {
		checkTriALToFO(t, e, s)
	}
}

// TestTriALToFORandom: experiment support for Theorem 4 part 1 — random
// star-free expressions agree with their FO translations. Depth and
// domain are kept small: the FO evaluator enumerates assignments, so the
// nested existentials of deep join towers are exponential to check.
func TestTriALToFORandom(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for i := 0; i < 40; i++ {
		s := triplestore.NewStore()
		names := []string{"a", "b", "c"}
		for _, n := range names {
			s.SetValue(n, triplestore.V(string(rune('u'+rng.Intn(2)))))
		}
		k := 3 + rng.Intn(4)
		for j := 0; j < k; j++ {
			s.Add("E", names[rng.Intn(3)], names[rng.Intn(3)], names[rng.Intn(3)])
		}
		e := randTriAL(rng, 2)
		checkTriALToFO(t, e, s)
	}
}

// randTriAL generates star-free expressions (Join/Select/Union/Diff over
// E; U appears only in the fixed test cases — its translation nests
// quantifiers that the brute-force checker cannot afford at depth).
func randTriAL(rng *rand.Rand, depth int) trial.Expr {
	if depth <= 0 || rng.Intn(5) == 0 {
		return trial.R("E")
	}
	out := [3]trial.Pos{
		trial.Pos(rng.Intn(6)),
		trial.Pos(rng.Intn(6)),
		trial.Pos(rng.Intn(6)),
	}
	cond := func(leftOnly bool) trial.Cond {
		pool := []trial.Pos{trial.L1, trial.L2, trial.L3, trial.R1, trial.R2, trial.R3}
		if leftOnly {
			pool = pool[:3]
		}
		var c trial.Cond
		for i := rng.Intn(3); i > 0; i-- {
			if rng.Intn(4) == 0 {
				c.Val = append(c.Val, trial.ValAtom{
					L:         trial.RhoP(pool[rng.Intn(len(pool))]),
					R:         trial.RhoP(pool[rng.Intn(len(pool))]),
					Neq:       rng.Intn(3) == 0,
					Component: -1,
				})
			} else {
				c.Obj = append(c.Obj, trial.ObjAtom{
					L:   trial.P(pool[rng.Intn(len(pool))]),
					R:   trial.P(pool[rng.Intn(len(pool))]),
					Neq: rng.Intn(3) == 0,
				})
			}
		}
		return c
	}
	switch rng.Intn(5) {
	case 0:
		return trial.MustSelect(randTriAL(rng, depth-1), cond(true))
	case 1:
		return trial.Union{L: randTriAL(rng, depth-1), R: randTriAL(rng, depth-1)}
	case 2:
		return trial.Diff{L: randTriAL(rng, depth-1), R: randTriAL(rng, depth-1)}
	default:
		return trial.MustJoin(randTriAL(rng, depth-1), out, cond(false), randTriAL(rng, depth-1))
	}
}

func TestTriALToFORejectsStars(t *testing.T) {
	if _, err := TriALToFO(trial.ReachRight("E"), []string{"E"}, outVars); err == nil {
		t.Error("stars should be rejected")
	}
}

func TestTriALToFORejectsLiterals(t *testing.T) {
	e := trial.MustSelect(trial.R("E"), trial.Cond{Val: []trial.ValAtom{
		trial.VEq(trial.RhoP(trial.L1), trial.Lit(triplestore.V("x"))),
	}})
	if _, err := TriALToFO(e, []string{"E"}, outVars); err == nil {
		t.Error("value literals should be rejected")
	}
}

func TestQuantifierRank(t *testing.T) {
	f, err := TriALToFO(trial.Example2("E"), []string{"E"}, outVars)
	if err != nil {
		t.Fatal(err)
	}
	if got := QuantifierRank(f); got != 3 {
		t.Errorf("rank = %d, want 3 (one join quantifies three positions)", got)
	}
	if got := QuantifierRank(Eq{L: V("x"), R: V("x")}); got != 0 {
		t.Errorf("rank of quantifier-free formula = %d", got)
	}
}
