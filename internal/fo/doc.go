// Package fo implements first-order logic over the relational vocabulary
// ⟨E1, ..., En, ∼⟩ the TriAL paper uses in §6.1 to compare the algebra
// with bounded-variable logics: ternary relation symbols for the
// triplestore relations, the binary similarity relation ∼ (ρ-equality,
// with ∼i variants for tuple components), equality, and object constants.
// It also implements transitive-closure logic TrCl (the trcl operator of
// §6.1) and the FO³ → TriAL translation from the proof of Theorem 4.
//
// Evaluation uses active-domain semantics, as the paper assumes
// (Remark 3 of the appendix): quantifiers range over objects occurring in
// some triple.
package fo
