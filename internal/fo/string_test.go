package fo

import "testing"

func TestFormulaStrings(t *testing.T) {
	f := Exists{Var: "x", F: Forall{Var: "y", F: Or{
		L: And{
			L: Not{F: Atom{Rel: "E", Args: [3]Term{V("x"), C("p"), V("y")}}},
			R: Sim{L: V("x"), R: V("y"), Component: 2},
		},
		R: Eq{L: V("x"), R: V("y")},
	}}}
	want := "∃x ∀y ((¬(E(x,'p',y)) ∧ ~2(x,y)) ∨ x=y)"
	if got := f.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	tr := TrCl{
		XVars: []string{"x"}, YVars: []string{"y"},
		F:  Sim{L: V("x"), R: V("y"), Component: -1},
		T1: []Term{V("x")}, T2: []Term{C("goal")},
	}
	wantTr := "[trcl_{x;y} ~(x,y)](x; 'goal')"
	if got := tr.String(); got != wantTr {
		t.Errorf("TrCl String = %q, want %q", got, wantTr)
	}
}

func TestFreeOverTrCl(t *testing.T) {
	tr := TrCl{
		XVars: []string{"x"}, YVars: []string{"y"},
		F:  Atom{Rel: "E", Args: [3]Term{V("x"), V("z"), V("y")}},
		T1: []Term{V("u")}, T2: []Term{V("v")},
	}
	free := Free(tr)
	// x, y bound by the operator; z is the parameter; u, v applied.
	want := map[string]bool{"z": true, "u": true, "v": true}
	if len(free) != len(want) {
		t.Fatalf("Free = %v", free)
	}
	for _, v := range free {
		if !want[v] {
			t.Errorf("unexpected free variable %s", v)
		}
	}
	if vs := Vars(tr); len(vs) != 5 {
		t.Errorf("Vars = %v", vs)
	}
}
