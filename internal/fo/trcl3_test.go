package fo

import (
	"math/rand"
	"testing"

	"repro/internal/trial"
	"repro/internal/triplestore"
)

// checkTrCl3 compares the Theorem 6 translation against direct evaluation
// over all assignments.
func checkTrCl3(t *testing.T, f Formula, s *triplestore.Store) {
	t.Helper()
	e, err := TrCl3ToTriAL(f, vo)
	if err != nil {
		t.Fatalf("TrCl3ToTriAL(%s): %v", f, err)
	}
	ev := trial.NewEvaluator(s)
	r, err := ev.Eval(e)
	if err != nil {
		t.Fatalf("eval of translation of %s: %v", f, err)
	}
	dom := s.ActiveDomain()
	env := Env{}
	for _, a1 := range dom {
		for _, a2 := range dom {
			for _, a3 := range dom {
				env["x1"], env["x2"], env["x3"] = a1, a2, a3
				want, err := Eval(f, s, env)
				if err != nil {
					t.Fatal(err)
				}
				got := r.Has(triplestore.Triple{a1, a2, a3})
				if got != want {
					t.Fatalf("%s at (%s,%s,%s): translation %v, direct %v",
						f, s.Name(a1), s.Name(a2), s.Name(a3), got, want)
				}
			}
		}
	}
}

// edgeVia builds ϕ(x, y, z) := E(x, z, y): an edge from x to y labeled z.
func edgeVia(x, y, z string) Formula {
	return Atom{Rel: "E", Args: [3]Term{V(x), V(z), V(y)}}
}

func TestTrCl3Fixed(t *testing.T) {
	s := triplestore.NewStore()
	s.Add("E", "a", "p", "b")
	s.Add("E", "b", "p", "c")
	s.Add("E", "c", "q", "d")
	s.Add("E", "d", "q", "a")

	cases := []Formula{
		// Same-label reachability: x1 →* x2 via x3-labeled edges.
		TrCl{XVars: []string{"x1"}, YVars: []string{"x2"},
			F:  edgeVia("x1", "x2", "x3"),
			T1: []Term{V("x1")}, T2: []Term{V("x2")}},
		// Applied to swapped terms.
		TrCl{XVars: []string{"x1"}, YVars: []string{"x2"},
			F:  edgeVia("x1", "x2", "x3"),
			T1: []Term{V("x2")}, T2: []Term{V("x1")}},
		// Applied to the parameter variable: x3 reaches x2 via x3-edges.
		TrCl{XVars: []string{"x1"}, YVars: []string{"x2"},
			F:  edgeVia("x1", "x2", "x3"),
			T1: []Term{V("x3")}, T2: []Term{V("x2")}},
		// Both terms the same variable (trivially true via reflexivity).
		TrCl{XVars: []string{"x1"}, YVars: []string{"x2"},
			F:  edgeVia("x1", "x2", "x3"),
			T1: []Term{V("x1")}, T2: []Term{V("x1")}},
		// trcl under boolean structure and quantification.
		Exists{Var: "x3", F: TrCl{XVars: []string{"x1"}, YVars: []string{"x2"},
			F:  edgeVia("x1", "x2", "x3"),
			T1: []Term{V("x1")}, T2: []Term{V("x2")}}},
		And{
			L: TrCl{XVars: []string{"x1"}, YVars: []string{"x2"},
				F:  edgeVia("x1", "x2", "x3"),
				T1: []Term{V("x1")}, T2: []Term{V("x2")}},
			R: Not{F: Eq{L: V("x1"), R: V("x2")}},
		},
		// Edge relation ignoring the parameter (any-label reachability).
		TrCl{XVars: []string{"x1"}, YVars: []string{"x2"},
			F:  Exists{Var: "x3", F: edgeVia("x1", "x2", "x3")},
			T1: []Term{V("x1")}, T2: []Term{V("x2")}},
	}
	for _, f := range cases {
		checkTrCl3(t, f, s)
	}
}

// TestTrCl3Random differentially tests the Theorem 6 construction on
// random stores with random edge formulas.
func TestTrCl3Random(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	vars := []string{"x1", "x2", "x3"}
	for i := 0; i < 40; i++ {
		s := randStore(rng)
		perm := rng.Perm(3)
		xv, yv := vars[perm[0]], vars[perm[1]]
		body := randFO3(rng, 2)
		f := TrCl{
			XVars: []string{xv}, YVars: []string{yv},
			F:  body,
			T1: []Term{V(vars[rng.Intn(3)])},
			T2: []Term{V(vars[rng.Intn(3)])},
		}
		checkTrCl3(t, f, s)
	}
}

func TestTrCl3Errors(t *testing.T) {
	binary := TrCl{
		XVars: []string{"x1", "x2"}, YVars: []string{"x1", "x2"},
		F:  Eq{L: V("x1"), R: V("x2")},
		T1: []Term{V("x1"), V("x2")}, T2: []Term{V("x1"), V("x2")},
	}
	if _, err := TrCl3ToTriAL(binary, vo); err == nil {
		t.Error("binary trcl should be rejected (needs 4+ variables)")
	}
	constTerm := TrCl{
		XVars: []string{"x1"}, YVars: []string{"x2"},
		F:  edgeVia("x1", "x2", "x3"),
		T1: []Term{C("a")}, T2: []Term{V("x2")},
	}
	if _, err := TrCl3ToTriAL(constTerm, vo); err == nil {
		t.Error("constant application terms should be rejected")
	}
	degenerate := TrCl{
		XVars: []string{"x1"}, YVars: []string{"x1"},
		F:  edgeVia("x1", "x1", "x3"),
		T1: []Term{V("x1")}, T2: []Term{V("x1")},
	}
	if _, err := TrCl3ToTriAL(degenerate, vo); err == nil {
		t.Error("x̄ = ȳ should be rejected")
	}
}

// TestTrCl3SubsumesFO3: the TrCl translation agrees with FO3ToTriAL on
// trcl-free formulas.
func TestTrCl3SubsumesFO3(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for i := 0; i < 30; i++ {
		s := randStore(rng)
		f := randFO3(rng, 3)
		e1, err := FO3ToTriAL(f, vo)
		if err != nil {
			t.Fatal(err)
		}
		e2, err := TrCl3ToTriAL(f, vo)
		if err != nil {
			t.Fatal(err)
		}
		ev := trial.NewEvaluator(s)
		r1, err := ev.Eval(e1)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := ev.Eval(e2)
		if err != nil {
			t.Fatal(err)
		}
		if !r1.Equal(r2) {
			t.Fatalf("translations disagree on trcl-free %s", f)
		}
	}
}
