package fo

import (
	"fmt"

	"repro/internal/trial"
)

// TrCl3ToTriAL translates a transitive-closure-logic formula using at most
// the three variables of varOrder into an equivalent TriAL* expression —
// the containment TrCl³ ⊆ TriAL* of Theorem 6 (part 2), made executable.
// It extends FO3ToTriAL with the construction from the proof:
//
//	ψ = [trcl_{x,y} ϕ(x, y, z)](u1, u2)
//
// becomes (after rearranging e_ϕ so that x, y, z occupy positions 1, 2, 3)
//
//	R := (e_ϕ′ ✶^{1,2′,3}_{3=3′, 2=1′})*
//
// whose triples (a, b, c) say "b is reachable from a along ϕ(·, ·, c)
// edges by a path of length ≥ 1"; the nine u1/u2 cases of the proof then
// rearrange R into the slot frame, and the reflexive part of trcl is the
// diagonal selection σ_{slot(u1)=slot(u2)}(U).
func TrCl3ToTriAL(f Formula, varOrder [3]string) (trial.Expr, error) {
	slot := map[string]trial.Pos{
		varOrder[0]: trial.L1,
		varOrder[1]: trial.L2,
		varOrder[2]: trial.L3,
	}
	if len(slot) != 3 {
		return nil, fmt.Errorf("fo: varOrder must list three distinct variables")
	}
	for _, v := range Vars(f) {
		if _, ok := slot[v]; !ok {
			return nil, fmt.Errorf("fo: formula uses variable %s outside varOrder %v", v, varOrder)
		}
	}
	return trcl3(f, slot, varOrder)
}

// trcl3 mirrors fo3 but dispatches TrCl nodes to the star construction.
func trcl3(f Formula, slot map[string]trial.Pos, varOrder [3]string) (trial.Expr, error) {
	switch x := f.(type) {
	case Not:
		inner, err := trcl3(x.F, slot, varOrder)
		if err != nil {
			return nil, err
		}
		return trial.Diff{L: trial.U(), R: inner}, nil
	case And:
		l, err := trcl3(x.L, slot, varOrder)
		if err != nil {
			return nil, err
		}
		r, err := trcl3(x.R, slot, varOrder)
		if err != nil {
			return nil, err
		}
		return trial.Intersect(l, r), nil
	case Or:
		l, err := trcl3(x.L, slot, varOrder)
		if err != nil {
			return nil, err
		}
		r, err := trcl3(x.R, slot, varOrder)
		if err != nil {
			return nil, err
		}
		return trial.Union{L: l, R: r}, nil
	case Exists:
		p, ok := slot[x.Var]
		if !ok {
			return nil, fmt.Errorf("fo: quantified variable %s outside varOrder", x.Var)
		}
		inner, err := trcl3(x.F, slot, varOrder)
		if err != nil {
			return nil, err
		}
		out := [3]trial.Pos{trial.L1, trial.L2, trial.L3}
		out[p.Index()] = []trial.Pos{trial.R1, trial.R2, trial.R3}[p.Index()]
		return trial.MustJoin(inner, out, trial.Cond{}, trial.U()), nil
	case Forall:
		inner, err := trcl3(Exists{Var: x.Var, F: Not{F: x.F}}, slot, varOrder)
		if err != nil {
			return nil, err
		}
		return trial.Diff{L: trial.U(), R: inner}, nil
	case TrCl:
		return trcl3Star(x, slot, varOrder)
	default:
		// Atoms, equalities, and similarity atoms contain no trcl.
		return fo3(f, slot)
	}
}

func trcl3Star(x TrCl, slot map[string]trial.Pos, varOrder [3]string) (trial.Expr, error) {
	if len(x.XVars) != 1 || len(x.YVars) != 1 || len(x.T1) != 1 || len(x.T2) != 1 {
		return nil, fmt.Errorf("fo: TrCl3ToTriAL handles unary trcl only (|x̄| = 1); got |x̄| = %d", len(x.XVars))
	}
	xv, yv := x.XVars[0], x.YVars[0]
	if xv == yv {
		return nil, fmt.Errorf("fo: trcl with x̄ = ȳ is degenerate")
	}
	if x.T1[0].IsConst || x.T2[0].IsConst {
		return nil, fmt.Errorf("fo: constants in trcl application terms are not supported")
	}
	u1, u2 := x.T1[0].Var, x.T2[0].Var
	pu1, ok1 := slot[u1]
	pu2, ok2 := slot[u2]
	if !ok1 || !ok2 {
		return nil, fmt.Errorf("fo: trcl terms use variables outside varOrder")
	}
	// The parameter variable is the one of varOrder that is neither x nor y.
	var zv string
	for _, v := range varOrder {
		if v != xv && v != yv {
			zv = v
		}
	}
	inner, err := trcl3(x.F, slot, varOrder)
	if err != nil {
		return nil, err
	}
	// Rearrange e_ϕ so that (x, y, z) occupy positions (1, 2, 3).
	ephi := rearrangeFrame(inner, [3]trial.Pos{slot[xv], slot[yv], slot[zv]})
	// R := (e_ϕ′ ✶^{1,2′,3}_{3=3′, 2=1′})*: (a, b, c) with a path a →+ b
	// over ϕ(·, ·, c) edges.
	reach := trial.MustStar(ephi, [3]trial.Pos{trial.L1, trial.R2, trial.L3},
		trial.Cond{Obj: []trial.ObjAtom{
			trial.Eq(trial.P(trial.L3), trial.P(trial.R3)),
			trial.Eq(trial.P(trial.L2), trial.P(trial.R1)),
		}}, false)
	// Arrange R into the slot frame: slot(u1) receives R's position 1,
	// slot(u2) position 2, slot(z) position 3 — with selections when the
	// same slot must receive several positions (e.g. trcl applied to the
	// parameter variable), and U filling unclaimed slots.
	framed, err := frameFromBinary(reach, pu1, pu2, slot[zv])
	if err != nil {
		return nil, err
	}
	// Reflexive part: val(u1) = val(u2) over the whole universe.
	if pu1 == pu2 {
		return trial.Union{L: framed, R: trial.U()}, nil
	}
	diag := trial.MustSelect(trial.U(), trial.Cond{Obj: []trial.ObjAtom{
		trial.Eq(trial.P(pu1), trial.P(pu2)),
	}})
	return trial.Union{L: framed, R: diag}, nil
}

// rearrangeFrame permutes an expression's positions: output position i is
// taken from from[i] of the input (realized as a self-join on identity, as
// in the paper's E ✶^{i,j,k} E device).
func rearrangeFrame(e trial.Expr, from [3]trial.Pos) trial.Expr {
	same := trial.Cond{Obj: []trial.ObjAtom{
		trial.Eq(trial.P(trial.L1), trial.P(trial.R1)),
		trial.Eq(trial.P(trial.L2), trial.P(trial.R2)),
		trial.Eq(trial.P(trial.L3), trial.P(trial.R3)),
	}}
	return trial.MustJoin(e, from, same, e)
}

// frameFromBinary lifts the reachability relation R (positions: 1 = source,
// 2 = target, 3 = parameter) into the three-slot frame where the source
// lands in slot p1, the target in p2, and the parameter in pz. Slots
// claimed by several roles force equality selections on R; unclaimed
// slots are filled from U.
func frameFromBinary(r trial.Expr, p1, p2, pz trial.Pos) (trial.Expr, error) {
	var roles [3][]trial.Pos // frame slot index -> R positions claiming it
	claim := func(slotPos trial.Pos, rPos trial.Pos) {
		roles[slotPos.Index()] = append(roles[slotPos.Index()], rPos)
	}
	claim(p1, trial.L1)
	claim(p2, trial.L2)
	claim(pz, trial.L3)
	// Equalities for multiply-claimed slots.
	var sel trial.Cond
	for _, claimed := range roles {
		for i := 1; i < len(claimed); i++ {
			sel.Obj = append(sel.Obj, trial.Eq(trial.P(claimed[0]), trial.P(claimed[i])))
		}
	}
	base := r
	if len(sel.Obj) > 0 {
		s, err := trial.NewSelect(base, sel)
		if err != nil {
			return nil, err
		}
		base = s
	}
	var out [3]trial.Pos
	uPos := []trial.Pos{trial.R1, trial.R2, trial.R3}
	for i := 0; i < 3; i++ {
		if len(roles[i]) > 0 {
			out[i] = roles[i][0]
		} else {
			out[i] = uPos[i]
		}
	}
	return trial.MustJoin(base, out, trial.Cond{}, trial.U()), nil
}
