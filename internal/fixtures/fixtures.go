package fixtures

import (
	"fmt"

	"repro/internal/triplestore"
)

// RelE is the relation name used for the single ternary relation of most
// fixtures.
const RelE = "E"

// Transport returns the RDF database D of Figure 1: cities, transport
// services between them, and operators of those services.
func Transport() *triplestore.Store {
	s := triplestore.NewStore()
	for _, t := range [][3]string{
		{"St. Andrews", "Bus Op 1", "Edinburgh"},
		{"Edinburgh", "Train Op 1", "London"},
		{"London", "Train Op 2", "Brussels"},
		{"Bus Op 1", "part_of", "NatExpress"},
		{"Train Op 1", "part_of", "EastCoast"},
		{"Train Op 2", "part_of", "Eurostar"},
		{"EastCoast", "part_of", "NatExpress"},
	} {
		s.Add(RelE, t[0], t[1], t[2])
	}
	return s
}

// D1 returns the first witness document from the proof of Proposition 1:
// an extension of the Figure 1 database.
func D1() *triplestore.Store {
	s := triplestore.NewStore()
	for _, t := range d1Triples() {
		s.Add(RelE, t[0], t[1], t[2])
	}
	return s
}

// D2 returns the second witness document: D1 without the triple
// (Edinburgh, Train Op 1, London). The proof of Proposition 1 shows
// σ(D1) = σ(D2) although Q(D1) ≠ Q(D2).
func D2() *triplestore.Store {
	s := triplestore.NewStore()
	for _, t := range d1Triples() {
		if t == [3]string{"Edinburgh", "Train Op 1", "London"} {
			continue
		}
		s.Add(RelE, t[0], t[1], t[2])
	}
	return s
}

func d1Triples() [][3]string {
	return [][3]string{
		{"St Andrews", "Bus Operator 1", "Edinburgh"},
		{"Edinburgh", "Train Op 1", "London"},
		{"Edinburgh", "Train Op 3", "London"},
		{"Edinburgh", "Train Op 1", "Manchester"},
		{"Newcastle", "Train Op 1", "London"},
		{"London", "Train Op 2", "Brussels"},
		{"Bus Operator 1", "part_of", "NatExpress"},
		{"Train Op 1", "part_of", "EastCoast"},
		{"Train Op 2", "part_of", "Eurostar"},
		{"EastCoast", "part_of", "NatExpress"},
	}
}

// Example3 returns the store of Example 3, E = {(a,b,c), (c,d,e), (d,e,f)},
// used to demonstrate that triple joins are not associative.
func Example3() *triplestore.Store {
	s := triplestore.NewStore()
	s.Add(RelE, "a", "b", "c")
	s.Add(RelE, "c", "d", "e")
	s.Add(RelE, "d", "e", "f")
	return s
}

// CompleteStore returns Tn from the proof of Theorem 4: n objects named
// o1..on with E = O × O × O and all data values equal. T3/T4 witness that
// the "four distinct objects" query is beyond FO³; T5/T6 likewise for six
// objects and FO⁵.
func CompleteStore(n int) *triplestore.Store {
	s := triplestore.NewStore()
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("o%d", i+1)
		s.SetValue(names[i], triplestore.V("1"))
	}
	for _, a := range names {
		for _, b := range names {
			for _, c := range names {
				s.Add(RelE, a, b, c)
			}
		}
	}
	return s
}

// StructureA returns structure A from the proof of Theorem 4, part 3:
// objects a, b, c, d1..d9, e1..e12 with edges
// (x, ei, y) for all distinct x, y ∈ {a,b,c} and 1 ≤ i ≤ 12, plus
// (x, ei, dj) and (dj, ei, x) for x ∈ {a,b,c}, 1 ≤ i ≤ 4, 1 ≤ j ≤ 12.
//
// Note the paper's prose swaps the roles of the i and j bounds relative to
// its own figure; we follow the figure (i = 1..12 middle objects e_i,
// j = 1..4 outer objects d_j ... the figure says i = 1..12, j = 1..4 with
// d_j connected via all e_i). Structures A and B are only used as
// spot-check inputs (they agree on a family of TriAL expressions but are
// distinguished by an FO⁴ formula), so the exact bound convention does not
// affect the reproduced claim as long as A and B are built consistently.
func StructureA() *triplestore.Store {
	s := triplestore.NewStore()
	abc := []string{"a", "b", "c"}
	for i := 1; i <= 12; i++ {
		e := fmt.Sprintf("e%d", i)
		for _, x := range abc {
			for _, y := range abc {
				if x != y {
					s.Add(RelE, x, e, y)
				}
			}
		}
	}
	for i := 1; i <= 4; i++ {
		e := fmt.Sprintf("e%d", i)
		for j := 1; j <= 9; j++ {
			d := fmt.Sprintf("d%d", j)
			for _, x := range abc {
				s.Add(RelE, x, e, d)
				s.Add(RelE, d, e, x)
			}
		}
	}
	return s
}

// StructureB returns structure B from the same proof: the triangle a,b,c
// is fully connected only through e1..e3, and each pair of {a,b,c} shares
// its own block of middle objects and d-objects.
func StructureB() *triplestore.Store {
	s := triplestore.NewStore()
	abc := []string{"a", "b", "c"}
	for i := 1; i <= 3; i++ {
		e := fmt.Sprintf("e%d", i)
		for _, x := range abc {
			for _, y := range abc {
				if x != y {
					s.Add(RelE, x, e, y)
				}
			}
		}
	}
	add := func(x, y string, iLo, iHi, jLo, jHi int) {
		for i := iLo; i <= iHi; i++ {
			e := fmt.Sprintf("e%d", i)
			s.Add(RelE, x, e, y)
			s.Add(RelE, y, e, x)
			for j := jLo; j <= jHi; j++ {
				d := fmt.Sprintf("d%d", j)
				s.Add(RelE, x, e, d)
				s.Add(RelE, d, e, x)
				s.Add(RelE, y, e, d)
				s.Add(RelE, d, e, y)
			}
		}
	}
	add("a", "b", 4, 6, 1, 3)
	add("a", "c", 7, 9, 4, 6)
	add("b", "c", 10, 12, 7, 9)
	return s
}

// SocialNetwork returns the triplestore of the §2.3 social-network
// example: users o175 (Mario), o122 (Donkey Kong), o7521 (Luigi) connected
// by edges c163 (rival), c137 (brother), c177 (coworker). Data values are
// quintuples (name, email, age, type, created) with nulls as in the paper.
func SocialNetwork() *triplestore.Store {
	s := triplestore.NewStore()
	n := triplestore.Null()
	user := func(id, name, email, age string) {
		s.SetValue(id, triplestore.Value{
			triplestore.F(name), triplestore.F(email), triplestore.F(age), n, n,
		})
	}
	conn := func(id, typ, created string) {
		s.SetValue(id, triplestore.Value{
			n, n, n, triplestore.F(typ), triplestore.F(created),
		})
	}
	user("o175", "Mario", "m@nes.com", "23")
	user("o122", "Donkey Kong", "d@nes.com", "117")
	user("o7521", "Luigi", "l@nes.com", "27")
	conn("c163", "rival", "12-07-89")
	conn("c137", "brother", "11-11-83")
	conn("c177", "coworker", "12-07-89")
	s.Add(RelE, "o175", "c163", "o122")
	s.Add(RelE, "o175", "c137", "o7521")
	s.Add(RelE, "o7521", "c177", "o122")
	return s
}
