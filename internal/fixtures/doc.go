// Package fixtures builds the concrete example structures that appear in
// the TriAL paper (PODS 2013): the transport network of Figure 1, the
// inexpressibility witnesses D1/D2 from the proof of Proposition 1, the
// pebble-game structures of the appendix (T3/T4, T5/T6, A/B), the
// social-network triplestore of §2.3, and the Example 3 store. Every
// experiment and many tests evaluate queries over these structures.
package fixtures
