package fixtures

import (
	"testing"

	"repro/internal/triplestore"
)

func TestTransport(t *testing.T) {
	s := Transport()
	if s.Size() != 7 {
		t.Errorf("Figure 1 store has %d triples, want 7", s.Size())
	}
	// Every triple of the figure present.
	tr := triplestore.Triple{s.Lookup("EastCoast"), s.Lookup("part_of"), s.Lookup("NatExpress")}
	if !s.Relation(RelE).Has(tr) {
		t.Error("missing (EastCoast, part_of, NatExpress)")
	}
}

func TestD1D2(t *testing.T) {
	d1, d2 := D1(), D2()
	if d1.Size() != 10 {
		t.Errorf("D1 has %d triples, want 10", d1.Size())
	}
	if d2.Size() != 9 {
		t.Errorf("D2 has %d triples, want 9", d2.Size())
	}
	// D2 = D1 minus exactly the Edinburgh–TrainOp1–London triple.
	missing := triplestore.Triple{
		d1.Lookup("Edinburgh"), d1.Lookup("Train Op 1"), d1.Lookup("London"),
	}
	if !d1.Relation(RelE).Has(missing) {
		t.Error("D1 should contain the distinguishing triple")
	}
	m2 := triplestore.Triple{
		d2.Lookup("Edinburgh"), d2.Lookup("Train Op 1"), d2.Lookup("London"),
	}
	if d2.Relation(RelE).Has(m2) {
		t.Error("D2 should not contain the distinguishing triple")
	}
}

func TestExample3(t *testing.T) {
	s := Example3()
	if s.Size() != 3 {
		t.Errorf("Example 3 store has %d triples, want 3", s.Size())
	}
}

func TestCompleteStore(t *testing.T) {
	for _, n := range []int{3, 4, 5} {
		s := CompleteStore(n)
		if s.Size() != n*n*n {
			t.Errorf("CompleteStore(%d) has %d triples, want %d", n, s.Size(), n*n*n)
		}
		if len(s.ActiveDomain()) != n {
			t.Errorf("CompleteStore(%d) active domain = %d", n, len(s.ActiveDomain()))
		}
		// All data values equal, as in the proof of Theorem 4.
		dom := s.ActiveDomain()
		for _, o := range dom {
			if !s.SameValue(dom[0], o) {
				t.Errorf("CompleteStore(%d): values differ", n)
			}
		}
	}
}

func TestStructuresAB(t *testing.T) {
	a, b := StructureA(), StructureB()
	// A: 6 triangle edges × 12 middles + 2×3×9 d-edges × 4 middles.
	wantA := 6*12 + 2*3*9*4
	if a.Size() != wantA {
		t.Errorf("|A| = %d, want %d", a.Size(), wantA)
	}
	// B: 6 triangle edges × 3 middles + 3 blocks × 3 middles ×
	// (2 pair edges + 2·2·3 d-edges).
	wantB := 6*3 + 3*3*(2+12)
	if b.Size() != wantB {
		t.Errorf("|B| = %d, want %d", b.Size(), wantB)
	}
	// Objects: A has a,b,c + d1..d9 + e1..e12 active.
	if got := len(a.ActiveDomain()); got != 3+9+12 {
		t.Errorf("A active domain = %d, want 24", got)
	}
	if got := len(b.ActiveDomain()); got != 3+9+12 {
		t.Errorf("B active domain = %d, want 24", got)
	}
}

func TestSocialNetwork(t *testing.T) {
	s := SocialNetwork()
	if s.Size() != 3 {
		t.Errorf("social store has %d triples, want 3", s.Size())
	}
	mario := s.Lookup("o175")
	v := s.Value(mario)
	if len(v) != 5 || v[0].Str != "Mario" || !v[3].Null {
		t.Errorf("ρ(o175) = %v", v)
	}
	rival := s.Value(s.Lookup("c163"))
	if !rival[0].Null || rival[3].Str != "rival" || rival[4].Str != "12-07-89" {
		t.Errorf("ρ(c163) = %v", rival)
	}
	// Connection and user tuples share no components except by accident:
	// component 3 of a user is null, of a connection non-null.
	if v.ComponentEqual(rival, 3) {
		t.Error("user and connection should differ at component 3")
	}
}
