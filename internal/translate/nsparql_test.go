package translate

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/nsparql"
	"repro/internal/rdf"
	"repro/internal/trial"
	"repro/internal/triplestore"
)

const relT = "T"

// nsparqlDocs returns the documents the nSPARQL differential tests run
// over: the paper's Figure 1 fragment, a document where a resource occurs
// as subject, predicate and object, and random documents.
func nsparqlDocs() map[string]*rdf.Document {
	docs := map[string]*rdf.Document{}

	fig1 := rdf.NewDocument()
	fig1.Add("St.Andrews", "BusOp1", "Edinburgh")
	fig1.Add("Edinburgh", "TrainOp1", "London")
	fig1.Add("London", "TrainOp2", "Brussels")
	fig1.Add("BusOp1", "part_of", "NatExpress")
	fig1.Add("TrainOp1", "part_of", "EastCoast")
	fig1.Add("TrainOp2", "part_of", "Eurostar")
	fig1.Add("EastCoast", "part_of", "NatExpress")
	docs["fig1"] = fig1

	mixed := rdf.NewDocument()
	mixed.Add("a", "b", "c")
	mixed.Add("b", "c", "a")
	mixed.Add("c", "a", "b")
	mixed.Add("a", "a", "a")
	docs["mixed"] = mixed

	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 3; i++ {
		d := rdf.NewDocument()
		names := make([]string, 8)
		for j := range names {
			names[j] = fmt.Sprintf("r%d", j)
		}
		for j := 0; j < 20; j++ {
			d.Add(names[rng.Intn(len(names))], names[rng.Intn(len(names))], names[rng.Intn(len(names))])
		}
		docs[fmt.Sprintf("random%d", i)] = d
	}
	return docs
}

// nsparqlExprs returns the path expressions covered: every axis, inverses,
// constant and nested tests, and the closure forms.
func nsparqlExprs(t *testing.T) []nsparql.Expr {
	t.Helper()
	sources := []string{
		"self",
		"next",
		"edge",
		"node",
		"next^-",
		"edge^-",
		"node^-",
		"next::part_of",
		"next::<part_of>",
		"self::part_of",
		"edge::London",
		"node::Edinburgh",
		"next*",
		"next::part_of*",
		"next/next",
		"next|edge",
		"next/(node|self)",
		"(next|next^-)*",
		"next::[next::part_of]",
		"next::[next*]",
		"self::[next]",
		"self::[next::[edge]]",
		"node::[edge^-]/next",
		"(next::[node]|edge)*",
	}
	out := make([]nsparql.Expr, 0, len(sources))
	for _, src := range sources {
		e, err := nsparql.ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		out = append(out, e)
	}
	return out
}

// relPairs projects a canonical {(x, x, y)} relation to named pairs.
func relPairs(t *testing.T, s *triplestore.Store, r *triplestore.Relation) nsparql.Rel {
	t.Helper()
	out := nsparql.Rel{}
	for _, tr := range r.Triples() {
		if tr[0] != tr[1] {
			t.Fatalf("non-canonical triple %s", s.FormatTriple(tr))
		}
		out[[2]string{s.Name(tr[0]), s.Name(tr[2])}] = true
	}
	return out
}

// TestNSPARQLDifferential pins the translation to the reference nSPARQL
// semantics: for every document and expression, the TriAL* translation —
// evaluated both by the reference Evaluator and by the engine — equals
// nsparql.Eval.
func TestNSPARQLDifferential(t *testing.T) {
	exprs := nsparqlExprs(t)
	for name, d := range nsparqlDocs() {
		t.Run(name, func(t *testing.T) {
			s := d.ToStore(relT)
			ev := trial.NewEvaluator(s)
			eng := engine.New(s)
			for _, e := range exprs {
				want := nsparql.Eval(e, d)
				tx, err := NSPARQL(e, relT)
				if err != nil {
					t.Fatalf("%s: %v", e, err)
				}
				got, err := ev.Eval(tx)
				if err != nil {
					t.Fatalf("%s: evaluator: %v", e, err)
				}
				if pairs := relPairs(t, s, got); !pairs.Equal(want) {
					t.Errorf("%s: evaluator pairs = %v, want %v", e, pairs.Pairs(), want.Pairs())
					continue
				}
				gotE, err := eng.Eval(tx)
				if err != nil {
					t.Fatalf("%s: engine: %v", e, err)
				}
				if !gotE.Equal(got) {
					t.Errorf("%s: engine disagrees with evaluator (%d vs %d triples)",
						e, gotE.Len(), got.Len())
				}
			}
		})
	}
}

// TestNSPARQLRandomExprs cross-checks random path expressions against the
// reference semantics.
func TestNSPARQLRandomExprs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	d := nsparqlDocs()["fig1"]
	s := d.ToStore(relT)
	ev := trial.NewEvaluator(s)
	for i := 0; i < 120; i++ {
		e := randomNSPARQLExpr(rng, 3)
		want := nsparql.Eval(e, d)
		tx, err := NSPARQL(e, relT)
		if err != nil {
			t.Fatalf("%s: %v", e, err)
		}
		got, err := ev.Eval(tx)
		if err != nil {
			t.Fatalf("%s: %v", e, err)
		}
		if pairs := relPairs(t, s, got); !pairs.Equal(want) {
			t.Errorf("%s: pairs = %v, want %v", e, pairs.Pairs(), want.Pairs())
		}
	}
}

// randomNSPARQLExpr generates a random path expression of bounded depth.
func randomNSPARQLExpr(rng *rand.Rand, depth int) nsparql.Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		step := nsparql.Step{Axis: nsparql.Axis(rng.Intn(4)), Inv: rng.Intn(2) == 0}
		switch rng.Intn(3) {
		case 0:
			step.Const = []string{"part_of", "London", "TrainOp1", "nowhere"}[rng.Intn(4)]
			step.HasConst = true
		case 1:
			if depth > 0 {
				step.Nested = randomNSPARQLExpr(rng, depth-1)
			}
		}
		return step
	}
	switch rng.Intn(3) {
	case 0:
		return nsparql.Seq{L: randomNSPARQLExpr(rng, depth-1), R: randomNSPARQLExpr(rng, depth-1)}
	case 1:
		return nsparql.Alt{L: randomNSPARQLExpr(rng, depth-1), R: randomNSPARQLExpr(rng, depth-1)}
	default:
		return nsparql.Star{E: randomNSPARQLExpr(rng, depth-1)}
	}
}
