// Package translate implements the language inclusions of §6.2 of the
// TriAL paper as executable translations into TriAL*:
//
//   - GXPath (navigational and with data tests) → TriAL* (Theorem 7,
//     Corollary 4),
//   - nested regular expressions → TriAL* (Corollary 2),
//   - regular path queries (with inverses) → TriAL* (Corollary 2),
//   - conjunctive NREs over three variables → TriAL* (Theorem 8).
//
// All translations target the triplestore encoding T_G of a graph database
// (graph.ToTriplestore): O = V ∪ Σ with one triple per edge.
//
// Representation invariant. A binary graph query α translates to an
// expression e_α whose value is {(u, u, v) | (u, v) ∈ ⟦α⟧}: the middle
// position duplicates the source. Keeping the representation canonical
// (rather than leaving arbitrary middles, as the paper's sketch does)
// makes complement — which the paper's GXPath includes — expressible
// triple-by-triple: π₁,₃ of a complement of a canonical relation is the
// complement of the binary relation. A node formula ϕ translates to an
// expression whose value is {(u, u, u) | u ∈ ⟦ϕ⟧}.
package translate
