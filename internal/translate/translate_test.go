package translate

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/gxpath"
	"repro/internal/nre"
	"repro/internal/rpq"
	"repro/internal/trial"
	"repro/internal/triplestore"
)

// pairsOf projects a TriAL result to its π₁,₃ binary relation over names.
func pairsOf(s *triplestore.Store, r *triplestore.Relation) map[[2]string]bool {
	out := map[[2]string]bool{}
	r.ForEach(func(t triplestore.Triple) {
		out[[2]string{s.Name(t[0]), s.Name(t[2])}] = true
	})
	return out
}

func evalOnStore(t *testing.T, g *graph.Graph, e trial.Expr) (map[[2]string]bool, *triplestore.Store, *triplestore.Relation) {
	t.Helper()
	s := g.ToTriplestore()
	ev := trial.NewEvaluator(s)
	r, err := ev.Eval(e)
	if err != nil {
		t.Fatalf("eval %s: %v", e, err)
	}
	return pairsOf(s, r), s, r
}

func sameRel(a map[[2]string]bool, b gxpath.Rel) bool {
	if len(a) != len(b) {
		return false
	}
	for p := range a {
		if !b[p] {
			return false
		}
	}
	return true
}

// randGraph generates a random graph with no isolated nodes (every node
// occurs in some edge; the triplestore active domain then matches the
// graph's node set).
func randGraph(rng *rand.Rand, nNodes, nEdges, nLabels, nValues int) *graph.Graph {
	g := graph.New()
	names := make([]string, nNodes)
	for i := range names {
		names[i] = nodeName(i)
	}
	for g.NumEdges() < nEdges {
		g.AddEdge(names[rng.Intn(nNodes)],
			labelName(rng.Intn(nLabels)),
			names[rng.Intn(nNodes)])
	}
	for _, v := range g.Nodes() {
		if v[0] == 'n' && nValues > 0 {
			g.SetValue(v, triplestore.V(string(rune('u'+rng.Intn(nValues)))))
		}
	}
	return g
}

func nodeName(i int) string  { return "n" + string(rune('0'+i)) }
func labelName(i int) string { return string(rune('a' + i)) }

// TestNodeDiag checks the node-diagonal over the encoding.
func TestNodeDiag(t *testing.T) {
	g := graph.New()
	g.AddEdge("u", "a", "v")
	pairs, s, r := evalOnStore(t, g, NodeDiag(graph.RelE))
	if len(pairs) != 2 || !pairs[[2]string{"u", "u"}] || !pairs[[2]string{"v", "v"}] {
		t.Errorf("NodeDiag = %v", pairs)
	}
	// Labels must not appear.
	if r.Has(triplestore.Triple{s.Lookup("a"), s.Lookup("a"), s.Lookup("a")}) {
		t.Error("label leaked into NodeDiag")
	}
}

// TestGXPathTranslationFixed checks the Theorem 7 translation on
// hand-picked expressions over a fixed graph.
func TestGXPathTranslationFixed(t *testing.T) {
	g := graph.New()
	g.AddEdge("v1", "a", "v2")
	g.AddEdge("v2", "b", "v3")
	g.AddEdge("v3", "a", "v1")
	g.AddEdge("v3", "b", "v3")
	paths := []gxpath.Path{
		gxpath.Eps{},
		gxpath.Label{A: "a"},
		gxpath.Label{A: "b", Inv: true},
		gxpath.Concat{L: gxpath.Label{A: "a"}, R: gxpath.Label{A: "b"}},
		gxpath.Union{L: gxpath.Label{A: "a"}, R: gxpath.Label{A: "b"}},
		gxpath.Star{P: gxpath.Label{A: "a"}},
		gxpath.Complement{P: gxpath.Label{A: "a"}},
		gxpath.Complement{P: gxpath.Star{P: gxpath.Union{L: gxpath.Label{A: "a"}, R: gxpath.Label{A: "b"}}}},
		gxpath.Test{N: gxpath.Diamond{P: gxpath.Label{A: "b"}}},
		gxpath.Concat{
			L: gxpath.Label{A: "a"},
			R: gxpath.Test{N: gxpath.Not{N: gxpath.Diamond{P: gxpath.Label{A: "a"}}}},
		},
	}
	for _, p := range paths {
		want := gxpath.EvalPath(p, g)
		got, _, _ := evalOnStore(t, g, Path(p, graph.RelE))
		if !sameRel(got, want) {
			t.Errorf("path %s: translation %v vs direct %v", p, got, want.Pairs())
		}
	}
}

// TestGXPathTranslationRandom is experiment E16: random navigational
// GXPath expressions agree with their TriAL* translations on random
// graphs.
func TestGXPathTranslationRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 120; i++ {
		g := randGraph(rng, 3+rng.Intn(4), 3+rng.Intn(8), 2, 0)
		p := randPath(rng, 3, false)
		want := gxpath.EvalPath(p, g)
		got, _, _ := evalOnStore(t, g, Path(p, graph.RelE))
		if !sameRel(got, want) {
			t.Fatalf("path %s over\n%s: translation %v vs direct %v",
				p, g, got, want.Pairs())
		}
	}
}

// TestGXPathDataTranslationRandom is experiment E17: GXPath(∼) data tests
// agree with their translations (Corollary 4).
func TestGXPathDataTranslationRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 120; i++ {
		g := randGraph(rng, 3+rng.Intn(4), 3+rng.Intn(8), 2, 2)
		p := randPath(rng, 3, true)
		want := gxpath.EvalPath(p, g)
		got, _, _ := evalOnStore(t, g, Path(p, graph.RelE))
		if !sameRel(got, want) {
			t.Fatalf("path %s over\n%s: translation %v vs direct %v",
				p, g, got, want.Pairs())
		}
	}
}

// TestGXPathNodeTranslation checks node formulas.
func TestGXPathNodeTranslation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 80; i++ {
		g := randGraph(rng, 3+rng.Intn(4), 3+rng.Intn(8), 2, 2)
		n := randNode(rng, 3, true)
		want := gxpath.EvalNode(n, g)
		got, _, _ := evalOnStore(t, g, Node(n, graph.RelE))
		ok := len(got) == len(want)
		for p := range got {
			if p[0] != p[1] || !want[p[0]] {
				ok = false
			}
		}
		if !ok {
			t.Fatalf("node %s over\n%s: translation %v vs direct %v", n, g, got, want)
		}
	}
}

func randPath(rng *rand.Rand, depth int, data bool) gxpath.Path {
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return gxpath.Eps{}
		case 1:
			return gxpath.Label{A: "a"}
		case 2:
			return gxpath.Label{A: "b"}
		default:
			return gxpath.Label{A: labelName(rng.Intn(2)), Inv: true}
		}
	}
	n := 7
	if data {
		n = 8
	}
	switch rng.Intn(n) {
	case 0:
		return randPath(rng, 0, data)
	case 1:
		return gxpath.Concat{L: randPath(rng, depth-1, data), R: randPath(rng, depth-1, data)}
	case 2:
		return gxpath.Union{L: randPath(rng, depth-1, data), R: randPath(rng, depth-1, data)}
	case 3:
		return gxpath.Star{P: randPath(rng, depth-1, data)}
	case 4:
		return gxpath.Complement{P: randPath(rng, depth-1, data)}
	case 5:
		return gxpath.Test{N: randNode(rng, depth-1, data)}
	case 6:
		return gxpath.Eps{}
	default:
		return gxpath.DataCmp{P: randPath(rng, depth-1, data), Neq: rng.Intn(2) == 0}
	}
}

func randNode(rng *rand.Rand, depth int, data bool) gxpath.Node {
	if depth <= 0 {
		return gxpath.Top{}
	}
	n := 5
	if data {
		n = 6
	}
	switch rng.Intn(n) {
	case 0:
		return gxpath.Top{}
	case 1:
		return gxpath.Not{N: randNode(rng, depth-1, data)}
	case 2:
		return gxpath.And{L: randNode(rng, depth-1, data), R: randNode(rng, depth-1, data)}
	case 3:
		return gxpath.Or{L: randNode(rng, depth-1, data), R: randNode(rng, depth-1, data)}
	case 4:
		return gxpath.Diamond{P: randPath(rng, depth-1, data)}
	default:
		return gxpath.DataTest{
			L:   randPath(rng, depth-1, data),
			R:   randPath(rng, depth-1, data),
			Neq: rng.Intn(2) == 0,
		}
	}
}

// TestNRETranslationRandom is the Corollary 2 property test for NREs.
func TestNRETranslationRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 120; i++ {
		g := randGraph(rng, 3+rng.Intn(4), 3+rng.Intn(8), 2, 0)
		e := randNRE(rng, 3)
		st := nre.GraphStructure{G: g}
		want := nre.Eval(e, st)
		got, _, _ := evalOnStore(t, g, NRE(e, graph.RelE))
		if len(got) != len(want) {
			t.Fatalf("NRE %s: translation %v vs direct %v", e, got, want.Pairs())
		}
		for p := range got {
			if !want[p] {
				t.Fatalf("NRE %s: translation has extra pair %v", e, p)
			}
		}
	}
}

func randNRE(rng *rand.Rand, depth int) nre.Expr {
	if depth <= 0 {
		switch rng.Intn(3) {
		case 0:
			return nre.Epsilon{}
		case 1:
			return nre.Label{A: labelName(rng.Intn(2))}
		default:
			return nre.Label{A: labelName(rng.Intn(2)), Inv: true}
		}
	}
	switch rng.Intn(5) {
	case 0:
		return randNRE(rng, 0)
	case 1:
		return nre.Concat{L: randNRE(rng, depth-1), R: randNRE(rng, depth-1)}
	case 2:
		return nre.Union{L: randNRE(rng, depth-1), R: randNRE(rng, depth-1)}
	case 3:
		return nre.Star{E: randNRE(rng, depth-1)}
	default:
		return nre.Nest{E: randNRE(rng, depth-1)}
	}
}

// TestRPQTranslation checks the RPQ → TriAL* route (Corollary 2).
func TestRPQTranslation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	regexes := []string{
		"a", "a b", "a|b", "a*", "a+", "a?", "(a b)* a", "a^- b", "(a|b)*",
	}
	for i := 0; i < 40; i++ {
		g := randGraph(rng, 3+rng.Intn(4), 3+rng.Intn(8), 2, 0)
		for _, rx := range regexes {
			e := rpq.MustParseRegex(rx)
			want := rpq.Eval(e, g)
			got, _, _ := evalOnStore(t, g, RPQ(e, graph.RelE))
			if len(got) != len(want) {
				t.Fatalf("RPQ %s: translation %v vs NFA %v on\n%s", rx, got, want, g)
			}
			for p := range got {
				if !want[p] {
					t.Fatalf("RPQ %s: extra pair %v", rx, p)
				}
			}
		}
	}
}

// TestCNRETranslation checks the three-variable CNRE → TriAL construction
// (Theorem 8) including correlated existential variables.
func TestCNRETranslation(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 60; i++ {
		g := randGraph(rng, 3+rng.Intn(3), 3+rng.Intn(8), 2, 0)
		q := &nre.CNRE{
			Free: []string{"x", "y", "z"},
			Atoms: []nre.CAtom{
				{X: "x", Y: "y", E: randNRE(rng, 2)},
				{X: "y", Y: "z", E: randNRE(rng, 2)},
			},
		}
		if rng.Intn(2) == 0 {
			q.Atoms = append(q.Atoms, nre.CAtom{X: "x", Y: "z", E: randNRE(rng, 1)})
		}
		e, err := CNRE(q, graph.RelE)
		if err != nil {
			t.Fatal(err)
		}
		want := nre.AnswerTuples(q, nre.GraphStructure{G: g})
		s := g.ToTriplestore()
		ev := trial.NewEvaluator(s)
		r, err := ev.Eval(e)
		if err != nil {
			t.Fatal(err)
		}
		got := map[[3]string]bool{}
		r.ForEach(func(tr triplestore.Triple) {
			got[[3]string{s.Name(tr[0]), s.Name(tr[1]), s.Name(tr[2])}] = true
		})
		if len(got) != len(want) {
			t.Fatalf("CNRE %s: %d translated answers vs %d direct\ngraph:\n%s",
				q, len(got), len(want), g)
		}
		for _, w := range want {
			if !got[[3]string{w[0], w[1], w[2]}] {
				t.Fatalf("CNRE %s: missing answer %v", q, w)
			}
		}
	}
}

// TestCNRECorrelatedExistential: a query with a shared existential
// variable — the case the frame construction exists for.
func TestCNRECorrelatedExistential(t *testing.T) {
	g := graph.New()
	g.AddEdge("u", "a", "m1")
	g.AddEdge("m2", "b", "w")
	g.AddEdge("u2", "a", "m3")
	g.AddEdge("m3", "b", "w2")
	q := &nre.CNRE{
		Free: []string{"x", "x", "y"},
		Atoms: []nre.CAtom{
			{X: "x", Y: "z", E: nre.Label{A: "a"}},
			{X: "z", Y: "y", E: nre.Label{A: "b"}},
		},
	}
	e, err := CNRE(q, graph.RelE)
	if err != nil {
		t.Fatal(err)
	}
	s := g.ToTriplestore()
	ev := trial.NewEvaluator(s)
	r, err := ev.Eval(e)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatalf("want exactly the u2/w2 answer, got %d:\n%s", r.Len(), s.FormatRelation(r))
	}
	if !r.Has(triplestore.Triple{s.Lookup("u2"), s.Lookup("u2"), s.Lookup("w2")}) {
		t.Error("wrong answer triple")
	}
}

// TestUCNRETranslation: unions of 3-variable CNREs (Theorem 8, second
// bullet) translate as unions of the per-disjunct translations.
func TestUCNRETranslation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 30; i++ {
		g := randGraph(rng, 3+rng.Intn(3), 3+rng.Intn(6), 2, 0)
		q1 := &nre.CNRE{
			Free:  []string{"x", "y", "z"},
			Atoms: []nre.CAtom{{X: "x", Y: "y", E: randNRE(rng, 2)}, {X: "y", Y: "z", E: randNRE(rng, 1)}},
		}
		q2 := &nre.CNRE{
			Free:  []string{"x", "y", "z"},
			Atoms: []nre.CAtom{{X: "x", Y: "z", E: randNRE(rng, 2)}, {X: "z", Y: "y", E: randNRE(rng, 1)}},
		}
		e, err := UCNRE([]*nre.CNRE{q1, q2}, graph.RelE)
		if err != nil {
			t.Fatal(err)
		}
		st := nre.GraphStructure{G: g}
		want := map[[3]string]bool{}
		for _, q := range []*nre.CNRE{q1, q2} {
			for _, tup := range nre.AnswerTuples(q, st) {
				want[[3]string{tup[0], tup[1], tup[2]}] = true
			}
		}
		s := g.ToTriplestore()
		ev := trial.NewEvaluator(s)
		r, err := ev.Eval(e)
		if err != nil {
			t.Fatal(err)
		}
		if r.Len() != len(want) {
			t.Fatalf("UCNRE: %d translated answers vs %d direct", r.Len(), len(want))
		}
		r.ForEach(func(tr triplestore.Triple) {
			if !want[[3]string{s.Name(tr[0]), s.Name(tr[1]), s.Name(tr[2])}] {
				t.Errorf("extra answer %s", s.FormatTriple(tr))
			}
		})
	}
	if _, err := UCNRE(nil, graph.RelE); err == nil {
		t.Error("empty UCNRE should be rejected")
	}
}

// TestCNRETranslationErrors checks the documented restrictions.
func TestCNRETranslationErrors(t *testing.T) {
	fourVars := &nre.CNRE{
		Free: []string{"x", "y", "z"},
		Atoms: []nre.CAtom{
			{X: "x", Y: "y", E: nre.Label{A: "a"}},
			{X: "z", Y: "w", E: nre.Label{A: "a"}},
		},
	}
	if _, err := CNRE(fourVars, graph.RelE); err == nil {
		t.Error("4-variable CNRE should be rejected")
	}
	badFree := &nre.CNRE{
		Free:  []string{"x", "y"},
		Atoms: []nre.CAtom{{X: "x", Y: "y", E: nre.Label{A: "a"}}},
	}
	if _, err := CNRE(badFree, graph.RelE); err == nil {
		t.Error("2-slot CNRE should be rejected")
	}
	noAtoms := &nre.CNRE{Free: []string{"x", "x", "x"}}
	if _, err := CNRE(noAtoms, graph.RelE); err == nil {
		t.Error("empty CNRE should be rejected")
	}
	unconstrained := &nre.CNRE{
		Free:  []string{"x", "y", "y"},
		Atoms: []nre.CAtom{{X: "x", Y: "x", E: nre.Label{A: "a"}}},
	}
	if _, err := CNRE(unconstrained, graph.RelE); err == nil {
		t.Error("free variable outside atoms should be rejected")
	}
}
