package translate

import (
	"fmt"

	"repro/internal/gxpath"
	"repro/internal/nre"
	"repro/internal/rpq"
	"repro/internal/trial"
)

// same-triple equality: used to canonicalize by self-joining a relation.
func sameTriple() trial.Cond {
	return trial.Cond{Obj: []trial.ObjAtom{
		trial.Eq(trial.P(trial.L1), trial.P(trial.R1)),
		trial.Eq(trial.P(trial.L2), trial.P(trial.R2)),
		trial.Eq(trial.P(trial.L3), trial.P(trial.R3)),
	}}
}

// rearrange self-joins e on identity and projects the given left-side
// positions — the paper's E ✶^{i,j,k} E device for permuting components.
func rearrange(e trial.Expr, out [3]trial.Pos) trial.Expr {
	return trial.MustJoin(e, out, sameTriple(), e)
}

// NodeDiag returns the expression for {(v, v, v) | v a node of the encoded
// graph}, i.e. subjects and objects of the edge relation (labels occupy
// only the middle position of T_G's triples).
func NodeDiag(rel string) trial.Expr {
	subj := rearrange(trial.R(rel), [3]trial.Pos{trial.L1, trial.L1, trial.L1})
	obj := rearrange(trial.R(rel), [3]trial.Pos{trial.L3, trial.L3, trial.L3})
	return trial.Union{L: subj, R: obj}
}

// AllNodePairs returns {(u, u, v) | u, v nodes}: the top relation for
// path complements.
func AllNodePairs(rel string) trial.Expr {
	nd := NodeDiag(rel)
	return trial.MustJoin(nd, [3]trial.Pos{trial.L1, trial.L2, trial.R3}, trial.Cond{}, nd)
}

// Path translates a GXPath path formula (Theorem 7 / Corollary 4). rel
// names the edge relation of the encoded graph.
func Path(p gxpath.Path, rel string) trial.Expr {
	switch x := p.(type) {
	case gxpath.Eps:
		return NodeDiag(rel)
	case gxpath.Label:
		sel := trial.MustSelect(trial.R(rel),
			trial.Cond{Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L2), trial.Obj(x.A))}})
		if x.Inv {
			return rearrange(sel, [3]trial.Pos{trial.L3, trial.L3, trial.L1})
		}
		return rearrange(sel, [3]trial.Pos{trial.L1, trial.L1, trial.L3})
	case gxpath.Test:
		return Node(x.N, rel)
	case gxpath.Concat:
		return trial.MustJoin(Path(x.L, rel), [3]trial.Pos{trial.L1, trial.L2, trial.R3},
			trial.Cond{Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L3), trial.P(trial.R1))}},
			Path(x.R, rel))
	case gxpath.Union:
		return trial.Union{L: Path(x.L, rel), R: Path(x.R, rel)}
	case gxpath.Complement:
		return trial.Diff{L: AllNodePairs(rel), R: Path(x.P, rel)}
	case gxpath.Star:
		// GXPath's α* is reflexive; the algebra's Kleene closure is not,
		// so the node diagonal is united in. The body is canonicalized
		// first (canonical.go): nested stars unnest, ε arms drop.
		body := starBodyPath(x.P)
		if body == nil {
			return NodeDiag(rel)
		}
		star := trial.MustStar(Path(body, rel), [3]trial.Pos{trial.L1, trial.L2, trial.R3},
			trial.Cond{Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L3), trial.P(trial.R1))}}, false)
		return trial.Union{L: NodeDiag(rel), R: star}
	case gxpath.DataCmp:
		atom := trial.ValAtom{L: trial.RhoP(trial.L1), R: trial.RhoP(trial.L3), Neq: x.Neq, Component: -1}
		return trial.MustSelect(Path(x.P, rel), trial.Cond{Val: []trial.ValAtom{atom}})
	}
	panic(fmt.Sprintf("translate: unknown path formula %T", p))
}

// Node translates a GXPath node formula.
func Node(n gxpath.Node, rel string) trial.Expr {
	switch x := n.(type) {
	case gxpath.Top:
		return NodeDiag(rel)
	case gxpath.Not:
		return trial.Diff{L: NodeDiag(rel), R: Node(x.N, rel)}
	case gxpath.And:
		return trial.Intersect(Node(x.L, rel), Node(x.R, rel))
	case gxpath.Or:
		return trial.Union{L: Node(x.L, rel), R: Node(x.R, rel)}
	case gxpath.Diamond:
		return rearrange(Path(x.P, rel), [3]trial.Pos{trial.L1, trial.L1, trial.L1})
	case gxpath.DataTest:
		atom := trial.ValAtom{L: trial.RhoP(trial.L3), R: trial.RhoP(trial.R3), Neq: x.Neq, Component: -1}
		return trial.MustJoin(Path(x.L, rel), [3]trial.Pos{trial.L1, trial.L1, trial.L1},
			trial.Cond{
				Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L1), trial.P(trial.R1))},
				Val: []trial.ValAtom{atom},
			},
			Path(x.R, rel))
	}
	panic(fmt.Sprintf("translate: unknown node formula %T", n))
}

// NRE translates a nested regular expression (Corollary 2), under the same
// canonical representation.
func NRE(e nre.Expr, rel string) trial.Expr {
	switch x := e.(type) {
	case nre.Epsilon:
		return NodeDiag(rel)
	case nre.Label:
		return Path(gxpath.Label{A: x.A, Inv: x.Inv}, rel)
	case nre.Concat:
		return trial.MustJoin(NRE(x.L, rel), [3]trial.Pos{trial.L1, trial.L2, trial.R3},
			trial.Cond{Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L3), trial.P(trial.R1))}},
			NRE(x.R, rel))
	case nre.Union:
		return trial.Union{L: NRE(x.L, rel), R: NRE(x.R, rel)}
	case nre.Star:
		body := starBodyNRE(x.E)
		if body == nil {
			return NodeDiag(rel)
		}
		star := trial.MustStar(NRE(body, rel), [3]trial.Pos{trial.L1, trial.L2, trial.R3},
			trial.Cond{Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L3), trial.P(trial.R1))}}, false)
		return trial.Union{L: NodeDiag(rel), R: star}
	case nre.Nest:
		return rearrange(NRE(x.E, rel), [3]trial.Pos{trial.L1, trial.L1, trial.L1})
	}
	panic(fmt.Sprintf("translate: unknown NRE %T", e))
}

// RegexToNRE maps an RPQ regular expression to an equivalent (nesting-
// free) NRE, from which RPQ translates to TriAL* (Corollary 2).
func RegexToNRE(e rpq.Regex) nre.Expr {
	switch x := e.(type) {
	case rpq.Eps:
		return nre.Epsilon{}
	case rpq.Sym:
		return nre.Label{A: x.A, Inv: x.Inv}
	case rpq.Cat:
		return nre.Concat{L: RegexToNRE(x.L), R: RegexToNRE(x.R)}
	case rpq.Alt:
		return nre.Union{L: RegexToNRE(x.L), R: RegexToNRE(x.R)}
	case rpq.Star:
		return nre.Star{E: RegexToNRE(x.E)}
	case rpq.Plus:
		inner := RegexToNRE(x.E)
		return nre.Concat{L: inner, R: nre.Star{E: inner}}
	case rpq.Opt:
		return nre.Union{L: nre.Epsilon{}, R: RegexToNRE(x.E)}
	}
	panic(fmt.Sprintf("translate: unknown regex %T", e))
}

// RPQ translates a regular path query into TriAL*.
func RPQ(e rpq.Regex, rel string) trial.Expr {
	return NRE(RegexToNRE(e), rel)
}

// CNRE translates a conjunctive NRE using at most three variables into
// TriAL (Theorem 8, second part). The query's Free list must have exactly
// three entries (repetitions allowed); the resulting expression's triples
// are the answer tuples.
//
// The construction follows the proof: each atom's NRE relation is lifted
// to a relation over the full three-variable frame by joining with the
// universal relation U, and the lifted relations are intersected.
func CNRE(c *nre.CNRE, rel string) (trial.Expr, error) {
	vars := c.Vars()
	if len(vars) > 3 {
		return nil, fmt.Errorf("translate: CNRE uses %d variables; only 3 are supported (Theorem 8)", len(vars))
	}
	if len(c.Free) != 3 {
		return nil, fmt.Errorf("translate: CNRE must designate exactly 3 output slots, got %d", len(c.Free))
	}
	if len(c.Atoms) == 0 {
		return nil, fmt.Errorf("translate: CNRE has no atoms")
	}
	// Every free variable must occur in an atom: an unconstrained variable
	// would range over graph nodes in the CNRE semantics but over the
	// whole active domain (including labels) under the U-based lifting.
	inAtoms := map[string]bool{}
	for _, a := range c.Atoms {
		inAtoms[a.X] = true
		inAtoms[a.Y] = true
	}
	for _, v := range c.Free {
		if !inAtoms[v] {
			return nil, fmt.Errorf("translate: free variable %s does not occur in any atom", v)
		}
	}
	// The frame assigns every variable (free or existential) one of the
	// three positions; intersecting the lifted atom relations over the
	// frame keeps shared existential variables correlated.
	slot := map[string]trial.Pos{}
	framePos := [3]trial.Pos{trial.L1, trial.L2, trial.L3}
	for i, v := range vars {
		slot[v] = framePos[i]
	}
	var acc trial.Expr
	for _, a := range c.Atoms {
		lift, err := liftAtom(a, slot, rel)
		if err != nil {
			return nil, err
		}
		if acc == nil {
			acc = lift
		} else {
			acc = trial.Intersect(acc, lift)
		}
	}
	// Rearrange frame positions into the requested output slots. This
	// also projects away existential variables (set semantics collapses
	// their multiplicity) and duplicates repeated free variables.
	var out [3]trial.Pos
	for i, v := range c.Free {
		p, ok := slot[v]
		if !ok {
			return nil, fmt.Errorf("translate: free variable %s does not occur in any atom", v)
		}
		out[i] = p
	}
	return rearrange(acc, out), nil
}

// UCNRE translates a union of three-variable CNREs into TriAL (Theorem 8:
// "Unions of CNREs that use only three variables are strictly contained
// in TriAL*"). All disjuncts must share the same Free slots.
func UCNRE(qs []*nre.CNRE, rel string) (trial.Expr, error) {
	if len(qs) == 0 {
		return nil, fmt.Errorf("translate: empty UCNRE")
	}
	var acc trial.Expr
	for _, q := range qs {
		e, err := CNRE(q, rel)
		if err != nil {
			return nil, err
		}
		if acc == nil {
			acc = e
		} else {
			acc = trial.Union{L: acc, R: e}
		}
	}
	return acc, nil
}

// liftAtom turns one atom X —e→ Y into a relation over the frame
// (slot positions): the triples (v1, v2, v3) such that the components at
// slot[X] and slot[Y] are related by e and the remaining components range
// over the whole domain.
func liftAtom(a nre.CAtom, slot map[string]trial.Pos, rel string) (trial.Expr, error) {
	te := NRE(a.E, rel) // canonical {(u, u, v)}
	px, py := slot[a.X], slot[a.Y]
	if px == py {
		// X = Y: restrict to the diagonal of the relation first.
		te = trial.MustSelect(te, trial.Cond{Obj: []trial.ObjAtom{
			trial.Eq(trial.P(trial.L1), trial.P(trial.L3)),
		}})
	}
	// Join with U to fill the frame: the left operand contributes u at
	// position 1 and v at position 3; the right operand (U) supplies free
	// values for the remaining slots.
	// Build the output positions: slot p gets left 1 if p == px, left 3 if
	// p == py, otherwise the corresponding position of U.
	var out [3]trial.Pos
	uPos := []trial.Pos{trial.R1, trial.R2, trial.R3}
	for i, p := range [3]trial.Pos{trial.L1, trial.L2, trial.L3} {
		switch p {
		case px:
			out[i] = trial.L1
		case py:
			out[i] = trial.L3
		default:
			out[i] = uPos[i]
		}
	}
	return trial.MustJoin(te, out, trial.Cond{}, trial.U()), nil
}
