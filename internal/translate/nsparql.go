package translate

import (
	"fmt"

	"repro/internal/nsparql"
	"repro/internal/trial"
)

// This file translates nSPARQL path expressions into TriAL*, completing
// the §6.2 picture: nSPARQL's navigational core is NREs over the axes
// next/edge/node/self, and Proposition 2 of the paper shows TriAL*
// subsumes it when queries run directly over the triples of an RDF
// document (no σ(·) detour). The translation targets a store holding the
// document's triples (s, p, o) in one relation — rdf.Document.ToStore —
// and keeps the canonical representation of this package: a path
// expression denotes {(x, x, y) | (x, y) ∈ ⟦exp⟧}.
//
// The axes read the three rotations of the triple relation:
//
//	next = {(x, y) | ∃z (x, z, y) ∈ D}   test position: the predicate z
//	edge = {(x, y) | ∃z (x, y, z) ∈ D}   test position: the object z
//	node = {(x, y) | ∃z (z, x, y) ∈ D}   test position: the subject z
//	self = {(v, v) | v ∈ voc(D)}         test position: v itself
//
// and the star is reflexive over voc(D), the set of all resources of the
// document — subjects, predicates and objects alike — which is exactly
// the diagonal VocDiag below.

// VocDiag returns {(v, v, v) | v occurs in any position of rel}: the
// diagonal over nSPARQL's vocabulary voc(D). Unlike NodeDiag (which spans
// only subjects and objects, the node set of a graph encoding), VocDiag
// includes predicates, because nSPARQL navigation moves through them.
func VocDiag(rel string) trial.Expr {
	d := rearrange(trial.R(rel), [3]trial.Pos{trial.L1, trial.L1, trial.L1})
	for _, p := range []trial.Pos{trial.L2, trial.L3} {
		d = trial.Union{L: d, R: rearrange(trial.R(rel), [3]trial.Pos{p, p, p})}
	}
	return d
}

// NSPARQL translates an nSPARQL path expression (§2.2 of the paper;
// Pérez, Arenas & Gutierrez 2010) into TriAL* over the raw triple
// relation rel. The resulting expression's value is the canonical
// {(x, x, y) | (x, y) ∈ ⟦e⟧_D} for the document D stored in rel.
func NSPARQL(e nsparql.Expr, rel string) (trial.Expr, error) {
	switch x := e.(type) {
	case nsparql.Step:
		return nsparqlStep(x, rel)
	case nsparql.Seq:
		l, err := NSPARQL(x.L, rel)
		if err != nil {
			return nil, err
		}
		r, err := NSPARQL(x.R, rel)
		if err != nil {
			return nil, err
		}
		return trial.MustJoin(l, [3]trial.Pos{trial.L1, trial.L2, trial.R3},
			trial.Cond{Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L3), trial.P(trial.R1))}},
			r), nil
	case nsparql.Alt:
		l, err := NSPARQL(x.L, rel)
		if err != nil {
			return nil, err
		}
		r, err := NSPARQL(x.R, rel)
		if err != nil {
			return nil, err
		}
		return trial.Union{L: l, R: r}, nil
	case nsparql.Star:
		// nSPARQL's closure is reflexive over the whole vocabulary, not
		// just the endpoints of the inner relation; the body is
		// canonicalized first (canonical.go), and bare self steps drop
		// because the vocabulary diagonal subsumes them.
		body := starBodyNSPARQL(x.E)
		if body == nil {
			return VocDiag(rel), nil
		}
		inner, err := NSPARQL(body, rel)
		if err != nil {
			return nil, err
		}
		star := trial.MustStar(inner, [3]trial.Pos{trial.L1, trial.L2, trial.R3},
			trial.Cond{Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L3), trial.P(trial.R1))}}, false)
		return trial.Union{L: VocDiag(rel), R: star}, nil
	}
	return nil, fmt.Errorf("translate: unknown nSPARQL expression %T", e)
}

// MustNSPARQL is NSPARQL, panicking on error. Intended for statically
// known expressions (tests, examples).
func MustNSPARQL(e nsparql.Expr, rel string) trial.Expr {
	t, err := NSPARQL(e, rel)
	if err != nil {
		panic(err)
	}
	return t
}

// nsparqlStep translates one axis step. For the three triple axes the
// step reads a rotation of rel: the pair (x, y) comes from two positions
// and the axis test constrains the third. The self axis reads the
// vocabulary diagonal and tests the resource itself.
func nsparqlStep(s nsparql.Step, rel string) (trial.Expr, error) {
	// xPos, yPos, zPos: the positions of the step's source, target and
	// test component within a triple of rel.
	var xPos, yPos, zPos trial.Pos
	switch s.Axis {
	case nsparql.Next:
		xPos, yPos, zPos = trial.L1, trial.L3, trial.L2
	case nsparql.Edge:
		xPos, yPos, zPos = trial.L1, trial.L2, trial.L3
	case nsparql.Node:
		xPos, yPos, zPos = trial.L2, trial.L3, trial.L1
	case nsparql.Self:
		return nsparqlSelf(s, rel)
	default:
		return nil, fmt.Errorf("translate: unknown nSPARQL axis %v", s.Axis)
	}
	if s.Inv {
		xPos, yPos = yPos, xPos
	}
	base := trial.Expr(trial.R(rel))
	switch {
	case s.HasConst:
		base = trial.MustSelect(base, trial.Cond{Obj: []trial.ObjAtom{
			trial.Eq(trial.P(zPos), trial.Obj(s.Const)),
		}})
	case s.Nested != nil:
		// axis::[e]: keep triples whose test component has an e-successor,
		// i.e. lies in the domain of ⟦e⟧. The nested expression's domain
		// diagonal {(z, z, z)} is probed with the test position.
		nested, err := NSPARQL(s.Nested, rel)
		if err != nil {
			return nil, err
		}
		diag := rearrange(nested, [3]trial.Pos{trial.L1, trial.L1, trial.L1})
		return trial.MustJoin(trial.R(rel), [3]trial.Pos{xPos, xPos, yPos},
			trial.Cond{Obj: []trial.ObjAtom{trial.Eq(trial.P(zPos), trial.P(trial.R1))}},
			diag), nil
	}
	return rearrange(base, [3]trial.Pos{xPos, xPos, yPos}), nil
}

// nsparqlSelf translates the self axis: the vocabulary diagonal,
// restricted by the test if present. Inversion is a no-op on a diagonal.
func nsparqlSelf(s nsparql.Step, rel string) (trial.Expr, error) {
	switch {
	case s.HasConst:
		// self::a = {(a, a)} when a occurs in the document, else empty.
		return trial.MustSelect(VocDiag(rel), trial.Cond{Obj: []trial.ObjAtom{
			trial.Eq(trial.P(trial.L1), trial.Obj(s.Const)),
		}}), nil
	case s.Nested != nil:
		// self::[e] = {(v, v) | v ∈ dom(⟦e⟧)}; domains are subsets of the
		// vocabulary, so the nested domain diagonal is the whole answer.
		nested, err := NSPARQL(s.Nested, rel)
		if err != nil {
			return nil, err
		}
		return rearrange(nested, [3]trial.Pos{trial.L1, trial.L1, trial.L1}), nil
	}
	return VocDiag(rel), nil
}
