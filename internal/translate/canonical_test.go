package translate

import (
	"testing"

	"repro/internal/gxpath"
	"repro/internal/nre"
	"repro/internal/nsparql"
	"repro/internal/rpq"
)

// TestCanonicalStarBodies: nested stars, ε arms and bare self steps
// vanish before translation, so the emitted TriAL* has one flat star.
func TestCanonicalStarBodies(t *testing.T) {
	// (a*)* and a* translate identically.
	a := gxpath.Label{A: "a"}
	nested := Path(gxpath.Star{P: gxpath.Star{P: a}}, "E")
	flat := Path(gxpath.Star{P: a}, "E")
	if nested.String() != flat.String() {
		t.Errorf("GXPath (a*)* != a*:\n%s\n%s", nested, flat)
	}
	// (a u eps)* = a*.
	withEps := Path(gxpath.Star{P: gxpath.Union{L: a, R: gxpath.Eps{}}}, "E")
	if withEps.String() != flat.String() {
		t.Errorf("GXPath (a u eps)* != a*:\n%s\n%s", withEps, flat)
	}
	// eps* is just the node diagonal.
	if got := Path(gxpath.Star{P: gxpath.Eps{}}, "E"); got.String() != NodeDiag("E").String() {
		t.Errorf("GXPath eps* != node diagonal: %s", got)
	}

	// Same at the NRE level, which RPQ also routes through: (a?)* = a*.
	na := nre.Label{A: "a"}
	if got, want := NRE(nre.Star{E: nre.Star{E: na}}, "E"), NRE(nre.Star{E: na}, "E"); got.String() != want.String() {
		t.Errorf("NRE (a*)* != a*:\n%s\n%s", got, want)
	}
	opt := RPQ(rpq.Star{E: rpq.Opt{E: rpq.Sym{A: "a"}}}, "E")
	if want := RPQ(rpq.Star{E: rpq.Sym{A: "a"}}, "E"); opt.String() != want.String() {
		t.Errorf("RPQ (a?)* != a*:\n%s\n%s", opt, want)
	}

	// nSPARQL: (self | next::a)* = (next::a)*.
	step := nsparql.Step{Axis: nsparql.Next, HasConst: true, Const: "a"}
	self := nsparql.Step{Axis: nsparql.Self}
	got := MustNSPARQL(nsparql.Star{E: nsparql.Alt{L: self, R: step}}, "E")
	want := MustNSPARQL(nsparql.Star{E: step}, "E")
	if got.String() != want.String() {
		t.Errorf("nSPARQL (self|next::a)* != (next::a)*:\n%s\n%s", got, want)
	}
	// self* is the vocabulary diagonal.
	if got := MustNSPARQL(nsparql.Star{E: self}, "E"); got.String() != VocDiag("E").String() {
		t.Errorf("nSPARQL self* != voc diagonal: %s", got)
	}
}
