package translate

import (
	"repro/internal/gxpath"
	"repro/internal/nre"
	"repro/internal/nsparql"
)

// Canonical star bodies. All three frontend closures are reflexive
// (over the node set for the graph languages, the vocabulary for
// nSPARQL), so source-level identities let the translations emit one
// flat TriAL* star where a verbatim translation would nest closures:
//
//	(β*)*     = β*        nested stars unnest
//	(β ∪ ε)*  = β*        reflexive parts of the body are redundant
//	ε*        = ε         a pure-ε star is just the diagonal
//
// Rewriting here — before translation — is worthwhile beyond what the
// logical optimizer later does to the TriAL* tree: the translation of a
// nested star carries its own reflexive diagonal, so unnesting at the
// source level avoids ever materializing it.

// starBodyPath returns the body of a GXPath α* with nested stars
// unnested and ε arms removed; nil means the body is empty (the star is
// the node diagonal).
func starBodyPath(p gxpath.Path) gxpath.Path {
	switch x := p.(type) {
	case gxpath.Star:
		return starBodyPath(x.P)
	case gxpath.Eps:
		return nil
	case gxpath.Union:
		l, r := starBodyPath(x.L), starBodyPath(x.R)
		switch {
		case l == nil:
			return r
		case r == nil:
			return l
		}
		return gxpath.Union{L: l, R: r}
	}
	return p
}

// starBodyNRE is starBodyPath for nested regular expressions.
func starBodyNRE(e nre.Expr) nre.Expr {
	switch x := e.(type) {
	case nre.Star:
		return starBodyNRE(x.E)
	case nre.Epsilon:
		return nil
	case nre.Union:
		l, r := starBodyNRE(x.L), starBodyNRE(x.R)
		switch {
		case l == nil:
			return r
		case r == nil:
			return l
		}
		return nre.Union{L: l, R: r}
	}
	return e
}

// starBodyNSPARQL is the nSPARQL variant: a bare self step (no constant,
// no nested test) is the vocabulary diagonal, which the reflexive
// closure contributes anyway.
func starBodyNSPARQL(e nsparql.Expr) nsparql.Expr {
	switch x := e.(type) {
	case nsparql.Star:
		return starBodyNSPARQL(x.E)
	case nsparql.Step:
		if x.Axis == nsparql.Self && !x.HasConst && x.Nested == nil && !x.Inv {
			return nil
		}
	case nsparql.Alt:
		l, r := starBodyNSPARQL(x.L), starBodyNSPARQL(x.R)
		switch {
		case l == nil:
			return r
		case r == nil:
			return l
		}
		return nsparql.Alt{L: l, R: r}
	}
	return e
}
