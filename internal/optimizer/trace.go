package optimizer

import (
	"fmt"
	"strings"
)

// RuleHit records how many times one rewrite rule fired during an
// Optimize call.
type RuleHit struct {
	Rule  string `json:"rule"`
	Count int    `json:"count"`
}

// Trace records what the optimizer did to one expression: which rules
// fired (in first-fire order), how many passes the rewrite loop took,
// and the node counts before and after. The engine attaches the trace to
// every prepared plan; Engine.Explain and the server's /explain render
// it, and internal/query aggregates the per-rule counts into the
// rewrite-hit counters the /stats endpoint reports.
type Trace struct {
	// InputNodes and OutputNodes are trial.Size of the expression before
	// and after rewriting (the |e| of the paper's complexity bounds).
	InputNodes  int `json:"input_nodes"`
	OutputNodes int `json:"output_nodes"`
	// Passes is the number of bottom-up rewrite passes run (the loop
	// stops when a pass changes nothing).
	Passes int `json:"passes"`

	hits  map[string]int
	order []string
}

func (t *Trace) hit(rule string) {
	if t.hits == nil {
		t.hits = make(map[string]int)
	}
	if t.hits[rule] == 0 {
		t.order = append(t.order, rule)
	}
	t.hits[rule]++
}

// Hits returns the rules that fired, in first-fire order.
func (t *Trace) Hits() []RuleHit {
	out := make([]RuleHit, 0, len(t.order))
	for _, r := range t.order {
		out = append(out, RuleHit{Rule: r, Count: t.hits[r]})
	}
	return out
}

// Total returns the total number of rule applications.
func (t *Trace) Total() int {
	n := 0
	for _, c := range t.hits {
		n += c
	}
	return n
}

// Changed reports whether any rule fired.
func (t *Trace) Changed() bool { return len(t.hits) > 0 }

// String renders the trace as a single line, the form Engine.Explain and
// the server's /explain prepend to the physical plan:
//
//	rewrites[v1]: fuse-selections x2, dedupe-union x1 (17 -> 9 nodes, 3 passes)
//	rewrites[v1]: none
func (t *Trace) String() string {
	if t == nil {
		return fmt.Sprintf("rewrites[v%d]: off", Version)
	}
	if !t.Changed() {
		return fmt.Sprintf("rewrites[v%d]: none", Version)
	}
	parts := make([]string, 0, len(t.order))
	for _, h := range t.Hits() {
		parts = append(parts, fmt.Sprintf("%s x%d", h.Rule, h.Count))
	}
	return fmt.Sprintf("rewrites[v%d]: %s (%d -> %d nodes, %d passes)",
		Version, strings.Join(parts, ", "), t.InputNodes, t.OutputNodes, t.Passes)
}
