package optimizer_test

import (
	"fmt"

	"repro/internal/optimizer"
	"repro/internal/trial"
)

// ExampleOptimizer_Optimize rewrites an expression and reports what the
// rules did: the duplicate union arm drops by idempotence, leaving the
// selection over a single scan.
func ExampleOptimizer_Optimize() {
	x, err := trial.Parse("sigma[1=2](union(E, E))")
	if err != nil {
		panic(err)
	}
	out, trace := optimizer.New(nil).Optimize(x)
	fmt.Println(out)
	fmt.Println(trace)
	// Output:
	// sigma[1=2](E)
	// rewrites[v1]: dedupe-union x1 (4 -> 2 nodes, 2 passes)
}
