package optimizer

import (
	"math"
	"testing"

	"repro/internal/trial"
)

// triangleExpr is the paper-style triangle query over E:
// join[1,2,3; 3=1',1=3'](join[1,3,3'; 3=1'](E, E), E).
func triangleExpr() trial.Join {
	inner := trial.MustJoin(trial.R("E"), [3]trial.Pos{trial.L1, trial.L3, trial.R3},
		trial.Cond{Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L3), trial.P(trial.R1))}},
		trial.R("E"))
	return trial.MustJoin(inner, [3]trial.Pos{trial.L1, trial.L2, trial.L3},
		trial.Cond{Obj: []trial.ObjAtom{
			trial.Eq(trial.P(trial.L3), trial.P(trial.R1)),
			trial.Eq(trial.P(trial.L1), trial.P(trial.R3)),
		}},
		trial.R("E"))
}

// diamondExpr closes a 4-cycle: two 2-hop paths glued at both endpoints.
func diamondExpr() trial.Join {
	path := func() trial.Join {
		return trial.MustJoin(trial.R("E"), [3]trial.Pos{trial.L1, trial.L3, trial.R3},
			trial.Cond{Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L3), trial.P(trial.R1))}},
			trial.R("E"))
	}
	return trial.MustJoin(path(), [3]trial.Pos{trial.L1, trial.L2, trial.L3},
		trial.Cond{Obj: []trial.ObjAtom{
			trial.Eq(trial.P(trial.L3), trial.P(trial.R1)),
			trial.Eq(trial.P(trial.L1), trial.P(trial.R3)),
		}},
		path())
}

// chainExpr is the acyclic 3-hop path join: connected but not cyclic.
func chainExpr() trial.Join {
	inner := trial.MustJoin(trial.R("E"), [3]trial.Pos{trial.L1, trial.L2, trial.R3},
		trial.Cond{Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L3), trial.P(trial.R1))}},
		trial.R("E"))
	return trial.MustJoin(inner, [3]trial.Pos{trial.L1, trial.L2, trial.R3},
		trial.Cond{Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L3), trial.P(trial.R1))}},
		trial.R("E"))
}

func TestFlattenJoinTriangle(t *testing.T) {
	mj, ok := FlattenJoin(triangleExpr())
	if !ok {
		t.Fatal("FlattenJoin rejected the triangle query")
	}
	if len(mj.Atoms) != 3 {
		t.Fatalf("atoms = %v, want 3 occurrences of E", mj.Atoms)
	}
	for _, a := range mj.Atoms {
		if a != "E" {
			t.Fatalf("atoms = %v, want all E", mj.Atoms)
		}
	}
	if len(mj.Levels) != 2 {
		t.Fatalf("levels = %d, want 2", len(mj.Levels))
	}
	// Root output is (a, b, c): subject of atom 0, its object (= subject
	// of atom 1), and atom 1's object (= subject of atom 2).
	wantOut := [3]Slot{{0, 0}, {0, 2}, {1, 2}}
	if mj.Out != wantOut {
		t.Fatalf("Out = %v, want %v", mj.Out, wantOut)
	}
	// The three cycle variables, each spanning two atoms.
	wantClasses := [][]Slot{
		{{0, 0}, {2, 2}},
		{{0, 2}, {1, 0}},
		{{1, 2}, {2, 0}},
	}
	if len(mj.Classes) != len(wantClasses) {
		t.Fatalf("classes = %v, want %v", mj.Classes, wantClasses)
	}
	for i, cls := range mj.Classes {
		if len(cls) != 2 || cls[0] != wantClasses[i][0] || cls[1] != wantClasses[i][1] {
			t.Fatalf("classes = %v, want %v", mj.Classes, wantClasses)
		}
	}
	if !mj.CyclicConnected() {
		t.Fatal("triangle not recognized as cyclic and connected")
	}
}

func TestFlattenJoinDiamond(t *testing.T) {
	mj, ok := FlattenJoin(diamondExpr())
	if !ok {
		t.Fatal("FlattenJoin rejected the diamond query")
	}
	if len(mj.Atoms) != 4 || len(mj.Levels) != 3 {
		t.Fatalf("atoms = %v, levels = %d, want 4 atoms and 3 levels", mj.Atoms, len(mj.Levels))
	}
	if len(mj.Classes) != 4 {
		t.Fatalf("classes = %v, want the 4 cycle variables", mj.Classes)
	}
	if !mj.CyclicConnected() {
		t.Fatal("diamond not recognized as cyclic and connected")
	}
}

func TestFlattenJoinChainIsAcyclic(t *testing.T) {
	mj, ok := FlattenJoin(chainExpr())
	if !ok {
		t.Fatal("FlattenJoin rejected the chain query")
	}
	if mj.CyclicConnected() {
		t.Fatal("acyclic chain misclassified as cyclic")
	}
}

func TestFlattenJoinRejections(t *testing.T) {
	// Two atoms: below the flattening floor.
	two := trial.MustJoin(trial.R("E"), [3]trial.Pos{trial.L1, trial.L2, trial.R3},
		trial.Cond{Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L3), trial.P(trial.R1))}},
		trial.R("E"))
	if _, ok := FlattenJoin(two); ok {
		t.Fatal("FlattenJoin accepted a two-atom join")
	}
	// A non-relation leaf (Universe).
	u := trial.MustJoin(chainExpr(), [3]trial.Pos{trial.L1, trial.L2, trial.L3},
		trial.Cond{Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L3), trial.P(trial.R1))}},
		trial.U())
	if _, ok := FlattenJoin(u); ok {
		t.Fatal("FlattenJoin accepted a Universe leaf")
	}
	// Five atoms: above the ceiling.
	five := trial.MustJoin(chainExpr(), [3]trial.Pos{trial.L1, trial.L2, trial.R3},
		trial.Cond{Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L3), trial.P(trial.R1))}},
		chainExpr())
	if _, ok := FlattenJoin(five); ok {
		t.Fatal("FlattenJoin accepted a six-atom join")
	}
	// A projection-shaped self-join belongs to the projection operator.
	proj := projection(trial.R("E"), [3]int{2, 1, 0})
	outer := trial.MustJoin(proj, [3]trial.Pos{trial.L1, trial.L2, trial.R3},
		trial.Cond{Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L3), trial.P(trial.R1))}},
		trial.R("E"))
	if _, ok := FlattenJoin(outer); ok {
		t.Fatal("FlattenJoin accepted a projection-shaped inner join")
	}
}

func TestAGMCycleBound(t *testing.T) {
	if got := AGMCycleBound([]float64{100, 100, 100}); math.Abs(got-1000) > 1e-9 {
		t.Fatalf("AGMCycleBound(100,100,100) = %v, want 1000 (N^{3/2})", got)
	}
	if got := AGMCycleBound(nil); got != 1 {
		t.Fatalf("AGMCycleBound() = %v, want 1", got)
	}
}
