package optimizer

import (
	"math"
	"sort"

	"repro/internal/trial"
)

// This file recognizes cascades of triple joins as one multiway join over
// base relations — the logical shape behind the engine's worst-case-
// optimal leapfrog triejoin. A TriAL join tree like the triangle query
//
//	join[1,2,3; 3=1',1=3'](join[1,3,3'; 3=1'](E, E), E)
//
// is, seen as a conjunctive query, E(a,_,b) ∧ E(b,_,c) ∧ E(c,_,a): three
// atoms whose join conditions tie components into shared variables, here
// forming a cycle. Binary join plans are provably suboptimal on such
// cyclic shapes — any pairwise join materializes an intermediate of size
// Θ(N²) on a worst-case instance whose final output is only O(N^{3/2})
// (the AGM bound; Atserias–Grohe–Marx 2008, Ngo–Porat–Ré–Rudra 2012).
// A leapfrog triejoin (Veldhuizen 2014) that intersects one variable at a
// time across all atoms meets the bound. FlattenJoin extracts the atoms,
// the variable classes, and the per-level residual conditions the engine
// needs to run that algorithm while preserving the binary semantics
// exactly.

// Slot names one component of one leaf atom of a flattened join: the
// Comp'th position (0..2) of the Atom'th base-relation occurrence.
type Slot struct {
	Atom, Comp int
}

// JoinLevel is one binary join node of the flattened cascade, with the
// provenance of both operands resolved down to leaf slots: LProv[i] is
// the leaf slot the left operand's component i carries, likewise RProv.
// Given a full assignment of leaf triples, the engine reconstructs each
// level's operand triples through the provenance and re-checks Cond, so
// arbitrary conditions (inequalities, constants, data-value atoms) ride
// along as residual filters without restricting recognition.
type JoinLevel struct {
	Out  [3]trial.Pos
	Cond trial.Cond
	// LProv, RProv map each operand component to the leaf slot it reads.
	LProv, RProv [3]Slot
	// LAtom, RAtom are the operand's leaf atom index when the operand is
	// a base relation, -1 when it is itself a join level.
	LAtom, RAtom int
	// LLevel, RLevel are the operand's index into MultiJoin.Levels when
	// the operand is an inner join, -1 when it is a leaf. Cost models
	// replay the cascade through these links.
	LLevel, RLevel int
}

// MultiJoin is a cascade of triple joins flattened over its base-relation
// leaves: the atoms, the binary levels in post-order (root last), the
// root's output provenance, and the equivalence classes of leaf slots
// tied together by object-equality atoms — the variables of the
// conjunctive-query view.
type MultiJoin struct {
	// Atoms lists the leaf relation names in left-to-right order; the
	// same name may occur more than once (self-joins).
	Atoms []string
	// Levels holds the binary join levels in post-order; the last level
	// is the root of the cascade.
	Levels []JoinLevel
	// Out is the provenance of the root's three output components.
	Out [3]Slot
	// Classes are the slot equivalence classes induced by the levels'
	// cross- and same-side object equalities, restricted to classes of
	// at least two slots, each sorted by (Atom, Comp) and the list
	// sorted by its first slot. These are the join variables.
	Classes [][]Slot
}

// Flattening bounds: at least three atoms (two-atom joins are exactly
// what the binary strategies already handle), at most four (triangles
// and diamonds — the cyclic shapes of the bench tier — while keeping
// the engine's per-variable candidate tracking on the stack).
const (
	minFlattenAtoms = 3
	maxFlattenAtoms = 4
)

// FlattenJoin flattens a cascade of joins over base relations into a
// MultiJoin. It succeeds only when every leaf is a plain relation
// reference and the tree has minFlattenAtoms..maxFlattenAtoms leaves;
// projection-shaped self-joins (identity conditions) are left to the
// projection operator and abort the flattening.
func FlattenJoin(j trial.Join) (*MultiJoin, bool) {
	mj := &MultiJoin{}
	// walk returns the subtree's output provenance plus its identity as
	// an operand: (leaf atom index, -1) for relations, (-1, level index)
	// for joins.
	var walk func(e trial.Expr) ([3]Slot, int, int, bool)
	walk = func(e trial.Expr) ([3]Slot, int, int, bool) {
		switch n := e.(type) {
		case trial.Rel:
			if len(mj.Atoms) >= maxFlattenAtoms {
				return [3]Slot{}, 0, 0, false
			}
			i := len(mj.Atoms)
			mj.Atoms = append(mj.Atoms, n.Name)
			return [3]Slot{{i, 0}, {i, 1}, {i, 2}}, i, -1, true
		case trial.Join:
			if _, ok := ProjectionShape(n); ok {
				return [3]Slot{}, 0, 0, false
			}
			lp, la, ll, ok := walk(n.L)
			if !ok {
				return [3]Slot{}, 0, 0, false
			}
			rp, ra, rl, ok := walk(n.R)
			if !ok {
				return [3]Slot{}, 0, 0, false
			}
			mj.Levels = append(mj.Levels, JoinLevel{
				Out: n.Out, Cond: n.Cond,
				LProv: lp, RProv: rp,
				LAtom: la, RAtom: ra,
				LLevel: ll, RLevel: rl,
			})
			var prov [3]Slot
			for i, p := range n.Out {
				if p.Left() {
					prov[i] = lp[p.Index()]
				} else {
					prov[i] = rp[p.Index()]
				}
			}
			return prov, -1, len(mj.Levels) - 1, true
		}
		return [3]Slot{}, 0, 0, false
	}
	prov, _, _, ok := walk(j)
	if !ok || len(mj.Atoms) < minFlattenAtoms {
		return nil, false
	}
	mj.Out = prov
	mj.buildClasses()
	return mj, true
}

// slotAt resolves a join position of a level to the leaf slot it reads.
func (lv JoinLevel) slotAt(p trial.Pos) Slot {
	if p.Left() {
		return lv.LProv[p.Index()]
	}
	return lv.RProv[p.Index()]
}

// buildClasses unions leaf slots connected by object-equality atoms
// (position-to-position, not negated) of any level, then materializes
// the classes of size ≥ 2 in deterministic order.
func (mj *MultiJoin) buildClasses() {
	n := 3 * len(mj.Atoms)
	uf := newUnionFind(n)
	id := func(s Slot) int { return 3*s.Atom + s.Comp }
	for _, lv := range mj.Levels {
		for _, a := range lv.Cond.Obj {
			if a.Neq || a.L.IsConst || a.R.IsConst {
				continue
			}
			uf.union(id(lv.slotAt(a.L.Pos)), id(lv.slotAt(a.R.Pos)))
		}
	}
	groups := map[int][]Slot{}
	for i := 0; i < n; i++ {
		groups[uf.find(i)] = append(groups[uf.find(i)], Slot{Atom: i / 3, Comp: i % 3})
	}
	mj.Classes = mj.Classes[:0]
	for _, g := range groups {
		if len(g) < 2 {
			continue
		}
		sort.Slice(g, func(i, j int) bool {
			if g[i].Atom != g[j].Atom {
				return g[i].Atom < g[j].Atom
			}
			return g[i].Comp < g[j].Comp
		})
		mj.Classes = append(mj.Classes, g)
	}
	sort.Slice(mj.Classes, func(i, j int) bool {
		a, b := mj.Classes[i][0], mj.Classes[j][0]
		if a.Atom != b.Atom {
			return a.Atom < b.Atom
		}
		return a.Comp < b.Comp
	})
}

// CyclicConnected reports whether the multiway join's atom graph — atoms
// as vertices, each variable class connecting the atoms it spans — is
// connected and contains a cycle. This is the shape test for the
// worst-case-optimal route: on acyclic (alpha-acyclic chain/star) joins
// a well-ordered binary plan is already optimal (Yannakakis), while on
// cyclic shapes every binary plan can exceed the AGM output bound and
// the leapfrog intersection cannot.
func (mj *MultiJoin) CyclicConnected() bool {
	uf := newUnionFind(len(mj.Atoms))
	cyclic := false
	for _, cls := range mj.Classes {
		last := -1
		for _, s := range cls {
			if s.Atom == last {
				continue // several slots of one atom in the class
			}
			if last >= 0 && !uf.union(last, s.Atom) {
				cyclic = true
			}
			last = s.Atom
		}
	}
	root := uf.find(0)
	for i := 1; i < len(mj.Atoms); i++ {
		if uf.find(i) != root {
			return false
		}
	}
	return cyclic
}

// AGMCycleBound returns the AGM output bound for a cycle-shaped join of
// relations with the given cardinalities: assigning fractional edge-cover
// weight ½ to every atom covers each variable of a cycle (every variable
// touches exactly two atoms), so |output| ≤ ∏ |Rᵢ|^{1/2}. For the
// triangle this is the classic N^{3/2}. The planner uses it as the cost
// of the leapfrog route on shapes CyclicConnected accepts; on shapes
// where some variable touches more than two atoms it over-covers and the
// bound is merely looser, never invalid.
func AGMCycleBound(cards []float64) float64 {
	p := 1.0
	for _, c := range cards {
		p *= c
	}
	return math.Sqrt(p)
}

// MergeCostFactor scales the linear pass of a sort-merge join relative
// to a hash join over the same inputs: both are O(|L|+|R|) in tuples
// touched, but the merge walks two already-materialized permutation
// indexes in order — no hash table build, no per-tuple key string — so
// the planner charges it half the per-tuple cost.
const MergeCostFactor = 0.5

// unionFind is a standard disjoint-set forest with path halving.
type unionFind struct {
	parent []int
}

func newUnionFind(n int) *unionFind {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &unionFind{parent: p}
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// union merges the sets of a and b, reporting false when they were
// already in the same set (the redundant edge that witnesses a cycle).
func (u *unionFind) union(a, b int) bool {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return false
	}
	u.parent[ra] = rb
	return true
}
