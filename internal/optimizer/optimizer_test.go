package optimizer

import (
	"strings"
	"testing"

	"repro/internal/genstore"
	"repro/internal/trial"
)

func mustParse(t *testing.T, q string) trial.Expr {
	t.Helper()
	x, err := trial.Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	return x
}

// optimizeString runs the stats-free optimizer over a parsed query and
// returns the rewritten query text and the trace.
func optimizeString(t *testing.T, q string) (string, *Trace) {
	t.Helper()
	out, tr := (&Optimizer{}).Optimize(mustParse(t, q))
	return out.String(), tr
}

func wantRule(t *testing.T, tr *Trace, rule string) {
	t.Helper()
	for _, h := range tr.Hits() {
		if h.Rule == rule {
			return
		}
	}
	t.Errorf("trace %v does not include rule %q", tr.Hits(), rule)
}

func TestSelectionRules(t *testing.T) {
	cases := []struct {
		name, in, want, rule string
	}{
		{
			name: "fuse-selections",
			in:   "sigma[1=2](sigma[2=3](E))",
			want: "sigma[2=3,1=2](E)",
			rule: "fuse-selections",
		},
		{
			name: "push-select-union",
			in:   "sigma[1=2](union(A, B))",
			want: "union(sigma[1=2](A), sigma[1=2](B))",
			rule: "push-select-union",
		},
		{
			name: "push-select-diff",
			in:   "sigma[1=2](diff(A, B))",
			want: "diff(sigma[1=2](A), B)",
			rule: "push-select-diff",
		},
		{
			name: "fuse-select-join",
			in:   "sigma[1=a](join[1,2,3'; 3=1'](A, B))",
			want: "join[1,2,3'; 3=1',1=a](A, B)",
			rule: "fuse-select-join",
		},
		{
			// The selection over the projection's output position 1 (fed
			// from component 3) becomes a selection on position 3 of the
			// operand, below the projection.
			name: "push-select-projection",
			in:   "sigma[1=a](join[3,3,1; 1=1',2=2',3=3'](E, E))",
			want: "join[3,3,1; 1=1',2=2',3=3'](sigma[3=a](E), sigma[3=a](E))",
			rule: "push-select-projection",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, tr := optimizeString(t, tc.in)
			if got != tc.want {
				t.Errorf("Optimize(%s) = %s, want %s", tc.in, got, tc.want)
			}
			wantRule(t, tr, tc.rule)
		})
	}
}

func TestUnionRules(t *testing.T) {
	got, tr := optimizeString(t, "union(union(B, A), union(A, B))")
	if got != "union(A, B)" {
		t.Errorf("union dedupe/canonicalize = %s, want union(A, B)", got)
	}
	wantRule(t, tr, "dedupe-union")
	wantRule(t, tr, "canonicalize-union")
}

func TestProjectionRules(t *testing.T) {
	// rearrange(rearrange(E, {3,3,1}), {3,3,1}): component 3 of the outer
	// reads component 1 of the inner, which reads component 3 of E — the
	// two compose to {1,1,3}.
	in := "join[3,3,1; 1=1',2=2',3=3'](join[3,3,1; 1=1',2=2',3=3'](E, E), join[3,3,1; 1=1',2=2',3=3'](E, E))"
	got, tr := optimizeString(t, in)
	if got != "join[1,1,3; 1=1',2=2',3=3'](E, E)" {
		t.Errorf("compose-projections = %s", got)
	}
	wantRule(t, tr, "compose-projections")

	// Primed output positions of an identity self-join normalize to the
	// left side.
	got, tr = optimizeString(t, "join[1,2',3; 1=1',2=2',3=3'](E, E)")
	if got != "join[1,2,3; 1=1',2=2',3=3'](E, E)" {
		t.Errorf("normalize-projection = %s", got)
	}
	wantRule(t, tr, "normalize-projection")
}

func TestStarRules(t *testing.T) {
	// Directly nested composition stars collapse.
	got, tr := optimizeString(t, "rstar[1,2,3'; 3=1'](rstar[1,2,3'; 3=1'](E))")
	if got != "rstar[1,2,3'; 3=1'](E)" {
		t.Errorf("collapse-nested-star = %s", got)
	}
	wantRule(t, tr, "collapse-nested-star")

	// A starred arm inside a starred union unnests.
	got, tr = optimizeString(t, "rstar[1,2,3'; 3=1'](union(A, rstar[1,2,3'; 3=1'](B)))")
	if got != "rstar[1,2,3'; 3=1'](union(A, B))" {
		t.Errorf("unnest-star-in-union = %s", got)
	}
	wantRule(t, tr, "unnest-star-in-union")

	// Left composition closures canonicalize to right closures.
	got, tr = optimizeString(t, "lstar[1,2,3'; 3=1'](E)")
	if got != "rstar[1,2,3'; 3=1'](E)" {
		t.Errorf("canonicalize-left-star = %s", got)
	}
	wantRule(t, tr, "canonicalize-left-star")

	// Non-composition stars are untouched: the join keeps position 1' and
	// closure of such joins is not idempotent in general.
	in := "rstar[1',2,3'; 3=1'](rstar[1',2,3'; 3=1'](E))"
	if got, _ := optimizeString(t, in); got != in {
		t.Errorf("non-composition star rewritten: %s -> %s", in, got)
	}
}

func TestCommuteJoin(t *testing.T) {
	s := genstore.Chain(40, 1) // E has 40-ish triples
	s.Add("Small", "a", "p", "b")
	s.Add("Small", "b", "p", "c")

	o := New(s)
	// Small side on the left, big side on the right: commuted so the big
	// side is probed and the small side is built.
	x := mustParse(t, "join[1,2,3'; 3=1'](Small, E)")
	got, tr := o.Optimize(x)
	if got.String() != "join[1',2',3; 3'=1](E, Small)" {
		t.Errorf("commute-join = %s", got)
	}
	wantRule(t, tr, "commute-join")

	// Already well-ordered joins stay put.
	x = mustParse(t, "join[1,2,3'; 3=1'](E, Small)")
	if got, _ := o.Optimize(x); got.String() != "join[1,2,3'; 3=1'](E, Small)" {
		t.Errorf("well-ordered join commuted: %s", got)
	}

	// Without a cross-side key there is nothing to gain; no commute.
	x = mustParse(t, "join[1,2,3'](Small, E)")
	if got, _ := o.Optimize(x); got.String() != "join[1,2,3'](Small, E)" {
		t.Errorf("keyless join commuted: %s", got)
	}
}

func TestTraceRendering(t *testing.T) {
	_, tr := optimizeString(t, "sigma[1=2](union(A, A))")
	if !tr.Changed() || tr.Total() == 0 {
		t.Fatalf("trace did not record rewrites: %+v", tr.Hits())
	}
	s := tr.String()
	if !strings.Contains(s, "rewrites[v") || !strings.Contains(s, "dedupe-union") {
		t.Errorf("trace rendering = %q", s)
	}
	_, tr = optimizeString(t, "E")
	if tr.Changed() {
		t.Errorf("identity optimize recorded rules: %v", tr.Hits())
	}
	if got := tr.String(); !strings.Contains(got, "none") {
		t.Errorf("no-op trace rendering = %q", got)
	}
	var nilTrace *Trace
	if got := nilTrace.String(); !strings.Contains(got, "off") {
		t.Errorf("nil trace rendering = %q", got)
	}
}

func TestEstimate(t *testing.T) {
	s := genstore.Chain(10, 1)
	o := New(s)
	relCard := o.Estimate(trial.R(genstore.RelE))
	if relCard <= 0 {
		t.Fatalf("Estimate(E) = %v, want positive", relCard)
	}
	// A point selection on a base relation is estimated from distinct
	// counts: strictly smaller than the scan.
	sel := trial.MustSelect(trial.R(genstore.RelE), trial.Cond{Obj: []trial.ObjAtom{
		trial.Eq(trial.P(trial.L1), trial.Obj("n1")),
	}})
	if got := o.Estimate(sel); got >= relCard {
		t.Errorf("Estimate(point select) = %v, want < %v", got, relCard)
	}
	// Keyless joins estimate as products, keyed joins as the larger side.
	keyless := trial.MustJoin(trial.R(genstore.RelE), [3]trial.Pos{trial.L1, trial.L2, trial.R3},
		trial.Cond{}, trial.R(genstore.RelE))
	keyed := trial.MustJoin(trial.R(genstore.RelE), [3]trial.Pos{trial.L1, trial.L2, trial.R3},
		trial.Cond{Obj: []trial.ObjAtom{trial.Eq(trial.P(trial.L3), trial.P(trial.R1))}},
		trial.R(genstore.RelE))
	if o.Estimate(keyless) <= o.Estimate(keyed) {
		t.Errorf("keyless estimate %v not above keyed %v", o.Estimate(keyless), o.Estimate(keyed))
	}
}
