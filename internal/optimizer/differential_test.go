package optimizer

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/genstore"
	"repro/internal/trial"
	"repro/internal/triplestore"
)

// checkPreserves asserts that the optimizer (with and without
// statistics) does not change the relation an expression computes: the
// reference Evaluator must produce the identical triple set for the
// original and the rewritten expression.
func checkPreserves(t *testing.T, s *triplestore.Store, x trial.Expr) {
	t.Helper()
	ev := trial.NewEvaluator(s)
	want, wantErr := ev.Eval(x)
	for _, o := range []*Optimizer{New(s), {}} {
		opt, tr := o.Optimize(x)
		got, gotErr := trial.NewEvaluator(s).Eval(opt)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("error mismatch for %s -> %s: original=%v optimized=%v", x, opt, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if !got.Equal(want) {
			t.Fatalf("optimizer changed semantics:\n  original %s (%d triples)\n  rewritten %s (%d triples)\n  trace %s",
				x, want.Len(), opt, got.Len(), tr)
		}
	}
}

// TestDifferentialNamedQueries: the paper's named queries survive
// optimization on every fixture store.
func TestDifferentialNamedQueries(t *testing.T) {
	stores := map[string]*triplestore.Store{
		"transport": fixtures.Transport(),
		"example3":  fixtures.Example3(),
		"social":    fixtures.SocialNetwork(),
		"chain":     genstore.Chain(16, 2),
		"grid":      genstore.Grid(4, 4),
	}
	queries := []trial.Expr{
		trial.Example2(fixtures.RelE),
		trial.Example2Extended(fixtures.RelE),
		trial.ReachRight(fixtures.RelE),
		trial.ReachUp(fixtures.RelE),
		trial.SameLabelReach(fixtures.RelE),
		trial.QueryQ(fixtures.RelE),
	}
	for name, s := range stores {
		t.Run(name, func(t *testing.T) {
			for _, q := range queries {
				checkPreserves(t, s, q)
			}
		})
	}
}

// TestDifferentialRandomExprs: random TriAL and TriAL* expressions are
// semantics-preserved under optimization.
func TestDifferentialRandomExprs(t *testing.T) {
	stores := map[string]*triplestore.Store{
		"random": genstore.Random(rand.New(rand.NewSource(21)), 10, 30, 3),
		"chain":  genstore.Chain(8, 2),
		"social": genstore.Social(rand.New(rand.NewSource(22)), 8, 16, 3, 3),
	}
	configs := []genstore.ExprOptions{
		{Relations: []string{genstore.RelE}, MaxDepth: 3, EqualityOnly: true},
		{Relations: []string{genstore.RelE}, MaxDepth: 4},
		{Relations: []string{genstore.RelE}, MaxDepth: 3, AllowValueConds: true},
		{Relations: []string{genstore.RelE}, MaxDepth: 3, AllowStar: true},
	}
	for name, s := range stores {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(5))
			for ci, cfg := range configs {
				for i := 0; i < 50; i++ {
					x := genstore.RandomExpr(rng, cfg)
					t.Run(fmt.Sprintf("cfg%d_%d", ci, i), func(t *testing.T) {
						checkPreserves(t, s, x)
					})
				}
			}
		})
	}
}

// TestDifferentialCommute: joins between relations of very different
// sizes — the shape the commute rule fires on — are semantics-preserved,
// in both orientations and with conditions that mirror non-trivially
// (constants, inequalities, value atoms, primed selections fused in).
func TestDifferentialCommute(t *testing.T) {
	s := genstore.Chain(30, 2)
	s.Add("Small", "o1", "p0", "o5")
	s.Add("Small", "o5", "p1", "o9")
	s.Add("Small", "o2", "p0", "o2")
	queries := []string{
		"join[1,2,3'; 3=1'](Small, E)",
		"join[1,2,3'; 3=1'](E, Small)",
		"join[3',2,1; 3=1',2!=2'](Small, E)",
		"join[1,2',3; 1=1',2=p0](Small, E)",
		"join[1,2,3'; 3=1',p(2)=p(2')](Small, E)",
		"sigma[1=o1](join[1,2,3'; 3=1'](Small, E))",
	}
	for _, q := range queries {
		x, err := trial.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		// The rule must actually fire for the Small-on-the-left shapes.
		if _, tr := New(s).Optimize(x); q == queries[0] && tr.Hits() == nil {
			t.Fatalf("commute differential case did not trigger any rewrite")
		}
		checkPreserves(t, s, x)
	}
}

// TestDifferentialTranslatedShapes: the rearrange/diagonal/star shapes
// the language translations emit — the shapes the projection and star
// rules exist for — survive optimization. Exercised as raw TriAL* text
// so this package needs no translate import.
func TestDifferentialTranslatedShapes(t *testing.T) {
	queries := []string{
		// NodeDiag: union of two rearranges of E.
		"union(join[1,1,1; 1=1',2=2',3=3'](E, E), join[3,3,3; 1=1',2=2',3=3'](E, E))",
		// A canonical label step: select-then-rearrange.
		"join[1,1,3; 1=1',2=2',3=3'](sigma[2=a](E), sigma[2=a](E))",
		// Reflexive closure of a composition star over a union base.
		"union(join[1,1,1; 1=1',2=2',3=3'](E, E), rstar[1,2,3'; 3=1'](union(E, join[3,3,1; 1=1',2=2',3=3'](E, E))))",
		// Nested reflexive stars, as (α*)* style queries translate.
		"rstar[1,2,3'; 3=1'](union(join[1,1,1; 1=1',2=2',3=3'](E, E), rstar[1,2,3'; 3=1'](E)))",
		// Selection over a reach star (the seed-filter hoist shape).
		"sigma[1=a](rstar[1,2,3'; 3=1'](E))",
		"sigma[2=p0](rstar[1,2,3'; 3=1',2=2'](E))",
	}
	stores := map[string]*triplestore.Store{
		"transport": fixtures.Transport(),
		"chain":     genstore.Chain(10, 2),
		"grid":      genstore.Grid(4, 4),
	}
	for name, s := range stores {
		t.Run(name, func(t *testing.T) {
			for _, q := range queries {
				x, err := trial.Parse(q)
				if err != nil {
					t.Fatalf("parse %q: %v", q, err)
				}
				checkPreserves(t, s, x)
			}
		})
	}
}
