package optimizer

import (
	"repro/internal/trial"
	"repro/internal/triplestore"
)

// Cardinality estimation for the cost-based rules. The estimates are the
// usual System R-style heuristics grounded in the per-relation statistics
// of internal/triplestore (cardinalities and per-position distinct
// counts); without a store they fall back to neutral constants so the
// stats-free rules still apply deterministically.

const (
	// defaultRelCard is the assumed relation size when no statistics are
	// available.
	defaultRelCard = 1000
	// starGrowth matches the physical planner's guess for how much a
	// Kleene closure grows its base.
	starGrowth = 8
	// commuteRatio is how lopsided a join must be before the commute rule
	// mirrors it: the estimated build side (right) must exceed the probe
	// side (left) by this factor. A strict ratio > 1 also guarantees the
	// rule cannot oscillate between passes.
	commuteRatio = 2
)

// Estimate returns the optimizer's output-cardinality estimate for e.
func (o *Optimizer) Estimate(e trial.Expr) float64 {
	switch x := e.(type) {
	case trial.Rel:
		if o.hasStats {
			return float64(o.stats.Rel(x.Name).Triples)
		}
		return defaultRelCard
	case trial.Universe:
		d := float64(defaultRelCard)
		if o.store != nil {
			d = float64(o.store.NumObjects())
		}
		return d * d * d
	case trial.Select:
		return o.Estimate(x.E) * o.selectivity(x.Cond, x.E)
	case trial.Union:
		return o.Estimate(x.L) + o.Estimate(x.R)
	case trial.Diff:
		return o.Estimate(x.L)
	case trial.Join:
		if _, ok := ProjectionShape(x); ok {
			return o.Estimate(x.L)
		}
		l, r := o.Estimate(x.L), o.Estimate(x.R)
		if len(x.Cond.CrossObjEqualities())+len(x.Cond.CrossValEqualities()) == 0 {
			return l * r
		}
		if l > r {
			return l
		}
		return r
	case trial.Star:
		return o.Estimate(x.E) * starGrowth
	}
	return 1
}

// selectivity estimates the fraction of child's triples a selection
// condition keeps, using per-position distinct counts when the child is
// a base relation with statistics.
func (o *Optimizer) selectivity(c trial.Cond, child trial.Expr) float64 {
	if r, ok := child.(trial.Rel); ok && o.hasStats {
		return Selectivity(c, o.stats.Rel(r.Name))
	}
	return Selectivity(c, triplestore.RelStats{})
}

// Selectivity estimates the fraction of triples a selection condition
// keeps. Equality with a constant on position i of a relation with
// statistics keeps about 1/Distinct[i] (exact under uniformity); with
// the zero RelStats (no statistics) fixed factors apply. The physical
// planner in internal/engine shares this estimate.
func Selectivity(c trial.Cond, st triplestore.RelStats) float64 {
	var stats func(posIdx int) float64 // per-position distinct count, or 0
	if st.Triples > 0 {
		stats = func(posIdx int) float64 { return float64(st.Distinct[posIdx]) }
	}
	sel := 1.0
	for _, a := range c.Obj {
		switch {
		case a.Neq:
			sel *= 0.9
		case a.L.IsConst && a.R.IsConst:
			// Constant against constant: decided statically.
			if a.L.Name != a.R.Name {
				sel *= 1e-6
			}
		case a.L.IsConst != a.R.IsConst:
			// position = constant: a point lookup on that position.
			pos := a.L.Pos
			if a.L.IsConst {
				pos = a.R.Pos
			}
			if stats != nil {
				if d := stats(pos.Index()); d >= 1 {
					sel *= 1 / d
					continue
				}
			}
			sel *= 0.1
		default:
			// position = position within one triple.
			sel *= 0.1
		}
	}
	for _, a := range c.Val {
		if a.Neq {
			sel *= 0.9
		} else {
			sel *= 0.5
		}
	}
	if sel < 1e-6 {
		sel = 1e-6
	}
	return sel
}
