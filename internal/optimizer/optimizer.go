package optimizer

import (
	"sort"

	"repro/internal/trial"
	"repro/internal/triplestore"
)

// Version identifies the rule set. It is part of internal/query's plan
// cache key, so changing the rules (and bumping the version) makes every
// cached plan unreachable instead of silently stale.
const Version = 1

// maxPasses bounds the rewrite-to-fixpoint loop. Each pushdown rule
// recurses into the expression it creates, so a pass normally reaches a
// local fixpoint on its own and the loop exits after two or three
// passes; the bound is a safety net, not a tuning knob.
const maxPasses = 8

// Optimizer rewrites TriAL* expressions using the algebraic identities
// of the paper, guided (for the cost-based rules) by the store's
// per-relation statistics. A nil-store Optimizer applies only the
// statistics-free rules. The zero value is usable.
type Optimizer struct {
	store    *triplestore.Store
	stats    triplestore.StoreStats
	hasStats bool
}

// New returns an optimizer over the store's current statistics snapshot
// (triplestore.Store.Stats). s may be nil, disabling the cost-based
// rules.
func New(s *triplestore.Store) *Optimizer {
	o := &Optimizer{store: s}
	if s != nil {
		o.stats = s.Stats()
		o.hasStats = true
	}
	return o
}

// Optimize rewrites e to fixpoint and reports what it did. The result
// computes exactly the same relation as e over every store consistent
// with the statistics contract (rewrites are semantics-preserving
// identities; statistics only steer cost-based choices, never
// correctness).
func (o *Optimizer) Optimize(e trial.Expr) (trial.Expr, *Trace) {
	tr := &Trace{InputNodes: trial.Size(e)}
	cur, prev := e, ""
	for pass := 0; pass < maxPasses; pass++ {
		rw := &rewriter{o: o, tr: tr}
		cur = rw.rewrite(cur)
		tr.Passes++
		s := cur.String()
		if s == prev {
			break
		}
		prev = s
	}
	tr.OutputNodes = trial.Size(cur)
	return cur, tr
}

// Optimize is the stats-free convenience form: the rewrites of a zero
// Optimizer, discarding the trace.
func Optimize(e trial.Expr) trial.Expr {
	out, _ := (&Optimizer{}).Optimize(e)
	return out
}

// rewriter is one bottom-up pass; it accumulates rule hits in the trace.
type rewriter struct {
	o  *Optimizer
	tr *Trace
}

func (p *rewriter) hit(rule string) { p.tr.hit(rule) }

func (p *rewriter) rewrite(e trial.Expr) trial.Expr {
	switch x := e.(type) {
	case trial.Rel, trial.Universe:
		return e
	case trial.Select:
		return p.rewriteSelect(x)
	case trial.Union:
		return p.rewriteUnion(x)
	case trial.Diff:
		return trial.Diff{L: p.rewrite(x.L), R: p.rewrite(x.R)}
	case trial.Join:
		return p.rewriteJoin(x)
	case trial.Star:
		return p.rewriteStar(x)
	}
	return e
}

// rewriteSelect pushes selections toward the leaves:
//
//	σ_∅(e)            → e                      drop-trivial-select
//	σ_c2(σ_c1(e))     → σ_{c1∧c2}(e)           fuse-selections
//	σ_c(e1 ∪ e2)      → σ_c(e1) ∪ σ_c(e2)      push-select-union
//	σ_c(e1 − e2)      → σ_c(e1) − e2           push-select-diff
//	σ_c(π_out(e))     → π_out(σ_{c∘out}(e))    push-select-projection
//	σ_c(e1 ✶_θ e2)    → e1 ✶_{θ∧c′} e2         fuse-select-join
//
// Fusing into a join re-indexes c through the join's output positions;
// equality atoms that reach the join condition become hash keys for the
// Proposition 4 strategy. Identity self-joins are excluded from fusion:
// they are projections, where pushing the selection below the projection
// (onto the single operand) keeps the pattern intact for the planner and
// filters earlier anyway.
func (p *rewriter) rewriteSelect(x trial.Select) trial.Expr {
	inner := p.rewrite(x.E)
	if x.Cond.Empty() {
		p.hit("drop-trivial-select")
		return inner
	}
	switch c := inner.(type) {
	case trial.Select:
		p.hit("fuse-selections")
		return p.rewrite(trial.Select{E: c.E, Cond: mergeConds(c.Cond, x.Cond)})
	case trial.Union:
		p.hit("push-select-union")
		return p.rewrite(trial.Union{
			L: trial.Select{E: c.L, Cond: x.Cond},
			R: trial.Select{E: c.R, Cond: x.Cond},
		})
	case trial.Diff:
		p.hit("push-select-diff")
		return trial.Diff{L: p.rewrite(trial.Select{E: c.L, Cond: x.Cond}), R: c.R}
	case trial.Join:
		if out, ok := ProjectionShape(c); ok {
			p.hit("push-select-projection")
			return p.rewrite(projection(trial.Select{E: c.L, Cond: reindexSelect(x.Cond, out)}, out))
		}
		p.hit("fuse-select-join")
		return p.rewrite(trial.Join{
			L:    c.L,
			R:    c.R,
			Out:  c.Out,
			Cond: mergeConds(c.Cond, reindexThroughOut(x.Cond, c.Out)),
		})
	}
	return trial.Select{E: inner, Cond: x.Cond}
}

// rewriteUnion flattens nested unions, drops duplicate arms (syntactic
// idempotence, e ∪ e → e) and orders the arms canonically so that
// structurally equal unions written in different orders share plans and
// common subexpressions.
func (p *rewriter) rewriteUnion(x trial.Union) trial.Expr {
	arms := p.unionArms(x)
	seen := make(map[string]bool, len(arms))
	uniq := arms[:0]
	for _, a := range arms {
		s := a.String()
		if seen[s] {
			p.hit("dedupe-union")
			continue
		}
		seen[s] = true
		uniq = append(uniq, a)
	}
	if !sort.SliceIsSorted(uniq, func(i, j int) bool { return uniq[i].String() < uniq[j].String() }) {
		p.hit("canonicalize-union")
		sort.Slice(uniq, func(i, j int) bool { return uniq[i].String() < uniq[j].String() })
	}
	return rebuildUnion(uniq)
}

// unionArms returns the rewritten arms of a (possibly nested) union,
// flattened — rewriting an arm can itself surface a union, which is
// flattened too.
func (p *rewriter) unionArms(e trial.Expr) []trial.Expr {
	var arms []trial.Expr
	var collect func(e trial.Expr, rewritten bool)
	collect = func(e trial.Expr, rewritten bool) {
		if u, ok := e.(trial.Union); ok {
			collect(u.L, rewritten)
			collect(u.R, rewritten)
			return
		}
		if !rewritten {
			collect(p.rewrite(e), true)
			return
		}
		arms = append(arms, e)
	}
	collect(e, false)
	return arms
}

// rebuildUnion folds arms into a left-deep union.
func rebuildUnion(arms []trial.Expr) trial.Expr {
	acc := arms[0]
	for _, a := range arms[1:] {
		acc = trial.Union{L: acc, R: a}
	}
	return acc
}

// rewriteJoin canonicalizes projections and applies the cost-based
// commute rule:
//
//	π_out2(π_out1(e))   → π_{out1∘out2}(e)     compose-projections
//	e1 ✶^{out}_θ e2     → e2 ✶^{out′}_{θ′} e1  commute-join
//
// Joins commute by mirroring every position (i ↔ i′) in the output list
// and the condition. The engine builds its hash table over the right
// operand and probes with the left in parallel, so when statistics say
// the right side is much larger than the left the operands are swapped.
func (p *rewriter) rewriteJoin(x trial.Join) trial.Expr {
	l := p.rewrite(x.L)
	r := l
	if x.L.String() != x.R.String() {
		r = p.rewrite(x.R)
	}
	j := trial.Join{L: l, R: r, Out: x.Out, Cond: x.Cond}
	if out, ok := ProjectionShape(j); ok {
		// Keep the two operands one structurally shared expression.
		norm := projection(j.L, out)
		if norm.Out != j.Out {
			p.hit("normalize-projection")
		}
		if innerOut, inner, ok := asProjection(j.L); ok {
			p.hit("compose-projections")
			return projection(inner, [3]int{innerOut[out[0]], innerOut[out[1]], innerOut[out[2]]})
		}
		return norm
	}
	if p.o.hasStats && len(j.Cond.CrossObjEqualities())+len(j.Cond.CrossValEqualities()) > 0 {
		if p.o.Estimate(j.R) > commuteRatio*p.o.Estimate(j.L) {
			p.hit("commute-join")
			return mirrorJoin(j)
		}
	}
	return j
}

// asProjection reports whether e is an identity self-join and returns
// its projection indexes and operand.
func asProjection(e trial.Expr) ([3]int, trial.Expr, bool) {
	j, ok := e.(trial.Join)
	if !ok {
		return [3]int{}, nil, false
	}
	out, ok := ProjectionShape(j)
	if !ok {
		return [3]int{}, nil, false
	}
	return out, j.L, true
}

// mirrorJoin swaps a join's operands, mirroring output positions and
// condition sides: at(mirror(p), t2, t1) = at(p, t1, t2), so the result
// is the same set of triples.
func mirrorJoin(j trial.Join) trial.Join {
	return trial.Join{
		L:    j.R,
		R:    j.L,
		Out:  [3]trial.Pos{mirrorPos(j.Out[0]), mirrorPos(j.Out[1]), mirrorPos(j.Out[2])},
		Cond: mirrorCond(j.Cond),
	}
}

func mirrorPos(p trial.Pos) trial.Pos {
	if p.Left() {
		return p + 3
	}
	return p - 3
}

func mirrorCond(c trial.Cond) trial.Cond {
	var m trial.Cond
	for _, a := range c.Obj {
		m.Obj = append(m.Obj, trial.ObjAtom{L: mirrorObjTerm(a.L), R: mirrorObjTerm(a.R), Neq: a.Neq})
	}
	for _, a := range c.Val {
		m.Val = append(m.Val, trial.ValAtom{L: mirrorValTerm(a.L), R: mirrorValTerm(a.R), Neq: a.Neq, Component: a.Component})
	}
	return m
}

func mirrorObjTerm(t trial.ObjTerm) trial.ObjTerm {
	if t.IsConst {
		return t
	}
	return trial.P(mirrorPos(t.Pos))
}

func mirrorValTerm(t trial.ValTerm) trial.ValTerm {
	if t.IsLit {
		return t
	}
	return trial.RhoP(mirrorPos(t.Pos))
}

// rewriteStar applies the closure identities of the composition-shaped
// stars (the reachTA= shapes, whose joins are associative):
//
//	(e*)*             → e*                 collapse-nested-star
//	(a ∪ b*)*         → (a ∪ b)*           unnest-star-in-union
//	left closure      → right closure      canonicalize-left-star
//
// All three require the stars involved to have the same composition
// shape (output 1,2,3′ and condition 3=1′, optionally with 2=2′); for
// those joins the left and right closures coincide and closure is
// idempotent, which is what makes the rewrites identities. Stars of any
// other shape are left untouched — triple joins are not associative in
// general (Example 3 of the paper).
func (p *rewriter) rewriteStar(x trial.Star) trial.Expr {
	st := trial.Star{E: p.rewrite(x.E), Out: x.Out, Cond: x.Cond, Left: x.Left}
	shape := starShape(st)
	if shape == trial.ReachNone {
		return st
	}
	if st.Left {
		p.hit("canonicalize-left-star")
		st.Left = false
	}
	if is, ok := st.E.(trial.Star); ok && starShape(is) == shape {
		p.hit("collapse-nested-star")
		return trial.Star{E: is.E, Out: st.Out, Cond: st.Cond}
	}
	if u, ok := st.E.(trial.Union); ok {
		arms := flattenUnion(u)
		changed := false
		for i, a := range arms {
			if as, ok := a.(trial.Star); ok && starShape(as) == shape {
				arms[i] = as.E
				changed = true
			}
		}
		if changed {
			p.hit("unnest-star-in-union")
			st.E = p.rewrite(rebuildUnion(arms))
		}
	}
	return st
}

// flattenUnion returns the arms of a nested union without rewriting them.
func flattenUnion(e trial.Expr) []trial.Expr {
	if u, ok := e.(trial.Union); ok {
		return append(flattenUnion(u.L), flattenUnion(u.R)...)
	}
	return []trial.Expr{e}
}

func mergeConds(a, b trial.Cond) trial.Cond {
	return trial.Cond{
		Obj: append(append([]trial.ObjAtom{}, a.Obj...), b.Obj...),
		Val: append(append([]trial.ValAtom{}, a.Val...), b.Val...),
	}
}

// reindexSelect maps a selection condition over a projection's output
// positions to the operand's positions: output position k reads
// component out[k] of the operand's triple.
func reindexSelect(c trial.Cond, out [3]int) trial.Cond {
	var m trial.Cond
	mapObj := func(t trial.ObjTerm) trial.ObjTerm {
		if t.IsConst {
			return t
		}
		return trial.P(trial.Pos(out[t.Pos.Index()]))
	}
	mapVal := func(t trial.ValTerm) trial.ValTerm {
		if t.IsLit {
			return t
		}
		return trial.RhoP(trial.Pos(out[t.Pos.Index()]))
	}
	for _, a := range c.Obj {
		m.Obj = append(m.Obj, trial.ObjAtom{L: mapObj(a.L), R: mapObj(a.R), Neq: a.Neq})
	}
	for _, a := range c.Val {
		m.Val = append(m.Val, trial.ValAtom{L: mapVal(a.L), R: mapVal(a.R), Neq: a.Neq, Component: a.Component})
	}
	return m
}

// reindexThroughOut maps a selection condition over a join's output
// positions (1, 2, 3) to the join's input positions, using the output
// projection: output position i is fed from out[i].
func reindexThroughOut(c trial.Cond, out [3]trial.Pos) trial.Cond {
	var m trial.Cond
	mapObj := func(t trial.ObjTerm) trial.ObjTerm {
		if t.IsConst {
			return t
		}
		return trial.P(out[t.Pos.Index()])
	}
	mapVal := func(t trial.ValTerm) trial.ValTerm {
		if t.IsLit {
			return t
		}
		return trial.RhoP(out[t.Pos.Index()])
	}
	for _, a := range c.Obj {
		m.Obj = append(m.Obj, trial.ObjAtom{L: mapObj(a.L), R: mapObj(a.R), Neq: a.Neq})
	}
	for _, a := range c.Val {
		m.Val = append(m.Val, trial.ValAtom{L: mapVal(a.L), R: mapVal(a.R), Neq: a.Neq, Component: a.Component})
	}
	return m
}
