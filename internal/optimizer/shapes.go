package optimizer

import "repro/internal/trial"

// This file recognizes the canonical expression shapes the rewrite rules
// and the physical planner care about: identity self-joins (projections
// in disguise) and composition-shaped joins/stars.

// identityCond returns the condition 1=1′ ∧ 2=2′ ∧ 3=3′ that equates the
// two operands of a join triple-by-triple.
func identityCond() trial.Cond {
	return trial.Cond{Obj: []trial.ObjAtom{
		trial.Eq(trial.P(trial.L1), trial.P(trial.R1)),
		trial.Eq(trial.P(trial.L2), trial.P(trial.R2)),
		trial.Eq(trial.P(trial.L3), trial.P(trial.R3)),
	}}
}

// condIsIdentity reports whether c is exactly the identity condition:
// three object equalities pairing each left position with the same right
// position, no data atoms, nothing else.
func condIsIdentity(c trial.Cond) bool {
	if len(c.Val) != 0 || len(c.Obj) != 3 {
		return false
	}
	var have [3]bool
	for _, a := range c.Obj {
		if a.Neq || a.L.IsConst || a.R.IsConst {
			return false
		}
		lp, rp := a.L.Pos, a.R.Pos
		if !lp.Left() {
			lp, rp = rp, lp
		}
		if !lp.Left() || rp.Left() || lp.Index() != rp.Index() || have[lp.Index()] {
			return false
		}
		have[lp.Index()] = true
	}
	return have[0] && have[1] && have[2]
}

// ProjectionShape reports whether j is an identity self-join — the
// E ✶^{i,j,k}_{1=1′,2=2′,3=3′} E device internal/translate uses to
// permute and duplicate triple components — and if so returns the
// projection it denotes as component indexes into the operand's triple:
// j(T) = {(t[out[0]], t[out[1]], t[out[2]]) | t ∈ e(T)}.
//
// The identity condition forces the right triple to equal the left one,
// so any output position (primed or not) reads the same single triple;
// the returned indexes are therefore side-free. The physical planner
// compiles such joins as a linear projection operator instead of a
// self-join.
func ProjectionShape(j trial.Join) ([3]int, bool) {
	if !condIsIdentity(j.Cond) {
		return [3]int{}, false
	}
	if j.L == nil || j.R == nil || j.L.String() != j.R.String() {
		return [3]int{}, false
	}
	return [3]int{j.Out[0].Index(), j.Out[1].Index(), j.Out[2].Index()}, true
}

// projection builds the identity self-join denoting the projection of e
// through the given component indexes, with output positions normalized
// to the left side.
func projection(e trial.Expr, out [3]int) trial.Join {
	return trial.Join{
		L:    e,
		R:    e,
		Out:  [3]trial.Pos{trial.Pos(out[0]), trial.Pos(out[1]), trial.Pos(out[2])},
		Cond: identityCond(),
	}
}

// starShape classifies a star's join for the idempotence rules: the
// composition-like shapes (the reachTA= shapes of §5) are associative,
// which is what makes nested closures collapsible. trial.StarReachShape
// is the single source of truth for the recognition.
func starShape(st trial.Star) trial.ReachShape { return trial.StarReachShape(st) }
