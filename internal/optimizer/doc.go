// Package optimizer is the cost-based logical optimizer of the query
// stack: a rule-driven rewriter over TriAL* expressions (internal/trial)
// that sits between the frontend translations (internal/translate) and
// the physical planner (internal/engine). internal/query applies it
// automatically before caching a plan.
//
// The rules implement algebraic identities of the Triple Algebra from
// Libkin, Reutter and Vrgoč, "TriAL for RDF" (PODS 2013):
//
//   - Selection fusion and pushdown through union, difference and joins
//     (σ distributes over ∪ and the left side of −; fused into a join's
//     θ its equality atoms become hash keys for the Proposition 4
//     strategy).
//   - Projection recognition and composition: the identity self-join
//     E ✶^{i,j,k}_{1=1′,2=2′,3=3′} E that §6.2's translations use to
//     permute triple components is recognized as a projection, selections
//     are pushed below it, and nested projections compose into one.
//   - Union flattening, duplicate-arm elimination (e ∪ e → e) and
//     canonical arm ordering, which exposes common subexpressions across
//     union arms to the planner's sharing pass.
//   - Cost-based join commutation, driven by the per-relation
//     cardinality and distinct-count statistics of
//     internal/triplestore: joins mirror (e1 ✶ e2 = e2 ✶′ e1 with
//     positions swapped) so the smaller side becomes the hash-build
//     side.
//   - Kleene-star identities for the composition-shaped (reachTA=, §5)
//     stars, whose joins are associative: nested closures collapse
//     ((e*)* → e*), starred arms unnest inside a starred union
//     ((a ∪ b*)* → (a ∪ b)*), and left closures canonicalize to right
//     closures. Stars of any other shape are untouched — triple joins
//     are not associative in general (Example 3 of the paper).
//
// Every rewrite is a semantics-preserving identity; statistics steer
// only cost-based choices, never correctness. Differential tests pin
// optimized expressions byte-identical to the reference trial.Evaluator
// over fixtures and random expressions.
//
// Optimize returns a Trace of the rules applied; the engine attaches it
// to prepared plans, Engine.Explain and the server's /explain render it,
// and internal/query aggregates per-rule hit counters for /stats. The
// package-level Version participates in plan-cache keys so a rule-set
// change invalidates cached plans.
package optimizer
