package genstore

import (
	"math/rand"
	"testing"

	"repro/internal/trial"
	"repro/internal/triplestore"
)

func TestRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := Random(rng, 10, 40, 3)
	if s.NumObjects() != 10 {
		t.Errorf("objects = %d", s.NumObjects())
	}
	if s.Size() != 40 {
		t.Errorf("triples = %d", s.Size())
	}
	// Values drawn from ≤3 distinct values.
	seen := map[string]bool{}
	for i := 0; i < s.NumObjects(); i++ {
		seen[s.Value(triplestore.ID(i)).Key()] = true
	}
	if len(seen) > 3 {
		t.Errorf("distinct values = %d, want ≤ 3", len(seen))
	}
	// Requesting more triples than n³ caps out.
	s2 := Random(rng, 2, 100, 0)
	if s2.Size() != 8 {
		t.Errorf("capped store has %d triples, want 8", s2.Size())
	}
}

func TestChainCycleGrid(t *testing.T) {
	if s := Chain(10, 3); s.Size() != 10 {
		t.Errorf("chain size = %d", s.Size())
	}
	if s := Chain(10, 0); s.Size() != 10 { // numLabels clamped to 1
		t.Errorf("chain with 0 labels size = %d", s.Size())
	}
	if s := Cycle(8); s.Size() != 8 {
		t.Errorf("cycle size = %d", s.Size())
	}
	s := Grid(4, 3)
	// Right edges: 3 per row × 3 rows; down edges: 4 per row-pair × 2.
	if s.Size() != 3*3+4*2 {
		t.Errorf("grid size = %d", s.Size())
	}
}

func TestLayered(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := Layered(rng, 4, 5, 2)
	if s.Size() == 0 || s.Size() > 3*5*2 {
		t.Errorf("layered size = %d", s.Size())
	}
}

func TestTransportGenerator(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := Transport(rng, 20, 3, 2)
	// Q must be evaluable and nonempty (each service belongs to a company).
	ev := trial.NewEvaluator(s)
	r, err := ev.Eval(trial.QueryQ(RelE))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() == 0 {
		t.Error("Q empty on transport network")
	}
}

func TestSocialGenerator(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := Social(rng, 10, 25, 3, 4)
	if s.Size() != 25 {
		t.Errorf("social size = %d", s.Size())
	}
	// Every edge's middle object has a connection-shaped value: null name
	// (component 0) and non-null type (component 3).
	bad := 0
	s.Relation(RelE).ForEach(func(tr triplestore.Triple) {
		v := s.Value(tr[1])
		if len(v) != 5 || !v[0].Null || v[3].Null {
			bad++
		}
	})
	if bad != 0 {
		t.Errorf("%d edges have malformed connection values", bad)
	}
}

func TestRandomExprAlwaysEvaluable(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	opts := ExprOptions{
		Relations:       []string{RelE},
		MaxDepth:        4,
		AllowStar:       true,
		AllowValueConds: true,
		AllowUniverse:   true,
	}
	for i := 0; i < 150; i++ {
		s := Random(rng, 5, 10, 2)
		e := RandomExpr(rng, opts)
		ev := trial.NewEvaluator(s)
		if _, err := ev.Eval(e); err != nil {
			t.Fatalf("generated unevaluable expression %s: %v", e, err)
		}
	}
}

func TestRandomExprEqualityOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	opts := ExprOptions{Relations: []string{RelE}, MaxDepth: 4, EqualityOnly: true, AllowStar: true}
	for i := 0; i < 100; i++ {
		e := RandomExpr(rng, opts)
		if !trial.EqualityOnly(e) {
			t.Fatalf("EqualityOnly option produced %s", e)
		}
	}
}
