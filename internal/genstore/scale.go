package genstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"

	"repro/internal/triplestore"
)

// Scale-tier dataset generators: deterministic, seeded graph families
// sized in the hundreds of thousands to tens of millions of triples.
// Unlike the fixture-sized constructors above, these do not call
// Store.Add per triple: Build encodes the stream as NDJSON batches and
// feeds them through Store.ApplyNDJSON — the same wire path the server's
// bulk ingest uses — so loading a bench store exercises the ingest tier
// (scanner buffers, batch atomicity, one version bump per batch) at the
// same scale as the queries that follow.

// ScaleGen is a deterministic recipe for a scale-tier store.
type ScaleGen struct {
	// Desc names the family and its parameters, for bench reports.
	Desc string
	// Triples is the number of insert ops the recipe emits. The built
	// store may hold slightly fewer: duplicate edges collapse.
	Triples int
	// ops streams the insert ops in a fixed order.
	ops func(emit func(s, p, o string))
}

// ingestChunk is how many NDJSON lines Build buffers per ApplyNDJSON
// call: large enough to amortize the batch's version bump and lock
// acquisition, small enough to keep the encode buffer in cache.
const ingestChunk = 1 << 16

// Build materializes the recipe into a fresh store by streaming NDJSON
// batches through the store's bulk ingest path.
func (g ScaleGen) Build() (*triplestore.Store, error) {
	s := triplestore.NewStore()
	type line struct {
		S string `json:"s"`
		P string `json:"p"`
		O string `json:"o"`
	}
	var buf bytes.Buffer
	n := 0
	var err error
	flush := func() {
		if n == 0 || err != nil {
			return
		}
		if _, e := s.ApplyNDJSON(&buf, RelE); e != nil {
			err = e
		}
		buf.Reset()
		n = 0
	}
	enc := json.NewEncoder(&buf)
	g.ops(func(sub, pred, obj string) {
		if err != nil {
			return
		}
		if e := enc.Encode(line{S: sub, P: pred, O: obj}); e != nil {
			err = e
			return
		}
		if n++; n >= ingestChunk {
			flush()
		}
	})
	flush()
	if err != nil {
		return nil, fmt.Errorf("genstore: building %s: %w", g.Desc, err)
	}
	return s, nil
}

// zipfSource returns a Zipf sampler over [0, n): the standard power-law
// degree model (exponent ~1.2), under which a few hub nodes concentrate
// a large share of the edges — the regime where a relation's MaxMatch
// dwarfs its average fanout and binary join plans degrade.
func zipfSource(rng *rand.Rand, n int) *rand.Zipf {
	return rand.NewZipf(rng, 1.2, 1, uint64(n-1))
}

// PowerLawSocial is the social-graph family of §2.3 at scale: edges
// (user, connection, user) with a fresh connection object per edge, the
// source user drawn from a Zipf distribution (celebrity hubs) and the
// target uniformly. Deterministic in (seed, nUsers, nEdges).
func PowerLawSocial(seed int64, nUsers, nEdges int) ScaleGen {
	return ScaleGen{
		Desc:    fmt.Sprintf("power-law-social(seed=%d,users=%d,edges=%d)", seed, nUsers, nEdges),
		Triples: nEdges,
		ops: func(emit func(s, p, o string)) {
			rng := rand.New(rand.NewSource(seed))
			zipf := zipfSource(rng, nUsers)
			for i := 0; i < nEdges; i++ {
				emit(
					fmt.Sprintf("u%d", zipf.Uint64()),
					fmt.Sprintf("c%d", i),
					fmt.Sprintf("u%d", rng.Intn(nUsers)),
				)
			}
		},
	}
}

// PowerLawGraph is a single-predicate power-law graph: (node, knows,
// node) with both endpoints Zipf-distributed. Hubs connect to hubs, so
// the graph is dense in triangles and diamonds — the worst case for
// binary join plans on cyclic queries and the home turf of the leapfrog
// triejoin. Deterministic in (seed, nNodes, nEdges).
func PowerLawGraph(seed int64, nNodes, nEdges int) ScaleGen {
	return ScaleGen{
		Desc:    fmt.Sprintf("power-law-graph(seed=%d,nodes=%d,edges=%d)", seed, nNodes, nEdges),
		Triples: nEdges,
		ops: func(emit func(s, p, o string)) {
			rng := rand.New(rand.NewSource(seed))
			zipf := zipfSource(rng, nNodes)
			for i := 0; i < nEdges; i++ {
				emit(
					fmt.Sprintf("n%d", zipf.Uint64()),
					"knows",
					fmt.Sprintf("n%d", zipf.Uint64()),
				)
			}
		},
	}
}

// RoadNetwork is a w × h grid with bidirectional, direction-labeled
// edges — the road-network regime: bounded degree, huge diameter,
// quadratic reachability sets. Fully deterministic; emits
// 2·(2wh − w − h) triples.
func RoadNetwork(w, h int) ScaleGen {
	return ScaleGen{
		Desc:    fmt.Sprintf("road-network(%dx%d)", w, h),
		Triples: 2 * (2*w*h - w - h),
		ops: func(emit func(s, p, o string)) {
			name := func(x, y int) string { return fmt.Sprintf("r%d_%d", x, y) }
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					if x+1 < w {
						emit(name(x, y), "east", name(x+1, y))
						emit(name(x+1, y), "west", name(x, y))
					}
					if y+1 < h {
						emit(name(x, y), "south", name(x, y+1))
						emit(name(x, y+1), "north", name(x, y))
					}
				}
			}
		},
	}
}

// PropertyGraph is an RDF-style property graph: nEntities typed entities
// (one rdf:type-like triple each against a small class vocabulary) plus
// nFacts entity-to-entity facts over a small predicate vocabulary, with
// Zipf-distributed subjects. Deterministic in (seed, nEntities, nFacts).
func PropertyGraph(seed int64, nEntities, nFacts int) ScaleGen {
	const (
		numClasses    = 12
		numPredicates = 24
	)
	return ScaleGen{
		Desc:    fmt.Sprintf("property-graph(seed=%d,entities=%d,facts=%d)", seed, nEntities, nFacts),
		Triples: nEntities + nFacts,
		ops: func(emit func(s, p, o string)) {
			rng := rand.New(rand.NewSource(seed))
			zipf := zipfSource(rng, nEntities)
			for i := 0; i < nEntities; i++ {
				emit(fmt.Sprintf("e%d", i), "type", fmt.Sprintf("class%d", rng.Intn(numClasses)))
			}
			for i := 0; i < nFacts; i++ {
				emit(
					fmt.Sprintf("e%d", zipf.Uint64()),
					fmt.Sprintf("rel%d", rng.Intn(numPredicates)),
					fmt.Sprintf("e%d", rng.Intn(nEntities)),
				)
			}
		},
	}
}
