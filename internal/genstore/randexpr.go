package genstore

import (
	"math/rand"

	"repro/internal/trial"
)

// ExprOptions controls RandomExpr.
type ExprOptions struct {
	// Relations the expression may mention; must be nonempty.
	Relations []string
	// MaxDepth bounds the AST depth.
	MaxDepth int
	// EqualityOnly restricts all generated conditions to equalities,
	// producing TriAL= expressions (Proposition 4's fragment).
	EqualityOnly bool
	// AllowStar permits Kleene closures (TriAL* rather than TriAL).
	AllowStar bool
	// AllowValueConds permits η (data value) atoms.
	AllowValueConds bool
	// AllowUniverse permits the U primitive (and hence complements via
	// diff). U is cubic in the active domain, so large stores should
	// disable it.
	AllowUniverse bool
}

// RandomExpr generates a random well-formed TriAL (or TriAL*) expression.
// It is used to differential-test the evaluation strategies against each
// other and against the Datalog translations.
func RandomExpr(rng *rand.Rand, opt ExprOptions) trial.Expr {
	if opt.MaxDepth < 1 {
		opt.MaxDepth = 1
	}
	return randExpr(rng, opt, opt.MaxDepth)
}

func randExpr(rng *rand.Rand, opt ExprOptions, depth int) trial.Expr {
	leaf := func() trial.Expr {
		if opt.AllowUniverse && rng.Intn(8) == 0 {
			return trial.U()
		}
		return trial.R(opt.Relations[rng.Intn(len(opt.Relations))])
	}
	if depth <= 1 {
		return leaf()
	}
	n := 6
	if opt.AllowStar {
		n = 7
	}
	switch rng.Intn(n) {
	case 0:
		return leaf()
	case 1:
		c := randCond(rng, opt, true)
		return trial.MustSelect(randExpr(rng, opt, depth-1), c)
	case 2:
		return trial.Union{L: randExpr(rng, opt, depth-1), R: randExpr(rng, opt, depth-1)}
	case 3:
		return trial.Diff{L: randExpr(rng, opt, depth-1), R: randExpr(rng, opt, depth-1)}
	case 4, 5:
		return trial.MustJoin(randExpr(rng, opt, depth-1), randOut(rng), randCond(rng, opt, false),
			randExpr(rng, opt, depth-1))
	default:
		return trial.MustStar(randExpr(rng, opt, depth-1), randOut(rng), randCond(rng, opt, false),
			rng.Intn(2) == 0)
	}
}

// RandomCyclicJoin generates a triangle- or diamond-shaped join cascade
// over the given relations: a 2-hop path join (out (a,b,c), condition
// 3=1′) closed back on itself with 3=1′ ∧ 1=3′ against either a single
// relation (triangle) or a second path (diamond). The root's output
// positions are randomized, and a residual inequality atom occasionally
// rides along, so the differential suites exercise the leapfrog
// triejoin's residual-condition path, not just pure variable bindings.
func RandomCyclicJoin(rng *rand.Rand, rels []string) trial.Join {
	rel := func() trial.Expr { return trial.R(rels[rng.Intn(len(rels))]) }
	eq := func(a, b trial.Pos) trial.ObjAtom { return trial.Eq(trial.P(a), trial.P(b)) }
	path := func() trial.Join {
		return trial.MustJoin(rel(), [3]trial.Pos{trial.L1, trial.L3, trial.R3},
			trial.Cond{Obj: []trial.ObjAtom{eq(trial.L3, trial.R1)}}, rel())
	}
	closing := trial.Cond{Obj: []trial.ObjAtom{eq(trial.L3, trial.R1), eq(trial.L1, trial.R3)}}
	if rng.Intn(3) == 0 {
		closing.Obj = append(closing.Obj, trial.ObjAtom{
			L:   trial.P(allPos[rng.Intn(6)]),
			R:   trial.P(allPos[rng.Intn(6)]),
			Neq: true,
		})
	}
	if rng.Intn(2) == 0 {
		return trial.MustJoin(path(), randOut(rng), closing, rel())
	}
	return trial.MustJoin(path(), randOut(rng), closing, path())
}

var allPos = []trial.Pos{trial.L1, trial.L2, trial.L3, trial.R1, trial.R2, trial.R3}

func randOut(rng *rand.Rand) [3]trial.Pos {
	return [3]trial.Pos{
		allPos[rng.Intn(6)],
		allPos[rng.Intn(6)],
		allPos[rng.Intn(6)],
	}
}

// randCond generates up to three condition atoms. leftOnly restricts
// positions to 1..3, as selections require.
func randCond(rng *rand.Rand, opt ExprOptions, leftOnly bool) trial.Cond {
	pool := allPos
	if leftOnly {
		pool = allPos[:3]
	}
	var c trial.Cond
	for i := rng.Intn(3); i > 0; i-- {
		neq := !opt.EqualityOnly && rng.Intn(3) == 0
		if opt.AllowValueConds && rng.Intn(3) == 0 {
			a := trial.ValAtom{
				L:         trial.RhoP(pool[rng.Intn(len(pool))]),
				R:         trial.RhoP(pool[rng.Intn(len(pool))]),
				Neq:       neq,
				Component: -1,
			}
			c.Val = append(c.Val, a)
		} else {
			c.Obj = append(c.Obj, trial.ObjAtom{
				L:   trial.P(pool[rng.Intn(len(pool))]),
				R:   trial.P(pool[rng.Intn(len(pool))]),
				Neq: neq,
			})
		}
	}
	return c
}
