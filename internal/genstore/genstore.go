package genstore

import (
	"fmt"
	"math/rand"

	"repro/internal/triplestore"
)

// RelE is the default relation name used by the generators.
const RelE = "E"

// Random returns a store with nObjects objects named o0..o(n-1) and
// nTriples distinct uniform random triples in relation RelE. Data values
// are drawn uniformly from numValues distinct single-field values (0 keeps
// all values nil).
func Random(rng *rand.Rand, nObjects, nTriples, numValues int) *triplestore.Store {
	s := triplestore.NewStore()
	ids := make([]string, nObjects)
	for i := range ids {
		ids[i] = fmt.Sprintf("o%d", i)
		if numValues > 0 {
			s.SetValue(ids[i], triplestore.V(fmt.Sprintf("v%d", rng.Intn(numValues))))
		} else {
			s.Intern(ids[i])
		}
	}
	r := s.EnsureRelation(RelE)
	max := nObjects * nObjects * nObjects
	if nTriples > max {
		nTriples = max
	}
	for r.Len() < nTriples {
		s.Add(RelE,
			ids[rng.Intn(nObjects)],
			ids[rng.Intn(nObjects)],
			ids[rng.Intn(nObjects)])
	}
	return s
}

// Chain returns a store with the path o0 →p0→ o1 →p1→ ... →p(n-1)→ on,
// using numLabels distinct predicates round-robin (1 label makes every
// edge share a predicate, the worst case for same-label reachability).
func Chain(n, numLabels int) *triplestore.Store {
	s := triplestore.NewStore()
	if numLabels < 1 {
		numLabels = 1
	}
	for i := 0; i < n; i++ {
		s.Add(RelE,
			fmt.Sprintf("o%d", i),
			fmt.Sprintf("p%d", i%numLabels),
			fmt.Sprintf("o%d", i+1))
	}
	return s
}

// Cycle returns a store with a single directed cycle of n objects sharing
// one predicate.
func Cycle(n int) *triplestore.Store {
	s := triplestore.NewStore()
	for i := 0; i < n; i++ {
		s.Add(RelE,
			fmt.Sprintf("o%d", i),
			"p",
			fmt.Sprintf("o%d", (i+1)%n))
	}
	return s
}

// Grid returns a store whose objects form a w × h grid with right and down
// edges, each labeled with its direction. Grids give quadratic-size
// reachability sets, a stress case for star evaluation.
func Grid(w, h int) *triplestore.Store {
	s := triplestore.NewStore()
	name := func(x, y int) string { return fmt.Sprintf("g%d_%d", x, y) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				s.Add(RelE, name(x, y), "right", name(x+1, y))
			}
			if y+1 < h {
				s.Add(RelE, name(x, y), "down", name(x, y+1))
			}
		}
	}
	return s
}

// Layered returns a DAG of depth layers with width objects per layer and
// every consecutive pair of layers completely connected through fanout
// random predicate objects. All predicates are fresh objects, exercising
// the triple-as-node character of RDF.
func Layered(rng *rand.Rand, depth, width, fanout int) *triplestore.Store {
	s := triplestore.NewStore()
	name := func(l, i int) string { return fmt.Sprintf("n%d_%d", l, i) }
	pred := 0
	for l := 0; l < depth-1; l++ {
		for i := 0; i < width; i++ {
			for f := 0; f < fanout; f++ {
				j := rng.Intn(width)
				s.Add(RelE, name(l, i), fmt.Sprintf("q%d", pred%(width*2+1)), name(l+1, j))
				pred++
			}
		}
	}
	return s
}

// Transport returns a synthetic transport network in the style of
// Figure 1: nCities cities in a line, consecutive cities connected by a
// service; services are grouped into companies and companies into holding
// chains of length up to holdDepth via part_of. The TriAL* query Q of the
// paper ("same company reachability") is the intended workload.
func Transport(rng *rand.Rand, nCities, nCompanies, holdDepth int) *triplestore.Store {
	s := triplestore.NewStore()
	if nCompanies < 1 {
		nCompanies = 1
	}
	for i := 0; i < nCities-1; i++ {
		svc := fmt.Sprintf("svc%d", i)
		comp := fmt.Sprintf("comp%d", rng.Intn(nCompanies))
		s.Add(RelE, fmt.Sprintf("city%d", i), svc, fmt.Sprintf("city%d", i+1))
		s.Add(RelE, svc, "part_of", comp)
	}
	for c := 0; c < nCompanies; c++ {
		cur := fmt.Sprintf("comp%d", c)
		for d := 1; d <= rng.Intn(holdDepth+1); d++ {
			parent := fmt.Sprintf("hold%d_%d", c, d)
			s.Add(RelE, cur, "part_of", parent)
			cur = parent
		}
	}
	return s
}

// Social returns a synthetic social network in the style of §2.3: nUsers
// user objects with (name, email, age, ⊥, ⊥) values, and nEdges connection
// objects with (⊥, ⊥, ⊥, type, created) values drawn from the given
// numbers of distinct types and dates.
func Social(rng *rand.Rand, nUsers, nEdges, numTypes, numDates int) *triplestore.Store {
	s := triplestore.NewStore()
	null := triplestore.Null()
	users := make([]string, nUsers)
	for i := range users {
		users[i] = fmt.Sprintf("u%d", i)
		s.SetValue(users[i], triplestore.Value{
			triplestore.F(fmt.Sprintf("name%d", i)),
			triplestore.F(fmt.Sprintf("mail%d", i)),
			triplestore.F(fmt.Sprintf("%d", 18+rng.Intn(80))),
			null, null,
		})
	}
	if numTypes < 1 {
		numTypes = 1
	}
	if numDates < 1 {
		numDates = 1
	}
	for i := 0; i < nEdges; i++ {
		c := fmt.Sprintf("c%d", i)
		s.SetValue(c, triplestore.Value{
			null, null, null,
			triplestore.F(fmt.Sprintf("type%d", rng.Intn(numTypes))),
			triplestore.F(fmt.Sprintf("date%d", rng.Intn(numDates))),
		})
		a := users[rng.Intn(nUsers)]
		b := users[rng.Intn(nUsers)]
		s.Add(RelE, a, c, b)
	}
	return s
}
