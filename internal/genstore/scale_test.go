package genstore

import (
	"math/rand"
	"testing"

	"repro/internal/optimizer"
)

func TestScaleGenDeterministic(t *testing.T) {
	for _, g := range []ScaleGen{
		PowerLawSocial(7, 100, 2000),
		PowerLawGraph(7, 80, 1500),
		PropertyGraph(7, 120, 1500),
	} {
		a, err := g.Build()
		if err != nil {
			t.Fatalf("%s: %v", g.Desc, err)
		}
		b, err := g.Build()
		if err != nil {
			t.Fatalf("%s: %v", g.Desc, err)
		}
		ra, rb := a.Relation(RelE), b.Relation(RelE)
		if ra == nil || ra.Len() == 0 {
			t.Fatalf("%s: empty store", g.Desc)
		}
		if !ra.Equal(rb) {
			t.Fatalf("%s: two builds differ (%d vs %d triples)", g.Desc, ra.Len(), rb.Len())
		}
		if ra.Len() > g.Triples {
			t.Fatalf("%s: %d triples, more than the %d ops emitted", g.Desc, ra.Len(), g.Triples)
		}
	}
}

func TestRoadNetworkExact(t *testing.T) {
	g := RoadNetwork(10, 7)
	s, err := g.Build()
	if err != nil {
		t.Fatal(err)
	}
	// No duplicate edges in a grid: the op count is the store size.
	want := 2 * (2*10*7 - 10 - 7)
	if g.Triples != want {
		t.Fatalf("declared Triples = %d, want %d", g.Triples, want)
	}
	if got := s.Relation(RelE).Len(); got != want {
		t.Fatalf("road network has %d triples, want %d", got, want)
	}
}

// TestScaleGenBatchesVersion: the NDJSON ingest path must bump the store
// version once per batch, not per triple.
func TestScaleGenBatchesVersion(t *testing.T) {
	s, err := PowerLawGraph(3, 50, 3000).Build()
	if err != nil {
		t.Fatal(err)
	}
	// 3000 ops fit in a single ingestChunk batch: exactly one bump.
	if v := s.Version(); v != 1 {
		t.Fatalf("store version = %d after one-chunk build, want 1", v)
	}
}

// TestPowerLawSkew: the Zipf sources must actually produce the skew the
// planner's worst-case costing keys off — a max subject bucket well
// above the average fanout.
func TestPowerLawSkew(t *testing.T) {
	s, err := PowerLawGraph(5, 500, 10000).Build()
	if err != nil {
		t.Fatal(err)
	}
	st := s.Relation(RelE).Stats()
	if avg := st.Fanout(0); float64(st.MaxMatch[0]) < 10*avg {
		t.Fatalf("MaxMatch[0] = %d, Fanout(0) = %.1f: not skewed enough for a power law",
			st.MaxMatch[0], avg)
	}
}

// TestRandomCyclicJoinShapes: every generated expression must flatten to
// a cyclic, connected multiway join — the shapes the leapfrog tier is
// differential-tested on.
func TestRandomCyclicJoinShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	triangles, diamonds := 0, 0
	for i := 0; i < 200; i++ {
		j := RandomCyclicJoin(rng, []string{"E", "F"})
		mj, ok := optimizer.FlattenJoin(j)
		if !ok {
			t.Fatalf("sample %d (%s) did not flatten", i, j)
		}
		if !mj.CyclicConnected() {
			t.Fatalf("sample %d (%s) is not cyclic-connected", i, j)
		}
		switch len(mj.Atoms) {
		case 3:
			triangles++
		case 4:
			diamonds++
		default:
			t.Fatalf("sample %d has %d atoms", i, len(mj.Atoms))
		}
	}
	if triangles == 0 || diamonds == 0 {
		t.Fatalf("shape mix degenerate: %d triangles, %d diamonds", triangles, diamonds)
	}
}
