// Package genstore generates triplestore workloads for tests and for the
// benchmark harness that reproduces the paper's complexity bounds
// (Theorem 3, Propositions 4 and 5): random stores with tunable object
// and triple counts, structured topologies (chains, cycles, grids, layered
// DAGs), transport-style networks modeled on Figure 1, and social-network
// stores modeled on §2.3. It also generates random TriAL expressions for
// differential testing of the evaluation strategies.
package genstore
