package query_test

import (
	"fmt"

	"repro/internal/query"
	"repro/internal/triplestore"
)

// ExampleQuerier runs one query in two frontend languages through the
// unified layer: both compile to TriAL*, pass the logical optimizer, and
// execute on the parallel engine.
func ExampleQuerier() {
	s := triplestore.NewStore()
	s.Add("E", "a", "knows", "b")
	s.Add("E", "b", "knows", "c")

	q := query.New(s)
	r, err := q.Query(query.LangRPQ, "knows+")
	if err != nil {
		panic(err)
	}
	pairs, err := q.Pairs(r)
	if err != nil {
		panic(err)
	}
	for _, p := range pairs {
		fmt.Println(p[0], "->", p[1])
	}

	// The same reachability as a native TriAL* closure.
	r, err = q.Query(query.LangTriAL, "rstar[1,2,3'; 3=1'](E)")
	if err != nil {
		panic(err)
	}
	fmt.Println("triples:", r.Len())
	// Output:
	// a -> b
	// a -> c
	// b -> c
	// triples: 3
}

// ExampleQuerier_Engine reaches through the façade to the execution
// engine, e.g. to explain a plan against the same store and relation.
func ExampleQuerier_Engine() {
	s := triplestore.NewStore()
	s.Add("E", "a", "p", "b")
	q := query.New(s)
	fmt.Println(q.Engine().Store().Size(), q.Relation())
	// Output:
	// 1 E
}
