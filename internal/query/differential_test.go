package query

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/gxpath"
	"repro/internal/nre"
	"repro/internal/nsparql"
	"repro/internal/rdf"
	"repro/internal/rpq"
	"repro/internal/trial"
	"repro/internal/triplestore"
)

// The differential contract of the unified query layer: for every
// supported language, over fixture and random graphs alike, the façade's
// engine-executed result is identical to the reference trial.Evaluator
// run on the same translated expression, and — projected to pairs — to
// the language's own native evaluator.

// diffGraphs returns the graphs the differential tests run over. All use
// alphabet {a, b} and data values so every language feature is live.
func diffGraphs() map[string]*graph.Graph {
	out := map[string]*graph.Graph{}

	chain := graph.New()
	for i := 0; i < 6; i++ {
		lab := "a"
		if i%2 == 1 {
			lab = "b"
		}
		chain.AddEdge(fmt.Sprintf("n%d", i), lab, fmt.Sprintf("n%d", i+1))
	}
	out["chain"] = chain

	cycle := graph.New()
	for i := 0; i < 5; i++ {
		cycle.AddEdge(fmt.Sprintf("c%d", i), "a", fmt.Sprintf("c%d", (i+1)%5))
	}
	cycle.AddEdge("c0", "b", "c2")
	out["cycle"] = cycle

	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 3; i++ {
		g := graph.New()
		n := 5 + i
		for g.NumEdges() < 2*n {
			g.AddEdge(
				fmt.Sprintf("v%d", rng.Intn(n)),
				string(rune('a'+rng.Intn(2))),
				fmt.Sprintf("v%d", rng.Intn(n)))
		}
		for _, v := range g.Nodes() {
			g.SetValue(v, triplestore.V(string(rune('u'+rng.Intn(2)))))
		}
		out[fmt.Sprintf("random%d", i)] = g
	}
	return out
}

// checkFacade runs source through the façade and asserts the engine
// result matches the reference Evaluator on the compiled expression.
// It returns the result projected to pairs for native comparison.
func checkFacade(t *testing.T, q *Querier, lang Lang, source string) map[[2]string]bool {
	t.Helper()
	x, err := q.Compile(lang, source)
	if err != nil {
		t.Fatalf("%s %q: compile: %v", lang, source, err)
	}
	want, err := trial.NewEvaluator(q.Engine().Store()).Eval(x)
	if err != nil {
		t.Fatalf("%s %q: evaluator: %v", lang, source, err)
	}
	got, err := q.Query(lang, source)
	if err != nil {
		t.Fatalf("%s %q: query: %v", lang, source, err)
	}
	if !got.Equal(want) {
		t.Fatalf("%s %q: façade (engine) disagrees with Evaluator: %d vs %d triples",
			lang, source, got.Len(), want.Len())
	}
	pairs, err := q.Pairs(got)
	if err != nil {
		t.Fatalf("%s %q: %v", lang, source, err)
	}
	set := make(map[[2]string]bool, len(pairs))
	for _, p := range pairs {
		set[p] = true
	}
	return set
}

func samePairs(got map[[2]string]bool, want map[[2]string]bool) bool {
	if len(got) != len(want) {
		return false
	}
	for p := range got {
		if !want[p] {
			return false
		}
	}
	return true
}

func TestDifferentialRPQ(t *testing.T) {
	sources := []string{
		"a", "b", "a^-", "a b", "a|b", "a*", "a+", "a?", "(a|b)*",
		"a^- b", "(a b)* a?", "a* b^- a*",
	}
	for name, g := range diffGraphs() {
		t.Run(name, func(t *testing.T) {
			q := New(g.ToTriplestore())
			for _, src := range sources {
				re, err := rpq.ParseRegex(src)
				if err != nil {
					t.Fatal(err)
				}
				want := rpq.Eval(re, g)
				if got := checkFacade(t, q, LangRPQ, src); !samePairs(got, want) {
					t.Errorf("rpq %q: façade pairs disagree with rpq.Eval", src)
				}
			}
		})
	}
}

func TestDifferentialNRE(t *testing.T) {
	sources := []string{
		"a", "b⁻", "b^-", "a·b", "a+b", "a*", "[a]", "[a·b]·a",
		"(a+b)*", "[a⁻]·(a+b)", "[a·[b]]*",
	}
	for name, g := range diffGraphs() {
		t.Run(name, func(t *testing.T) {
			q := New(g.ToTriplestore())
			st := nre.GraphStructure{G: g}
			for _, src := range sources {
				e, err := nre.Parse(src)
				if err != nil {
					t.Fatal(err)
				}
				want := map[[2]string]bool(nre.Eval(e, st))
				if got := checkFacade(t, q, LangNRE, src); !samePairs(got, want) {
					t.Errorf("nre %q: façade pairs disagree with nre.Eval", src)
				}
			}
		})
	}
}

func TestDifferentialGXPath(t *testing.T) {
	sources := []string{
		"a", "a^-", "eps", "a.b", "a u b", "a*", "~(a)", "[T].a",
		"[<a>]", "[!(<a.b>)]", "(a u b)*", "a_=", "(a.b)_!=",
		"[<a = b>]", "[<a != a^->].b",
	}
	for name, g := range diffGraphs() {
		t.Run(name, func(t *testing.T) {
			q := New(g.ToTriplestore())
			for _, src := range sources {
				p, err := gxpath.ParsePath(src)
				if err != nil {
					t.Fatal(err)
				}
				want := map[[2]string]bool(gxpath.EvalPath(p, g))
				if got := checkFacade(t, q, LangGXPath, src); !samePairs(got, want) {
					t.Errorf("gxpath %q: façade pairs disagree with gxpath.EvalPath", src)
				}
			}
		})
	}
}

func TestDifferentialNSPARQL(t *testing.T) {
	sources := []string{
		"self", "next", "edge", "node", "next^-", "next::a",
		"next*", "next/next", "next|edge", "next::[next]",
		"self::[edge]", "(next|node)*", "node::[next::a]/next",
	}
	for name, g := range diffGraphs() {
		t.Run(name, func(t *testing.T) {
			s := g.ToTriplestore()
			q := New(s)
			// The graph encoding T_G is itself an RDF document; nSPARQL's
			// reference semantics reads it back through rdf.FromStore.
			doc, err := rdf.FromStore(s, q.Relation())
			if err != nil {
				t.Fatal(err)
			}
			for _, src := range sources {
				e, err := nsparql.ParseExpr(src)
				if err != nil {
					t.Fatal(err)
				}
				want := map[[2]string]bool(nsparql.Eval(e, doc))
				if got := checkFacade(t, q, LangNSPARQL, src); !samePairs(got, want) {
					t.Errorf("nsparql %q: façade pairs disagree with nsparql.Eval", src)
				}
			}
		})
	}
}

// TestDifferentialTriAL pins the façade's native-language path: engine
// results equal Evaluator results for the paper's named queries. (TriAL*
// results are arbitrary relations, so there is no pair projection here.)
func TestDifferentialTriAL(t *testing.T) {
	sources := []string{
		"E",
		"join[1,3',3; 2=1'](E, E)",
		"rstar[1,2,3'; 3=1'](E)",
		"lstar[1',2,3; 3'=1](E)",
		"sigma[1!=3](E)",
		"diff(union(E, E), E)",
	}
	for name, g := range diffGraphs() {
		t.Run(name, func(t *testing.T) {
			q := New(g.ToTriplestore())
			for _, src := range sources {
				x, err := trial.Parse(src)
				if err != nil {
					t.Fatal(err)
				}
				want, err := trial.NewEvaluator(q.Engine().Store()).Eval(x)
				if err != nil {
					t.Fatal(err)
				}
				got, err := q.Query(LangTriAL, src)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want) {
					t.Errorf("trial %q: façade disagrees with Evaluator", src)
				}
			}
		})
	}
}

// TestDifferentialRandomGXPath fuzzes the full pipeline with random
// GXPath formulas rendered to text, parsed back, and run both ways.
func TestDifferentialRandomGXPath(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	graphs := diffGraphs()
	for i := 0; i < 60; i++ {
		p := randGXPath(rng, 2)
		src := p.String()
		for name, g := range graphs {
			q := New(g.ToTriplestore())
			want := map[[2]string]bool(gxpath.EvalPath(p, g))
			if got := checkFacade(t, q, LangGXPath, src); !samePairs(got, want) {
				t.Errorf("gxpath %q over %s: façade pairs disagree with native eval", src, name)
			}
		}
	}
}

func randGXPath(rng *rand.Rand, depth int) gxpath.Path {
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return gxpath.Eps{}
		case 1:
			return gxpath.Label{A: "a"}
		case 2:
			return gxpath.Label{A: "b"}
		default:
			return gxpath.Label{A: string(rune('a' + rng.Intn(2))), Inv: true}
		}
	}
	switch rng.Intn(7) {
	case 0:
		return gxpath.Concat{L: randGXPath(rng, depth-1), R: randGXPath(rng, depth-1)}
	case 1:
		return gxpath.Union{L: randGXPath(rng, depth-1), R: randGXPath(rng, depth-1)}
	case 2:
		return gxpath.Star{P: randGXPath(rng, depth-1)}
	case 3:
		return gxpath.Complement{P: randGXPath(rng, depth-1)}
	case 4:
		return gxpath.Test{N: gxpath.Diamond{P: randGXPath(rng, depth-1)}}
	case 5:
		return gxpath.DataCmp{P: randGXPath(rng, depth-1), Neq: rng.Intn(2) == 0}
	default:
		return randGXPath(rng, 0)
	}
}
