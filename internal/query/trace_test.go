package query

import (
	"strings"
	"testing"
	"time"

	"repro/internal/fixtures"
)

// TestQueryTraceLifecycle: the first traced query records a plan-cache
// miss with compile and plan spans (rewrite trace attached); a repeat
// records a hit with no compile; both return the same relation as the
// untraced path.
func TestQueryTraceLifecycle(t *testing.T) {
	q := New(fixtures.Transport(), WithRelation(fixtures.RelE))
	const src = `join[1,3',3; 2=1'](E, E)`

	want, err := q.Query(LangTriAL, src)
	if err != nil {
		t.Fatal(err)
	}
	got, sp, err := q.QueryTrace(LangTriAL, src)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("traced result (%d) differs from untraced (%d)", got.Len(), want.Len())
	}
	if sp.Name() != "query" || sp.Duration() <= 0 {
		t.Errorf("root span %q dur %v", sp.Name(), sp.Duration())
	}
	if lang := sp.Attr("lang"); lang != "trial" {
		t.Errorf("lang attr = %v", lang)
	}
	if hit := sp.Attr("plan_cache"); hit != "hit" {
		t.Errorf("plan_cache attr = %v, want hit (plan was cached by the untraced query)", hit)
	}
	if sp.Find("execute") == nil {
		t.Fatalf("no execute span:\n%s", sp.Tree())
	}
	if n, ok := sp.Attr("result_size").(int); !ok || n != want.Len() {
		t.Errorf("result_size = %v, want %d", sp.Attr("result_size"), want.Len())
	}

	// A fresh Querier misses the cache and records the full lifecycle.
	q2 := New(fixtures.Transport(), WithRelation(fixtures.RelE))
	_, sp2, err := q2.QueryTrace(LangTriAL, src)
	if err != nil {
		t.Fatal(err)
	}
	if hit := sp2.Attr("plan_cache"); hit != "miss" {
		t.Errorf("plan_cache attr = %v, want miss", hit)
	}
	if sp2.Find("compile") == nil || sp2.Find("plan") == nil {
		t.Fatalf("compile/plan spans missing on a miss:\n%s", sp2.Tree())
	}
	rew, _ := sp2.Find("plan").Attr("rewrites").(string)
	if !strings.HasPrefix(rew, "rewrites[v") {
		t.Errorf("plan span rewrites attr = %q", rew)
	}
	// The execute span holds the operator tree.
	ex := sp2.Find("execute")
	if len(ex.Children()) == 0 {
		t.Errorf("execute span has no operator children:\n%s", sp2.Tree())
	}

	// The exclusive per-span times must account for the root's wall time
	// (within 20%): nothing substantial happens outside a span.
	var sum time.Duration
	for _, d := range sp2.SelfTimes() {
		sum += d
	}
	if wall := sp2.Duration(); sum < wall*4/5 || sum > wall*6/5 {
		t.Errorf("self times sum to %v, root wall time %v (want within 20%%)", sum, wall)
	}
}

// TestQueryTraceError: failures return the root span with the error
// recorded, so the slow-query log can keep failed queries too.
func TestQueryTraceError(t *testing.T) {
	q := New(fixtures.Transport(), WithRelation(fixtures.RelE))
	_, sp, err := q.QueryTrace(LangTriAL, "join[(")
	if err == nil {
		t.Fatal("malformed query succeeded")
	}
	if sp == nil || sp.Attr("error") == nil {
		t.Errorf("error not recorded on root span: %v", sp)
	}

	_, sp, err = q.QueryTrace(LangTriAL, "NoSuchRel")
	if err == nil {
		t.Fatal("unknown relation succeeded")
	}
	if sp.Attr("error") == nil {
		t.Error("planning error not recorded on root span")
	}
}

// TestQueryTraceTruncatesSource: a pathological source is truncated in
// the span (the slow-query log stores these).
func TestQueryTraceTruncatesSource(t *testing.T) {
	q := New(fixtures.Transport(), WithRelation(fixtures.RelE))
	long := "join[1,2,3; 1=1](E, E)" + strings.Repeat(" ", 2000)
	_, sp, err := q.QueryTrace(LangTriAL, long)
	if err != nil {
		t.Fatal(err)
	}
	src, _ := sp.Attr("source").(string)
	if len(src) > maxTracedSource+4 {
		t.Errorf("source attr is %d bytes, want <= %d", len(src), maxTracedSource+4)
	}
}
