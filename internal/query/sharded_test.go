package query

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/genstore"
	"repro/internal/trial"
	"repro/internal/triplestore"
)

// TestShardedQuerierDifferential routes every language through a
// sharded Querier and pins the results byte-identical to a flat Querier
// over the same data.
func TestShardedQuerierDifferential(t *testing.T) {
	s := genstore.Grid(6, 6)
	flat := New(s, WithRelation(genstore.RelE))
	ss := triplestore.Shard(s, 4)
	sharded := NewSharded(ss, WithRelation(genstore.RelE))
	if sharded.Engine().Sharded() == nil {
		t.Fatal("sharded Querier built a flat engine")
	}

	cases := []struct {
		lang Lang
		src  string
	}{
		{LangTriAL, "E"},
		{LangTriAL, "join[1,2,3'; 3=1'](E, E)"},
		{LangTriAL, "rstar[1,2,3'; 3=1',1!=3'](E)"},
		{LangRPQ, "(right.down)*"},
		{LangGXPath, "(right u down)*"},
		{LangNSPARQL, "next::right/next::down"},
		{LangNRE, "(right)*"},
	}
	for _, c := range cases {
		want, err := flat.Query(c.lang, c.src)
		if err != nil {
			t.Fatalf("%s %q: flat: %v", c.lang, c.src, err)
		}
		got, err := sharded.Query(c.lang, c.src)
		if err != nil {
			t.Fatalf("%s %q: sharded: %v", c.lang, c.src, err)
		}
		if gw, gg := s.FormatRelation(want), s.FormatRelation(got); gw != gg {
			t.Errorf("%s %q diverges: flat %d vs sharded %d triples",
				c.lang, c.src, want.Len(), got.Len())
		}
	}
}

// TestShardedQuerierPicksEnginePerVersion pins the transparent routing:
// after a mutation the sharded Querier re-snapshots and the fresh engine
// still carries the partition-parallel executor at the new version.
func TestShardedQuerierPicksEnginePerVersion(t *testing.T) {
	ss := triplestore.NewShardedStore(4)
	ss.Add("E", "a", "p", "b")
	q := NewSharded(ss)
	e1 := q.Engine()
	if e1.Sharded() == nil || !e1.Store().IsSnapshot() {
		t.Fatal("first engine is not a sharded snapshot engine")
	}
	ss.Add("E", "b", "p", "c")
	e2 := q.Engine()
	if e2 == e1 {
		t.Fatal("engine not refreshed after version change")
	}
	if e2.Sharded() == nil {
		t.Fatal("refreshed engine lost the sharded executor")
	}
	if e2.Store().Version() != ss.Version() {
		t.Errorf("engine version %d, store version %d", e2.Store().Version(), ss.Version())
	}
	// Single-shard stores transparently degrade to the flat engine.
	one := NewSharded(triplestore.Shard(genstore.Chain(4, 1), 1))
	if one.Engine().Sharded() != nil {
		t.Error("single-shard Querier built a sharded engine")
	}
}

// TestStaleSweepOnStoreObservation is the regression test for the sweep
// gap: plans cached for a dead version used to survive until the next
// compile (miss/put); observing the store through Store() after a
// version change must now sweep them too.
func TestStaleSweepOnStoreObservation(t *testing.T) {
	s := genstore.Chain(6, 1)
	q := New(s, WithRelation(genstore.RelE))
	queries := []string{"E", "join[1,3',3; 2=1'](E, E)"}
	for _, src := range queries {
		if _, err := q.Query(LangTriAL, src); err != nil {
			t.Fatal(err)
		}
	}
	if st := q.Stats(); st.Size != len(queries) || st.StaleEvictions != 0 {
		t.Fatalf("warm cache: %+v", st)
	}

	s.Add(genstore.RelE, "z0", "a", "z1")

	// No query in between: the observation alone must sweep.
	if got := q.Store(); got != s {
		t.Fatalf("Store() returned %p, want %p", got, s)
	}
	st := q.Stats()
	if st.StaleEvictions != uint64(len(queries)) {
		t.Errorf("StaleEvictions after Store() = %d, want %d", st.StaleEvictions, len(queries))
	}
	if st.Size != 0 {
		t.Errorf("cache Size after Store() sweep = %d, want 0", st.Size)
	}

	// The sweep is idempotent and does not double-count on the next miss.
	q.Store()
	if _, err := q.Query(LangTriAL, "E"); err != nil {
		t.Fatal(err)
	}
	if st := q.Stats(); st.StaleEvictions != uint64(len(queries)) {
		t.Errorf("StaleEvictions double-counted: %d, want %d", st.StaleEvictions, len(queries))
	}

	// Before any engine exists, Store() must not sweep (nothing cached).
	fresh := New(genstore.Chain(3, 1))
	fresh.Store()
	if st := fresh.Stats(); st.StaleEvictions != 0 {
		t.Errorf("fresh Querier swept %d entries", st.StaleEvictions)
	}
}

// TestShardedBulkIngestDuringEvaluate is the batch-boundary consistency
// race test on a ShardedStore: ApplyBatch batches land while concurrent
// queries run through the sharded Querier (run with -race); every result
// must sit on a batch boundary, and the final state must match.
func TestShardedBulkIngestDuringEvaluate(t *testing.T) {
	const batchSize, nBatches = 5, 24
	ss := triplestore.NewShardedStore(4)
	ss.Add("E", "a", "p", "b")
	base := ss.Size()
	q := NewSharded(ss, WithRelation("E"))

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for b := 0; b < nBatches; b++ {
			ops := make([]triplestore.Op, batchSize)
			for i := range ops {
				ops[i] = triplestore.Op{Rel: "E", S: fmt.Sprintf("s%d-%d", b, i), P: "p", O: "b"}
			}
			if _, err := ss.ApplyBatch(ops); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				res, err := q.Query(LangTriAL, "E")
				if err != nil {
					t.Error(err)
					return
				}
				if extra := res.Len() - base; extra < 0 || extra%batchSize != 0 {
					t.Errorf("scan saw %d triples: not on a batch boundary (base %d, batch %d)",
						res.Len(), base, batchSize)
					return
				}
				// A joined query must also be pinned to one snapshot.
				if _, err := q.Query(LangTriAL, "join[1,2,3'; 3=1'](E, E)"); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	res, err := q.Query(LangTriAL, "E")
	if err != nil {
		t.Fatal(err)
	}
	if want := base + batchSize*nBatches; res.Len() != want {
		t.Errorf("final scan = %d triples, want %d", res.Len(), want)
	}
}

// TestShardedDifferentialOnMutatedStore pins the sharded Querier to the
// reference Evaluator across interleaved writes, batches and deletes.
func TestShardedDifferentialOnMutatedStore(t *testing.T) {
	ss := triplestore.Shard(genstore.Chain(8, 2), 4)
	q := NewSharded(ss, WithRelation(genstore.RelE))
	srcs := []string{"E", "join[1,3',3; 2=1'](E, E)", "rstar[1,2,3'; 3=1',1!=3'](E)"}

	check := func(label string) {
		t.Helper()
		for _, src := range srcs {
			x, err := trial.Parse(src)
			if err != nil {
				t.Fatal(err)
			}
			want, err := trial.NewEvaluator(ss.Store).Eval(x)
			if err != nil {
				t.Fatal(err)
			}
			got, err := q.Query(LangTriAL, src)
			if err != nil {
				t.Fatal(err)
			}
			if gw, gg := ss.FormatRelation(want), ss.FormatRelation(got); gw != gg {
				t.Errorf("%s: %q diverges:\nevaluator:\n%squerier:\n%s", label, src, gw, gg)
			}
		}
	}

	check("initial")
	ss.Add(genstore.RelE, "x1", "a", "x2")
	check("after add")
	if _, err := ss.ApplyBatch([]triplestore.Op{
		{Rel: genstore.RelE, S: "x2", P: "a", O: "x3"},
		{Rel: genstore.RelE, S: "x3", P: "b", O: "x1"},
		{Delete: true, Rel: genstore.RelE, S: "x1", P: "a", O: "x2"},
	}); err != nil {
		t.Fatal(err)
	}
	check("after batch")
	ss.Remove(genstore.RelE, "x3", "b", "x1")
	check("after remove")
}
