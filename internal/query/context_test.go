package query_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/query"
)

// TestQueryContext pins the context-aware entry points: a live context
// matches Query exactly (same plan cache, same result), a cancelled one
// surfaces ctx.Err() from execution, and a cancelled traced query still
// returns its root span with the error recorded.
func TestQueryContext(t *testing.T) {
	q := query.New(fixtures.Transport(), query.WithRelation(fixtures.RelE))
	const src = `join[1,3',3; 2=1'](E, E)`
	want, err := q.Query(query.LangTriAL, src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := q.QueryContext(context.Background(), query.LangTriAL, src)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("QueryContext = %d triples, want %d", got.Len(), want.Len())
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := q.QueryContext(ctx, query.LangTriAL, src); !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryContext(cancelled) err = %v, want context.Canceled", err)
	}
	// Compile errors still beat the context check: the query never
	// reaches execution.
	if _, err := q.QueryContext(ctx, query.LangTriAL, "join[("); err == nil {
		t.Fatal("QueryContext accepted a malformed query")
	}

	r, sp, err := q.QueryTraceContext(ctx, query.LangTriAL, src)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryTraceContext(cancelled) err = %v, want context.Canceled", err)
	}
	if r != nil {
		t.Fatal("QueryTraceContext(cancelled) returned a partial relation")
	}
	if sp == nil {
		t.Fatal("QueryTraceContext(cancelled) returned a nil root span")
	}
}
