package query

import (
	"container/list"

	"repro/internal/engine"
)

// lruCache is a fixed-capacity least-recently-used map from planKey to
// compiled plans. Not safe for concurrent use; the Querier serializes
// access under its mutex.
type lruCache struct {
	cap     int
	order   *list.List // front = most recently used; values are *lruEntry
	entries map[planKey]*list.Element
}

type lruEntry struct {
	key  planKey
	plan *engine.Prepared
}

// newLRUCache returns a cache holding at most cap plans. A capacity
// below 1 yields a cache that stores nothing (every get misses).
func newLRUCache(cap int) *lruCache {
	return &lruCache{
		cap:     cap,
		order:   list.New(),
		entries: make(map[planKey]*list.Element),
	}
}

func (c *lruCache) len() int { return len(c.entries) }

// get returns the plan for key, marking it most recently used.
func (c *lruCache) get(key planKey) (*engine.Prepared, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).plan, true
}

// put inserts the plan, evicting the least recently used entry when the
// cache is full. It reports whether an eviction happened.
func (c *lruCache) put(key planKey, p *engine.Prepared) (evicted bool) {
	if c.cap < 1 {
		return false
	}
	if el, ok := c.entries[key]; ok {
		el.Value.(*lruEntry).plan = p
		c.order.MoveToFront(el)
		return false
	}
	if len(c.entries) >= c.cap {
		oldest := c.order.Back()
		if oldest != nil {
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(*lruEntry).key)
			evicted = true
		}
	}
	c.entries[key] = c.order.PushFront(&lruEntry{key: key, plan: p})
	return evicted
}

// sweep removes every entry whose store version differs from live —
// versions are never revisited, so those plans can never hit again — and
// returns how many were removed.
func (c *lruCache) sweep(live uint64) int {
	removed := 0
	for el := c.order.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*lruEntry); e.key.version != live {
			c.order.Remove(el)
			delete(c.entries, e.key)
			removed++
		}
		el = next
	}
	return removed
}
