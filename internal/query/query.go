package query

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/engine"
	"repro/internal/gxpath"
	"repro/internal/nre"
	"repro/internal/nsparql"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/rpq"
	"repro/internal/storage"
	"repro/internal/translate"
	"repro/internal/trial"
	"repro/internal/triplestore"
)

// Lang identifies a supported frontend language.
type Lang string

// The supported languages.
const (
	// LangTriAL is the native TriAL* algebra in the syntax of trial.Parse.
	LangTriAL Lang = "trial"
	// LangNSPARQL is an nSPARQL path expression (nsparql.ParseExpr) over
	// the raw triples of the store's relation.
	LangNSPARQL Lang = "nsparql"
	// LangRPQ is a regular path query with inverses (rpq.ParseRegex) over
	// the graph encoded in the store's relation.
	LangRPQ Lang = "rpq"
	// LangNRE is a nested regular expression (nre.Parse) over the graph
	// encoded in the store's relation.
	LangNRE Lang = "nre"
	// LangGXPath is a GXPath path formula (gxpath.ParsePath) over the
	// graph encoded in the store's relation.
	LangGXPath Lang = "gxpath"
)

// Langs returns the supported languages in stable order.
func Langs() []Lang {
	return []Lang{LangTriAL, LangNSPARQL, LangRPQ, LangNRE, LangGXPath}
}

// ParseLang normalizes a language name. The empty string means TriAL*,
// so callers can pass an optional user-facing parameter straight through.
func ParseLang(s string) (Lang, error) {
	switch s {
	case "", "trial", "trial*", "TriAL", "TriAL*":
		return LangTriAL, nil
	case "nsparql", "nSPARQL":
		return LangNSPARQL, nil
	case "rpq", "RPQ", "2rpq", "2RPQ":
		return LangRPQ, nil
	case "nre", "NRE":
		return LangNRE, nil
	case "gxpath", "GXPath":
		return LangGXPath, nil
	}
	return "", fmt.Errorf("query: unknown language %q (want one of trial, nsparql, rpq, nre, gxpath)", s)
}

// Querier routes queries in every supported language through one engine.
// It is safe for concurrent use even while the store is being mutated
// through the store's own methods: every query is compiled and executed
// against an immutable Snapshot of the store's current version, so
// readers never observe a half-applied batch, and plans cached for dead
// versions are swept out of the LRU as the version advances.
type Querier struct {
	store   *triplestore.Store
	sharded *triplestore.ShardedStore // non-nil when built by NewSharded
	backend storage.Engine            // non-nil when built by NewStorage
	rel     string
	engOpts []engine.Option

	mu       sync.Mutex
	eng      *engine.Engine // engine over the snapshot at engVer; nil until first use
	engVer   uint64
	pin      *storage.Pin // pins engVer's segment manifest; nil without a backend
	pinGen   uint64       // manifest generation the current pin holds
	cache    *lruCache
	stats    CacheStats
	rewrites RewriteStats
}

// Option configures a Querier.
type Option func(*config)

type config struct {
	rel       string
	cacheSize int
	engOpts   []engine.Option
}

// WithRelation sets the store relation queries run against: the edge
// relation of the graph encoding T_G for the graph languages, and the
// raw triple relation for nSPARQL and TriAL* relation references.
// Defaults to "E", the name used by graph.ToTriplestore.
func WithRelation(rel string) Option {
	return func(c *config) { c.rel = rel }
}

// WithCacheSize bounds the plan cache (number of compiled plans kept).
// Values below 1 disable caching. Defaults to 128.
func WithCacheSize(n int) Option {
	return func(c *config) { c.cacheSize = n }
}

// WithEngineOptions passes options through to engine.New.
func WithEngineOptions(opts ...engine.Option) Option {
	return func(c *config) { c.engOpts = append(c.engOpts, opts...) }
}

// DefaultCacheSize is the plan-cache capacity used when WithCacheSize is
// not given.
const DefaultCacheSize = 128

// New returns a Querier over the given store.
func New(s *triplestore.Store, opts ...Option) *Querier {
	cfg := config{rel: "E", cacheSize: DefaultCacheSize}
	for _, o := range opts {
		o(&cfg)
	}
	q := &Querier{
		store:   s,
		rel:     cfg.rel,
		engOpts: cfg.engOpts,
		cache:   newLRUCache(cfg.cacheSize),
	}
	q.stats.Capacity = cfg.cacheSize
	return q
}

// NewSharded returns a Querier over a sharded store: per store version
// it snapshots the ShardedStore (union and partitions at one instant)
// and routes queries through the partition-parallel engine; everything
// else — languages, plan cache, stale sweeps — works exactly as with
// New. A single-shard store transparently degrades to the flat engine.
func NewSharded(ss *triplestore.ShardedStore, opts ...Option) *Querier {
	q := New(ss.Store, opts...)
	if ss.NumShards() > 1 {
		q.sharded = ss
	}
	return q
}

// NewStorage returns a Querier over a storage engine: queries run over
// pinned snapshots, so a disk-backed engine cannot garbage-collect the
// segment files a long query (or a cached plan's snapshot) still reads
// from under it. Everything else — languages, plan cache, stale sweeps —
// works exactly as with New; an in-memory engine degrades to New's
// behavior because its pins are free. Call Close when done so the last
// pin is released and the backend may compact freely.
func NewStorage(eng storage.Engine, opts ...Option) *Querier {
	q := New(eng.Store(), opts...)
	q.backend = eng
	return q
}

// Close releases the Querier's pin on the storage backend (if any): the
// backend may then delete segment files the last snapshot was reading.
// Cached plans stay usable for the lifetime of their snapshot's memory,
// but no new queries should be issued after Close. Close is a no-op for
// Queriers built by New or NewSharded.
func (q *Querier) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.pin != nil {
		q.pin.Release()
		q.pin = nil
	}
	q.eng = nil
	return nil
}

// Engine returns the execution engine for the store's current version.
// The engine is bound to an immutable Snapshot of the store; once the
// store is mutated, a later Engine (or Query) call returns a fresh
// engine over a fresh snapshot.
func (q *Querier) Engine() *engine.Engine {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.engineLocked()
}

// engineLocked returns the engine over the store's current version,
// re-snapshotting (and sweeping plans cached for dead versions) when the
// live store has moved on. Callers hold q.mu.
func (q *Querier) engineLocked() *engine.Engine {
	if v := q.store.Version(); q.eng == nil || q.engVer != v {
		switch {
		case q.sharded != nil:
			snap := q.sharded.Snapshot()
			q.eng = engine.NewSharded(snap, q.engOpts...)
			q.engVer = snap.Version()
		case q.backend != nil:
			// Pin (version, segment manifest) as a unit: the snapshot's
			// data may live in segment files, and the pin keeps the backend
			// from deleting them after a compaction until this Querier has
			// moved on. The previous pin is released only after the new one
			// is taken so there is no window where nothing is pinned.
			pin := q.backend.Pin()
			if q.pin != nil {
				q.pin.Release()
			}
			q.pin = pin
			q.pinGen = pin.Generation
			q.eng = engine.New(pin.Store, q.engOpts...)
			q.engVer = pin.Store.Version()
		default:
			snap := q.store.Snapshot()
			q.eng = engine.New(snap, q.engOpts...)
			q.engVer = snap.Version()
		}
		q.stats.StaleEvictions += uint64(q.cache.sweep(q.engVer))
	}
	return q.eng
}

// Store returns the live store the Querier snapshots from (for a
// sharded Querier, the union view of the ShardedStore). Observing the
// store is also a sweep point: when the version has advanced since the
// last snapshot, plans cached for the dead version are removed now —
// previously that happened only on the next compile, so a Querier whose
// store was mutated and then only observed kept dead plans squatting in
// the LRU.
func (q *Querier) Store() *triplestore.Store {
	q.mu.Lock()
	if q.eng != nil {
		if v := q.store.Version(); v != q.engVer {
			q.stats.StaleEvictions += uint64(q.cache.sweep(v))
		}
	}
	q.mu.Unlock()
	return q.store
}

// Relation returns the relation name queries are compiled against.
func (q *Querier) Relation() string { return q.rel }

// Compile parses source in the given language and translates it to a
// TriAL* expression over the Querier's relation. Graph languages denote
// binary relations; their expressions follow the canonical convention of
// internal/translate, {(x, x, y) | (x, y) ∈ ⟦α⟧}.
func (q *Querier) Compile(lang Lang, source string) (trial.Expr, error) {
	switch lang {
	case LangTriAL:
		return trial.Parse(source)
	case LangNSPARQL:
		e, err := nsparql.ParseExpr(source)
		if err != nil {
			return nil, err
		}
		return translate.NSPARQL(e, q.rel)
	case LangRPQ:
		e, err := rpq.ParseRegex(source)
		if err != nil {
			return nil, err
		}
		return translate.RPQ(e, q.rel), nil
	case LangNRE:
		e, err := nre.Parse(source)
		if err != nil {
			return nil, err
		}
		return translate.NRE(e, q.rel), nil
	case LangGXPath:
		e, err := gxpath.ParsePath(source)
		if err != nil {
			return nil, err
		}
		return translate.Path(e, q.rel), nil
	}
	return nil, fmt.Errorf("query: unknown language %q", lang)
}

// Query compiles and executes source, returning the result relation.
// Graph-language results are canonical: each answer pair (x, y) appears
// as the triple (x, x, y).
func (q *Querier) Query(lang Lang, source string) (*triplestore.Relation, error) {
	return q.QueryContext(context.Background(), lang, source)
}

// QueryContext is Query under a caller-supplied context. Compilation
// and planning are not interruptible (they are cheap and cache-bound),
// but execution polls ctx at operator, worker-chunk, star-round and
// shard-task boundaries, so cancelling a slow query actually frees the
// engine's worker pool. The error is then ctx.Err().
func (q *Querier) QueryContext(ctx context.Context, lang Lang, source string) (*triplestore.Relation, error) {
	p, err := q.prepare(lang, source)
	if err != nil {
		return nil, err
	}
	return p.ExecContext(ctx)
}

// maxTracedSource bounds the source text echoed into a trace span so a
// pathological query cannot bloat the slow-query log it lands in.
const maxTracedSource = 512

// QueryTrace is Query with a per-query execution trace: the returned
// span tree covers the whole lifecycle — compile (parse + translate),
// optimize and plan (with the logical rewrite trace attached) or a
// plan-cache hit, then execute with one span per physical operator. The
// root span is returned even when the query fails, with the error
// recorded on it, so callers can log what the failed query did get
// through. Tracing only adds span bookkeeping around the phases; the
// compiled plan is cached and shared with untraced Query calls.
func (q *Querier) QueryTrace(lang Lang, source string) (*triplestore.Relation, *obs.Span, error) {
	return q.QueryTraceContext(context.Background(), lang, source)
}

// QueryTraceContext is QueryTrace under a caller-supplied context (see
// QueryContext). A cancelled query still returns its root span with the
// error and the operator spans completed so far recorded on it.
func (q *Querier) QueryTraceContext(ctx context.Context, lang Lang, source string) (*triplestore.Relation, *obs.Span, error) {
	root := obs.StartSpan("query")
	defer root.End()
	root.SetAttr("lang", string(lang))
	src := source
	if len(src) > maxTracedSource {
		src = src[:maxTracedSource] + "…"
	}
	root.SetAttr("source", src)
	p, err := q.prepareSpan(lang, source, root)
	if err != nil {
		root.SetAttr("error", err.Error())
		return nil, root, err
	}
	ex := root.StartChild("execute")
	r, err := p.ExecTraceContext(ctx, ex)
	ex.End()
	if err != nil {
		root.SetAttr("error", err.Error())
		return nil, root, err
	}
	root.SetAttr("result_size", r.Len())
	return r, root, nil
}

// Pairs projects a canonical graph-language result to its answer pairs
// (named), sorted by name. It errors on a non-canonical relation, which
// can only come from a LangTriAL expression that does not follow the
// convention.
func (q *Querier) Pairs(r *triplestore.Relation) ([][2]string, error) {
	s := q.store
	out := make([][2]string, 0, r.Len())
	for _, t := range r.Triples() {
		if t[0] != t[1] {
			return nil, fmt.Errorf("query: relation is not canonical: triple %s", s.FormatTriple(t))
		}
		out = append(out, [2]string{s.Name(t[0]), s.Name(t[2])})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out, nil
}

// Explain compiles source and renders the physical plan the engine chose
// for it (caching the plan like Query does).
func (q *Querier) Explain(lang Lang, source string) (string, error) {
	p, err := q.prepare(lang, source)
	if err != nil {
		return "", err
	}
	return p.Explain(), nil
}

// CompileError marks a failure in the parse/translate phase of Query or
// Explain, as opposed to planning or execution. HTTP callers use it to
// classify bad queries (400) versus evaluation failures (422) without
// re-compiling the source.
type CompileError struct{ Err error }

func (e *CompileError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying parser or translator error.
func (e *CompileError) Unwrap() error { return e.Err }

// CacheStats are counters for the plan cache. Evictions counts plans
// pushed out by capacity pressure; StaleEvictions counts plans swept
// because their store version died (the store was mutated), which
// happens eagerly on the first miss after a version change rather than
// waiting for capacity eviction.
type CacheStats struct {
	Hits           uint64 `json:"hits"`
	Misses         uint64 `json:"misses"`
	Evictions      uint64 `json:"evictions"`
	StaleEvictions uint64 `json:"stale_evictions"`
	Size           int    `json:"size"`
	Capacity       int    `json:"capacity"`
}

// Stats returns a snapshot of the plan-cache counters.
func (q *Querier) Stats() CacheStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := q.stats
	st.Size = q.cache.len()
	return st
}

// RewriteStats are counters over the logical optimizer's work on this
// Querier: how many plans were optimized, how many were changed by at
// least one rule, and per-rule hit counts (the server's /stats exposes
// them). Cache hits don't re-optimize, so these count plan-cache misses.
type RewriteStats struct {
	OptimizerVersion int               `json:"optimizer_version"`
	Planned          uint64            `json:"planned"`
	Rewritten        uint64            `json:"rewritten"`
	RuleHits         map[string]uint64 `json:"rule_hits"`
}

// RewriteStats returns a snapshot of the rewrite-hit counters.
func (q *Querier) RewriteStats() RewriteStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := q.rewrites
	st.OptimizerVersion = optimizer.Version
	st.RuleHits = make(map[string]uint64, len(q.rewrites.RuleHits))
	for k, v := range q.rewrites.RuleHits {
		st.RuleHits[k] = v
	}
	return st
}

// recordTrace folds one plan's rewrite trace into the counters.
func (q *Querier) recordTrace(tr *optimizer.Trace) {
	if tr == nil {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.rewrites.Planned++
	if tr.Changed() {
		q.rewrites.Rewritten++
	}
	if q.rewrites.RuleHits == nil {
		q.rewrites.RuleHits = make(map[string]uint64)
	}
	for _, h := range tr.Hits() {
		q.rewrites.RuleHits[h.Rule] += uint64(h.Count)
	}
}

// planKey identifies a compiled plan: same language, source text and
// relation against the same snapshot of the store, compiled by the same
// optimizer rule set. The store-version component makes plans compiled
// before a store mutation unreachable — and the Querier sweeps such
// dead-version entries out eagerly on the first miss after the version
// advances, rather than letting them squat in the LRU until capacity
// eviction; the optimizer-version component does the same across
// rule-set upgrades.
type planKey struct {
	lang       Lang
	source     string
	rel        string
	version    uint64
	gen        uint64 // storage-manifest generation pinned with version
	optVersion int
}

// prepare returns the cached plan for (lang, source) or compiles and
// caches a new one. Compilation runs against the engine for the store
// version current at entry; a query racing a mutation is therefore
// pinned to one consistent snapshot for its whole compile-and-execute
// lifetime, even if the live store moves on underneath it.
func (q *Querier) prepare(lang Lang, source string) (*engine.Prepared, error) {
	return q.prepareSpan(lang, source, nil)
}

// prepareSpan is prepare with lifecycle spans attached under sp (nil
// traces nothing): the plan-cache outcome on sp itself, and compile /
// plan child spans on a miss, the plan span carrying the logical
// optimizer's rewrite trace.
func (q *Querier) prepareSpan(lang Lang, source string, sp *obs.Span) (*engine.Prepared, error) {
	q.mu.Lock()
	eng := q.engineLocked()
	key := planKey{
		lang: lang, source: source, rel: q.rel,
		version:    eng.Store().Version(),
		gen:        q.pinGen,
		optVersion: optimizer.Version,
	}
	sp.SetAttr("store_version", key.version)
	if p, ok := q.cache.get(key); ok {
		q.stats.Hits++
		q.mu.Unlock()
		sp.SetAttr("plan_cache", "hit")
		return p, nil
	}
	q.stats.Misses++
	q.mu.Unlock()
	sp.SetAttr("plan_cache", "miss")

	csp := sp.StartChild("compile")
	x, err := q.Compile(lang, source)
	csp.End()
	if err != nil {
		return nil, &CompileError{Err: err}
	}
	// Planning errors (unknown relations, malformed conditions) are not
	// CompileErrors: the reference Evaluator rejects them at evaluation
	// time, and the HTTP server's status split follows that parity.
	psp := sp.StartChild("plan")
	p, err := eng.Prepare(x)
	psp.End()
	if err != nil {
		return nil, err
	}
	psp.SetAttr("rewrites", p.Trace().String())
	q.recordTrace(p.Trace())

	q.mu.Lock()
	// A concurrent miss may have inserted the same key; keep the first
	// plan so cached pointers stay stable. This request was already
	// counted as a miss, so the duplicate compile is not also a hit.
	if prev, ok := q.cache.get(key); ok {
		q.mu.Unlock()
		return prev, nil
	}
	// Only cache the plan while its version is still the live one; a
	// mutation that landed during compilation has already made it dead.
	// (No sweep needed here: engineLocked already swept the cache down
	// to engVer entries when the version last advanced.)
	if key.version == q.engVer {
		if q.cache.put(key, p) {
			q.stats.Evictions++
		}
	}
	q.mu.Unlock()
	return p, nil
}
