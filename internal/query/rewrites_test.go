package query

import (
	"strings"
	"testing"

	"repro/internal/genstore"
	"repro/internal/optimizer"
)

// TestRewriteStats: the Querier aggregates per-rule rewrite counters
// from every plan-cache miss, and cache hits do not re-optimize.
func TestRewriteStats(t *testing.T) {
	q := New(genstore.Chain(10, 2))
	st := q.RewriteStats()
	if st.OptimizerVersion != optimizer.Version {
		t.Fatalf("OptimizerVersion = %d, want %d", st.OptimizerVersion, optimizer.Version)
	}
	if st.Planned != 0 {
		t.Fatalf("fresh Querier Planned = %d, want 0", st.Planned)
	}

	// A query the optimizer visibly rewrites: the duplicate union arm is
	// dropped and the selection fuses into what remains.
	if _, err := q.Query(LangTriAL, "sigma[1=2](union(E, E))"); err != nil {
		t.Fatal(err)
	}
	st = q.RewriteStats()
	if st.Planned != 1 || st.Rewritten != 1 {
		t.Fatalf("after one optimized query: %+v", st)
	}
	if st.RuleHits["dedupe-union"] == 0 {
		t.Fatalf("dedupe-union not recorded: %+v", st.RuleHits)
	}

	// Same query again: a cache hit, no new optimization.
	if _, err := q.Query(LangTriAL, "sigma[1=2](union(E, E))"); err != nil {
		t.Fatal(err)
	}
	if st2 := q.RewriteStats(); st2.Planned != 1 {
		t.Fatalf("cache hit re-optimized: %+v", st2)
	}

	// The snapshot is a copy: mutating it must not corrupt the Querier.
	st.RuleHits["bogus"] = 99
	if _, ok := q.RewriteStats().RuleHits["bogus"]; ok {
		t.Fatal("RewriteStats returned its internal map")
	}
}

// TestExplainHasTrace: the façade's Explain output carries the
// optimizer's rewrite trace ahead of the physical plan.
func TestExplainHasTrace(t *testing.T) {
	q := New(genstore.Grid(4, 4))
	plan, err := q.Explain(LangGXPath, "(right u down)*")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "rewrites[v") {
		t.Errorf("Explain missing rewrite trace:\n%s", plan)
	}
}
